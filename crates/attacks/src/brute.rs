//! §5.4 brute-force attack against the 15-bit kernel PAC.

use crate::AttackResult;
use camo_core::Machine;
use camo_kernel::layout::work_struct;
use camo_kernel::{KernelConfig, KernelError};
use camo_mem::PointerLayout;

/// Expected number of guesses to brute-force one kernel PAC (§5.4: 15
/// usable bits).
pub fn expected_guesses() -> u64 {
    1 << (PointerLayout::kernel().pac_bits() - 1)
}

/// Brute-force attack: repeatedly write guessed signed pointers over a
/// protected work callback and trigger its authenticated use. Every wrong
/// guess faults with the PAC signature; the kernel halts at the threshold.
///
/// Expected: the panic fires after exactly `threshold` failures — the
/// attacker gets `threshold` guesses out of an expected 2¹⁴, a success
/// probability of `threshold / 2¹⁵` per boot.
pub fn brute_force_pac(threshold: u32) -> AttackResult {
    let mut cfg = KernelConfig::default();
    cfg.pac_panic_threshold = threshold;
    let mut machine = Machine::with_config(cfg).expect("boot");
    let kernel = machine.kernel_mut();

    let target = kernel.symbol("dev_read"); // where the attacker wants control
    let layout = PointerLayout::kernel();

    let mut attempts = 0u32;
    let outcome = loop {
        let work = kernel.init_work("dev_poll").expect("init_work");
        // Guess a PAC for the target pointer: sequential search, as a real
        // brute force would.
        let guess = layout.embed_pac(target, attempts);
        let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
        kernel
            .mem_mut()
            .write_u64(&ctx, work + u64::from(work_struct::FUNC), guess)
            .expect("work heap writable");
        attempts += 1;
        match kernel.run_work(work) {
            Ok(out) => {
                if out.fault.is_none() {
                    break BruteOutcome::GuessedCorrectly { attempts };
                }
                // Wrong guess: killed process, counted failure. Continue as
                // a fresh "process" would.
            }
            Err(KernelError::PacPanic { failures }) => {
                break BruteOutcome::Halted { failures };
            }
            Err(e) => panic!("unexpected kernel error: {e}"),
        }
        if attempts > threshold + 4 {
            break BruteOutcome::PolicyFailedOpen { attempts };
        }
    };

    let (blocked, detail) = match outcome {
        BruteOutcome::Halted { failures } => (
            failures == threshold,
            format!(
                "system halted after {failures} failures (threshold {threshold}); \
                 success probability ≈ {threshold}/{}",
                2 * expected_guesses()
            ),
        ),
        BruteOutcome::GuessedCorrectly { attempts } => (
            false,
            format!("PAC guessed in {attempts} attempts (unlucky boot)"),
        ),
        BruteOutcome::PolicyFailedOpen { attempts } => {
            (false, format!("no halt after {attempts} attempts"))
        }
    };
    AttackResult {
        attack: "brute-force-15bit-pac",
        defence: format!("panic-threshold={threshold}"),
        blocked,
        expected_blocked: true,
        detail,
    }
}

#[derive(Debug)]
enum BruteOutcome {
    Halted { failures: u32 },
    GuessedCorrectly { attempts: u32 },
    PolicyFailedOpen { attempts: u32 },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_pac_space_is_15_bits() {
        assert_eq!(PointerLayout::kernel().pac_bits(), 15);
        assert_eq!(expected_guesses(), 1 << 14);
    }

    #[test]
    fn brute_force_halts_at_threshold() {
        let r = brute_force_pac(8);
        assert!(r.blocked, "{}", r.detail);
        assert!(r.detail.contains("halted after 8 failures"));
    }

    #[test]
    fn every_failure_is_logged_for_forensics() {
        // §6.2.3: "Any failures are also logged, ensuring that such
        // vulnerable code paths can be fixed."
        let mut cfg = KernelConfig::default();
        cfg.pac_panic_threshold = 4;
        let mut machine = Machine::with_config(cfg).expect("boot");
        let kernel = machine.kernel_mut();
        let target = kernel.symbol("dev_read");
        let layout = PointerLayout::kernel();
        let mut panicked = false;
        for i in 0..4 {
            let work = kernel.init_work("dev_poll").expect("init_work");
            let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
            let guess = layout.embed_pac(target, i);
            kernel
                .mem_mut()
                .write_u64(&ctx, work + u64::from(work_struct::FUNC), guess)
                .unwrap();
            match kernel.run_work(work) {
                Ok(_) => {}
                Err(KernelError::PacPanic { .. }) => panicked = true,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(panicked);
        let pac_events = machine
            .kernel()
            .events()
            .iter()
            .filter(|e| matches!(e, camo_kernel::KernelEvent::PacFailure { .. }))
            .count();
        assert_eq!(pac_events, 4);
    }
}
