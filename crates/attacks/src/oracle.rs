//! Key-confidentiality probes (§6.2.2) and verification oracles (§6.2.3).

use crate::AttackResult;
use camo_codegen::{FunctionBuilder, Program, StaticPointerTable};
use camo_core::Machine;
use camo_cpu::{ec, Step};
use camo_isa::{encode, Insn, Reg, SysReg};
use camo_kernel::{layout, KernelError};
use camo_mem::{El, MemFault, S1Attr};

/// Attempt to *read* the XOM key-setter page with the kernel-memory read
/// primitive. Stage 2 must refuse: the keys exist only as instruction
/// bytes nobody can load.
pub fn read_key_setter_memory() -> AttackResult {
    let machine = Machine::protected().expect("boot");
    let k = machine.kernel();
    let ctx = k.mem().kernel_ctx(k.kernel_table());
    let result = k.mem().read_u64(&ctx, layout::KEYSETTER_VA);
    let blocked = matches!(result, Err(MemFault::Stage2 { .. }));
    AttackResult {
        attack: "read-xom-key-setter",
        defence: "hypervisor stage-2".to_string(),
        blocked,
        expected_blocked: true,
        detail: format!("{result:?}"),
    }
}

/// Attempt to *overwrite* the key setter (e.g. to make it install known
/// keys). Both stage 1 and the locked stage 2 must refuse.
pub fn overwrite_key_setter_memory() -> AttackResult {
    let mut machine = Machine::protected().expect("boot");
    let k = machine.kernel_mut();
    let ctx = k.mem().kernel_ctx(k.kernel_table());
    let result = k.mem_mut().write_u64(&ctx, layout::KEYSETTER_VA, 0);
    let blocked = result.is_err();
    AttackResult {
        attack: "overwrite-xom-key-setter",
        defence: "hypervisor stage-2".to_string(),
        blocked,
        expected_blocked: true,
        detail: format!("{result:?}"),
    }
}

/// Load a module whose init code executes `MRS x0, APIBKeyLo_EL1` (§4.1:
/// "key reads can be trivially found and rejected ... when loading a
/// module").
pub fn load_key_reading_module() -> AttackResult {
    let mut machine = Machine::protected().expect("boot");
    let cfg = machine.kernel().codegen_config();
    let mut p = Program::new(cfg);
    let mut evil = FunctionBuilder::new("exfiltrate_keys", cfg);
    evil.ins(Insn::Mrs {
        rt: Reg::x(0),
        sr: SysReg::ApibKeyLoEl1,
    });
    p.push(evil.build());
    let result = machine
        .kernel_mut()
        .load_module(p, &StaticPointerTable::new());
    let blocked = matches!(result, Err(KernelError::ModuleRejected { .. }));
    AttackResult {
        attack: "module-reads-key-registers",
        defence: "static verifier (§4.1)".to_string(),
        blocked,
        expected_blocked: true,
        detail: format!("{:?}", result.err()),
    }
}

/// Load a module that writes `SCTLR_EL1` (clearing the PAuth enable bits
/// would switch the protection off wholesale).
pub fn load_sctlr_writing_module() -> AttackResult {
    let mut machine = Machine::protected().expect("boot");
    let cfg = machine.kernel().codegen_config();
    let mut p = Program::new(cfg);
    let mut evil = FunctionBuilder::new("disable_pauth", cfg);
    evil.ins(Insn::Movz {
        rd: Reg::x(0),
        imm16: 0,
        shift: 0,
    });
    evil.ins(Insn::Msr {
        sr: SysReg::SctlrEl1,
        rt: Reg::x(0),
    });
    p.push(evil.build());
    let result = machine
        .kernel_mut()
        .load_module(p, &StaticPointerTable::new());
    let blocked = matches!(result, Err(KernelError::ModuleRejected { .. }));
    AttackResult {
        attack: "module-writes-sctlr",
        defence: "static verifier (§4.1)".to_string(),
        blocked,
        expected_blocked: true,
        detail: format!("{:?}", result.err()),
    }
}

/// `MRS` of a kernel key register from EL0: the hardware traps it before
/// any value transfers.
pub fn mrs_keys_from_el0() -> AttackResult {
    let mut machine = Machine::protected().expect("boot");
    let kernel = machine.kernel_mut();
    // Plant an EL0-executable page holding the MRS attempt.
    let user_table = kernel.tasks().next().expect("init task").user_table;
    let va = 0x0000_0000_00F0_0000u64;
    let frame = kernel
        .mem_mut()
        .map_new(user_table, va, S1Attr::user_text());
    let words = [
        encode(&Insn::Mrs {
            rt: Reg::x(0),
            sr: SysReg::ApibKeyLoEl1,
        }),
        encode(&Insn::Brk { imm: 0x666 }), // "we got the keys" marker
    ];
    for (i, w) in words.iter().enumerate() {
        kernel
            .mem_mut()
            .phys_mut()
            .write_u32(frame.base() + 4 * i as u64, *w)
            .expect("fresh frame");
    }
    {
        let cpu = kernel.cpu_mut();
        cpu.state.set_sysreg(SysReg::Ttbr0El1, user_table.raw());
        cpu.state.el = El::El0;
        cpu.state.pc = va;
        cpu.state.gprs[0] = 0;
    }
    let (cpu, mem) = kernel.cpu_mem_mut();
    let step = cpu.step(mem).expect("step");
    let trapped = matches!(step, Step::FaultTaken { .. })
        && cpu.state.sysreg(SysReg::EsrEl1) >> 26 == ec::TRAPPED_MSR
        && cpu.state.gprs[0] == 0;
    AttackResult {
        attack: "mrs-keys-from-el0",
        defence: "EL0 trap".to_string(),
        blocked: trapped,
        expected_blocked: true,
        detail: format!("{step:?}"),
    }
}

/// A user process cannot *verify* kernel pointers either: its PAuth keys
/// are its own random per-thread keys, not the kernel's (§6.2.3).
pub fn user_keys_differ_from_kernel_keys() -> bool {
    let mut machine = Machine::protected().expect("boot");
    let kernel = machine.kernel_mut();
    // After one full syscall the CPU holds the *user* keys again
    // (restored on exit).
    let _ = kernel.syscall(172, 0).expect("syscall");
    let after_exit = kernel.cpu().state.pauth_key(camo_isa::PauthKey::IB);
    let expected_user = kernel.tasks().next().expect("init").user_keys[0];
    after_exit == expected_user
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xom_blocks_reads_and_writes() {
        assert!(read_key_setter_memory().blocked);
        assert!(overwrite_key_setter_memory().blocked);
    }

    #[test]
    fn verifier_blocks_both_module_attacks() {
        assert!(load_key_reading_module().blocked);
        assert!(load_sctlr_writing_module().blocked);
    }

    #[test]
    fn el0_key_read_traps() {
        let r = mrs_keys_from_el0();
        assert!(r.blocked, "{}", r.detail);
    }

    #[test]
    fn syscall_exit_restores_user_keys() {
        assert!(user_keys_differ_from_kernel_keys());
    }
}
