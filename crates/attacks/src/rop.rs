//! Backward-edge attacks: injection and the replay matrix.

use crate::lab::{Lab, RunEnd, MARK_GADGET, MARK_HARVEST};
use crate::AttackResult;
use camo_core::{CfiScheme, Machine, ProtectionLevel};
use camo_mem::AccessType;

fn boot_level(level: ProtectionLevel) -> Lab {
    Lab::new(Machine::with_protection(level).expect("boot"))
}

fn boot_scheme(scheme: CfiScheme) -> Lab {
    Lab::new(Machine::with_scheme(scheme).expect("boot"))
}

/// Classic ROP: overwrite the saved return address in a victim's frame
/// record with the raw address of an attacker gadget (§2.1).
///
/// Expected: hijack succeeds only on the unprotected kernel; every PAuth
/// scheme turns the forged pointer into a fault.
pub fn injection_attack(level: ProtectionLevel) -> AttackResult {
    let mut lab = boot_level(level);
    let victim = lab.symbol("victim_a");
    let gadget = lab.symbol("gadget");
    let sp = lab.stack_for(0);
    let end = lab
        .run(victim, sp, &[], &mut |kernel, hook_sp| {
            let slot = Lab::saved_lr_slot(hook_sp);
            let ctx = kernel.cpu().translation_ctx();
            kernel
                .mem_mut()
                .write_u64(&ctx, slot, gadget)
                .expect("stack is writable");
        })
        .expect("no panic expected");
    let hijacked = end == RunEnd::Marker(MARK_GADGET);
    AttackResult {
        attack: "rop-injection",
        defence: level.to_string(),
        blocked: !hijacked,
        expected_blocked: level != ProtectionLevel::None,
        detail: format!("{end:?}"),
    }
}

/// Replay at the same SP into a *different* function: harvest the signed
/// return address from `victim_a`'s frame and inject it into `victim_b`'s
/// frame at an identical SP.
///
/// Expected: the SP-only (Clang) modifier validates the replay — control
/// returns into `harvest_caller` — while PARTS and Camouflage bind the
/// function identity and detect it (§4.2).
pub fn replay_same_sp_cross_function(scheme: CfiScheme) -> AttackResult {
    let mut lab = boot_scheme(scheme);
    let sp = lab.stack_for(0);

    // Run 1 (harvest): read the signed LR out of victim_a's frame.
    let mut captured = 0u64;
    let harvest_caller = lab.symbol("harvest_caller");
    let end = lab
        .run(harvest_caller, sp, &[], &mut |kernel, hook_sp| {
            let slot = Lab::saved_lr_slot(hook_sp);
            let ctx = kernel.cpu().translation_ctx();
            captured = kernel.mem().read_u64(&ctx, slot).expect("stack readable");
        })
        .expect("harvest run");
    assert_eq!(end, RunEnd::Marker(MARK_HARVEST), "harvest runs clean");
    assert_ne!(captured, 0);

    // Run 2 (attack): plant it in victim_b's frame, same SP.
    let attack_caller = lab.symbol("attack_caller");
    let end = lab
        .run(attack_caller, sp, &[], &mut |kernel, hook_sp| {
            let slot = Lab::saved_lr_slot(hook_sp);
            let ctx = kernel.cpu().translation_ctx();
            kernel
                .mem_mut()
                .write_u64(&ctx, slot, captured)
                .expect("stack writable");
        })
        .expect("attack run");
    // Success = control bent back into harvest_caller's marker.
    let hijacked = end == RunEnd::Marker(MARK_HARVEST);
    AttackResult {
        attack: "replay-same-sp-cross-fn",
        defence: format!("scheme={scheme}"),
        blocked: !hijacked,
        expected_blocked: scheme != CfiScheme::SpOnly,
        detail: format!("{end:?}"),
    }
}

/// Replay across threads whose kernel stacks sit exactly 64 KiB apart,
/// into the *same* function.
///
/// Expected: PARTS' 16-bit SP modifier repeats at the 2¹⁶ stride (§7) so
/// the replay validates; Camouflage's 32 SP bits (and even SP-only's full
/// SP) see different stacks and detect it.
pub fn replay_cross_thread_same_function(scheme: CfiScheme) -> AttackResult {
    let mut lab = boot_scheme(scheme);
    let tid_b = lab
        .machine_mut()
        .kernel_mut()
        .spawn("thread-b")
        .expect("spawn");
    let sp_a = lab.stack_for(0);
    let sp_b = lab.stack_for(tid_b);
    assert_eq!(sp_b - sp_a, (tid_b as u64) * 0x1_0000, "64 KiB stride");

    // Harvest on thread A.
    let mut captured = 0u64;
    let harvest_caller = lab.symbol("harvest_caller");
    let end = lab
        .run(harvest_caller, sp_a, &[], &mut |kernel, hook_sp| {
            let slot = Lab::saved_lr_slot(hook_sp);
            let ctx = kernel.cpu().translation_ctx();
            captured = kernel.mem().read_u64(&ctx, slot).expect("stack readable");
        })
        .expect("harvest run");
    assert_eq!(end, RunEnd::Marker(MARK_HARVEST));

    // Attack on thread B: same call chain (same function!), other stack.
    let end = lab
        .run(harvest_caller, sp_b, &[], &mut |kernel, hook_sp| {
            let slot = Lab::saved_lr_slot(hook_sp);
            let ctx = kernel.cpu().translation_ctx();
            kernel
                .mem_mut()
                .write_u64(&ctx, slot, captured)
                .expect("stack writable");
        })
        .expect("attack run");
    // The replayed pointer is *valid* for thread A's frame; reaching the
    // harvest marker via thread B means the replay validated. (Because the
    // victim is the same function returning to the same caller, a
    // validated replay lands on the same marker — what distinguishes the
    // schemes is fault vs no fault.)
    let hijacked = end == RunEnd::Marker(MARK_HARVEST);
    AttackResult {
        attack: "replay-cross-thread-64k",
        defence: format!("scheme={scheme}"),
        blocked: !hijacked,
        expected_blocked: scheme != CfiScheme::Parts,
        detail: format!("{end:?}"),
    }
}

/// Sanity helper: the paper's residual risk — replaying the *same*
/// function at the *same* SP validates under every scheme (§6.2.1 "an
/// attack is only possible when a pointer is replaced with another pointer
/// of the same type").
pub fn replay_same_context_residual(scheme: CfiScheme) -> AttackResult {
    let mut lab = boot_scheme(scheme);
    let sp = lab.stack_for(0);
    let mut captured = 0u64;
    let harvest_caller = lab.symbol("harvest_caller");
    let _ = lab
        .run(harvest_caller, sp, &[], &mut |kernel, hook_sp| {
            let slot = Lab::saved_lr_slot(hook_sp);
            let ctx = kernel.cpu().translation_ctx();
            captured = kernel.mem().read_u64(&ctx, slot).expect("stack readable");
        })
        .expect("harvest");
    let end = lab
        .run(harvest_caller, sp, &[], &mut |kernel, hook_sp| {
            let slot = Lab::saved_lr_slot(hook_sp);
            let ctx = kernel.cpu().translation_ctx();
            kernel
                .mem_mut()
                .write_u64(&ctx, slot, captured)
                .expect("stack writable");
        })
        .expect("attack");
    let validated = end == RunEnd::Marker(MARK_HARVEST);
    AttackResult {
        attack: "replay-identical-context",
        defence: format!("scheme={scheme}"),
        blocked: !validated,
        expected_blocked: false, // residual risk acknowledged by the paper
        detail: format!("{end:?}"),
    }
}

/// Verifies the stack really is writable through the attacker primitive
/// (threat-model sanity check).
pub fn stack_is_attacker_writable(level: ProtectionLevel) -> bool {
    let lab = boot_level(level);
    let k = lab.machine().kernel();
    let ctx = k.mem().kernel_ctx(k.kernel_table());
    let sp = lab.stack_for(0);
    k.mem().translate(&ctx, sp - 8, AccessType::Write).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_blocked_under_all_pauth_schemes() {
        for level in [ProtectionLevel::BackwardEdge, ProtectionLevel::Full] {
            let r = injection_attack(level);
            assert!(r.blocked, "{level}: {}", r.detail);
            assert!(r.matches_paper());
        }
    }

    #[test]
    fn injection_succeeds_on_baseline() {
        let r = injection_attack(ProtectionLevel::None);
        assert!(!r.blocked, "{}", r.detail);
        assert!(r.matches_paper());
    }

    #[test]
    fn sp_only_falls_to_cross_function_replay_but_camouflage_does_not() {
        let weak = replay_same_sp_cross_function(CfiScheme::SpOnly);
        assert!(!weak.blocked, "{}", weak.detail);
        let strong = replay_same_sp_cross_function(CfiScheme::Camouflage);
        assert!(strong.blocked, "{}", strong.detail);
        let parts = replay_same_sp_cross_function(CfiScheme::Parts);
        assert!(parts.blocked, "{}", parts.detail);
    }

    #[test]
    fn parts_falls_to_cross_thread_replay_but_camouflage_does_not() {
        let weak = replay_cross_thread_same_function(CfiScheme::Parts);
        assert!(!weak.blocked, "{}", weak.detail);
        let strong = replay_cross_thread_same_function(CfiScheme::Camouflage);
        assert!(strong.blocked, "{}", strong.detail);
    }

    #[test]
    fn identical_context_replay_is_residual_risk_everywhere() {
        for scheme in [CfiScheme::SpOnly, CfiScheme::Parts, CfiScheme::Camouflage] {
            let r = replay_same_context_residual(scheme);
            assert!(!r.blocked, "{scheme}: {}", r.detail);
            assert!(r.matches_paper());
        }
    }

    #[test]
    fn threat_model_grants_stack_writes() {
        assert!(stack_is_attacker_writable(ProtectionLevel::Full));
    }
}
