//! Forward-edge and data-flow attacks on protected pointers.

use crate::lab::{Lab, RunEnd, MARK_GADGET};
use crate::AttackResult;
use camo_core::{Machine, ProtectionLevel};
use camo_kernel::layout::{file_struct, work_struct};
use camo_kernel::FileKind;

/// JOP via `f_ops`: swing a file's operations-table pointer to an
/// attacker-crafted table in writable memory whose `read` slot points at a
/// gadget (§4.5's motivating attack).
///
/// Expected: with DFI the authenticated load of `f_ops` faults; with
/// backward-edge-only or no protection the attacker's table is used and
/// the gadget runs.
pub fn forge_f_ops(level: ProtectionLevel) -> AttackResult {
    let mut lab = Lab::new(Machine::with_protection(level).expect("boot"));
    let gadget = lab.symbol("gadget");
    let sys_read = lab.symbol("sys_read");
    let sp = lab.stack_for(0);

    let kernel = lab.machine_mut().kernel_mut();
    let file = kernel.file_of_fd(3).expect("init's pre-opened file");
    // Build a fake ops table in writable kernel memory (the work heap page
    // doubles as attacker-reachable scratch).
    let fake_table = camo_kernel::work_heap_base() + 0x800;
    let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
    for member in (0..64).step_by(8) {
        kernel
            .mem_mut()
            .write_u64(&ctx, fake_table + member, gadget)
            .expect("heap writable");
    }
    // The arbitrary-write primitive: replace the (signed) f_ops pointer.
    kernel
        .mem_mut()
        .write_u64(&ctx, file + u64::from(file_struct::F_OPS), fake_table)
        .expect("file object writable");

    let end = lab
        .run(sys_read, sp, &[file, 0, 0], &mut |_, _| {})
        .expect("no panic expected");
    let hijacked = end == RunEnd::Marker(MARK_GADGET);
    AttackResult {
        attack: "forge-f_ops-table",
        defence: level.to_string(),
        blocked: !hijacked,
        expected_blocked: level == ProtectionLevel::Full,
        detail: format!("{end:?}"),
    }
}

/// Overwrite a lone writable function pointer (`work_struct::func`) with a
/// raw kernel address (§4.4's "lone function pointers").
pub fn forge_work_callback(level: ProtectionLevel) -> AttackResult {
    let mut machine = Machine::with_protection(level).expect("boot");
    let kernel = machine.kernel_mut();
    let work = kernel.init_work("dev_poll").expect("init_work");
    let target = kernel.symbol("dev_read");
    let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
    kernel
        .mem_mut()
        .write_u64(&ctx, work + u64::from(work_struct::FUNC), target)
        .expect("work heap writable");
    let out = kernel.run_work(work).expect("below panic threshold");
    let blocked = out.fault.map(|f| f.pac_failure).unwrap_or(false);
    AttackResult {
        attack: "forge-work-callback",
        defence: level.to_string(),
        blocked,
        expected_blocked: level == ProtectionLevel::Full,
        detail: format!("fault={:?}", out.fault),
    }
}

/// §6.3: byte-wise copying of an object containing a signed pointer breaks
/// — the PAC binds the containing object's address, so the copy fails to
/// authenticate. This is the deliberate ISO-C compliance trade-off.
pub fn memcpy_compliance_break() -> AttackResult {
    let mut lab = Lab::new(Machine::protected().expect("boot"));
    let sys_read = lab.symbol("sys_read");
    let sp = lab.stack_for(0);

    let kernel = lab.machine_mut().kernel_mut();
    let original = kernel.file_of_fd(3).expect("pre-opened file");
    // "memcpy" the struct file to a fresh location, signed f_ops included.
    let copy = camo_kernel::work_heap_base() + 0xC00;
    let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
    for off in (0..file_struct::SIZE).step_by(8) {
        let word = kernel
            .mem()
            .read_u64(&ctx, original + off)
            .expect("readable");
        kernel
            .mem_mut()
            .write_u64(&ctx, copy + off, word)
            .expect("writable");
    }

    let end = lab
        .run(sys_read, sp, &[copy, 0, 0], &mut |_, _| {})
        .expect("no panic expected");
    let detected = end == RunEnd::PacDetected;
    AttackResult {
        attack: "memcpy-object-copy (§6.3)",
        defence: "full".to_string(),
        blocked: detected,
        expected_blocked: true,
        detail: format!("{end:?}"),
    }
}

/// Legitimately re-signing after a copy works: the `set`/`get` accessor
/// discipline is what code must follow post-Camouflage (§6.3 "fail
/// without code adaptation").
pub fn resigned_copy_works() -> bool {
    let mut lab = Lab::new(Machine::protected().expect("boot"));
    let sys_read = lab.symbol("sys_read");
    let sp = lab.stack_for(0);
    let kernel = lab.machine_mut().kernel_mut();
    let copy = kernel
        .alloc_file(FileKind::DevZero)
        .expect("fresh signed file");
    let end = lab
        .run(sys_read, sp, &[copy, 0, 0], &mut |_, _| {})
        .expect("clean run");
    end == RunEnd::Returned
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fops_forgery_blocked_only_by_full_protection() {
        let full = forge_f_ops(ProtectionLevel::Full);
        assert!(full.blocked, "{}", full.detail);
        let backward = forge_f_ops(ProtectionLevel::BackwardEdge);
        assert!(!backward.blocked, "{}", backward.detail);
        let none = forge_f_ops(ProtectionLevel::None);
        assert!(!none.blocked, "{}", none.detail);
        for r in [full, backward, none] {
            assert!(r.matches_paper(), "{} vs {}", r.attack, r.defence);
        }
    }

    #[test]
    fn work_callback_forgery_detected_under_full() {
        let r = forge_work_callback(ProtectionLevel::Full);
        assert!(r.blocked, "{}", r.detail);
    }

    #[test]
    fn memcpy_break_demonstrates_compliance_tradeoff() {
        let r = memcpy_compliance_break();
        assert!(r.blocked, "{}", r.detail);
    }

    #[test]
    fn adapted_code_with_accessors_still_works() {
        assert!(resigned_copy_works());
    }
}
