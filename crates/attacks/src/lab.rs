//! The attack laboratory: victim code and the tampering runner.

use camo_codegen::{FunctionBuilder, Program, StaticPointerTable};
use camo_core::Machine;
use camo_cpu::{Step, CALL_SENTINEL};
use camo_isa::{Insn, Reg};
use camo_kernel::{layout, Kernel, KernelError, Tid};
use camo_mem::El;

/// `BRK` immediate fired mid-body in the victims: the moment the
/// "memory-corruption bug" strikes.
pub const HOOK: u16 = 0x210;
/// Marker after `harvest_caller`'s call site.
pub const MARK_HARVEST: u16 = 0x211;
/// Marker after `attack_caller`'s call site.
pub const MARK_ATTACK: u16 = 0x212;
/// Marker inside the attacker's gadget.
pub const MARK_GADGET: u16 = 0x213;

/// Stack locals reserved by the victims (frame geometry the tamper
/// closures rely on).
pub const VICTIM_LOCALS: u16 = 32;

/// How a laboratory run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// Execution reached a marker `BRK` — the attack redirected control if
    /// the marker differs from the clean path's.
    Marker(u16),
    /// A kernel-mode fault with a PAC-failure signature: CFI detection.
    PacDetected,
    /// A kernel-mode fault without the signature (wild pointer).
    Faulted,
    /// The entry function returned normally to the runner.
    Returned,
}

/// An attack laboratory around a booted machine with victim code loaded
/// as a (verified) kernel module.
#[derive(Debug)]
pub struct Lab {
    machine: Machine,
}

impl Lab {
    /// Builds the victim module and loads it into `machine`'s kernel.
    ///
    /// # Panics
    ///
    /// Panics if the victim module fails verification (it is clean by
    /// construction).
    pub fn new(mut machine: Machine) -> Lab {
        let cfg = machine.kernel().codegen_config();
        let mut p = Program::new(cfg);

        for victim in ["victim_a", "victim_b"] {
            let mut b = FunctionBuilder::new(victim, cfg).locals(VICTIM_LOCALS);
            b.ins(Insn::AddImm {
                rd: Reg::x(10),
                rn: Reg::x(10),
                imm12: 1,
                shifted: false,
            });
            b.ins(Insn::Brk { imm: HOOK });
            b.ins(Insn::AddImm {
                rd: Reg::x(10),
                rn: Reg::x(10),
                imm12: 2,
                shifted: false,
            });
            p.push(b.build());
        }
        // Callers with identical frames, so their victims run at the same SP.
        let mut harvest = FunctionBuilder::new("harvest_caller", cfg).locals(16);
        harvest.call("victim_a");
        harvest.ins(Insn::Brk { imm: MARK_HARVEST });
        p.push(harvest.build());

        let mut attack = FunctionBuilder::new("attack_caller", cfg).locals(16);
        attack.call("victim_b");
        attack.ins(Insn::Brk { imm: MARK_ATTACK });
        p.push(attack.build());

        let mut gadget = FunctionBuilder::new("gadget", cfg).naked();
        gadget.ins(Insn::Brk { imm: MARK_GADGET });
        gadget.ins(Insn::ret());
        p.push(gadget.build());

        machine
            .kernel_mut()
            .load_module(p, &StaticPointerTable::new())
            .expect("victim module is clean");
        Lab { machine }
    }

    /// The machine under attack.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Resolves a symbol in the victim module or the kernel image.
    pub fn symbol(&self, name: &str) -> u64 {
        let k = self.machine.kernel();
        for m in module_handles(k) {
            if let Some(va) = m.image.symbol(name) {
                return va;
            }
        }
        k.symbol(name)
    }

    /// The runner SP for task `tid` (a consistent depth on its kernel
    /// stack).
    pub fn stack_for(&self, tid: Tid) -> u64 {
        layout::stack_top(tid) - 512
    }

    /// Runs `entry` at EL1 on stack `sp` with up to three arguments,
    /// invoking `tamper(kernel, hook_sp)` at every victim [`HOOK`].
    ///
    /// # Errors
    ///
    /// Propagates [`KernelError::PacPanic`] (the §5.4 halt) and CPU errors.
    pub fn run(
        &mut self,
        entry: u64,
        sp: u64,
        args: &[u64],
        tamper: &mut dyn FnMut(&mut Kernel, u64),
    ) -> Result<RunEnd, KernelError> {
        let cpu = self.machine.kernel().current_cpu();
        self.run_on(cpu, entry, sp, args, tamper)
    }

    /// [`Lab::run`] driven on a specific core of a multi-CPU machine —
    /// the cross-core attack entry point. The victim executes on `cpu`
    /// with that core's key registers and caches.
    ///
    /// # Errors
    ///
    /// Propagates [`KernelError::PacPanic`] (the §5.4 halt) and CPU errors.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn run_on(
        &mut self,
        cpu: usize,
        entry: u64,
        sp: u64,
        args: &[u64],
        tamper: &mut dyn FnMut(&mut Kernel, u64),
    ) -> Result<RunEnd, KernelError> {
        let kernel = self.machine.kernel_mut();
        kernel.set_current_cpu(cpu);
        {
            let cpu = kernel.cpu_mut();
            cpu.state.el = El::El1;
            cpu.state.sp_el1 = sp;
            for (i, &a) in args.iter().enumerate() {
                cpu.state.gprs[i] = a;
            }
            cpu.state.write(Reg::LR, CALL_SENTINEL);
            cpu.state.pc = entry;
        }
        for _ in 0..1_000_000u64 {
            let step = {
                let kernel = self.machine.kernel_mut();
                let (cpu, mem) = kernel.cpu_mem_mut();
                cpu.step(mem)?
            };
            match step {
                Step::SentinelReturn => return Ok(RunEnd::Returned),
                Step::BrkTrap { imm } if imm == HOOK => {
                    let kernel = self.machine.kernel_mut();
                    let hook_sp = kernel.cpu().state.sp_el1;
                    tamper(kernel, hook_sp);
                }
                Step::BrkTrap { imm } if imm == layout::upcall::EL1_FAULT => {
                    let info = self.machine.kernel_mut().observe_el1_fault()?;
                    return Ok(if info.pac_failure {
                        RunEnd::PacDetected
                    } else {
                        RunEnd::Faulted
                    });
                }
                Step::BrkTrap { imm } => return Ok(RunEnd::Marker(imm)),
                _ => continue,
            }
        }
        Err(KernelError::Hung)
    }

    /// The saved-LR slot of a victim frame, given the SP observed at the
    /// victim's [`HOOK`]: above the locals, second word of the frame
    /// record.
    pub fn saved_lr_slot(hook_sp: u64) -> u64 {
        hook_sp + u64::from(VICTIM_LOCALS) + 8
    }
}

fn module_handles(k: &Kernel) -> &[camo_kernel::ModuleHandle] {
    k.modules()
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_core::ProtectionLevel;

    #[test]
    fn clean_victim_run_returns_normally() {
        let mut lab = Lab::new(Machine::with_protection(ProtectionLevel::Full).unwrap());
        let victim = lab.symbol("victim_a");
        let sp = lab.stack_for(0);
        let end = lab.run(victim, sp, &[], &mut |_, _| {}).unwrap();
        assert_eq!(end, RunEnd::Returned);
    }

    #[test]
    fn clean_caller_run_hits_its_own_marker() {
        let mut lab = Lab::new(Machine::with_protection(ProtectionLevel::Full).unwrap());
        let caller = lab.symbol("attack_caller");
        let sp = lab.stack_for(0);
        let end = lab.run(caller, sp, &[], &mut |_, _| {}).unwrap();
        assert_eq!(end, RunEnd::Marker(MARK_ATTACK));
    }

    #[test]
    fn hook_reports_victim_stack_pointer() {
        let mut lab = Lab::new(Machine::with_protection(ProtectionLevel::Full).unwrap());
        let victim = lab.symbol("victim_a");
        let sp = lab.stack_for(0);
        let mut seen = None;
        let _ = lab
            .run(victim, sp, &[], &mut |_, hook_sp| seen = Some(hook_sp))
            .unwrap();
        // Victim frame: 16-byte record + locals below the runner SP.
        assert_eq!(seen, Some(sp - 16 - u64::from(VICTIM_LOCALS)));
    }
}
