//! Cross-core attack scenarios: the §5.4/§6.2 arguments on a multi-core
//! machine.
//!
//! Two properties make the single-core security story carry over to SMP,
//! and both are *executed* here rather than argued:
//!
//! * the §5.4 failure counter is cluster-global, so a brute forcer cannot
//!   dodge the panic threshold by guessing from a sibling core while a
//!   victim workload runs elsewhere;
//! * kernel PAuth keys are system-wide (every core runs the XOM setter at
//!   boot) and user keys follow the task (`thread_struct` migration), so
//!   replaying a signed pointer on a different core — before or after the
//!   victim task migrates — changes nothing about which modifiers bind:
//!   the scheme, not the core, decides detection.

use crate::lab::{Lab, RunEnd, MARK_HARVEST};
use crate::AttackResult;
use camo_core::{CfiScheme, Machine};
use camo_kernel::layout::work_struct;
use camo_kernel::{KernelConfig, KernelError, KernelEvent};
use camo_mem::PointerLayout;
use camo_smp::Cluster;

/// Brute-force from a sibling core: the attacker guesses kernel PACs via a
/// forged work callback executed on core 1 while benign worker processes
/// keep serving syscalls (each fresh worker becomes the current task its
/// guess then kills). Expected: the cluster-global §5.4 counter halts the
/// machine after exactly `threshold` failures — all observed on core 1,
/// none of which the traffic on the other core can launder away.
pub fn cross_core_brute_force(threshold: u32) -> AttackResult {
    let mut cfg = KernelConfig::default();
    cfg.pac_panic_threshold = threshold;
    cfg.cpus = 2;
    let mut cluster = Cluster::boot(cfg).expect("boot");
    let kernel = cluster.kernel_mut();
    let target = kernel.symbol("dev_read");
    let layout = PointerLayout::kernel();

    let mut attempts = 0u32;
    let outcome = loop {
        // Benign traffic: a fresh worker process serves a syscall on its
        // home core (the scheduler spreads workers across the cluster).
        let worker = kernel.spawn("worker").expect("spawn");
        kernel
            .run_user(worker, "stub", 1, 172, 0)
            .expect("benign traffic");

        // The guess, executed on core 1.
        let work = kernel.init_work("dev_poll").expect("init_work");
        let guess = layout.embed_pac(target, attempts);
        let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
        kernel
            .mem_mut()
            .write_u64(&ctx, work + u64::from(work_struct::FUNC), guess)
            .expect("work heap writable");
        attempts += 1;
        kernel.set_current_cpu(1);
        match kernel.run_work(work) {
            Ok(out) => {
                if out.fault.is_none() {
                    break Outcome::Guessed { attempts };
                }
            }
            Err(KernelError::PacPanic { failures }) => break Outcome::Halted { failures },
            Err(e) => panic!("unexpected kernel error: {e}"),
        }
        if attempts > threshold + 4 {
            break Outcome::FailedOpen { attempts };
        }
    };

    let observers: Vec<usize> = cluster
        .kernel()
        .events()
        .iter()
        .filter_map(|e| match e {
            KernelEvent::PacFailure { cpu, .. } => Some(*cpu),
            _ => None,
        })
        .collect();
    let (blocked, detail) = match outcome {
        Outcome::Halted { failures } => (
            failures == threshold && observers.iter().all(|&c| c == 1),
            format!(
                "halted after {failures} failures, all observed on core 1 \
                 while traffic ran on the cluster (threshold {threshold})"
            ),
        ),
        Outcome::Guessed { attempts } => (
            false,
            format!("PAC guessed in {attempts} attempts (unlucky boot)"),
        ),
        Outcome::FailedOpen { attempts } => (false, format!("no halt after {attempts} attempts")),
    };
    AttackResult {
        attack: "smp-brute-force-sibling-core",
        defence: format!("2-core, panic-threshold={threshold}"),
        blocked,
        expected_blocked: true,
        detail,
    }
}

#[derive(Debug)]
enum Outcome {
    Halted { failures: u32 },
    Guessed { attempts: u32 },
    FailedOpen { attempts: u32 },
}

/// Cross-core replay after migration: harvest a signed return address on
/// core 0, migrate the victim task to core 1 (its `thread_struct` keys
/// follow), and replay the pointer into a *different* function's frame at
/// the same SP on core 1.
///
/// Kernel keys are system-wide, so crossing cores neither helps nor hurts
/// the attacker: the SP-only modifier still validates the replay (the
/// hijack succeeds on core 1 exactly as it would have on core 0), while
/// Camouflage and PARTS bind the function identity and detect it on
/// whichever core the authentication runs.
pub fn cross_core_replay_after_migration(scheme: CfiScheme) -> AttackResult {
    let mut cfg = KernelConfig::default();
    cfg.cpus = 2;
    cfg.scheme_override = Some(scheme);
    let mut lab = Lab::new(Machine::with_config(cfg).expect("boot"));
    let sp = lab.stack_for(0);

    // Harvest on core 0: read the signed LR out of victim_a's frame.
    let mut captured = 0u64;
    let harvest_caller = lab.symbol("harvest_caller");
    let end = lab
        .run_on(0, harvest_caller, sp, &[], &mut |kernel, hook_sp| {
            let slot = Lab::saved_lr_slot(hook_sp);
            let ctx = kernel.cpu().translation_ctx();
            captured = kernel.mem().read_u64(&ctx, slot).expect("stack readable");
        })
        .expect("harvest run");
    assert_eq!(end, RunEnd::Marker(MARK_HARVEST), "harvest runs clean");

    // Migrate the victim task (tid 0) to core 1; its user keys follow in
    // thread_struct. The kernel keys authenticating the replayed LR are
    // per-core register state installed from the same boot secret.
    lab.machine_mut()
        .kernel_mut()
        .migrate_task(0, 1)
        .expect("migrate");

    // Replay on core 1, same SP, different function (victim_b's frame).
    let attack_caller = lab.symbol("attack_caller");
    let end = lab
        .run_on(1, attack_caller, sp, &[], &mut |kernel, hook_sp| {
            let slot = Lab::saved_lr_slot(hook_sp);
            let ctx = kernel.cpu().translation_ctx();
            kernel
                .mem_mut()
                .write_u64(&ctx, slot, captured)
                .expect("stack writable");
        })
        .expect("attack run");
    let hijacked = end == RunEnd::Marker(MARK_HARVEST);
    AttackResult {
        attack: "smp-replay-cross-core-migrated",
        defence: format!("2-core, scheme={scheme}"),
        blocked: !hijacked,
        expected_blocked: scheme != CfiScheme::SpOnly,
        detail: format!("{end:?} (authentication ran on core 1)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_core_brute_force_is_halted_cluster_wide() {
        let r = cross_core_brute_force(6);
        assert!(r.blocked, "{}", r.detail);
        assert!(r.matches_paper());
        assert!(r.detail.contains("all observed on core 1"));
    }

    #[test]
    fn cross_core_replay_outcomes_track_the_scheme_not_the_core() {
        let weak = cross_core_replay_after_migration(CfiScheme::SpOnly);
        assert!(!weak.blocked, "{}", weak.detail);
        assert!(weak.matches_paper());
        for scheme in [CfiScheme::Parts, CfiScheme::Camouflage] {
            let strong = cross_core_replay_after_migration(scheme);
            assert!(strong.blocked, "{scheme}: {}", strong.detail);
            assert!(strong.matches_paper());
        }
    }
}
