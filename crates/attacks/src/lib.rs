//! Attack framework: the §6.2 security evaluation, executed.
//!
//! Every attack here models the §3.1 adversary — arbitrary user processes
//! plus a kernel-memory read/write primitive — and is *run* against the
//! simulated machine rather than argued on paper:
//!
//! * [`rop`] — return-address injection and the replay matrix
//!   distinguishing SP-only, PARTS and Camouflage modifiers;
//! * [`pointer`](mod@pointer) — forward-edge/DFI attacks on `f_ops` and work
//!   callbacks, plus the §6.3 `memcpy` compliance break;
//! * [`brute`] — §5.4 brute-forcing of the 15-bit kernel PAC against the
//!   panic threshold;
//! * [`oracle`] — §6.2.2/§6.2.3 key-confidentiality probes: reading XOM,
//!   loading key-reading modules, `MRS` from EL0;
//! * [`smp`] — cross-core scenarios on a multi-core machine: brute force
//!   from a sibling core against the cluster-global §5.4 counter, and
//!   replay of a pointer signed on another core after task migration.
//!
//! [`security_matrix`] runs the full suite across protection levels and
//! schemes and reports which attacks were blocked — the reproduction of
//! the paper's security evaluation table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
mod lab;
pub mod oracle;
pub mod pointer;
pub mod rop;
pub mod smp;

pub use lab::{Lab, RunEnd, HOOK, MARK_ATTACK, MARK_GADGET, MARK_HARVEST, VICTIM_LOCALS};

use camo_core::{CfiScheme, ProtectionLevel};

/// The result of one attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackResult {
    /// Attack name.
    pub attack: &'static str,
    /// The defence configuration it ran against.
    pub defence: String,
    /// Whether the attack was blocked (detected or made impossible).
    pub blocked: bool,
    /// Whether the paper's design expects it to be blocked under this
    /// defence.
    pub expected_blocked: bool,
    /// Free-form detail for the report.
    pub detail: String,
}

impl AttackResult {
    /// Whether the observed outcome matches the paper's claim.
    pub fn matches_paper(&self) -> bool {
        self.blocked == self.expected_blocked
    }
}

/// Runs the complete attack suite and returns the evaluation matrix.
///
/// # Panics
///
/// Panics if a machine fails to boot (environment bug, not an attack
/// outcome).
pub fn security_matrix() -> Vec<AttackResult> {
    let mut results = Vec::new();

    // ROP injection across the three protection levels.
    for level in ProtectionLevel::ALL {
        results.push(rop::injection_attack(level));
    }
    // Replay matrix across backward-edge schemes.
    for scheme in [CfiScheme::SpOnly, CfiScheme::Parts, CfiScheme::Camouflage] {
        results.push(rop::replay_same_sp_cross_function(scheme));
        results.push(rop::replay_cross_thread_same_function(scheme));
    }
    // Forward-edge / DFI.
    for level in ProtectionLevel::ALL {
        results.push(pointer::forge_f_ops(level));
    }
    results.push(pointer::forge_work_callback(ProtectionLevel::Full));
    results.push(pointer::memcpy_compliance_break());
    // Brute force.
    results.push(brute::brute_force_pac(16));
    // Key confidentiality.
    results.push(oracle::read_key_setter_memory());
    results.push(oracle::overwrite_key_setter_memory());
    results.push(oracle::load_key_reading_module());
    results.push(oracle::load_sctlr_writing_module());
    results.push(oracle::mrs_keys_from_el0());
    // Cross-core scenarios (2-CPU cluster).
    results.push(smp::cross_core_brute_force(16));
    for scheme in [CfiScheme::SpOnly, CfiScheme::Parts, CfiScheme::Camouflage] {
        results.push(smp::cross_core_replay_after_migration(scheme));
    }
    results
}

/// Renders the matrix as an aligned text table.
pub fn render_matrix(results: &[AttackResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:<22} {:>8} {:>9} {:>6}",
        "attack", "defence", "blocked", "expected", "match"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<34} {:<22} {:>8} {:>9} {:>6}",
            r.attack,
            r.defence,
            r.blocked,
            r.expected_blocked,
            if r.matches_paper() { "ok" } else { "MISMATCH" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_matches_paper_claims() {
        let results = security_matrix();
        assert!(results.len() >= 18);
        for r in &results {
            assert!(
                r.matches_paper(),
                "{} vs {}: blocked={} expected={} ({})",
                r.attack,
                r.defence,
                r.blocked,
                r.expected_blocked,
                r.detail
            );
        }
    }

    #[test]
    fn render_produces_a_row_per_result() {
        let results = security_matrix();
        let text = render_matrix(&results);
        assert_eq!(text.lines().count(), results.len() + 1);
        assert!(!text.contains("MISMATCH"), "\n{text}");
    }
}
