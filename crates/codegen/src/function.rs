//! Function construction: prologues, epilogues, bodies, symbolic calls.

use crate::{parts_function_id, CfiScheme, CodegenConfig};
use camo_isa::{Insn, InsnKey, PacKey, PairMode, Reg};

/// A compiled function: instructions plus unresolved symbolic calls.
///
/// Produced by [`FunctionBuilder`], consumed by [`crate::Program::link`].
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    insns: Vec<Insn>,
    /// `(instruction index, callee symbol)` pairs for `BL` fixups.
    calls: Vec<(usize, String)>,
}

impl Function {
    /// The function's symbol name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions (with `BL` placeholders where calls go).
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// The symbolic call sites.
    pub fn calls(&self) -> &[(usize, String)] {
        &self.calls
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.insns.len() as u64 * 4
    }

    pub(crate) fn patch_call(&mut self, index: usize, offset: i32) {
        self.insns[index] = Insn::Bl { offset };
    }
}

/// Builds one function under a [`CodegenConfig`].
///
/// The prologue and epilogue follow the configured CFI scheme exactly as in
/// the paper's listings; the body is appended through [`FunctionBuilder::ins`],
/// [`FunctionBuilder::call`] and the protected-pointer emitters.
///
/// Register conventions inside generated code match AAPCS64 where it
/// matters: `x0..x7` arguments/return, `x8`/`x9` scratch, `ip0`/`ip1`
/// (`x16`/`x17`) reserved for the instrumentation itself, `fp`/`lr` frame.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    cfg: CodegenConfig,
    body: Vec<Insn>,
    calls: Vec<(usize, String)>,
    leaf: bool,
    naked: bool,
    local_bytes: u16,
}

impl FunctionBuilder {
    /// Starts a function named `name`.
    pub fn new(name: impl Into<String>, cfg: CodegenConfig) -> Self {
        FunctionBuilder {
            name: name.into(),
            cfg,
            body: Vec::new(),
            calls: Vec::new(),
            leaf: false,
            naked: false,
            local_bytes: 0,
        }
    }

    /// Marks the function as a leaf with no stack frame.
    ///
    /// Per §6.1.2, frame-less leaves receive no backward-edge
    /// instrumentation — their LR never touches memory.
    pub fn leaf(mut self) -> Self {
        self.leaf = true;
        self
    }

    /// Marks the function as *naked*: the body is emitted verbatim with no
    /// prologue, epilogue, or trailing `RET`.
    ///
    /// For hand-written entry/exit stubs (exception vectors, `kernel_entry`
    /// / `kernel_exit`, the `frame_push`/`frame_pop` analogues of §5.2)
    /// whose control flow is not a function return.
    pub fn naked(mut self) -> Self {
        self.naked = true;
        self
    }

    /// Reserves `bytes` of stack locals (rounded up to 16).
    pub fn locals(mut self, bytes: u16) -> Self {
        self.local_bytes = (bytes + 15) & !15;
        self
    }

    /// The configuration this function is built under.
    pub fn config(&self) -> CodegenConfig {
        self.cfg
    }

    /// Appends one body instruction.
    pub fn ins(&mut self, insn: Insn) -> &mut Self {
        self.body.push(insn);
        self
    }

    /// Appends several body instructions.
    pub fn ins_all(&mut self, insns: impl IntoIterator<Item = Insn>) -> &mut Self {
        self.body.extend(insns);
        self
    }

    /// Appends a call to the named function (resolved at link time).
    pub fn call(&mut self, callee: impl Into<String>) -> &mut Self {
        self.calls.push((self.body.len(), callee.into()));
        self.body.push(Insn::Bl { offset: 0 });
        self
    }

    /// Finalizes the function: prologue + body + epilogue.
    pub fn build(self) -> Function {
        if self.naked {
            return Function {
                name: self.name,
                insns: self.body,
                calls: self.calls,
            };
        }
        let mut insns = Vec::new();
        if !self.leaf {
            emit_prologue(&mut insns, &self.name, self.cfg);
            if self.local_bytes > 0 {
                insns.push(Insn::SubImm {
                    rd: Reg::Sp,
                    rn: Reg::Sp,
                    imm12: self.local_bytes,
                    shifted: false,
                });
            }
        }
        let body_base = insns.len();
        let calls = self
            .calls
            .into_iter()
            .map(|(idx, name)| (idx + body_base, name))
            .collect();
        insns.extend(self.body);
        if !self.leaf {
            if self.local_bytes > 0 {
                insns.push(Insn::AddImm {
                    rd: Reg::Sp,
                    rn: Reg::Sp,
                    imm12: self.local_bytes,
                    shifted: false,
                });
            }
            emit_epilogue(&mut insns, &self.name, self.cfg);
        }
        insns.push(Insn::ret());
        Function {
            name: self.name,
            insns,
            calls,
        }
    }
}

/// Emits the modifier-construction sequence into `ip0`, given the emission
/// position (`adr` is PC-relative, so the distance back to the function
/// entry matters).
fn emit_modifier(insns: &mut Vec<Insn>, name: &str, scheme: CfiScheme) {
    match scheme {
        CfiScheme::None | CfiScheme::SpOnly => {}
        CfiScheme::Camouflage => {
            // Listing 3:
            //   adr  ip0, function
            //   mov  ip1, sp
            //   bfi  ip0, ip1, #32, #32
            let back = -(4 * insns.len() as i32);
            insns.push(Insn::Adr {
                rd: Reg::IP0,
                offset: back,
            });
            insns.push(Insn::mov_sp(Reg::IP1, Reg::Sp));
            insns.push(Insn::bfi(Reg::IP0, Reg::IP1, 32, 32));
        }
        CfiScheme::Parts => {
            // mov ip0, sp; movk ip0, #id₀, lsl 16; ... (48-bit LTO id)
            let id = parts_function_id(name);
            insns.push(Insn::mov_sp(Reg::IP0, Reg::Sp));
            for (i, shift) in [(0u32, 1u8), (1, 2), (2, 3)] {
                insns.push(Insn::Movk {
                    rd: Reg::IP0,
                    imm16: ((id >> (16 * i)) & 0xFFFF) as u16,
                    shift,
                });
            }
        }
    }
}

fn emit_prologue(insns: &mut Vec<Insn>, name: &str, cfg: CodegenConfig) {
    match cfg.scheme {
        CfiScheme::None => {}
        CfiScheme::SpOnly => {
            // Listing 2 — hint form, NOP-compatible by construction.
            insns.push(Insn::PacSp { key: InsnKey::A });
        }
        CfiScheme::Camouflage | CfiScheme::Parts => {
            emit_modifier(insns, name, cfg.scheme);
            if cfg.compat_v80 {
                // §5.5: only PACIB1716 exists pre-8.3, and it signs x17
                // with x16 as modifier — shuffle LR through ip1.
                insns.push(Insn::mov(Reg::IP1, Reg::LR));
                insns.push(Insn::Pac1716 { key: InsnKey::B });
                insns.push(Insn::mov(Reg::LR, Reg::IP1));
            } else {
                insns.push(Insn::Pac {
                    key: PacKey::IB,
                    rd: Reg::LR,
                    rn: Reg::IP0,
                });
            }
        }
    }
    // The Listing 1 frame record.
    insns.push(Insn::Stp {
        rt: Reg::FP,
        rt2: Reg::LR,
        rn: Reg::Sp,
        mode: PairMode::Pre(-16),
    });
    insns.push(Insn::mov_sp(Reg::FP, Reg::Sp));
}

fn emit_epilogue(insns: &mut Vec<Insn>, name: &str, cfg: CodegenConfig) {
    insns.push(Insn::Ldp {
        rt: Reg::FP,
        rt2: Reg::LR,
        rn: Reg::Sp,
        mode: PairMode::Post(16),
    });
    match cfg.scheme {
        CfiScheme::None => {}
        CfiScheme::SpOnly => {
            insns.push(Insn::AutSp { key: InsnKey::A });
        }
        CfiScheme::Camouflage | CfiScheme::Parts => {
            emit_modifier(insns, name, cfg.scheme);
            if cfg.compat_v80 {
                insns.push(Insn::mov(Reg::IP1, Reg::LR));
                insns.push(Insn::Aut1716 { key: InsnKey::B });
                insns.push(Insn::mov(Reg::LR, Reg::IP1));
            } else {
                insns.push(Insn::Aut {
                    key: PacKey::IB,
                    rd: Reg::LR,
                    rn: Reg::IP0,
                });
            }
        }
    }
}

/// The per-call instrumentation overhead (prologue + epilogue extra
/// instructions) of a scheme, in instructions.
pub fn instrumentation_insns(scheme: CfiScheme, compat: bool) -> usize {
    match (scheme, compat) {
        (CfiScheme::None, _) => 0,
        (CfiScheme::SpOnly, _) => 2,
        (CfiScheme::Camouflage, false) => 8,
        (CfiScheme::Camouflage, true) => 14,
        (CfiScheme::Parts, false) => 10,
        (CfiScheme::Parts, true) => 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(scheme: CfiScheme) -> Function {
        let cfg = CodegenConfig {
            scheme,
            protect_pointers: true,
            compat_v80: false,
        };
        FunctionBuilder::new("f", cfg).build()
    }

    #[test]
    fn baseline_matches_listing1() {
        let f = build(CfiScheme::None);
        let text: Vec<String> = f.insns().iter().map(|i| i.to_string()).collect();
        assert_eq!(
            text,
            vec![
                "stp x29, x30, [sp, #-16]!",
                "add x29, sp, #0",
                "ldp x29, x30, [sp], #16",
                "ret",
            ]
        );
    }

    #[test]
    fn sp_only_matches_listing2() {
        let f = build(CfiScheme::SpOnly);
        let text: Vec<String> = f.insns().iter().map(|i| i.to_string()).collect();
        assert_eq!(text[0], "paciasp");
        assert_eq!(text[text.len() - 2], "autiasp");
    }

    #[test]
    fn camouflage_matches_listing3() {
        let f = build(CfiScheme::Camouflage);
        let text: Vec<String> = f.insns().iter().map(|i| i.to_string()).collect();
        assert_eq!(
            &text[..6],
            &[
                "adr x16, +0",
                "add x17, sp, #0",
                "bfi x16, x17, #32, #32",
                "pacib x30, x16",
                "stp x29, x30, [sp, #-16]!",
                "add x29, sp, #0",
            ]
        );
        // Epilogue rebuilds the modifier relative to the entry.
        let ldp = text.iter().position(|s| s.starts_with("ldp")).unwrap();
        assert!(text[ldp + 1].starts_with("adr x16, -"));
        assert_eq!(text[ldp + 4], "autib x30, x16");
        assert_eq!(text.last().unwrap(), "ret");
    }

    #[test]
    fn parts_builds_48_bit_id_modifier() {
        let f = build(CfiScheme::Parts);
        let text: Vec<String> = f.insns().iter().map(|i| i.to_string()).collect();
        assert_eq!(text[0], "add x16, sp, #0");
        assert!(text[1].starts_with("movk x16"));
        assert!(text[2].starts_with("movk x16"));
        assert!(text[3].starts_with("movk x16"));
        assert_eq!(text[4], "pacib x30, x16");
    }

    #[test]
    fn parts_costs_more_than_camouflage_costs_more_than_sp() {
        // The Figure 2 ordering, statically.
        let sp = instrumentation_insns(CfiScheme::SpOnly, false);
        let camo = instrumentation_insns(CfiScheme::Camouflage, false);
        let parts = instrumentation_insns(CfiScheme::Parts, false);
        assert!(sp < camo);
        assert!(camo < parts);
        // And the actual builds agree with the static counts.
        let base_len = build(CfiScheme::None).insns().len();
        assert_eq!(build(CfiScheme::SpOnly).insns().len(), base_len + sp);
        assert_eq!(build(CfiScheme::Camouflage).insns().len(), base_len + camo);
        assert_eq!(build(CfiScheme::Parts).insns().len(), base_len + parts);
    }

    #[test]
    fn compat_build_uses_only_hint_forms() {
        let cfg = CodegenConfig {
            scheme: CfiScheme::Camouflage,
            protect_pointers: true,
            compat_v80: true,
        };
        let f = FunctionBuilder::new("f", cfg).build();
        for insn in f.insns() {
            if insn.is_pauth() {
                assert!(
                    matches!(insn, Insn::Pac1716 { .. } | Insn::Aut1716 { .. }),
                    "non-NOP-compatible PAuth form in compat build: {insn}"
                );
            }
        }
    }

    #[test]
    fn leaf_functions_are_uninstrumented() {
        let f = FunctionBuilder::new("leaf", CodegenConfig::camouflage())
            .leaf()
            .build();
        assert_eq!(f.insns().len(), 1);
        assert_eq!(f.insns()[0], Insn::ret());
    }

    #[test]
    fn locals_are_allocated_and_released() {
        let f = FunctionBuilder::new("f", CodegenConfig::baseline())
            .locals(24)
            .build();
        let text: Vec<String> = f.insns().iter().map(|i| i.to_string()).collect();
        assert!(text.contains(&"sub sp, sp, #32".to_string()), "{text:?}");
        assert!(text.contains(&"add sp, sp, #32".to_string()));
    }

    #[test]
    fn symbolic_calls_are_recorded_after_prologue() {
        let mut b = FunctionBuilder::new("caller", CodegenConfig::camouflage());
        b.call("callee");
        let f = b.build();
        assert_eq!(f.calls().len(), 1);
        let (idx, name) = &f.calls()[0];
        assert_eq!(name, "callee");
        assert_eq!(f.insns()[*idx], Insn::Bl { offset: 0 });
        // The call site sits after the 6-instruction Camouflage prologue.
        assert_eq!(*idx, 6);
    }
}
