//! Protected-pointer access sequences (Listing 4 and §5.3).
//!
//! The paper replaces direct reads/writes of protected structure members
//! with `get`/`set` inline functions wrapping PAuth instructions. The
//! emitters here generate those exact sequences into a
//! [`FunctionBuilder`]:
//!
//! ```text
//! // load signed fp->f_ops from fp (x0)
//! ldr  x8, [x0, #40]
//! mov  w9, #0xfb45
//! bfi  x9, x0, #16, #48   // modifier
//! autdb x8, x9            // authenticate f_ops
//! ```

use crate::{object_modifier, CodegenConfig, FunctionBuilder};
use camo_isa::{AddrMode, Insn, InsnKey, PacKey, Reg};

/// A protected pointer member of a compound type: its PAuth key and the
/// 16-bit constant identifying the (type, member) combination (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtectedPointer {
    /// Key used for signing (DB for data pointers, IB for lone function
    /// pointers in the default build).
    pub key: PacKey,
    /// Unique (type, member) discriminator baked into the modifier.
    pub type_const: u16,
}

impl ProtectedPointer {
    /// Creates a descriptor with an explicit key.
    pub fn new(key: PacKey, type_const: u16) -> Self {
        ProtectedPointer { key, type_const }
    }

    /// The modifier for an instance of the containing object at `obj_addr`.
    pub fn modifier(&self, obj_addr: u64) -> u64 {
        object_modifier(self.type_const, obj_addr)
    }

    /// Effective key under `cfg` (compat builds alias data keys onto IB).
    pub fn effective_key(&self, cfg: CodegenConfig) -> PacKey {
        if cfg.compat_v80 {
            match self.key {
                PacKey::DA | PacKey::DB => cfg.data_key(),
                k => k,
            }
        } else {
            self.key
        }
    }

    /// Emits the modifier construction into `scratch`:
    /// `movz scratch, #const; bfi scratch, obj, #16, #48`.
    fn emit_modifier(&self, b: &mut FunctionBuilder, obj: Reg, scratch: Reg) {
        b.ins(Insn::Movz {
            rd: scratch,
            imm16: self.type_const,
            shift: 0,
        });
        b.ins(Insn::bfi(scratch, obj, 16, 48));
    }

    /// Emits the `get` accessor: loads the signed pointer from
    /// `[obj + offset]` into `dst` and authenticates it in place.
    ///
    /// Without pointer protection configured, emits a plain load. `scratch`
    /// must differ from `dst` and `obj`.
    ///
    /// # Panics
    ///
    /// Panics if register roles collide.
    pub fn emit_load(
        &self,
        b: &mut FunctionBuilder,
        dst: Reg,
        obj: Reg,
        offset: u16,
        scratch: Reg,
    ) {
        assert!(
            dst != obj && dst != scratch && obj != scratch,
            "register collision"
        );
        if !b.config().protect_pointers {
            b.ins(Insn::Ldr {
                rt: dst,
                rn: obj,
                mode: AddrMode::Unsigned(offset),
            });
            return;
        }
        if b.config().compat_v80 {
            // Value must transit x17, modifier x16, for the *1716 forms.
            b.ins(Insn::Ldr {
                rt: Reg::IP1,
                rn: obj,
                mode: AddrMode::Unsigned(offset),
            });
            self.emit_modifier(b, obj, Reg::IP0);
            b.ins(Insn::Aut1716 { key: InsnKey::B });
            b.ins(Insn::mov(dst, Reg::IP1));
        } else {
            b.ins(Insn::Ldr {
                rt: dst,
                rn: obj,
                mode: AddrMode::Unsigned(offset),
            });
            self.emit_modifier(b, obj, scratch);
            b.ins(Insn::Aut {
                key: self.effective_key(b.config()),
                rd: dst,
                rn: scratch,
            });
        }
    }

    /// Emits the `set` accessor: signs `value` (in place) and stores it to
    /// `[obj + offset]`.
    ///
    /// # Panics
    ///
    /// Panics if register roles collide.
    pub fn emit_store(
        &self,
        b: &mut FunctionBuilder,
        value: Reg,
        obj: Reg,
        offset: u16,
        scratch: Reg,
    ) {
        assert!(
            value != obj && value != scratch && obj != scratch,
            "register collision"
        );
        if !b.config().protect_pointers {
            b.ins(Insn::Str {
                rt: value,
                rn: obj,
                mode: AddrMode::Unsigned(offset),
            });
            return;
        }
        if b.config().compat_v80 {
            b.ins(Insn::mov(Reg::IP1, value));
            self.emit_modifier(b, obj, Reg::IP0);
            b.ins(Insn::Pac1716 { key: InsnKey::B });
            b.ins(Insn::Str {
                rt: Reg::IP1,
                rn: obj,
                mode: AddrMode::Unsigned(offset),
            });
        } else {
            self.emit_modifier(b, obj, scratch);
            b.ins(Insn::Pac {
                key: self.effective_key(b.config()),
                rd: value,
                rn: scratch,
            });
            b.ins(Insn::Str {
                rt: value,
                rn: obj,
                mode: AddrMode::Unsigned(offset),
            });
        }
    }

    /// Emits the full Listing 4 call-through: authenticate the ops-table
    /// pointer at `[obj + ops_offset]`, load the function pointer at
    /// `[ops + member_offset]`, and `BLR` to it.
    ///
    /// This is `file_ops(fp)->read(...)`: the DFI authentication of the
    /// table pointer is what makes the read-only table's function pointers
    /// trustworthy (§4.5).
    pub fn emit_call_through(
        &self,
        b: &mut FunctionBuilder,
        obj: Reg,
        ops_offset: u16,
        member_offset: u16,
    ) {
        let table = Reg::x(8);
        let scratch = Reg::x(9);
        self.emit_load(b, table, obj, ops_offset, scratch);
        b.ins(Insn::Ldr {
            rt: table,
            rn: table,
            mode: AddrMode::Unsigned(member_offset),
        });
        b.ins(Insn::Blr { rn: table });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CfiScheme, CodegenConfig};

    fn full_cfg() -> CodegenConfig {
        CodegenConfig::camouflage()
    }

    fn unprotected_cfg() -> CodegenConfig {
        CodegenConfig {
            scheme: CfiScheme::Camouflage,
            protect_pointers: false,
            compat_v80: false,
        }
    }

    #[test]
    fn load_matches_listing4() {
        let mut b = FunctionBuilder::new("file_ops", full_cfg());
        let p = ProtectedPointer::new(PacKey::DB, 0xfb45);
        p.emit_load(&mut b, Reg::x(8), Reg::x(0), 40, Reg::x(9));
        let f = b.build();
        let text: Vec<String> = f.insns().iter().map(|i| i.to_string()).collect();
        // Skip the 6-instruction Camouflage prologue.
        assert_eq!(
            &text[6..10],
            &[
                "ldr x8, [x0, #40]",
                "movz x9, #0xfb45",
                "bfi x9, x0, #16, #48",
                "autdb x8, x9",
            ]
        );
    }

    #[test]
    fn store_signs_before_storing() {
        let mut b = FunctionBuilder::new("set_file_ops", full_cfg());
        let p = ProtectedPointer::new(PacKey::DB, 0xfb45);
        p.emit_store(&mut b, Reg::x(1), Reg::x(0), 40, Reg::x(9));
        let f = b.build();
        let text: Vec<String> = f.insns().iter().map(|i| i.to_string()).collect();
        assert_eq!(
            &text[6..10],
            &[
                "movz x9, #0xfb45",
                "bfi x9, x0, #16, #48",
                "pacdb x1, x9",
                "str x1, [x0, #40]",
            ]
        );
    }

    #[test]
    fn unprotected_config_emits_plain_accesses() {
        let mut b = FunctionBuilder::new("f", unprotected_cfg());
        let p = ProtectedPointer::new(PacKey::DB, 0xfb45);
        p.emit_load(&mut b, Reg::x(8), Reg::x(0), 40, Reg::x(9));
        p.emit_store(&mut b, Reg::x(1), Reg::x(0), 40, Reg::x(9));
        let f = b.build();
        // The backward-edge prologue still signs LR, but no data-pointer
        // PAuth (the DB key) may appear anywhere.
        assert!(
            f.insns().iter().all(|i| !matches!(
                i,
                Insn::Pac {
                    key: PacKey::DB,
                    ..
                } | Insn::Aut {
                    key: PacKey::DB,
                    ..
                }
            )),
            "no data-key PAuth in unprotected build"
        );
        // And the accesses themselves are plain loads/stores.
        assert!(f
            .insns()
            .iter()
            .any(|i| matches!(i, Insn::Ldr { rt: Reg::X(8), .. })));
        assert!(f
            .insns()
            .iter()
            .any(|i| matches!(i, Insn::Str { rt: Reg::X(1), .. })));
    }

    #[test]
    fn compat_build_routes_through_ip_registers() {
        let cfg = CodegenConfig {
            compat_v80: true,
            ..CodegenConfig::camouflage()
        };
        let mut b = FunctionBuilder::new("f", cfg);
        let p = ProtectedPointer::new(PacKey::DB, 0x1234);
        p.emit_load(&mut b, Reg::x(8), Reg::x(0), 0, Reg::x(9));
        let f = b.build();
        let pauth: Vec<&Insn> = f.insns().iter().filter(|i| i.is_pauth()).collect();
        assert!(pauth
            .iter()
            .all(|i| matches!(i, Insn::Aut1716 { .. } | Insn::Pac1716 { .. })));
    }

    #[test]
    fn call_through_ends_in_blr() {
        let mut b = FunctionBuilder::new("read_file", full_cfg());
        let p = ProtectedPointer::new(PacKey::DB, 0xfb45);
        p.emit_call_through(&mut b, Reg::x(0), 40, 16);
        let f = b.build();
        let text: Vec<String> = f.insns().iter().map(|i| i.to_string()).collect();
        assert_eq!(text[10], "ldr x8, [x8, #16]");
        assert_eq!(text[11], "blr x8");
    }

    #[test]
    #[should_panic(expected = "register collision")]
    fn register_collision_is_rejected() {
        let mut b = FunctionBuilder::new("f", full_cfg());
        let p = ProtectedPointer::new(PacKey::DB, 1);
        p.emit_load(&mut b, Reg::x(8), Reg::x(8), 0, Reg::x(9));
    }

    #[test]
    fn modifier_matches_host_side_helper() {
        let p = ProtectedPointer::new(PacKey::DB, 0xfb45);
        assert_eq!(
            p.modifier(0xffff_0000_dead_b000),
            crate::object_modifier(0xfb45, 0xffff_0000_dead_b000)
        );
    }
}
