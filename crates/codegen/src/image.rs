//! Linking: functions → a loadable text image with a symbol table.

use crate::statics::StaticPointerTable;
use crate::{CodegenConfig, Function};
use camo_isa::{encode, Insn};
use std::collections::HashMap;

/// A set of functions awaiting layout and call resolution.
#[derive(Debug, Default)]
pub struct Program {
    cfg: CodegenConfig,
    functions: Vec<Function>,
    externals: HashMap<String, u64>,
}

impl Program {
    /// Creates an empty program built under `cfg`.
    pub fn new(cfg: CodegenConfig) -> Self {
        Program {
            cfg,
            functions: Vec::new(),
            externals: HashMap::new(),
        }
    }

    /// Declares an externally-provided symbol at a fixed address (e.g. the
    /// XOM key setter, which the bootloader places outside the image).
    pub fn define_external(&mut self, name: impl Into<String>, va: u64) {
        self.externals.insert(name.into(), va);
    }

    /// Moves every function of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the configurations differ or symbols collide.
    pub fn append(&mut self, other: Program) {
        assert_eq!(self.cfg, other.cfg, "mixing instrumentation configs");
        for f in other.functions {
            self.push(f);
        }
        self.externals.extend(other.externals);
    }

    /// The build configuration.
    pub fn config(&self) -> CodegenConfig {
        self.cfg
    }

    /// Adds a function.
    ///
    /// # Panics
    ///
    /// Panics on duplicate symbol names.
    pub fn push(&mut self, function: Function) {
        assert!(
            self.functions.iter().all(|f| f.name() != function.name()),
            "duplicate symbol {}",
            function.name()
        );
        self.functions.push(function);
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Lays out all functions from `base_va` (16-byte aligned starts),
    /// resolves symbolic calls, and produces an [`Image`].
    ///
    /// # Panics
    ///
    /// Panics on calls to undefined symbols.
    pub fn link(mut self, base_va: u64) -> Image {
        assert!(base_va % 4 == 0, "image base must be word aligned");
        // First pass: assign addresses.
        let mut symbols = self.externals.clone();
        let mut va = base_va;
        let mut fn_vas = Vec::with_capacity(self.functions.len());
        for f in &self.functions {
            symbols.insert(f.name().to_string(), va);
            fn_vas.push(va);
            va += f.size_bytes();
            va = (va + 15) & !15; // align the next function
        }
        // Second pass: patch calls.
        for (f, &fva) in self.functions.iter_mut().zip(&fn_vas) {
            let calls: Vec<(usize, String)> = f.calls().to_vec();
            for (idx, callee) in calls {
                let target = *symbols
                    .get(&callee)
                    .unwrap_or_else(|| panic!("undefined symbol {callee}"));
                let site = fva + 4 * idx as u64;
                let offset = target.wrapping_sub(site) as i64;
                let offset = i32::try_from(offset).expect("call distance overflows");
                f.patch_call(idx, offset);
            }
        }
        // Third pass: emit words with alignment padding (NOPs).
        let mut insns = Vec::new();
        for (f, &fva) in self.functions.iter().zip(&fn_vas) {
            let expect_index = ((fva - base_va) / 4) as usize;
            while insns.len() < expect_index {
                insns.push(Insn::Nop);
            }
            insns.extend_from_slice(f.insns());
        }
        Image {
            base_va,
            insns,
            symbols,
            statics: StaticPointerTable::new(),
        }
    }
}

/// A linked text image: contiguous instructions, a symbol table, and the
/// §4.6 static-pointer signing table.
#[derive(Debug, Clone)]
pub struct Image {
    base_va: u64,
    insns: Vec<Insn>,
    symbols: HashMap<String, u64>,
    statics: StaticPointerTable,
}

impl Image {
    /// The load address.
    pub fn base_va(&self) -> u64 {
        self.base_va
    }

    /// All instructions, padding included.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Image size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.insns.len() as u64 * 4
    }

    /// Resolves a symbol to its virtual address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Iterates over `(name, va)` pairs in unspecified order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(n, &va)| (n.as_str(), va))
    }

    /// The encoded text, little endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        camo_isa::encode_all(&self.insns)
    }

    /// The encoded text as words.
    pub fn to_words(&self) -> Vec<u32> {
        self.insns.iter().map(encode).collect()
    }

    /// The static-pointer table shipped with this image.
    pub fn statics(&self) -> &StaticPointerTable {
        &self.statics
    }

    /// Mutable access to the static-pointer table (used while laying out
    /// data sections that contain statically-initialised signed pointers).
    pub fn statics_mut(&mut self) -> &mut StaticPointerTable {
        &mut self.statics
    }

    /// Disassembles the image for inspection.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut rev: Vec<(&str, u64)> = self.symbols().collect();
        rev.sort_by_key(|&(_, va)| va);
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            let va = self.base_va + 4 * i as u64;
            if let Some((name, _)) = rev.iter().find(|&&(_, sva)| sva == va) {
                let _ = writeln!(out, "{name}:");
            }
            let _ = writeln!(out, "  {va:#014x}: {insn}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodegenConfig, FunctionBuilder};

    #[test]
    fn link_resolves_cross_function_calls() {
        let cfg = CodegenConfig::baseline();
        let mut p = Program::new(cfg);
        let mut caller = FunctionBuilder::new("caller", cfg);
        caller.call("callee");
        p.push(caller.build());
        p.push(FunctionBuilder::new("callee", cfg).leaf().build());
        let image = p.link(0x4000);

        let caller_va = image.symbol("caller").unwrap();
        let callee_va = image.symbol("callee").unwrap();
        assert_eq!(caller_va, 0x4000);
        // Find the BL and verify it lands on the callee.
        let bl_idx = image
            .insns()
            .iter()
            .position(|i| matches!(i, Insn::Bl { .. }))
            .unwrap();
        if let Insn::Bl { offset } = image.insns()[bl_idx] {
            let site = image.base_va() + 4 * bl_idx as u64;
            assert_eq!(site.wrapping_add(offset as i64 as u64), callee_va);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn functions_start_16_byte_aligned() {
        let cfg = CodegenConfig::baseline();
        let mut p = Program::new(cfg);
        p.push(FunctionBuilder::new("a", cfg).leaf().build()); // 1 insn
        p.push(FunctionBuilder::new("b", cfg).leaf().build());
        let image = p.link(0x4000);
        assert_eq!(image.symbol("b").unwrap() % 16, 0);
        // Padding between functions is NOPs.
        assert_eq!(image.insns()[1], Insn::Nop);
    }

    #[test]
    #[should_panic(expected = "undefined symbol")]
    fn undefined_callee_panics() {
        let cfg = CodegenConfig::baseline();
        let mut p = Program::new(cfg);
        let mut f = FunctionBuilder::new("f", cfg);
        f.call("missing");
        p.push(f.build());
        let _ = p.link(0);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_symbol_panics() {
        let cfg = CodegenConfig::baseline();
        let mut p = Program::new(cfg);
        p.push(FunctionBuilder::new("f", cfg).build());
        p.push(FunctionBuilder::new("f", cfg).build());
    }

    #[test]
    fn listing_names_functions() {
        let cfg = CodegenConfig::baseline();
        let mut p = Program::new(cfg);
        p.push(FunctionBuilder::new("entry", cfg).build());
        let image = p.link(0x1000);
        let listing = image.listing();
        assert!(listing.starts_with("entry:"));
        assert!(listing.contains("ret"));
    }
}
