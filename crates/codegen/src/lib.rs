//! CFI instrumentation compiler for the Camouflage reproduction.
//!
//! The paper modifies LLVM 8 to emit hardened function prologues and
//! epilogues (Listing 3) and provides inline-assembler macros for protected
//! pointer accesses (Listing 4). This crate is that compiler: it builds
//! functions in the `camo-isa` instruction set under one of four
//! backward-edge CFI schemes, emits the pointer-integrity access sequences,
//! and links functions into loadable images carrying the §4.6 static-pointer
//! signing table.
//!
//! # Schemes
//!
//! | Scheme | Modifier | Source |
//! |---|---|---|
//! | [`CfiScheme::None`] | — | Listing 1 |
//! | [`CfiScheme::SpOnly`] | SP | Listing 2, Clang/GCC `pac-ret` |
//! | [`CfiScheme::Parts`] | `fn_id₄₈ ‖ SP₁₆` | PARTS (USENIX Sec '19) |
//! | [`CfiScheme::Camouflage`] | `SP₃₂ ‖ fn_addr₃₂` | Listing 3, this paper |
//!
//! # Example
//!
//! ```
//! use camo_codegen::{CfiScheme, CodegenConfig, FunctionBuilder, Program};
//!
//! let cfg = CodegenConfig::camouflage();
//! let mut program = Program::new(cfg);
//! program.push(FunctionBuilder::new("empty", cfg).build());
//! let image = program.link(0xffff_0000_0000_0000);
//! assert!(image.symbol("empty").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod function;
mod image;
mod pointer;
mod statics;
mod synth;

pub use function::{instrumentation_insns, Function, FunctionBuilder};
pub use image::{Image, Program};
pub use pointer::ProtectedPointer;
pub use statics::{StaticPointerEntry, StaticPointerTable, STATIC_ENTRY_SIZE};
pub use synth::{build_call_chain, build_call_tree, empty_function, CallTreeSpec};

use camo_isa::PacKey;

/// Backward-edge CFI scheme selection (Figure 2's three contenders plus
/// the unprotected baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CfiScheme {
    /// No return-address protection (Listing 1).
    #[default]
    None,
    /// SP-only modifier, as emitted by Clang/GCC `-mbranch-protection`
    /// (Listing 2). Vulnerable to replay across same-SP call sites.
    SpOnly,
    /// PARTS: 48-bit LTO-assigned function id ‖ low 16 bits of SP.
    Parts,
    /// Camouflage: low 32 bits of SP ‖ low 32 bits of the function address
    /// (Listing 3).
    Camouflage,
}

impl core::fmt::Display for CfiScheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CfiScheme::None => "none",
            CfiScheme::SpOnly => "sp-only",
            CfiScheme::Parts => "parts",
            CfiScheme::Camouflage => "camouflage",
        };
        write!(f, "{s}")
    }
}

/// How much of the Camouflage design is enabled — the three protection
/// levels compared throughout §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtectionLevel {
    /// No instrumentation at all (baseline kernel).
    None,
    /// Backward-edge CFI only.
    BackwardEdge,
    /// Backward-edge CFI + forward-edge CFI + DFI ("full").
    Full,
}

impl ProtectionLevel {
    /// All three levels, in increasing protection order.
    pub const ALL: [ProtectionLevel; 3] = [
        ProtectionLevel::None,
        ProtectionLevel::BackwardEdge,
        ProtectionLevel::Full,
    ];
}

impl core::fmt::Display for ProtectionLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ProtectionLevel::None => "none",
            ProtectionLevel::BackwardEdge => "backward-edge",
            ProtectionLevel::Full => "full",
        };
        write!(f, "{s}")
    }
}

/// Build-time instrumentation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodegenConfig {
    /// Backward-edge scheme.
    pub scheme: CfiScheme,
    /// Emit pointer-integrity (forward-edge + DFI) access sequences.
    pub protect_pointers: bool,
    /// §5.5 backward-compatible build: only the NOP-compatible
    /// `PACIB1716`/`AUTIB1716` forms are used, and data pointers share the
    /// IB key because no `*1716` forms exist for the data keys.
    pub compat_v80: bool,
}

impl CodegenConfig {
    /// The full Camouflage configuration.
    pub fn camouflage() -> Self {
        CodegenConfig {
            scheme: CfiScheme::Camouflage,
            protect_pointers: true,
            compat_v80: false,
        }
    }

    /// An uninstrumented baseline.
    pub fn baseline() -> Self {
        CodegenConfig {
            scheme: CfiScheme::None,
            protect_pointers: false,
            compat_v80: false,
        }
    }

    /// The configuration for a given protection level under the Camouflage
    /// scheme.
    pub fn for_level(level: ProtectionLevel) -> Self {
        match level {
            ProtectionLevel::None => CodegenConfig::baseline(),
            ProtectionLevel::BackwardEdge => CodegenConfig {
                scheme: CfiScheme::Camouflage,
                protect_pointers: false,
                compat_v80: false,
            },
            ProtectionLevel::Full => CodegenConfig::camouflage(),
        }
    }

    /// The key used for data-pointer protection under this configuration.
    ///
    /// §5.5: the backward-compatible build has no data-key `*1716` forms,
    /// so it falls back to the instruction key.
    pub fn data_key(&self) -> PacKey {
        if self.compat_v80 {
            PacKey::IB
        } else {
            PacKey::DB
        }
    }
}

impl Default for CodegenConfig {
    fn default() -> Self {
        CodegenConfig::camouflage()
    }
}

/// The Camouflage backward-edge modifier (§4.2): low 32 bits of SP
/// concatenated above the low 32 bits of the function address.
pub fn camouflage_modifier(fn_addr: u64, sp: u64) -> u64 {
    (fn_addr & 0xFFFF_FFFF) | ((sp & 0xFFFF_FFFF) << 32)
}

/// The PARTS backward-edge modifier: 48-bit function id above the low
/// 16 bits of SP.
pub fn parts_modifier(fn_id: u64, sp: u64) -> u64 {
    (sp & 0xFFFF) | ((fn_id & 0xFFFF_FFFF_FFFF) << 16)
}

/// The pointer-integrity modifier (§4.3): 48-bit containing-object address
/// above a 16-bit constant identifying the (type, member) pair.
pub fn object_modifier(type_const: u16, obj_addr: u64) -> u64 {
    u64::from(type_const) | ((obj_addr & 0xFFFF_FFFF_FFFF) << 16)
}

/// Deterministic 48-bit function id, standing in for PARTS' LTO-assigned
/// ids (FNV-1a over the symbol name, truncated).
pub fn parts_function_id(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash & 0xFFFF_FFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camouflage_modifier_concatenates_halves() {
        let m = camouflage_modifier(0xffff_0000_1234_5678, 0xffff_8000_9abc_def0);
        assert_eq!(m, 0x9abc_def0_1234_5678);
    }

    #[test]
    fn parts_modifier_uses_16_sp_bits() {
        let m = parts_modifier(0xABCDEF, 0xffff_8000_9abc_def0);
        assert_eq!(m & 0xFFFF, 0xdef0);
        assert_eq!(m >> 16, 0xABCDEF);
        // Two stacks 64 KiB apart produce the SAME modifier — the PARTS
        // weakness §7 calls out.
        let other_sp = 0xffff_8000_9abc_def0 + 0x10000;
        assert_eq!(m, parts_modifier(0xABCDEF, other_sp));
    }

    #[test]
    fn camouflage_modifier_distinguishes_64k_separated_stacks() {
        let sp = 0xffff_8000_9abc_def0u64;
        let m1 = camouflage_modifier(0x1000, sp);
        let m2 = camouflage_modifier(0x1000, sp + 0x10000);
        assert_ne!(m1, m2, "32 SP bits cover 64 KiB-separated stacks");
    }

    #[test]
    fn object_modifier_packs_type_and_address() {
        let m = object_modifier(0xfb45, 0xffff_0000_dead_b000);
        assert_eq!(m & 0xFFFF, 0xfb45);
        assert_eq!((m >> 16) & 0xFFFF_FFFF_FFFF, 0x0000_dead_b000);
    }

    #[test]
    fn object_modifier_unique_per_object() {
        // §4.3: "the modifier uniquely identifies the object in memory at a
        // given time" — two live objects at different addresses never share
        // a modifier for the same field.
        let a = object_modifier(1, 0xffff_0000_0000_1000);
        let b = object_modifier(1, 0xffff_0000_0000_2000);
        assert_ne!(a, b);
        // And the 16-bit constant segregates fields at the same address.
        assert_ne!(
            object_modifier(1, 0xffff_0000_0000_1000),
            object_modifier(2, 0xffff_0000_0000_1000)
        );
    }

    #[test]
    fn parts_ids_are_48_bit_and_stable() {
        let id = parts_function_id("vfs_read");
        assert!(id < (1 << 48));
        assert_eq!(id, parts_function_id("vfs_read"));
        assert_ne!(id, parts_function_id("vfs_write"));
    }

    #[test]
    fn compat_build_aliases_data_key_onto_ib() {
        assert_eq!(CodegenConfig::camouflage().data_key(), PacKey::DB);
        let compat = CodegenConfig {
            compat_v80: true,
            ..CodegenConfig::camouflage()
        };
        assert_eq!(compat.data_key(), PacKey::IB);
    }

    #[test]
    fn protection_levels_map_to_configs() {
        assert_eq!(
            CodegenConfig::for_level(ProtectionLevel::None),
            CodegenConfig::baseline()
        );
        let be = CodegenConfig::for_level(ProtectionLevel::BackwardEdge);
        assert_eq!(be.scheme, CfiScheme::Camouflage);
        assert!(!be.protect_pointers);
        assert_eq!(
            CodegenConfig::for_level(ProtectionLevel::Full),
            CodegenConfig::camouflage()
        );
    }
}
