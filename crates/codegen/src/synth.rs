//! Synthetic kernel-function generation for the evaluation workloads.
//!
//! The paper measures instrumentation overhead on real kernel code paths;
//! this reproduction measures it on *synthetic but structurally matched*
//! call trees: functions with realistic body sizes (ALU + memory mix) and
//! call depths, compiled under the scheme being evaluated. The relative
//! overhead of a scheme depends only on the call-to-computation ratio,
//! which these parameters control directly.
//!
//! Generated bodies use `x10`/`x11` as data scratch and address their
//! stack locals — no external scratch buffer is required.

use crate::{CodegenConfig, Function, FunctionBuilder, Program};
use camo_isa::{AddrMode, Insn, Reg};

/// Shape of a synthetic call tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallTreeSpec {
    /// Call depth below the entry (0 = entry only).
    pub depth: usize,
    /// Calls made by each non-leaf node to the next level.
    pub fanout: usize,
    /// ALU instructions per function body.
    pub body_alu: usize,
    /// Load/store pairs per function body.
    pub body_mem: usize,
}

impl Default for CallTreeSpec {
    fn default() -> Self {
        CallTreeSpec {
            depth: 4,
            fanout: 1,
            body_alu: 12,
            body_mem: 3,
        }
    }
}

/// Emits a deterministic function body: `alu` arithmetic instructions and
/// `mem` load/store pairs against the function's own 64-byte local area.
pub(crate) fn emit_body(b: &mut FunctionBuilder, alu: usize, mem: usize) {
    for i in 0..alu {
        match i % 3 {
            0 => {
                b.ins(Insn::AddImm {
                    rd: Reg::x(10),
                    rn: Reg::x(10),
                    imm12: (i % 255 + 1) as u16,
                    shifted: false,
                });
            }
            1 => {
                b.ins(Insn::EorReg {
                    rd: Reg::x(11),
                    rn: Reg::x(11),
                    rm: Reg::x(10),
                });
            }
            _ => {
                b.ins(Insn::AddReg {
                    rd: Reg::x(10),
                    rn: Reg::x(10),
                    rm: Reg::x(11),
                });
            }
        }
    }
    for i in 0..mem {
        let offset = ((i % 8) * 8) as u16;
        b.ins(Insn::Str {
            rt: Reg::x(10),
            rn: Reg::Sp,
            mode: AddrMode::Unsigned(offset),
        });
        b.ins(Insn::Ldr {
            rt: Reg::x(11),
            rn: Reg::Sp,
            mode: AddrMode::Unsigned(offset),
        });
    }
}

fn node_name(prefix: &str, depth: usize, index: usize) -> String {
    format!("{prefix}_d{depth}_n{index}")
}

/// Builds a call tree of instrumented functions; the entry symbol is
/// `<prefix>_d0_n0`.
///
/// Functions at the deepest level are leaves *with* frames (they still pay
/// the prologue cost, as almost all kernel functions do); set `body_mem`
/// and `body_alu` per [`CallTreeSpec`].
pub fn build_call_tree(prefix: &str, spec: CallTreeSpec, cfg: CodegenConfig) -> Program {
    assert!(spec.fanout >= 1, "fanout must be at least 1");
    let mut program = Program::new(cfg);
    // One shared function per level is enough: fanout repeats calls to it,
    // which models hot kernel paths (the same callee called in a loop).
    for depth in 0..=spec.depth {
        let mut b = FunctionBuilder::new(node_name(prefix, depth, 0), cfg).locals(64);
        emit_body(&mut b, spec.body_alu, spec.body_mem);
        if depth < spec.depth {
            for _ in 0..spec.fanout {
                b.call(node_name(prefix, depth + 1, 0));
            }
        }
        program.push(b.build());
    }
    program
}

/// Builds a linear call chain (`fanout = 1`) of `depth + 1` functions.
pub fn build_call_chain(
    prefix: &str,
    depth: usize,
    body_alu: usize,
    body_mem: usize,
    cfg: CodegenConfig,
) -> Program {
    build_call_tree(
        prefix,
        CallTreeSpec {
            depth,
            fanout: 1,
            body_alu,
            body_mem,
        },
        cfg,
    )
}

/// An empty function (immediate return through the full prologue/epilogue):
/// the Figure 2 microbenchmark target.
pub fn empty_function(name: &str, cfg: CodegenConfig) -> Function {
    FunctionBuilder::new(name, cfg).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfiScheme;

    #[test]
    fn tree_has_one_function_per_level() {
        let p = build_call_tree("t", CallTreeSpec::default(), CodegenConfig::baseline());
        assert_eq!(p.len(), 5); // depth 4 → levels 0..=4
    }

    #[test]
    fn entry_symbol_is_level_zero() {
        let p = build_call_chain("sys_read", 3, 4, 1, CodegenConfig::baseline());
        let image = p.link(0x1_0000);
        assert!(image.symbol("sys_read_d0_n0").is_some());
        assert!(image.symbol("sys_read_d3_n0").is_some());
        assert!(image.symbol("sys_read_d4_n0").is_none());
    }

    #[test]
    fn instrumented_tree_is_larger_than_baseline() {
        let spec = CallTreeSpec::default();
        let base = build_call_tree("t", spec, CodegenConfig::baseline()).link(0);
        let camo = build_call_tree(
            "t",
            spec,
            CodegenConfig {
                scheme: CfiScheme::Camouflage,
                protect_pointers: false,
                compat_v80: false,
            },
        )
        .link(0);
        assert!(camo.size_bytes() > base.size_bytes());
    }

    #[test]
    fn bodies_are_deterministic() {
        let a = build_call_chain("x", 2, 8, 2, CodegenConfig::camouflage()).link(0x4000);
        let b = build_call_chain("x", 2, 8, 2, CodegenConfig::camouflage()).link(0x4000);
        assert_eq!(a.to_words(), b.to_words());
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 1")]
    fn zero_fanout_rejected() {
        let _ = build_call_tree(
            "t",
            CallTreeSpec {
                fanout: 0,
                ..CallTreeSpec::default()
            },
            CodegenConfig::baseline(),
        );
    }
}
