//! The §4.6 static-pointer signing table.
//!
//! Statically-initialised protected pointers (e.g. `DECLARE_WORK`) cannot
//! carry a PAC at compile time, because the PAC depends on the object's
//! run-time address and the boot-generated keys. The paper inserts a new
//! ELF section enumerating every such pointer; early boot (and the module
//! loader) walks the table and signs each pointer in place.
//!
//! Each entry records the paper's three fields — the location of the
//! to-be-signed pointer, the PAuth key to use, and the 16-bit modifier
//! constant — plus the member's `offsetof` within its containing object,
//! which the signer needs to recover the object base address for the
//! modifier (the compiler knows it statically; a real implementation would
//! either store it like this or index a type-metadata section by the
//! 16-bit constant). The serialized form is a flat 16-byte record per
//! entry, playing the role of the ELF section contents.

use camo_isa::PacKey;

/// Serialized size of one table entry in bytes.
pub const STATIC_ENTRY_SIZE: usize = 16;

/// One statically-initialised signed pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPointerEntry {
    /// Virtual address of the pointer slot to sign in place.
    pub location: u64,
    /// Key to sign with.
    pub key: PacKey,
    /// The 16-bit (type, member) constant for the modifier.
    pub type_const: u16,
    /// `offsetof` of the slot within its containing object; the modifier
    /// binds `location - field_offset`.
    pub field_offset: u16,
}

impl StaticPointerEntry {
    /// The containing object's base address.
    pub fn object_base(&self) -> u64 {
        self.location - u64::from(self.field_offset)
    }
}

impl StaticPointerEntry {
    fn key_code(key: PacKey) -> u8 {
        match key {
            PacKey::IA => 0,
            PacKey::IB => 1,
            PacKey::DA => 2,
            PacKey::DB => 3,
        }
    }

    fn key_from_code(code: u8) -> Option<PacKey> {
        match code {
            0 => Some(PacKey::IA),
            1 => Some(PacKey::IB),
            2 => Some(PacKey::DA),
            3 => Some(PacKey::DB),
            _ => None,
        }
    }

    /// Serializes to the 16-byte record format.
    pub fn to_bytes(self) -> [u8; STATIC_ENTRY_SIZE] {
        let mut out = [0u8; STATIC_ENTRY_SIZE];
        out[..8].copy_from_slice(&self.location.to_le_bytes());
        out[8] = Self::key_code(self.key);
        out[10..12].copy_from_slice(&self.type_const.to_le_bytes());
        out[12..14].copy_from_slice(&self.field_offset.to_le_bytes());
        out
    }

    /// Parses one 16-byte record.
    pub fn from_bytes(bytes: &[u8; STATIC_ENTRY_SIZE]) -> Option<Self> {
        let location = u64::from_le_bytes(bytes[..8].try_into().expect("slice length"));
        let key = Self::key_from_code(bytes[8])?;
        let type_const = u16::from_le_bytes(bytes[10..12].try_into().expect("slice length"));
        let field_offset = u16::from_le_bytes(bytes[12..14].try_into().expect("slice length"));
        Some(StaticPointerEntry {
            location,
            key,
            type_const,
            field_offset,
        })
    }
}

/// The whole table — the contents of the paper's new ELF section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticPointerTable {
    entries: Vec<StaticPointerEntry>,
}

impl StaticPointerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StaticPointerTable::default()
    }

    /// Registers an entry (what the altered `DECLARE_WORK` macro does).
    pub fn push(&mut self, entry: StaticPointerEntry) {
        self.entries.push(entry);
    }

    /// The entries in registration order.
    pub fn entries(&self) -> &[StaticPointerEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the section contents.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * STATIC_ENTRY_SIZE);
        for e in &self.entries {
            out.extend_from_slice(&e.to_bytes());
        }
        out
    }

    /// Parses section contents.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed record when the blob length is
    /// not a multiple of [`STATIC_ENTRY_SIZE`] or a key code is invalid.
    pub fn parse(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() % STATIC_ENTRY_SIZE != 0 {
            return Err(format!(
                "section length {} is not a multiple of {STATIC_ENTRY_SIZE}",
                bytes.len()
            ));
        }
        let mut table = StaticPointerTable::new();
        for (i, chunk) in bytes.chunks_exact(STATIC_ENTRY_SIZE).enumerate() {
            let record: &[u8; STATIC_ENTRY_SIZE] = chunk.try_into().expect("chunk size");
            let entry = StaticPointerEntry::from_bytes(record)
                .ok_or_else(|| format!("entry {i} has an invalid key code {}", record[8]))?;
            table.push(entry);
        }
        Ok(table)
    }
}

impl FromIterator<StaticPointerEntry> for StaticPointerTable {
    fn from_iter<I: IntoIterator<Item = StaticPointerEntry>>(iter: I) -> Self {
        StaticPointerTable {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<StaticPointerEntry> for StaticPointerTable {
    fn extend<I: IntoIterator<Item = StaticPointerEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StaticPointerEntry {
        StaticPointerEntry {
            location: 0xffff_0000_0000_8040,
            key: PacKey::DB,
            type_const: 0xfb45,
            field_offset: 0x40,
        }
    }

    #[test]
    fn object_base_subtracts_field_offset() {
        assert_eq!(sample().object_base(), 0xffff_0000_0000_8000);
    }

    #[test]
    fn entry_roundtrip() {
        let e = sample();
        assert_eq!(StaticPointerEntry::from_bytes(&e.to_bytes()), Some(e));
    }

    #[test]
    fn all_keys_roundtrip() {
        for key in [PacKey::IA, PacKey::IB, PacKey::DA, PacKey::DB] {
            let e = StaticPointerEntry { key, ..sample() };
            assert_eq!(StaticPointerEntry::from_bytes(&e.to_bytes()), Some(e));
        }
    }

    #[test]
    fn invalid_key_code_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 9;
        assert_eq!(StaticPointerEntry::from_bytes(&bytes), None);
    }

    #[test]
    fn table_roundtrip() {
        let table: StaticPointerTable = (0..5u16)
            .map(|i| StaticPointerEntry {
                location: 0x8000 + u64::from(i) * 8,
                key: PacKey::IB,
                type_const: i,
                field_offset: 8 * i,
            })
            .collect();
        let blob = table.to_bytes();
        assert_eq!(blob.len(), 5 * STATIC_ENTRY_SIZE);
        assert_eq!(StaticPointerTable::parse(&blob), Ok(table));
    }

    #[test]
    fn truncated_section_rejected() {
        let blob = sample().to_bytes();
        let err = StaticPointerTable::parse(&blob[..10]).unwrap_err();
        assert!(err.contains("not a multiple"));
    }

    #[test]
    fn empty_section_parses_to_empty_table() {
        let table = StaticPointerTable::parse(&[]).unwrap();
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
    }
}
