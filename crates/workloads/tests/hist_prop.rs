//! Property tests for [`LatencyHistogram`]: the merge used by the fleet
//! driver's cross-shard aggregation must be order-free and lossless, and
//! merged quantiles must agree with the concatenated stream within the
//! histogram's documented quantization bound (1/16 relative error).

use camo_workloads::LatencyHistogram;
use proptest::prelude::*;

/// Expands a seed into a deterministic value stream; `magnitude` caps the
/// bit width so the linear region, the log region, and huge values all get
/// exercised.
fn stream(seed: u64, len: usize, magnitude: u32) -> Vec<u64> {
    let mask = if magnitude >= 63 {
        u64::MAX
    } else {
        (1u64 << (magnitude + 1)) - 1
    };
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x & mask
        })
        .collect()
}

fn record_all(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Splitting a stream into two shards and merging — in either order —
    /// reproduces the single-stream histogram bit for bit, counters and
    /// buckets alike.
    #[test]
    fn merge_is_order_free_and_lossless(
        seed in any::<u64>(),
        len in 0usize..300,
        split in any::<u64>(),
        magnitude in 0u32..63,
    ) {
        let values = stream(seed, len, magnitude);
        let all = record_all(&values);
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            if (split >> (i % 64)) & 1 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &all, "shard merge lost or reordered observations");
        prop_assert_eq!(&ba, &all, "merge is not commutative");
        prop_assert_eq!(ab.count(), len as u64);
        prop_assert_eq!(ab.sum(), values.iter().fold(0u64, |s, &v| s.saturating_add(v)));
        prop_assert_eq!(ab.min(), values.iter().min().copied().unwrap_or(0));
        prop_assert_eq!(ab.max(), values.iter().max().copied().unwrap_or(0));
    }

    /// Merging is associative: ((a ∪ b) ∪ c) == (a ∪ (b ∪ c)).
    #[test]
    fn merge_is_associative(
        seed in any::<u64>(),
        lens in (0usize..100, 0usize..100, 0usize..100),
        magnitude in 0u32..63,
    ) {
        let (la, lb, lc) = lens;
        let a = record_all(&stream(seed, la, magnitude));
        let b = record_all(&stream(seed ^ 0xA5A5, lb, magnitude));
        let c = record_all(&stream(seed ^ 0x5A5A, lc, magnitude));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Quantiles of the merged histogram are pessimistic (≥ the exact
    /// order statistic of the concatenated stream) and within the 1/16
    /// relative quantization bound of it.
    #[test]
    fn merged_quantiles_track_the_concatenated_stream(
        seed in any::<u64>(),
        len in 1usize..300,
        split in any::<u64>(),
        magnitude in 0u32..63,
    ) {
        let values = stream(seed, len, magnitude);
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            if (split >> (i % 64)) & 1 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a;
        merged.merge(&b);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in [0.01, 0.50, 0.90, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let reported = merged.percentile(q);
            prop_assert!(
                reported >= exact,
                "percentile({q}) = {reported} under-reports exact {exact}"
            );
            prop_assert!(
                reported as f64 <= exact as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "percentile({q}) = {reported} exceeds the 1/16 bound on exact {exact}"
            );
        }
    }
}
