//! Pluggable multi-tenant workloads for the Camouflage traffic layers.
//!
//! The paper evaluates through one lens — lmbench micro-benchmarks on a
//! single machine (§7) — and the PR-3 sharded driver hardcoded that same
//! mix. This crate makes the *workload* a first-class, pluggable axis the
//! way PARTS-style kernel-CFI evaluations mix syscall-heavy and
//! compute-heavy phases:
//!
//! * [`Workload`] — the trait: a deterministic-per-seed stream of [`Op`]s.
//!   Implementations never touch the kernel directly; they emit a
//!   vocabulary of operations and the executor applies them, so a workload
//!   is a pure, replayable generator.
//! * [`TenantRun`] — the executor: owns a tenant's tasks on one machine,
//!   applies each [`Op`] to a [`camo_kernel::Kernel`], and attributes the
//!   *exact* simulated work (cycles, instructions, full
//!   [`camo_cpu::CpuStats`] deltas) to the tenant, feeding a
//!   [`LatencyHistogram`] of per-op simulated cycles.
//! * Four built-in mixes — [`LmbenchMix`] (the paper's Figure-3 syscall
//!   set, extracted from the PR-3 driver), [`ProcessChurn`] (a fork/exec
//!   storm over the kernel's PID-recycling paths), [`ModuleChurn`]
//!   (load/verify/sign/run/unload through the §4.1/§4.6 pipeline), and
//!   [`TenantSwitchMix`] (context-switch and migration heavy, the §5
//!   key-switch paths).
//!
//! Everything is deterministic in the seed: the same `(seed, shard,
//! tenant)` triple replays the same op stream, which is what lets the
//! fleet driver in `camo_smp` assert that parallel and sequential
//! execution produce bit-identical simulated totals.
//!
//! # Writing a workload
//!
//! ```
//! use camo_workloads::{Op, Workload};
//! use rand::{rngs::StdRng, Rng};
//!
//! /// Hammers `getpid`, occasionally yielding the core.
//! struct PidStorm;
//!
//! impl Workload for PidStorm {
//!     fn name(&self) -> &str {
//!         "pid-storm"
//!     }
//!     fn next_op(&mut self, rng: &mut StdRng) -> Op {
//!         if rng.gen_bool(0.1) {
//!             Op::ContextSwitch
//!         } else {
//!             Op::Syscall { nr: 172, arg0: 0, batch: 8 }
//!         }
//!     }
//!     fn task_count(&self, _cpus: usize) -> usize {
//!         2 // ContextSwitch needs a pair
//!     }
//! }
//!
//! // Drive it by hand on a freshly booted machine.
//! use camo_kernel::{Kernel, KernelConfig};
//! use camo_workloads::TenantRun;
//!
//! let mut kernel = Kernel::boot(KernelConfig::default())?;
//! let mut run = TenantRun::new("demo", Box::new(PidStorm), &mut kernel, 42)?;
//! for _ in 0..4 {
//!     run.step(&mut kernel, None)?;
//! }
//! assert_eq!(run.totals().ops, 4);
//! assert!(run.totals().latency.p50() > 0);
//! # Ok::<(), camo_kernel::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod hist;
mod mixes;
mod workload;

pub use exec::{HostileRecord, HostileTotals, OpReport, TenantRun, TenantTotals};
pub use hist::LatencyHistogram;
pub use mixes::{FuzzMix, LmbenchMix, ModuleChurn, ProcessChurn, TenantSwitchMix, LMBENCH_BATCH};
pub use workload::{
    derive_seed, tenant_seed, tenant_stream_seed, ExpectedOutcome, HostileOp, Op, Quota,
    TenantSpec, Workload, WorkloadFactory,
};
