//! The built-in workload mixes.

use crate::workload::{HostileOp, Op, Workload};
use camo_kernel::SYSCALLS;
use rand::rngs::StdRng;
use rand::Rng;

/// Syscalls per [`Op::Syscall`] batch emitted by [`LmbenchMix`] — the
/// PR-3 `ShardedDriver` batch size, kept so the compatibility alias
/// replays the same `run_user` sequence.
pub const LMBENCH_BATCH: u64 = 16;

/// The paper's lmbench syscall mix (Figure 3), as a workload: every
/// modeled syscall in spec order, round-robin, in batches of
/// [`LMBENCH_BATCH`]. Fully deterministic — the RNG is untouched — which
/// is exactly the PR-3 `ShardedDriver` traffic shape extracted into the
/// pluggable API.
#[derive(Debug, Default)]
pub struct LmbenchMix {
    turn: usize,
}

impl LmbenchMix {
    /// A fresh mix starting at the first syscall spec.
    pub fn new() -> LmbenchMix {
        LmbenchMix::default()
    }
}

impl Workload for LmbenchMix {
    fn name(&self) -> &str {
        "lmbench-mix"
    }

    fn next_op(&mut self, _rng: &mut StdRng) -> Op {
        let spec = &SYSCALLS[self.turn % SYSCALLS.len()];
        self.turn += 1;
        Op::Syscall {
            nr: spec.nr,
            arg0: 3,
            batch: LMBENCH_BATCH,
        }
    }

    fn task_count(&self, cpus: usize) -> usize {
        cpus.max(1) // one serving task per core, like the PR-3 driver
    }
}

/// A fork/exec process-churn storm: most ops spawn a short-lived child
/// (fresh per-thread PAuth keys, §2.2 `exec()`), run a small syscall
/// burst in it, and `exit()` it — hammering task creation, the signed
/// saved-SP seeding (`task_init_sp`), and the kernel's PID recycling.
/// The occasional plain syscall keeps the long-lived task warm.
#[derive(Debug, Default)]
pub struct ProcessChurn;

impl ProcessChurn {
    /// A fresh churn workload.
    pub fn new() -> ProcessChurn {
        ProcessChurn
    }
}

impl Workload for ProcessChurn {
    fn name(&self) -> &str {
        "fork-exec-churn"
    }

    fn next_op(&mut self, rng: &mut StdRng) -> Op {
        if rng.gen_bool(0.125) {
            Op::Syscall {
                nr: 172,
                arg0: 0,
                batch: 4,
            }
        } else {
            Op::ProcessChurn {
                burst: rng.gen_range(4..=12),
            }
        }
    }
}

/// Module load/unload churn: generates a fresh instrumented module per
/// op, pushes it through §4.1 verification and §4.6 load-time signing,
/// runs its entry (signed returns on every internal call), and unloads
/// it — with authenticated work-queue callbacks (§4.4) mixed in.
#[derive(Debug, Default)]
pub struct ModuleChurn;

impl ModuleChurn {
    /// A fresh module-churn workload.
    pub fn new() -> ModuleChurn {
        ModuleChurn
    }
}

impl Workload for ModuleChurn {
    fn name(&self) -> &str {
        "module-churn"
    }

    fn next_op(&mut self, rng: &mut StdRng) -> Op {
        if rng.gen_bool(0.25) {
            Op::Work { func: "dev_poll" }
        } else {
            Op::ModuleChurn {
                funcs: rng.gen_range(1..=3),
            }
        }
    }
}

/// A context-switch-heavy multi-task tenant: mostly `cpu_switch_to`
/// round trips between its tasks (§5.2 signed-SP save/authenticate) and
/// cross-core migrations (§6.1.1 `thread_struct` key-follow), with
/// syscall bursts and a medium user-compute block in between — the §5
/// key-switch paths under pressure.
#[derive(Debug, Default)]
pub struct TenantSwitchMix;

impl TenantSwitchMix {
    /// A fresh tenant mix.
    pub fn new() -> TenantSwitchMix {
        TenantSwitchMix
    }
}

impl Workload for TenantSwitchMix {
    fn name(&self) -> &str {
        "tenant-switch-mix"
    }

    fn next_op(&mut self, rng: &mut StdRng) -> Op {
        match rng.gen_range(0..10u32) {
            0..=4 => Op::ContextSwitch,
            5 | 6 => Op::Syscall {
                nr: [172, 63, 64][rng.gen_range(0..3usize)],
                arg0: 3,
                batch: 2,
            },
            7 => Op::Migrate,
            _ => Op::UserRun {
                block: "tenant".to_string(),
                iterations: 2,
                nr: 63,
                arg0: 3,
            },
        }
    }

    fn task_count(&self, _cpus: usize) -> usize {
        3
    }

    fn user_blocks(&self) -> Vec<(String, usize, usize)> {
        vec![("tenant".to_string(), 600, 60)]
    }
}

/// The seeded adversarial traffic plane: hostile operations — each with a
/// declared expected outcome ([`HostileOp::expected`]) — interleaved with
/// the benign op vocabulary, so attacks land *under load* rather than on a
/// quiet machine. Roughly one op in four is hostile, drawn uniformly from
/// [`HostileOp::ALL`]; the rest are switch/syscall/compute/work traffic.
///
/// Like every mix, the stream is a pure function of the tenant RNG: the
/// same `(plan seed, shard, tenant name)` triple replays the same attack
/// sequence, which is what lets the BENCH_6 gate compare a mixed run
/// against isolated baselines and the block engine A/B arms bit-exactly.
#[derive(Debug, Default)]
pub struct FuzzMix;

impl FuzzMix {
    /// A fresh fuzz mix.
    pub fn new() -> FuzzMix {
        FuzzMix
    }
}

impl Workload for FuzzMix {
    fn name(&self) -> &str {
        "fuzz-mix"
    }

    fn next_op(&mut self, rng: &mut StdRng) -> Op {
        match rng.gen_range(0..8u32) {
            0 | 1 => Op::Hostile(HostileOp::ALL[rng.gen_range(0..HostileOp::ALL.len())]),
            2 | 3 => Op::ContextSwitch,
            4 | 5 => Op::Syscall {
                nr: [172, 63, 64][rng.gen_range(0..3usize)],
                arg0: 3,
                batch: 2,
            },
            6 => Op::Work { func: "dev_poll" },
            _ => Op::UserRun {
                block: "fuzz".to_string(),
                iterations: 2,
                nr: 63,
                arg0: 3,
            },
        }
    }

    fn task_count(&self, _cpus: usize) -> usize {
        2
    }

    fn user_blocks(&self) -> Vec<(String, usize, usize)> {
        vec![("fuzz".to_string(), 400, 40)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stream(w: &mut dyn Workload, seed: u64, n: usize) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| w.next_op(&mut rng)).collect()
    }

    #[test]
    fn every_mix_is_deterministic_per_seed() {
        let builders: Vec<fn() -> Box<dyn Workload>> = vec![
            || Box::new(LmbenchMix::new()),
            || Box::new(ProcessChurn::new()),
            || Box::new(ModuleChurn::new()),
            || Box::new(TenantSwitchMix::new()),
        ];
        for build in builders {
            let a = stream(&mut *build(), 42, 64);
            let b = stream(&mut *build(), 42, 64);
            assert_eq!(a, b, "same seed must replay the same op stream");
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        // (For the RNG-driven mixes; lmbench is deliberately seed-free.)
        let a = stream(&mut TenantSwitchMix::new(), 1, 64);
        let b = stream(&mut TenantSwitchMix::new(), 2, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn lmbench_mix_cycles_the_full_syscall_table() {
        let ops = stream(&mut LmbenchMix::new(), 0, SYSCALLS.len());
        let nrs: Vec<u64> = ops
            .iter()
            .map(|op| match op {
                Op::Syscall { nr, batch, .. } => {
                    assert_eq!(*batch, LMBENCH_BATCH);
                    *nr
                }
                other => panic!("lmbench only emits syscalls, got {other:?}"),
            })
            .collect();
        assert_eq!(nrs, SYSCALLS.iter().map(|s| s.nr).collect::<Vec<_>>());
    }

    #[test]
    fn mixes_emit_their_signature_ops() {
        assert!(stream(&mut ProcessChurn::new(), 3, 32)
            .iter()
            .any(|op| matches!(op, Op::ProcessChurn { .. })));
        assert!(stream(&mut ModuleChurn::new(), 3, 32)
            .iter()
            .any(|op| matches!(op, Op::ModuleChurn { .. })));
        let tenant = stream(&mut TenantSwitchMix::new(), 3, 64);
        assert!(tenant.iter().any(|op| matches!(op, Op::ContextSwitch)));
        assert!(tenant.iter().any(|op| matches!(op, Op::Migrate)));
    }

    #[test]
    fn tenant_mix_declares_its_user_block() {
        let w = TenantSwitchMix::new();
        assert_eq!(w.user_blocks()[0].0, "tenant");
        assert!(w.task_count(1) >= 2, "context switching needs a pair");
    }
}
