//! Deterministic log-bucketed latency histograms over simulated cycles.

/// Exact linear buckets below this value (one bucket per cycle count).
const LINEAR: u64 = 16;
/// Sub-buckets per power-of-two major bucket above the linear region.
const SUB: usize = 16;
/// Total bucket count: 16 linear + 60 majors × 16 sub-buckets (covers
/// the full `u64` range).
const BUCKETS: usize = LINEAR as usize + 60 * SUB;

/// An HDR-style histogram of simulated-cycle latencies.
///
/// Values below 16 cycles get exact buckets; above that, each
/// power-of-two range is split into 16 sub-buckets, bounding the relative
/// quantization error of any reported percentile at 1/16 (≈ 6 %).
/// Everything is integer counters, so recording, merging, and percentile
/// extraction are bit-deterministic: two shards' histograms merged in
/// shard order equal the histogram of the sequential run — the property
/// the fleet driver's parallel ≡ sequential invariant extends to
/// latencies.
///
/// Percentiles are reported as the *upper bound* of the bucket containing
/// the requested rank (pessimistic), clamped to the observed maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < LINEAR {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as u64; // ≥ 4
        let major = (msb - 3) as usize; // 1..=60
        let sub = ((value >> (msb - 4)) & 0xF) as usize;
        LINEAR as usize + (major - 1) * SUB + sub
    }

    /// Inclusive upper bound of bucket `idx` — what percentiles report.
    fn upper_bound(idx: usize) -> u64 {
        if idx < LINEAR as usize {
            return idx as u64;
        }
        let major = (idx - LINEAR as usize) / SUB + 1;
        let sub = ((idx - LINEAR as usize) % SUB) as u64;
        let msb = major as u64 + 3;
        let width = 1u64 << (msb - 4);
        (1u64 << msb) + sub * width + width - 1
    }

    /// Records one latency observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every observation of `other` into `self`. Merging is
    /// commutative and associative, so any merge order yields the same
    /// histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The latency at quantile `q` in `[0, 1]` (upper bucket bound,
    /// clamped to the observed maximum), or 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median simulated-cycle latency.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile latency.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 on an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(1.0 / 16.0), 0);
        assert_eq!(h.p50(), 7);
        assert_eq!(h.percentile(1.0), 15);
    }

    #[test]
    fn quantization_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 1_000, 10_000, 123_456, 9_999_999] {
            h.record(v);
            let p = h.percentile(1.0);
            assert!(p >= v, "upper bound is pessimistic: {p} < {v}");
            assert!(
                p as f64 <= v as f64 * (1.0 + 1.0 / 16.0),
                "relative error > 1/16: {p} vs {v}"
            );
        }
    }

    #[test]
    fn percentiles_are_monotonic() {
        let mut h = LatencyHistogram::new();
        let mut x = 3u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            h.record(x % 100_000);
        }
        let mut last = 0;
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!(p >= last, "percentile({q}) regressed");
            last = p;
        }
        assert!(h.p99() <= h.max());
        assert!(h.p50() >= h.min());
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..500u64 {
            let v = v * 37 % 10_000;
            all.record(v);
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all, "merge must be lossless and order-free");
        let mut other_order = b;
        other_order.merge(&a);
        assert_eq!(other_order, all);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(
            (h.count(), h.min(), h.max(), h.p50(), h.p99()),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(h.mean(), 0.0);
    }
}
