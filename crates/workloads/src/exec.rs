//! The op executor: applies a tenant's [`Op`] stream to one machine and
//! attributes every simulated cycle to the tenant.

use crate::hist::LatencyHistogram;
use crate::workload::{ExpectedOutcome, HostileOp, Op, Workload};
use camo_codegen::{FunctionBuilder, Program, StaticPointerTable};
use camo_cpu::pac::KeyClass;
use camo_cpu::telemetry::{StatWindow, TelemetryEmitter};
use camo_cpu::CpuStats;
use camo_isa::{encode, Insn, Reg, SysReg};
use camo_kernel::layout::{self, file_struct, task_struct, work_struct};
use camo_kernel::{FileKind, Kernel, KernelError, KernelEvent, Tid};
use camo_mem::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What one executed [`Op`] did, in simulated quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpReport {
    /// Syscalls served by the op.
    pub syscalls: u64,
    /// Simulated instructions the op retired (whole-machine delta — it
    /// includes kernel-internal calls like `task_init_sp` or module
    /// signing the op triggered).
    pub instructions: u64,
    /// Simulated cycles the op consumed (whole-machine delta).
    pub cycles: u64,
}

/// A tenant's accumulated service on one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantTotals {
    /// Ops executed.
    pub ops: u64,
    /// Syscalls served.
    pub syscalls: u64,
    /// Simulated instructions attributed to this tenant.
    pub instructions: u64,
    /// Simulated cycles attributed to this tenant.
    pub cycles: u64,
    /// Full per-tenant counter deltas (PAC ops, key writes, cache hits,
    /// IPIs, …) — the sum of every op's [`CpuStats::delta_since`].
    pub stats: CpuStats,
    /// Per-op simulated-cycle latency distribution.
    pub latency: LatencyHistogram,
    /// The adversarial ledger: hostile-op attribution and the benign
    /// false-positive count (all zeros for a purely benign tenant).
    pub hostile: HostileTotals,
}

impl TenantTotals {
    fn new() -> TenantTotals {
        TenantTotals {
            ops: 0,
            syscalls: 0,
            instructions: 0,
            cycles: 0,
            stats: CpuStats::default(),
            latency: LatencyHistogram::new(),
            hostile: HostileTotals::new(),
        }
    }

    /// Accumulates another tenant total (the cross-shard merge).
    pub fn merge(&mut self, other: &TenantTotals) {
        self.ops += other.ops;
        self.syscalls += other.syscalls;
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.stats.merge(&other.stats);
        self.latency.merge(&other.latency);
        self.hostile.merge(&other.hostile);
    }
}

/// One hostile op's outcome, as attributed by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostileRecord {
    /// Which attack was mounted.
    pub op: HostileOp,
    /// The outcome the op declared ([`HostileOp::expected`]).
    pub expected: ExpectedOutcome,
    /// Whether the kernel's reaction matched the declaration exactly:
    /// the right failure kind on the right task, and nothing else.
    pub matched: bool,
    /// The observed PAC-failure key class, when one fired.
    pub observed_kind: Option<KeyClass>,
    /// Simulated cycles from triggering the attack to the §5.4 kill
    /// (zero for outcomes that kill nobody).
    pub kill_cycles: u64,
}

/// A tenant's adversarial ledger.
///
/// Benign windows and hostile windows are disjoint: the executor drains
/// the kernel's event log at the end of *every* op, so a failure event is
/// attributed to exactly one op of exactly one tenant. `benign_pac_events`
/// is therefore the §5.4 false-positive numerator — failure-policy events
/// that fired inside a window no attack was mounted in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostileTotals {
    /// Hostile ops mounted.
    pub attempted: u64,
    /// Hostile ops whose kernel reaction matched their declaration.
    pub matched: u64,
    /// Benign ops executed (the false-positive denominator).
    pub benign_ops: u64,
    /// Failure-policy events (PAC failure, kernel fault, task kill)
    /// observed in benign windows — §5.4 false positives.
    pub benign_pac_events: u64,
    /// Simulated cycles from attack trigger to task kill, over every
    /// matched killing op (the §5.4 time-to-kill distribution).
    pub time_to_kill: LatencyHistogram,
    /// Per-op records in execution order (shard order after a merge).
    pub records: Vec<HostileRecord>,
}

impl HostileTotals {
    fn new() -> HostileTotals {
        HostileTotals {
            attempted: 0,
            matched: 0,
            benign_ops: 0,
            benign_pac_events: 0,
            time_to_kill: LatencyHistogram::new(),
            records: Vec::new(),
        }
    }

    /// Accumulates another ledger (the cross-shard merge).
    pub fn merge(&mut self, other: &HostileTotals) {
        self.attempted += other.attempted;
        self.matched += other.matched;
        self.benign_ops += other.benign_ops;
        self.benign_pac_events += other.benign_pac_events;
        self.time_to_kill.merge(&other.time_to_kill);
        self.records.extend(other.records.iter().copied());
    }

    /// The §5.4 false-positive rate: benign windows with failure-policy
    /// events over all benign windows.
    pub fn false_positive_rate(&self) -> f64 {
        if self.benign_ops == 0 {
            0.0
        } else {
            self.benign_pac_events as f64 / self.benign_ops as f64
        }
    }
}

impl Default for HostileTotals {
    fn default() -> Self {
        HostileTotals::new()
    }
}

impl Default for TenantTotals {
    fn default() -> Self {
        TenantTotals::new()
    }
}

/// Merged counters of every core, with the TLB fields read once from the
/// shared memory system (each core mirrors the shared totals; summing the
/// mirrors would multiply-count them — same rule as `ClusterStats`).
fn merged_stats(kernel: &Kernel) -> CpuStats {
    let mut merged = CpuStats::default();
    for cpu in kernel.cpus() {
        merged.merge(&cpu.stats());
    }
    merged.tlb_hits = kernel.mem().tlb_hits();
    merged.tlb_misses = kernel.mem().tlb_misses();
    merged
}

fn total_cycles(kernel: &Kernel) -> u64 {
    kernel.cpus().iter().map(|c| c.cycles()).sum()
}

/// One tenant executing on one machine: its long-lived tasks, its
/// deterministic RNG, and its accumulated totals.
///
/// The executor is the only component that touches the kernel; workloads
/// stay pure op generators. Latency is attributed by snapshotting the
/// machine-wide cycle and [`CpuStats`] totals around each op, so *every*
/// simulated cycle an op causes — including kernel-internal signing calls
/// — lands in the tenant's histogram.
#[derive(Debug)]
pub struct TenantRun {
    name: String,
    workload: Box<dyn Workload + Send>,
    rng: StdRng,
    tids: Vec<Tid>,
    turn: u64,
    totals: TenantTotals,
    /// Event-drain scratch, reused per op (allocation-free steady state).
    events: Vec<KernelEvent>,
    /// Producer half of the streaming stats plane, present when the
    /// kernel booted with `telemetry` on. Purely host-side: it re-reads
    /// the per-op deltas [`TenantRun::step`] already computes, so the
    /// simulation is bit-identical with or without it.
    telemetry: Option<TelemetryEmitter>,
}

impl std::fmt::Debug for dyn Workload + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name())
    }
}

impl TenantRun {
    /// Sets a tenant up on `kernel`: spawns its long-lived tasks (named
    /// `"<name>-<i>"`, placed by the scheduler) and seeds its RNG.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures.
    pub fn new(
        name: impl Into<String>,
        workload: Box<dyn Workload + Send>,
        kernel: &mut Kernel,
        seed: u64,
    ) -> Result<TenantRun, KernelError> {
        let name = name.into();
        let tasks = workload.task_count(kernel.cpu_count()).max(1);
        let mut tids = Vec::with_capacity(tasks);
        for i in 0..tasks {
            tids.push(kernel.spawn(&format!("{name}-{i}"))?);
        }
        // Leave a clean event log behind: every op window drains the log
        // at its end, so setup events must not bleed into the first op.
        let mut events = Vec::new();
        kernel.take_events(&mut events);
        events.clear();
        Ok(TenantRun {
            name,
            workload,
            rng: StdRng::seed_from_u64(seed),
            tids,
            turn: 0,
            totals: TenantTotals::new(),
            events,
            // Registration order is construction order, so a driver that
            // builds its tenants in plan order gets plan-indexed ids.
            telemetry: kernel.telemetry_ring().map(TelemetryEmitter::new),
        })
    }

    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped workload's name.
    pub fn workload_name(&self) -> &str {
        self.workload.name()
    }

    /// Accumulated totals so far.
    pub fn totals(&self) -> &TenantTotals {
        &self.totals
    }

    /// Consumes the run, returning its totals.
    pub fn into_totals(self) -> TenantTotals {
        self.totals
    }

    /// This tenant's telemetry producer id on the shard ring (`None`
    /// when the plane is off).
    pub fn telemetry_tenant(&self) -> Option<u64> {
        self.telemetry.as_ref().map(|t| t.tenant())
    }

    /// End-of-run telemetry flush: the final partial [`StatWindow`],
    /// delivered directly (it never goes through the ring, so the sum of
    /// a tenant's drained windows plus this one equals its totals even
    /// if the ring was full at every boundary). `None` when the plane is
    /// off or everything was already published.
    pub fn flush_telemetry(&mut self) -> Option<StatWindow> {
        self.telemetry.as_mut().and_then(TelemetryEmitter::flush)
    }

    /// The tenant's current task (round-robin over its task pool).
    fn task(&self) -> Tid {
        self.tids[self.turn as usize % self.tids.len()]
    }

    /// Executes the workload's next op. `syscall_clamp` caps the batch of
    /// an [`Op::Syscall`] (how a syscall-denominated quota is hit
    /// exactly); other ops ignore it.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors — including the §5.4 PAC panic, which a
    /// benign workload must never trigger.
    pub fn step(
        &mut self,
        kernel: &mut Kernel,
        syscall_clamp: Option<u64>,
    ) -> Result<OpReport, KernelError> {
        let op = self.workload.next_op(&mut self.rng);
        let hostile = matches!(op, Op::Hostile(_));
        let cycles0 = total_cycles(kernel);
        let stats0 = merged_stats(kernel);
        let syscalls = self.apply(kernel, op, syscall_clamp)?;
        let delta = merged_stats(kernel).delta_since(&stats0);
        let cycles = total_cycles(kernel) - cycles0;
        if !hostile {
            // End-of-window drain: any §5.4 failure-policy event fired in
            // a window with no attack in it is a false positive.
            self.events.clear();
            kernel.take_events(&mut self.events);
            let unexpected = self
                .events
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        KernelEvent::PacFailure { .. }
                            | KernelEvent::KernelFault { .. }
                            | KernelEvent::TaskKilled { .. }
                    )
                })
                .count() as u64;
            self.totals.hostile.benign_ops += 1;
            self.totals.hostile.benign_pac_events += unexpected;
        }
        self.turn += 1;
        self.totals.ops += 1;
        self.totals.syscalls += syscalls;
        self.totals.instructions += delta.instructions;
        self.totals.cycles += cycles;
        self.totals.stats.merge(&delta);
        self.totals.latency.record(cycles);
        if let Some(t) = &mut self.telemetry {
            t.record(syscalls, cycles, &delta);
        }
        Ok(OpReport {
            syscalls,
            instructions: delta.instructions,
            cycles,
        })
    }

    /// Applies one op, returning the syscalls it served.
    fn apply(
        &mut self,
        kernel: &mut Kernel,
        op: Op,
        syscall_clamp: Option<u64>,
    ) -> Result<u64, KernelError> {
        match op {
            Op::Syscall { nr, arg0, batch } => {
                let batch = syscall_clamp.map_or(batch, |cap| batch.min(cap)).max(1);
                let out = kernel.run_user(self.task(), "stub", batch, nr, arg0)?;
                debug_assert!(out.fault.is_none(), "benign traffic must not fault");
                Ok(out.syscalls)
            }
            Op::UserRun {
                block,
                iterations,
                nr,
                arg0,
            } => {
                let out = kernel.run_user(self.task(), &block, iterations.max(1), nr, arg0)?;
                debug_assert!(out.fault.is_none(), "benign traffic must not fault");
                Ok(out.syscalls)
            }
            Op::ProcessChurn { burst } => {
                let child = kernel.spawn(&format!("{}-child", self.name))?;
                let out = kernel.run_user(child, "stub", burst.max(1), 172, 0)?;
                debug_assert!(out.fault.is_none(), "benign traffic must not fault");
                kernel.exit_task(child)?;
                Ok(out.syscalls)
            }
            Op::ContextSwitch => {
                if self.tids.len() < 2 {
                    return self.apply(
                        kernel,
                        Op::Syscall {
                            nr: 172,
                            arg0: 0,
                            batch: 1,
                        },
                        None,
                    );
                }
                let n = self.tids.len();
                let from = self.tids[self.turn as usize % n];
                let to = self.tids[(self.turn as usize + 1) % n];
                let out = kernel.context_switch(from, to)?;
                debug_assert!(out.fault.is_none(), "benign switch must authenticate");
                Ok(0)
            }
            Op::Migrate => {
                if kernel.cpu_count() < 2 {
                    return self.apply(
                        kernel,
                        Op::Syscall {
                            nr: 172,
                            arg0: 0,
                            batch: 1,
                        },
                        None,
                    );
                }
                let tid = self.task();
                let home = kernel
                    .tasks()
                    .find(|t| t.tid == tid)
                    .map(|t| t.cpu)
                    .unwrap_or(0);
                kernel.migrate_task(tid, (home + 1) % kernel.cpu_count())?;
                // Enter user mode once so the destination core performs
                // the §6.1.1 key restore for real.
                let out = kernel.run_user(tid, "stub", 1, 172, 0)?;
                debug_assert!(out.fault.is_none(), "post-migration entry must succeed");
                Ok(out.syscalls)
            }
            Op::ModuleChurn { funcs } => {
                let cfg = kernel.codegen_config();
                let mut program = Program::new(cfg);
                let funcs = usize::from(funcs.max(1));
                let mut entry = FunctionBuilder::new("churn_entry", cfg).locals(32);
                entry.ins(Insn::AddImm {
                    rd: Reg::x(0),
                    rn: Reg::x(0),
                    imm12: 1,
                    shifted: false,
                });
                for i in 1..funcs {
                    entry.call(format!("churn_f{i}"));
                }
                program.push(entry.build());
                for i in 1..funcs {
                    let mut f = FunctionBuilder::new(format!("churn_f{i}"), cfg).locals(16);
                    f.ins(Insn::AddImm {
                        rd: Reg::x(0),
                        rn: Reg::x(0),
                        imm12: 1,
                        shifted: false,
                    });
                    program.push(f.build());
                }
                let handle = kernel.load_module(program, &StaticPointerTable::new())?;
                let entry_va = handle.image.symbol("churn_entry").expect("just built");
                let out = kernel.kexec(entry_va, &[self.turn])?;
                debug_assert!(out.fault.is_none(), "clean module must run");
                // x0 flows through the call chain: +1 in the entry, +1 in
                // each helper it calls.
                debug_assert_eq!(out.x0, self.turn + funcs as u64);
                kernel.unload_module(handle.base_va)?;
                Ok(0)
            }
            Op::Work { func } => {
                let work = kernel.init_work(func)?;
                let out = kernel.run_work(work)?;
                debug_assert!(out.fault.is_none(), "signed callback must authenticate");
                Ok(0)
            }
            Op::Hostile(hostile) => {
                self.apply_hostile(kernel, hostile)?;
                Ok(0)
            }
        }
    }

    /// Mounts one hostile op: stage the attack on sacrificial objects,
    /// trigger it, attribute the kernel's reaction against the declared
    /// expectation, and clean up so the next (benign) window starts from
    /// the same recycled-resource state the op found.
    ///
    /// # Errors
    ///
    /// Propagates *infrastructure* failures (spawn/reap, module plumbing).
    /// The attack's own outcome — including its absence — is recorded, not
    /// propagated: a missing fault is a mismatch, not an executor error.
    fn apply_hostile(&mut self, kernel: &mut Kernel, op: HostileOp) -> Result<(), KernelError> {
        match op {
            HostileOp::ForgedSavedSp | HostileOp::ReplaySavedSp => {
                let victim = kernel.spawn(&format!("{}-sac-a", self.name))?;
                let target = kernel.spawn(&format!("{}-sac-b", self.name))?;
                let kctx = kernel.mem().kernel_ctx(kernel.kernel_table());
                let slot = layout::task_struct_va(target) + u64::from(task_struct::SAVED_SP);
                if op == HostileOp::ForgedSavedSp {
                    // A raw, canonical kernel pointer where a signed one
                    // belongs — the classic forged-pointer return.
                    let raw = layout::stack_top(target) - 512;
                    kernel
                        .mem_mut()
                        .write_u64(&kctx, slot, raw)
                        .expect("task page mapped");
                } else {
                    // Replay: a *valid* signature, bound to the wrong
                    // task_struct (and replayed across a migration when
                    // the machine has a second core).
                    let donor = layout::task_struct_va(victim) + u64::from(task_struct::SAVED_SP);
                    let signed = kernel
                        .mem()
                        .read_u64(&kctx, donor)
                        .expect("task page mapped");
                    if kernel.cpu_count() >= 2 {
                        let home = kernel
                            .tasks()
                            .find(|t| t.tid == target)
                            .map(|t| t.cpu)
                            .unwrap_or(0);
                        kernel.migrate_task(target, (home + 1) % kernel.cpu_count())?;
                    }
                    kernel
                        .mem_mut()
                        .write_u64(&kctx, slot, signed)
                        .expect("task page mapped");
                }
                // Make the sacrificial task current so the §5.4 kill has a
                // deterministic victim.
                let entry = kernel.run_user(victim, "stub", 1, 172, 0)?;
                let switch = kernel.context_switch(victim, target)?;
                let triggered =
                    entry.fault.is_none() && switch.fault.is_some_and(|f| f.pac_failure);
                kernel.reap_task(victim)?;
                kernel.exit_task(target)?;
                self.record_hostile(kernel, op, Some(victim), switch.cycles, triggered);
            }
            HostileOp::ForgedFileOps => {
                let (fd, file_va) = kernel.open_file(FileKind::DevZero)?;
                let kctx = kernel.mem().kernel_ctx(kernel.kernel_table());
                // The raw (unsigned) operations-table address over the
                // signed f_ops field.
                kernel
                    .mem_mut()
                    .write_u64(
                        &kctx,
                        file_va + u64::from(file_struct::F_OPS),
                        FileKind::DevZero.ops_va(),
                    )
                    .expect("file heap mapped");
                let victim = kernel.spawn(&format!("{}-sac", self.name))?;
                let out = kernel.run_user(victim, "stub", 1, 63, fd)?;
                let triggered = out.fault.is_some_and(|f| f.pac_failure);
                kernel.reap_task(victim)?;
                self.record_hostile(kernel, op, Some(victim), out.cycles, triggered);
            }
            HostileOp::ForgedWorkFunc => {
                let work = kernel.init_work("dev_poll")?;
                let kctx = kernel.mem().kernel_ctx(kernel.kernel_table());
                // A raw kernel symbol where the signed callback belongs.
                let raw_func = kernel.symbol("dev_read");
                kernel
                    .mem_mut()
                    .write_u64(&kctx, work + u64::from(work_struct::FUNC), raw_func)
                    .expect("work heap mapped");
                let victim = kernel.spawn(&format!("{}-sac", self.name))?;
                let entry = kernel.run_user(victim, "stub", 1, 172, 0)?;
                let out = kernel.run_work(work)?;
                let triggered = entry.fault.is_none() && out.fault.is_some_and(|f| f.pac_failure);
                kernel.reap_task(victim)?;
                self.record_hostile(kernel, op, Some(victim), out.cycles, triggered);
            }
            HostileOp::UnsignedModule => {
                let cfg = kernel.codegen_config();
                let mut program = Program::new(cfg);
                let mut f = FunctionBuilder::new("evil_entry", cfg).locals(16);
                // Reading a PAuth key register is an R2 violation the §4.1
                // verifier must reject before any byte is mapped.
                f.ins(Insn::Mrs {
                    rt: Reg::x(0),
                    sr: SysReg::ApibKeyLoEl1,
                });
                program.push(f.build());
                let rejected = kernel
                    .load_module(program, &StaticPointerTable::new())
                    .is_err();
                self.record_hostile(kernel, op, None, 0, rejected);
            }
            HostileOp::CodeTamper => {
                let cfg = kernel.codegen_config();
                let mut program = Program::new(cfg);
                let mut f = FunctionBuilder::new("tamper_entry", cfg).locals(16);
                f.ins(Insn::AddImm {
                    rd: Reg::x(0),
                    rn: Reg::x(0),
                    imm12: 1,
                    shifted: false,
                });
                program.push(f.build());
                let handle = kernel.load_module(program, &StaticPointerTable::new())?;
                let entry_va = handle.image.symbol("tamper_entry").expect("just built");
                let first = kernel.kexec(entry_va, &[self.turn])?;
                // Locate the AddImm word and rewrite it with physical
                // access — no MMU, no permission check, the attacker
                // writes RAM behind the hypervisor's back.
                let marker = encode(&Insn::AddImm {
                    rd: Reg::x(0),
                    rn: Reg::x(0),
                    imm12: 1,
                    shifted: false,
                });
                let words = handle.image.to_words();
                let idx = words
                    .iter()
                    .position(|&w| w == marker)
                    .expect("marker instruction present");
                let va = handle.base_va + 4 * idx as u64;
                let entry = kernel
                    .mem()
                    .table(kernel.kernel_table())
                    .lookup(va & !(PAGE_SIZE - 1))
                    .expect("module text mapped");
                let pa = entry.frame.base() + (va & (PAGE_SIZE - 1));
                kernel
                    .mem_mut()
                    .phys_mut()
                    .write_u32(
                        pa,
                        encode(&Insn::AddImm {
                            rd: Reg::x(0),
                            rn: Reg::x(0),
                            imm12: 2,
                            shifted: false,
                        }),
                    )
                    .expect("module text backed");
                let second = kernel.kexec(entry_va, &[self.turn])?;
                // Coherent iff re-execution observes the new bytes
                // bit-exactly (the block engine must have invalidated).
                let coherent = first.fault.is_none()
                    && second.fault.is_none()
                    && first.x0 == self.turn + 1
                    && second.x0 == self.turn + 2;
                kernel.unload_module(handle.base_va)?;
                self.record_hostile(kernel, op, None, 0, coherent);
            }
        }
        Ok(())
    }

    /// Drains the hostile op's event window and scores it against the
    /// declaration: the expected reaction, on the expected victim, and
    /// *nothing else* — collateral failures or kills are mismatches.
    fn record_hostile(
        &mut self,
        kernel: &mut Kernel,
        op: HostileOp,
        victim: Option<Tid>,
        kill_cycles: u64,
        triggered: bool,
    ) {
        self.events.clear();
        kernel.take_events(&mut self.events);
        let mut pac: Option<(Tid, KeyClass)> = None;
        let mut pac_count = 0u32;
        let mut kills: Option<Tid> = None;
        let mut kill_count = 0u32;
        let mut kernel_faults = 0u32;
        let mut rejections = 0u32;
        for ev in &self.events {
            match ev {
                KernelEvent::PacFailure { tid, kind, .. } => {
                    pac_count += 1;
                    pac.get_or_insert((*tid, *kind));
                }
                KernelEvent::TaskKilled { tid } => {
                    kill_count += 1;
                    kills.get_or_insert(*tid);
                }
                KernelEvent::KernelFault { .. } => kernel_faults += 1,
                KernelEvent::ModuleRejected { .. } => rejections += 1,
                _ => {}
            }
        }
        let expected = op.expected();
        let matched = triggered
            && match expected {
                ExpectedOutcome::PacFailure { kind } => {
                    kernel_faults == 0
                        && rejections == 0
                        && pac_count == 1
                        && kill_count == 1
                        && victim.is_some_and(|v| pac == Some((v, kind)) && kills == Some(v))
                }
                ExpectedOutcome::ModuleRejected => {
                    rejections == 1 && pac_count == 0 && kill_count == 0 && kernel_faults == 0
                }
                ExpectedOutcome::CoherentTamper => {
                    rejections == 0 && pac_count == 0 && kill_count == 0 && kernel_faults == 0
                }
            };
        let hostile = &mut self.totals.hostile;
        hostile.attempted += 1;
        hostile.matched += u64::from(matched);
        if matched && matches!(expected, ExpectedOutcome::PacFailure { .. }) {
            hostile.time_to_kill.record(kill_cycles);
        }
        hostile.records.push(HostileRecord {
            op,
            expected,
            matched,
            observed_kind: pac.map(|(_, kind)| kind),
            kill_cycles,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes::{LmbenchMix, ModuleChurn, ProcessChurn, TenantSwitchMix};
    use camo_kernel::KernelConfig;

    fn booted(cpus: usize, blocks: &[(String, usize, usize)]) -> Kernel {
        let mut cfg = KernelConfig::default();
        cfg.cpus = cpus;
        cfg.user_blocks.extend(blocks.iter().cloned());
        Kernel::boot(cfg).expect("boot")
    }

    fn drive(workload: Box<dyn Workload + Send>, cpus: usize, ops: u64, seed: u64) -> TenantTotals {
        let blocks = workload.user_blocks();
        let mut kernel = booted(cpus, &blocks);
        let mut run = TenantRun::new("t", workload, &mut kernel, seed).expect("setup");
        for _ in 0..ops {
            run.step(&mut kernel, None).expect("benign op");
        }
        run.into_totals()
    }

    #[test]
    fn every_mix_runs_cleanly_and_attributes_work() {
        let mixes: Vec<(Box<dyn Workload + Send>, usize)> = vec![
            (Box::new(LmbenchMix::new()), 1),
            (Box::new(ProcessChurn::new()), 1),
            (Box::new(ModuleChurn::new()), 1),
            (Box::new(TenantSwitchMix::new()), 2),
        ];
        for (workload, cpus) in mixes {
            let name = workload.name().to_string();
            let totals = drive(workload, cpus, 12, 7);
            assert_eq!(totals.ops, 12, "{name}");
            assert_eq!(totals.latency.count(), 12, "{name}");
            assert!(totals.cycles > 0, "{name}");
            assert!(totals.instructions > 0, "{name}");
            assert!(totals.latency.p50() > 0, "{name}");
            assert!(totals.latency.p99() >= totals.latency.p50(), "{name}");
        }
    }

    #[test]
    fn executor_is_deterministic_per_seed() {
        let a = drive(Box::new(TenantSwitchMix::new()), 2, 20, 99);
        let b = drive(Box::new(TenantSwitchMix::new()), 2, 20, 99);
        assert_eq!(a, b, "same seed, same machine, same totals — bit for bit");
        let c = drive(Box::new(TenantSwitchMix::new()), 2, 20, 100);
        assert_ne!(a.cycles, c.cycles, "different seed must reshuffle the mix");
    }

    #[test]
    fn syscall_clamp_caps_the_batch() {
        let mut kernel = booted(1, &[]);
        let mut run =
            TenantRun::new("t", Box::new(LmbenchMix::new()), &mut kernel, 1).expect("setup");
        let report = run.step(&mut kernel, Some(3)).expect("clamped op");
        assert_eq!(report.syscalls, 3, "batch of 16 clamped to the quota");
    }

    #[test]
    fn context_switch_exercises_signed_sp() {
        let workload = Box::new(TenantSwitchMix::new());
        let blocks = workload.user_blocks();
        let mut kernel = booted(1, &blocks);
        let mut run = TenantRun::new("t", workload, &mut kernel, 5).expect("setup");
        for _ in 0..20 {
            run.step(&mut kernel, None).expect("benign op");
        }
        // The mix is switch-heavy: the signed-SP path authenticated.
        assert!(
            run.totals().stats.pac_auth_ok > 0,
            "cpu_switch_to authenticated saved SPs"
        );
    }

    /// A machine hardened for adversarial runs: the §5.4 panic threshold
    /// is lifted so the *gate* (not the panic) judges every attack.
    #[test]
    fn block_engine_is_invisible_to_the_adversarial_plan() {
        let run_arm = |block_engine: bool| {
            let workload: Box<dyn Workload + Send> = Box::new(crate::FuzzMix::new());
            let mut cfg = KernelConfig::default();
            cfg.cpus = 2;
            cfg.pac_panic_threshold = u32::MAX;
            cfg.block_engine = block_engine;
            cfg.user_blocks.extend(workload.user_blocks());
            let mut kernel = Kernel::boot(cfg).expect("boot");
            let mut run = TenantRun::new("adv", workload, &mut kernel, 31).expect("setup");
            for _ in 0..40 {
                run.step(&mut kernel, None).expect("op");
            }
            run.into_totals()
        };
        let on = run_arm(true);
        let off = run_arm(false);
        assert!(on.hostile.attempted > 0, "the mix mounted attacks");
        assert!(
            on.stats.arch_eq(&off.stats),
            "block engine changed architectural counters under attack"
        );
        assert_eq!(on.cycles, off.cycles);
        assert_eq!(on.instructions, off.instructions);
        assert_eq!(on.latency, off.latency);
        // Same attacks, same outcomes, same failure kinds, same
        // time-to-kill — record by record.
        assert_eq!(
            on.hostile, off.hostile,
            "block engine changed an attack outcome"
        );
    }

    /// The trace tier under the same adversarial contract: hot-chain
    /// promotion, guard side exits and per-site memos must not move an
    /// attack outcome, a latency sample, or an architectural counter.
    #[test]
    fn trace_engine_is_invisible_to_the_adversarial_plan() {
        let run_arm = |trace_engine: bool| {
            let workload: Box<dyn Workload + Send> = Box::new(crate::FuzzMix::new());
            let mut cfg = KernelConfig::default();
            cfg.cpus = 2;
            cfg.pac_panic_threshold = u32::MAX;
            cfg.trace_engine = trace_engine;
            cfg.user_blocks.extend(workload.user_blocks());
            let mut kernel = Kernel::boot(cfg).expect("boot");
            let mut run = TenantRun::new("adv", workload, &mut kernel, 31).expect("setup");
            for _ in 0..40 {
                run.step(&mut kernel, None).expect("op");
            }
            run.into_totals()
        };
        let on = run_arm(true);
        let off = run_arm(false);
        assert!(on.hostile.attempted > 0, "the mix mounted attacks");
        assert!(
            on.stats.arch_eq(&off.stats),
            "trace engine changed architectural counters under attack"
        );
        assert_eq!(on.cycles, off.cycles);
        assert_eq!(on.instructions, off.instructions);
        assert_eq!(on.latency, off.latency);
        assert_eq!(
            on.hostile, off.hostile,
            "trace engine changed an attack outcome"
        );
        assert!(
            on.stats.trace_hits > 0,
            "the on-arm actually executed traces"
        );
        assert_eq!(off.stats.trace_hits, 0, "tier off is off");
    }

    fn fuzz_booted(cpus: usize, blocks: &[(String, usize, usize)]) -> Kernel {
        let mut cfg = KernelConfig::default();
        cfg.cpus = cpus;
        cfg.pac_panic_threshold = u32::MAX;
        cfg.user_blocks.extend(blocks.iter().cloned());
        Kernel::boot(cfg).expect("boot")
    }

    #[test]
    fn every_hostile_op_matches_its_declaration() {
        let mut kernel = fuzz_booted(2, &[]);
        let mut run =
            TenantRun::new("adv", Box::new(crate::FuzzMix::new()), &mut kernel, 11).expect("setup");
        for op in HostileOp::ALL {
            run.apply(&mut kernel, Op::Hostile(op), None)
                .expect("hostile infrastructure");
        }
        let hostile = &run.totals().hostile;
        assert_eq!(hostile.attempted, HostileOp::ALL.len() as u64);
        for rec in &hostile.records {
            assert!(
                rec.matched,
                "{} must produce exactly {:?}, got kind {:?}",
                rec.op.name(),
                rec.expected,
                rec.observed_kind
            );
            if let ExpectedOutcome::PacFailure { kind } = rec.expected {
                assert_eq!(rec.observed_kind, Some(kind), "{}", rec.op.name());
                assert!(
                    rec.kill_cycles > 0,
                    "{} kill must cost cycles",
                    rec.op.name()
                );
            }
        }
        assert_eq!(hostile.matched, hostile.attempted);
        assert_eq!(hostile.time_to_kill.count(), 4, "four killing attacks");
    }

    #[test]
    fn hostile_ops_match_on_a_single_core_too() {
        let mut kernel = fuzz_booted(1, &[]);
        let mut run =
            TenantRun::new("adv", Box::new(crate::FuzzMix::new()), &mut kernel, 3).expect("setup");
        for op in HostileOp::ALL {
            run.apply(&mut kernel, Op::Hostile(op), None)
                .expect("hostile infrastructure");
        }
        assert_eq!(
            run.totals().hostile.matched,
            HostileOp::ALL.len() as u64,
            "replay-after-migration degrades to same-core replay on 1 cpu"
        );
    }

    #[test]
    fn fuzz_mix_attacks_under_load_with_zero_false_positives() {
        let workload = Box::new(crate::FuzzMix::new());
        let blocks = workload.user_blocks();
        let mut kernel = fuzz_booted(2, &blocks);
        let mut run = TenantRun::new("fuzz", workload, &mut kernel, 9).expect("setup");
        for _ in 0..48 {
            run.step(&mut kernel, None).expect("op");
        }
        let hostile = &run.totals().hostile;
        assert!(hostile.attempted > 0, "the mix must mount attacks");
        assert_eq!(
            hostile.matched, hostile.attempted,
            "every attack produced exactly its declared outcome"
        );
        assert_eq!(
            hostile.benign_pac_events, 0,
            "no §5.4 event leaked into a benign window"
        );
        assert_eq!(
            hostile.benign_ops + hostile.attempted,
            run.totals().ops,
            "every op window is attributed exactly once"
        );
        assert_eq!(hostile.false_positive_rate(), 0.0);
    }

    #[test]
    fn hostile_runs_are_deterministic_per_seed() {
        let totals = |seed: u64| {
            let workload = Box::new(crate::FuzzMix::new());
            let blocks = workload.user_blocks();
            let mut kernel = fuzz_booted(2, &blocks);
            let mut run = TenantRun::new("fuzz", workload, &mut kernel, seed).expect("setup");
            for _ in 0..32 {
                run.step(&mut kernel, None).expect("op");
            }
            run.into_totals()
        };
        assert_eq!(totals(5), totals(5), "bit-identical replay");
        assert_ne!(totals(5).cycles, totals(6).cycles);
    }

    #[test]
    fn module_churn_loads_and_unloads_for_real() {
        let mut kernel = booted(1, &[]);
        let mut run =
            TenantRun::new("t", Box::new(ModuleChurn::new()), &mut kernel, 2).expect("setup");
        for _ in 0..8 {
            run.step(&mut kernel, None).expect("benign op");
        }
        assert!(kernel.modules().is_empty(), "every load was unloaded");
        // The executor drains the event log per op window (that is what
        // makes false-positive attribution exact), so the unload events
        // were consumed — the benign ledger proves the windows were clean.
        assert!(kernel.events().is_empty(), "windows drain the log");
        assert_eq!(run.totals().hostile.benign_pac_events, 0);
    }
}
