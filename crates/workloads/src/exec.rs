//! The op executor: applies a tenant's [`Op`] stream to one machine and
//! attributes every simulated cycle to the tenant.

use crate::hist::LatencyHistogram;
use crate::workload::{Op, Workload};
use camo_codegen::{FunctionBuilder, Program, StaticPointerTable};
use camo_cpu::CpuStats;
use camo_isa::{Insn, Reg};
use camo_kernel::{Kernel, KernelError, Tid};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What one executed [`Op`] did, in simulated quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpReport {
    /// Syscalls served by the op.
    pub syscalls: u64,
    /// Simulated instructions the op retired (whole-machine delta — it
    /// includes kernel-internal calls like `task_init_sp` or module
    /// signing the op triggered).
    pub instructions: u64,
    /// Simulated cycles the op consumed (whole-machine delta).
    pub cycles: u64,
}

/// A tenant's accumulated service on one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantTotals {
    /// Ops executed.
    pub ops: u64,
    /// Syscalls served.
    pub syscalls: u64,
    /// Simulated instructions attributed to this tenant.
    pub instructions: u64,
    /// Simulated cycles attributed to this tenant.
    pub cycles: u64,
    /// Full per-tenant counter deltas (PAC ops, key writes, cache hits,
    /// IPIs, …) — the sum of every op's [`CpuStats::delta_since`].
    pub stats: CpuStats,
    /// Per-op simulated-cycle latency distribution.
    pub latency: LatencyHistogram,
}

impl TenantTotals {
    fn new() -> TenantTotals {
        TenantTotals {
            ops: 0,
            syscalls: 0,
            instructions: 0,
            cycles: 0,
            stats: CpuStats::default(),
            latency: LatencyHistogram::new(),
        }
    }

    /// Accumulates another tenant total (the cross-shard merge).
    pub fn merge(&mut self, other: &TenantTotals) {
        self.ops += other.ops;
        self.syscalls += other.syscalls;
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.stats.merge(&other.stats);
        self.latency.merge(&other.latency);
    }
}

impl Default for TenantTotals {
    fn default() -> Self {
        TenantTotals::new()
    }
}

/// Merged counters of every core, with the TLB fields read once from the
/// shared memory system (each core mirrors the shared totals; summing the
/// mirrors would multiply-count them — same rule as `ClusterStats`).
fn merged_stats(kernel: &Kernel) -> CpuStats {
    let mut merged = CpuStats::default();
    for cpu in kernel.cpus() {
        merged.merge(&cpu.stats());
    }
    merged.tlb_hits = kernel.mem().tlb_hits();
    merged.tlb_misses = kernel.mem().tlb_misses();
    merged
}

fn total_cycles(kernel: &Kernel) -> u64 {
    kernel.cpus().iter().map(|c| c.cycles()).sum()
}

/// One tenant executing on one machine: its long-lived tasks, its
/// deterministic RNG, and its accumulated totals.
///
/// The executor is the only component that touches the kernel; workloads
/// stay pure op generators. Latency is attributed by snapshotting the
/// machine-wide cycle and [`CpuStats`] totals around each op, so *every*
/// simulated cycle an op causes — including kernel-internal signing calls
/// — lands in the tenant's histogram.
#[derive(Debug)]
pub struct TenantRun {
    name: String,
    workload: Box<dyn Workload + Send>,
    rng: StdRng,
    tids: Vec<Tid>,
    turn: u64,
    totals: TenantTotals,
}

impl std::fmt::Debug for dyn Workload + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name())
    }
}

impl TenantRun {
    /// Sets a tenant up on `kernel`: spawns its long-lived tasks (named
    /// `"<name>-<i>"`, placed by the scheduler) and seeds its RNG.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures.
    pub fn new(
        name: impl Into<String>,
        workload: Box<dyn Workload + Send>,
        kernel: &mut Kernel,
        seed: u64,
    ) -> Result<TenantRun, KernelError> {
        let name = name.into();
        let tasks = workload.task_count(kernel.cpu_count()).max(1);
        let mut tids = Vec::with_capacity(tasks);
        for i in 0..tasks {
            tids.push(kernel.spawn(&format!("{name}-{i}"))?);
        }
        Ok(TenantRun {
            name,
            workload,
            rng: StdRng::seed_from_u64(seed),
            tids,
            turn: 0,
            totals: TenantTotals::new(),
        })
    }

    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped workload's name.
    pub fn workload_name(&self) -> &str {
        self.workload.name()
    }

    /// Accumulated totals so far.
    pub fn totals(&self) -> &TenantTotals {
        &self.totals
    }

    /// Consumes the run, returning its totals.
    pub fn into_totals(self) -> TenantTotals {
        self.totals
    }

    /// The tenant's current task (round-robin over its task pool).
    fn task(&self) -> Tid {
        self.tids[self.turn as usize % self.tids.len()]
    }

    /// Executes the workload's next op. `syscall_clamp` caps the batch of
    /// an [`Op::Syscall`] (how a syscall-denominated quota is hit
    /// exactly); other ops ignore it.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors — including the §5.4 PAC panic, which a
    /// benign workload must never trigger.
    pub fn step(
        &mut self,
        kernel: &mut Kernel,
        syscall_clamp: Option<u64>,
    ) -> Result<OpReport, KernelError> {
        let op = self.workload.next_op(&mut self.rng);
        let cycles0 = total_cycles(kernel);
        let stats0 = merged_stats(kernel);
        let syscalls = self.apply(kernel, op, syscall_clamp)?;
        let delta = merged_stats(kernel).delta_since(&stats0);
        let cycles = total_cycles(kernel) - cycles0;
        self.turn += 1;
        self.totals.ops += 1;
        self.totals.syscalls += syscalls;
        self.totals.instructions += delta.instructions;
        self.totals.cycles += cycles;
        self.totals.stats.merge(&delta);
        self.totals.latency.record(cycles);
        Ok(OpReport {
            syscalls,
            instructions: delta.instructions,
            cycles,
        })
    }

    /// Applies one op, returning the syscalls it served.
    fn apply(
        &mut self,
        kernel: &mut Kernel,
        op: Op,
        syscall_clamp: Option<u64>,
    ) -> Result<u64, KernelError> {
        match op {
            Op::Syscall { nr, arg0, batch } => {
                let batch = syscall_clamp.map_or(batch, |cap| batch.min(cap)).max(1);
                let out = kernel.run_user(self.task(), "stub", batch, nr, arg0)?;
                debug_assert!(out.fault.is_none(), "benign traffic must not fault");
                Ok(out.syscalls)
            }
            Op::UserRun {
                block,
                iterations,
                nr,
                arg0,
            } => {
                let out = kernel.run_user(self.task(), &block, iterations.max(1), nr, arg0)?;
                debug_assert!(out.fault.is_none(), "benign traffic must not fault");
                Ok(out.syscalls)
            }
            Op::ProcessChurn { burst } => {
                let child = kernel.spawn(&format!("{}-child", self.name))?;
                let out = kernel.run_user(child, "stub", burst.max(1), 172, 0)?;
                debug_assert!(out.fault.is_none(), "benign traffic must not fault");
                kernel.exit_task(child)?;
                Ok(out.syscalls)
            }
            Op::ContextSwitch => {
                if self.tids.len() < 2 {
                    return self.apply(
                        kernel,
                        Op::Syscall {
                            nr: 172,
                            arg0: 0,
                            batch: 1,
                        },
                        None,
                    );
                }
                let n = self.tids.len();
                let from = self.tids[self.turn as usize % n];
                let to = self.tids[(self.turn as usize + 1) % n];
                let out = kernel.context_switch(from, to)?;
                debug_assert!(out.fault.is_none(), "benign switch must authenticate");
                Ok(0)
            }
            Op::Migrate => {
                if kernel.cpu_count() < 2 {
                    return self.apply(
                        kernel,
                        Op::Syscall {
                            nr: 172,
                            arg0: 0,
                            batch: 1,
                        },
                        None,
                    );
                }
                let tid = self.task();
                let home = kernel
                    .tasks()
                    .find(|t| t.tid == tid)
                    .map(|t| t.cpu)
                    .unwrap_or(0);
                kernel.migrate_task(tid, (home + 1) % kernel.cpu_count())?;
                // Enter user mode once so the destination core performs
                // the §6.1.1 key restore for real.
                let out = kernel.run_user(tid, "stub", 1, 172, 0)?;
                debug_assert!(out.fault.is_none(), "post-migration entry must succeed");
                Ok(out.syscalls)
            }
            Op::ModuleChurn { funcs } => {
                let cfg = kernel.codegen_config();
                let mut program = Program::new(cfg);
                let funcs = usize::from(funcs.max(1));
                let mut entry = FunctionBuilder::new("churn_entry", cfg).locals(32);
                entry.ins(Insn::AddImm {
                    rd: Reg::x(0),
                    rn: Reg::x(0),
                    imm12: 1,
                    shifted: false,
                });
                for i in 1..funcs {
                    entry.call(format!("churn_f{i}"));
                }
                program.push(entry.build());
                for i in 1..funcs {
                    let mut f = FunctionBuilder::new(format!("churn_f{i}"), cfg).locals(16);
                    f.ins(Insn::AddImm {
                        rd: Reg::x(0),
                        rn: Reg::x(0),
                        imm12: 1,
                        shifted: false,
                    });
                    program.push(f.build());
                }
                let handle = kernel.load_module(program, &StaticPointerTable::new())?;
                let entry_va = handle.image.symbol("churn_entry").expect("just built");
                let out = kernel.kexec(entry_va, &[self.turn])?;
                debug_assert!(out.fault.is_none(), "clean module must run");
                // x0 flows through the call chain: +1 in the entry, +1 in
                // each helper it calls.
                debug_assert_eq!(out.x0, self.turn + funcs as u64);
                kernel.unload_module(handle.base_va)?;
                Ok(0)
            }
            Op::Work { func } => {
                let work = kernel.init_work(func)?;
                let out = kernel.run_work(work)?;
                debug_assert!(out.fault.is_none(), "signed callback must authenticate");
                Ok(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes::{LmbenchMix, ModuleChurn, ProcessChurn, TenantSwitchMix};
    use camo_kernel::KernelConfig;

    fn booted(cpus: usize, blocks: &[(String, usize, usize)]) -> Kernel {
        let mut cfg = KernelConfig::default();
        cfg.cpus = cpus;
        cfg.user_blocks.extend(blocks.iter().cloned());
        Kernel::boot(cfg).expect("boot")
    }

    fn drive(workload: Box<dyn Workload + Send>, cpus: usize, ops: u64, seed: u64) -> TenantTotals {
        let blocks = workload.user_blocks();
        let mut kernel = booted(cpus, &blocks);
        let mut run = TenantRun::new("t", workload, &mut kernel, seed).expect("setup");
        for _ in 0..ops {
            run.step(&mut kernel, None).expect("benign op");
        }
        run.into_totals()
    }

    #[test]
    fn every_mix_runs_cleanly_and_attributes_work() {
        let mixes: Vec<(Box<dyn Workload + Send>, usize)> = vec![
            (Box::new(LmbenchMix::new()), 1),
            (Box::new(ProcessChurn::new()), 1),
            (Box::new(ModuleChurn::new()), 1),
            (Box::new(TenantSwitchMix::new()), 2),
        ];
        for (workload, cpus) in mixes {
            let name = workload.name().to_string();
            let totals = drive(workload, cpus, 12, 7);
            assert_eq!(totals.ops, 12, "{name}");
            assert_eq!(totals.latency.count(), 12, "{name}");
            assert!(totals.cycles > 0, "{name}");
            assert!(totals.instructions > 0, "{name}");
            assert!(totals.latency.p50() > 0, "{name}");
            assert!(totals.latency.p99() >= totals.latency.p50(), "{name}");
        }
    }

    #[test]
    fn executor_is_deterministic_per_seed() {
        let a = drive(Box::new(TenantSwitchMix::new()), 2, 20, 99);
        let b = drive(Box::new(TenantSwitchMix::new()), 2, 20, 99);
        assert_eq!(a, b, "same seed, same machine, same totals — bit for bit");
        let c = drive(Box::new(TenantSwitchMix::new()), 2, 20, 100);
        assert_ne!(a.cycles, c.cycles, "different seed must reshuffle the mix");
    }

    #[test]
    fn syscall_clamp_caps_the_batch() {
        let mut kernel = booted(1, &[]);
        let mut run =
            TenantRun::new("t", Box::new(LmbenchMix::new()), &mut kernel, 1).expect("setup");
        let report = run.step(&mut kernel, Some(3)).expect("clamped op");
        assert_eq!(report.syscalls, 3, "batch of 16 clamped to the quota");
    }

    #[test]
    fn context_switch_exercises_signed_sp() {
        let workload = Box::new(TenantSwitchMix::new());
        let blocks = workload.user_blocks();
        let mut kernel = booted(1, &blocks);
        let mut run = TenantRun::new("t", workload, &mut kernel, 5).expect("setup");
        for _ in 0..20 {
            run.step(&mut kernel, None).expect("benign op");
        }
        // The mix is switch-heavy: the signed-SP path authenticated.
        assert!(
            run.totals().stats.pac_auth_ok > 0,
            "cpu_switch_to authenticated saved SPs"
        );
    }

    #[test]
    fn module_churn_loads_and_unloads_for_real() {
        let mut kernel = booted(1, &[]);
        let mut run =
            TenantRun::new("t", Box::new(ModuleChurn::new()), &mut kernel, 2).expect("setup");
        for _ in 0..8 {
            run.step(&mut kernel, None).expect("benign op");
        }
        assert!(kernel.modules().is_empty(), "every load was unloaded");
        assert!(kernel
            .events()
            .iter()
            .any(|e| matches!(e, camo_kernel::KernelEvent::ModuleUnloaded { .. })));
    }
}
