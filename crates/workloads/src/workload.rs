//! The workload vocabulary: [`Op`], the [`Workload`] trait, and tenant
//! plumbing ([`TenantSpec`], [`Quota`], seed derivation).

use camo_cpu::pac::KeyClass;
use rand::rngs::StdRng;
use std::fmt;
use std::sync::Arc;

/// One operation a workload asks the executor to perform.
///
/// Workloads emit `Op`s; they never hold a kernel reference. The executor
/// ([`crate::TenantRun`]) owns the tenant's tasks and interprets each
/// variant against the machine, so an op stream is replayable on any
/// identically-seeded machine — the determinism the fleet driver's
/// parallel ≡ sequential invariant rests on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `batch` iterations of (tiny user block + syscall `nr` with first
    /// argument `arg0`) on the tenant's current task — the lmbench shape.
    Syscall {
        /// AArch64 syscall number (must be in `camo_kernel::SYSCALLS`).
        nr: u64,
        /// First syscall argument (fd-based calls want an fd ≥ 3).
        arg0: u64,
        /// Iterations; the executor may clamp this to a remaining
        /// syscall quota.
        batch: u64,
    },
    /// `iterations` × (named user computation block + syscall `nr`) — the
    /// compute-heavy Figure-4 shape. The block must be declared by the
    /// workload's [`Workload::user_blocks`] so it is compiled into the
    /// machine's user image at boot.
    UserRun {
        /// User block name.
        block: String,
        /// Iterations.
        iterations: u64,
        /// Syscall number issued after each block.
        nr: u64,
        /// First syscall argument.
        arg0: u64,
    },
    /// fork/exec a child task (fresh per-thread PAuth keys, §2.2), run
    /// `burst` null syscalls in it, then `exit()` it — one full
    /// process-lifetime round trip over the kernel's PID-recycling paths.
    ProcessChurn {
        /// Syscalls the short-lived child serves before exiting.
        burst: u64,
    },
    /// One `cpu_switch_to` round trip between two of the tenant's tasks —
    /// the §5.2 signed-SP save/authenticate path.
    ContextSwitch,
    /// Migrate the tenant's current task to the next core (the §6.1.1
    /// `thread_struct` key-follow path), then run one syscall so the
    /// destination core actually restores the task's user keys. Falls
    /// back to a null syscall on a 1-CPU machine.
    Migrate,
    /// Load a freshly generated module through §4.1 verification, run its
    /// entry function, and unload it — the run-time linkage churn loop.
    ModuleChurn {
        /// Instrumented functions in the generated module (≥ 1; the entry
        /// calls each of the others, exercising signed returns per call).
        funcs: u8,
    },
    /// `INIT_WORK` + run: sign a work callback in kernel code, then
    /// authenticate and call it (§4.4 forward-edge CFI).
    Work {
        /// Kernel symbol the work item points at (e.g. `"dev_poll"`).
        func: &'static str,
    },
    /// Mount one adversarial operation against the machine. The executor
    /// stages the attack on sacrificial tasks/objects, triggers it, and
    /// checks the kernel's reaction against the op's *declared* expected
    /// outcome ([`HostileOp::expected`]) — misattribution in either
    /// direction (a missing failure, a wrong key class, a wrong victim, or
    /// collateral failures) is recorded as a mismatch.
    Hostile(HostileOp),
}

/// One adversarial operation a fuzz tenant can mount, each modeling a
/// concrete attack from the paper's threat model (§3).
///
/// Every variant declares the exact reaction the §5.4 fault policy must
/// produce — which [`KeyClass`] fails, on which (sacrificial) task — so a
/// fleet run can assert *attribution*, not merely "something faulted".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostileOp {
    /// Forged-pointer return (§5.2): overwrite a victim task's signed
    /// `SAVED_SP` with a raw kernel pointer, then context-switch into it.
    /// `cpu_switch_to` authenticates the slot under the data key → exactly
    /// one [`KeyClass::Data`] failure on the switching task.
    ForgedSavedSp,
    /// Replay (§5.2): copy another task's *validly signed* `SAVED_SP`
    /// qword over the victim's slot (after migrating the victim to a
    /// different core when one exists). The PAC is genuine but bound to
    /// the donor's `task_struct` address, so authentication under the
    /// victim's modifier fails → one [`KeyClass::Data`] failure.
    ReplaySavedSp,
    /// Forged `file->f_ops` (§4.2): overwrite a signed operations-table
    /// pointer with the raw (unsigned) table address, then drive a `read`
    /// through it → one [`KeyClass::Data`] failure in the syscall.
    ForgedFileOps,
    /// Forged work callback (§4.4): overwrite a signed `work->func` with
    /// a raw kernel symbol address, then run the work item → one
    /// [`KeyClass::Instruction`] failure at the indirect call.
    ForgedWorkFunc,
    /// Module-signing failure (§4.1): submit a module whose text reads a
    /// PAuth key register. Static verification must reject it before any
    /// byte is mapped — no PAC failure, no task killed.
    UnsignedModule,
    /// Direct physical-memory write to already-translated (and possibly
    /// block-cached) module code. Not a PAC attack: the expected outcome
    /// is *coherency* — re-execution observes the new bytes bit-exactly,
    /// with or without the block engine.
    CodeTamper,
}

impl HostileOp {
    /// Every hostile op, in a stable order (fuzz mixes index into this).
    pub const ALL: [HostileOp; 6] = [
        HostileOp::ForgedSavedSp,
        HostileOp::ReplaySavedSp,
        HostileOp::ForgedFileOps,
        HostileOp::ForgedWorkFunc,
        HostileOp::UnsignedModule,
        HostileOp::CodeTamper,
    ];

    /// Stable short name (reported in benchmarks and JSON).
    pub fn name(self) -> &'static str {
        match self {
            HostileOp::ForgedSavedSp => "forged-saved-sp",
            HostileOp::ReplaySavedSp => "replay-saved-sp",
            HostileOp::ForgedFileOps => "forged-file-ops",
            HostileOp::ForgedWorkFunc => "forged-work-func",
            HostileOp::UnsignedModule => "unsigned-module",
            HostileOp::CodeTamper => "code-tamper",
        }
    }

    /// The declared expected outcome — what the kernel must do, exactly.
    pub fn expected(self) -> ExpectedOutcome {
        match self {
            HostileOp::ForgedSavedSp | HostileOp::ReplaySavedSp | HostileOp::ForgedFileOps => {
                ExpectedOutcome::PacFailure {
                    kind: KeyClass::Data,
                }
            }
            HostileOp::ForgedWorkFunc => ExpectedOutcome::PacFailure {
                kind: KeyClass::Instruction,
            },
            HostileOp::UnsignedModule => ExpectedOutcome::ModuleRejected,
            HostileOp::CodeTamper => ExpectedOutcome::CoherentTamper,
        }
    }
}

/// The reaction a [`HostileOp`] declares the kernel must produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedOutcome {
    /// Exactly one PAC failure of `kind` on the sacrificial task, which
    /// the §5.4 policy then kills — and nothing else.
    PacFailure {
        /// The key class whose authentication must fail.
        kind: KeyClass,
    },
    /// The §4.1 verifier rejects the module; nothing faults, nobody dies.
    ModuleRejected,
    /// Re-execution observes the tampered bytes bit-exactly (block-cache
    /// coherency); nothing faults, nobody dies.
    CoherentTamper,
}

/// A deterministic stream of [`Op`]s.
///
/// Implementations must be pure functions of their own state and the
/// supplied RNG: two instances built identically and driven by
/// identically-seeded RNGs must emit identical op streams. All built-in
/// mixes satisfy this, and `camo_smp`'s fleet driver relies on it.
pub trait Workload {
    /// Stable workload name (reported in benchmarks and JSON).
    fn name(&self) -> &str;

    /// The next operation. `rng` is the tenant's deterministic RNG,
    /// seeded per `(plan seed, shard, tenant)` by the driver.
    fn next_op(&mut self, rng: &mut StdRng) -> Op;

    /// How many long-lived tasks the executor should spawn for this
    /// tenant on a machine with `cpus` cores (default 1). Mixes that
    /// context-switch need at least 2; the lmbench mix asks for one per
    /// core so a multi-core shard serves traffic on every core.
    fn task_count(&self, cpus: usize) -> usize {
        let _ = cpus;
        1
    }

    /// User computation blocks `(name, alu, mem)` this workload's
    /// [`Op::UserRun`]s reference. Collected by the driver into the
    /// machine's boot configuration (user program text is compiled once,
    /// at boot).
    fn user_blocks(&self) -> Vec<(String, usize, usize)> {
        Vec::new()
    }
}

/// Builds fresh [`Workload`] instances — one per (shard, tenant), so
/// shards never share mutable workload state. Any
/// `Fn() -> Box<dyn Workload + Send>` closure qualifies.
pub trait WorkloadFactory: Send + Sync {
    /// A fresh workload instance.
    fn build(&self) -> Box<dyn Workload + Send>;
}

impl<F> WorkloadFactory for F
where
    F: Fn() -> Box<dyn Workload + Send> + Send + Sync,
{
    fn build(&self) -> Box<dyn Workload + Send> {
        self()
    }
}

/// How much service a tenant is owed, split evenly across shards (the
/// first `total % shards` shards serve one extra unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quota {
    /// Number of [`Op`]s to execute.
    Ops(u64),
    /// Number of syscalls to serve. [`Op::Syscall`] batches are clamped
    /// so a syscall-only workload (the lmbench mix — the PR-3
    /// `TrafficPlan` semantics) hits the quota exactly; ops of other
    /// kinds cannot be clamped mid-op, so a mixed workload under this
    /// quota may overshoot by at most one op's worth of syscalls.
    Syscalls(u64),
}

impl Quota {
    /// The raw amount, unitless.
    pub fn amount(self) -> u64 {
        match self {
            Quota::Ops(n) | Quota::Syscalls(n) => n,
        }
    }

    /// Shard `index`'s share of the quota.
    pub fn share(self, shards: usize, index: usize) -> u64 {
        let total = self.amount();
        let base = total / shards as u64;
        let extra = total % shards as u64;
        base + u64::from((index as u64) < extra)
    }
}

/// One tenant of a fleet: a named workload factory plus its quota and
/// scheduling parameters (weighted-fair share and optional cycle budget).
#[derive(Clone)]
pub struct TenantSpec {
    /// Tenant name (distinct from the workload name: two tenants may run
    /// the same mix).
    pub name: String,
    /// Service owed to this tenant across all shards.
    pub quota: Quota,
    /// Weighted-fair share of the simulated machine: the scheduler serves
    /// up to `weight` ops per sweep for this tenant (default 1 — plain
    /// round-robin). Part of the *simulated* schedule, so it is
    /// deterministic in the plan and identical across execution modes.
    pub weight: u32,
    /// Per-sweep *simulated-cycle* budget. A budgeted tenant accrues this
    /// many cycles of credit each sweep (burst-capped at two sweeps'
    /// worth) and is throttled — skipped for whole sweeps — while its
    /// credit is exhausted. `None` (the default) means unthrottled.
    /// Budgets are denominated in simulated cycles, never host time, so
    /// throttling decisions are bit-identical across execution modes.
    pub cycle_budget: Option<u64>,
    factory: Arc<dyn WorkloadFactory>,
}

impl fmt::Debug for TenantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantSpec")
            .field("name", &self.name)
            .field("quota", &self.quota)
            .field("weight", &self.weight)
            .field("cycle_budget", &self.cycle_budget)
            .finish_non_exhaustive()
    }
}

impl TenantSpec {
    /// A tenant from an explicit factory (weight 1, no cycle budget).
    pub fn new(
        name: impl Into<String>,
        quota: Quota,
        factory: impl WorkloadFactory + 'static,
    ) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            quota,
            weight: 1,
            cycle_budget: None,
            factory: Arc::new(factory),
        }
    }

    /// Sets the weighted-fair share (ops per sweep; must be ≥ 1).
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> TenantSpec {
        assert!(weight >= 1, "a zero-weight tenant would never be served");
        self.weight = weight;
        self
    }

    /// Sets the per-sweep simulated-cycle budget (must be ≥ 1; a zero
    /// budget would never accrue credit and the tenant would starve).
    #[must_use]
    pub fn with_cycle_budget(mut self, cycles_per_sweep: u64) -> TenantSpec {
        assert!(cycles_per_sweep >= 1, "a zero budget would starve");
        self.cycle_budget = Some(cycles_per_sweep);
        self
    }

    /// A fresh workload instance for one shard.
    pub fn build(&self) -> Box<dyn Workload + Send> {
        self.factory.build()
    }

    /// The lmbench syscall mix serving `syscalls` syscalls.
    pub fn lmbench(name: impl Into<String>, syscalls: u64) -> TenantSpec {
        TenantSpec::new(name, Quota::Syscalls(syscalls), || {
            Box::new(crate::LmbenchMix::new()) as Box<dyn Workload + Send>
        })
    }

    /// The fork/exec process-churn storm running `ops` operations.
    pub fn process_churn(name: impl Into<String>, ops: u64) -> TenantSpec {
        TenantSpec::new(name, Quota::Ops(ops), || {
            Box::new(crate::ProcessChurn::new()) as Box<dyn Workload + Send>
        })
    }

    /// The module load/unload churn mix running `ops` operations.
    pub fn module_churn(name: impl Into<String>, ops: u64) -> TenantSpec {
        TenantSpec::new(name, Quota::Ops(ops), || {
            Box::new(crate::ModuleChurn::new()) as Box<dyn Workload + Send>
        })
    }

    /// The context-switch-heavy tenant mix running `ops` operations.
    pub fn tenant_mix(name: impl Into<String>, ops: u64) -> TenantSpec {
        TenantSpec::new(name, Quota::Ops(ops), || {
            Box::new(crate::TenantSwitchMix::new()) as Box<dyn Workload + Send>
        })
    }

    /// The seeded adversarial fuzz mix running `ops` operations
    /// (hostile ops with declared expected outcomes, interleaved with
    /// benign traffic).
    pub fn fuzz(name: impl Into<String>, ops: u64) -> TenantSpec {
        TenantSpec::new(name, Quota::Ops(ops), || {
            Box::new(crate::FuzzMix::new()) as Box<dyn Workload + Send>
        })
    }
}

/// Derives a well-spread child seed from `base` and an index (splitmix64
/// finalizer — deterministic, stable across runs, no correlated streams
/// for adjacent indices).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of tenant `tenant` on shard `shard` of a plan seeded
/// `base` — two derivation levels so tenant streams are independent of
/// both the shard's boot seed and each other.
///
/// Position-indexed, so inserting or removing a tenant renumbers (and
/// reseeds) everyone after it. The fleet driver derives from the tenant
/// *name* instead ([`tenant_stream_seed`]); this stays for callers that
/// genuinely want positional streams.
pub fn tenant_seed(base: u64, shard: usize, tenant: usize) -> u64 {
    derive_seed(derive_seed(base, shard as u64), 0x7E4A_0000 + tenant as u64)
}

/// The RNG seed of the tenant *named* `name` on shard `shard` of a plan
/// seeded `base`: the name (FNV-1a hashed) replaces the plan position in
/// the derivation, so adding or removing one tenant never shifts another
/// tenant's op stream — a tenant's traffic is a pure function of
/// `(plan seed, shard, its own name)`.
pub fn tenant_stream_seed(base: u64, shard: usize, name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    derive_seed(derive_seed(base, shard as u64), h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_shares_partition_exactly() {
        for quota in [Quota::Ops(100), Quota::Syscalls(101)] {
            let shares: Vec<u64> = (0..3).map(|i| quota.share(3, i)).collect();
            assert_eq!(shares.iter().sum::<u64>(), quota.amount());
            assert!(shares.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..16).map(|i| derive_seed(7, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| derive_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    fn tenant_seeds_vary_in_both_axes() {
        let mut seen = std::collections::HashSet::new();
        for shard in 0..4 {
            for tenant in 0..4 {
                assert!(seen.insert(tenant_seed(9, shard, tenant)));
            }
        }
    }

    #[test]
    fn named_tenant_seeds_depend_only_on_their_own_name() {
        // The same (seed, shard, name) triple always derives the same
        // stream seed — no matter what other tenants exist.
        assert_eq!(
            tenant_stream_seed(9, 2, "web"),
            tenant_stream_seed(9, 2, "web")
        );
        let mut seen = std::collections::HashSet::new();
        for shard in 0..4 {
            for name in ["web", "batch", "build-farm", "fuzz-0"] {
                assert!(seen.insert(tenant_stream_seed(9, shard, name)));
            }
        }
    }

    #[test]
    fn tenant_spec_builds_fresh_instances() {
        let spec = TenantSpec::lmbench("t", 64);
        let mut a = spec.build();
        let mut b = spec.build();
        let mut rng_a = <StdRng as rand::SeedableRng>::seed_from_u64(1);
        let mut rng_b = <StdRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..8 {
            assert_eq!(a.next_op(&mut rng_a), b.next_op(&mut rng_b));
        }
    }
}
