//! Static analyses from the Camouflage paper.
//!
//! Two distinct analyses live here:
//!
//! * [`verifier`] — the §4.1 machine-code verifier: kernel and loadable
//!   module images are scanned for instructions that would read PAuth key
//!   registers, write them (installing attacker-known keys), or write
//!   `SCTLR_EL1` (clearing the PAuth enable bits). "Because `MRS` system
//!   register read instructions immediately address the read register, key
//!   reads can be trivially found and rejected (e.g., when loading a
//!   module)" (§6.2.2).
//! * [`coccinelle`] — the §5.3 source-level semantic search: find compound
//!   types with function-pointer members assigned at run time, decide which
//!   should convert to read-only operations structures (more than one
//!   function pointer) and which need individual PAuth protection. The
//!   paper reports 1285 such members across 504 types, 229 of which have
//!   more than one — a synthetic declaration corpus with matched statistics
//!   stands in for the Linux 5.2 tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coccinelle;
pub mod verifier;

pub use coccinelle::{
    analyze, generate_linux52_corpus, CocciReport, Corpus, Member, MemberKind, ProtectionPlan,
    TypeDecl,
};
pub use verifier::{verify_image, Violation, ViolationKind};
