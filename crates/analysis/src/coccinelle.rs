//! §5.3 semantic search over kernel declarations.
//!
//! The paper runs a Coccinelle semantic patch over Linux 5.2 and finds
//! **1285 function-pointer members assigned at run time, in 504 compound
//! types, 229 of which contain more than one function pointer**. Types
//! with more than one pointer should convert to read-only operations
//! structures (existing kernel practice); the rest get individual PAuth
//! protection.
//!
//! We cannot ship the Linux tree, so [`generate_linux52_corpus`] synthesises
//! a declaration corpus with exactly those statistics, and [`analyze`]
//! implements the search itself. The analysis logic is what the paper
//! contributes; the corpus is data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kind of a structure member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemberKind {
    /// Pointer to function.
    FnPtr,
    /// Pointer to data.
    DataPtr,
    /// Anything else (scalar, embedded struct, ...).
    Other,
}

/// One member of a compound type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Field name.
    pub name: String,
    /// Field kind.
    pub kind: MemberKind,
    /// Whether any kernel code assigns this member outside static
    /// initialisers — the Coccinelle match condition.
    pub assigned_at_runtime: bool,
}

/// A compound type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDecl {
    /// Type name.
    pub name: String,
    /// Members in declaration order.
    pub members: Vec<Member>,
}

impl TypeDecl {
    /// Function-pointer members assigned at run time.
    pub fn runtime_fn_ptrs(&self) -> impl Iterator<Item = &Member> {
        self.members
            .iter()
            .filter(|m| m.kind == MemberKind::FnPtr && m.assigned_at_runtime)
    }
}

/// A set of declarations (the "kernel source tree").
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// All scanned type declarations.
    pub types: Vec<TypeDecl>,
}

/// What to do with one type, per the §5.3 triage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectionPlan {
    /// More than one run-time-assigned function pointer: convert the type
    /// to a `const` operations structure (kernel best practice, ref. \[16\]).
    ConvertToOpsTable,
    /// Exactly one: individual PAuth protection of the member, with an
    /// allocated 16-bit type constant.
    ProtectIndividually {
        /// The allocated modifier constant.
        type_const: u16,
    },
}

/// Result of the semantic search.
#[derive(Debug, Clone)]
pub struct CocciReport {
    /// Total run-time-assigned function-pointer members (paper: 1285).
    pub fn_ptr_members: usize,
    /// Types containing at least one such member (paper: 504).
    pub affected_types: usize,
    /// Types with more than one such member (paper: 229).
    pub multi_ptr_types: usize,
    /// Per-type triage decisions, in corpus order.
    pub plans: Vec<(String, ProtectionPlan)>,
}

impl CocciReport {
    /// Types slated for individual protection.
    pub fn individually_protected(&self) -> usize {
        self.plans
            .iter()
            .filter(|(_, p)| matches!(p, ProtectionPlan::ProtectIndividually { .. }))
            .count()
    }
}

/// Runs the semantic search and triage over a corpus.
///
/// Matches the paper's procedure: a member matches when it is a function
/// pointer *and* some code assigns it outside a static initialiser;
/// matched types with >1 matched member convert to operations tables,
/// the rest receive per-member protection with freshly allocated 16-bit
/// constants (starting from 1; 0 is reserved).
pub fn analyze(corpus: &Corpus) -> CocciReport {
    let mut fn_ptr_members = 0;
    let mut affected = 0;
    let mut multi = 0;
    let mut plans = Vec::new();
    let mut next_const: u16 = 1;
    for ty in &corpus.types {
        let count = ty.runtime_fn_ptrs().count();
        if count == 0 {
            continue;
        }
        fn_ptr_members += count;
        affected += 1;
        if count > 1 {
            multi += 1;
            plans.push((ty.name.clone(), ProtectionPlan::ConvertToOpsTable));
        } else {
            plans.push((
                ty.name.clone(),
                ProtectionPlan::ProtectIndividually {
                    type_const: next_const,
                },
            ));
            next_const = next_const
                .checked_add(1)
                .expect("type-const space exhausted");
        }
    }
    CocciReport {
        fn_ptr_members,
        affected_types: affected,
        multi_ptr_types: multi,
        plans,
    }
}

/// Paper statistics for the Linux 5.2 scan.
pub mod paper_stats {
    /// Run-time-assigned function-pointer members.
    pub const FN_PTR_MEMBERS: usize = 1285;
    /// Compound types containing them.
    pub const AFFECTED_TYPES: usize = 504;
    /// Types with more than one such member.
    pub const MULTI_PTR_TYPES: usize = 229;
}

/// Generates a synthetic "Linux 5.2" declaration corpus whose statistics
/// match §5.3 exactly: 504 affected types (229 with more than one run-time
/// function pointer, 275 with exactly one) totalling 1285 members, plus a
/// population of unaffected types for the search to skip.
pub fn generate_linux52_corpus(seed: u64) -> Corpus {
    use paper_stats::*;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut types = Vec::new();

    let single_types = AFFECTED_TYPES - MULTI_PTR_TYPES; // 275
    let multi_members_total = FN_PTR_MEMBERS - single_types; // 1010 across 229 types

    // Distribute the multi-type members: start at 2 each, spread the rest.
    let mut multi_counts = vec![2usize; MULTI_PTR_TYPES];
    let mut rest = multi_members_total - 2 * MULTI_PTR_TYPES;
    while rest > 0 {
        let i = rng.gen_range(0..MULTI_PTR_TYPES);
        multi_counts[i] += 1;
        rest -= 1;
    }

    let mut push_type = |name: String, fn_ptrs: usize, rng: &mut StdRng| {
        let mut members = Vec::new();
        for f in 0..fn_ptrs {
            members.push(Member {
                name: format!("op{f}"),
                kind: MemberKind::FnPtr,
                assigned_at_runtime: true,
            });
        }
        // Pad with unprotected members so declarations look realistic.
        for d in 0..rng.gen_range(1..6) {
            members.push(Member {
                name: format!("field{d}"),
                kind: if rng.gen_bool(0.3) {
                    MemberKind::DataPtr
                } else {
                    MemberKind::Other
                },
                assigned_at_runtime: rng.gen_bool(0.5),
            });
        }
        types.push(TypeDecl { name, members });
    };

    for (i, &count) in multi_counts.iter().enumerate() {
        push_type(format!("multi_ops_{i}"), count, &mut rng);
    }
    for i in 0..single_types {
        push_type(format!("single_ptr_{i}"), 1, &mut rng);
    }
    // Background population: read-only ops tables and plain structs that
    // must NOT match (their fn-ptrs are never assigned at run time).
    for i in 0..800 {
        let mut members = vec![Member {
            name: "read".into(),
            kind: MemberKind::FnPtr,
            assigned_at_runtime: false,
        }];
        members.push(Member {
            name: "flags".into(),
            kind: MemberKind::Other,
            assigned_at_runtime: true,
        });
        types.push(TypeDecl {
            name: format!("const_ops_{i}"),
            members,
        });
    }

    // Shuffle so the analysis cannot rely on generation order.
    for i in (1..types.len()).rev() {
        let j = rng.gen_range(0..=i);
        types.swap(i, j);
    }
    Corpus { types }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_reproduces_paper_counts() {
        let corpus = generate_linux52_corpus(52);
        let report = analyze(&corpus);
        assert_eq!(report.fn_ptr_members, paper_stats::FN_PTR_MEMBERS);
        assert_eq!(report.affected_types, paper_stats::AFFECTED_TYPES);
        assert_eq!(report.multi_ptr_types, paper_stats::MULTI_PTR_TYPES);
    }

    #[test]
    fn triage_follows_the_multi_rule() {
        let corpus = generate_linux52_corpus(52);
        let report = analyze(&corpus);
        assert_eq!(
            report.individually_protected(),
            paper_stats::AFFECTED_TYPES - paper_stats::MULTI_PTR_TYPES
        );
        for (name, plan) in &report.plans {
            let ty = corpus.types.iter().find(|t| &t.name == name).unwrap();
            let n = ty.runtime_fn_ptrs().count();
            match plan {
                ProtectionPlan::ConvertToOpsTable => assert!(n > 1, "{name}"),
                ProtectionPlan::ProtectIndividually { .. } => assert_eq!(n, 1, "{name}"),
            }
        }
    }

    #[test]
    fn allocated_type_consts_are_unique_and_nonzero() {
        let report = analyze(&generate_linux52_corpus(1));
        let mut seen = std::collections::HashSet::new();
        for (_, plan) in &report.plans {
            if let ProtectionPlan::ProtectIndividually { type_const } = plan {
                assert_ne!(*type_const, 0);
                assert!(seen.insert(*type_const), "duplicate const {type_const}");
            }
        }
    }

    #[test]
    fn const_ops_tables_do_not_match() {
        let corpus = Corpus {
            types: vec![TypeDecl {
                name: "file_operations".into(),
                members: vec![
                    Member {
                        name: "read".into(),
                        kind: MemberKind::FnPtr,
                        assigned_at_runtime: false,
                    },
                    Member {
                        name: "write".into(),
                        kind: MemberKind::FnPtr,
                        assigned_at_runtime: false,
                    },
                ],
            }],
        };
        let report = analyze(&corpus);
        assert_eq!(report.affected_types, 0);
        assert_eq!(report.fn_ptr_members, 0);
    }

    #[test]
    fn data_pointers_do_not_count_as_fn_ptrs() {
        let corpus = Corpus {
            types: vec![TypeDecl {
                name: "file".into(),
                members: vec![Member {
                    name: "f_ops".into(),
                    kind: MemberKind::DataPtr,
                    assigned_at_runtime: true,
                }],
            }],
        };
        assert_eq!(analyze(&corpus).fn_ptr_members, 0);
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = generate_linux52_corpus(9);
        let b = generate_linux52_corpus(9);
        assert_eq!(a.types.len(), b.types.len());
        assert_eq!(a.types[0], b.types[0]);
    }
}
