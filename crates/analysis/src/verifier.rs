//! §4.1 machine-code verification of kernel and module images.

use camo_isa::{decode, Insn};

/// Why an instruction was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// `MRS` of a PAuth key register: would leak key material (R2).
    KeyRead,
    /// `MSR` of a PAuth key register outside the XOM setter: would replace
    /// the kernel keys with attacker-known values.
    KeyWrite,
    /// `MSR SCTLR_EL1`: could clear the PAuth enable bits and disable the
    /// protection wholesale.
    SctlrWrite,
}

impl core::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ViolationKind::KeyRead => write!(f, "reads a PAuth key register"),
            ViolationKind::KeyWrite => write!(f, "writes a PAuth key register"),
            ViolationKind::SctlrWrite => write!(f, "writes SCTLR_EL1"),
        }
    }
}

/// One rejected instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Byte offset of the instruction within the scanned image.
    pub offset: u64,
    /// The decoded instruction (for the rejection log).
    pub insn: Insn,
    /// The rule it breaks.
    pub kind: ViolationKind,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "+{:#x}: `{}` {}", self.offset, self.insn, self.kind)
    }
}

/// Scans an image (little-endian instruction words) and returns every
/// violation found.
///
/// Words that do not decode are skipped: data islands inside text are
/// common and harmless — what matters is that *reachable, decodable* key
/// accesses are found, and on AArch64 every `MRS`/`MSR` names its register
/// in fixed immediate fields, so a linear sweep is exact for them (no
/// overlapping-instruction games exist with fixed 4-byte encodings).
///
/// # Example
///
/// ```
/// use camo_analysis::{verify_image, ViolationKind};
/// use camo_isa::{encode, Insn, Reg, SysReg};
///
/// let bad = encode(&Insn::Mrs { rt: Reg::x(0), sr: SysReg::ApibKeyLoEl1 });
/// let violations = verify_image(&[bad]);
/// assert_eq!(violations[0].kind, ViolationKind::KeyRead);
/// ```
pub fn verify_image(words: &[u32]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (i, &word) in words.iter().enumerate() {
        let Some(insn) = decode(word) else {
            continue;
        };
        let offset = 4 * i as u64;
        if insn.reads_pauth_key() {
            violations.push(Violation {
                offset,
                insn,
                kind: ViolationKind::KeyRead,
            });
        } else if matches!(insn, Insn::Msr { sr, .. } if sr.is_pauth_key()) {
            violations.push(Violation {
                offset,
                insn,
                kind: ViolationKind::KeyWrite,
            });
        } else if insn.writes_sctlr() {
            violations.push(Violation {
                offset,
                insn,
                kind: ViolationKind::SctlrWrite,
            });
        }
    }
    violations
}

/// Convenience: scan raw little-endian bytes.
///
/// # Panics
///
/// Panics if `bytes` is not a multiple of four long (not a text section).
pub fn verify_bytes(bytes: &[u8]) -> Vec<Violation> {
    assert!(bytes.len() % 4 == 0, "text must be a whole number of words");
    let words: Vec<u32> = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk size")))
        .collect();
    verify_image(&words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_isa::{encode, Reg, SysReg};

    fn word(insn: Insn) -> u32 {
        encode(&insn)
    }

    #[test]
    fn clean_code_passes() {
        let words = [
            word(Insn::Nop),
            word(Insn::Pac {
                key: camo_isa::PacKey::IB,
                rd: Reg::LR,
                rn: Reg::Sp,
            }),
            word(Insn::Mrs {
                rt: Reg::x(0),
                sr: SysReg::ContextidrEl1,
            }),
            word(Insn::ret()),
        ];
        assert!(verify_image(&words).is_empty());
    }

    #[test]
    fn key_read_rejected_for_all_ten_registers() {
        for sr in SysReg::ALL.into_iter().filter(|s| s.is_pauth_key()) {
            let v = verify_image(&[word(Insn::Mrs { rt: Reg::x(3), sr })]);
            assert_eq!(v.len(), 1, "{sr}");
            assert_eq!(v[0].kind, ViolationKind::KeyRead);
        }
    }

    #[test]
    fn key_write_rejected() {
        let v = verify_image(&[word(Insn::Msr {
            sr: SysReg::ApdbKeyHiEl1,
            rt: Reg::x(0),
        })]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::KeyWrite);
    }

    #[test]
    fn sctlr_write_rejected_but_read_allowed() {
        let w = verify_image(&[word(Insn::Msr {
            sr: SysReg::SctlrEl1,
            rt: Reg::x(0),
        })]);
        assert_eq!(w[0].kind, ViolationKind::SctlrWrite);
        let r = verify_image(&[word(Insn::Mrs {
            rt: Reg::x(0),
            sr: SysReg::SctlrEl1,
        })]);
        assert!(r.is_empty(), "reading SCTLR is harmless");
    }

    #[test]
    fn data_islands_are_skipped() {
        let v = verify_image(&[0xDEAD_BEEF, 0x0000_0000, word(Insn::Nop)]);
        assert!(v.is_empty());
    }

    #[test]
    fn offsets_point_at_the_culprit() {
        let words = [
            word(Insn::Nop),
            word(Insn::Nop),
            word(Insn::Mrs {
                rt: Reg::x(1),
                sr: SysReg::ApiaKeyLoEl1,
            }),
        ];
        let v = verify_image(&words);
        assert_eq!(v[0].offset, 8);
        assert!(v[0].to_string().contains("apiakeylo_el1"));
    }

    #[test]
    fn verify_bytes_matches_words() {
        let insn = Insn::Mrs {
            rt: Reg::x(0),
            sr: SysReg::ApgaKeyHiEl1,
        };
        let bytes = word(insn).to_le_bytes();
        let v = verify_bytes(&bytes);
        assert_eq!(v.len(), 1);
    }

    #[test]
    #[should_panic(expected = "whole number of words")]
    fn ragged_text_panics() {
        let _ = verify_bytes(&[1, 2, 3]);
    }
}
