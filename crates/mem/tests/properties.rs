//! Property tests: address-layout and translation invariants.

use camo_mem::layout::{classify_va, truncate_mac, VaClass};
use camo_mem::{Memory, PointerLayout, S1Attr, S2Attr, KERNEL_BASE, PAGE_SIZE};
use proptest::prelude::*;

fn any_layout() -> impl Strategy<Value = PointerLayout> {
    prop::sample::select(vec![PointerLayout::kernel(), PointerLayout::user()])
}

proptest! {
    /// embed → extract is the identity on the PAC field, and embedding
    /// never disturbs the addressing bits or bit 55.
    #[test]
    fn pac_embedding_roundtrip(layout in any_layout(), ptr in any::<u64>(), pac in any::<u32>()) {
        let pac = truncate_mac(pac, &layout);
        let signed = layout.embed_pac(ptr, pac);
        prop_assert_eq!(layout.extract_pac(signed), pac);
        prop_assert_eq!(signed & ((1u64 << 48) - 1), ptr & ((1u64 << 48) - 1));
        prop_assert_eq!(signed & (1 << 55), ptr & (1 << 55));
        if layout.tbi {
            prop_assert_eq!(signed >> 56, ptr >> 56, "tag byte untouched under TBI");
        }
    }

    /// strip() always yields a canonical pointer, and stripping is
    /// idempotent.
    #[test]
    fn strip_canonicalises(layout in any_layout(), ptr in any::<u64>()) {
        let stripped = layout.strip(ptr);
        prop_assert!(layout.is_canonical(stripped));
        prop_assert_eq!(layout.strip(stripped), stripped);
    }

    /// Every address is exactly one of kernel / user / invalid, decided by
    /// its extension bits.
    #[test]
    fn classification_is_total_and_consistent(va in any::<u64>()) {
        match classify_va(va) {
            VaClass::Kernel => prop_assert_eq!(va >> 48, 0xFFFF),
            VaClass::User => prop_assert_eq!(va >> 48, 0),
            VaClass::Invalid => {
                prop_assert_ne!(va >> 48, 0xFFFF);
                prop_assert_ne!(va >> 48, 0);
            }
        }
    }

    /// Stage-2 always dominates stage-1: whatever the stage-1 attributes,
    /// an execute-only stage-2 frame never serves a data read.
    #[test]
    fn stage2_dominates_stage1(
        el1_write in any::<bool>(),
        el1_exec in any::<bool>(),
        page in 0u64..64,
    ) {
        let mut mem = Memory::new();
        let table = mem.new_table();
        let va = KERNEL_BASE + page * PAGE_SIZE;
        let attr = S1Attr {
            el0_read: false,
            el0_write: false,
            el0_exec: false,
            el1_write,
            el1_exec: el1_exec && !el1_write, // keep W^X like real mappings
        };
        let frame = mem.map_new(table, va, attr);
        mem.protect_stage2(frame, S2Attr::execute_only()).unwrap();
        let ctx = mem.kernel_ctx(table);
        prop_assert!(mem.read_u64(&ctx, va).is_err());
        prop_assert!(mem.write_u64(&mut ctx.clone(), va, 1).is_err());
    }

    /// Memory reads return exactly what was written (through translation),
    /// for arbitrary in-page offsets and values.
    #[test]
    fn write_read_roundtrip(offset in 0u64..(PAGE_SIZE - 8), value in any::<u64>()) {
        let mut mem = Memory::new();
        let table = mem.new_table();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let ctx = mem.kernel_ctx(table);
        mem.write_u64(&ctx, KERNEL_BASE + offset, value).unwrap();
        prop_assert_eq!(mem.read_u64(&ctx, KERNEL_BASE + offset), Ok(value));
    }
}
