//! Virtual-address layout: Tables 1 and 2 of the paper, and PAC placement.
//!
//! A typical Linux/AArch64 configuration uses a 48-bit VA space per half,
//! selected by bit 55, with the remaining top bits sign-extended. Linux
//! enables top-byte-ignore for user space but not for kernel space, so the
//! bits available for a PAC differ between the halves — 15 usable PAC bits
//! for kernel pointers, which is what makes the paper's brute-force
//! mitigation necessary (§5.4).

/// Translation granule size: 4 KiB.
pub const PAGE_SIZE: u64 = 4096;

/// Virtual address bits per half (standard Linux configuration).
pub const VA_BITS: u32 = 48;

/// Lowest kernel virtual address (48-bit configuration).
pub const KERNEL_BASE: u64 = 0xffff_0000_0000_0000;

/// Highest user virtual address (48-bit configuration).
pub const USER_TOP: u64 = 0x0000_ffff_ffff_ffff;

/// Classification of a virtual address per Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VaClass {
    /// Bit 55 set, upper bits all ones: mapped through `TTBR1_EL1`.
    Kernel,
    /// Bit 55 clear, upper bits all zeros: mapped through `TTBR0_EL1`.
    User,
    /// Non-canonical: the sign-extension bits do not match bit 55.
    Invalid,
}

/// Classifies `va` per Table 1 (ignoring tag bits; see [`PointerLayout`]).
///
/// # Example
///
/// ```
/// use camo_mem::layout::{classify_va, VaClass};
/// assert_eq!(classify_va(0xffff_0000_dead_beef), VaClass::Kernel);
/// assert_eq!(classify_va(0x0000_7fff_dead_beef), VaClass::User);
/// assert_eq!(classify_va(0x00ff_0000_dead_beef), VaClass::Invalid);
/// ```
pub fn classify_va(va: u64) -> VaClass {
    let select = (va >> 55) & 1;
    let ext = va >> VA_BITS; // bits 63:48
    if select == 1 {
        if ext == 0xFFFF {
            VaClass::Kernel
        } else {
            VaClass::Invalid
        }
    } else if ext == 0 {
        VaClass::User
    } else {
        VaClass::Invalid
    }
}

/// The three rows of Table 1, as `(range_top, range_bottom, bit55, usage)`.
pub fn table1_rows() -> [(u64, u64, Option<u8>, &'static str); 3] {
    [
        (u64::MAX, KERNEL_BASE, Some(1), "Kernel"),
        (KERNEL_BASE - 1, USER_TOP + 1, None, "Invalid"),
        (USER_TOP, 0, Some(0), "User"),
    ]
}

/// Pointer bit-field layout for one address-space half (Table 2).
///
/// `tbi` is top-byte-ignore: enabled for Linux user addresses, disabled for
/// kernel addresses (outside KASAN debug builds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerLayout {
    /// Virtual-address bits (48 in the modeled configuration).
    pub va_bits: u32,
    /// Whether the top byte (bits 63:56) is ignored by translation.
    pub tbi: bool,
}

impl PointerLayout {
    /// The kernel-half layout of a standard Linux configuration.
    pub fn kernel() -> Self {
        PointerLayout {
            va_bits: VA_BITS,
            tbi: false,
        }
    }

    /// The user-half layout of a standard Linux configuration.
    pub fn user() -> Self {
        PointerLayout {
            va_bits: VA_BITS,
            tbi: true,
        }
    }

    /// Bit positions holding PAC bits, as a mask.
    ///
    /// The PAC occupies the sign-extension bits excluding bit 55 (which
    /// still selects the translation table): bits `54:va_bits`, plus the tag
    /// byte `63:56` when TBI is off.
    pub fn pac_mask(&self) -> u64 {
        let low_span: u64 = ((1u64 << 55) - 1) & !((1u64 << self.va_bits) - 1);
        if self.tbi {
            low_span
        } else {
            low_span | 0xFF00_0000_0000_0000
        }
    }

    /// Number of usable PAC bits.
    ///
    /// 15 for the kernel half (the §5.4 brute-force bound), 7 for the user
    /// half with TBI enabled.
    pub fn pac_bits(&self) -> u32 {
        self.pac_mask().count_ones()
    }

    /// The canonical pointer for `va`: PAC field replaced by sign extension.
    #[inline]
    pub fn strip(&self, ptr: u64) -> u64 {
        let select = (ptr >> 55) & 1;
        if select == 1 {
            ptr | self.pac_mask()
        } else {
            ptr & !self.pac_mask()
        }
    }

    /// Inserts `pac` bits into the pointer's PAC field, preserving bit 55
    /// and the addressing bits.
    ///
    /// Surplus PAC bits are discarded, mirroring the architecture
    /// ("extraneous MAC bits are discarded", Appendix B).
    #[inline]
    pub fn embed_pac(&self, ptr: u64, pac: u32) -> u64 {
        let full_mask = self.pac_mask();
        let mut out = ptr & !full_mask;
        let mut pac = u64::from(pac);
        // Scatter PAC bits into the mask positions, lowest first, walking
        // only the set bits of the mask (this sits on the PAC fast path).
        let mut mask = full_mask;
        while mask != 0 {
            let bit = mask.trailing_zeros();
            out |= (pac & 1) << bit;
            pac >>= 1;
            mask &= mask - 1;
        }
        out
    }

    /// Extracts the PAC field of `ptr`, gathered into the low bits.
    #[inline]
    pub fn extract_pac(&self, ptr: u64) -> u32 {
        let mut out: u64 = 0;
        let mut pos = 0;
        let mut mask = self.pac_mask();
        while mask != 0 {
            let bit = mask.trailing_zeros();
            out |= ((ptr >> bit) & 1) << pos;
            pos += 1;
            mask &= mask - 1;
        }
        out as u32
    }

    /// The expected PAC field of an *unsigned* canonical pointer
    /// (all-ones for the kernel half, all-zeros for the user half).
    pub fn canonical_pac(&self, ptr: u64) -> u32 {
        self.extract_pac(self.strip(ptr))
    }

    /// Whether `ptr` is canonical (unsigned, valid for translation).
    pub fn is_canonical(&self, ptr: u64) -> bool {
        self.strip(ptr) == ptr
    }

    /// Renders the Table 2 field descriptions for this half.
    pub fn table2_fields(&self) -> Vec<(&'static str, &'static str)> {
        let mut rows = Vec::new();
        if self.tbi {
            rows.push(("63-56", "tag (ignored)"));
        } else {
            rows.push(("63-56", "sign extension"));
        }
        rows.push(("55", "translation-table select"));
        rows.push(("54-48", "sign extension"));
        rows.push(("47-12", "page number"));
        rows.push(("11-0", "page offset"));
        rows
    }
}

/// Truncates a MAC to the PAC width of `layout` (low bits kept).
#[inline]
pub fn truncate_mac(mac: u32, layout: &PointerLayout) -> u32 {
    let bits = layout.pac_bits();
    if bits >= 32 {
        mac
    } else {
        mac & ((1u32 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification() {
        // Spot-check the three rows of Table 1.
        assert_eq!(classify_va(u64::MAX), VaClass::Kernel);
        assert_eq!(classify_va(KERNEL_BASE), VaClass::Kernel);
        assert_eq!(classify_va(KERNEL_BASE - 1), VaClass::Invalid);
        assert_eq!(classify_va(0x0001_0000_0000_0000), VaClass::Invalid);
        assert_eq!(classify_va(USER_TOP), VaClass::User);
        assert_eq!(classify_va(0), VaClass::User);
    }

    #[test]
    fn table1_rows_are_contiguous() {
        let rows = table1_rows();
        assert_eq!(rows[0].1, rows[1].0 + 1);
        assert_eq!(rows[1].1, rows[2].0 + 1);
        assert_eq!(rows[2].1, 0);
    }

    #[test]
    fn kernel_pac_is_15_bits() {
        // §5.4: "with typical Linux page and virtual address configurations
        // the space remaining for the PACs is 15 bits".
        assert_eq!(PointerLayout::kernel().pac_bits(), 15);
    }

    #[test]
    fn user_pac_is_7_bits_with_tbi() {
        assert_eq!(PointerLayout::user().pac_bits(), 7);
    }

    #[test]
    fn pac_mask_excludes_bit_55_and_address_bits() {
        for layout in [PointerLayout::kernel(), PointerLayout::user()] {
            let mask = layout.pac_mask();
            assert_eq!(mask & (1 << 55), 0, "bit 55 must be preserved");
            assert_eq!(mask & ((1 << 48) - 1), 0, "address bits must be preserved");
        }
    }

    #[test]
    fn embed_extract_roundtrip() {
        let layout = PointerLayout::kernel();
        let ptr = 0xffff_0000_1234_5678u64;
        for pac in [0u32, 1, 0x7FFF, 0x5A5A & 0x7FFF] {
            let signed = layout.embed_pac(ptr, pac);
            assert_eq!(layout.extract_pac(signed), pac);
            assert_eq!(layout.strip(signed), ptr);
            assert_eq!(signed & (1 << 55), ptr & (1 << 55));
        }
    }

    #[test]
    fn strip_restores_canonical_form() {
        let layout = PointerLayout::kernel();
        let ptr = 0xffff_8000_0000_1000u64;
        let signed = layout.embed_pac(ptr, 0x2BCD);
        assert!(
            !layout.is_canonical(signed) || layout.extract_pac(signed) == layout.canonical_pac(ptr)
        );
        assert!(layout.is_canonical(layout.strip(signed)));

        let user = PointerLayout::user();
        let uptr = 0x0000_7fff_0000_2000u64;
        let usigned = user.embed_pac(uptr, 0x55);
        assert_eq!(user.strip(usigned), uptr);
    }

    #[test]
    fn signed_kernel_pointer_is_noncanonical_unless_pac_matches_sign() {
        let layout = PointerLayout::kernel();
        let ptr = 0xffff_0000_0000_4000u64;
        // The canonical PAC pattern for a kernel pointer is all-ones.
        let canon = layout.canonical_pac(ptr);
        assert_eq!(canon, 0x7FFF);
        let signed = layout.embed_pac(ptr, 0x1234);
        assert!(!layout.is_canonical(signed));
    }

    #[test]
    fn truncate_mac_respects_width() {
        let k = PointerLayout::kernel();
        assert_eq!(truncate_mac(0xFFFF_FFFF, &k), 0x7FFF);
        let u = PointerLayout::user();
        assert_eq!(truncate_mac(0xFFFF_FFFF, &u), 0x7F);
    }

    #[test]
    fn table2_fields_match_paper() {
        let user = PointerLayout::user().table2_fields();
        assert_eq!(user[0], ("63-56", "tag (ignored)"));
        let kernel = PointerLayout::kernel().table2_fields();
        assert_eq!(kernel[0], ("63-56", "sign extension"));
        for rows in [user, kernel] {
            assert_eq!(rows[1], ("55", "translation-table select"));
            assert_eq!(rows[3], ("47-12", "page number"));
        }
    }
}
