//! Two-stage translation and the memory facade used by the CPU.

use crate::layout::{classify_va, VaClass, PAGE_SIZE};
use crate::phys::{Frame, PhysMem};
use crate::stage1::{S1Attr, Stage1Table};
use crate::stage2::{S2Attr, Stage2Locked, Stage2Table};
use core::fmt;

/// Exception level of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum El {
    /// User mode.
    El0,
    /// Kernel mode.
    El1,
}

impl fmt::Display for El {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            El::El0 => write!(f, "EL0"),
            El::El1 => write!(f, "EL1"),
        }
    }
}

/// The kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessType::Read => write!(f, "read"),
            AccessType::Write => write!(f, "write"),
            AccessType::Execute => write!(f, "execute"),
        }
    }
}

/// Handle to a stage-1 translation table owned by [`Memory`].
///
/// The value programmed into `TTBR0_EL1`/`TTBR1_EL1` in the simulated
/// machine is a `TableId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub(crate) usize);

impl TableId {
    /// The raw index, as stored in a TTBR system register.
    pub fn raw(self) -> u64 {
        self.0 as u64
    }

    /// Reconstructs a table id from a TTBR register value.
    pub fn from_raw(raw: u64) -> TableId {
        TableId(raw as usize)
    }
}

/// Everything translation needs to know about the current machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationCtx {
    /// Table for the user half (VA bit 55 = 0).
    pub ttbr0: TableId,
    /// Table for the kernel half (VA bit 55 = 1).
    pub ttbr1: TableId,
    /// Exception level performing the access.
    pub el: El,
    /// Top-byte-ignore for user addresses (Linux default: on).
    pub tbi_user: bool,
}

/// A translation or permission fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// The address's sign-extension bits do not match bit 55 — the fault a
    /// failed `AUT*` ultimately produces when the pointer is used.
    NonCanonical {
        /// Faulting virtual address.
        va: u64,
    },
    /// No stage-1 mapping for the page.
    Translation {
        /// Faulting virtual address.
        va: u64,
    },
    /// Stage-1 permission denial.
    Permission {
        /// Faulting virtual address.
        va: u64,
        /// Attempted access.
        access: AccessType,
        /// Level performing the access.
        el: El,
    },
    /// Stage-2 (hypervisor) permission denial — e.g. reading XOM.
    Stage2 {
        /// Faulting virtual address.
        va: u64,
        /// Physical address after stage-1 translation.
        pa: u64,
        /// Attempted access.
        access: AccessType,
    },
    /// Translation produced a physical address with no backing frame.
    Unmapped {
        /// The unbacked physical address.
        pa: u64,
    },
    /// Instruction fetch from a non-word-aligned address.
    FetchUnaligned {
        /// Faulting virtual address.
        va: u64,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::NonCanonical { va } => write!(f, "non-canonical address {va:#x}"),
            MemFault::Translation { va } => write!(f, "translation fault at {va:#x}"),
            MemFault::Permission { va, access, el } => {
                write!(f, "stage-1 permission fault: {access} at {va:#x} from {el}")
            }
            MemFault::Stage2 { va, pa, access } => {
                write!(f, "stage-2 fault: {access} at {va:#x} (pa {pa:#x})")
            }
            MemFault::Unmapped { pa } => write!(f, "no frame backs pa {pa:#x}"),
            MemFault::FetchUnaligned { va } => write!(f, "unaligned fetch from {va:#x}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// The complete simulated memory system: physical frames, stage-1 tables,
/// and the hypervisor's stage-2 overlay.
#[derive(Debug, Default)]
pub struct Memory {
    phys: PhysMem,
    tables: Vec<Stage1Table>,
    stage2: Stage2Table,
}

impl Memory {
    /// Creates an empty memory system.
    pub fn new() -> Self {
        Memory {
            phys: PhysMem::new(),
            tables: Vec::new(),
            stage2: Stage2Table::new(),
        }
    }

    /// Allocates a new, empty stage-1 table.
    pub fn new_table(&mut self) -> TableId {
        self.tables.push(Stage1Table::new());
        TableId(self.tables.len() - 1)
    }

    /// Allocates a zeroed physical frame.
    pub fn alloc_frame(&mut self) -> Frame {
        self.phys.alloc()
    }

    /// Maps `va`'s page to `frame` in `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is stale or `va` is not page-aligned.
    pub fn map(&mut self, table: TableId, va: u64, frame: Frame, attr: S1Attr) {
        self.tables[table.0].map(va, frame, attr);
    }

    /// Changes the stage-1 attributes of a mapped page.
    pub fn set_attr(&mut self, table: TableId, va: u64, attr: S1Attr) -> bool {
        self.tables[table.0].set_attr(va, attr)
    }

    /// Read access to a stage-1 table.
    pub fn table(&self, table: TableId) -> &Stage1Table {
        &self.tables[table.0]
    }

    /// Applies a stage-2 permission override (hypervisor operation).
    ///
    /// # Errors
    ///
    /// Fails with [`Stage2Locked`] after [`Memory::lock_stage2`].
    pub fn protect_stage2(&mut self, frame: Frame, attr: S2Attr) -> Result<(), Stage2Locked> {
        self.stage2.protect(frame, attr)
    }

    /// Locks the stage-2 table (hypervisor boot-finalisation).
    pub fn lock_stage2(&mut self) {
        self.stage2.lock();
    }

    /// The hypervisor's stage-2 table.
    pub fn stage2(&self) -> &Stage2Table {
        &self.stage2
    }

    /// Direct physical memory access (bootloader / debugging use).
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// Direct mutable physical memory access (bootloader / debugging use).
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// A kernel-mode translation context with both halves on `table`.
    ///
    /// Convenient for early boot, before any user address space exists.
    pub fn kernel_ctx(&self, table: TableId) -> TranslationCtx {
        TranslationCtx {
            ttbr0: table,
            ttbr1: table,
            el: El::El1,
            tbi_user: true,
        }
    }

    /// Strips ignored tag bits and validates canonical form.
    fn effective_va(&self, ctx: &TranslationCtx, va: u64) -> Result<u64, MemFault> {
        let select = (va >> 55) & 1;
        let va = if select == 0 && ctx.tbi_user {
            va & 0x00FF_FFFF_FFFF_FFFF
        } else {
            va
        };
        match classify_va(va) {
            VaClass::Invalid => Err(MemFault::NonCanonical { va }),
            _ => Ok(va),
        }
    }

    /// Translates `va` for `access`, applying both stages.
    ///
    /// # Errors
    ///
    /// Returns the architectural fault the access would raise, in priority
    /// order: canonical check, stage-1 walk, stage-1 permissions, stage-2
    /// permissions, physical backing.
    pub fn translate(
        &self,
        ctx: &TranslationCtx,
        va: u64,
        access: AccessType,
    ) -> Result<u64, MemFault> {
        let eva = self.effective_va(ctx, va)?;
        let table = if (eva >> 55) & 1 == 1 {
            &self.tables[ctx.ttbr1.0]
        } else {
            &self.tables[ctx.ttbr0.0]
        };
        let entry = table.lookup(eva).ok_or(MemFault::Translation { va: eva })?;

        let s1_ok = match (ctx.el, access) {
            // The VMSAv8 quirk: stage 1 cannot deny an EL1 read.
            (El::El1, AccessType::Read) => true,
            (El::El1, AccessType::Write) => entry.attr.el1_write,
            (El::El1, AccessType::Execute) => entry.attr.el1_exec,
            (El::El0, AccessType::Read) => entry.attr.el0_read,
            (El::El0, AccessType::Write) => entry.attr.el0_write,
            (El::El0, AccessType::Execute) => entry.attr.el0_exec,
        };
        if !s1_ok {
            return Err(MemFault::Permission {
                va: eva,
                access,
                el: ctx.el,
            });
        }

        let pa = entry.frame.base() + (eva % PAGE_SIZE);
        let s2 = self.stage2.attr(entry.frame);
        let s2_ok = match access {
            AccessType::Read => s2.read,
            AccessType::Write => s2.write,
            AccessType::Execute => s2.exec,
        };
        if !s2_ok {
            return Err(MemFault::Stage2 {
                va: eva,
                pa,
                access,
            });
        }

        if !self.phys.is_allocated(entry.frame) {
            return Err(MemFault::Unmapped { pa });
        }
        Ok(pa)
    }

    /// Reads `buf.len()` bytes at `va` (may span pages).
    pub fn read_bytes(
        &self,
        ctx: &TranslationCtx,
        va: u64,
        buf: &mut [u8],
    ) -> Result<(), MemFault> {
        for (i, byte) in buf.iter_mut().enumerate() {
            let addr = va.wrapping_add(i as u64);
            let pa = self.translate(ctx, addr, AccessType::Read)?;
            *byte = self.phys.read_u8(pa).ok_or(MemFault::Unmapped { pa })?;
        }
        Ok(())
    }

    /// Writes `bytes` at `va` (may span pages).
    pub fn write_bytes(
        &mut self,
        ctx: &TranslationCtx,
        va: u64,
        bytes: &[u8],
    ) -> Result<(), MemFault> {
        // Validate all pages before mutating anything, so a faulting write
        // has no partial effect.
        for i in 0..bytes.len() {
            self.translate(ctx, va.wrapping_add(i as u64), AccessType::Write)?;
        }
        for (i, &byte) in bytes.iter().enumerate() {
            let addr = va.wrapping_add(i as u64);
            let pa = self.translate(ctx, addr, AccessType::Write)?;
            self.phys
                .write_u8(pa, byte)
                .ok_or(MemFault::Unmapped { pa })?;
        }
        Ok(())
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, ctx: &TranslationCtx, va: u64) -> Result<u64, MemFault> {
        let mut buf = [0u8; 8];
        self.read_bytes(ctx, va, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, ctx: &TranslationCtx, va: u64, value: u64) -> Result<(), MemFault> {
        self.write_bytes(ctx, va, &value.to_le_bytes())
    }

    /// Fetches one instruction word (execute access, must be 4-aligned).
    pub fn fetch(&self, ctx: &TranslationCtx, va: u64) -> Result<u32, MemFault> {
        if va % 4 != 0 {
            return Err(MemFault::FetchUnaligned { va });
        }
        let pa = self.translate(ctx, va, AccessType::Execute)?;
        self.phys.read_u32(pa).ok_or(MemFault::Unmapped { pa })
    }

    /// Maps a fresh frame at `va` and returns it (allocate-and-map).
    pub fn map_new(&mut self, table: TableId, va: u64, attr: S1Attr) -> Frame {
        let frame = self.alloc_frame();
        self.map(table, va, frame, attr);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::KERNEL_BASE;

    fn setup() -> (Memory, TableId) {
        let mut mem = Memory::new();
        let table = mem.new_table();
        (mem, table)
    }

    #[test]
    fn read_write_through_translation() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let ctx = mem.kernel_ctx(table);
        mem.write_u64(&ctx, KERNEL_BASE + 8, 0xfeed_f00d).unwrap();
        assert_eq!(mem.read_u64(&ctx, KERNEL_BASE + 8), Ok(0xfeed_f00d));
    }

    #[test]
    fn unmapped_page_translation_fault() {
        let (mem, table) = setup();
        let ctx = mem.kernel_ctx(table);
        assert_eq!(
            mem.read_u64(&ctx, KERNEL_BASE),
            Err(MemFault::Translation { va: KERNEL_BASE })
        );
    }

    #[test]
    fn noncanonical_address_faults() {
        let (mem, table) = setup();
        let ctx = mem.kernel_ctx(table);
        let bad = 0x00ff_0000_0000_1000u64; // ext bits set, bit 55 clear
        assert!(matches!(
            mem.read_u64(&ctx, bad),
            Err(MemFault::NonCanonical { .. })
        ));
    }

    #[test]
    fn user_tag_byte_is_ignored_with_tbi() {
        let (mut mem, table) = setup();
        mem.map_new(table, 0x1000, S1Attr::user_data());
        let mut ctx = mem.kernel_ctx(table);
        ctx.el = El::El0;
        let tagged = 0xAB00_0000_0000_1008u64;
        mem.write_u64(&ctx, tagged, 7).unwrap();
        assert_eq!(mem.read_u64(&ctx, 0x1008), Ok(7));

        // Kernel addresses get no such leniency: a "tagged" kernel pointer
        // is simply non-canonical.
        let mut kctx = mem.kernel_ctx(table);
        kctx.el = El::El1;
        let tagged_kernel = KERNEL_BASE & !(0xFFu64 << 56) | (0xAB << 56);
        assert!(matches!(
            mem.read_u64(&kctx, tagged_kernel),
            Err(MemFault::NonCanonical { .. })
        ));
    }

    #[test]
    fn el1_read_cannot_be_denied_by_stage1() {
        // The architectural quirk from Appendix A.2.
        let (mut mem, table) = setup();
        let frame = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        let ctx = mem.kernel_ctx(table);
        // kernel_text denies EL1 writes but reads still succeed.
        assert!(mem.read_u64(&ctx, KERNEL_BASE).is_ok());
        assert!(matches!(
            mem.write_u64(&mut mem.kernel_ctx(table).clone(), KERNEL_BASE, 0),
            Err(MemFault::Permission { .. })
        ));
        let _ = frame;
    }

    #[test]
    fn stage2_makes_xom_real() {
        let (mut mem, table) = setup();
        let frame = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        mem.protect_stage2(frame, S2Attr::execute_only()).unwrap();
        let ctx = mem.kernel_ctx(table);
        // Fetch works...
        assert!(mem.fetch(&ctx, KERNEL_BASE).is_ok());
        // ...but reads now take a stage-2 fault, despite stage 1 allowing
        // every EL1 read.
        assert!(matches!(
            mem.read_u64(&ctx, KERNEL_BASE),
            Err(MemFault::Stage2 {
                access: AccessType::Read,
                ..
            })
        ));
        // And writes too.
        assert!(matches!(
            mem.write_u64(&mut mem.kernel_ctx(table).clone(), KERNEL_BASE, 0),
            Err(MemFault::Permission { .. }) | Err(MemFault::Stage2 { .. })
        ));
    }

    #[test]
    fn el0_cannot_execute_kernel_xom() {
        let (mut mem, table) = setup();
        let frame = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        mem.protect_stage2(frame, S2Attr::execute_only()).unwrap();
        let mut ctx = mem.kernel_ctx(table);
        ctx.el = El::El0;
        assert!(matches!(
            mem.fetch(&ctx, KERNEL_BASE),
            Err(MemFault::Permission {
                access: AccessType::Execute,
                el: El::El0,
                ..
            })
        ));
    }

    #[test]
    fn el0_cannot_touch_kernel_data() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let mut ctx = mem.kernel_ctx(table);
        ctx.el = El::El0;
        assert!(matches!(
            mem.read_u64(&ctx, KERNEL_BASE),
            Err(MemFault::Permission { .. })
        ));
    }

    #[test]
    fn split_halves_use_their_own_tables() {
        let mut mem = Memory::new();
        let user_table = mem.new_table();
        let kernel_table = mem.new_table();
        mem.map_new(user_table, 0x1000, S1Attr::user_data());
        mem.map_new(kernel_table, KERNEL_BASE, S1Attr::kernel_data());
        let ctx = TranslationCtx {
            ttbr0: user_table,
            ttbr1: kernel_table,
            el: El::El1,
            tbi_user: true,
        };
        assert!(mem.read_u64(&ctx, 0x1000).is_ok());
        assert!(mem.read_u64(&ctx, KERNEL_BASE).is_ok());
        // The kernel half never consults TTBR0.
        assert!(mem.read_u64(&ctx, KERNEL_BASE + 0x1000).is_err());
    }

    #[test]
    fn fetch_requires_alignment() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        let ctx = mem.kernel_ctx(table);
        assert_eq!(
            mem.fetch(&ctx, KERNEL_BASE + 2),
            Err(MemFault::FetchUnaligned {
                va: KERNEL_BASE + 2
            })
        );
    }

    #[test]
    fn faulting_write_has_no_partial_effect() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        // Next page unmapped: a straddling write must fail atomically.
        let ctx = mem.kernel_ctx(table);
        let straddle = KERNEL_BASE + PAGE_SIZE - 4;
        let before = mem.read_u64(&ctx, KERNEL_BASE + PAGE_SIZE - 8).unwrap();
        assert!(mem.write_u64(&mut ctx.clone(), straddle, u64::MAX).is_err());
        assert_eq!(mem.read_u64(&ctx, KERNEL_BASE + PAGE_SIZE - 8), Ok(before));
    }
}
