//! Two-stage translation and the memory facade used by the CPU.

use crate::layout::{classify_va, VaClass, PAGE_SIZE};
use crate::phys::{Frame, PhysMem};
use crate::stage1::{S1Attr, Stage1Table};
use crate::stage2::{S2Attr, Stage2Locked, Stage2Table};
use core::fmt;
use std::cell::Cell;

/// Exception level of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum El {
    /// User mode.
    El0,
    /// Kernel mode.
    El1,
}

impl fmt::Display for El {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            El::El0 => write!(f, "EL0"),
            El::El1 => write!(f, "EL1"),
        }
    }
}

/// The kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessType::Read => write!(f, "read"),
            AccessType::Write => write!(f, "write"),
            AccessType::Execute => write!(f, "execute"),
        }
    }
}

/// Handle to a stage-1 translation table owned by [`Memory`].
///
/// The value programmed into `TTBR0_EL1`/`TTBR1_EL1` in the simulated
/// machine is a `TableId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub(crate) usize);

impl TableId {
    /// The raw index, as stored in a TTBR system register.
    pub fn raw(self) -> u64 {
        self.0 as u64
    }

    /// Reconstructs a table id from a TTBR register value.
    pub fn from_raw(raw: u64) -> TableId {
        TableId(raw as usize)
    }
}

/// Everything translation needs to know about the current machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationCtx {
    /// Table for the user half (VA bit 55 = 0).
    pub ttbr0: TableId,
    /// Table for the kernel half (VA bit 55 = 1).
    pub ttbr1: TableId,
    /// Exception level performing the access.
    pub el: El,
    /// Top-byte-ignore for user addresses (Linux default: on).
    pub tbi_user: bool,
}

/// A translation or permission fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// The address's sign-extension bits do not match bit 55 — the fault a
    /// failed `AUT*` ultimately produces when the pointer is used.
    NonCanonical {
        /// Faulting virtual address.
        va: u64,
    },
    /// No stage-1 mapping for the page.
    Translation {
        /// Faulting virtual address.
        va: u64,
    },
    /// Stage-1 permission denial.
    Permission {
        /// Faulting virtual address.
        va: u64,
        /// Attempted access.
        access: AccessType,
        /// Level performing the access.
        el: El,
    },
    /// Stage-2 (hypervisor) permission denial — e.g. reading XOM.
    Stage2 {
        /// Faulting virtual address.
        va: u64,
        /// Physical address after stage-1 translation.
        pa: u64,
        /// Attempted access.
        access: AccessType,
    },
    /// Translation produced a physical address with no backing frame.
    Unmapped {
        /// The unbacked physical address.
        pa: u64,
    },
    /// Instruction fetch from a non-word-aligned address.
    FetchUnaligned {
        /// Faulting virtual address.
        va: u64,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::NonCanonical { va } => write!(f, "non-canonical address {va:#x}"),
            MemFault::Translation { va } => write!(f, "translation fault at {va:#x}"),
            MemFault::Permission { va, access, el } => {
                write!(f, "stage-1 permission fault: {access} at {va:#x} from {el}")
            }
            MemFault::Stage2 { va, pa, access } => {
                write!(f, "stage-2 fault: {access} at {va:#x} (pa {pa:#x})")
            }
            MemFault::Unmapped { pa } => write!(f, "no frame backs pa {pa:#x}"),
            MemFault::FetchUnaligned { va } => write!(f, "unaligned fetch from {va:#x}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// A private one-entry translation memo owned by a single access site
/// (e.g. one load/store op inside a CPU trace), checked before the shared
/// software TLB.
///
/// A hit proves exactly what a TLB hit proves — a previously *successful*
/// translation of the same page, under the same table, at the same
/// exception level, in the same translation generation — so serving the
/// frame base from the memo is equivalent to the TLB hit path (any
/// `map`/`unmap`/`set_attr`/stage-2 change bumps the generation and
/// forces the full path). Two constraints the owner must uphold: one memo
/// is used with **one access type** only (the memo does not tag it), and
/// only while the shared caches are enabled (the accessors fall back to
/// the seed-faithful path themselves when they are not).
///
/// Memo hits bypass the TLB entirely, so they do not advance the
/// `tlb_hits`/`tlb_misses` observability counters — those describe the
/// shared TLB only, exactly as PAC-site memos are excluded from the
/// shared `pac_memo_*` counters.
#[derive(Debug, Clone, Copy)]
pub struct TransMemo {
    valid: bool,
    page: u64,
    table: u64,
    el: El,
    generation: u64,
    frame_base: u64,
}

impl Default for TransMemo {
    fn default() -> TransMemo {
        TransMemo {
            valid: false,
            page: 0,
            table: 0,
            el: El::El0,
            generation: 0,
            frame_base: 0,
        }
    }
}

/// One software-TLB slot, sized and laid out for the hit path: a packed
/// tag (effective-VA page, EL, access type), the stage-1 table consulted,
/// the fill-time generation, and the frame base. A slot whose generation
/// no longer matches the memory system's is stale and must never be served
/// — this is what makes permission downgrades (`set_attr`,
/// `protect_stage2`) take effect on the very next access.
///
/// The table is identified by the table actually consulted (the TTBR the
/// VA's bit 55 selects), so two contexts sharing a kernel table share its
/// TLB entries — exactly like a physical TLB tagged by ASID.
///
/// An empty slot is encoded as `generation == u64::MAX` (the counter
/// starts at zero and increments, so no live fill can carry it).
#[derive(Debug, Clone, Copy)]
struct TlbSlot {
    /// `page << 4 | el << 2 | access` of the effective (tag-stripped) VA.
    ///
    /// Matching the full page-bit pattern of a *cached* (hence canonical)
    /// address proves the probed address canonical too, which is what
    /// lets the hit path skip the canonical-form classification.
    tag: u64,
    /// Index of the stage-1 table consulted.
    table: u64,
    /// Fill-time generation ([`u64::MAX`] = empty slot).
    generation: u64,
    /// Base PA of the backing frame.
    frame_base: u64,
}

impl TlbSlot {
    const EMPTY: TlbSlot = TlbSlot {
        tag: 0,
        table: 0,
        generation: u64::MAX,
        frame_base: 0,
    };

    fn tag(page: u64, el: El, access: AccessType) -> u64 {
        page << 4 | (el as u64) << 2 | access as u64
    }

    /// Direct-mapped slot index: spread page indices so that the (page,
    /// table, el, access) combinations a hot loop touches land in distinct
    /// slots, and mix the table id so that two tables mapping the same VA
    /// page (two processes across a context switch) do not evict each
    /// other's entries.
    fn slot(tag: u64, table: u64) -> usize {
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        ((tag ^ table.rotate_left(23)).wrapping_mul(GOLDEN) >> 49) as usize & (TLB_SIZE - 1)
    }
}

/// Number of direct-mapped software-TLB slots (power of two).
///
/// Direct-mapped rather than associative: a conflict simply evicts, and
/// correctness never depends on residency — only speed does.
const TLB_SIZE: usize = 1024;

/// The complete simulated memory system: physical frames, stage-1 tables,
/// and the hypervisor's stage-2 overlay.
///
/// # Performance architecture
///
/// Translation results are cached in a direct-mapped software TLB so hot
/// loops do not re-walk the tables on every byte, and bulk accesses
/// translate once per *page* instead of once per byte. The fast path is
/// *architecturally invisible*: only successful translations are cached,
/// every cacheable input is part of the key, and a global generation
/// counter — bumped by every operation that can change a translation or
/// permission ([`Memory::map`], [`Memory::set_attr`],
/// [`Memory::protect_stage2`], [`Memory::map_new`]) — invalidates all
/// entries at once. A stale entry can therefore never serve a downgraded
/// permission.
///
/// [`Memory::set_caching`]`(false)` selects the seed-faithful slow path —
/// no TLB *and* per-byte translation in the bulk accessors — which is the
/// A/B baseline the `perfcheck` harness measures against. Architectural
/// behaviour — every fault, every value, every permission decision — is
/// bit-identical on either path.
#[derive(Debug)]
pub struct Memory {
    phys: PhysMem,
    tables: Vec<Stage1Table>,
    stage2: Stage2Table,
    /// Generation counter for translation-affecting mutations.
    generation: u64,
    /// Software TLB (`Cell` interior mutability: `translate` is `&self`,
    /// and the hit path must not pay `RefCell`'s borrow bookkeeping).
    tlb: Vec<Cell<TlbSlot>>,
    tlb_enabled: bool,
    tlb_hits: Cell<u64>,
    tlb_misses: Cell<u64>,
    /// Explicit whole-TLB invalidations requested via [`Memory::tlb_flush`]
    /// (the cluster shootdown protocol), as opposed to the implicit
    /// invalidation every mutation performs.
    shootdowns: u64,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl Memory {
    /// Creates an empty memory system (caching enabled).
    pub fn new() -> Self {
        Memory {
            phys: PhysMem::new(),
            tables: Vec::new(),
            stage2: Stage2Table::new(),
            generation: 0,
            tlb: vec![Cell::new(TlbSlot::EMPTY); TLB_SIZE],
            tlb_enabled: true,
            tlb_hits: Cell::new(0),
            tlb_misses: Cell::new(0),
            shootdowns: 0,
        }
    }

    /// Enables or disables the fast path (A/B benchmarking knob): the
    /// software TLB *and* the page-granular bulk accessors. Disabled, the
    /// memory system walks the tables once per byte, faithfully
    /// reproducing the seed implementation the `perfcheck` harness
    /// baselines against.
    ///
    /// Architectural behaviour — every fault, every value, every
    /// permission decision — is identical with caching on or off; only
    /// wall-clock speed changes.
    pub fn set_caching(&mut self, enabled: bool) {
        self.tlb_enabled = enabled;
        if !enabled {
            self.tlb.fill(Cell::new(TlbSlot::EMPTY));
        }
    }

    /// Whether the software TLB is enabled.
    pub fn caching(&self) -> bool {
        self.tlb_enabled
    }

    /// Software-TLB hit count since construction.
    pub fn tlb_hits(&self) -> u64 {
        self.tlb_hits.get()
    }

    /// Software-TLB miss count since construction (counts only translations
    /// attempted while caching is enabled).
    pub fn tlb_misses(&self) -> u64 {
        self.tlb_misses.get()
    }

    /// The current translation generation (bumped by every mutation that
    /// can affect a translation result).
    pub fn translation_generation(&self) -> u64 {
        self.generation
    }

    /// Explicitly invalidates every TLB entry — the `TLBI`-broadcast half
    /// of a cluster TLB shootdown.
    ///
    /// One `Memory` serves every core of a cluster, so its generation
    /// counter is *per-cluster* by construction: a permission downgrade
    /// performed through core 0 is unservable from any core's next access
    /// even without this call. `tlb_flush` exists for the protocol level —
    /// host-side kernel code that wants an explicit barrier (and a
    /// counter) to pair with its shootdown IPIs.
    pub fn tlb_flush(&mut self) {
        self.bump_generation();
        self.shootdowns += 1;
    }

    /// Number of explicit [`Memory::tlb_flush`] shootdowns performed.
    pub fn tlb_shootdowns(&self) -> u64 {
        self.shootdowns
    }

    /// Invalidates every TLB entry by advancing the generation.
    ///
    /// The generation check alone is what guarantees staleness can never
    /// be served; slots are left in place and simply refill on next use.
    fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Allocates a new, empty stage-1 table.
    pub fn new_table(&mut self) -> TableId {
        self.tables.push(Stage1Table::new());
        TableId(self.tables.len() - 1)
    }

    /// Allocates a zeroed physical frame.
    pub fn alloc_frame(&mut self) -> Frame {
        self.phys.alloc()
    }

    /// Maps `va`'s page to `frame` in `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is stale or `va` is not page-aligned.
    pub fn map(&mut self, table: TableId, va: u64, frame: Frame, attr: S1Attr) {
        self.tables[table.0].map(va, frame, attr);
        self.bump_generation();
    }

    /// Removes the stage-1 mapping of `va`'s page from `table`, returning
    /// whether a mapping existed. The generation bump makes any cached
    /// translation of the page unservable from the very next access on any
    /// core — the module-unload path relies on this to guarantee that
    /// unloaded kernel text can never be fetched again.
    ///
    /// The backing frame is *not* freed (physical frames are never
    /// recycled in this simulator); only the translation disappears.
    pub fn unmap(&mut self, table: TableId, va: u64) -> bool {
        let removed = self.tables[table.0].unmap(va).is_some();
        if removed {
            self.bump_generation();
        }
        removed
    }

    /// Changes the stage-1 attributes of a mapped page.
    pub fn set_attr(&mut self, table: TableId, va: u64, attr: S1Attr) -> bool {
        let changed = self.tables[table.0].set_attr(va, attr);
        if changed {
            self.bump_generation();
        }
        changed
    }

    /// Read access to a stage-1 table.
    pub fn table(&self, table: TableId) -> &Stage1Table {
        &self.tables[table.0]
    }

    /// Applies a stage-2 permission override (hypervisor operation).
    ///
    /// # Errors
    ///
    /// Fails with [`Stage2Locked`] after [`Memory::lock_stage2`].
    pub fn protect_stage2(&mut self, frame: Frame, attr: S2Attr) -> Result<(), Stage2Locked> {
        self.stage2.protect(frame, attr)?;
        self.bump_generation();
        Ok(())
    }

    /// Locks the stage-2 table (hypervisor boot-finalisation).
    pub fn lock_stage2(&mut self) {
        self.stage2.lock();
    }

    /// The hypervisor's stage-2 table.
    pub fn stage2(&self) -> &Stage2Table {
        &self.stage2
    }

    /// Direct physical memory access (bootloader / debugging use).
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// Direct mutable physical memory access (bootloader / debugging use).
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// A kernel-mode translation context with both halves on `table`.
    ///
    /// Convenient for early boot, before any user address space exists.
    pub fn kernel_ctx(&self, table: TableId) -> TranslationCtx {
        TranslationCtx {
            ttbr0: table,
            ttbr1: table,
            el: El::El1,
            tbi_user: true,
        }
    }

    /// Strips ignored tag bits and validates canonical form.
    fn effective_va(&self, ctx: &TranslationCtx, va: u64) -> Result<u64, MemFault> {
        let select = (va >> 55) & 1;
        let va = if select == 0 && ctx.tbi_user {
            va & 0x00FF_FFFF_FFFF_FFFF
        } else {
            va
        };
        match classify_va(va) {
            VaClass::Invalid => Err(MemFault::NonCanonical { va }),
            _ => Ok(va),
        }
    }

    /// Translates `va` for `access`, applying both stages.
    ///
    /// # Errors
    ///
    /// Returns the architectural fault the access would raise, in priority
    /// order: canonical check, stage-1 walk, stage-1 permissions, stage-2
    /// permissions, physical backing.
    #[inline]
    pub fn translate(
        &self,
        ctx: &TranslationCtx,
        va: u64,
        access: AccessType,
    ) -> Result<u64, MemFault> {
        // Strip ignored user tag bits first; the full canonical-form
        // classification is deferred to the miss path, because a hit —
        // whose tag matches every page bit of a previously *successful*
        // (hence canonical) translation — proves the address canonical.
        let stripped = if (va >> 55) & 1 == 0 && ctx.tbi_user {
            va & 0x00FF_FFFF_FFFF_FFFF
        } else {
            va
        };
        let table_id = if (stripped >> 55) & 1 == 1 {
            ctx.ttbr1
        } else {
            ctx.ttbr0
        };
        if self.tlb_enabled {
            let tag = TlbSlot::tag(stripped / PAGE_SIZE, ctx.el, access);
            let slot = TlbSlot::slot(tag, table_id.0 as u64);
            let entry = self.tlb[slot].get();
            if entry.tag == tag
                && entry.table == table_id.0 as u64
                && entry.generation == self.generation
            {
                self.tlb_hits.set(self.tlb_hits.get() + 1);
                return Ok(entry.frame_base + stripped % PAGE_SIZE);
            }
            self.tlb_misses.set(self.tlb_misses.get() + 1);
            let eva = self.effective_va(ctx, va)?;
            let pa = self.translate_slow(table_id, eva, access, ctx.el)?;
            self.tlb[slot].set(TlbSlot {
                tag,
                table: table_id.0 as u64,
                generation: self.generation,
                frame_base: Frame::containing(pa).base(),
            });
            Ok(pa)
        } else {
            let eva = self.effective_va(ctx, va)?;
            self.translate_slow(table_id, eva, access, ctx.el)
        }
    }

    /// The uncached two-stage walk over an already-canonicalised address.
    fn translate_slow(
        &self,
        table_id: TableId,
        eva: u64,
        access: AccessType,
        el: El,
    ) -> Result<u64, MemFault> {
        let table = &self.tables[table_id.0];
        let entry = table.lookup(eva).ok_or(MemFault::Translation { va: eva })?;

        let s1_ok = match (el, access) {
            // The VMSAv8 quirk: stage 1 cannot deny an EL1 read.
            (El::El1, AccessType::Read) => true,
            (El::El1, AccessType::Write) => entry.attr.el1_write,
            (El::El1, AccessType::Execute) => entry.attr.el1_exec,
            (El::El0, AccessType::Read) => entry.attr.el0_read,
            (El::El0, AccessType::Write) => entry.attr.el0_write,
            (El::El0, AccessType::Execute) => entry.attr.el0_exec,
        };
        if !s1_ok {
            return Err(MemFault::Permission {
                va: eva,
                access,
                el,
            });
        }

        let pa = entry.frame.base() + (eva % PAGE_SIZE);
        let s2 = self.stage2.attr(entry.frame);
        let s2_ok = match access {
            AccessType::Read => s2.read,
            AccessType::Write => s2.write,
            AccessType::Execute => s2.exec,
        };
        if !s2_ok {
            return Err(MemFault::Stage2 {
                va: eva,
                pa,
                access,
            });
        }

        if !self.phys.is_allocated(entry.frame) {
            return Err(MemFault::Unmapped { pa });
        }
        Ok(pa)
    }

    /// Reads `buf.len()` bytes at `va` (may span pages), translating once
    /// per touched page and slice-copying against physical memory.
    ///
    /// With caching disabled the seed-faithful per-byte walk runs instead;
    /// results and faults are identical (every byte of a page shares one
    /// translation result).
    pub fn read_bytes(
        &self,
        ctx: &TranslationCtx,
        va: u64,
        buf: &mut [u8],
    ) -> Result<(), MemFault> {
        if !self.tlb_enabled {
            // Seed baseline: one full two-stage walk per byte.
            for (i, byte) in buf.iter_mut().enumerate() {
                let addr = va.wrapping_add(i as u64);
                let pa = self.translate(ctx, addr, AccessType::Read)?;
                *byte = self.phys.read_u8(pa).ok_or(MemFault::Unmapped { pa })?;
            }
            return Ok(());
        }
        let mut off = 0usize;
        while off < buf.len() {
            let addr = va.wrapping_add(off as u64);
            let pa = self.translate(ctx, addr, AccessType::Read)?;
            let n = ((PAGE_SIZE - addr % PAGE_SIZE) as usize).min(buf.len() - off);
            self.phys
                .read_bytes(pa, &mut buf[off..off + n])
                .ok_or(MemFault::Unmapped { pa })?;
            off += n;
        }
        Ok(())
    }

    /// Writes `bytes` at `va` (may span pages).
    ///
    /// A faulting write has **no partial effect**: one translation per
    /// touched page is validated up front (not one per byte — within a page
    /// every byte shares a translation result, so per-page validation is
    /// exactly as strong), and only then are the page slices copied.
    pub fn write_bytes(
        &mut self,
        ctx: &TranslationCtx,
        va: u64,
        bytes: &[u8],
    ) -> Result<(), MemFault> {
        if bytes.is_empty() {
            return Ok(());
        }
        if !self.tlb_enabled {
            // Seed baseline: validate one walk per byte, then write one
            // walk per byte. (Within a page every byte shares a
            // translation result, so the page-granular fast path below is
            // exactly as strong — this path exists as the perfcheck A/B
            // reference and to prove that equivalence.)
            for i in 0..bytes.len() {
                self.translate(ctx, va.wrapping_add(i as u64), AccessType::Write)?;
            }
            for (i, &byte) in bytes.iter().enumerate() {
                let addr = va.wrapping_add(i as u64);
                let pa = self.translate(ctx, addr, AccessType::Write)?;
                self.phys
                    .write_u8(pa, byte)
                    .ok_or(MemFault::Unmapped { pa })?;
            }
            return Ok(());
        }
        let first_page_span = (PAGE_SIZE - va % PAGE_SIZE) as usize;
        if bytes.len() <= first_page_span {
            // Fast path: the write stays within one page — a single
            // translation is both the validation pass and the write pass.
            let pa = self.translate(ctx, va, AccessType::Write)?;
            return self
                .phys
                .write_bytes(pa, bytes)
                .ok_or(MemFault::Unmapped { pa });
        }
        // Page-crossing write: validate one translation per touched page
        // before mutating anything, so a faulting write has no partial
        // effect; then copy per-page slices through the recorded PAs.
        let mut chunks: Vec<(u64, usize, usize)> = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            let addr = va.wrapping_add(off as u64);
            let pa = self.translate(ctx, addr, AccessType::Write)?;
            let n = ((PAGE_SIZE - addr % PAGE_SIZE) as usize).min(bytes.len() - off);
            chunks.push((pa, off, n));
            off += n;
        }
        for (pa, off, n) in chunks {
            self.phys
                .write_bytes(pa, &bytes[off..off + n])
                .ok_or(MemFault::Unmapped { pa })?;
        }
        Ok(())
    }

    /// Reads a little-endian u64 (single translation when page-local).
    #[inline]
    pub fn read_u64(&self, ctx: &TranslationCtx, va: u64) -> Result<u64, MemFault> {
        if self.tlb_enabled && va % PAGE_SIZE <= PAGE_SIZE - 8 {
            let pa = self.translate(ctx, va, AccessType::Read)?;
            return self.phys.read_u64(pa).ok_or(MemFault::Unmapped { pa });
        }
        let mut buf = [0u8; 8];
        self.read_bytes(ctx, va, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian u64 (single translation when page-local).
    #[inline]
    pub fn write_u64(&mut self, ctx: &TranslationCtx, va: u64, value: u64) -> Result<(), MemFault> {
        if self.tlb_enabled && va % PAGE_SIZE <= PAGE_SIZE - 8 {
            // Page-local fast path, mirroring `read_u64`: one translation
            // is both the validation pass and the write pass.
            let pa = self.translate(ctx, va, AccessType::Write)?;
            return self
                .phys
                .write_u64(pa, value)
                .ok_or(MemFault::Unmapped { pa });
        }
        self.write_bytes(ctx, va, &value.to_le_bytes())
    }

    /// [`Memory::translate`] with a per-site [`TransMemo`] checked first.
    ///
    /// The memo compares the same validity tuple the TLB tag encodes
    /// (page, table, exception level, generation — access type is fixed
    /// per site, see [`TransMemo`]); on a miss the shared path runs and
    /// refills the memo.
    #[inline]
    pub fn translate_memo(
        &self,
        ctx: &TranslationCtx,
        va: u64,
        access: AccessType,
        memo: &mut TransMemo,
    ) -> Result<u64, MemFault> {
        if !self.tlb_enabled {
            return self.translate(ctx, va, access);
        }
        // Mirror `translate`'s tag handling exactly: strip ignored user
        // tag bits, then select the table by VA bit 55.
        let stripped = if (va >> 55) & 1 == 0 && ctx.tbi_user {
            va & 0x00FF_FFFF_FFFF_FFFF
        } else {
            va
        };
        let table_id = if (stripped >> 55) & 1 == 1 {
            ctx.ttbr1
        } else {
            ctx.ttbr0
        };
        if memo.valid
            && memo.page == stripped / PAGE_SIZE
            && memo.table == table_id.0 as u64
            && memo.el == ctx.el
            && memo.generation == self.generation
        {
            return Ok(memo.frame_base + stripped % PAGE_SIZE);
        }
        let pa = self.translate(ctx, va, access)?;
        *memo = TransMemo {
            valid: true,
            page: stripped / PAGE_SIZE,
            table: table_id.0 as u64,
            el: ctx.el,
            generation: self.generation,
            frame_base: Frame::containing(pa).base(),
        };
        Ok(pa)
    }

    /// [`Memory::read_u64`] through a per-site [`TransMemo`].
    #[inline]
    pub fn read_u64_memo(
        &self,
        ctx: &TranslationCtx,
        va: u64,
        memo: &mut TransMemo,
    ) -> Result<u64, MemFault> {
        if self.tlb_enabled && va % PAGE_SIZE <= PAGE_SIZE - 8 {
            let pa = self.translate_memo(ctx, va, AccessType::Read, memo)?;
            return self.phys.read_u64(pa).ok_or(MemFault::Unmapped { pa });
        }
        self.read_u64(ctx, va)
    }

    /// [`Memory::write_u64`] through a per-site [`TransMemo`].
    #[inline]
    pub fn write_u64_memo(
        &mut self,
        ctx: &TranslationCtx,
        va: u64,
        value: u64,
        memo: &mut TransMemo,
    ) -> Result<(), MemFault> {
        if self.tlb_enabled && va % PAGE_SIZE <= PAGE_SIZE - 8 {
            let pa = self.translate_memo(ctx, va, AccessType::Write, memo)?;
            return self
                .phys
                .write_u64(pa, value)
                .ok_or(MemFault::Unmapped { pa });
        }
        self.write_u64(ctx, va, value)
    }

    /// Reads the adjacent qwords at `va` and `va + 8` with one
    /// translation, through a per-site [`TransMemo`] — the `LDP` shape.
    ///
    /// Faults and results are identical to two [`Memory::read_u64`] calls:
    /// the single-translation path is only taken when both qwords sit in
    /// one page (one translation result covers every byte of a page), and
    /// anything else falls back to the two-call sequence.
    #[inline]
    pub fn read_u64_pair_memo(
        &self,
        ctx: &TranslationCtx,
        va: u64,
        memo: &mut TransMemo,
    ) -> Result<(u64, u64), MemFault> {
        if self.tlb_enabled && va % PAGE_SIZE <= PAGE_SIZE - 16 {
            let pa = self.translate_memo(ctx, va, AccessType::Read, memo)?;
            let lo = self.phys.read_u64(pa).ok_or(MemFault::Unmapped { pa })?;
            let hi = self
                .phys
                .read_u64(pa + 8)
                .ok_or(MemFault::Unmapped { pa: pa + 8 })?;
            return Ok((lo, hi));
        }
        Ok((
            self.read_u64(ctx, va)?,
            self.read_u64(ctx, va.wrapping_add(8))?,
        ))
    }

    /// Writes the adjacent qwords at `va` and `va + 8` with one
    /// translation, through a per-site [`TransMemo`] — the `STP` shape
    /// (see [`Memory::read_u64_pair_memo`] for the fault-equivalence
    /// argument).
    #[inline]
    pub fn write_u64_pair_memo(
        &mut self,
        ctx: &TranslationCtx,
        va: u64,
        lo: u64,
        hi: u64,
        memo: &mut TransMemo,
    ) -> Result<(), MemFault> {
        if self.tlb_enabled && va % PAGE_SIZE <= PAGE_SIZE - 16 {
            let pa = self.translate_memo(ctx, va, AccessType::Write, memo)?;
            self.phys
                .write_u64(pa, lo)
                .ok_or(MemFault::Unmapped { pa })?;
            return self
                .phys
                .write_u64(pa + 8, hi)
                .ok_or(MemFault::Unmapped { pa: pa + 8 });
        }
        self.write_u64(ctx, va, lo)?;
        self.write_u64(ctx, va.wrapping_add(8), hi)
    }

    /// Translates an instruction fetch: execute access, must be 4-aligned.
    ///
    /// Returns the physical address of the instruction word. The CPU's
    /// decoded-instruction cache keys on this address; the permission walk
    /// (or TLB hit) still happens on *every* fetch, so revoking execute
    /// rights faults on the very next step even for cached instructions.
    #[inline]
    pub fn fetch_loc(&self, ctx: &TranslationCtx, va: u64) -> Result<u64, MemFault> {
        if va % 4 != 0 {
            return Err(MemFault::FetchUnaligned { va });
        }
        self.translate(ctx, va, AccessType::Execute)
    }

    /// Fetches one instruction word (execute access, must be 4-aligned).
    pub fn fetch(&self, ctx: &TranslationCtx, va: u64) -> Result<u32, MemFault> {
        let pa = self.fetch_loc(ctx, va)?;
        self.phys.read_u32(pa).ok_or(MemFault::Unmapped { pa })
    }

    /// Maps a fresh frame at `va` and returns it (allocate-and-map).
    pub fn map_new(&mut self, table: TableId, va: u64, attr: S1Attr) -> Frame {
        let frame = self.alloc_frame();
        self.map(table, va, frame, attr);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::KERNEL_BASE;

    fn setup() -> (Memory, TableId) {
        let mut mem = Memory::new();
        let table = mem.new_table();
        (mem, table)
    }

    #[test]
    fn read_write_through_translation() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let ctx = mem.kernel_ctx(table);
        mem.write_u64(&ctx, KERNEL_BASE + 8, 0xfeed_f00d).unwrap();
        assert_eq!(mem.read_u64(&ctx, KERNEL_BASE + 8), Ok(0xfeed_f00d));
    }

    #[test]
    fn unmapped_page_translation_fault() {
        let (mem, table) = setup();
        let ctx = mem.kernel_ctx(table);
        assert_eq!(
            mem.read_u64(&ctx, KERNEL_BASE),
            Err(MemFault::Translation { va: KERNEL_BASE })
        );
    }

    #[test]
    fn noncanonical_address_faults() {
        let (mem, table) = setup();
        let ctx = mem.kernel_ctx(table);
        let bad = 0x00ff_0000_0000_1000u64; // ext bits set, bit 55 clear
        assert!(matches!(
            mem.read_u64(&ctx, bad),
            Err(MemFault::NonCanonical { .. })
        ));
    }

    #[test]
    fn user_tag_byte_is_ignored_with_tbi() {
        let (mut mem, table) = setup();
        mem.map_new(table, 0x1000, S1Attr::user_data());
        let mut ctx = mem.kernel_ctx(table);
        ctx.el = El::El0;
        let tagged = 0xAB00_0000_0000_1008u64;
        mem.write_u64(&ctx, tagged, 7).unwrap();
        assert_eq!(mem.read_u64(&ctx, 0x1008), Ok(7));

        // Kernel addresses get no such leniency: a "tagged" kernel pointer
        // is simply non-canonical.
        let mut kctx = mem.kernel_ctx(table);
        kctx.el = El::El1;
        let tagged_kernel = KERNEL_BASE & !(0xFFu64 << 56) | (0xAB << 56);
        assert!(matches!(
            mem.read_u64(&kctx, tagged_kernel),
            Err(MemFault::NonCanonical { .. })
        ));
    }

    #[test]
    fn el1_read_cannot_be_denied_by_stage1() {
        // The architectural quirk from Appendix A.2.
        let (mut mem, table) = setup();
        let frame = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        let ctx = mem.kernel_ctx(table);
        // kernel_text denies EL1 writes but reads still succeed.
        assert!(mem.read_u64(&ctx, KERNEL_BASE).is_ok());
        assert!(matches!(
            mem.write_u64(&mut mem.kernel_ctx(table).clone(), KERNEL_BASE, 0),
            Err(MemFault::Permission { .. })
        ));
        let _ = frame;
    }

    #[test]
    fn stage2_makes_xom_real() {
        let (mut mem, table) = setup();
        let frame = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        mem.protect_stage2(frame, S2Attr::execute_only()).unwrap();
        let ctx = mem.kernel_ctx(table);
        // Fetch works...
        assert!(mem.fetch(&ctx, KERNEL_BASE).is_ok());
        // ...but reads now take a stage-2 fault, despite stage 1 allowing
        // every EL1 read.
        assert!(matches!(
            mem.read_u64(&ctx, KERNEL_BASE),
            Err(MemFault::Stage2 {
                access: AccessType::Read,
                ..
            })
        ));
        // And writes too.
        assert!(matches!(
            mem.write_u64(&mut mem.kernel_ctx(table).clone(), KERNEL_BASE, 0),
            Err(MemFault::Permission { .. }) | Err(MemFault::Stage2 { .. })
        ));
    }

    #[test]
    fn el0_cannot_execute_kernel_xom() {
        let (mut mem, table) = setup();
        let frame = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        mem.protect_stage2(frame, S2Attr::execute_only()).unwrap();
        let mut ctx = mem.kernel_ctx(table);
        ctx.el = El::El0;
        assert!(matches!(
            mem.fetch(&ctx, KERNEL_BASE),
            Err(MemFault::Permission {
                access: AccessType::Execute,
                el: El::El0,
                ..
            })
        ));
    }

    #[test]
    fn el0_cannot_touch_kernel_data() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let mut ctx = mem.kernel_ctx(table);
        ctx.el = El::El0;
        assert!(matches!(
            mem.read_u64(&ctx, KERNEL_BASE),
            Err(MemFault::Permission { .. })
        ));
    }

    #[test]
    fn split_halves_use_their_own_tables() {
        let mut mem = Memory::new();
        let user_table = mem.new_table();
        let kernel_table = mem.new_table();
        mem.map_new(user_table, 0x1000, S1Attr::user_data());
        mem.map_new(kernel_table, KERNEL_BASE, S1Attr::kernel_data());
        let ctx = TranslationCtx {
            ttbr0: user_table,
            ttbr1: kernel_table,
            el: El::El1,
            tbi_user: true,
        };
        assert!(mem.read_u64(&ctx, 0x1000).is_ok());
        assert!(mem.read_u64(&ctx, KERNEL_BASE).is_ok());
        // The kernel half never consults TTBR0.
        assert!(mem.read_u64(&ctx, KERNEL_BASE + 0x1000).is_err());
    }

    #[test]
    fn fetch_requires_alignment() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        let ctx = mem.kernel_ctx(table);
        assert_eq!(
            mem.fetch(&ctx, KERNEL_BASE + 2),
            Err(MemFault::FetchUnaligned {
                va: KERNEL_BASE + 2
            })
        );
    }

    #[test]
    fn faulting_write_has_no_partial_effect() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        // Next page unmapped: a straddling write must fail atomically.
        let ctx = mem.kernel_ctx(table);
        let straddle = KERNEL_BASE + PAGE_SIZE - 4;
        let before = mem.read_u64(&ctx, KERNEL_BASE + PAGE_SIZE - 8).unwrap();
        assert!(mem.write_u64(&mut ctx.clone(), straddle, u64::MAX).is_err());
        assert_eq!(mem.read_u64(&ctx, KERNEL_BASE + PAGE_SIZE - 8), Ok(before));
    }

    #[test]
    fn page_crossing_write_with_faulting_middle_page_is_atomic() {
        // Three-page write with the *middle* page unmapped: the per-page
        // pre-validation must reject the whole write before byte one lands.
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        mem.map_new(table, KERNEL_BASE + 2 * PAGE_SIZE, S1Attr::kernel_data());
        let ctx = mem.kernel_ctx(table);
        let start = KERNEL_BASE + PAGE_SIZE - 8;
        let len = (8 + PAGE_SIZE + 8) as usize;
        let payload = vec![0xABu8; len];
        assert!(matches!(
            mem.write_bytes(&mut ctx.clone(), start, &payload),
            Err(MemFault::Translation { .. })
        ));
        // Neither the mapped head nor the mapped tail was touched.
        assert_eq!(mem.read_u64(&ctx, start), Ok(0));
        assert_eq!(mem.read_u64(&ctx, KERNEL_BASE + 2 * PAGE_SIZE), Ok(0));
    }

    #[test]
    fn page_crossing_write_into_readonly_tail_is_atomic() {
        // The second page is mapped but not writable: the write must fail
        // with a permission fault and leave the writable head untouched.
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        mem.map_new(table, KERNEL_BASE + PAGE_SIZE, S1Attr::kernel_rodata());
        let ctx = mem.kernel_ctx(table);
        let straddle = KERNEL_BASE + PAGE_SIZE - 4;
        assert!(matches!(
            mem.write_u64(&mut ctx.clone(), straddle, u64::MAX),
            Err(MemFault::Permission { .. })
        ));
        assert_eq!(mem.read_u64(&ctx, KERNEL_BASE + PAGE_SIZE - 8), Ok(0));
    }

    #[test]
    fn page_crossing_accesses_roundtrip_through_translation() {
        let (mut mem, table) = setup();
        let f1 = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let f2 = mem.map_new(table, KERNEL_BASE + PAGE_SIZE, S1Attr::kernel_data());
        assert_ne!(f1, f2);
        let ctx = mem.kernel_ctx(table);
        let straddle = KERNEL_BASE + PAGE_SIZE - 3;
        let payload: Vec<u8> = (0..64u8).collect();
        mem.write_bytes(&mut ctx.clone(), straddle, &payload)
            .unwrap();
        let mut back = vec![0u8; 64];
        mem.read_bytes(&ctx, straddle, &mut back).unwrap();
        assert_eq!(back, payload);
        // And the page-boundary u64 fast/slow paths agree.
        mem.write_u64(&mut ctx.clone(), straddle, 0x0102_0304_0506_0708)
            .unwrap();
        assert_eq!(mem.read_u64(&ctx, straddle), Ok(0x0102_0304_0506_0708));
    }

    #[test]
    fn tlb_hits_on_repeated_access_and_counts() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let ctx = mem.kernel_ctx(table);
        let miss0 = mem.tlb_misses();
        mem.read_u64(&ctx, KERNEL_BASE).unwrap();
        assert_eq!(mem.tlb_misses(), miss0 + 1, "first access walks");
        let hits0 = mem.tlb_hits();
        for i in 0..100 {
            mem.read_u64(&ctx, KERNEL_BASE + i * 8).unwrap();
        }
        assert_eq!(mem.tlb_hits(), hits0 + 100, "same page, same generation");
        assert_eq!(mem.tlb_misses(), miss0 + 1);
    }

    #[test]
    fn set_attr_downgrade_invalidates_tlb_immediately() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let ctx = mem.kernel_ctx(table);
        // Warm the write entry.
        mem.write_u64(&mut ctx.clone(), KERNEL_BASE, 7).unwrap();
        mem.write_u64(&mut ctx.clone(), KERNEL_BASE, 8).unwrap();
        assert!(mem.tlb_hits() > 0);
        // Downgrade to read-only: the very next write must fault.
        assert!(mem.set_attr(table, KERNEL_BASE, S1Attr::kernel_rodata()));
        assert!(matches!(
            mem.write_u64(&mut ctx.clone(), KERNEL_BASE, 9),
            Err(MemFault::Permission { .. })
        ));
        assert_eq!(mem.read_u64(&ctx, KERNEL_BASE), Ok(8), "write was blocked");
    }

    #[test]
    fn protect_stage2_invalidates_tlb_immediately() {
        let (mut mem, table) = setup();
        let frame = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        let ctx = mem.kernel_ctx(table);
        // Warm read + fetch entries.
        assert!(mem.read_u64(&ctx, KERNEL_BASE).is_ok());
        assert!(mem.read_u64(&ctx, KERNEL_BASE).is_ok());
        // Hypervisor seals the page execute-only: reads fault on the very
        // next access, fetches keep working.
        mem.protect_stage2(frame, S2Attr::execute_only()).unwrap();
        assert!(matches!(
            mem.read_u64(&ctx, KERNEL_BASE),
            Err(MemFault::Stage2 {
                access: AccessType::Read,
                ..
            })
        ));
        assert!(mem.fetch(&ctx, KERNEL_BASE).is_ok());
    }

    #[test]
    fn caching_off_is_architecturally_identical() {
        let build = |caching: bool| {
            let mut mem = Memory::new();
            mem.set_caching(caching);
            let table = mem.new_table();
            mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
            let ctx = mem.kernel_ctx(table);
            let mut log = Vec::new();
            for i in 0..16u64 {
                log.push(mem.write_u64(&mut ctx.clone(), KERNEL_BASE + i * 64, i));
                log.push(mem.write_u64(&mut ctx.clone(), KERNEL_BASE + PAGE_SIZE, i));
            }
            for i in 0..16u64 {
                log.push(mem.read_u64(&ctx, KERNEL_BASE + i * 64).map(|_| ()));
            }
            log
        };
        assert_eq!(build(true), build(false));
        let mut mem = Memory::new();
        mem.set_caching(false);
        let table = mem.new_table();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let ctx = mem.kernel_ctx(table);
        mem.read_u64(&ctx, KERNEL_BASE).unwrap();
        assert_eq!(mem.tlb_hits() + mem.tlb_misses(), 0, "caches fully off");
    }

    #[test]
    fn tlb_flush_invalidates_and_counts() {
        let (mut mem, table) = setup();
        mem.map_new(table, KERNEL_BASE, S1Attr::kernel_data());
        let ctx = mem.kernel_ctx(table);
        mem.read_u64(&ctx, KERNEL_BASE).unwrap();
        let misses = mem.tlb_misses();
        let gen = mem.translation_generation();
        assert_eq!(mem.tlb_shootdowns(), 0);
        mem.tlb_flush();
        assert_eq!(mem.tlb_shootdowns(), 1);
        assert!(mem.translation_generation() > gen);
        // The previously warm entry must re-walk.
        mem.read_u64(&ctx, KERNEL_BASE).unwrap();
        assert_eq!(mem.tlb_misses(), misses + 1);
    }

    #[test]
    fn fetch_loc_returns_the_instruction_pa() {
        let (mut mem, table) = setup();
        let frame = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
        let ctx = mem.kernel_ctx(table);
        assert_eq!(mem.fetch_loc(&ctx, KERNEL_BASE + 8), Ok(frame.base() + 8));
        assert_eq!(
            mem.fetch_loc(&ctx, KERNEL_BASE + 2),
            Err(MemFault::FetchUnaligned {
                va: KERNEL_BASE + 2
            })
        );
    }
}
