//! VMSAv8 memory system for the Camouflage simulator.
//!
//! Models the parts of the ARMv8 Virtual Memory System Architecture the
//! paper's design depends on:
//!
//! * the **split address space** selected by VA bit 55 (`TTBR0` user half,
//!   `TTBR1` kernel half) and the canonical sign-extension rules —
//!   reproducing Tables 1 and 2 of the paper ([`layout`]);
//! * **top-byte-ignore** (TBI), enabled for user addresses and disabled for
//!   kernel addresses in a standard Linux configuration, which is what
//!   limits kernel PACs to 15 bits (§5.4, Appendix A);
//! * **stage-1 translation** with the architectural quirk that every mapping
//!   is implicitly *readable* at EL1 — the reason kernel execute-only memory
//!   is impossible without a hypervisor (Appendix A.2);
//! * **stage-2 translation** owned by the hypervisor, whose independent read
//!   permission bit is what makes kernel XOM real ([`Stage2Table`]).
//!
//! # Example
//!
//! ```
//! use camo_mem::{AccessType, El, Memory, S1Attr, S2Attr};
//!
//! let mut mem = Memory::new();
//! let table = mem.new_table();
//! let frame = mem.alloc_frame();
//! // Kernel text page, executable at EL1.
//! mem.map(table, 0xffff_0000_0000_0000, frame, S1Attr::kernel_text());
//! // The hypervisor strips the read permission: execute-only memory.
//! mem.protect_stage2(frame, S2Attr::execute_only());
//!
//! let ctx = mem.kernel_ctx(table);
//! assert!(mem.read_u64(&ctx, 0xffff_0000_0000_0000).is_err());
//! assert!(mem.fetch(&ctx, 0xffff_0000_0000_0000).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
mod mmu;
mod phys;
mod stage1;
mod stage2;

pub use layout::{PointerLayout, VaClass, KERNEL_BASE, PAGE_SIZE, VA_BITS};
pub use mmu::{AccessType, El, MemFault, Memory, TableId, TransMemo, TranslationCtx};
pub use phys::{Frame, PhysMem};
pub use stage1::{S1Attr, Stage1Table};
pub use stage2::{S2Attr, Stage2Locked, Stage2Table};
