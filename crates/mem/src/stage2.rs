//! Stage-2 translation: the hypervisor's permission overlay.
//!
//! With AArch64 virtualization, every stage-1 output address is checked
//! against a second, hypervisor-owned table. Unlike stage 1, stage 2 has an
//! independent *read* permission — which is the only way to build
//! execute-only memory visible from EL1 (Appendix A.2). The Camouflage
//! bootloader asks the hypervisor to map the key-setter page execute-only
//! and to lock translation control, realizing the threat-model assumption
//! that "the adversary cannot modify write-protected memory (including
//! XOM)".

use crate::phys::Frame;
use std::collections::HashMap;

/// Stage-2 permissions for one physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct S2Attr {
    /// Stage-2 read permission.
    pub read: bool,
    /// Stage-2 write permission.
    pub write: bool,
    /// Stage-2 execute permission.
    pub exec: bool,
}

impl S2Attr {
    /// Full access: the default for frames the hypervisor does not guard.
    pub fn full() -> Self {
        S2Attr {
            read: true,
            write: true,
            exec: true,
        }
    }

    /// Execute-only: the XOM attribute for the key-setter page.
    pub fn execute_only() -> Self {
        S2Attr {
            read: false,
            write: false,
            exec: true,
        }
    }

    /// Read-only (e.g. hypervisor-sealed kernel text).
    pub fn read_exec() -> Self {
        S2Attr {
            read: true,
            write: false,
            exec: true,
        }
    }
}

impl Default for S2Attr {
    fn default() -> Self {
        S2Attr::full()
    }
}

/// The hypervisor's stage-2 table. Frames without an explicit entry get
/// [`S2Attr::full`].
#[derive(Debug, Clone, Default)]
pub struct Stage2Table {
    overrides: HashMap<Frame, S2Attr>,
    locked: bool,
}

impl Stage2Table {
    /// Creates a permissive stage-2 table.
    pub fn new() -> Self {
        Stage2Table::default()
    }

    /// The effective stage-2 permissions of `frame`.
    pub fn attr(&self, frame: Frame) -> S2Attr {
        self.overrides.get(&frame).copied().unwrap_or_default()
    }

    /// Sets the stage-2 permissions of `frame`.
    ///
    /// # Errors
    ///
    /// Fails once the table has been [locked](Stage2Table::lock): the
    /// hypervisor refuses reconfiguration after boot, which is what defeats
    /// in-guest attempts to lift XOM.
    pub fn protect(&mut self, frame: Frame, attr: S2Attr) -> Result<(), Stage2Locked> {
        if self.locked {
            return Err(Stage2Locked);
        }
        self.overrides.insert(frame, attr);
        Ok(())
    }

    /// Permanently locks the table against further permission changes.
    pub fn lock(&mut self) {
        self.locked = true;
    }

    /// Whether the table has been locked.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Number of frames with non-default permissions.
    pub fn guarded_frames(&self) -> usize {
        self.overrides.len()
    }
}

/// Error: the stage-2 table is locked (post-boot reconfiguration attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage2Locked;

impl core::fmt::Display for Stage2Locked {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "stage-2 table is locked; hypervisor refuses reconfiguration"
        )
    }
}

impl std::error::Error for Stage2Locked {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_access() {
        let table = Stage2Table::new();
        let attr = table.attr(Frame::containing(0x9000));
        assert_eq!(attr, S2Attr::full());
    }

    #[test]
    fn xom_attr_denies_read_and_write() {
        let xom = S2Attr::execute_only();
        assert!(!xom.read);
        assert!(!xom.write);
        assert!(xom.exec);
    }

    #[test]
    fn protect_then_query() {
        let mut table = Stage2Table::new();
        let frame = Frame::containing(0x4000);
        table.protect(frame, S2Attr::execute_only()).unwrap();
        assert_eq!(table.attr(frame), S2Attr::execute_only());
        assert_eq!(table.guarded_frames(), 1);
    }

    #[test]
    fn locked_table_rejects_reconfiguration() {
        let mut table = Stage2Table::new();
        let frame = Frame::containing(0x4000);
        table.protect(frame, S2Attr::execute_only()).unwrap();
        table.lock();
        assert!(table.is_locked());
        let err = table.protect(frame, S2Attr::full()).unwrap_err();
        assert_eq!(err, Stage2Locked);
        // The XOM attribute survives the attempt.
        assert_eq!(table.attr(frame), S2Attr::execute_only());
    }
}
