//! Stage-1 translation: the OS-controlled page tables.

use crate::layout::PAGE_SIZE;
use crate::phys::Frame;
use std::collections::HashMap;

/// Stage-1 page attributes.
///
/// The field set mirrors what the VMSAv8 descriptor AP/UXN/PXN bits can
/// express. Deliberately, there is **no `el1_read` field**: the VMSAv8
/// translation-table format makes every stage-1 mapping readable at EL1
/// (Appendix A.2 of the paper), which is exactly why kernel XOM needs the
/// hypervisor's stage 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct S1Attr {
    /// Readable at EL0.
    pub el0_read: bool,
    /// Writable at EL0.
    pub el0_write: bool,
    /// Executable at EL0 (`UXN` clear).
    pub el0_exec: bool,
    /// Writable at EL1.
    pub el1_write: bool,
    /// Executable at EL1 (`PXN` clear).
    pub el1_exec: bool,
}

impl S1Attr {
    /// Kernel text: EL1 execute, no writes, invisible to EL0.
    pub fn kernel_text() -> Self {
        S1Attr {
            el0_read: false,
            el0_write: false,
            el0_exec: false,
            el1_write: false,
            el1_exec: true,
        }
    }

    /// Kernel read-only data (`.rodata`): no writes, no execute, EL1 only.
    pub fn kernel_rodata() -> Self {
        S1Attr {
            el0_read: false,
            el0_write: false,
            el0_exec: false,
            el1_write: false,
            el1_exec: false,
        }
    }

    /// Kernel read-write data: EL1 read/write, no execute (W⊕X).
    pub fn kernel_data() -> Self {
        S1Attr {
            el0_read: false,
            el0_write: false,
            el0_exec: false,
            el1_write: true,
            el1_exec: false,
        }
    }

    /// User text: EL0 read/execute (and implicitly EL1-readable).
    pub fn user_text() -> Self {
        S1Attr {
            el0_read: true,
            el0_write: false,
            el0_exec: true,
            el1_write: false,
            el1_exec: false,
        }
    }

    /// User data: EL0 read/write, never executable.
    pub fn user_data() -> Self {
        S1Attr {
            el0_read: true,
            el0_write: true,
            el0_exec: false,
            el1_write: true,
            el1_exec: false,
        }
    }
}

/// One stage-1 translation entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct S1Entry {
    /// The backing physical frame.
    pub frame: Frame,
    /// Page attributes.
    pub attr: S1Attr,
}

/// A stage-1 translation table: VA page → physical frame + attributes.
///
/// The simulator models translation maps rather than the multi-level
/// descriptor walk; permissions and the split-half semantics are faithful,
/// the walk mechanics are not what the paper's design depends on.
#[derive(Debug, Clone, Default)]
pub struct Stage1Table {
    entries: HashMap<u64, S1Entry>,
}

impl Stage1Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Stage1Table::default()
    }

    /// Maps the page containing `va` to `frame` with `attr`.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not page-aligned.
    pub fn map(&mut self, va: u64, frame: Frame, attr: S1Attr) {
        assert!(va % PAGE_SIZE == 0, "mapping must be page aligned");
        self.entries.insert(va / PAGE_SIZE, S1Entry { frame, attr });
    }

    /// Removes the mapping for the page containing `va`, returning it.
    pub fn unmap(&mut self, va: u64) -> Option<S1Entry> {
        self.entries.remove(&(va / PAGE_SIZE))
    }

    /// Looks up the entry for the page containing `va`.
    pub fn lookup(&self, va: u64) -> Option<S1Entry> {
        self.entries.get(&(va / PAGE_SIZE)).copied()
    }

    /// Changes the attributes of an existing mapping.
    ///
    /// Returns `false` if the page is unmapped.
    pub fn set_attr(&mut self, va: u64, attr: S1Attr) -> bool {
        if let Some(entry) = self.entries.get_mut(&(va / PAGE_SIZE)) {
            entry.attr = attr;
            true
        } else {
            false
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(va_page_base, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, S1Entry)> + '_ {
        self.entries.iter().map(|(&page, &e)| (page * PAGE_SIZE, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: u64) -> Frame {
        Frame::containing(n * PAGE_SIZE)
    }

    #[test]
    fn map_lookup_unmap() {
        let mut table = Stage1Table::new();
        table.map(0x1000, frame(7), S1Attr::kernel_data());
        let entry = table.lookup(0x1ABC).expect("same page");
        assert_eq!(entry.frame, frame(7));
        assert!(table.lookup(0x2000).is_none());
        assert!(table.unmap(0x1000).is_some());
        assert!(table.lookup(0x1000).is_none());
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_map_panics() {
        let mut table = Stage1Table::new();
        table.map(0x1004, frame(1), S1Attr::kernel_data());
    }

    #[test]
    fn attr_presets_enforce_w_xor_x() {
        for attr in [
            S1Attr::kernel_text(),
            S1Attr::kernel_rodata(),
            S1Attr::kernel_data(),
            S1Attr::user_text(),
            S1Attr::user_data(),
        ] {
            assert!(
                !(attr.el1_write && attr.el1_exec),
                "no page may be EL1-writable and EL1-executable: {attr:?}"
            );
            assert!(
                !(attr.el0_write && attr.el0_exec),
                "no page may be EL0-writable and EL0-executable: {attr:?}"
            );
        }
    }

    #[test]
    fn set_attr_on_mapped_page() {
        let mut table = Stage1Table::new();
        table.map(0x3000, frame(2), S1Attr::kernel_data());
        assert!(table.set_attr(0x3000, S1Attr::kernel_rodata()));
        assert_eq!(table.lookup(0x3000).unwrap().attr, S1Attr::kernel_rodata());
        assert!(!table.set_attr(0x9000, S1Attr::kernel_rodata()));
    }

    #[test]
    fn iter_reports_page_bases() {
        let mut table = Stage1Table::new();
        table.map(0x5000, frame(3), S1Attr::user_data());
        let all: Vec<_> = table.iter().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, 0x5000);
        assert_eq!(table.mapped_pages(), 1);
    }
}
