//! Sparse physical memory.

use crate::layout::PAGE_SIZE;

/// A physical page frame number.
///
/// Frames are handed out by [`PhysMem::alloc`]; the frame's base physical
/// address is `frame.base()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Frame(u64);

impl Frame {
    /// The frame containing physical address `pa`.
    pub fn containing(pa: u64) -> Frame {
        Frame(pa / PAGE_SIZE)
    }

    /// The frame number.
    pub fn number(self) -> u64 {
        self.0
    }

    /// The base physical address of this frame.
    pub fn base(self) -> u64 {
        self.0 * PAGE_SIZE
    }
}

/// One backed frame: its bytes plus a monotonically increasing write
/// version.
///
/// The version is bumped on **every** mutation, including direct
/// [`PhysMem`] writes that bypass translation (the attacker's primitive and
/// the loader's fast path). The CPU's decoded-instruction cache keys its
/// entries on `(physical address, frame version)`, so no write — however it
/// reaches the frame — can leave a stale decoded instruction behind.
#[derive(Debug)]
struct FrameData {
    bytes: Box<[u8; PAGE_SIZE as usize]>,
    version: u64,
}

/// Sparse byte-addressable physical memory, allocated in 4 KiB frames.
///
/// Frames are handed out with dense, sequential numbers, so the store is a
/// plain `Vec` indexed by frame number — every access is an array index,
/// which is what keeps the CPU's per-step `frame_version` check (and the
/// slice fast paths under the page-granular MMU accessors) cheap.
#[derive(Debug, Default)]
pub struct PhysMem {
    /// Indexed by frame number; index 0 is never backed so that physical
    /// address 0 stays invalid.
    frames: Vec<Option<FrameData>>,
    allocated: usize,
}

impl PhysMem {
    /// Creates empty physical memory.
    pub fn new() -> Self {
        PhysMem {
            // Leave frame 0 unused so that physical address 0 stays invalid.
            frames: vec![None],
            allocated: 0,
        }
    }

    /// Allocates a fresh zeroed frame.
    pub fn alloc(&mut self) -> Frame {
        let frame = Frame(self.frames.len() as u64);
        self.frames.push(Some(FrameData {
            bytes: Box::new([0u8; PAGE_SIZE as usize]),
            version: 0,
        }));
        self.allocated += 1;
        frame
    }

    #[inline]
    fn frame(&self, number: u64) -> Option<&FrameData> {
        self.frames.get(usize::try_from(number).ok()?)?.as_ref()
    }

    fn frame_mut(&mut self, number: u64) -> Option<&mut FrameData> {
        self.frames.get_mut(usize::try_from(number).ok()?)?.as_mut()
    }

    /// Whether `frame` is backed by storage.
    pub fn is_allocated(&self, frame: Frame) -> bool {
        self.frame(frame.0).is_some()
    }

    /// Number of allocated frames.
    pub fn frame_count(&self) -> usize {
        self.allocated
    }

    /// The write version of `frame`: bumped on every mutation of the
    /// frame's bytes (0 for unallocated frames, which hold no bytes).
    ///
    /// Caches that snapshot frame contents (the CPU's decoded-instruction
    /// cache) validate against this counter.
    #[inline]
    pub fn frame_version(&self, frame: Frame) -> u64 {
        self.frame(frame.0).map_or(0, |f| f.version)
    }

    /// Reads one byte at physical address `pa`, if backed.
    pub fn read_u8(&self, pa: u64) -> Option<u8> {
        let frame = self.frame(pa / PAGE_SIZE)?;
        Some(frame.bytes[(pa % PAGE_SIZE) as usize])
    }

    /// Writes one byte at physical address `pa`, if backed.
    pub fn write_u8(&mut self, pa: u64, value: u8) -> Option<()> {
        let frame = self.frame_mut(pa / PAGE_SIZE)?;
        frame.bytes[(pa % PAGE_SIZE) as usize] = value;
        frame.version += 1;
        Some(())
    }

    /// Reads `buf.len()` bytes starting at `pa` into `buf`, slice-copying
    /// one frame at a time (may span frames).
    pub fn read_bytes(&self, pa: u64, buf: &mut [u8]) -> Option<()> {
        let mut off = 0usize;
        while off < buf.len() {
            let addr = pa + off as u64;
            let in_frame = (PAGE_SIZE - addr % PAGE_SIZE) as usize;
            let n = in_frame.min(buf.len() - off);
            let frame = self.frame(addr / PAGE_SIZE)?;
            let lo = (addr % PAGE_SIZE) as usize;
            buf[off..off + n].copy_from_slice(&frame.bytes[lo..lo + n]);
            off += n;
        }
        Some(())
    }

    /// Writes `bytes` starting at `pa`, slice-copying one frame at a time
    /// (may span frames).
    ///
    /// Fails (returning `None`) without writing anything if any touched
    /// frame is unbacked.
    pub fn write_bytes(&mut self, pa: u64, bytes: &[u8]) -> Option<()> {
        // Validate every touched frame first so a failing write stays
        // all-or-nothing, matching the historic byte-loop behaviour of
        // stopping before the first unbacked byte only at frame granularity.
        let mut off = 0usize;
        while off < bytes.len() {
            let addr = pa + off as u64;
            if self.frame(addr / PAGE_SIZE).is_none() {
                return None;
            }
            off += (PAGE_SIZE - addr % PAGE_SIZE) as usize;
        }
        let mut off = 0usize;
        while off < bytes.len() {
            let addr = pa + off as u64;
            let in_frame = (PAGE_SIZE - addr % PAGE_SIZE) as usize;
            let n = in_frame.min(bytes.len() - off);
            let frame = self.frame_mut(addr / PAGE_SIZE)?;
            let lo = (addr % PAGE_SIZE) as usize;
            frame.bytes[lo..lo + n].copy_from_slice(&bytes[off..off + n]);
            frame.version += 1;
            off += n;
        }
        Some(())
    }

    /// Reads a little-endian u64 at `pa`.
    #[inline]
    pub fn read_u64(&self, pa: u64) -> Option<u64> {
        let off = (pa % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            // Frame-local fast path: one index, one 8-byte load.
            let frame = self.frame(pa / PAGE_SIZE)?;
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&frame.bytes[off..off + 8]);
            return Some(u64::from_le_bytes(buf));
        }
        let mut buf = [0u8; 8];
        self.read_bytes(pa, &mut buf)?;
        Some(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian u64 at `pa`.
    #[inline]
    pub fn write_u64(&mut self, pa: u64, value: u64) -> Option<()> {
        let off = (pa % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            let frame = self.frame_mut(pa / PAGE_SIZE)?;
            frame.bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
            frame.version += 1;
            return Some(());
        }
        self.write_bytes(pa, &value.to_le_bytes())
    }

    /// Reads a little-endian u32 at `pa`.
    #[inline]
    pub fn read_u32(&self, pa: u64) -> Option<u32> {
        let off = (pa % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            let frame = self.frame(pa / PAGE_SIZE)?;
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&frame.bytes[off..off + 4]);
            return Some(u32::from_le_bytes(buf));
        }
        let mut buf = [0u8; 4];
        self.read_bytes(pa, &mut buf)?;
        Some(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian u32 at `pa`.
    pub fn write_u32(&mut self, pa: u64, value: u32) -> Option<()> {
        self.write_bytes(pa, &value.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_frames_are_zeroed() {
        let mut mem = PhysMem::new();
        let f = mem.alloc();
        assert_eq!(mem.read_u64(f.base()), Some(0));
        assert_eq!(mem.read_u64(f.base() + PAGE_SIZE - 8), Some(0));
    }

    #[test]
    fn frame_zero_is_never_handed_out() {
        let mut mem = PhysMem::new();
        for _ in 0..16 {
            assert_ne!(mem.alloc().number(), 0);
        }
        assert_eq!(mem.read_u8(0), None);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut mem = PhysMem::new();
        let f = mem.alloc();
        mem.write_u64(f.base() + 16, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(mem.read_u64(f.base() + 16), Some(0xdead_beef_cafe_f00d));
        mem.write_u32(f.base(), 0xD503_201F).unwrap();
        assert_eq!(mem.read_u32(f.base()), Some(0xD503_201F));
    }

    #[test]
    fn unbacked_access_returns_none() {
        let mut mem = PhysMem::new();
        assert_eq!(mem.read_u8(0x1_0000_0000), None);
        assert_eq!(mem.write_u8(0x1_0000_0000, 1), None);
    }

    #[test]
    fn cross_frame_spanning_access() {
        let mut mem = PhysMem::new();
        let f1 = mem.alloc();
        let f2 = mem.alloc();
        assert_eq!(f2.number(), f1.number() + 1, "frames allocate contiguously");
        let boundary = f1.base() + PAGE_SIZE - 4;
        mem.write_u64(boundary, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.read_u64(boundary), Some(0x1122_3344_5566_7788));
    }

    #[test]
    fn frame_base_and_containing() {
        let f = Frame::containing(0x3_2100);
        assert_eq!(f.number(), 0x32);
        assert_eq!(f.base(), 0x3_2000);
    }

    #[test]
    fn every_write_path_bumps_the_frame_version() {
        let mut mem = PhysMem::new();
        let f = mem.alloc();
        assert_eq!(mem.frame_version(f), 0);
        mem.write_u8(f.base(), 1).unwrap();
        let v1 = mem.frame_version(f);
        assert!(v1 > 0);
        mem.write_u32(f.base() + 4, 2).unwrap();
        let v2 = mem.frame_version(f);
        assert!(v2 > v1);
        mem.write_u64(f.base() + 8, 3).unwrap();
        let v3 = mem.frame_version(f);
        assert!(v3 > v2);
        mem.write_bytes(f.base() + 16, &[1, 2, 3]).unwrap();
        assert!(mem.frame_version(f) > v3);
        // Reads leave the version untouched.
        let v = mem.frame_version(f);
        let mut buf = [0u8; 32];
        mem.read_bytes(f.base(), &mut buf).unwrap();
        assert_eq!(mem.frame_version(f), v);
    }

    #[test]
    fn spanning_write_to_unbacked_tail_is_all_or_nothing() {
        let mut mem = PhysMem::new();
        let f = mem.alloc();
        // No second frame: a straddling write must not touch the first.
        let boundary = f.base() + PAGE_SIZE - 4;
        assert_eq!(mem.write_u64(boundary, u64::MAX), None);
        assert_eq!(mem.read_u32(boundary), Some(0), "no partial write");
        assert_eq!(mem.frame_version(f), 0, "failed write bumps nothing");
    }
}
