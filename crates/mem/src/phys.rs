//! Sparse physical memory.

use crate::layout::PAGE_SIZE;
use std::collections::HashMap;

/// A physical page frame number.
///
/// Frames are handed out by [`PhysMem::alloc`]; the frame's base physical
/// address is `frame.base()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Frame(u64);

impl Frame {
    /// The frame containing physical address `pa`.
    pub fn containing(pa: u64) -> Frame {
        Frame(pa / PAGE_SIZE)
    }

    /// The frame number.
    pub fn number(self) -> u64 {
        self.0
    }

    /// The base physical address of this frame.
    pub fn base(self) -> u64 {
        self.0 * PAGE_SIZE
    }
}

/// Sparse byte-addressable physical memory, allocated in 4 KiB frames.
#[derive(Debug, Default)]
pub struct PhysMem {
    frames: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    next_frame: u64,
}

impl PhysMem {
    /// Creates empty physical memory.
    pub fn new() -> Self {
        PhysMem {
            frames: HashMap::new(),
            // Leave frame 0 unused so that physical address 0 stays invalid.
            next_frame: 1,
        }
    }

    /// Allocates a fresh zeroed frame.
    pub fn alloc(&mut self) -> Frame {
        let frame = Frame(self.next_frame);
        self.next_frame += 1;
        self.frames
            .insert(frame.0, Box::new([0u8; PAGE_SIZE as usize]));
        frame
    }

    /// Whether `frame` is backed by storage.
    pub fn is_allocated(&self, frame: Frame) -> bool {
        self.frames.contains_key(&frame.0)
    }

    /// Number of allocated frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Reads one byte at physical address `pa`, if backed.
    pub fn read_u8(&self, pa: u64) -> Option<u8> {
        let frame = self.frames.get(&(pa / PAGE_SIZE))?;
        Some(frame[(pa % PAGE_SIZE) as usize])
    }

    /// Writes one byte at physical address `pa`, if backed.
    pub fn write_u8(&mut self, pa: u64, value: u8) -> Option<()> {
        let frame = self.frames.get_mut(&(pa / PAGE_SIZE))?;
        frame[(pa % PAGE_SIZE) as usize] = value;
        Some(())
    }

    /// Reads `buf.len()` bytes starting at `pa` (may span frames).
    pub fn read_bytes(&self, pa: u64, buf: &mut [u8]) -> Option<()> {
        for (i, byte) in buf.iter_mut().enumerate() {
            *byte = self.read_u8(pa + i as u64)?;
        }
        Some(())
    }

    /// Writes `bytes` starting at `pa` (may span frames).
    pub fn write_bytes(&mut self, pa: u64, bytes: &[u8]) -> Option<()> {
        for (i, &byte) in bytes.iter().enumerate() {
            self.write_u8(pa + i as u64, byte)?;
        }
        Some(())
    }

    /// Reads a little-endian u64 at `pa`.
    pub fn read_u64(&self, pa: u64) -> Option<u64> {
        let mut buf = [0u8; 8];
        self.read_bytes(pa, &mut buf)?;
        Some(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian u64 at `pa`.
    pub fn write_u64(&mut self, pa: u64, value: u64) -> Option<()> {
        self.write_bytes(pa, &value.to_le_bytes())
    }

    /// Reads a little-endian u32 at `pa`.
    pub fn read_u32(&self, pa: u64) -> Option<u32> {
        let mut buf = [0u8; 4];
        self.read_bytes(pa, &mut buf)?;
        Some(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian u32 at `pa`.
    pub fn write_u32(&mut self, pa: u64, value: u32) -> Option<()> {
        self.write_bytes(pa, &value.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_frames_are_zeroed() {
        let mut mem = PhysMem::new();
        let f = mem.alloc();
        assert_eq!(mem.read_u64(f.base()), Some(0));
        assert_eq!(mem.read_u64(f.base() + PAGE_SIZE - 8), Some(0));
    }

    #[test]
    fn frame_zero_is_never_handed_out() {
        let mut mem = PhysMem::new();
        for _ in 0..16 {
            assert_ne!(mem.alloc().number(), 0);
        }
        assert_eq!(mem.read_u8(0), None);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut mem = PhysMem::new();
        let f = mem.alloc();
        mem.write_u64(f.base() + 16, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(mem.read_u64(f.base() + 16), Some(0xdead_beef_cafe_f00d));
        mem.write_u32(f.base(), 0xD503_201F).unwrap();
        assert_eq!(mem.read_u32(f.base()), Some(0xD503_201F));
    }

    #[test]
    fn unbacked_access_returns_none() {
        let mut mem = PhysMem::new();
        assert_eq!(mem.read_u8(0x1_0000_0000), None);
        assert_eq!(mem.write_u8(0x1_0000_0000, 1), None);
    }

    #[test]
    fn cross_frame_spanning_access() {
        let mut mem = PhysMem::new();
        let f1 = mem.alloc();
        let f2 = mem.alloc();
        assert_eq!(f2.number(), f1.number() + 1, "frames allocate contiguously");
        let boundary = f1.base() + PAGE_SIZE - 4;
        mem.write_u64(boundary, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.read_u64(boundary), Some(0x1122_3344_5566_7788));
    }

    #[test]
    fn frame_base_and_containing() {
        let f = Frame::containing(0x3_2100);
        assert_eq!(f.number(), 0x32);
        assert_eq!(f.base(), 0x3_2000);
    }
}
