//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--exp all|keys|fig2|fig3|fig4|tab1|tab2|cocci|security] [--fast]
//! ```

use camo_analysis::{analyze, generate_linux52_corpus};
use camo_attacks::{render_matrix, security_matrix};
use camo_bench::{fig2, key_switch};
use camo_lmbench as lmbench;
use camo_mem::layout::{table1_rows, PointerLayout};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");

    let all = exp == "all";
    if all || exp == "keys" {
        keys();
    }
    if all || exp == "fig2" {
        figure2(if fast { 20 } else { 200 });
    }
    if all || exp == "fig3" {
        figure3(if fast { 5 } else { 20 });
    }
    if all || exp == "fig4" {
        figure4();
    }
    if all || exp == "tab1" {
        table1();
    }
    if all || exp == "tab2" {
        table2();
    }
    if all || exp == "cocci" {
        cocci();
    }
    if all || exp == "security" {
        security();
    }
}

fn heading(title: &str) {
    println!("\n=== {title} ===");
}

fn keys() {
    heading("§6.1.1 Key management — cycles per key switch");
    let cost = key_switch::measure(20);
    println!("paper:    9 cycles/key (avg 8.88, var .004) on the PA-analogue");
    println!(
        "measured: install {:.2} cycles/key (XOM setter), restore {:.2} cycles/key \
         (thread_struct), average {:.2} cycles/key",
        cost.install_per_key, cost.restore_per_key, cost.avg_per_key
    );
}

fn figure2(iters: u64) {
    heading("Figure 2: function call overhead (ns at 1.2 GHz)");
    println!(
        "paper shape: Clang SP-only < Camouflage (32b SP + fn addr) < PARTS (16b SP + 48b fn id)"
    );
    let costs = fig2::all(iters);
    let base = costs[0].cycles_per_call;
    println!(
        "{:<14} {:>12} {:>10} {:>14}",
        "scheme", "cycles/call", "ns/call", "overhead (ns)"
    );
    for c in &costs {
        println!(
            "{:<14} {:>12.2} {:>10.2} {:>14.2}",
            c.scheme.to_string(),
            c.cycles_per_call,
            c.ns_per_call,
            (c.cycles_per_call - base) / 1.2
        );
    }
}

fn figure3(iters: u64) {
    heading("Figure 3: lmbench latencies, relative to the unprotected kernel");
    println!("paper shape: double-digit percentual overhead at syscall level");
    match lmbench::figure3(iters) {
        Ok(rows) => {
            println!(
                "{:<12} {:>12} {:>12} {:>12} {:>10} {:>10}",
                "benchmark", "none (cyc)", "bwd (cyc)", "full (cyc)", "bwd rel", "full rel"
            );
            for r in &rows {
                println!(
                    "{:<12} {:>12.0} {:>12.0} {:>12.0} {:>10.3} {:>10.3}",
                    r.name,
                    r.none,
                    r.backward,
                    r.full,
                    r.rel_backward(),
                    r.rel_full()
                );
            }
        }
        Err(e) => println!("error: {e}"),
    }
}

fn figure4() {
    heading("Figure 4: user-space workloads, relative runtime");
    println!("paper shape: jpeg < build < download; geometric mean < 4%");
    match lmbench::figure4() {
        Ok(rows) => {
            println!(
                "{:<14} {:>14} {:>14} {:>14} {:>9} {:>9}",
                "workload", "none (cyc)", "bwd (cyc)", "full (cyc)", "bwd rel", "full rel"
            );
            for r in &rows {
                println!(
                    "{:<14} {:>14} {:>14} {:>14} {:>9.4} {:>9.4}",
                    r.name,
                    r.none,
                    r.backward,
                    r.full,
                    r.rel_backward(),
                    r.rel_full()
                );
            }
            println!(
                "geometric mean of full-protection overhead: {:.2}% (paper: < 4%)",
                (lmbench::geomean_full_overhead(&rows) - 1.0) * 100.0
            );
        }
        Err(e) => println!("error: {e}"),
    }
}

fn table1() {
    heading("Table 1: VMSAv8 address ranges");
    println!("{:<20} {:<20} {:<7} {}", "top", "bottom", "bit 55", "usage");
    for (top, bottom, bit55, usage) in table1_rows() {
        println!(
            "{:<#20x} {:<#20x} {:<7} {}",
            top,
            bottom,
            bit55.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            usage
        );
    }
}

fn table2() {
    heading("Table 2: AArch64 pointer layout on Linux");
    for (name, layout) in [
        ("user pointer (TBI on)", PointerLayout::user()),
        ("kernel pointer (TBI off)", PointerLayout::kernel()),
    ] {
        println!("{name}: PAC bits available = {}", layout.pac_bits());
        for (bits, meaning) in layout.table2_fields() {
            println!("  bits {bits:<7} {meaning}");
        }
    }
}

fn cocci() {
    heading("§5.3 Coccinelle semantic search (synthetic Linux 5.2 corpus)");
    let report = analyze(&generate_linux52_corpus(52));
    println!("paper:    1285 run-time-assigned fn-ptr members, 504 types, 229 with more than one");
    println!(
        "measured: {} members, {} types, {} multi-pointer ({} individually protected)",
        report.fn_ptr_members,
        report.affected_types,
        report.multi_ptr_types,
        report.individually_protected()
    );
}

fn security() {
    heading("§6.2 Security evaluation matrix");
    let results = security_matrix();
    print!("{}", render_matrix(&results));
    let mismatches = results.iter().filter(|r| !r.matches_paper()).count();
    println!(
        "{} attacks evaluated, {} match the paper's claims, {} mismatches",
        results.len(),
        results.len() - mismatches,
        mismatches
    );
}
