//! Wall-clock regression check for the fast-path execution engine.
//!
//! Runs the Figure-2 call loop and the lmbench syscall mix with the
//! simulator's caches (software TLB, decoded-instruction cache, warm QARMA
//! schedules) on and off, prints a comparison table, and emits
//! `BENCH_2.json` for CI to archive. Two properties are checked:
//!
//! 1. **Invisibility** (hard): simulated cycle and instruction counts must
//!    be bit-identical with caches on or off. A mismatch exits non-zero.
//! 2. **Speed** (reported): the cached hot loop should run ≥ 5× the
//!    steps/sec of the uncached per-byte path.

use camo_bench::perf::{self, PerfSample};
use std::fmt::Write as _;

/// Hot-loop iterations (the Figure-2 call loop is ~14 insns/iteration).
const HOT_LOOP_ITERS: u64 = 100_000;
/// Rounds of the full syscall mix.
const SYSCALL_REPS: u64 = 40;
/// The speedup the fast path is expected to deliver on the hot loop.
const SPEEDUP_TARGET: f64 = 5.0;
/// Repeats per measurement; the fastest is reported (shared CI hosts are
/// noisy, and the minimum wall time is the least contaminated estimate).
const REPEATS: usize = 3;

/// Best-of-[`REPEATS`] wall time; simulated counters must agree exactly
/// across repeats (they are deterministic).
fn best(run: impl Fn() -> PerfSample) -> PerfSample {
    let first = run();
    (1..REPEATS).fold(first, |acc, _| {
        let s = run();
        assert_eq!(
            (s.instructions, s.cycles),
            (acc.instructions, acc.cycles),
            "simulation must be deterministic across repeats"
        );
        if s.steps_per_sec > acc.steps_per_sec {
            s
        } else {
            acc
        }
    })
}

struct Workload {
    name: &'static str,
    cached: PerfSample,
    uncached: PerfSample,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.cached.steps_per_sec / self.uncached.steps_per_sec.max(1e-9)
    }

    fn cycles_identical(&self) -> bool {
        self.cached.cycles == self.uncached.cycles
            && self.cached.instructions == self.uncached.instructions
    }
}

fn sample_json(s: &PerfSample) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \"steps_per_sec\": {:.1}}}",
        s.instructions, s.cycles, s.wall_secs, s.steps_per_sec
    )
}

fn main() {
    let workloads = [
        Workload {
            name: "fig2_hot_loop",
            // Run uncached first so the cached run cannot benefit from a
            // warmer host (allocator, branch predictors).
            uncached: best(|| perf::hot_loop(HOT_LOOP_ITERS, false)),
            cached: best(|| perf::hot_loop(HOT_LOOP_ITERS, true)),
        },
        Workload {
            name: "lmbench_syscall_mix",
            uncached: best(|| perf::syscall_mix(SYSCALL_REPS, false)),
            cached: best(|| perf::syscall_mix(SYSCALL_REPS, true)),
        },
    ];

    let mut all_identical = true;
    println!("perfcheck: simulator throughput, caches on vs off");
    println!(
        "{:<22} {:>14} {:>14} {:>9}  cycles",
        "workload", "cached st/s", "uncached st/s", "speedup"
    );
    for w in &workloads {
        all_identical &= w.cycles_identical();
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x  {}",
            w.name,
            w.cached.steps_per_sec,
            w.uncached.steps_per_sec,
            w.speedup(),
            if w.cycles_identical() {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    let hot_speedup = workloads[0].speedup();

    let mut json = String::from("{\n  \"bench\": \"perfcheck\",\n  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"cached\": {}, \"uncached\": {}, \"speedup\": {:.2}, \"cycles_identical\": {}}}{}\n",
            w.name,
            sample_json(&w.cached),
            sample_json(&w.uncached),
            w.speedup(),
            w.cycles_identical(),
            if i + 1 < workloads.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"speedup_target\": {SPEEDUP_TARGET:.1},\n  \"hot_loop_speedup\": {hot_speedup:.2},\n  \"cycles_identical\": {all_identical}\n}}\n"
    );
    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    println!("wrote BENCH_2.json");

    if !all_identical {
        eprintln!("FAIL: caches changed simulated cycle/instruction counts");
        std::process::exit(1);
    }
    if hot_speedup < SPEEDUP_TARGET {
        eprintln!(
            "note: hot-loop speedup {hot_speedup:.2}x below the {SPEEDUP_TARGET:.1}x target \
             (non-gating; host-dependent)"
        );
    }
}
