//! Wall-clock regression checks for the simulator's throughput layers.
//!
//! Eight measurement modes, selected by `--smp` / `--fleet` / `--blocks` /
//! `--traces` / `--fuzz` / `--telemetry` / `--fleet-steal`, plus two meta
//! modes (`--all`, `--check-history`):
//!
//! * **Default (fast-path A/B, `BENCH_2.json`)** — runs the Figure-2 call
//!   loop and the lmbench syscall mix with the simulator's caches
//!   (software TLB, decoded-instruction cache, warm QARMA schedules + MAC
//!   memo) on and off. Two properties:
//!   1. **Invisibility** (hard): simulated cycle and instruction counts
//!      must be bit-identical with caches on or off. Mismatch exits
//!      non-zero.
//!   2. **Speed** (reported): the cached hot loop should run ≥ 5× the
//!      uncached per-byte path.
//!
//! * **`--smp` (sharded scaling, `BENCH_3.json`)** — runs the lmbench mix
//!   through `camo_smp::ShardedDriver` at increasing shard counts. Each
//!   point is measured twice: parallel (wall scaling on *this* host,
//!   bounded by its core count) and sequential (isolated per-shard
//!   capacity, the pool's aggregate rate given one core per shard). One
//!   hard property: both modes must produce bit-identical simulated
//!   totals — sharding is architecturally invisible.
//!
//! * **`--fleet` (multi-tenant fleet, `BENCH_4.json`)** — serves the
//!   standard tenant mix (lmbench traffic, a fork/exec churn storm,
//!   module load/unload churn, and a context-switch-heavy tenant) through
//!   `camo_smp::FleetDriver`, measured in both execution modes. Reports
//!   per-workload throughput and p50/p90/p99 simulated-cycle latency
//!   percentiles, and gates (hard) on the parallel and sequential runs
//!   agreeing bit for bit on every simulated quantity — including each
//!   tenant's latency histogram.
//!
//! * **`--blocks` (block-engine A/B, `BENCH_5.json`)** — runs the
//!   Figure-2 call loop and the standard fleet tenant mix with the
//!   basic-block translation engine on and off (fast-path caches on in
//!   both arms). Three hard properties, any failure exits non-zero:
//!   1. **Invisibility**: simulated cycle and instruction counts are
//!      bit-identical with the engine on or off, on both workloads.
//!   2. **Architectural identity**: the fleet's per-tenant counters
//!      (`CpuStats::arch_eq`) and latency histograms agree across the
//!      engine toggle.
//!   3. **Mode identity**: within each arm, parallel and sequential fleet
//!      runs agree bit for bit (the `--fleet` gate, at both points).
//!   The ≥2× speedup target is reported (non-gating; host-dependent).
//!
//! * **`--traces` (trace-engine A/B, `BENCH_7.json`)** — runs the same
//!   two workloads as `--blocks` with the *block* engine pinned on in
//!   both arms and the trace tier toggled. The same three hard
//!   properties gate (invisibility, architectural identity, mode
//!   identity); the ≥2× speedup target — over the blocks-on baseline,
//!   i.e. on top of BENCH_5's win — is reported (non-gating;
//!   host-dependent). The JSON carries the trace-tier observability
//!   counters (`trace_hits`/`trace_misses`/`trace_invalidations` and
//!   `chain_follows`) from the on-arm.
//!
//! * **`--fuzz` (adversarial traffic plane, `BENCH_6.json`)** — serves
//!   seeded fuzz tenants mounting the six `HostileOp` attacks alongside
//!   benign tenants on the same fleet, once per block-engine arm. Hard
//!   gates, any failure exits non-zero:
//!   1. **Attribution**: every hostile op produced exactly its declared
//!      expected outcome (right PAC-failure key class, right task) and
//!      nothing else.
//!   2. **Blast radius**: zero §5.4 failure-policy events in benign op
//!      windows, and every benign tenant's simulated totals bit-identical
//!      to an isolated-baseline run of that tenant alone.
//!   3. **Engine invariance**: both arms architecturally identical,
//!      hostile ledgers included; parallel and sequential runs agree
//!      within each arm.
//!   The §5.4 false-positive rate and time-to-kill distribution are
//!   reported in the JSON.
//!
//! * **`--telemetry` (streaming stats plane A/B, `BENCH_8.json`)** — runs
//!   the standard fleet mix with the per-shard telemetry ring on and off.
//!   Telemetry has *no* architectural surface, so the gates are the
//!   strictest in the family, all hard:
//!   1. **Bit-identity**: the two arms agree on every simulated quantity
//!      including all 22 `CpuStats` counters (full equality, not just
//!      `arch_eq`) and per-tenant latency histograms.
//!   2. **Mode identity**: parallel ≡ sequential within each arm (the
//!      series themselves included — `TenantReport` equality covers them).
//!   3. **Silence / completeness**: the off arm carries no time series
//!      anywhere; the on arm carries a non-empty series for every tenant
//!      whose window sums reproduce the end-of-run totals exactly.
//!   4. **Overhead**: draining the plane costs < 2% fleet capacity.
//!   5. **Security**: the 24-row attack matrix still matches the paper.
//!
//! * **`--fleet-steal` (work-stealing scheduler, `BENCH_9.json`)** — the
//!   BENCH_4 tenant mix scaled out dense: 64 tenants with mixed weights
//!   and cycle budgets on 8 single-core shards (16 on 4 with `--smoke`),
//!   telemetry on, served at worker counts 1, 2, N and 2N plus the legacy
//!   1:1 thread-per-shard mode. Hard gates, any failure exits non-zero:
//!   1. **Bit-identity under stealing**: every pooled run and the 1:1 run
//!      are `simulation_identical` to the sequential oracle.
//!   2. **Worker invariance**: the pooled runs agree pairwise across
//!      worker counts.
//!   3. **Telemetry under migration**: every tenant's window sums
//!      reproduce its end-of-run totals despite shard tasks migrating
//!      between workers.
//!   4. **p99 latency**: the fleet-wide p99 simulated-cycle op latency
//!      (deterministic in the plan) stays under a fixed target.
//!   The ≥1.5× wall speedup of the pool over the 1:1 driver gates only on
//!   hosts with ≥4 cores (below that the two modes converge by
//!   construction) and is recorded — with the worker count and steal
//!   count — everywhere.
//!
//! * **`--all`** — runs every family above in sequence (exit code is the
//!   worst of them) and appends one row of headline numbers — host
//!   fingerprint, seed, per-family speedups and capacities — to
//!   `BENCH_HISTORY.jsonl`, the durable perf history.
//!
//! * **`--check-history`** — no measurement: loads `BENCH_HISTORY.jsonl`
//!   and fails (exit 1) if the newest row regressed any comparable
//!   headline by more than 15% against the last row from the same host
//!   class and smoke setting.
//!
//! `--seed N` pins the boot seed used by the syscall-mix machine and the
//! shard/tenant partitioning; it is emitted into the JSON so A/B runs and
//! shard partitions reproduce byte for byte. `--smoke` shrinks the
//! `--smp`, `--fleet`, `--blocks`, `--traces` and `--telemetry` runs for
//! CI runners.
//! Every mode also prints a per-workload speedup table to stderr so A/B
//! ratios are scrapeable from CI logs without parsing the JSON. The
//! emitted `BENCH_*.json` schemas are documented in `BENCHMARKS.md`.

use camo_bench::perf::{self, PerfSample, ScalingPoint};
use camo_bench::runner::{self, best_of_fleet_ab, write_json};
use camo_bench::{fleet, history};
use std::fmt::Write as _;
use std::path::Path;

/// Hot-loop iterations (the Figure-2 call loop is ~14 insns/iteration).
const HOT_LOOP_ITERS: u64 = 100_000;
/// Rounds of the full syscall mix.
const SYSCALL_REPS: u64 = 40;
/// The speedup the fast path is expected to deliver on the hot loop.
const SPEEDUP_TARGET: f64 = 5.0;
/// Capacity speedup expected at 8 shards vs 1 on the scaling curve.
const SCALING_TARGET: f64 = 3.0;
/// Repeats per measurement; the fastest is reported (shared CI hosts are
/// noisy, and the minimum wall time is the least contaminated estimate).
const REPEATS: usize = 3;
/// Default boot seed (the kernel's default, pinned here so the emitted
/// JSON is self-describing).
const DEFAULT_SEED: u64 = 0xCAF0_0D5E;
/// Syscalls across all shards per scaling point (full / `--smoke`).
const SCALING_SYSCALLS: u64 = 24_000;
const SMOKE_SYSCALLS: u64 = 2_000;

/// Best-of-`n` wall time: keeps the sample with the highest `rate`, and
/// asserts the deterministic `fingerprint` (simulated counters) agrees
/// across every repeat.
fn best_of<T>(
    n: usize,
    run: impl Fn() -> T,
    rate: impl Fn(&T) -> f64,
    fingerprint: impl Fn(&T) -> (u64, u64),
) -> T {
    let first = run();
    (1..n).fold(first, |acc, _| {
        let s = run();
        assert_eq!(
            fingerprint(&s),
            fingerprint(&acc),
            "simulation must be deterministic across repeats"
        );
        if rate(&s) > rate(&acc) {
            s
        } else {
            acc
        }
    })
}

/// Best-of-[`REPEATS`] for the BENCH_2 samples.
fn best(run: impl Fn() -> PerfSample) -> PerfSample {
    best_of(
        REPEATS,
        run,
        |s| s.steps_per_sec,
        |s| (s.instructions, s.cycles),
    )
}

/// Per-workload speedup table, printed to **stderr** by every run mode
/// so A/B ratios can be scraped from CI logs without parsing the JSON
/// (stdout carries the mode-specific report; stderr carries this uniform
/// summary plus FAIL/note lines). Each row is `(workload, fast, base)`
/// in steps/sec; the labels name what "fast" and "base" mean per mode.
fn speedup_table(mode: &str, fast_label: &str, base_label: &str, rows: &[(String, f64, f64)]) {
    eprintln!("speedup table [{mode}]:");
    eprintln!(
        "  {:<24} {:>14} {:>14} {:>9}",
        "workload", fast_label, base_label, "speedup"
    );
    for (name, fast, base) in rows {
        eprintln!(
            "  {:<24} {:>14.0} {:>14.0} {:>8.2}x",
            name,
            fast,
            base,
            fast / base.max(1e-9)
        );
    }
}

struct Workload {
    name: &'static str,
    cached: PerfSample,
    uncached: PerfSample,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.cached.steps_per_sec / self.uncached.steps_per_sec.max(1e-9)
    }

    fn cycles_identical(&self) -> bool {
        self.cached.cycles == self.uncached.cycles
            && self.cached.instructions == self.uncached.instructions
    }
}

fn sample_json(s: &PerfSample) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \
         \"steps_per_sec\": {:.1}, \"pac_memo_hits\": {}, \"pac_memo_misses\": {}}}",
        s.instructions, s.cycles, s.wall_secs, s.steps_per_sec, s.pac_memo_hits, s.pac_memo_misses
    )
}

struct Args {
    seed: u64,
    smp: bool,
    fleet: bool,
    blocks: bool,
    traces: bool,
    fuzz: bool,
    telemetry: bool,
    fleet_steal: bool,
    all: bool,
    check_history: bool,
    smoke: bool,
    shards: Vec<usize>,
    shards_given: bool,
    syscalls: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: DEFAULT_SEED,
        smp: false,
        fleet: false,
        blocks: false,
        traces: false,
        fuzz: false,
        telemetry: false,
        fleet_steal: false,
        all: false,
        check_history: false,
        smoke: false,
        shards: vec![1, 2, 4, 8],
        shards_given: false,
        syscalls: None,
    };
    let mut shards_given = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().expect("--seed takes a value");
                args.seed = parse_u64(&v);
            }
            "--smp" => args.smp = true,
            "--fleet" => args.fleet = true,
            "--blocks" => args.blocks = true,
            "--traces" => args.traces = true,
            "--fuzz" => args.fuzz = true,
            "--telemetry" => args.telemetry = true,
            "--fleet-steal" => args.fleet_steal = true,
            "--all" => args.all = true,
            "--check-history" => args.check_history = true,
            "--smoke" => args.smoke = true,
            "--shards" => {
                let v = it.next().expect("--shards takes a comma-separated list");
                args.shards = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard counts are integers"))
                    .collect();
                shards_given = true;
            }
            "--syscalls" => {
                let v = it.next().expect("--syscalls takes a value");
                args.syscalls = Some(parse_u64(&v));
            }
            other => panic!(
                "unknown argument {other} \
                 (try --seed/--smp/--fleet/--blocks/--traces/--fuzz/--telemetry/\
                 --fleet-steal/--all/--check-history/--smoke/--shards)"
            ),
        }
    }
    // --smoke only shrinks the *default* curve; an explicit --shards wins.
    if args.smoke && !shards_given {
        args.shards = vec![1, 2];
    }
    args.shards_given = shards_given;
    args
}

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex seed")
    } else {
        s.parse().expect("decimal seed")
    }
}

/// One mode's verdict: the process exit code plus the headline numbers
/// `--all` folds into the durable history row. Keys ending in
/// `_speedup` / `_steps_per_sec` participate in `--check-history`
/// regression judgement; the rest ride along for the record.
struct Outcome {
    code: i32,
    headlines: Vec<(String, f64)>,
}

impl Outcome {
    fn new(code: i32, headlines: Vec<(String, f64)>) -> Outcome {
        Outcome { code, headlines }
    }
}

/// One history headline row.
fn head(key: &str, value: f64) -> (String, f64) {
    (key.to_string(), value)
}

fn run_fastpath(seed: u64) -> Outcome {
    let workloads = [
        Workload {
            name: "fig2_hot_loop",
            // Run uncached first so the cached run cannot benefit from a
            // warmer host (allocator, branch predictors).
            uncached: best(|| perf::hot_loop(HOT_LOOP_ITERS, false)),
            cached: best(|| perf::hot_loop(HOT_LOOP_ITERS, true)),
        },
        Workload {
            name: "lmbench_syscall_mix",
            uncached: best(|| perf::syscall_mix(SYSCALL_REPS, false, seed)),
            cached: best(|| perf::syscall_mix(SYSCALL_REPS, true, seed)),
        },
    ];

    let mut all_identical = true;
    println!("perfcheck: simulator throughput, caches on vs off (seed {seed:#x})");
    println!(
        "{:<22} {:>14} {:>14} {:>9} {:>12}  cycles",
        "workload", "cached st/s", "uncached st/s", "speedup", "memo h/m"
    );
    for w in &workloads {
        all_identical &= w.cycles_identical();
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x {:>6}/{:<6} {}",
            w.name,
            w.cached.steps_per_sec,
            w.uncached.steps_per_sec,
            w.speedup(),
            w.cached.pac_memo_hits,
            w.cached.pac_memo_misses,
            if w.cycles_identical() {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    let hot_speedup = workloads[0].speedup();
    speedup_table(
        "fastpath",
        "cached st/s",
        "uncached st/s",
        &workloads
            .iter()
            .map(|w| {
                (
                    w.name.to_string(),
                    w.cached.steps_per_sec,
                    w.uncached.steps_per_sec,
                )
            })
            .collect::<Vec<_>>(),
    );

    let mut json = String::from("{\n  \"bench\": \"perfcheck\",\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"cached\": {}, \"uncached\": {}, \"speedup\": {:.2}, \"cycles_identical\": {}}}{}\n",
            w.name,
            sample_json(&w.cached),
            sample_json(&w.uncached),
            w.speedup(),
            w.cycles_identical(),
            if i + 1 < workloads.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"speedup_target\": {SPEEDUP_TARGET:.1},\n  \"hot_loop_speedup\": {hot_speedup:.2},\n  \"cycles_identical\": {all_identical}\n}}\n"
    );
    write_json("BENCH_2.json", &json);

    let headlines = vec![
        head("bench2_hot_loop_speedup", hot_speedup),
        head(
            "bench2_hot_loop_cached_steps_per_sec",
            workloads[0].cached.steps_per_sec,
        ),
    ];
    if !all_identical {
        eprintln!("FAIL: caches changed simulated cycle/instruction counts");
        return Outcome::new(1, headlines);
    }
    if hot_speedup < SPEEDUP_TARGET {
        eprintln!(
            "note: hot-loop speedup {hot_speedup:.2}x below the {SPEEDUP_TARGET:.1}x target \
             (non-gating; host-dependent)"
        );
    }
    Outcome::new(0, headlines)
}

fn run_smp(args: &Args) -> Outcome {
    let total = args.syscalls.unwrap_or(if args.smoke {
        SMOKE_SYSCALLS
    } else {
        SCALING_SYSCALLS
    });
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "perfcheck --smp: lmbench-mix scaling, {total} syscalls/point, \
         seed {:#x}, host cores {host_cores}",
        args.seed
    );
    println!(
        "{:>7} {:>12} {:>16} {:>16} {:>10}  totals",
        "shards", "wall secs", "wall st/s", "capacity st/s", "cap. x"
    );

    let points: Vec<ScalingPoint> = args
        .shards
        .iter()
        .map(|&n| perf::smp_scaling(n, total, args.seed))
        .collect();
    // Normalize against the smallest shard count actually measured (the
    // 1-shard point on the default curve); a custom --shards list without
    // a 1-shard entry still gets a honest baseline, recorded in the JSON.
    let base = points
        .iter()
        .min_by_key(|p| p.shards)
        .expect("at least one point");
    let baseline_shards = base.shards;
    let base_capacity = base.capacity_steps_per_sec.max(1e-9);
    let base_wall = base.parallel_steps_per_sec.max(1e-9);
    let mut all_identical = true;
    for p in &points {
        all_identical &= p.simulation_identical;
        println!(
            "{:>7} {:>12.3} {:>16.0} {:>16.0} {:>9.2}x  {}",
            p.shards,
            p.parallel_wall_secs,
            p.parallel_steps_per_sec,
            p.capacity_steps_per_sec,
            p.capacity_steps_per_sec / base_capacity,
            if p.simulation_identical {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    let top = points
        .iter()
        .max_by_key(|p| p.shards)
        .expect("at least one point");
    let capacity_speedup = top.capacity_steps_per_sec / base_capacity;
    let wall_speedup = top.parallel_steps_per_sec / base_wall;
    // Wall scaling is bounded by the host's core count: with fewer cores
    // than shards, the parallel shards time-slice and the wall speedup
    // can legitimately sit at (or below) 1x while capacity scales — make
    // the blind spot explicit instead of letting the number mislead.
    let wall_note = if host_cores < top.shards {
        Some(format!(
            "wall speedup measured with {} pool worker(s) for {} shards on a \
             {host_cores}-core host, so this number understates scaling; the \
             worker and steal counts are recorded per point and in the history \
             row — use capacity_steps_per_sec for the pool's service rate",
            top.host_workers, top.shards
        ))
    } else {
        None
    };
    if let Some(note) = &wall_note {
        eprintln!("disclaimer: {note}");
    }
    speedup_table(
        "smp",
        "capacity st/s",
        "baseline st/s",
        &points
            .iter()
            .map(|p| {
                (
                    format!("lmbench_mix@{}shards", p.shards),
                    p.capacity_steps_per_sec,
                    base_capacity,
                )
            })
            .collect::<Vec<_>>(),
    );

    let mut json = String::from("{\n  \"bench\": \"smp_scaling\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"total_syscalls\": {total},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"syscalls\": {}, \"instructions\": {}, \"cycles\": {}, \
             \"parallel_wall_secs\": {:.6}, \"parallel_steps_per_sec\": {:.1}, \
             \"capacity_steps_per_sec\": {:.1}, \"host_workers\": {}, \"steals\": {}, \
             \"simulation_identical\": {}}}{}\n",
            p.shards,
            p.syscalls,
            p.instructions,
            p.cycles,
            p.parallel_wall_secs,
            p.parallel_steps_per_sec,
            p.capacity_steps_per_sec,
            p.host_workers,
            p.steals,
            p.simulation_identical,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"scaling_target\": {SCALING_TARGET:.1},\n  \
         \"baseline_shards\": {baseline_shards},\n  \
         \"capacity_speedup_max_vs_baseline\": {capacity_speedup:.2},\n  \
         \"wall_speedup_max_vs_baseline\": {wall_speedup:.2},\n"
    );
    if let Some(note) = &wall_note {
        let _ = writeln!(json, "  \"wall_speedup_note\": \"{note}\",");
    }
    let _ = write!(json, "  \"simulation_identical\": {all_identical}\n}}\n");
    write_json("BENCH_3.json", &json);

    let mut headlines = vec![
        head("bench3_capacity_speedup", capacity_speedup),
        head(
            "bench3_top_capacity_steps_per_sec",
            top.capacity_steps_per_sec,
        ),
    ];
    // The context the wall-speedup disclaimer used to leave unrecorded:
    // the top point's actual pool shape rides along in the history row.
    headlines.extend(runner::exec_headlines(
        "bench3",
        top.host_workers,
        top.steals,
    ));
    if !all_identical {
        eprintln!("FAIL: parallel and sequential sharding disagreed on simulated totals");
        return Outcome::new(1, headlines);
    }
    if capacity_speedup < SCALING_TARGET && points.len() > 1 {
        eprintln!(
            "note: capacity speedup {capacity_speedup:.2}x below the {SCALING_TARGET:.1}x target \
             (non-gating; host-dependent)"
        );
    }
    if wall_speedup < capacity_speedup / 2.0 {
        eprintln!(
            "note: wall speedup {wall_speedup:.2}x trails capacity {capacity_speedup:.2}x — \
             this host has {host_cores} core(s); parallel wall scaling needs as many cores as shards"
        );
    }
    Outcome::new(0, headlines)
}

/// Cores per fleet shard machine (2: migration and cross-core key
/// restores are part of the tenant mix).
const FLEET_CPUS: usize = 2;
/// Fleet shard counts (full / `--smoke`).
const FLEET_SHARDS: usize = 4;
const FLEET_SMOKE_SHARDS: usize = 2;

/// Shard count for the single-plan fleet modes (`--fleet` / `--blocks` /
/// `--traces` / `--fuzz` / `--telemetry`): an explicit `--shards` uses
/// its first value, otherwise the full/smoke defaults apply.
fn fleet_shards(args: &Args) -> usize {
    if args.shards_given {
        args.shards[0]
    } else if args.smoke {
        FLEET_SMOKE_SHARDS
    } else {
        FLEET_SHARDS
    }
}

fn hist_json(h: &camo_bench::workloads::LatencyHistogram) -> String {
    format!(
        "{{\"count\": {}, \"min\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        h.count(),
        h.min(),
        h.mean(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.max()
    )
}

fn run_fleet(args: &Args) -> Outcome {
    let shards = fleet_shards(args);
    let tenants = fleet::standard_tenants(args.smoke);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "perfcheck --fleet: {} tenants x {shards} shards x {FLEET_CPUS} cores, seed {:#x}, host cores {host_cores}",
        tenants.len(),
        args.seed
    );

    let m = fleet::measure(shards, FLEET_CPUS, args.seed, tenants);
    let par = &m.parallel;
    let seq = &m.sequential;

    println!(
        "{:<12} {:<18} {:>7} {:>9} {:>12} {:>9} {:>9} {:>9}",
        "tenant", "workload", "ops", "syscalls", "cycles", "p50", "p90", "p99"
    );
    for t in &par.tenants {
        println!(
            "{:<12} {:<18} {:>7} {:>9} {:>12} {:>9} {:>9} {:>9}",
            t.name,
            t.workload,
            t.totals.ops,
            t.totals.syscalls,
            t.totals.cycles,
            t.totals.latency.p50(),
            t.totals.latency.p90(),
            t.totals.latency.p99()
        );
    }
    println!(
        "totals: {} syscalls, {} instructions, {} cycles | wall {:.3}s parallel / {:.3}s sequential | {}",
        par.syscalls,
        par.instructions,
        par.cycles,
        par.wall_secs,
        seq.wall_secs,
        if m.identical { "identical" } else { "MISMATCH" }
    );
    speedup_table(
        "fleet",
        "parallel st/s",
        "sequential st/s",
        &[(
            "fleet_mix".to_string(),
            par.steps_per_sec(),
            par.instructions as f64 / seq.wall_secs.max(1e-9),
        )],
    );

    let mut json = String::from("{\n  \"bench\": \"fleet\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"tenants\": [\n");
    for (i, t) in par.tenants.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"workload\": \"{}\", \"ops\": {}, \"syscalls\": {}, \
             \"instructions\": {}, \"cycles\": {}, \"ops_per_wall_sec\": {:.1}, \
             \"steps_per_sec\": {:.1}, \"latency_cycles\": {}}}{}\n",
            t.name,
            t.workload,
            t.totals.ops,
            t.totals.syscalls,
            t.totals.instructions,
            t.totals.cycles,
            t.totals.ops as f64 / par.wall_secs.max(1e-9),
            t.totals.instructions as f64 / par.wall_secs.max(1e-9),
            hist_json(&t.totals.latency),
            if i + 1 < par.tenants.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"totals\": {{\"syscalls\": {}, \"instructions\": {}, \"cycles\": {}, \
         \"parallel_wall_secs\": {:.6}, \"sequential_wall_secs\": {:.6}, \
         \"parallel_steps_per_sec\": {:.1}, \"capacity_steps_per_sec\": {:.1}}},\n  \
         \"exec\": {{\"host_workers\": {}, \"steals\": {}, \"migrations\": {}}},\n  \
         \"simulation_identical\": {}\n}}\n",
        par.syscalls,
        par.instructions,
        par.cycles,
        par.wall_secs,
        seq.wall_secs,
        par.steps_per_sec(),
        seq.capacity_steps_per_sec(),
        par.exec.workers,
        par.exec.steals,
        par.exec.migrations,
        m.identical
    );
    write_json("BENCH_4.json", &json);

    let mut headlines = vec![head(
        "bench4_capacity_steps_per_sec",
        seq.capacity_steps_per_sec(),
    )];
    headlines.extend(runner::exec_headlines(
        "bench4",
        par.exec.workers,
        par.exec.steals,
    ));
    if !m.identical {
        eprintln!("FAIL: parallel and sequential fleet runs disagreed on simulated state");
        return Outcome::new(1, headlines);
    }
    Outcome::new(0, headlines)
}

/// The speedup the block engine is expected to deliver over the cached
/// step loop (hot loop and fleet mix alike).
const BLOCK_SPEEDUP_TARGET: f64 = 2.0;
/// Hot-loop iterations for the `--blocks` A/B (full / `--smoke`).
const BLOCK_HOT_ITERS: u64 = 100_000;
const BLOCK_SMOKE_HOT_ITERS: u64 = 20_000;

/// Repeats for the `--blocks` hot loop (more than [`REPEATS`]: the A/B
/// sits near its gate value, so the minimum-wall estimate needs more
/// draws on a noisy shared host).
const BLOCK_REPEATS: usize = 5;

/// Best-of-[`BLOCK_REPEATS`] for the BENCH_5 hot-loop samples.
fn best_block(
    run: impl Fn() -> camo_bench::blocks::BlockSample,
) -> camo_bench::blocks::BlockSample {
    best_of(
        BLOCK_REPEATS,
        run,
        |s| s.sample.steps_per_sec,
        |s| (s.sample.instructions, s.sample.cycles),
    )
}

fn block_sample_json(s: &camo_bench::blocks::BlockSample) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \
         \"steps_per_sec\": {:.1}, \"block_hits\": {}, \"block_misses\": {}, \
         \"block_invalidations\": {}}}",
        s.sample.instructions,
        s.sample.cycles,
        s.sample.wall_secs,
        s.sample.steps_per_sec,
        s.block_hits,
        s.block_misses,
        s.block_invalidations
    )
}

fn run_blocks(args: &Args) -> Outcome {
    use camo_bench::blocks;

    let hot_iters = if args.smoke {
        BLOCK_SMOKE_HOT_ITERS
    } else {
        BLOCK_HOT_ITERS
    };
    let shards = fleet_shards(args);
    let tenants = fleet::standard_tenants(args.smoke);
    println!(
        "perfcheck --blocks: block engine on vs off (caches on), seed {:#x}, \
         {} tenants x {shards} shards x {FLEET_CPUS} cores",
        args.seed,
        tenants.len()
    );

    // Hot loop: engine off first so the on-arm cannot benefit from a
    // warmer host.
    let hot_off = best_block(|| blocks::hot_loop(hot_iters, false));
    let hot_on = best_block(|| blocks::hot_loop(hot_iters, true));
    let hot_identical = (hot_on.sample.cycles, hot_on.sample.instructions)
        == (hot_off.sample.cycles, hot_off.sample.instructions);
    let hot_speedup = hot_on.sample.steps_per_sec / hot_off.sample.steps_per_sec.max(1e-9);

    // Fleet mix: each arm is itself a parallel/sequential cross-check.
    // Best-of-REPEATS like every other workload (the simulated totals are
    // deterministic and asserted so in the runner; only wall time varies).
    let ab = best_of_fleet_ab(REPEATS, || {
        blocks::fleet_ab(shards, FLEET_CPUS, args.seed, tenants.clone())
    });
    let fleet_identical = (ab.on.parallel.cycles, ab.on.parallel.instructions)
        == (ab.off.parallel.cycles, ab.off.parallel.instructions);
    let arch_identical = ab.arch_identical();
    let mode_identical = ab.on.identical && ab.off.identical;
    let fleet_speedup = ab.speedup();

    println!(
        "{:<22} {:>14} {:>14} {:>9}  cycles",
        "workload", "blocks st/s", "step st/s", "speedup"
    );
    for (name, on, off, speedup, identical) in [
        (
            "fig2_hot_loop",
            hot_on.sample.steps_per_sec,
            hot_off.sample.steps_per_sec,
            hot_speedup,
            hot_identical,
        ),
        (
            "fleet_mix",
            ab.on.sequential.capacity_steps_per_sec(),
            ab.off.sequential.capacity_steps_per_sec(),
            fleet_speedup,
            fleet_identical,
        ),
    ] {
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x  {}",
            name,
            on,
            off,
            speedup,
            if identical { "identical" } else { "MISMATCH" }
        );
    }
    let on_stats = &ab.on.parallel.stats;
    println!(
        "fleet block cache: {} hits / {} misses / {} invalidations | arch {} | modes {}",
        on_stats.block_hits,
        on_stats.block_misses,
        on_stats.block_invalidations,
        if arch_identical {
            "identical"
        } else {
            "MISMATCH"
        },
        if mode_identical {
            "identical"
        } else {
            "MISMATCH"
        }
    );

    let cycles_identical = hot_identical && fleet_identical;
    let simulation_identical = arch_identical && mode_identical;
    speedup_table(
        "blocks",
        "blocks st/s",
        "step st/s",
        &[
            (
                "fig2_hot_loop".to_string(),
                hot_on.sample.steps_per_sec,
                hot_off.sample.steps_per_sec,
            ),
            (
                "fleet_mix".to_string(),
                ab.on.sequential.capacity_steps_per_sec(),
                ab.off.sequential.capacity_steps_per_sec(),
            ),
        ],
    );

    let mut json = String::from("{\n  \"bench\": \"block_engine\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    let _ = writeln!(json, "  \"hot_loop_iters\": {hot_iters},");
    json.push_str("  \"workloads\": [\n");
    let _ = writeln!(
        json,
        "    {{\"name\": \"fig2_hot_loop\", \"blocks_on\": {}, \"blocks_off\": {}, \
         \"speedup\": {hot_speedup:.2}, \"cycles_identical\": {hot_identical}}},",
        block_sample_json(&hot_on),
        block_sample_json(&hot_off),
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"fleet_mix\", \
         \"blocks_on\": {{\"instructions\": {}, \"cycles\": {}, \"syscalls\": {}, \
         \"capacity_steps_per_sec\": {:.1}, \"block_hits\": {}, \"block_misses\": {}, \
         \"block_invalidations\": {}}}, \
         \"blocks_off\": {{\"instructions\": {}, \"cycles\": {}, \"syscalls\": {}, \
         \"capacity_steps_per_sec\": {:.1}}}, \
         \"speedup\": {fleet_speedup:.2}, \"cycles_identical\": {fleet_identical}, \
         \"arch_identical\": {arch_identical}, \
         \"parallel_sequential_identical\": {mode_identical}}}",
        ab.on.parallel.instructions,
        ab.on.parallel.cycles,
        ab.on.parallel.syscalls,
        ab.on.sequential.capacity_steps_per_sec(),
        on_stats.block_hits,
        on_stats.block_misses,
        on_stats.block_invalidations,
        ab.off.parallel.instructions,
        ab.off.parallel.cycles,
        ab.off.parallel.syscalls,
        ab.off.sequential.capacity_steps_per_sec(),
    );
    let _ = write!(
        json,
        "  ],\n  \"speedup_target\": {BLOCK_SPEEDUP_TARGET:.1},\n  \
         \"hot_loop_speedup\": {hot_speedup:.2},\n  \
         \"fleet_speedup\": {fleet_speedup:.2},\n  \
         \"cycles_identical\": {cycles_identical},\n  \
         \"simulation_identical\": {simulation_identical}\n}}\n"
    );
    write_json("BENCH_5.json", &json);

    let headlines = vec![
        head("bench5_hot_loop_speedup", hot_speedup),
        head("bench5_fleet_speedup", fleet_speedup),
    ];
    if !cycles_identical {
        eprintln!("FAIL: the block engine changed simulated cycle/instruction counts");
        return Outcome::new(1, headlines);
    }
    if !simulation_identical {
        eprintln!(
            "FAIL: the block engine changed architectural per-tenant state, or \
             parallel and sequential fleet runs disagreed within an arm"
        );
        return Outcome::new(1, headlines);
    }
    if hot_speedup < BLOCK_SPEEDUP_TARGET || fleet_speedup < BLOCK_SPEEDUP_TARGET {
        eprintln!(
            "note: block-engine speedup {hot_speedup:.2}x hot loop / {fleet_speedup:.2}x fleet, \
             target {BLOCK_SPEEDUP_TARGET:.1}x (non-gating; host-dependent)"
        );
    }
    Outcome::new(0, headlines)
}

/// The speedup the trace tier is expected to deliver *over the blocks-on
/// baseline* (i.e. stacked on top of BENCH_5's win).
const TRACE_SPEEDUP_TARGET: f64 = 2.0;

/// Best-of-[`BLOCK_REPEATS`] for the BENCH_7 hot-loop samples.
fn best_trace(
    run: impl Fn() -> camo_bench::traces::TraceSample,
) -> camo_bench::traces::TraceSample {
    best_of(
        BLOCK_REPEATS,
        run,
        |s| s.sample.steps_per_sec,
        |s| (s.sample.instructions, s.sample.cycles),
    )
}

fn trace_sample_json(s: &camo_bench::traces::TraceSample) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \
         \"steps_per_sec\": {:.1}, \"trace_hits\": {}, \"trace_misses\": {}, \
         \"trace_invalidations\": {}, \"chain_follows\": {}, \"block_hits\": {}}}",
        s.sample.instructions,
        s.sample.cycles,
        s.sample.wall_secs,
        s.sample.steps_per_sec,
        s.trace_hits,
        s.trace_misses,
        s.trace_invalidations,
        s.chain_follows,
        s.block_hits
    )
}

fn run_traces(args: &Args) -> Outcome {
    use camo_bench::traces;

    let hot_iters = if args.smoke {
        BLOCK_SMOKE_HOT_ITERS
    } else {
        BLOCK_HOT_ITERS
    };
    let shards = fleet_shards(args);
    let tenants = fleet::standard_tenants(args.smoke);
    println!(
        "perfcheck --traces: trace tier on vs off (blocks + caches on), seed {:#x}, \
         {} tenants x {shards} shards x {FLEET_CPUS} cores",
        args.seed,
        tenants.len()
    );

    // Hot loop: tier off first so the on-arm cannot benefit from a warmer
    // host.
    let hot_off = best_trace(|| traces::hot_loop(hot_iters, false));
    let hot_on = best_trace(|| traces::hot_loop(hot_iters, true));
    let hot_identical = (hot_on.sample.cycles, hot_on.sample.instructions)
        == (hot_off.sample.cycles, hot_off.sample.instructions);
    let hot_speedup = hot_on.sample.steps_per_sec / hot_off.sample.steps_per_sec.max(1e-9);

    // Fleet mix: best-of-REPEATS, simulated totals asserted deterministic
    // in the runner.
    let ab = best_of_fleet_ab(REPEATS, || {
        traces::fleet_ab(shards, FLEET_CPUS, args.seed, tenants.clone())
    });
    let fleet_identical = (ab.on.parallel.cycles, ab.on.parallel.instructions)
        == (ab.off.parallel.cycles, ab.off.parallel.instructions);
    let arch_identical = ab.arch_identical();
    let mode_identical = ab.on.identical && ab.off.identical;
    let fleet_speedup = ab.speedup();

    println!(
        "{:<22} {:>14} {:>14} {:>9}  cycles",
        "workload", "traces st/s", "blocks st/s", "speedup"
    );
    for (name, on, off, speedup, identical) in [
        (
            "fig2_hot_loop",
            hot_on.sample.steps_per_sec,
            hot_off.sample.steps_per_sec,
            hot_speedup,
            hot_identical,
        ),
        (
            "fleet_mix",
            ab.on.sequential.capacity_steps_per_sec(),
            ab.off.sequential.capacity_steps_per_sec(),
            fleet_speedup,
            fleet_identical,
        ),
    ] {
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x  {}",
            name,
            on,
            off,
            speedup,
            if identical { "identical" } else { "MISMATCH" }
        );
    }
    let on_stats = &ab.on.parallel.stats;
    println!(
        "fleet trace cache: {} hits / {} misses / {} invalidations | \
         {} chain follows | block hits {} -> {} | arch {} | modes {}",
        on_stats.trace_hits,
        on_stats.trace_misses,
        on_stats.trace_invalidations,
        on_stats.chain_follows,
        ab.off.parallel.stats.block_hits,
        on_stats.block_hits,
        if arch_identical {
            "identical"
        } else {
            "MISMATCH"
        },
        if mode_identical {
            "identical"
        } else {
            "MISMATCH"
        }
    );

    let cycles_identical = hot_identical && fleet_identical;
    let simulation_identical = arch_identical && mode_identical;
    speedup_table(
        "traces",
        "traces st/s",
        "blocks st/s",
        &[
            (
                "fig2_hot_loop".to_string(),
                hot_on.sample.steps_per_sec,
                hot_off.sample.steps_per_sec,
            ),
            (
                "fleet_mix".to_string(),
                ab.on.sequential.capacity_steps_per_sec(),
                ab.off.sequential.capacity_steps_per_sec(),
            ),
        ],
    );

    let mut json = String::from("{\n  \"bench\": \"trace_engine\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    let _ = writeln!(json, "  \"hot_loop_iters\": {hot_iters},");
    json.push_str("  \"workloads\": [\n");
    let _ = writeln!(
        json,
        "    {{\"name\": \"fig2_hot_loop\", \"traces_on\": {}, \"traces_off\": {}, \
         \"speedup\": {hot_speedup:.2}, \"cycles_identical\": {hot_identical}}},",
        trace_sample_json(&hot_on),
        trace_sample_json(&hot_off),
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"fleet_mix\", \
         \"traces_on\": {{\"instructions\": {}, \"cycles\": {}, \"syscalls\": {}, \
         \"capacity_steps_per_sec\": {:.1}, \"trace_hits\": {}, \"trace_misses\": {}, \
         \"trace_invalidations\": {}, \"chain_follows\": {}, \"block_hits\": {}}}, \
         \"traces_off\": {{\"instructions\": {}, \"cycles\": {}, \"syscalls\": {}, \
         \"capacity_steps_per_sec\": {:.1}, \"block_hits\": {}}}, \
         \"speedup\": {fleet_speedup:.2}, \"cycles_identical\": {fleet_identical}, \
         \"arch_identical\": {arch_identical}, \
         \"parallel_sequential_identical\": {mode_identical}}}",
        ab.on.parallel.instructions,
        ab.on.parallel.cycles,
        ab.on.parallel.syscalls,
        ab.on.sequential.capacity_steps_per_sec(),
        on_stats.trace_hits,
        on_stats.trace_misses,
        on_stats.trace_invalidations,
        on_stats.chain_follows,
        on_stats.block_hits,
        ab.off.parallel.instructions,
        ab.off.parallel.cycles,
        ab.off.parallel.syscalls,
        ab.off.sequential.capacity_steps_per_sec(),
        ab.off.parallel.stats.block_hits,
    );
    let _ = write!(
        json,
        "  ],\n  \"speedup_target\": {TRACE_SPEEDUP_TARGET:.1},\n  \
         \"hot_loop_speedup\": {hot_speedup:.2},\n  \
         \"fleet_speedup\": {fleet_speedup:.2},\n  \
         \"cycles_identical\": {cycles_identical},\n  \
         \"simulation_identical\": {simulation_identical}\n}}\n"
    );
    write_json("BENCH_7.json", &json);

    let headlines = vec![
        head("bench7_hot_loop_speedup", hot_speedup),
        head("bench7_fleet_speedup", fleet_speedup),
    ];
    if !cycles_identical {
        eprintln!("FAIL: the trace tier changed simulated cycle/instruction counts");
        return Outcome::new(1, headlines);
    }
    if !simulation_identical {
        eprintln!(
            "FAIL: the trace tier changed architectural per-tenant state, or \
             parallel and sequential fleet runs disagreed within an arm"
        );
        return Outcome::new(1, headlines);
    }
    if hot_speedup < TRACE_SPEEDUP_TARGET || fleet_speedup < TRACE_SPEEDUP_TARGET {
        eprintln!(
            "note: trace-tier speedup {hot_speedup:.2}x hot loop / {fleet_speedup:.2}x fleet, \
             target {TRACE_SPEEDUP_TARGET:.1}x over blocks-on (non-gating; host-dependent)"
        );
    }
    Outcome::new(0, headlines)
}

fn run_fuzz(args: &Args) -> Outcome {
    use camo_bench::fuzz;

    let shards = fleet_shards(args);
    println!(
        "perfcheck --fuzz: adversarial traffic plane, seed {:#x}, \
         {shards} shards x {FLEET_CPUS} cores, block engine on and off",
        args.seed
    );

    let ab = fuzz::measure(shards, FLEET_CPUS, args.seed, args.smoke);

    println!(
        "{:<11} {:>8} {:>7} {:>10} {:>7} {:>9} {:>10} {:>10}",
        "arm", "hostile", "matched", "benign", "fp", "fp rate", "kill p50", "kill p99"
    );
    for (label, arm) in [("blocks_off", &ab.off), ("blocks_on", &ab.on)] {
        let ledger = arm.ledger();
        println!(
            "{:<11} {:>8} {:>7} {:>10} {:>7} {:>9.4} {:>10} {:>10}",
            label,
            ledger.attempted,
            ledger.matched,
            ledger.benign_ops,
            ledger.benign_pac_events,
            ledger.false_positive_rate(),
            ledger.time_to_kill.p50(),
            ledger.time_to_kill.p99()
        );
    }
    println!("{:<22} {:>9} {:>8}", "hostile op", "attempted", "matched");
    for (name, attempted, matched) in ab.on.per_op() {
        println!("{name:<22} {attempted:>9} {matched:>8}");
    }
    for check in ab.on.isolation.iter().chain(&ab.off.isolation) {
        println!(
            "benign tenant {:<8} vs isolated baseline: {}",
            check.name,
            if check.identical {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    let arms_identical = ab.arch_identical();
    println!(
        "arms: {}",
        if arms_identical {
            "identical (hostile ledgers included)"
        } else {
            "MISMATCH"
        }
    );
    speedup_table(
        "fuzz",
        "blocks_on st/s",
        "blocks_off st/s",
        &[(
            "adversarial_mix".to_string(),
            ab.on.mixed.parallel.steps_per_sec(),
            ab.off.mixed.parallel.steps_per_sec(),
        )],
    );

    let mut json = String::from("{\n  \"bench\": \"fuzz\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    json.push_str("  \"arms\": [\n");
    let arms = [("blocks_off", &ab.off), ("blocks_on", &ab.on)];
    for (i, (label, arm)) in arms.iter().enumerate() {
        let ledger = arm.ledger();
        let _ = writeln!(json, "    {{\"name\": \"{label}\",");
        let _ = writeln!(
            json,
            "     \"hostile\": {{\"attempted\": {}, \"matched\": {}, \"benign_ops\": {}, \
             \"benign_pac_events\": {}, \"false_positive_rate\": {:.6}, \
             \"time_to_kill_cycles\": {}}},",
            ledger.attempted,
            ledger.matched,
            ledger.benign_ops,
            ledger.benign_pac_events,
            ledger.false_positive_rate(),
            hist_json(&ledger.time_to_kill)
        );
        json.push_str("     \"ops\": [");
        let per_op = arm.per_op();
        for (j, (name, attempted, matched)) in per_op.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"op\": \"{name}\", \"attempted\": {attempted}, \"matched\": {matched}}}{}",
                if j + 1 < per_op.len() { ", " } else { "" }
            );
        }
        json.push_str("],\n     \"tenants\": [");
        let tenants = &arm.mixed.parallel.tenants;
        for (j, t) in tenants.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"name\": \"{}\", \"workload\": \"{}\", \"ops\": {}, \"cycles\": {}, \
                 \"hostile_attempted\": {}, \"benign_pac_events\": {}}}{}",
                t.name,
                t.workload,
                t.totals.ops,
                t.totals.cycles,
                t.totals.hostile.attempted,
                t.totals.hostile.benign_pac_events,
                if j + 1 < tenants.len() { ", " } else { "" }
            );
        }
        json.push_str("],\n     \"isolation\": [");
        for (j, c) in arm.isolation.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"name\": \"{}\", \"identical\": {}}}{}",
                c.name,
                c.identical,
                if j + 1 < arm.isolation.len() {
                    ", "
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(
            json,
            "],\n     \"gates\": {{\"all_hostile_matched\": {}, \"zero_false_positives\": {}, \
             \"benign_isolated\": {}, \"parallel_sequential_identical\": {}}}}}{}",
            arm.all_hostile_matched(),
            arm.zero_false_positives(),
            arm.benign_isolated(),
            arm.mixed.identical,
            if i + 1 < arms.len() { "," } else { "" }
        );
    }
    let pass = ab.passes();
    let _ = write!(
        json,
        "  ],\n  \"arms_arch_identical\": {arms_identical},\n  \"pass\": {pass}\n}}\n"
    );
    write_json("BENCH_6.json", &json);

    let mut code = 0;
    for (label, arm) in arms {
        if !arm.all_hostile_matched() {
            eprintln!("FAIL({label}): a hostile op missed its declared expected outcome");
            code = 1;
        }
        if !arm.zero_false_positives() {
            eprintln!("FAIL({label}): failure-policy events fired in benign op windows");
            code = 1;
        }
        if !arm.benign_isolated() {
            eprintln!(
                "FAIL({label}): a benign tenant's simulated totals deviated from its \
                 isolated baseline under attack load"
            );
            code = 1;
        }
        if !arm.mixed.identical {
            eprintln!("FAIL({label}): parallel and sequential fleet runs disagreed");
            code = 1;
        }
    }
    if !arms_identical {
        eprintln!("FAIL: the block engine changed the adversarial plan's architectural state");
        code = 1;
    }
    // The fuzz gates are pass/fail attributions, not throughput — no
    // perf headlines to fold into the history row.
    Outcome::new(code, Vec::new())
}

/// Drain-overhead budget for the telemetry plane (hard gate: observing
/// the fleet must cost less than 2% of its capacity).
const TELEMETRY_OVERHEAD_BUDGET: f64 = 0.02;
/// Rows the §6 attack matrix is expected to carry.
const ATTACK_MATRIX_ROWS: usize = 24;

fn run_telemetry(args: &Args) -> Outcome {
    use camo_bench::telemetry;

    let shards = fleet_shards(args);
    let tenants = fleet::standard_tenants(args.smoke);
    let ring_cfg = camo_cpu::telemetry::TelemetryConfig::default();
    println!(
        "perfcheck --telemetry: stats plane on vs off, seed {:#x}, \
         {} tenants x {shards} shards x {FLEET_CPUS} cores, \
         window {} ops, ring capacity {}",
        args.seed,
        tenants.len(),
        ring_cfg.window_ops,
        ring_cfg.capacity
    );

    // Best-of-REPEATS like the engine A/Bs: the simulated totals are
    // deterministic (asserted in the runner); only wall time varies, and
    // the overhead gate rides on wall time.
    let ab = best_of_fleet_ab(REPEATS, || {
        telemetry::fleet_ab(shards, FLEET_CPUS, args.seed, tenants.clone())
    });

    let cycles_identical = (ab.on.parallel.cycles, ab.on.parallel.instructions)
        == (ab.off.parallel.cycles, ab.off.parallel.instructions);
    let fully_identical = telemetry::fully_identical(&ab);
    let arch_identical = ab.arch_identical();
    let mode_identical = ab.on.identical && ab.off.identical;
    let off_silent = telemetry::silent(&ab.off.parallel);
    let checks = telemetry::series_checks(&ab.on.parallel);
    let series_complete = checks.iter().all(|c| c.windows > 0 && c.sums_exact);
    let overhead = telemetry::drain_overhead(&ab);
    let overhead_ok = overhead < TELEMETRY_OVERHEAD_BUDGET;
    let matrix = camo_bench::attacks::security_matrix();
    let matrix_ok = matrix.len() == ATTACK_MATRIX_ROWS && matrix.iter().all(|r| r.matches_paper());

    println!(
        "{:<12} {:>9} {:>12} {:>11}  accounting",
        "tenant", "windows", "cycles/win", "sums"
    );
    for (check, tenant) in checks.iter().zip(&ab.on.parallel.tenants) {
        println!(
            "{:<12} {:>9} {:>12.0} {:>11}  {}",
            check.name,
            check.windows,
            tenant.totals.cycles as f64 / (check.windows.max(1)) as f64,
            if check.sums_exact { "exact" } else { "DRIFT" },
            if check.sums_exact {
                "windows sum to end-of-run totals"
            } else {
                "MISMATCH"
            }
        );
    }
    println!(
        "arms: cycles {} | full stats {} | arch {} | modes {} | off arm {} | \
         overhead {:.4} (budget {TELEMETRY_OVERHEAD_BUDGET}) | attack matrix {}/{}",
        if cycles_identical {
            "identical"
        } else {
            "MISMATCH"
        },
        if fully_identical {
            "identical"
        } else {
            "MISMATCH"
        },
        if arch_identical {
            "identical"
        } else {
            "MISMATCH"
        },
        if mode_identical {
            "identical"
        } else {
            "MISMATCH"
        },
        if off_silent { "silent" } else { "LEAKING" },
        overhead,
        matrix.iter().filter(|r| r.matches_paper()).count(),
        matrix.len()
    );
    speedup_table(
        "telemetry",
        "on st/s",
        "off st/s",
        &[(
            "fleet_mix".to_string(),
            ab.on.sequential.capacity_steps_per_sec(),
            ab.off.sequential.capacity_steps_per_sec(),
        )],
    );

    let pass = cycles_identical
        && fully_identical
        && arch_identical
        && mode_identical
        && off_silent
        && series_complete
        && overhead_ok
        && matrix_ok;

    let mut json = String::from("{\n  \"bench\": \"telemetry\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    let _ = writeln!(json, "  \"window_ops\": {},", ring_cfg.window_ops);
    let _ = writeln!(json, "  \"ring_capacity\": {},", ring_cfg.capacity);
    json.push_str("  \"tenants\": [\n");
    for (i, (check, tenant)) in checks.iter().zip(&ab.on.parallel.tenants).enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"workload\": \"{}\", \"windows\": {}, \
             \"ops\": {}, \"cycles\": {}, \"sums_exact\": {}}}{}",
            check.name,
            tenant.workload,
            check.windows,
            tenant.totals.ops,
            tenant.totals.cycles,
            check.sums_exact,
            if i + 1 < checks.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"capacity_on_steps_per_sec\": {:.1},\n  \
         \"capacity_off_steps_per_sec\": {:.1},\n  \
         \"drain_overhead\": {overhead:.6},\n  \
         \"overhead_budget\": {TELEMETRY_OVERHEAD_BUDGET},\n  \
         \"attack_matrix\": {{\"rows\": {}, \"all_match_paper\": {}}},\n  \
         \"gates\": {{\"cycles_identical\": {cycles_identical}, \
         \"fully_identical\": {fully_identical}, \
         \"arch_identical\": {arch_identical}, \
         \"parallel_sequential_identical\": {mode_identical}, \
         \"off_arm_silent\": {off_silent}, \
         \"series_complete\": {series_complete}, \
         \"overhead_within_budget\": {overhead_ok}}},\n  \
         \"pass\": {pass}\n}}",
        ab.on.sequential.capacity_steps_per_sec(),
        ab.off.sequential.capacity_steps_per_sec(),
        matrix.len(),
        matrix_ok,
    );
    write_json("BENCH_8.json", &json);

    let headlines = vec![head("bench8_drain_overhead", overhead)];
    if !cycles_identical || !fully_identical || !arch_identical {
        eprintln!(
            "FAIL: telemetry perturbed the simulation (it must be bit-invisible, \
             observability counters included)"
        );
        return Outcome::new(1, headlines);
    }
    if !mode_identical {
        eprintln!("FAIL: parallel and sequential fleet runs disagreed within an arm");
        return Outcome::new(1, headlines);
    }
    if !off_silent {
        eprintln!("FAIL: the telemetry-off arm emitted time-series windows");
        return Outcome::new(1, headlines);
    }
    if !series_complete {
        eprintln!(
            "FAIL: a tenant's time series was empty or did not sum to its \
             end-of-run totals"
        );
        return Outcome::new(1, headlines);
    }
    if !overhead_ok {
        eprintln!(
            "FAIL: telemetry drain overhead {overhead:.4} exceeds the \
             {TELEMETRY_OVERHEAD_BUDGET} budget"
        );
        return Outcome::new(1, headlines);
    }
    if !matrix_ok {
        eprintln!("FAIL: the attack matrix no longer matches the paper with telemetry in the tree");
        return Outcome::new(1, headlines);
    }
    Outcome::new(0, headlines)
}

/// The wall speedup the work-stealing pool is expected to deliver over
/// the 1:1 thread-per-shard driver — gated only on hosts with ≥4 cores
/// (below that the two modes converge by construction).
const STEAL_WALL_TARGET: f64 = 1.5;
/// Cores a host needs before the wall-speedup gate is meaningful.
const STEAL_GATE_CORES: usize = 4;
/// Fleet-wide p99 simulated-cycle op latency ceiling for the BENCH_9
/// dense plan. Deterministic in the plan (the worst tenant is the
/// module-churn workload), so this gates on every host; the measured
/// value sits near 4.6k cycles, leaving ~5x headroom for mix growth.
const STEAL_P99_TARGET: u64 = 25_000;
/// Wall repeats for the BENCH_9 speedup numbers.
const STEAL_REPEATS: usize = 3;

fn run_fleet_steal(args: &Args) -> Outcome {
    use camo_bench::{steal, telemetry};

    let shards = if args.shards_given {
        args.shards[0]
    } else if args.smoke {
        steal::SMOKE_SHARDS
    } else {
        steal::SHARDS
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let tenants = steal::dense_tenants(args.smoke);
    println!(
        "perfcheck --fleet-steal: work-stealing scheduler, seed {:#x}, \
         {} tenants x {shards} shards x 1 core, host cores {host_cores}",
        args.seed,
        tenants.len()
    );

    let m = steal::measure(shards, args.seed, args.smoke, STEAL_REPEATS);
    let bit_identical = m.bit_identical();
    let worker_invariant = m.worker_invariant();
    let pooled = m.pooled_default();
    let checks = telemetry::series_checks(pooled);
    let series_complete = checks.iter().all(|c| c.windows > 0 && c.sums_exact);
    let p99 = m.p99();
    let p99_ok = p99 <= STEAL_P99_TARGET;
    let wall_speedup = m.wall_speedup();
    let wall_gated = host_cores >= STEAL_GATE_CORES;
    let wall_ok = !wall_gated || wall_speedup >= STEAL_WALL_TARGET;

    println!(
        "{:>8} {:>12} {:>16} {:>8} {:>11}  vs oracle",
        "workers", "wall secs", "wall st/s", "steals", "migrations"
    );
    for (w, r) in m.counts.iter().zip(&m.pooled) {
        println!(
            "{:>8} {:>12.3} {:>16.0} {:>8} {:>11}  {}",
            w,
            r.wall_secs,
            r.steps_per_sec(),
            r.exec.steals,
            r.exec.migrations,
            if r.simulation_identical(&m.sequential) {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    println!(
        "{:>8} {:>12.3} {:>16.0} {:>8} {:>11}  {}",
        "1:1",
        m.threaded.wall_secs,
        m.threaded.steps_per_sec(),
        m.threaded.exec.steals,
        m.threaded.exec.migrations,
        if m.threaded.simulation_identical(&m.sequential) {
            "identical"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "wall speedup over 1:1: {wall_speedup:.2}x ({}) | p99 {p99} cycles \
         (target {STEAL_P99_TARGET}) | telemetry {} | invariance {}",
        if wall_gated {
            "gated"
        } else {
            "recorded only; host has fewer than 4 cores"
        },
        if series_complete { "exact" } else { "DRIFT" },
        if worker_invariant {
            "identical"
        } else {
            "MISMATCH"
        }
    );
    speedup_table(
        "fleet-steal",
        "pool st/s",
        "1:1 st/s",
        &[(
            "dense_mix".to_string(),
            pooled.steps_per_sec(),
            m.threaded.steps_per_sec(),
        )],
    );

    let pass = bit_identical && worker_invariant && series_complete && p99_ok && wall_ok;
    let mut json = String::from("{\n  \"bench\": \"fleet_steal\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": 1,");
    let _ = writeln!(json, "  \"tenants\": {},", tenants.len());
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"runs\": [\n");
    for (w, r) in m.counts.iter().zip(&m.pooled) {
        let _ = writeln!(
            json,
            "    {{\"workers\": {w}, \"wall_secs\": {:.6}, \"steps_per_sec\": {:.1}, \
             \"steals\": {}, \"migrations\": {}, \"identical_to_oracle\": {}}},",
            r.wall_secs,
            r.steps_per_sec(),
            r.exec.steals,
            r.exec.migrations,
            r.simulation_identical(&m.sequential)
        );
    }
    let _ = writeln!(
        json,
        "    {{\"workers\": \"1:1\", \"wall_secs\": {:.6}, \"steps_per_sec\": {:.1}, \
         \"steals\": 0, \"migrations\": 0, \"identical_to_oracle\": {}}}",
        m.threaded.wall_secs,
        m.threaded.steps_per_sec(),
        m.threaded.simulation_identical(&m.sequential)
    );
    let _ = write!(
        json,
        "  ],\n  \"wall_speedup_over_threaded\": {wall_speedup:.2},\n  \
         \"wall_speedup_target\": {STEAL_WALL_TARGET:.1},\n  \
         \"wall_speedup_gated\": {wall_gated},\n  \
         \"p99_latency_cycles\": {p99},\n  \
         \"p99_target_cycles\": {STEAL_P99_TARGET},\n  \
         \"gates\": {{\"bit_identical\": {bit_identical}, \
         \"worker_invariant\": {worker_invariant}, \
         \"telemetry_series_complete\": {series_complete}, \
         \"p99_within_target\": {p99_ok}, \
         \"wall_speedup_ok\": {wall_ok}}},\n  \
         \"pass\": {pass}\n}}\n"
    );
    write_json("BENCH_9.json", &json);

    let mut headlines = vec![
        head("bench9_steal_wall_speedup", wall_speedup),
        head("bench9_pool_steps_per_sec", pooled.steps_per_sec()),
    ];
    headlines.extend(runner::exec_headlines(
        "bench9",
        pooled.exec.workers,
        pooled.exec.steals,
    ));
    if !bit_identical {
        eprintln!("FAIL: a pooled or 1:1 run diverged from the sequential oracle");
        return Outcome::new(1, headlines);
    }
    if !worker_invariant {
        eprintln!("FAIL: pooled runs disagreed across worker counts");
        return Outcome::new(1, headlines);
    }
    if !series_complete {
        eprintln!(
            "FAIL: a tenant's telemetry series was empty or did not sum to its \
             end-of-run totals under worker migration"
        );
        return Outcome::new(1, headlines);
    }
    if !p99_ok {
        eprintln!(
            "FAIL: fleet-wide p99 latency {p99} cycles exceeds the \
             {STEAL_P99_TARGET}-cycle target"
        );
        return Outcome::new(1, headlines);
    }
    if !wall_ok {
        eprintln!(
            "FAIL: pool wall speedup {wall_speedup:.2}x below the \
             {STEAL_WALL_TARGET:.1}x target on a {host_cores}-core host"
        );
        return Outcome::new(1, headlines);
    }
    if !wall_gated && wall_speedup < STEAL_WALL_TARGET {
        eprintln!(
            "note: wall speedup {wall_speedup:.2}x below the {STEAL_WALL_TARGET:.1}x \
             target, not gated on a {host_cores}-core host (needs {STEAL_GATE_CORES}+)"
        );
    }
    Outcome::new(0, headlines)
}

/// The durable perf-history file `--all` appends to and
/// `--check-history` judges.
const HISTORY_PATH: &str = "BENCH_HISTORY.jsonl";

fn run_all(args: &Args) -> i32 {
    let modes: [(&str, fn(&Args) -> Outcome); 8] = [
        ("fastpath", |a| run_fastpath(a.seed)),
        ("smp", run_smp),
        ("fleet", run_fleet),
        ("blocks", run_blocks),
        ("traces", run_traces),
        ("fuzz", run_fuzz),
        ("telemetry", run_telemetry),
        ("fleet-steal", run_fleet_steal),
    ];
    let mut code = 0;
    let mut headlines: Vec<(String, f64)> = Vec::new();
    for (name, run) in modes {
        println!("=== perfcheck --all: {name} ===");
        let outcome = run(args);
        if outcome.code != 0 {
            eprintln!("FAIL(--all): the {name} family exited {}", outcome.code);
        }
        code = code.max(outcome.code);
        headlines.extend(outcome.headlines);
    }
    // Append the row even on failure: a red run is history too, and the
    // row records what the host actually measured.
    let row = history::HistoryRow::new(args.seed, args.smoke, headlines);
    match history::append(Path::new(HISTORY_PATH), &row) {
        Ok(()) => println!(
            "appended history row ({} headlines, host {}) to {HISTORY_PATH}",
            row.headlines.len(),
            row.host_class
        ),
        Err(e) => {
            eprintln!("FAIL: could not append to {HISTORY_PATH}: {e}");
            code = code.max(1);
        }
    }
    code
}

fn run_check_history() -> i32 {
    let rows = history::load(Path::new(HISTORY_PATH));
    let Some((current, earlier)) = rows.split_last() else {
        println!("note: {HISTORY_PATH} has no rows; nothing to check");
        return 0;
    };
    let Some(baseline) = history::find_baseline(earlier, current) else {
        println!(
            "note: no earlier {} row (smoke: {}) in {HISTORY_PATH}; \
             first run on this host class passes trivially",
            current.host_class, current.smoke
        );
        return 0;
    };
    let found = history::regressions(baseline, current, history::REGRESSION_THRESHOLD);
    println!(
        "checking newest row (ts {}) against baseline (ts {}) on {}, \
         threshold {:.0}%",
        current.timestamp_secs,
        baseline.timestamp_secs,
        current.host_class,
        history::REGRESSION_THRESHOLD * 100.0
    );
    for (key, value) in current
        .headlines
        .iter()
        .filter(|(k, _)| history::comparable(k))
    {
        match baseline.headline(key) {
            Some(base) => println!("  {key}: {value:.2} vs baseline {base:.2}"),
            None => println!("  {key}: {value:.2} (new; no baseline)"),
        }
    }
    if found.is_empty() {
        println!("no regressions past the threshold");
        return 0;
    }
    for r in &found {
        eprintln!(
            "FAIL: {} regressed {:.1}% ({:.2} -> {:.2})",
            r.key,
            r.drop_frac() * 100.0,
            r.baseline,
            r.current
        );
    }
    1
}

fn main() {
    let args = parse_args();
    let code = if args.check_history {
        run_check_history()
    } else if args.all {
        run_all(&args)
    } else if args.fleet_steal {
        run_fleet_steal(&args).code
    } else if args.telemetry {
        run_telemetry(&args).code
    } else if args.fuzz {
        run_fuzz(&args).code
    } else if args.traces {
        run_traces(&args).code
    } else if args.blocks {
        run_blocks(&args).code
    } else if args.fleet {
        run_fleet(&args).code
    } else if args.smp {
        run_smp(&args).code
    } else {
        run_fastpath(args.seed).code
    };
    std::process::exit(code);
}
