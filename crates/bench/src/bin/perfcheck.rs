//! Wall-clock regression checks for the simulator's throughput layers.
//!
//! Six modes, selected by `--smp` / `--fleet` / `--blocks` / `--traces` /
//! `--fuzz`:
//!
//! * **Default (fast-path A/B, `BENCH_2.json`)** — runs the Figure-2 call
//!   loop and the lmbench syscall mix with the simulator's caches
//!   (software TLB, decoded-instruction cache, warm QARMA schedules + MAC
//!   memo) on and off. Two properties:
//!   1. **Invisibility** (hard): simulated cycle and instruction counts
//!      must be bit-identical with caches on or off. Mismatch exits
//!      non-zero.
//!   2. **Speed** (reported): the cached hot loop should run ≥ 5× the
//!      uncached per-byte path.
//!
//! * **`--smp` (sharded scaling, `BENCH_3.json`)** — runs the lmbench mix
//!   through `camo_smp::ShardedDriver` at increasing shard counts. Each
//!   point is measured twice: parallel (wall scaling on *this* host,
//!   bounded by its core count) and sequential (isolated per-shard
//!   capacity, the pool's aggregate rate given one core per shard). One
//!   hard property: both modes must produce bit-identical simulated
//!   totals — sharding is architecturally invisible.
//!
//! * **`--fleet` (multi-tenant fleet, `BENCH_4.json`)** — serves the
//!   standard tenant mix (lmbench traffic, a fork/exec churn storm,
//!   module load/unload churn, and a context-switch-heavy tenant) through
//!   `camo_smp::FleetDriver`, measured in both execution modes. Reports
//!   per-workload throughput and p50/p90/p99 simulated-cycle latency
//!   percentiles, and gates (hard) on the parallel and sequential runs
//!   agreeing bit for bit on every simulated quantity — including each
//!   tenant's latency histogram.
//!
//! * **`--blocks` (block-engine A/B, `BENCH_5.json`)** — runs the
//!   Figure-2 call loop and the standard fleet tenant mix with the
//!   basic-block translation engine on and off (fast-path caches on in
//!   both arms). Three hard properties, any failure exits non-zero:
//!   1. **Invisibility**: simulated cycle and instruction counts are
//!      bit-identical with the engine on or off, on both workloads.
//!   2. **Architectural identity**: the fleet's per-tenant counters
//!      (`CpuStats::arch_eq`) and latency histograms agree across the
//!      engine toggle.
//!   3. **Mode identity**: within each arm, parallel and sequential fleet
//!      runs agree bit for bit (the `--fleet` gate, at both points).
//!   The ≥2× speedup target is reported (non-gating; host-dependent).
//!
//! * **`--traces` (trace-engine A/B, `BENCH_7.json`)** — runs the same
//!   two workloads as `--blocks` with the *block* engine pinned on in
//!   both arms and the trace tier toggled. The same three hard
//!   properties gate (invisibility, architectural identity, mode
//!   identity); the ≥2× speedup target — over the blocks-on baseline,
//!   i.e. on top of BENCH_5's win — is reported (non-gating;
//!   host-dependent). The JSON carries the trace-tier observability
//!   counters (`trace_hits`/`trace_misses`/`trace_invalidations` and
//!   `chain_follows`) from the on-arm.
//!
//! * **`--fuzz` (adversarial traffic plane, `BENCH_6.json`)** — serves
//!   seeded fuzz tenants mounting the six `HostileOp` attacks alongside
//!   benign tenants on the same fleet, once per block-engine arm. Hard
//!   gates, any failure exits non-zero:
//!   1. **Attribution**: every hostile op produced exactly its declared
//!      expected outcome (right PAC-failure key class, right task) and
//!      nothing else.
//!   2. **Blast radius**: zero §5.4 failure-policy events in benign op
//!      windows, and every benign tenant's simulated totals bit-identical
//!      to an isolated-baseline run of that tenant alone.
//!   3. **Engine invariance**: both arms architecturally identical,
//!      hostile ledgers included; parallel and sequential runs agree
//!      within each arm.
//!   The §5.4 false-positive rate and time-to-kill distribution are
//!   reported in the JSON.
//!
//! `--seed N` pins the boot seed used by the syscall-mix machine and the
//! shard/tenant partitioning; it is emitted into the JSON so A/B runs and
//! shard partitions reproduce byte for byte. `--smoke` shrinks the
//! `--smp`, `--fleet`, `--blocks` and `--traces` runs for CI runners.
//! Every mode also prints a per-workload speedup table to stderr so A/B
//! ratios are scrapeable from CI logs without parsing the JSON. The
//! emitted `BENCH_*.json` schemas are documented in `BENCHMARKS.md`.

use camo_bench::fleet;
use camo_bench::perf::{self, PerfSample, ScalingPoint};
use std::fmt::Write as _;

/// Hot-loop iterations (the Figure-2 call loop is ~14 insns/iteration).
const HOT_LOOP_ITERS: u64 = 100_000;
/// Rounds of the full syscall mix.
const SYSCALL_REPS: u64 = 40;
/// The speedup the fast path is expected to deliver on the hot loop.
const SPEEDUP_TARGET: f64 = 5.0;
/// Capacity speedup expected at 8 shards vs 1 on the scaling curve.
const SCALING_TARGET: f64 = 3.0;
/// Repeats per measurement; the fastest is reported (shared CI hosts are
/// noisy, and the minimum wall time is the least contaminated estimate).
const REPEATS: usize = 3;
/// Default boot seed (the kernel's default, pinned here so the emitted
/// JSON is self-describing).
const DEFAULT_SEED: u64 = 0xCAF0_0D5E;
/// Syscalls across all shards per scaling point (full / `--smoke`).
const SCALING_SYSCALLS: u64 = 24_000;
const SMOKE_SYSCALLS: u64 = 2_000;

/// Best-of-`n` wall time: keeps the sample with the highest `rate`, and
/// asserts the deterministic `fingerprint` (simulated counters) agrees
/// across every repeat.
fn best_of<T>(
    n: usize,
    run: impl Fn() -> T,
    rate: impl Fn(&T) -> f64,
    fingerprint: impl Fn(&T) -> (u64, u64),
) -> T {
    let first = run();
    (1..n).fold(first, |acc, _| {
        let s = run();
        assert_eq!(
            fingerprint(&s),
            fingerprint(&acc),
            "simulation must be deterministic across repeats"
        );
        if rate(&s) > rate(&acc) {
            s
        } else {
            acc
        }
    })
}

/// Best-of-[`REPEATS`] for the BENCH_2 samples.
fn best(run: impl Fn() -> PerfSample) -> PerfSample {
    best_of(
        REPEATS,
        run,
        |s| s.steps_per_sec,
        |s| (s.instructions, s.cycles),
    )
}

/// Per-workload speedup table, printed to **stderr** by every run mode
/// so A/B ratios can be scraped from CI logs without parsing the JSON
/// (stdout carries the mode-specific report; stderr carries this uniform
/// summary plus FAIL/note lines). Each row is `(workload, fast, base)`
/// in steps/sec; the labels name what "fast" and "base" mean per mode.
fn speedup_table(mode: &str, fast_label: &str, base_label: &str, rows: &[(String, f64, f64)]) {
    eprintln!("speedup table [{mode}]:");
    eprintln!(
        "  {:<24} {:>14} {:>14} {:>9}",
        "workload", fast_label, base_label, "speedup"
    );
    for (name, fast, base) in rows {
        eprintln!(
            "  {:<24} {:>14.0} {:>14.0} {:>8.2}x",
            name,
            fast,
            base,
            fast / base.max(1e-9)
        );
    }
}

struct Workload {
    name: &'static str,
    cached: PerfSample,
    uncached: PerfSample,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.cached.steps_per_sec / self.uncached.steps_per_sec.max(1e-9)
    }

    fn cycles_identical(&self) -> bool {
        self.cached.cycles == self.uncached.cycles
            && self.cached.instructions == self.uncached.instructions
    }
}

fn sample_json(s: &PerfSample) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \
         \"steps_per_sec\": {:.1}, \"pac_memo_hits\": {}, \"pac_memo_misses\": {}}}",
        s.instructions, s.cycles, s.wall_secs, s.steps_per_sec, s.pac_memo_hits, s.pac_memo_misses
    )
}

struct Args {
    seed: u64,
    smp: bool,
    fleet: bool,
    blocks: bool,
    traces: bool,
    fuzz: bool,
    smoke: bool,
    shards: Vec<usize>,
    shards_given: bool,
    syscalls: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: DEFAULT_SEED,
        smp: false,
        fleet: false,
        blocks: false,
        traces: false,
        fuzz: false,
        smoke: false,
        shards: vec![1, 2, 4, 8],
        shards_given: false,
        syscalls: None,
    };
    let mut shards_given = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().expect("--seed takes a value");
                args.seed = parse_u64(&v);
            }
            "--smp" => args.smp = true,
            "--fleet" => args.fleet = true,
            "--blocks" => args.blocks = true,
            "--traces" => args.traces = true,
            "--fuzz" => args.fuzz = true,
            "--smoke" => args.smoke = true,
            "--shards" => {
                let v = it.next().expect("--shards takes a comma-separated list");
                args.shards = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard counts are integers"))
                    .collect();
                shards_given = true;
            }
            "--syscalls" => {
                let v = it.next().expect("--syscalls takes a value");
                args.syscalls = Some(parse_u64(&v));
            }
            other => panic!(
                "unknown argument {other} \
                 (try --seed/--smp/--fleet/--blocks/--traces/--fuzz/--smoke/--shards)"
            ),
        }
    }
    // --smoke only shrinks the *default* curve; an explicit --shards wins.
    if args.smoke && !shards_given {
        args.shards = vec![1, 2];
    }
    args.shards_given = shards_given;
    args
}

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex seed")
    } else {
        s.parse().expect("decimal seed")
    }
}

fn run_fastpath(seed: u64) -> i32 {
    let workloads = [
        Workload {
            name: "fig2_hot_loop",
            // Run uncached first so the cached run cannot benefit from a
            // warmer host (allocator, branch predictors).
            uncached: best(|| perf::hot_loop(HOT_LOOP_ITERS, false)),
            cached: best(|| perf::hot_loop(HOT_LOOP_ITERS, true)),
        },
        Workload {
            name: "lmbench_syscall_mix",
            uncached: best(|| perf::syscall_mix(SYSCALL_REPS, false, seed)),
            cached: best(|| perf::syscall_mix(SYSCALL_REPS, true, seed)),
        },
    ];

    let mut all_identical = true;
    println!("perfcheck: simulator throughput, caches on vs off (seed {seed:#x})");
    println!(
        "{:<22} {:>14} {:>14} {:>9} {:>12}  cycles",
        "workload", "cached st/s", "uncached st/s", "speedup", "memo h/m"
    );
    for w in &workloads {
        all_identical &= w.cycles_identical();
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x {:>6}/{:<6} {}",
            w.name,
            w.cached.steps_per_sec,
            w.uncached.steps_per_sec,
            w.speedup(),
            w.cached.pac_memo_hits,
            w.cached.pac_memo_misses,
            if w.cycles_identical() {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    let hot_speedup = workloads[0].speedup();
    speedup_table(
        "fastpath",
        "cached st/s",
        "uncached st/s",
        &workloads
            .iter()
            .map(|w| {
                (
                    w.name.to_string(),
                    w.cached.steps_per_sec,
                    w.uncached.steps_per_sec,
                )
            })
            .collect::<Vec<_>>(),
    );

    let mut json = String::from("{\n  \"bench\": \"perfcheck\",\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"cached\": {}, \"uncached\": {}, \"speedup\": {:.2}, \"cycles_identical\": {}}}{}\n",
            w.name,
            sample_json(&w.cached),
            sample_json(&w.uncached),
            w.speedup(),
            w.cycles_identical(),
            if i + 1 < workloads.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"speedup_target\": {SPEEDUP_TARGET:.1},\n  \"hot_loop_speedup\": {hot_speedup:.2},\n  \"cycles_identical\": {all_identical}\n}}\n"
    );
    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    println!("wrote BENCH_2.json");

    if !all_identical {
        eprintln!("FAIL: caches changed simulated cycle/instruction counts");
        return 1;
    }
    if hot_speedup < SPEEDUP_TARGET {
        eprintln!(
            "note: hot-loop speedup {hot_speedup:.2}x below the {SPEEDUP_TARGET:.1}x target \
             (non-gating; host-dependent)"
        );
    }
    0
}

fn run_smp(args: &Args) -> i32 {
    let total = args.syscalls.unwrap_or(if args.smoke {
        SMOKE_SYSCALLS
    } else {
        SCALING_SYSCALLS
    });
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "perfcheck --smp: lmbench-mix scaling, {total} syscalls/point, \
         seed {:#x}, host cores {host_cores}",
        args.seed
    );
    println!(
        "{:>7} {:>12} {:>16} {:>16} {:>10}  totals",
        "shards", "wall secs", "wall st/s", "capacity st/s", "cap. x"
    );

    let points: Vec<ScalingPoint> = args
        .shards
        .iter()
        .map(|&n| perf::smp_scaling(n, total, args.seed))
        .collect();
    // Normalize against the smallest shard count actually measured (the
    // 1-shard point on the default curve); a custom --shards list without
    // a 1-shard entry still gets a honest baseline, recorded in the JSON.
    let base = points
        .iter()
        .min_by_key(|p| p.shards)
        .expect("at least one point");
    let baseline_shards = base.shards;
    let base_capacity = base.capacity_steps_per_sec.max(1e-9);
    let base_wall = base.parallel_steps_per_sec.max(1e-9);
    let mut all_identical = true;
    for p in &points {
        all_identical &= p.simulation_identical;
        println!(
            "{:>7} {:>12.3} {:>16.0} {:>16.0} {:>9.2}x  {}",
            p.shards,
            p.parallel_wall_secs,
            p.parallel_steps_per_sec,
            p.capacity_steps_per_sec,
            p.capacity_steps_per_sec / base_capacity,
            if p.simulation_identical {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    let top = points
        .iter()
        .max_by_key(|p| p.shards)
        .expect("at least one point");
    let capacity_speedup = top.capacity_steps_per_sec / base_capacity;
    let wall_speedup = top.parallel_steps_per_sec / base_wall;
    // Wall scaling is bounded by the host's core count: with fewer cores
    // than shards, the parallel shards time-slice and the wall speedup
    // can legitimately sit at (or below) 1x while capacity scales — make
    // the blind spot explicit instead of letting the number mislead.
    let wall_note = if host_cores < top.shards {
        Some(format!(
            "wall speedup measured on {host_cores} host core(s) for {} shards; \
             parallel shards time-sliced, so this number understates scaling — \
             use capacity_steps_per_sec for the pool's service rate",
            top.shards
        ))
    } else {
        None
    };
    if let Some(note) = &wall_note {
        eprintln!("disclaimer: {note}");
    }
    speedup_table(
        "smp",
        "capacity st/s",
        "baseline st/s",
        &points
            .iter()
            .map(|p| {
                (
                    format!("lmbench_mix@{}shards", p.shards),
                    p.capacity_steps_per_sec,
                    base_capacity,
                )
            })
            .collect::<Vec<_>>(),
    );

    let mut json = String::from("{\n  \"bench\": \"smp_scaling\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"total_syscalls\": {total},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"syscalls\": {}, \"instructions\": {}, \"cycles\": {}, \
             \"parallel_wall_secs\": {:.6}, \"parallel_steps_per_sec\": {:.1}, \
             \"capacity_steps_per_sec\": {:.1}, \"simulation_identical\": {}}}{}\n",
            p.shards,
            p.syscalls,
            p.instructions,
            p.cycles,
            p.parallel_wall_secs,
            p.parallel_steps_per_sec,
            p.capacity_steps_per_sec,
            p.simulation_identical,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"scaling_target\": {SCALING_TARGET:.1},\n  \
         \"baseline_shards\": {baseline_shards},\n  \
         \"capacity_speedup_max_vs_baseline\": {capacity_speedup:.2},\n  \
         \"wall_speedup_max_vs_baseline\": {wall_speedup:.2},\n"
    );
    if let Some(note) = &wall_note {
        let _ = writeln!(json, "  \"wall_speedup_note\": \"{note}\",");
    }
    let _ = write!(json, "  \"simulation_identical\": {all_identical}\n}}\n");
    std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");
    println!("wrote BENCH_3.json");

    if !all_identical {
        eprintln!("FAIL: parallel and sequential sharding disagreed on simulated totals");
        return 1;
    }
    if capacity_speedup < SCALING_TARGET && points.len() > 1 {
        eprintln!(
            "note: capacity speedup {capacity_speedup:.2}x below the {SCALING_TARGET:.1}x target \
             (non-gating; host-dependent)"
        );
    }
    if wall_speedup < capacity_speedup / 2.0 {
        eprintln!(
            "note: wall speedup {wall_speedup:.2}x trails capacity {capacity_speedup:.2}x — \
             this host has {host_cores} core(s); parallel wall scaling needs as many cores as shards"
        );
    }
    0
}

/// Cores per fleet shard machine (2: migration and cross-core key
/// restores are part of the tenant mix).
const FLEET_CPUS: usize = 2;
/// Fleet shard counts (full / `--smoke`).
const FLEET_SHARDS: usize = 4;
const FLEET_SMOKE_SHARDS: usize = 2;

fn hist_json(h: &camo_bench::workloads::LatencyHistogram) -> String {
    format!(
        "{{\"count\": {}, \"min\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        h.count(),
        h.min(),
        h.mean(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.max()
    )
}

fn run_fleet(args: &Args) -> i32 {
    // The fleet runs one shard count, not a curve: an explicit --shards
    // uses its first value, otherwise the defaults apply.
    let shards = if args.shards_given {
        args.shards[0]
    } else if args.smoke {
        FLEET_SMOKE_SHARDS
    } else {
        FLEET_SHARDS
    };
    let tenants = fleet::standard_tenants(args.smoke);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "perfcheck --fleet: {} tenants x {shards} shards x {FLEET_CPUS} cores, seed {:#x}, host cores {host_cores}",
        tenants.len(),
        args.seed
    );

    let m = fleet::measure(shards, FLEET_CPUS, args.seed, tenants);
    let par = &m.parallel;
    let seq = &m.sequential;

    println!(
        "{:<12} {:<18} {:>7} {:>9} {:>12} {:>9} {:>9} {:>9}",
        "tenant", "workload", "ops", "syscalls", "cycles", "p50", "p90", "p99"
    );
    for t in &par.tenants {
        println!(
            "{:<12} {:<18} {:>7} {:>9} {:>12} {:>9} {:>9} {:>9}",
            t.name,
            t.workload,
            t.totals.ops,
            t.totals.syscalls,
            t.totals.cycles,
            t.totals.latency.p50(),
            t.totals.latency.p90(),
            t.totals.latency.p99()
        );
    }
    println!(
        "totals: {} syscalls, {} instructions, {} cycles | wall {:.3}s parallel / {:.3}s sequential | {}",
        par.syscalls,
        par.instructions,
        par.cycles,
        par.wall_secs,
        seq.wall_secs,
        if m.identical { "identical" } else { "MISMATCH" }
    );
    speedup_table(
        "fleet",
        "parallel st/s",
        "sequential st/s",
        &[(
            "fleet_mix".to_string(),
            par.steps_per_sec(),
            par.instructions as f64 / seq.wall_secs.max(1e-9),
        )],
    );

    let mut json = String::from("{\n  \"bench\": \"fleet\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"tenants\": [\n");
    for (i, t) in par.tenants.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"workload\": \"{}\", \"ops\": {}, \"syscalls\": {}, \
             \"instructions\": {}, \"cycles\": {}, \"ops_per_wall_sec\": {:.1}, \
             \"steps_per_sec\": {:.1}, \"latency_cycles\": {}}}{}\n",
            t.name,
            t.workload,
            t.totals.ops,
            t.totals.syscalls,
            t.totals.instructions,
            t.totals.cycles,
            t.totals.ops as f64 / par.wall_secs.max(1e-9),
            t.totals.instructions as f64 / par.wall_secs.max(1e-9),
            hist_json(&t.totals.latency),
            if i + 1 < par.tenants.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"totals\": {{\"syscalls\": {}, \"instructions\": {}, \"cycles\": {}, \
         \"parallel_wall_secs\": {:.6}, \"sequential_wall_secs\": {:.6}, \
         \"parallel_steps_per_sec\": {:.1}, \"capacity_steps_per_sec\": {:.1}}},\n  \
         \"simulation_identical\": {}\n}}\n",
        par.syscalls,
        par.instructions,
        par.cycles,
        par.wall_secs,
        seq.wall_secs,
        par.steps_per_sec(),
        seq.capacity_steps_per_sec(),
        m.identical
    );
    std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");
    println!("wrote BENCH_4.json");

    if !m.identical {
        eprintln!("FAIL: parallel and sequential fleet runs disagreed on simulated state");
        return 1;
    }
    0
}

/// The speedup the block engine is expected to deliver over the cached
/// step loop (hot loop and fleet mix alike).
const BLOCK_SPEEDUP_TARGET: f64 = 2.0;
/// Hot-loop iterations for the `--blocks` A/B (full / `--smoke`).
const BLOCK_HOT_ITERS: u64 = 100_000;
const BLOCK_SMOKE_HOT_ITERS: u64 = 20_000;

/// Repeats for the `--blocks` hot loop (more than [`REPEATS`]: the A/B
/// sits near its gate value, so the minimum-wall estimate needs more
/// draws on a noisy shared host).
const BLOCK_REPEATS: usize = 5;

/// Best-of-[`BLOCK_REPEATS`] for the BENCH_5 hot-loop samples.
fn best_block(
    run: impl Fn() -> camo_bench::blocks::BlockSample,
) -> camo_bench::blocks::BlockSample {
    best_of(
        BLOCK_REPEATS,
        run,
        |s| s.sample.steps_per_sec,
        |s| (s.sample.instructions, s.sample.cycles),
    )
}

fn block_sample_json(s: &camo_bench::blocks::BlockSample) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \
         \"steps_per_sec\": {:.1}, \"block_hits\": {}, \"block_misses\": {}, \
         \"block_invalidations\": {}}}",
        s.sample.instructions,
        s.sample.cycles,
        s.sample.wall_secs,
        s.sample.steps_per_sec,
        s.block_hits,
        s.block_misses,
        s.block_invalidations
    )
}

fn run_blocks(args: &Args) -> i32 {
    use camo_bench::blocks;

    let hot_iters = if args.smoke {
        BLOCK_SMOKE_HOT_ITERS
    } else {
        BLOCK_HOT_ITERS
    };
    let shards = if args.shards_given {
        args.shards[0]
    } else if args.smoke {
        FLEET_SMOKE_SHARDS
    } else {
        FLEET_SHARDS
    };
    let tenants = fleet::standard_tenants(args.smoke);
    println!(
        "perfcheck --blocks: block engine on vs off (caches on), seed {:#x}, \
         {} tenants x {shards} shards x {FLEET_CPUS} cores",
        args.seed,
        tenants.len()
    );

    // Hot loop: engine off first so the on-arm cannot benefit from a
    // warmer host.
    let hot_off = best_block(|| blocks::hot_loop(hot_iters, false));
    let hot_on = best_block(|| blocks::hot_loop(hot_iters, true));
    let hot_identical = (hot_on.sample.cycles, hot_on.sample.instructions)
        == (hot_off.sample.cycles, hot_off.sample.instructions);
    let hot_speedup = hot_on.sample.steps_per_sec / hot_off.sample.steps_per_sec.max(1e-9);

    // Fleet mix: each arm is itself a parallel/sequential cross-check.
    // Best-of-REPEATS like every other workload (the simulated totals are
    // deterministic and asserted so below; only wall time varies).
    let ab = (1..REPEATS).fold(
        blocks::fleet_ab(shards, FLEET_CPUS, args.seed, tenants.clone()),
        |acc, _| {
            let next = blocks::fleet_ab(shards, FLEET_CPUS, args.seed, tenants.clone());
            assert_eq!(
                (next.on.parallel.cycles, next.off.parallel.cycles),
                (acc.on.parallel.cycles, acc.off.parallel.cycles),
                "simulation must be deterministic across repeats"
            );
            blocks::FleetAb {
                on: if next.on.sequential.capacity_steps_per_sec()
                    > acc.on.sequential.capacity_steps_per_sec()
                {
                    next.on
                } else {
                    acc.on
                },
                off: if next.off.sequential.capacity_steps_per_sec()
                    > acc.off.sequential.capacity_steps_per_sec()
                {
                    next.off
                } else {
                    acc.off
                },
            }
        },
    );
    let fleet_identical = (ab.on.parallel.cycles, ab.on.parallel.instructions)
        == (ab.off.parallel.cycles, ab.off.parallel.instructions);
    let arch_identical = ab.arch_identical();
    let mode_identical = ab.on.identical && ab.off.identical;
    let fleet_speedup = ab.speedup();

    println!(
        "{:<22} {:>14} {:>14} {:>9}  cycles",
        "workload", "blocks st/s", "step st/s", "speedup"
    );
    for (name, on, off, speedup, identical) in [
        (
            "fig2_hot_loop",
            hot_on.sample.steps_per_sec,
            hot_off.sample.steps_per_sec,
            hot_speedup,
            hot_identical,
        ),
        (
            "fleet_mix",
            ab.on.sequential.capacity_steps_per_sec(),
            ab.off.sequential.capacity_steps_per_sec(),
            fleet_speedup,
            fleet_identical,
        ),
    ] {
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x  {}",
            name,
            on,
            off,
            speedup,
            if identical { "identical" } else { "MISMATCH" }
        );
    }
    let on_stats = &ab.on.parallel.stats;
    println!(
        "fleet block cache: {} hits / {} misses / {} invalidations | arch {} | modes {}",
        on_stats.block_hits,
        on_stats.block_misses,
        on_stats.block_invalidations,
        if arch_identical {
            "identical"
        } else {
            "MISMATCH"
        },
        if mode_identical {
            "identical"
        } else {
            "MISMATCH"
        }
    );

    let cycles_identical = hot_identical && fleet_identical;
    let simulation_identical = arch_identical && mode_identical;
    speedup_table(
        "blocks",
        "blocks st/s",
        "step st/s",
        &[
            (
                "fig2_hot_loop".to_string(),
                hot_on.sample.steps_per_sec,
                hot_off.sample.steps_per_sec,
            ),
            (
                "fleet_mix".to_string(),
                ab.on.sequential.capacity_steps_per_sec(),
                ab.off.sequential.capacity_steps_per_sec(),
            ),
        ],
    );

    let mut json = String::from("{\n  \"bench\": \"block_engine\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    let _ = writeln!(json, "  \"hot_loop_iters\": {hot_iters},");
    json.push_str("  \"workloads\": [\n");
    let _ = writeln!(
        json,
        "    {{\"name\": \"fig2_hot_loop\", \"blocks_on\": {}, \"blocks_off\": {}, \
         \"speedup\": {hot_speedup:.2}, \"cycles_identical\": {hot_identical}}},",
        block_sample_json(&hot_on),
        block_sample_json(&hot_off),
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"fleet_mix\", \
         \"blocks_on\": {{\"instructions\": {}, \"cycles\": {}, \"syscalls\": {}, \
         \"capacity_steps_per_sec\": {:.1}, \"block_hits\": {}, \"block_misses\": {}, \
         \"block_invalidations\": {}}}, \
         \"blocks_off\": {{\"instructions\": {}, \"cycles\": {}, \"syscalls\": {}, \
         \"capacity_steps_per_sec\": {:.1}}}, \
         \"speedup\": {fleet_speedup:.2}, \"cycles_identical\": {fleet_identical}, \
         \"arch_identical\": {arch_identical}, \
         \"parallel_sequential_identical\": {mode_identical}}}",
        ab.on.parallel.instructions,
        ab.on.parallel.cycles,
        ab.on.parallel.syscalls,
        ab.on.sequential.capacity_steps_per_sec(),
        on_stats.block_hits,
        on_stats.block_misses,
        on_stats.block_invalidations,
        ab.off.parallel.instructions,
        ab.off.parallel.cycles,
        ab.off.parallel.syscalls,
        ab.off.sequential.capacity_steps_per_sec(),
    );
    let _ = write!(
        json,
        "  ],\n  \"speedup_target\": {BLOCK_SPEEDUP_TARGET:.1},\n  \
         \"hot_loop_speedup\": {hot_speedup:.2},\n  \
         \"fleet_speedup\": {fleet_speedup:.2},\n  \
         \"cycles_identical\": {cycles_identical},\n  \
         \"simulation_identical\": {simulation_identical}\n}}\n"
    );
    std::fs::write("BENCH_5.json", &json).expect("write BENCH_5.json");
    println!("wrote BENCH_5.json");

    if !cycles_identical {
        eprintln!("FAIL: the block engine changed simulated cycle/instruction counts");
        return 1;
    }
    if !simulation_identical {
        eprintln!(
            "FAIL: the block engine changed architectural per-tenant state, or \
             parallel and sequential fleet runs disagreed within an arm"
        );
        return 1;
    }
    if hot_speedup < BLOCK_SPEEDUP_TARGET || fleet_speedup < BLOCK_SPEEDUP_TARGET {
        eprintln!(
            "note: block-engine speedup {hot_speedup:.2}x hot loop / {fleet_speedup:.2}x fleet, \
             target {BLOCK_SPEEDUP_TARGET:.1}x (non-gating; host-dependent)"
        );
    }
    0
}

/// The speedup the trace tier is expected to deliver *over the blocks-on
/// baseline* (i.e. stacked on top of BENCH_5's win).
const TRACE_SPEEDUP_TARGET: f64 = 2.0;

/// Best-of-[`BLOCK_REPEATS`] for the BENCH_7 hot-loop samples.
fn best_trace(
    run: impl Fn() -> camo_bench::traces::TraceSample,
) -> camo_bench::traces::TraceSample {
    best_of(
        BLOCK_REPEATS,
        run,
        |s| s.sample.steps_per_sec,
        |s| (s.sample.instructions, s.sample.cycles),
    )
}

fn trace_sample_json(s: &camo_bench::traces::TraceSample) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \
         \"steps_per_sec\": {:.1}, \"trace_hits\": {}, \"trace_misses\": {}, \
         \"trace_invalidations\": {}, \"chain_follows\": {}, \"block_hits\": {}}}",
        s.sample.instructions,
        s.sample.cycles,
        s.sample.wall_secs,
        s.sample.steps_per_sec,
        s.trace_hits,
        s.trace_misses,
        s.trace_invalidations,
        s.chain_follows,
        s.block_hits
    )
}

fn run_traces(args: &Args) -> i32 {
    use camo_bench::traces;

    let hot_iters = if args.smoke {
        BLOCK_SMOKE_HOT_ITERS
    } else {
        BLOCK_HOT_ITERS
    };
    let shards = if args.shards_given {
        args.shards[0]
    } else if args.smoke {
        FLEET_SMOKE_SHARDS
    } else {
        FLEET_SHARDS
    };
    let tenants = fleet::standard_tenants(args.smoke);
    println!(
        "perfcheck --traces: trace tier on vs off (blocks + caches on), seed {:#x}, \
         {} tenants x {shards} shards x {FLEET_CPUS} cores",
        args.seed,
        tenants.len()
    );

    // Hot loop: tier off first so the on-arm cannot benefit from a warmer
    // host.
    let hot_off = best_trace(|| traces::hot_loop(hot_iters, false));
    let hot_on = best_trace(|| traces::hot_loop(hot_iters, true));
    let hot_identical = (hot_on.sample.cycles, hot_on.sample.instructions)
        == (hot_off.sample.cycles, hot_off.sample.instructions);
    let hot_speedup = hot_on.sample.steps_per_sec / hot_off.sample.steps_per_sec.max(1e-9);

    // Fleet mix: best-of-REPEATS, simulated totals asserted deterministic.
    let ab = (1..REPEATS).fold(
        traces::fleet_ab(shards, FLEET_CPUS, args.seed, tenants.clone()),
        |acc, _| {
            let next = traces::fleet_ab(shards, FLEET_CPUS, args.seed, tenants.clone());
            assert_eq!(
                (next.on.parallel.cycles, next.off.parallel.cycles),
                (acc.on.parallel.cycles, acc.off.parallel.cycles),
                "simulation must be deterministic across repeats"
            );
            traces::FleetAb {
                on: if next.on.sequential.capacity_steps_per_sec()
                    > acc.on.sequential.capacity_steps_per_sec()
                {
                    next.on
                } else {
                    acc.on
                },
                off: if next.off.sequential.capacity_steps_per_sec()
                    > acc.off.sequential.capacity_steps_per_sec()
                {
                    next.off
                } else {
                    acc.off
                },
            }
        },
    );
    let fleet_identical = (ab.on.parallel.cycles, ab.on.parallel.instructions)
        == (ab.off.parallel.cycles, ab.off.parallel.instructions);
    let arch_identical = ab.arch_identical();
    let mode_identical = ab.on.identical && ab.off.identical;
    let fleet_speedup = ab.speedup();

    println!(
        "{:<22} {:>14} {:>14} {:>9}  cycles",
        "workload", "traces st/s", "blocks st/s", "speedup"
    );
    for (name, on, off, speedup, identical) in [
        (
            "fig2_hot_loop",
            hot_on.sample.steps_per_sec,
            hot_off.sample.steps_per_sec,
            hot_speedup,
            hot_identical,
        ),
        (
            "fleet_mix",
            ab.on.sequential.capacity_steps_per_sec(),
            ab.off.sequential.capacity_steps_per_sec(),
            fleet_speedup,
            fleet_identical,
        ),
    ] {
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x  {}",
            name,
            on,
            off,
            speedup,
            if identical { "identical" } else { "MISMATCH" }
        );
    }
    let on_stats = &ab.on.parallel.stats;
    println!(
        "fleet trace cache: {} hits / {} misses / {} invalidations | \
         {} chain follows | block hits {} -> {} | arch {} | modes {}",
        on_stats.trace_hits,
        on_stats.trace_misses,
        on_stats.trace_invalidations,
        on_stats.chain_follows,
        ab.off.parallel.stats.block_hits,
        on_stats.block_hits,
        if arch_identical {
            "identical"
        } else {
            "MISMATCH"
        },
        if mode_identical {
            "identical"
        } else {
            "MISMATCH"
        }
    );

    let cycles_identical = hot_identical && fleet_identical;
    let simulation_identical = arch_identical && mode_identical;
    speedup_table(
        "traces",
        "traces st/s",
        "blocks st/s",
        &[
            (
                "fig2_hot_loop".to_string(),
                hot_on.sample.steps_per_sec,
                hot_off.sample.steps_per_sec,
            ),
            (
                "fleet_mix".to_string(),
                ab.on.sequential.capacity_steps_per_sec(),
                ab.off.sequential.capacity_steps_per_sec(),
            ),
        ],
    );

    let mut json = String::from("{\n  \"bench\": \"trace_engine\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    let _ = writeln!(json, "  \"hot_loop_iters\": {hot_iters},");
    json.push_str("  \"workloads\": [\n");
    let _ = writeln!(
        json,
        "    {{\"name\": \"fig2_hot_loop\", \"traces_on\": {}, \"traces_off\": {}, \
         \"speedup\": {hot_speedup:.2}, \"cycles_identical\": {hot_identical}}},",
        trace_sample_json(&hot_on),
        trace_sample_json(&hot_off),
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"fleet_mix\", \
         \"traces_on\": {{\"instructions\": {}, \"cycles\": {}, \"syscalls\": {}, \
         \"capacity_steps_per_sec\": {:.1}, \"trace_hits\": {}, \"trace_misses\": {}, \
         \"trace_invalidations\": {}, \"chain_follows\": {}, \"block_hits\": {}}}, \
         \"traces_off\": {{\"instructions\": {}, \"cycles\": {}, \"syscalls\": {}, \
         \"capacity_steps_per_sec\": {:.1}, \"block_hits\": {}}}, \
         \"speedup\": {fleet_speedup:.2}, \"cycles_identical\": {fleet_identical}, \
         \"arch_identical\": {arch_identical}, \
         \"parallel_sequential_identical\": {mode_identical}}}",
        ab.on.parallel.instructions,
        ab.on.parallel.cycles,
        ab.on.parallel.syscalls,
        ab.on.sequential.capacity_steps_per_sec(),
        on_stats.trace_hits,
        on_stats.trace_misses,
        on_stats.trace_invalidations,
        on_stats.chain_follows,
        on_stats.block_hits,
        ab.off.parallel.instructions,
        ab.off.parallel.cycles,
        ab.off.parallel.syscalls,
        ab.off.sequential.capacity_steps_per_sec(),
        ab.off.parallel.stats.block_hits,
    );
    let _ = write!(
        json,
        "  ],\n  \"speedup_target\": {TRACE_SPEEDUP_TARGET:.1},\n  \
         \"hot_loop_speedup\": {hot_speedup:.2},\n  \
         \"fleet_speedup\": {fleet_speedup:.2},\n  \
         \"cycles_identical\": {cycles_identical},\n  \
         \"simulation_identical\": {simulation_identical}\n}}\n"
    );
    std::fs::write("BENCH_7.json", &json).expect("write BENCH_7.json");
    println!("wrote BENCH_7.json");

    if !cycles_identical {
        eprintln!("FAIL: the trace tier changed simulated cycle/instruction counts");
        return 1;
    }
    if !simulation_identical {
        eprintln!(
            "FAIL: the trace tier changed architectural per-tenant state, or \
             parallel and sequential fleet runs disagreed within an arm"
        );
        return 1;
    }
    if hot_speedup < TRACE_SPEEDUP_TARGET || fleet_speedup < TRACE_SPEEDUP_TARGET {
        eprintln!(
            "note: trace-tier speedup {hot_speedup:.2}x hot loop / {fleet_speedup:.2}x fleet, \
             target {TRACE_SPEEDUP_TARGET:.1}x over blocks-on (non-gating; host-dependent)"
        );
    }
    0
}

fn run_fuzz(args: &Args) -> i32 {
    use camo_bench::fuzz;

    let shards = if args.shards_given {
        args.shards[0]
    } else if args.smoke {
        FLEET_SMOKE_SHARDS
    } else {
        FLEET_SHARDS
    };
    println!(
        "perfcheck --fuzz: adversarial traffic plane, seed {:#x}, \
         {shards} shards x {FLEET_CPUS} cores, block engine on and off",
        args.seed
    );

    let ab = fuzz::measure(shards, FLEET_CPUS, args.seed, args.smoke);

    println!(
        "{:<11} {:>8} {:>7} {:>10} {:>7} {:>9} {:>10} {:>10}",
        "arm", "hostile", "matched", "benign", "fp", "fp rate", "kill p50", "kill p99"
    );
    for (label, arm) in [("blocks_off", &ab.off), ("blocks_on", &ab.on)] {
        let ledger = arm.ledger();
        println!(
            "{:<11} {:>8} {:>7} {:>10} {:>7} {:>9.4} {:>10} {:>10}",
            label,
            ledger.attempted,
            ledger.matched,
            ledger.benign_ops,
            ledger.benign_pac_events,
            ledger.false_positive_rate(),
            ledger.time_to_kill.p50(),
            ledger.time_to_kill.p99()
        );
    }
    println!("{:<22} {:>9} {:>8}", "hostile op", "attempted", "matched");
    for (name, attempted, matched) in ab.on.per_op() {
        println!("{name:<22} {attempted:>9} {matched:>8}");
    }
    for check in ab.on.isolation.iter().chain(&ab.off.isolation) {
        println!(
            "benign tenant {:<8} vs isolated baseline: {}",
            check.name,
            if check.identical {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    let arms_identical = ab.arch_identical();
    println!(
        "arms: {}",
        if arms_identical {
            "identical (hostile ledgers included)"
        } else {
            "MISMATCH"
        }
    );
    speedup_table(
        "fuzz",
        "blocks_on st/s",
        "blocks_off st/s",
        &[(
            "adversarial_mix".to_string(),
            ab.on.mixed.parallel.steps_per_sec(),
            ab.off.mixed.parallel.steps_per_sec(),
        )],
    );

    let mut json = String::from("{\n  \"bench\": \"fuzz\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    json.push_str("  \"arms\": [\n");
    let arms = [("blocks_off", &ab.off), ("blocks_on", &ab.on)];
    for (i, (label, arm)) in arms.iter().enumerate() {
        let ledger = arm.ledger();
        let _ = writeln!(json, "    {{\"name\": \"{label}\",");
        let _ = writeln!(
            json,
            "     \"hostile\": {{\"attempted\": {}, \"matched\": {}, \"benign_ops\": {}, \
             \"benign_pac_events\": {}, \"false_positive_rate\": {:.6}, \
             \"time_to_kill_cycles\": {}}},",
            ledger.attempted,
            ledger.matched,
            ledger.benign_ops,
            ledger.benign_pac_events,
            ledger.false_positive_rate(),
            hist_json(&ledger.time_to_kill)
        );
        json.push_str("     \"ops\": [");
        let per_op = arm.per_op();
        for (j, (name, attempted, matched)) in per_op.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"op\": \"{name}\", \"attempted\": {attempted}, \"matched\": {matched}}}{}",
                if j + 1 < per_op.len() { ", " } else { "" }
            );
        }
        json.push_str("],\n     \"tenants\": [");
        let tenants = &arm.mixed.parallel.tenants;
        for (j, t) in tenants.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"name\": \"{}\", \"workload\": \"{}\", \"ops\": {}, \"cycles\": {}, \
                 \"hostile_attempted\": {}, \"benign_pac_events\": {}}}{}",
                t.name,
                t.workload,
                t.totals.ops,
                t.totals.cycles,
                t.totals.hostile.attempted,
                t.totals.hostile.benign_pac_events,
                if j + 1 < tenants.len() { ", " } else { "" }
            );
        }
        json.push_str("],\n     \"isolation\": [");
        for (j, c) in arm.isolation.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"name\": \"{}\", \"identical\": {}}}{}",
                c.name,
                c.identical,
                if j + 1 < arm.isolation.len() {
                    ", "
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(
            json,
            "],\n     \"gates\": {{\"all_hostile_matched\": {}, \"zero_false_positives\": {}, \
             \"benign_isolated\": {}, \"parallel_sequential_identical\": {}}}}}{}",
            arm.all_hostile_matched(),
            arm.zero_false_positives(),
            arm.benign_isolated(),
            arm.mixed.identical,
            if i + 1 < arms.len() { "," } else { "" }
        );
    }
    let pass = ab.passes();
    let _ = write!(
        json,
        "  ],\n  \"arms_arch_identical\": {arms_identical},\n  \"pass\": {pass}\n}}\n"
    );
    std::fs::write("BENCH_6.json", &json).expect("write BENCH_6.json");
    println!("wrote BENCH_6.json");

    let mut code = 0;
    for (label, arm) in arms {
        if !arm.all_hostile_matched() {
            eprintln!("FAIL({label}): a hostile op missed its declared expected outcome");
            code = 1;
        }
        if !arm.zero_false_positives() {
            eprintln!("FAIL({label}): failure-policy events fired in benign op windows");
            code = 1;
        }
        if !arm.benign_isolated() {
            eprintln!(
                "FAIL({label}): a benign tenant's simulated totals deviated from its \
                 isolated baseline under attack load"
            );
            code = 1;
        }
        if !arm.mixed.identical {
            eprintln!("FAIL({label}): parallel and sequential fleet runs disagreed");
            code = 1;
        }
    }
    if !arms_identical {
        eprintln!("FAIL: the block engine changed the adversarial plan's architectural state");
        code = 1;
    }
    code
}

fn main() {
    let args = parse_args();
    let code = if args.fuzz {
        run_fuzz(&args)
    } else if args.traces {
        run_traces(&args)
    } else if args.blocks {
        run_blocks(&args)
    } else if args.fleet {
        run_fleet(&args)
    } else if args.smp {
        run_smp(&args)
    } else {
        run_fastpath(args.seed)
    };
    std::process::exit(code);
}
