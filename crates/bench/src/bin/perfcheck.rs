//! Wall-clock regression checks for the simulator's throughput layers.
//!
//! Three modes, selected by `--smp` / `--fleet`:
//!
//! * **Default (fast-path A/B, `BENCH_2.json`)** — runs the Figure-2 call
//!   loop and the lmbench syscall mix with the simulator's caches
//!   (software TLB, decoded-instruction cache, warm QARMA schedules + MAC
//!   memo) on and off. Two properties:
//!   1. **Invisibility** (hard): simulated cycle and instruction counts
//!      must be bit-identical with caches on or off. Mismatch exits
//!      non-zero.
//!   2. **Speed** (reported): the cached hot loop should run ≥ 5× the
//!      uncached per-byte path.
//!
//! * **`--smp` (sharded scaling, `BENCH_3.json`)** — runs the lmbench mix
//!   through `camo_smp::ShardedDriver` at increasing shard counts. Each
//!   point is measured twice: parallel (wall scaling on *this* host,
//!   bounded by its core count) and sequential (isolated per-shard
//!   capacity, the pool's aggregate rate given one core per shard). One
//!   hard property: both modes must produce bit-identical simulated
//!   totals — sharding is architecturally invisible.
//!
//! * **`--fleet` (multi-tenant fleet, `BENCH_4.json`)** — serves the
//!   standard tenant mix (lmbench traffic, a fork/exec churn storm,
//!   module load/unload churn, and a context-switch-heavy tenant) through
//!   `camo_smp::FleetDriver`, measured in both execution modes. Reports
//!   per-workload throughput and p50/p90/p99 simulated-cycle latency
//!   percentiles, and gates (hard) on the parallel and sequential runs
//!   agreeing bit for bit on every simulated quantity — including each
//!   tenant's latency histogram.
//!
//! `--seed N` pins the boot seed used by the syscall-mix machine and the
//! shard/tenant partitioning; it is emitted into the JSON so A/B runs and
//! shard partitions reproduce byte for byte. `--smoke` shrinks the
//! `--smp` and `--fleet` runs for CI runners. The emitted `BENCH_*.json`
//! schemas are documented in `BENCHMARKS.md`.

use camo_bench::fleet;
use camo_bench::perf::{self, PerfSample, ScalingPoint};
use std::fmt::Write as _;

/// Hot-loop iterations (the Figure-2 call loop is ~14 insns/iteration).
const HOT_LOOP_ITERS: u64 = 100_000;
/// Rounds of the full syscall mix.
const SYSCALL_REPS: u64 = 40;
/// The speedup the fast path is expected to deliver on the hot loop.
const SPEEDUP_TARGET: f64 = 5.0;
/// Capacity speedup expected at 8 shards vs 1 on the scaling curve.
const SCALING_TARGET: f64 = 3.0;
/// Repeats per measurement; the fastest is reported (shared CI hosts are
/// noisy, and the minimum wall time is the least contaminated estimate).
const REPEATS: usize = 3;
/// Default boot seed (the kernel's default, pinned here so the emitted
/// JSON is self-describing).
const DEFAULT_SEED: u64 = 0xCAF0_0D5E;
/// Syscalls across all shards per scaling point (full / `--smoke`).
const SCALING_SYSCALLS: u64 = 24_000;
const SMOKE_SYSCALLS: u64 = 2_000;

/// Best-of-[`REPEATS`] wall time; simulated counters must agree exactly
/// across repeats (they are deterministic).
fn best(run: impl Fn() -> PerfSample) -> PerfSample {
    let first = run();
    (1..REPEATS).fold(first, |acc, _| {
        let s = run();
        assert_eq!(
            (s.instructions, s.cycles),
            (acc.instructions, acc.cycles),
            "simulation must be deterministic across repeats"
        );
        if s.steps_per_sec > acc.steps_per_sec {
            s
        } else {
            acc
        }
    })
}

struct Workload {
    name: &'static str,
    cached: PerfSample,
    uncached: PerfSample,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.cached.steps_per_sec / self.uncached.steps_per_sec.max(1e-9)
    }

    fn cycles_identical(&self) -> bool {
        self.cached.cycles == self.uncached.cycles
            && self.cached.instructions == self.uncached.instructions
    }
}

fn sample_json(s: &PerfSample) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \
         \"steps_per_sec\": {:.1}, \"pac_memo_hits\": {}, \"pac_memo_misses\": {}}}",
        s.instructions, s.cycles, s.wall_secs, s.steps_per_sec, s.pac_memo_hits, s.pac_memo_misses
    )
}

struct Args {
    seed: u64,
    smp: bool,
    fleet: bool,
    smoke: bool,
    shards: Vec<usize>,
    shards_given: bool,
    syscalls: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: DEFAULT_SEED,
        smp: false,
        fleet: false,
        smoke: false,
        shards: vec![1, 2, 4, 8],
        shards_given: false,
        syscalls: None,
    };
    let mut shards_given = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().expect("--seed takes a value");
                args.seed = parse_u64(&v);
            }
            "--smp" => args.smp = true,
            "--fleet" => args.fleet = true,
            "--smoke" => args.smoke = true,
            "--shards" => {
                let v = it.next().expect("--shards takes a comma-separated list");
                args.shards = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard counts are integers"))
                    .collect();
                shards_given = true;
            }
            "--syscalls" => {
                let v = it.next().expect("--syscalls takes a value");
                args.syscalls = Some(parse_u64(&v));
            }
            other => panic!("unknown argument {other} (try --seed/--smp/--fleet/--smoke/--shards)"),
        }
    }
    // --smoke only shrinks the *default* curve; an explicit --shards wins.
    if args.smoke && !shards_given {
        args.shards = vec![1, 2];
    }
    args.shards_given = shards_given;
    args
}

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex seed")
    } else {
        s.parse().expect("decimal seed")
    }
}

fn run_fastpath(seed: u64) -> i32 {
    let workloads = [
        Workload {
            name: "fig2_hot_loop",
            // Run uncached first so the cached run cannot benefit from a
            // warmer host (allocator, branch predictors).
            uncached: best(|| perf::hot_loop(HOT_LOOP_ITERS, false)),
            cached: best(|| perf::hot_loop(HOT_LOOP_ITERS, true)),
        },
        Workload {
            name: "lmbench_syscall_mix",
            uncached: best(|| perf::syscall_mix(SYSCALL_REPS, false, seed)),
            cached: best(|| perf::syscall_mix(SYSCALL_REPS, true, seed)),
        },
    ];

    let mut all_identical = true;
    println!("perfcheck: simulator throughput, caches on vs off (seed {seed:#x})");
    println!(
        "{:<22} {:>14} {:>14} {:>9} {:>12}  cycles",
        "workload", "cached st/s", "uncached st/s", "speedup", "memo h/m"
    );
    for w in &workloads {
        all_identical &= w.cycles_identical();
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x {:>6}/{:<6} {}",
            w.name,
            w.cached.steps_per_sec,
            w.uncached.steps_per_sec,
            w.speedup(),
            w.cached.pac_memo_hits,
            w.cached.pac_memo_misses,
            if w.cycles_identical() {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    let hot_speedup = workloads[0].speedup();

    let mut json = String::from("{\n  \"bench\": \"perfcheck\",\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"cached\": {}, \"uncached\": {}, \"speedup\": {:.2}, \"cycles_identical\": {}}}{}\n",
            w.name,
            sample_json(&w.cached),
            sample_json(&w.uncached),
            w.speedup(),
            w.cycles_identical(),
            if i + 1 < workloads.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"speedup_target\": {SPEEDUP_TARGET:.1},\n  \"hot_loop_speedup\": {hot_speedup:.2},\n  \"cycles_identical\": {all_identical}\n}}\n"
    );
    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    println!("wrote BENCH_2.json");

    if !all_identical {
        eprintln!("FAIL: caches changed simulated cycle/instruction counts");
        return 1;
    }
    if hot_speedup < SPEEDUP_TARGET {
        eprintln!(
            "note: hot-loop speedup {hot_speedup:.2}x below the {SPEEDUP_TARGET:.1}x target \
             (non-gating; host-dependent)"
        );
    }
    0
}

fn run_smp(args: &Args) -> i32 {
    let total = args.syscalls.unwrap_or(if args.smoke {
        SMOKE_SYSCALLS
    } else {
        SCALING_SYSCALLS
    });
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "perfcheck --smp: lmbench-mix scaling, {total} syscalls/point, \
         seed {:#x}, host cores {host_cores}",
        args.seed
    );
    println!(
        "{:>7} {:>12} {:>16} {:>16} {:>10}  totals",
        "shards", "wall secs", "wall st/s", "capacity st/s", "cap. x"
    );

    let points: Vec<ScalingPoint> = args
        .shards
        .iter()
        .map(|&n| perf::smp_scaling(n, total, args.seed))
        .collect();
    // Normalize against the smallest shard count actually measured (the
    // 1-shard point on the default curve); a custom --shards list without
    // a 1-shard entry still gets a honest baseline, recorded in the JSON.
    let base = points
        .iter()
        .min_by_key(|p| p.shards)
        .expect("at least one point");
    let baseline_shards = base.shards;
    let base_capacity = base.capacity_steps_per_sec.max(1e-9);
    let base_wall = base.parallel_steps_per_sec.max(1e-9);
    let mut all_identical = true;
    for p in &points {
        all_identical &= p.simulation_identical;
        println!(
            "{:>7} {:>12.3} {:>16.0} {:>16.0} {:>9.2}x  {}",
            p.shards,
            p.parallel_wall_secs,
            p.parallel_steps_per_sec,
            p.capacity_steps_per_sec,
            p.capacity_steps_per_sec / base_capacity,
            if p.simulation_identical {
                "identical"
            } else {
                "MISMATCH"
            }
        );
    }
    let top = points
        .iter()
        .max_by_key(|p| p.shards)
        .expect("at least one point");
    let capacity_speedup = top.capacity_steps_per_sec / base_capacity;
    let wall_speedup = top.parallel_steps_per_sec / base_wall;

    let mut json = String::from("{\n  \"bench\": \"smp_scaling\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"total_syscalls\": {total},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"syscalls\": {}, \"instructions\": {}, \"cycles\": {}, \
             \"parallel_wall_secs\": {:.6}, \"parallel_steps_per_sec\": {:.1}, \
             \"capacity_steps_per_sec\": {:.1}, \"simulation_identical\": {}}}{}\n",
            p.shards,
            p.syscalls,
            p.instructions,
            p.cycles,
            p.parallel_wall_secs,
            p.parallel_steps_per_sec,
            p.capacity_steps_per_sec,
            p.simulation_identical,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"scaling_target\": {SCALING_TARGET:.1},\n  \
         \"baseline_shards\": {baseline_shards},\n  \
         \"capacity_speedup_max_vs_baseline\": {capacity_speedup:.2},\n  \
         \"wall_speedup_max_vs_baseline\": {wall_speedup:.2},\n  \
         \"simulation_identical\": {all_identical}\n}}\n"
    );
    std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");
    println!("wrote BENCH_3.json");

    if !all_identical {
        eprintln!("FAIL: parallel and sequential sharding disagreed on simulated totals");
        return 1;
    }
    if capacity_speedup < SCALING_TARGET && points.len() > 1 {
        eprintln!(
            "note: capacity speedup {capacity_speedup:.2}x below the {SCALING_TARGET:.1}x target \
             (non-gating; host-dependent)"
        );
    }
    if wall_speedup < capacity_speedup / 2.0 {
        eprintln!(
            "note: wall speedup {wall_speedup:.2}x trails capacity {capacity_speedup:.2}x — \
             this host has {host_cores} core(s); parallel wall scaling needs as many cores as shards"
        );
    }
    0
}

/// Cores per fleet shard machine (2: migration and cross-core key
/// restores are part of the tenant mix).
const FLEET_CPUS: usize = 2;
/// Fleet shard counts (full / `--smoke`).
const FLEET_SHARDS: usize = 4;
const FLEET_SMOKE_SHARDS: usize = 2;

fn hist_json(h: &camo_bench::workloads::LatencyHistogram) -> String {
    format!(
        "{{\"count\": {}, \"min\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        h.count(),
        h.min(),
        h.mean(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.max()
    )
}

fn run_fleet(args: &Args) -> i32 {
    // The fleet runs one shard count, not a curve: an explicit --shards
    // uses its first value, otherwise the defaults apply.
    let shards = if args.shards_given {
        args.shards[0]
    } else if args.smoke {
        FLEET_SMOKE_SHARDS
    } else {
        FLEET_SHARDS
    };
    let tenants = fleet::standard_tenants(args.smoke);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "perfcheck --fleet: {} tenants x {shards} shards x {FLEET_CPUS} cores, seed {:#x}, host cores {host_cores}",
        tenants.len(),
        args.seed
    );

    let m = fleet::measure(shards, FLEET_CPUS, args.seed, tenants);
    let par = &m.parallel;
    let seq = &m.sequential;

    println!(
        "{:<12} {:<18} {:>7} {:>9} {:>12} {:>9} {:>9} {:>9}",
        "tenant", "workload", "ops", "syscalls", "cycles", "p50", "p90", "p99"
    );
    for t in &par.tenants {
        println!(
            "{:<12} {:<18} {:>7} {:>9} {:>12} {:>9} {:>9} {:>9}",
            t.name,
            t.workload,
            t.totals.ops,
            t.totals.syscalls,
            t.totals.cycles,
            t.totals.latency.p50(),
            t.totals.latency.p90(),
            t.totals.latency.p99()
        );
    }
    println!(
        "totals: {} syscalls, {} instructions, {} cycles | wall {:.3}s parallel / {:.3}s sequential | {}",
        par.syscalls,
        par.instructions,
        par.cycles,
        par.wall_secs,
        seq.wall_secs,
        if m.identical { "identical" } else { "MISMATCH" }
    );

    let mut json = String::from("{\n  \"bench\": \"fleet\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cpus_per_shard\": {FLEET_CPUS},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"tenants\": [\n");
    for (i, t) in par.tenants.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"workload\": \"{}\", \"ops\": {}, \"syscalls\": {}, \
             \"instructions\": {}, \"cycles\": {}, \"ops_per_wall_sec\": {:.1}, \
             \"steps_per_sec\": {:.1}, \"latency_cycles\": {}}}{}\n",
            t.name,
            t.workload,
            t.totals.ops,
            t.totals.syscalls,
            t.totals.instructions,
            t.totals.cycles,
            t.totals.ops as f64 / par.wall_secs.max(1e-9),
            t.totals.instructions as f64 / par.wall_secs.max(1e-9),
            hist_json(&t.totals.latency),
            if i + 1 < par.tenants.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"totals\": {{\"syscalls\": {}, \"instructions\": {}, \"cycles\": {}, \
         \"parallel_wall_secs\": {:.6}, \"sequential_wall_secs\": {:.6}, \
         \"parallel_steps_per_sec\": {:.1}, \"capacity_steps_per_sec\": {:.1}}},\n  \
         \"simulation_identical\": {}\n}}\n",
        par.syscalls,
        par.instructions,
        par.cycles,
        par.wall_secs,
        seq.wall_secs,
        par.steps_per_sec(),
        seq.capacity_steps_per_sec(),
        m.identical
    );
    std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");
    println!("wrote BENCH_4.json");

    if !m.identical {
        eprintln!("FAIL: parallel and sequential fleet runs disagreed on simulated state");
        return 1;
    }
    0
}

fn main() {
    let args = parse_args();
    let code = if args.fleet {
        run_fleet(&args)
    } else if args.smp {
        run_smp(&args)
    } else {
        run_fastpath(args.seed)
    };
    std::process::exit(code);
}
