//! Measurement helpers behind the benchmark harness and the `reproduce`
//! binary.
//!
//! Every table and figure of the paper's evaluation has a measurement
//! function here; the Criterion benches in `benches/` and the `reproduce`
//! report binary both build on these.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use camo_analysis as analysis;
pub use camo_attacks as attacks;
pub use camo_codegen as codegen;
pub use camo_core as core;
pub use camo_lmbench as lmbench;
pub use camo_smp as smp;
pub use camo_workloads as workloads;

/// Figure 2: per-call overhead of the three modifier schemes.
pub mod fig2 {
    use camo_codegen::{CfiScheme, CodegenConfig, FunctionBuilder, Program};
    use camo_cpu::Cpu;
    use camo_isa::{Insn, Reg};
    use camo_mem::{Memory, S1Attr, KERNEL_BASE};

    /// Result of one scheme's measurement.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct CallCost {
        /// The measured scheme.
        pub scheme: CfiScheme,
        /// Cycles per call of an empty function (call + prologue +
        /// epilogue + return + loop upkeep).
        pub cycles_per_call: f64,
        /// The same at the paper's 1.2 GHz evaluation clock.
        pub ns_per_call: f64,
    }

    /// Builds the Figure-2 call-loop machine for `scheme`: an instrumented
    /// empty function plus an uninstrumented driver loop, loaded and ready
    /// to run. Returns the machine and the driver's entry VA.
    ///
    /// Shared by [`measure`] and the `perfcheck` wall-clock harness.
    ///
    /// # Panics
    ///
    /// Panics if image building fails (a harness bug).
    pub fn build_call_loop(scheme: CfiScheme) -> (Cpu, Memory, u64) {
        let cfg = CodegenConfig {
            scheme,
            protect_pointers: false,
            compat_v80: false,
        };
        let mut program = Program::new(cfg);
        program.push(FunctionBuilder::new("empty", cfg).build());
        // The benchmark loop itself is uninstrumented (it is the
        // measurement harness, like the paper's timer loop).
        let mut driver = FunctionBuilder::new("driver", cfg).naked();
        driver.ins(Insn::mov(Reg::x(19), Reg::LR)); // save LR across the BLs
        driver.ins(Insn::mov(Reg::x(20), Reg::x(0)));
        driver.call("empty"); // loop head at index 2
        driver.ins(Insn::SubImm {
            rd: Reg::x(20),
            rn: Reg::x(20),
            imm12: 1,
            shifted: false,
        });
        driver.ins(Insn::Cbnz {
            rt: Reg::x(20),
            offset: -8,
        });
        driver.ins(Insn::mov(Reg::LR, Reg::x(19)));
        driver.ins(Insn::ret());
        program.push(driver.build());
        let image = program.link(KERNEL_BASE);

        let mut mem = Memory::new();
        let table = mem.new_table();
        let bytes = image.to_bytes();
        for (page, chunk) in bytes.chunks(4096).enumerate() {
            let frame = mem.map_new(
                table,
                KERNEL_BASE + page as u64 * 4096,
                S1Attr::kernel_text(),
            );
            mem.phys_mut().write_bytes(frame.base(), chunk).unwrap();
        }
        // A stack page for the frame records.
        let stack_va = KERNEL_BASE + 0x10_0000;
        mem.map_new(table, stack_va, S1Attr::kernel_data());

        let mut cpu = Cpu::default();
        cpu.state
            .set_sysreg(camo_isa::SysReg::Ttbr0El1, table.raw());
        cpu.state
            .set_sysreg(camo_isa::SysReg::Ttbr1El1, table.raw());
        cpu.state
            .set_pauth_key(camo_isa::PauthKey::IA, camo_qarma::QarmaKey::new(11, 12));
        cpu.state
            .set_pauth_key(camo_isa::PauthKey::IB, camo_qarma::QarmaKey::new(13, 14));
        cpu.state.sp_el1 = stack_va + 4096 - 64;
        let driver_va = image.symbol("driver").expect("driver symbol");
        (cpu, mem, driver_va)
    }

    /// Measures the per-call cost of an empty function under `scheme`
    /// by running a simulated call loop of `iters` iterations.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (a harness bug).
    pub fn measure(scheme: CfiScheme, iters: u64) -> CallCost {
        let (mut cpu, mut mem, driver_va) = build_call_loop(scheme);
        let result = cpu
            .call(&mut mem, driver_va, &[iters], 64 * iters + 1024)
            .expect("benchmark loop runs");
        CallCost {
            scheme,
            cycles_per_call: result.cycles as f64 / iters as f64,
            ns_per_call: result.cycles as f64 / iters as f64 / 1.2,
        }
    }

    /// Measures all four schemes (baseline + the Figure 2 contenders).
    pub fn all(iters: u64) -> Vec<CallCost> {
        [
            CfiScheme::None,
            CfiScheme::SpOnly,
            CfiScheme::Camouflage,
            CfiScheme::Parts,
        ]
        .into_iter()
        .map(|s| measure(s, iters))
        .collect()
    }
}

/// §6.1.1: key-switch cost in cycles per key.
pub mod key_switch {
    use camo_core::Machine;
    use camo_kernel::layout::KEYSETTER_VA;

    /// The two directions of a key switch plus their average.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct KeySwitchCost {
        /// Cycles/key to install the kernel keys via the XOM setter.
        pub install_per_key: f64,
        /// Cycles/key to restore the user keys from `thread_struct`.
        pub restore_per_key: f64,
        /// The average — the paper's "9 cycles per key" quantity.
        pub avg_per_key: f64,
    }

    /// Measures on a freshly booted protected machine, averaging `n` runs.
    ///
    /// # Panics
    ///
    /// Panics if boot or the kernel calls fail.
    pub fn measure(n: u64) -> KeySwitchCost {
        let mut machine = Machine::protected().expect("boot");
        let kernel = machine.kernel_mut();
        let restore_va = kernel.symbol("restore_user_keys");
        let mut install = 0u64;
        let mut restore = 0u64;
        for _ in 0..n {
            install += kernel.kexec(KEYSETTER_VA, &[]).expect("setter").cycles;
            restore += kernel.kexec(restore_va, &[]).expect("restore").cycles;
        }
        let keys = 3.0 * n as f64;
        let install_per_key = install as f64 / keys;
        let restore_per_key = restore as f64 / keys;
        KeySwitchCost {
            install_per_key,
            restore_per_key,
            avg_per_key: (install_per_key + restore_per_key) / 2.0,
        }
    }
}

/// Wall-clock throughput of the simulator itself (the `perfcheck` binary).
///
/// Everything else in this crate measures *simulated cycles* — the paper's
/// quantity, unaffected by the fast-path caches by design. This module
/// measures *host seconds per simulated step*: the thing the software TLB,
/// decoded-instruction cache and warm QARMA schedules exist to improve.
pub mod perf {
    use super::fig2;
    use camo_codegen::CfiScheme;
    use camo_core::{Machine, ProtectionLevel};
    use camo_kernel::SYSCALLS;
    use camo_lmbench::workload_config;
    use std::time::Instant;

    /// One wall-clock measurement of a workload.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct PerfSample {
        /// Whether the fast-path caches were enabled.
        pub caches: bool,
        /// Simulated instructions retired.
        pub instructions: u64,
        /// Simulated cycles consumed (must not depend on `caches`).
        pub cycles: u64,
        /// Host wall-clock seconds.
        pub wall_secs: f64,
        /// Simulated instructions per host second.
        pub steps_per_sec: f64,
        /// PAC-unit MAC-memo hits (0 with caches off).
        pub pac_memo_hits: u64,
        /// PAC-unit MAC-memo misses (0 with caches off).
        pub pac_memo_misses: u64,
    }

    fn sample(
        caches: bool,
        instructions: u64,
        cycles: u64,
        wall_secs: f64,
        memo: (u64, u64),
    ) -> PerfSample {
        PerfSample {
            caches,
            instructions,
            cycles,
            wall_secs,
            steps_per_sec: instructions as f64 / wall_secs.max(1e-9),
            pac_memo_hits: memo.0,
            pac_memo_misses: memo.1,
        }
    }

    /// The one Figure-2 wall-clock harness behind every A/B: builds the
    /// call loop, applies the cache, block-engine and trace-engine knobs,
    /// runs, and samples. `recorded` is the value stored in
    /// [`PerfSample::caches`] (the toggled axis of whichever A/B is
    /// calling).
    pub(crate) fn fig2_sample(
        iters: u64,
        caches: bool,
        blocks: bool,
        traces: bool,
        recorded: bool,
    ) -> (PerfSample, camo_cpu::CpuStats) {
        let (mut cpu, mut mem, driver_va) = fig2::build_call_loop(CfiScheme::Camouflage);
        cpu.set_block_engine(blocks);
        cpu.set_trace_engine(traces);
        cpu.set_caching(caches);
        mem.set_caching(caches);
        let start = Instant::now();
        let result = cpu
            .call(&mut mem, driver_va, &[iters], 64 * iters + 1024)
            .expect("benchmark loop runs");
        let wall = start.elapsed().as_secs_f64();
        let stats = cpu.stats();
        (
            sample(
                recorded,
                result.instructions,
                result.cycles,
                wall,
                (stats.pac_memo_hits, stats.pac_memo_misses),
            ),
            stats,
        )
    }

    /// The Figure-2 call loop (Camouflage scheme) run for `iters`
    /// iterations with the caches on or off.
    ///
    /// BENCH_2 isolates the PR-2 cache A/B: the block engine is pinned
    /// off in both arms (its own A/B is `perfcheck --blocks`).
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (a harness bug).
    pub fn hot_loop(iters: u64, caches: bool) -> PerfSample {
        fig2_sample(iters, caches, false, false, caches).0
    }

    /// The lmbench syscall mix (every modeled syscall, `reps` rounds each)
    /// on a fully protected machine booted from `seed`, with the caches on
    /// or off.
    ///
    /// # Panics
    ///
    /// Panics if boot or a syscall fails (a harness bug).
    pub fn syscall_mix(reps: u64, caches: bool, seed: u64) -> PerfSample {
        let mut cfg = workload_config(ProtectionLevel::Full);
        cfg.fast_caches = caches;
        // Same pinning as `hot_loop`: BENCH_2 measures the caches alone.
        cfg.block_engine = false;
        cfg.seed = seed;
        let mut machine = Machine::with_config(cfg).expect("boot");
        let kernel = machine.kernel_mut();
        let tid = kernel.current_task().tid;
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        let start = Instant::now();
        for spec in SYSCALLS {
            let out = kernel
                .run_user(tid, "stub", reps, spec.nr, 3)
                .expect("syscall mix runs");
            instructions += out.instructions;
            cycles += out.cycles;
        }
        let wall = start.elapsed().as_secs_f64();
        let stats = machine.kernel().cpu().stats();
        sample(
            caches,
            instructions,
            cycles,
            wall,
            (stats.pac_memo_hits, stats.pac_memo_misses),
        )
    }

    /// One point of the sharded-scaling curve (`BENCH_3.json`).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct ScalingPoint {
        /// Shard (machine) count.
        pub shards: usize,
        /// Syscalls served across all shards.
        pub syscalls: u64,
        /// Simulated instructions retired across all shards.
        pub instructions: u64,
        /// Simulated cycles across all shards.
        pub cycles: u64,
        /// Wall seconds of the parallel fan-out on this host.
        pub parallel_wall_secs: f64,
        /// Aggregate simulated steps per wall second the parallel run
        /// delivered on this host (bounded by the host's core count).
        pub parallel_steps_per_sec: f64,
        /// Aggregate shard capacity: sum of isolated per-shard rates from
        /// a sequential run — the pool's service rate given one unloaded
        /// core per shard.
        pub capacity_steps_per_sec: f64,
        /// Whether the parallel and sequential runs produced bit-identical
        /// simulated totals (they must; sharding mode is architecturally
        /// invisible).
        pub simulation_identical: bool,
        /// Host workers the parallel run's pool actually used — the
        /// context the wall numbers are meaningless without.
        pub host_workers: usize,
        /// Shard tasks stolen across workers during the parallel run.
        pub steals: u64,
    }

    /// Measures one shard count of the lmbench-mix scaling curve: the same
    /// deterministic plan is run once on the thread pool (wall scaling on
    /// this host) and once sequentially (isolated shard capacity), and the
    /// simulated totals are cross-checked bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn smp_scaling(shards: usize, total_syscalls: u64, seed: u64) -> ScalingPoint {
        use camo_smp::{FleetDriver, TrafficPlan};
        // The PR-3 traffic plan, served by the fleet engine as a single
        // lmbench tenant (the deprecated ShardedDriver's exact semantics).
        let plan = TrafficPlan::new(shards, total_syscalls, seed).to_fleet();
        let par = FleetDriver::drive(&plan).expect("parallel traffic runs");
        let seq = FleetDriver::drive_sequential(&plan).expect("sequential traffic runs");
        ScalingPoint {
            shards,
            syscalls: par.syscalls,
            instructions: par.instructions,
            cycles: par.cycles,
            parallel_wall_secs: par.wall_secs,
            parallel_steps_per_sec: par.steps_per_sec(),
            capacity_steps_per_sec: seq.capacity_steps_per_sec(),
            simulation_identical: par.simulation_identical(&seq),
            host_workers: par.exec.workers,
            steals: par.exec.steals,
        }
    }
}

/// The multi-tenant fleet benchmark (`perfcheck --fleet`, `BENCH_4.json`).
///
/// One standard tenant mix — lmbench traffic, a fork/exec churn storm,
/// module load/unload churn, and a context-switch-heavy tenant — served
/// across shards by [`camo_smp::FleetDriver`], measured in both execution
/// modes and cross-checked bit for bit. The documented contract for every
/// emitted field lives in `BENCHMARKS.md`.
pub mod fleet {
    use camo_smp::{FleetDriver, FleetPlan, FleetReport};
    use camo_workloads::TenantSpec;

    /// The standard four-tenant mix (`--smoke` shrinks it to two tenants
    /// for CI runners: the lmbench baseline plus the switch-heavy mix).
    pub fn standard_tenants(smoke: bool) -> Vec<TenantSpec> {
        if smoke {
            vec![
                TenantSpec::lmbench("web", 1_600),
                TenantSpec::tenant_mix("batch", 120),
            ]
        } else {
            vec![
                TenantSpec::lmbench("web", 8_000),
                TenantSpec::process_churn("build-farm", 240),
                TenantSpec::module_churn("driver-ci", 160),
                TenantSpec::tenant_mix("batch", 400),
            ]
        }
    }

    /// One fleet measurement: the same plan in both execution modes.
    #[derive(Debug)]
    pub struct FleetMeasurement {
        /// The plan that was run.
        pub plan: FleetPlan,
        /// The thread-pool run (wall scaling on this host).
        pub parallel: FleetReport,
        /// The back-to-back run (isolated per-shard capacity).
        pub sequential: FleetReport,
        /// Whether both modes agreed bit for bit on every simulated
        /// quantity — totals, per-tenant stats, latency histograms.
        pub identical: bool,
    }

    /// The togglable knobs of one fleet measurement. Every A/B harness
    /// (`--blocks`, `--traces`, `--fuzz`, `--telemetry`) is
    /// [`measure_opts`] with a different field flipped; the defaults are
    /// the production configuration (engines on, telemetry off, the
    /// kernel's own panic threshold).
    #[derive(Debug, Clone, Copy)]
    pub struct FleetOpts {
        /// Basic-block translation engine ([`FleetPlan::block_engine`]).
        pub block_engine: bool,
        /// Trace tier ([`FleetPlan::trace_engine`]; only active while
        /// the block engine is on).
        pub trace_engine: bool,
        /// Streaming stats plane ([`FleetPlan::telemetry`]).
        pub telemetry: bool,
        /// §5.4 panic-threshold override
        /// ([`FleetPlan::pac_panic_threshold`]); adversarial plans lift
        /// it so the gates, not the panic, judge every attack.
        pub pac_panic_threshold: Option<u32>,
    }

    impl Default for FleetOpts {
        fn default() -> Self {
            FleetOpts {
                block_engine: true,
                trace_engine: true,
                telemetry: false,
                pac_panic_threshold: None,
            }
        }
    }

    /// Runs `tenants` across `shards` machines of `cpus_per_shard` cores,
    /// both parallel and sequential, and cross-checks the simulated
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn measure(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
    ) -> FleetMeasurement {
        measure_opts(shards, cpus_per_shard, seed, tenants, FleetOpts::default())
    }

    /// [`measure`] with an explicit block-engine setting and the trace
    /// tier pinned **off** in both states — the `perfcheck --blocks`
    /// fleet A/B runs it once per arm, isolating tier 1 exactly as
    /// BENCH_5 always has.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn measure_with_blocks(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
        block_engine: bool,
    ) -> FleetMeasurement {
        let opts = FleetOpts {
            block_engine,
            trace_engine: false,
            ..FleetOpts::default()
        };
        measure_opts(shards, cpus_per_shard, seed, tenants, opts)
    }

    /// [`measure`] with both translation-engine tiers explicit — the
    /// `perfcheck --traces` fleet A/B runs it with blocks pinned on and
    /// the trace tier toggled.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn measure_with_engines(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
        block_engine: bool,
        trace_engine: bool,
    ) -> FleetMeasurement {
        let opts = FleetOpts {
            block_engine,
            trace_engine,
            ..FleetOpts::default()
        };
        measure_opts(shards, cpus_per_shard, seed, tenants, opts)
    }

    /// The one fleet harness behind every measurement: builds the plan
    /// from `opts`, runs both execution modes, cross-checks them.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn measure_opts(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
        opts: FleetOpts,
    ) -> FleetMeasurement {
        let mut plan = FleetPlan::new(shards, seed, tenants);
        plan.cpus_per_shard = cpus_per_shard;
        plan.block_engine = opts.block_engine;
        plan.trace_engine = opts.trace_engine;
        plan.telemetry = opts.telemetry;
        plan.pac_panic_threshold = opts.pac_panic_threshold;
        let parallel = FleetDriver::drive(&plan).expect("parallel fleet runs");
        let sequential = FleetDriver::drive_sequential(&plan).expect("sequential fleet runs");
        let identical = parallel.simulation_identical(&sequential);
        FleetMeasurement {
            plan,
            parallel,
            sequential,
            identical,
        }
    }
}

/// The block-translation-engine A/B (`perfcheck --blocks`, `BENCH_5.json`).
///
/// Same quantities as [`perf`] — host wall time per simulated step — but
/// the toggled axis is the basic-block translation engine rather than the
/// PR-2 caches. Both arms run with the fast-path caches **on**: the block
/// engine's job is to beat the already-cached step loop, not the per-byte
/// seed path.
pub mod blocks {
    use super::fleet::{measure_with_blocks, FleetMeasurement};
    use super::perf::PerfSample;
    use camo_smp::FleetReport;
    use camo_workloads::TenantSpec;

    /// One wall-clock measurement with the block engine on or off, plus
    /// the engine's own cache counters.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct BlockSample {
        /// The throughput sample (`caches` records the *block engine*
        /// setting here; the fast-path caches are always on).
        pub sample: PerfSample,
        /// Block-cache hits (0 with the engine off).
        pub block_hits: u64,
        /// Block-cache misses (0 with the engine off).
        pub block_misses: u64,
        /// Block invalidations (0 with the engine off).
        pub block_invalidations: u64,
    }

    /// The Figure-2 call loop (Camouflage scheme), fast-path caches on,
    /// block engine toggled — the same harness as [`super::perf::hot_loop`],
    /// toggling the other knob.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (a harness bug).
    pub fn hot_loop(iters: u64, blocks: bool) -> BlockSample {
        // Trace tier pinned off in both arms: BENCH_5 measures tier 1
        // alone, and stays a regression guard that tier-1 behaviour did
        // not shift under the new tier.
        let (sample, stats) = super::perf::fig2_sample(iters, true, blocks, false, blocks);
        BlockSample {
            sample,
            block_hits: stats.block_hits,
            block_misses: stats.block_misses,
            block_invalidations: stats.block_invalidations,
        }
    }

    /// The fleet mix measured with the engine on and off (each arm runs
    /// parallel *and* sequential, so the existing
    /// `simulation_identical` gate applies per arm).
    #[derive(Debug)]
    pub struct FleetAb {
        /// Engine-on measurement.
        pub on: FleetMeasurement,
        /// Engine-off measurement.
        pub off: FleetMeasurement,
    }

    impl FleetAb {
        /// Whether the engine-on and engine-off fleets agreed on every
        /// architectural quantity: totals, per-tenant counters
        /// ([`camo_cpu::CpuStats::arch_eq`] for the stats), and the
        /// per-tenant simulated-cycle latency histograms.
        pub fn arch_identical(&self) -> bool {
            arch_identical(&self.on.parallel, &self.off.parallel)
        }

        /// Engine-on capacity over engine-off capacity (isolated-shard
        /// rates from the sequential runs — host-contention free).
        pub fn speedup(&self) -> f64 {
            self.on.sequential.capacity_steps_per_sec()
                / self.off.sequential.capacity_steps_per_sec().max(1e-9)
        }
    }

    /// Whether two fleet reports are architecturally identical —
    /// everything the simulation defines except the cache-observability
    /// counters (which legitimately differ across engines).
    pub fn arch_identical(a: &FleetReport, b: &FleetReport) -> bool {
        a.syscalls == b.syscalls
            && a.instructions == b.instructions
            && a.cycles == b.cycles
            && a.stats.arch_eq(&b.stats)
            && a.tenants.len() == b.tenants.len()
            && a.tenants.iter().zip(&b.tenants).all(|(x, y)| {
                x.name == y.name
                    && x.totals.ops == y.totals.ops
                    && x.totals.syscalls == y.totals.syscalls
                    && x.totals.instructions == y.totals.instructions
                    && x.totals.cycles == y.totals.cycles
                    && x.totals.stats.arch_eq(&y.totals.stats)
                    && x.totals.latency == y.totals.latency
            })
    }

    /// Runs the fleet mix once per engine arm.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn fleet_ab(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
    ) -> FleetAb {
        // Engine off first, so the on-arm cannot benefit from a warmer
        // host (same ordering rationale as the BENCH_2 harness).
        let off = measure_with_blocks(shards, cpus_per_shard, seed, tenants.clone(), false);
        let on = measure_with_blocks(shards, cpus_per_shard, seed, tenants, true);
        FleetAb { on, off }
    }
}

/// The trace-tier A/B (`perfcheck --traces`, `BENCH_7.json`).
///
/// Both arms run with the fast-path caches **and** the block engine on:
/// the trace tier's job is to beat the already-blocked engine (BENCH_5's
/// on-arm), the way BENCH_5's job was to beat the already-cached step
/// loop. The toggled axis is [`camo_cpu::Cpu::set_trace_engine`] /
/// [`camo_smp::FleetPlan::trace_engine`].
pub mod traces {
    use super::fleet::measure_with_engines;
    use super::perf::PerfSample;
    use camo_workloads::TenantSpec;

    // The verdict helpers are shared with the BENCH_5 harness: the gates
    // (architectural identity, parallel≡sequential) are the same, only
    // the toggled knob differs.
    pub use super::blocks::FleetAb;

    /// One wall-clock measurement with the trace tier on or off, plus the
    /// tier's own cache counters.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct TraceSample {
        /// The throughput sample (`caches` records the *trace engine*
        /// setting here; fast-path caches and block engine are always on).
        pub sample: PerfSample,
        /// Trace-cache hits (0 with the tier off).
        pub trace_hits: u64,
        /// Traces built (0 with the tier off).
        pub trace_misses: u64,
        /// Trace invalidations.
        pub trace_invalidations: u64,
        /// Chain continuations inside engine calls (block- or trace-exit
        /// edges followed without returning to the run loop).
        pub chain_follows: u64,
        /// Tier-1 block-cache hits — with the tier on, hot work moves out
        /// of these into `trace_hits`.
        pub block_hits: u64,
    }

    /// The Figure-2 call loop (Camouflage scheme), fast-path caches and
    /// block engine on, trace tier toggled — the same harness as
    /// [`super::blocks::hot_loop`], toggling the next knob up.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (a harness bug).
    pub fn hot_loop(iters: u64, traces: bool) -> TraceSample {
        let (sample, stats) = super::perf::fig2_sample(iters, true, true, traces, traces);
        TraceSample {
            sample,
            trace_hits: stats.trace_hits,
            trace_misses: stats.trace_misses,
            trace_invalidations: stats.trace_invalidations,
            chain_follows: stats.chain_follows,
            block_hits: stats.block_hits,
        }
    }

    /// Runs the fleet mix once per trace-tier arm (block engine pinned on
    /// in both).
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn fleet_ab(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
    ) -> FleetAb {
        // Tier off first, same warm-host ordering rationale as BENCH_5.
        let off = measure_with_engines(shards, cpus_per_shard, seed, tenants.clone(), true, false);
        let on = measure_with_engines(shards, cpus_per_shard, seed, tenants, true, true);
        FleetAb { on, off }
    }
}

/// The adversarial traffic plane (`perfcheck --fuzz`, `BENCH_6.json`).
///
/// Seeded fuzz tenants mount the [`camo_workloads::HostileOp`] attacks —
/// forged and replayed signed stack pointers, forged `f_ops`/work-callback
/// pointers, module-signing violations, direct physical writes to
/// translated code — *under load*, interleaved with benign tenants on the
/// same machines. Three property families are gated:
///
/// 1. **Attribution**: every hostile op produced exactly its declared
///    expected outcome (the right [`camo_cpu::pac::KeyClass`] failure on
///    the right sacrificial task, a module rejection, or coherent tamper
///    visibility) and nothing else.
/// 2. **Blast radius**: no benign tenant saw a §5.4 failure-policy event
///    in any of its op windows (false-positive rate 0), and each benign
///    tenant's simulated totals — ops, syscalls, instructions, cycles,
///    latency histogram, architectural counters — are bit-identical to an
///    isolated-baseline run of the same tenant alone on an identically
///    seeded fleet.
/// 3. **Engine invariance**: the whole adversarial plan produces
///    architecturally identical results with the translation engine on
///    and off (the on-arm runs both tiers — blocks *and* traces, the
///    production default), including the per-op hostile ledgers.
///
/// The §5.4 measurements the paper motivates — false-positive rate and
/// time-to-kill (simulated cycles from attack trigger to task kill) — are
/// reported alongside the gates.
pub mod fuzz {
    use super::blocks::arch_identical;
    use super::fleet::{self, FleetMeasurement};
    use camo_smp::{FleetReport, TenantReport};
    use camo_workloads::{HostileOp, HostileTotals, TenantSpec};

    /// The benign side of the adversarial plan. Placed *first* in the
    /// plan so these tenants' long-lived tasks are spawned (and
    /// scheduler-placed) before any fuzz tenant exists — the precondition
    /// for the isolated-baseline identity gate.
    pub fn benign_tenants(smoke: bool) -> Vec<TenantSpec> {
        if smoke {
            vec![
                TenantSpec::lmbench("web", 800),
                TenantSpec::tenant_mix("batch", 60),
            ]
        } else {
            vec![
                TenantSpec::lmbench("web", 4_000),
                TenantSpec::tenant_mix("batch", 240),
            ]
        }
    }

    /// The fuzz tenants, always appended *after* the benign tenants.
    pub fn fuzz_tenants(smoke: bool) -> Vec<TenantSpec> {
        let ops = if smoke { 60 } else { 320 };
        vec![
            TenantSpec::fuzz("fuzz-0", ops),
            TenantSpec::fuzz("fuzz-1", ops),
        ]
    }

    /// Builds and runs one adversarial plan (both execution modes). The
    /// §5.4 panic threshold is lifted: the gate, not the panic, judges
    /// every attack — a fuzz campaign necessarily exceeds any sane
    /// production threshold.
    fn run_plan(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
        block_engine: bool,
    ) -> FleetMeasurement {
        let opts = fleet::FleetOpts {
            block_engine,
            pac_panic_threshold: Some(u32::MAX),
            ..fleet::FleetOpts::default()
        };
        fleet::measure_opts(shards, cpus_per_shard, seed, tenants, opts)
    }

    /// One benign tenant's isolation verdict: does its service in the
    /// adversarial plan match, bit for bit, its service alone on an
    /// identically seeded fleet?
    #[derive(Debug)]
    pub struct IsolationCheck {
        /// Tenant name.
        pub name: String,
        /// Architectural identity of the mixed-run and isolated-run
        /// tenant reports.
        pub identical: bool,
    }

    /// Arch-level tenant-report identity: every simulated quantity except
    /// the cache-observability counters (same exclusion rule as
    /// [`super::blocks::arch_identical`]).
    fn tenant_arch_identical(a: &TenantReport, b: &TenantReport) -> bool {
        a.name == b.name
            && a.totals.ops == b.totals.ops
            && a.totals.syscalls == b.totals.syscalls
            && a.totals.instructions == b.totals.instructions
            && a.totals.cycles == b.totals.cycles
            && a.totals.stats.arch_eq(&b.totals.stats)
            && a.totals.latency == b.totals.latency
            && a.totals.hostile == b.totals.hostile
    }

    /// One engine arm: the adversarial plan plus the per-benign-tenant
    /// isolated baselines.
    #[derive(Debug)]
    pub struct FuzzArm {
        /// The mixed (benign + fuzz) plan, both execution modes.
        pub mixed: FleetMeasurement,
        /// Isolation verdict per benign tenant.
        pub isolation: Vec<IsolationCheck>,
    }

    impl FuzzArm {
        /// The merged adversarial ledger of every fuzz tenant.
        pub fn ledger(&self) -> HostileTotals {
            let mut total = HostileTotals::default();
            for t in &self.mixed.parallel.tenants {
                total.merge(&t.totals.hostile);
            }
            total
        }

        /// Gate 1: every hostile op matched its declaration (and at least
        /// one was mounted).
        pub fn all_hostile_matched(&self) -> bool {
            let ledger = self.ledger();
            ledger.attempted > 0 && ledger.matched == ledger.attempted
        }

        /// Gate 2a: zero §5.4 failure-policy events in benign windows,
        /// across every tenant (fuzz tenants' benign windows included).
        pub fn zero_false_positives(&self) -> bool {
            self.ledger().benign_pac_events == 0
        }

        /// Gate 2b: every benign tenant bit-identical to its isolated
        /// baseline.
        pub fn benign_isolated(&self) -> bool {
            !self.isolation.is_empty() && self.isolation.iter().all(|c| c.identical)
        }

        /// Per-op attribution table in [`HostileOp::ALL`] order:
        /// `(name, attempted, matched)`.
        pub fn per_op(&self) -> Vec<(&'static str, u64, u64)> {
            let ledger = self.ledger();
            HostileOp::ALL
                .iter()
                .map(|op| {
                    let recs = ledger.records.iter().filter(|r| r.op == *op);
                    let attempted = recs.clone().count() as u64;
                    let matched = recs.filter(|r| r.matched).count() as u64;
                    (op.name(), attempted, matched)
                })
                .collect()
        }
    }

    /// Runs one arm: the mixed adversarial plan, then each benign tenant
    /// alone on an identically seeded fleet, comparing the tenant's
    /// report architecturally.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (the executor propagates only
    /// infrastructure errors; attack outcomes are recorded, not thrown).
    pub fn measure_arm(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        smoke: bool,
        block_engine: bool,
    ) -> FuzzArm {
        let benign = benign_tenants(smoke);
        let mut tenants = benign.clone();
        tenants.extend(fuzz_tenants(smoke));
        let mixed = run_plan(shards, cpus_per_shard, seed, tenants, block_engine);
        let isolation = benign
            .into_iter()
            .map(|spec| {
                let name = spec.name.clone();
                let alone = run_plan(shards, cpus_per_shard, seed, vec![spec], block_engine);
                let in_mixed = mixed
                    .parallel
                    .tenants
                    .iter()
                    .find(|t| t.name == name)
                    .expect("benign tenant served in the mixed plan");
                let in_isolation = alone
                    .parallel
                    .tenants
                    .iter()
                    .find(|t| t.name == name)
                    .expect("benign tenant served in isolation");
                IsolationCheck {
                    identical: alone.identical && tenant_arch_identical(in_mixed, in_isolation),
                    name,
                }
            })
            .collect();
        FuzzArm { mixed, isolation }
    }

    /// The full BENCH_6 measurement: both block-engine arms.
    #[derive(Debug)]
    pub struct FuzzAb {
        /// Block engine on.
        pub on: FuzzArm,
        /// Block engine off.
        pub off: FuzzArm,
    }

    impl FuzzAb {
        /// Gate 3: the two arms agree on every architectural quantity,
        /// including the per-op hostile ledgers.
        pub fn arch_identical(&self) -> bool {
            arms_arch_identical(&self.on.mixed.parallel, &self.off.mixed.parallel)
        }

        /// All gates at once — the `perfcheck --fuzz` exit criterion.
        pub fn passes(&self) -> bool {
            [&self.on, &self.off].iter().all(|arm| {
                arm.mixed.identical
                    && arm.all_hostile_matched()
                    && arm.zero_false_positives()
                    && arm.benign_isolated()
            }) && self.arch_identical()
        }
    }

    /// Cross-arm identity: [`arch_identical`] plus per-tenant hostile
    /// ledgers (records, time-to-kill, counts) — the block engine must
    /// not change a single attack outcome.
    pub fn arms_arch_identical(a: &FleetReport, b: &FleetReport) -> bool {
        arch_identical(a, b)
            && a.tenants
                .iter()
                .zip(&b.tenants)
                .all(|(x, y)| x.totals.hostile == y.totals.hostile)
    }

    /// Runs both arms (engine off first, mirroring the other A/Bs).
    ///
    /// # Panics
    ///
    /// Panics if a shard fails.
    pub fn measure(shards: usize, cpus_per_shard: usize, seed: u64, smoke: bool) -> FuzzAb {
        let off = measure_arm(shards, cpus_per_shard, seed, smoke, false);
        let on = measure_arm(shards, cpus_per_shard, seed, smoke, true);
        FuzzAb { on, off }
    }
}

/// The streaming-stats-plane A/B (`perfcheck --telemetry`, `BENCH_8.json`).
///
/// Telemetry is the strictest knob in the whole A/B family: unlike the
/// block and trace engines it has **no** architectural surface at all,
/// so the identity gate here is full bit-identity — every one of the 22
/// `CpuStats` counters, including the observability ones the engine A/Bs
/// legitimately exempt. The off arm must additionally stay silent
/// (no time series anywhere), and the on arm must account losslessly
/// (window sums ≡ end-of-run totals per tenant).
pub mod telemetry {
    use super::fleet::{measure_opts, FleetOpts};
    use camo_cpu::CpuStats;
    use camo_smp::FleetReport;
    use camo_workloads::TenantSpec;

    // Same A/B shape and speedup/arch helpers as the engine benches —
    // only the toggled knob and the extra gates differ.
    pub use super::blocks::FleetAb;

    /// Runs the fleet mix once per telemetry arm.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn fleet_ab(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
    ) -> FleetAb {
        // Off arm first, mirroring the other A/Bs: the on arm must not
        // benefit from a warmer host.
        let arm = |telemetry| FleetOpts {
            telemetry,
            ..FleetOpts::default()
        };
        let off = measure_opts(shards, cpus_per_shard, seed, tenants.clone(), arm(false));
        let on = measure_opts(shards, cpus_per_shard, seed, tenants, arm(true));
        FleetAb { on, off }
    }

    /// Whether the two arms are **bit-identical** in everything the
    /// simulation defines: totals, all 22 stat counters (full equality,
    /// not [`CpuStats::arch_eq`]), and per-tenant totals including the
    /// latency histograms. Telemetry observes the run; it must not
    /// perturb even an observability counter.
    pub fn fully_identical(ab: &FleetAb) -> bool {
        let (a, b) = (&ab.on.parallel, &ab.off.parallel);
        a.syscalls == b.syscalls
            && a.instructions == b.instructions
            && a.cycles == b.cycles
            && a.stats == b.stats
            && a.tenants.len() == b.tenants.len()
            && a.tenants
                .iter()
                .zip(&b.tenants)
                .all(|(x, y)| x.name == y.name && x.totals == y.totals)
    }

    /// Whether a report carries no time series at all — the off arm's
    /// obligation.
    pub fn silent(report: &FleetReport) -> bool {
        report.tenants.iter().all(|t| t.series.is_empty())
    }

    /// One tenant's series verdict for the BENCH_8 report.
    #[derive(Debug, Clone)]
    pub struct SeriesCheck {
        /// Tenant name.
        pub name: String,
        /// Windows in the tenant's time series.
        pub windows: usize,
        /// Whether the window sums reproduce the end-of-run totals
        /// (ops, syscalls, cycles, and every stat counter) exactly.
        pub sums_exact: bool,
    }

    /// Per-tenant lossless-accounting checks: sums every tenant's
    /// series and compares it against the end-of-run totals.
    pub fn series_checks(report: &FleetReport) -> Vec<SeriesCheck> {
        report
            .tenants
            .iter()
            .map(|t| {
                let mut stats = CpuStats::default();
                let (mut ops, mut syscalls, mut cycles) = (0u64, 0u64, 0u64);
                for w in &t.series {
                    ops += w.ops;
                    syscalls += w.syscalls;
                    cycles += w.cycles;
                    stats.merge(&w.stats);
                }
                SeriesCheck {
                    name: t.name.clone(),
                    windows: t.series.len(),
                    sums_exact: ops == t.totals.ops
                        && syscalls == t.totals.syscalls
                        && cycles == t.totals.cycles
                        && stats == t.totals.stats,
                }
            })
            .collect()
    }

    /// Wall-clock cost of running the plane: `1 − on/off` capacity
    /// ratio from the isolated-shard sequential runs, clamped at zero
    /// (host noise can make the on arm *faster*). The BENCH_8 gate is
    /// `< 0.02`.
    pub fn drain_overhead(ab: &FleetAb) -> f64 {
        (1.0 - ab.speedup()).max(0.0)
    }
}

/// The work-stealing fleet scheduler benchmark (`perfcheck --fleet-steal`,
/// `BENCH_9.json`).
///
/// The BENCH_4 tenant mix scaled out to a dense population — 64 tenants
/// on 8 single-core shards (16 on 4 with `--smoke`) with mixed weights
/// and cycle budgets — served by the work-stealing host pool at several
/// worker counts. Four property families:
///
/// 1. **Bit-identity under stealing** (hard): every pooled run, at every
///    worker count, and the legacy 1:1 threaded run are
///    `simulation_identical` to the sequential oracle.
/// 2. **Worker invariance** (hard): the pooled runs agree with each
///    other pairwise — perturbing the host schedule (1, 2, N, 2N
///    workers) moves nothing simulated.
/// 3. **Telemetry under migration** (hard): with the stats plane on,
///    every tenant's window sums reproduce its end-of-run totals even
///    though shard tasks migrated between workers mid-run.
/// 4. **Latency and wall scaling**: the fleet-wide p99 simulated-cycle
///    op latency is deterministic in the plan and gated against a fixed
///    target; the wall speedup of the pool over the 1:1 thread-per-shard
///    driver is gated (≥1.5×) only on hosts with ≥4 cores — below that
///    the pool and the time-sliced threads converge by construction —
///    and recorded everywhere.
pub mod steal {
    use camo_smp::{FleetDriver, FleetPlan, FleetReport};
    use camo_workloads::TenantSpec;

    /// Shard counts (full / `--smoke`). Dense-tenant plans pin
    /// `cpus_per_shard` to 1: every tenant lives on every shard, and the
    /// kernel's task-stack region bounds the per-machine task population.
    pub const SHARDS: usize = 8;
    /// `--smoke` shard count.
    pub const SMOKE_SHARDS: usize = 4;

    /// The dense tenant mix: 64 tenants (16 with `smoke`), mostly
    /// single-task lmbench traffic with a capped sprinkling of
    /// multi-task churn tenants, weights rotating 1–4 and sporadic
    /// per-sweep cycle budgets so the weighted-fair and throttling paths
    /// are all exercised under stealing.
    pub fn dense_tenants(smoke: bool) -> Vec<TenantSpec> {
        let count = if smoke { 16 } else { 64 };
        let mut tenants = Vec::with_capacity(count);
        for i in 0..count {
            let name = format!("tenant-{i:02}");
            let mut spec = match i % 16 {
                // Multi-task tenants are capped (3 per 16) so every
                // machine stays inside the kernel's fixed stack-stride
                // region even at 64 tenants.
                3 => TenantSpec::process_churn(name, 4),
                7 => TenantSpec::module_churn(name, 3),
                11 => TenantSpec::tenant_mix(name, 5),
                _ => TenantSpec::lmbench(name, if smoke { 60 } else { 120 }),
            };
            spec = spec.with_weight(1 + (i as u32 % 4));
            if i % 5 == 4 {
                spec = spec.with_cycle_budget(2_000 + 500 * (i as u64 % 4));
            }
            tenants.push(spec);
        }
        tenants
    }

    /// The worker counts the invariance gate perturbs: 1, 2, N, 2N
    /// (N = the pool's default on this host), deduplicated and sorted.
    pub fn worker_counts(plan: &FleetPlan) -> Vec<usize> {
        let n = FleetDriver::default_workers(plan);
        let mut counts = vec![1, 2, n, 2 * n];
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// One full BENCH_9 measurement.
    #[derive(Debug)]
    pub struct StealMeasurement {
        /// The dense plan that was run (telemetry on).
        pub plan: FleetPlan,
        /// The sequential oracle.
        pub sequential: FleetReport,
        /// The worker counts exercised, aligned with `pooled`.
        pub counts: Vec<usize>,
        /// One pooled run per worker count (wall best-of-`repeats`).
        pub pooled: Vec<FleetReport>,
        /// The legacy 1:1 thread-per-shard run — the wall-clock baseline
        /// the pool is judged against (best-of-`repeats`).
        pub threaded: FleetReport,
    }

    impl StealMeasurement {
        /// Gate 1: every execution mode bit-identical to the oracle.
        pub fn bit_identical(&self) -> bool {
            self.pooled
                .iter()
                .chain(std::iter::once(&self.threaded))
                .all(|r| r.simulation_identical(&self.sequential))
        }

        /// Gate 2: the pooled runs pairwise identical across worker
        /// counts.
        pub fn worker_invariant(&self) -> bool {
            self.pooled
                .windows(2)
                .all(|w| w[0].simulation_identical(&w[1]))
        }

        /// The pooled run at the host's default worker count (the last
        /// de-duplicated entry ≤ N; in practice the N-worker run).
        pub fn pooled_default(&self) -> &FleetReport {
            let n = FleetDriver::default_workers(&self.plan);
            self.counts
                .iter()
                .position(|&w| w == n)
                .map(|i| &self.pooled[i])
                .unwrap_or(&self.pooled[0])
        }

        /// Wall speedup of the default pooled run over the 1:1
        /// thread-per-shard baseline. Host-dependent: meaningful (and
        /// gated) only on hosts with at least 4 cores.
        pub fn wall_speedup(&self) -> f64 {
            self.threaded.wall_secs / self.pooled_default().wall_secs.max(1e-9)
        }

        /// Fleet-wide p99 simulated-cycle op latency: the worst tenant's
        /// p99. Deterministic in the plan, so it gates on every host.
        pub fn p99(&self) -> u64 {
            self.sequential
                .tenants
                .iter()
                .map(|t| t.totals.latency.p99())
                .max()
                .unwrap_or(0)
        }
    }

    /// Runs the full measurement: the sequential oracle once, one pooled
    /// run per worker count, and the 1:1 baseline; the default-count
    /// pooled run and the baseline are wall best-of-`repeats` (simulated
    /// cycles asserted deterministic across repeats).
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault) or a
    /// repeat disagrees on simulated cycles (a determinism bug).
    pub fn measure(shards: usize, seed: u64, smoke: bool, repeats: usize) -> StealMeasurement {
        let mut plan = FleetPlan::new(shards, seed, dense_tenants(smoke));
        plan.cpus_per_shard = 1;
        // Telemetry on: gate 3 needs the drain path live under stealing.
        plan.telemetry = true;
        let sequential = FleetDriver::drive_sequential(&plan).expect("sequential oracle runs");
        let counts = worker_counts(&plan);
        let n = FleetDriver::default_workers(&plan);
        let mut pooled = Vec::with_capacity(counts.len());
        for &w in &counts {
            let mut best = FleetDriver::drive_with_workers(&plan, w).expect("pooled fleet runs");
            // Only the default count's wall time feeds the speedup gate;
            // re-measuring every count would multiply runtime for numbers
            // nothing consumes.
            let wall_repeats = if w == n { repeats } else { 1 };
            for _ in 1..wall_repeats {
                let next = FleetDriver::drive_with_workers(&plan, w).expect("pooled fleet runs");
                assert_eq!(
                    next.cycles, best.cycles,
                    "simulation must be deterministic across repeats"
                );
                if next.wall_secs < best.wall_secs {
                    best = next;
                }
            }
            pooled.push(best);
        }
        let mut threaded = FleetDriver::drive_threaded(&plan).expect("1:1 baseline runs");
        for _ in 1..repeats {
            let next = FleetDriver::drive_threaded(&plan).expect("1:1 baseline runs");
            assert_eq!(
                next.cycles, threaded.cycles,
                "simulation must be deterministic across repeats"
            );
            if next.wall_secs < threaded.wall_secs {
                threaded = next;
            }
        }
        StealMeasurement {
            plan,
            sequential,
            counts,
            pooled,
            threaded,
        }
    }
}

/// Durable perf-regression history (`perfcheck --all` appends one row to
/// `BENCH_HISTORY.jsonl`; `perfcheck --check-history` judges the newest
/// row against the last comparable one).
///
/// A row is one flat JSON object per line: a schema version, a host
/// fingerprint (`os-arch-cores`), the seed and smoke flag, and every
/// bench family's headline numbers. Rows are only ever compared within
/// the same `(host_class, smoke)` pair — absolute throughput on a
/// different host says nothing about a regression. Only keys ending in
/// `_speedup` or `_steps_per_sec` (higher is better) are judged; other
/// headlines (e.g. the BENCH_8 drain overhead) ride along for the
/// record.
pub mod history {
    use std::path::Path;

    /// Row schema version, bumped on incompatible field changes.
    pub const SCHEMA: u32 = 1;

    /// Default regression threshold: fail when a comparable headline
    /// drops more than this fraction below the baseline row.
    pub const REGRESSION_THRESHOLD: f64 = 0.15;

    /// One appended history row.
    #[derive(Debug, Clone, PartialEq)]
    pub struct HistoryRow {
        /// Schema version ([`SCHEMA`] when written by this build).
        pub schema: u32,
        /// Seconds since the Unix epoch at append time.
        pub timestamp_secs: u64,
        /// Host fingerprint rows are compared within ([`host_class`]).
        pub host_class: String,
        /// Logical cores at append time (also baked into `host_class`).
        pub host_cores: usize,
        /// The `--seed` the row was measured with.
        pub seed: u64,
        /// Whether the row came from a `--smoke` run (never compared
        /// against full-size rows).
        pub smoke: bool,
        /// Headline numbers per bench family, in emission order.
        pub headlines: Vec<(String, f64)>,
    }

    /// The host fingerprint: `os-arch-<cores>c`, e.g. `linux-x86_64-8c`.
    pub fn host_class() -> String {
        format!(
            "{}-{}-{}c",
            std::env::consts::OS,
            std::env::consts::ARCH,
            host_cores()
        )
    }

    /// Logical cores, 1 if the host will not say.
    pub fn host_cores() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    impl HistoryRow {
        /// A row stamped with this host's fingerprint and the current
        /// wall clock.
        pub fn new(seed: u64, smoke: bool, headlines: Vec<(String, f64)>) -> HistoryRow {
            let timestamp_secs = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            HistoryRow {
                schema: SCHEMA,
                timestamp_secs,
                host_class: host_class(),
                host_cores: host_cores(),
                seed,
                smoke,
                headlines,
            }
        }

        /// The row as one flat JSON line (no trailing newline).
        /// Headline keys sit at the top level, so the format stays a
        /// single flat object and [`HistoryRow::parse`] needs no
        /// nesting.
        pub fn to_json_line(&self) -> String {
            let mut line = format!(
                "{{\"schema\": {}, \"timestamp_secs\": {}, \"host_class\": \"{}\", \
                 \"host_cores\": {}, \"seed\": {}, \"smoke\": {}",
                self.schema,
                self.timestamp_secs,
                self.host_class,
                self.host_cores,
                self.seed,
                self.smoke
            );
            for (key, value) in &self.headlines {
                line.push_str(&format!(", \"{key}\": {value}"));
            }
            line.push('}');
            line
        }

        /// Parses one line written by [`HistoryRow::to_json_line`].
        /// Deliberately minimal: the values this module writes contain
        /// no commas, escapes, or nesting, so splitting on `, ` pairs
        /// is exact. Unknown numeric keys become headlines, which is
        /// what makes old readers forward-compatible with new bench
        /// families.
        pub fn parse(line: &str) -> Option<HistoryRow> {
            let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
            let mut row = HistoryRow {
                schema: 0,
                timestamp_secs: 0,
                host_class: String::new(),
                host_cores: 0,
                seed: 0,
                smoke: false,
                headlines: Vec::new(),
            };
            for pair in body.split(',') {
                let (key, value) = pair.split_once(':')?;
                let key = key.trim().trim_matches('"');
                let value = value.trim();
                match key {
                    "schema" => row.schema = value.parse().ok()?,
                    "timestamp_secs" => row.timestamp_secs = value.parse().ok()?,
                    "host_class" => row.host_class = value.trim_matches('"').to_string(),
                    "host_cores" => row.host_cores = value.parse().ok()?,
                    "seed" => row.seed = value.parse().ok()?,
                    "smoke" => row.smoke = value == "true",
                    _ => row.headlines.push((key.to_string(), value.parse().ok()?)),
                }
            }
            (row.schema != 0).then_some(row)
        }

        /// The headline value for `key`, if the row carries it.
        pub fn headline(&self, key: &str) -> Option<f64> {
            self.headlines
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
        }
    }

    /// Appends one row to the JSONL file, creating it if absent.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be opened or
    /// written.
    pub fn append(path: &Path, row: &HistoryRow) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(file, "{}", row.to_json_line())
    }

    /// Loads every parseable row, oldest first. A missing file is an
    /// empty history, not an error; unparseable lines are skipped (a
    /// truncated last line must not brick the checker).
    pub fn load(path: &Path) -> Vec<HistoryRow> {
        std::fs::read_to_string(path)
            .unwrap_or_default()
            .lines()
            .filter_map(HistoryRow::parse)
            .collect()
    }

    /// The newest row strictly before `current` (by position) with the
    /// same host class and smoke flag — the row regressions are judged
    /// against.
    pub fn find_baseline<'a>(
        earlier: &'a [HistoryRow],
        current: &HistoryRow,
    ) -> Option<&'a HistoryRow> {
        earlier
            .iter()
            .rev()
            .find(|row| row.host_class == current.host_class && row.smoke == current.smoke)
    }

    /// Whether a headline key participates in regression judgement
    /// (higher-is-better rates and ratios only).
    pub fn comparable(key: &str) -> bool {
        key.ends_with("_speedup") || key.ends_with("_steps_per_sec")
    }

    /// One judged drop: `current < (1 − threshold) × baseline`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        /// The headline key that dropped.
        pub key: String,
        /// The baseline row's value.
        pub baseline: f64,
        /// The current row's value.
        pub current: f64,
    }

    impl Regression {
        /// Fractional drop below baseline (0.2 = lost 20%).
        pub fn drop_frac(&self) -> f64 {
            1.0 - self.current / self.baseline.max(1e-12)
        }
    }

    /// Every comparable headline present in both rows that regressed
    /// past `threshold`. Keys only one row carries are skipped: a new
    /// bench family must not fail the first run that adds it.
    pub fn regressions(
        baseline: &HistoryRow,
        current: &HistoryRow,
        threshold: f64,
    ) -> Vec<Regression> {
        current
            .headlines
            .iter()
            .filter(|(key, _)| comparable(key))
            .filter_map(|(key, now)| {
                let now = *now;
                let base = baseline.headline(key)?;
                (now < (1.0 - threshold) * base).then(|| Regression {
                    key: key.clone(),
                    baseline: base,
                    current: now,
                })
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn row(host_class: &str, smoke: bool, headlines: &[(&str, f64)]) -> HistoryRow {
            HistoryRow {
                schema: SCHEMA,
                timestamp_secs: 1_700_000_000,
                host_class: host_class.to_string(),
                host_cores: 8,
                seed: 0xCAF0_0D5E,
                smoke,
                headlines: headlines.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            }
        }

        #[test]
        fn row_roundtrips_through_its_json_line() {
            let original = HistoryRow::new(
                0xCAF0_0D5E,
                true,
                vec![
                    ("bench2_hot_loop_speedup".to_string(), 10.53),
                    ("bench4_capacity_steps_per_sec".to_string(), 1.25e6),
                    ("bench8_drain_overhead".to_string(), 0.004),
                ],
            );
            let parsed = HistoryRow::parse(&original.to_json_line()).expect("parses");
            assert_eq!(parsed, original);
        }

        #[test]
        fn synthetic_regression_over_threshold_fails() {
            let base = row("linux-x86_64-8c", true, &[("bench5_fleet_speedup", 10.0)]);
            let bad = row("linux-x86_64-8c", true, &[("bench5_fleet_speedup", 8.0)]);
            let found = regressions(&base, &bad, REGRESSION_THRESHOLD);
            assert_eq!(found.len(), 1, "a 20% drop must be flagged");
            assert_eq!(found[0].key, "bench5_fleet_speedup");
            assert!(found[0].drop_frac() > 0.19 && found[0].drop_frac() < 0.21);
        }

        #[test]
        fn drop_within_threshold_passes() {
            let base = row("linux-x86_64-8c", true, &[("bench5_fleet_speedup", 10.0)]);
            let ok = row("linux-x86_64-8c", true, &[("bench5_fleet_speedup", 8.9)]);
            assert!(
                regressions(&base, &ok, REGRESSION_THRESHOLD).is_empty(),
                "an 11% drop is within the 15% threshold"
            );
        }

        #[test]
        fn non_comparable_keys_and_new_families_are_not_judged() {
            // Overhead is lower-is-better: tripling it must not trip the
            // higher-is-better comparison. A brand-new family key with
            // no baseline must not fail its first appearance either.
            let base = row("linux-x86_64-8c", true, &[("bench8_drain_overhead", 0.001)]);
            let cur = row(
                "linux-x86_64-8c",
                true,
                &[
                    ("bench8_drain_overhead", 0.003),
                    ("bench9_new_family_speedup", 1.0),
                ],
            );
            assert!(regressions(&base, &cur, REGRESSION_THRESHOLD).is_empty());
        }

        #[test]
        fn baseline_matching_respects_host_class_and_smoke() {
            let rows = vec![
                row("linux-x86_64-8c", true, &[]),
                row("linux-aarch64-4c", true, &[]),
                row("linux-x86_64-8c", false, &[]),
            ];
            let current = row("linux-x86_64-8c", true, &[]);
            let baseline = find_baseline(&rows, &current).expect("matching row exists");
            assert_eq!(baseline, &rows[0], "other hosts and full runs skipped");
            let alien = row("darwin-aarch64-10c", true, &[]);
            assert!(find_baseline(&rows, &alien).is_none());
        }

        #[test]
        fn append_and_load_roundtrip_with_corrupt_tail() {
            let dir = std::env::temp_dir().join(format!(
                "camo_history_test_{}_{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos())
                    .unwrap_or(0)
            ));
            std::fs::create_dir_all(&dir).expect("temp dir");
            let path = dir.join("BENCH_HISTORY.jsonl");
            assert!(load(&path).is_empty(), "missing file is an empty history");
            let first = row("linux-x86_64-8c", true, &[("bench2_hot_loop_speedup", 9.5)]);
            let second = row("linux-x86_64-8c", true, &[("bench2_hot_loop_speedup", 9.9)]);
            append(&path, &first).expect("append");
            append(&path, &second).expect("append");
            // A truncated third line (crashed writer) must be skipped.
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("reopen");
            write!(file, "{{\"schema\": 1, \"timest").expect("partial write");
            drop(file);
            let rows = load(&path);
            assert_eq!(rows, vec![first, second]);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Shared perfcheck plumbing. Every bench family's binary path follows
/// the same shape — resolve the plan size, run the A/B arms best-of-N,
/// gate determinism, emit a JSON report — and the pieces that used to
/// be copy-pasted per family live here instead.
pub mod runner {
    use super::blocks::FleetAb;
    use super::fleet::FleetMeasurement;

    /// Best-of-`repeats` for a fleet A/B: keeps, per arm, the repeat
    /// with the highest isolated-shard capacity, and asserts along the
    /// way that the simulation itself is deterministic across repeats
    /// (wall clock may vary; simulated cycles may not).
    ///
    /// # Panics
    ///
    /// Panics if two repeats disagree on simulated cycles — that is a
    /// determinism bug, not host noise.
    pub fn best_of_fleet_ab(repeats: usize, run: impl Fn() -> FleetAb) -> FleetAb {
        (1..repeats).fold(run(), |acc, _| {
            let next = run();
            assert_eq!(
                (next.on.parallel.cycles, next.off.parallel.cycles),
                (acc.on.parallel.cycles, acc.off.parallel.cycles),
                "simulation must be deterministic across repeats"
            );
            FleetAb {
                on: faster(next.on, acc.on),
                off: faster(next.off, acc.off),
            }
        })
    }

    fn faster(a: FleetMeasurement, b: FleetMeasurement) -> FleetMeasurement {
        if a.sequential.capacity_steps_per_sec() > b.sequential.capacity_steps_per_sec() {
            a
        } else {
            b
        }
    }

    /// Host-execution context rows (`<prefix>_host_workers`,
    /// `<prefix>_steals`) for the durable history. Neither key ends in a
    /// comparable suffix, so they ride along un-judged — the recorded
    /// answer to "how many host workers did this row's wall numbers
    /// actually have?", which the BENCH_3/4 wall-speedup disclaimers
    /// used to leave unrecorded.
    pub fn exec_headlines(prefix: &str, workers: usize, steals: u64) -> Vec<(String, f64)> {
        vec![
            (format!("{prefix}_host_workers"), workers as f64),
            (format!("{prefix}_steals"), steals as f64),
        ]
    }

    /// Writes a bench report and tells the operator where it went —
    /// the uniform tail of every perfcheck mode.
    ///
    /// # Panics
    ///
    /// Panics if the report cannot be written (CI treats that as a
    /// harness failure, not a perf regression).
    pub fn write_json(path: &str, json: &str) {
        std::fs::write(path, json).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_codegen::CfiScheme;

    #[test]
    fn fig2_ordering_matches_paper() {
        // Figure 2: Clang's SP-only < Camouflage < PARTS; all above the
        // uninstrumented baseline.
        let costs = fig2::all(50);
        let get = |s: CfiScheme| {
            costs
                .iter()
                .find(|c| c.scheme == s)
                .unwrap()
                .cycles_per_call
        };
        let none = get(CfiScheme::None);
        let sp = get(CfiScheme::SpOnly);
        let camo = get(CfiScheme::Camouflage);
        let parts = get(CfiScheme::Parts);
        assert!(none < sp, "{none} < {sp}");
        assert!(sp < camo, "{sp} < {camo}");
        assert!(camo < parts, "{camo} < {parts}");
    }

    #[test]
    fn fleet_measurement_is_simulation_identical() {
        use camo_workloads::TenantSpec;
        let m = fleet::measure(
            2,
            2,
            0xBE4C4,
            vec![
                TenantSpec::lmbench("web", 64),
                TenantSpec::tenant_mix("batch", 8),
            ],
        );
        assert!(m.identical, "fleet execution mode leaked into simulation");
        assert_eq!(m.parallel.syscalls, m.sequential.syscalls);
        assert!(m
            .parallel
            .tenants
            .iter()
            .all(|t| t.totals.latency.p99() > 0));
    }

    #[test]
    fn fuzz_gate_is_clean_on_a_small_fleet() {
        let ab = fuzz::measure(2, 2, 0xF022, true);
        assert!(ab.passes(), "the smoke adversarial plan must gate clean");
        let ledger = ab.on.ledger();
        assert!(ledger.attempted > 0, "fuzz tenants mounted attacks");
        assert_eq!(ledger.matched, ledger.attempted);
        assert_eq!(ledger.benign_pac_events, 0);
        assert_eq!(ledger.false_positive_rate(), 0.0);
        assert!(
            ledger.time_to_kill.count() > 0 && ledger.time_to_kill.p50() > 0,
            "killing attacks fed the time-to-kill distribution"
        );
        // The per-op table accounts for every record, and both arms tell
        // the same story.
        let per_op: u64 = ab.on.per_op().iter().map(|(_, a, _)| a).sum();
        assert_eq!(per_op, ledger.attempted);
        assert_eq!(ab.on.ledger(), ab.off.ledger());
    }

    #[test]
    fn key_switch_is_about_nine_cycles_per_key() {
        let cost = key_switch::measure(5);
        assert!(
            cost.avg_per_key > 6.0 && cost.avg_per_key < 14.0,
            "≈9 cycles/key (§6.1.1), got {:.2}",
            cost.avg_per_key
        );
    }
}
