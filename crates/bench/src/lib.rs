//! Measurement helpers behind the benchmark harness and the `reproduce`
//! binary.
//!
//! Every table and figure of the paper's evaluation has a measurement
//! function here; the Criterion benches in `benches/` and the `reproduce`
//! report binary both build on these.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use camo_analysis as analysis;
pub use camo_attacks as attacks;
pub use camo_codegen as codegen;
pub use camo_core as core;
pub use camo_lmbench as lmbench;
pub use camo_smp as smp;
pub use camo_workloads as workloads;

/// Figure 2: per-call overhead of the three modifier schemes.
pub mod fig2 {
    use camo_codegen::{CfiScheme, CodegenConfig, FunctionBuilder, Program};
    use camo_cpu::Cpu;
    use camo_isa::{Insn, Reg};
    use camo_mem::{Memory, S1Attr, KERNEL_BASE};

    /// Result of one scheme's measurement.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct CallCost {
        /// The measured scheme.
        pub scheme: CfiScheme,
        /// Cycles per call of an empty function (call + prologue +
        /// epilogue + return + loop upkeep).
        pub cycles_per_call: f64,
        /// The same at the paper's 1.2 GHz evaluation clock.
        pub ns_per_call: f64,
    }

    /// Builds the Figure-2 call-loop machine for `scheme`: an instrumented
    /// empty function plus an uninstrumented driver loop, loaded and ready
    /// to run. Returns the machine and the driver's entry VA.
    ///
    /// Shared by [`measure`] and the `perfcheck` wall-clock harness.
    ///
    /// # Panics
    ///
    /// Panics if image building fails (a harness bug).
    pub fn build_call_loop(scheme: CfiScheme) -> (Cpu, Memory, u64) {
        let cfg = CodegenConfig {
            scheme,
            protect_pointers: false,
            compat_v80: false,
        };
        let mut program = Program::new(cfg);
        program.push(FunctionBuilder::new("empty", cfg).build());
        // The benchmark loop itself is uninstrumented (it is the
        // measurement harness, like the paper's timer loop).
        let mut driver = FunctionBuilder::new("driver", cfg).naked();
        driver.ins(Insn::mov(Reg::x(19), Reg::LR)); // save LR across the BLs
        driver.ins(Insn::mov(Reg::x(20), Reg::x(0)));
        driver.call("empty"); // loop head at index 2
        driver.ins(Insn::SubImm {
            rd: Reg::x(20),
            rn: Reg::x(20),
            imm12: 1,
            shifted: false,
        });
        driver.ins(Insn::Cbnz {
            rt: Reg::x(20),
            offset: -8,
        });
        driver.ins(Insn::mov(Reg::LR, Reg::x(19)));
        driver.ins(Insn::ret());
        program.push(driver.build());
        let image = program.link(KERNEL_BASE);

        let mut mem = Memory::new();
        let table = mem.new_table();
        let bytes = image.to_bytes();
        for (page, chunk) in bytes.chunks(4096).enumerate() {
            let frame = mem.map_new(
                table,
                KERNEL_BASE + page as u64 * 4096,
                S1Attr::kernel_text(),
            );
            mem.phys_mut().write_bytes(frame.base(), chunk).unwrap();
        }
        // A stack page for the frame records.
        let stack_va = KERNEL_BASE + 0x10_0000;
        mem.map_new(table, stack_va, S1Attr::kernel_data());

        let mut cpu = Cpu::default();
        cpu.state
            .set_sysreg(camo_isa::SysReg::Ttbr0El1, table.raw());
        cpu.state
            .set_sysreg(camo_isa::SysReg::Ttbr1El1, table.raw());
        cpu.state
            .set_pauth_key(camo_isa::PauthKey::IA, camo_qarma::QarmaKey::new(11, 12));
        cpu.state
            .set_pauth_key(camo_isa::PauthKey::IB, camo_qarma::QarmaKey::new(13, 14));
        cpu.state.sp_el1 = stack_va + 4096 - 64;
        let driver_va = image.symbol("driver").expect("driver symbol");
        (cpu, mem, driver_va)
    }

    /// Measures the per-call cost of an empty function under `scheme`
    /// by running a simulated call loop of `iters` iterations.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (a harness bug).
    pub fn measure(scheme: CfiScheme, iters: u64) -> CallCost {
        let (mut cpu, mut mem, driver_va) = build_call_loop(scheme);
        let result = cpu
            .call(&mut mem, driver_va, &[iters], 64 * iters + 1024)
            .expect("benchmark loop runs");
        CallCost {
            scheme,
            cycles_per_call: result.cycles as f64 / iters as f64,
            ns_per_call: result.cycles as f64 / iters as f64 / 1.2,
        }
    }

    /// Measures all four schemes (baseline + the Figure 2 contenders).
    pub fn all(iters: u64) -> Vec<CallCost> {
        [
            CfiScheme::None,
            CfiScheme::SpOnly,
            CfiScheme::Camouflage,
            CfiScheme::Parts,
        ]
        .into_iter()
        .map(|s| measure(s, iters))
        .collect()
    }
}

/// §6.1.1: key-switch cost in cycles per key.
pub mod key_switch {
    use camo_core::Machine;
    use camo_kernel::layout::KEYSETTER_VA;

    /// The two directions of a key switch plus their average.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct KeySwitchCost {
        /// Cycles/key to install the kernel keys via the XOM setter.
        pub install_per_key: f64,
        /// Cycles/key to restore the user keys from `thread_struct`.
        pub restore_per_key: f64,
        /// The average — the paper's "9 cycles per key" quantity.
        pub avg_per_key: f64,
    }

    /// Measures on a freshly booted protected machine, averaging `n` runs.
    ///
    /// # Panics
    ///
    /// Panics if boot or the kernel calls fail.
    pub fn measure(n: u64) -> KeySwitchCost {
        let mut machine = Machine::protected().expect("boot");
        let kernel = machine.kernel_mut();
        let restore_va = kernel.symbol("restore_user_keys");
        let mut install = 0u64;
        let mut restore = 0u64;
        for _ in 0..n {
            install += kernel.kexec(KEYSETTER_VA, &[]).expect("setter").cycles;
            restore += kernel.kexec(restore_va, &[]).expect("restore").cycles;
        }
        let keys = 3.0 * n as f64;
        let install_per_key = install as f64 / keys;
        let restore_per_key = restore as f64 / keys;
        KeySwitchCost {
            install_per_key,
            restore_per_key,
            avg_per_key: (install_per_key + restore_per_key) / 2.0,
        }
    }
}

/// Wall-clock throughput of the simulator itself (the `perfcheck` binary).
///
/// Everything else in this crate measures *simulated cycles* — the paper's
/// quantity, unaffected by the fast-path caches by design. This module
/// measures *host seconds per simulated step*: the thing the software TLB,
/// decoded-instruction cache and warm QARMA schedules exist to improve.
pub mod perf {
    use super::fig2;
    use camo_codegen::CfiScheme;
    use camo_core::{Machine, ProtectionLevel};
    use camo_kernel::SYSCALLS;
    use camo_lmbench::workload_config;
    use std::time::Instant;

    /// One wall-clock measurement of a workload.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct PerfSample {
        /// Whether the fast-path caches were enabled.
        pub caches: bool,
        /// Simulated instructions retired.
        pub instructions: u64,
        /// Simulated cycles consumed (must not depend on `caches`).
        pub cycles: u64,
        /// Host wall-clock seconds.
        pub wall_secs: f64,
        /// Simulated instructions per host second.
        pub steps_per_sec: f64,
        /// PAC-unit MAC-memo hits (0 with caches off).
        pub pac_memo_hits: u64,
        /// PAC-unit MAC-memo misses (0 with caches off).
        pub pac_memo_misses: u64,
    }

    fn sample(
        caches: bool,
        instructions: u64,
        cycles: u64,
        wall_secs: f64,
        memo: (u64, u64),
    ) -> PerfSample {
        PerfSample {
            caches,
            instructions,
            cycles,
            wall_secs,
            steps_per_sec: instructions as f64 / wall_secs.max(1e-9),
            pac_memo_hits: memo.0,
            pac_memo_misses: memo.1,
        }
    }

    /// The one Figure-2 wall-clock harness behind every A/B: builds the
    /// call loop, applies the cache, block-engine and trace-engine knobs,
    /// runs, and samples. `recorded` is the value stored in
    /// [`PerfSample::caches`] (the toggled axis of whichever A/B is
    /// calling).
    pub(crate) fn fig2_sample(
        iters: u64,
        caches: bool,
        blocks: bool,
        traces: bool,
        recorded: bool,
    ) -> (PerfSample, camo_cpu::CpuStats) {
        let (mut cpu, mut mem, driver_va) = fig2::build_call_loop(CfiScheme::Camouflage);
        cpu.set_block_engine(blocks);
        cpu.set_trace_engine(traces);
        cpu.set_caching(caches);
        mem.set_caching(caches);
        let start = Instant::now();
        let result = cpu
            .call(&mut mem, driver_va, &[iters], 64 * iters + 1024)
            .expect("benchmark loop runs");
        let wall = start.elapsed().as_secs_f64();
        let stats = cpu.stats();
        (
            sample(
                recorded,
                result.instructions,
                result.cycles,
                wall,
                (stats.pac_memo_hits, stats.pac_memo_misses),
            ),
            stats,
        )
    }

    /// The Figure-2 call loop (Camouflage scheme) run for `iters`
    /// iterations with the caches on or off.
    ///
    /// BENCH_2 isolates the PR-2 cache A/B: the block engine is pinned
    /// off in both arms (its own A/B is `perfcheck --blocks`).
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (a harness bug).
    pub fn hot_loop(iters: u64, caches: bool) -> PerfSample {
        fig2_sample(iters, caches, false, false, caches).0
    }

    /// The lmbench syscall mix (every modeled syscall, `reps` rounds each)
    /// on a fully protected machine booted from `seed`, with the caches on
    /// or off.
    ///
    /// # Panics
    ///
    /// Panics if boot or a syscall fails (a harness bug).
    pub fn syscall_mix(reps: u64, caches: bool, seed: u64) -> PerfSample {
        let mut cfg = workload_config(ProtectionLevel::Full);
        cfg.fast_caches = caches;
        // Same pinning as `hot_loop`: BENCH_2 measures the caches alone.
        cfg.block_engine = false;
        cfg.seed = seed;
        let mut machine = Machine::with_config(cfg).expect("boot");
        let kernel = machine.kernel_mut();
        let tid = kernel.current_task().tid;
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        let start = Instant::now();
        for spec in SYSCALLS {
            let out = kernel
                .run_user(tid, "stub", reps, spec.nr, 3)
                .expect("syscall mix runs");
            instructions += out.instructions;
            cycles += out.cycles;
        }
        let wall = start.elapsed().as_secs_f64();
        let stats = machine.kernel().cpu().stats();
        sample(
            caches,
            instructions,
            cycles,
            wall,
            (stats.pac_memo_hits, stats.pac_memo_misses),
        )
    }

    /// One point of the sharded-scaling curve (`BENCH_3.json`).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct ScalingPoint {
        /// Shard (machine) count.
        pub shards: usize,
        /// Syscalls served across all shards.
        pub syscalls: u64,
        /// Simulated instructions retired across all shards.
        pub instructions: u64,
        /// Simulated cycles across all shards.
        pub cycles: u64,
        /// Wall seconds of the parallel fan-out on this host.
        pub parallel_wall_secs: f64,
        /// Aggregate simulated steps per wall second the parallel run
        /// delivered on this host (bounded by the host's core count).
        pub parallel_steps_per_sec: f64,
        /// Aggregate shard capacity: sum of isolated per-shard rates from
        /// a sequential run — the pool's service rate given one unloaded
        /// core per shard.
        pub capacity_steps_per_sec: f64,
        /// Whether the parallel and sequential runs produced bit-identical
        /// simulated totals (they must; sharding mode is architecturally
        /// invisible).
        pub simulation_identical: bool,
    }

    /// Measures one shard count of the lmbench-mix scaling curve: the same
    /// deterministic plan is run once on the thread pool (wall scaling on
    /// this host) and once sequentially (isolated shard capacity), and the
    /// simulated totals are cross-checked bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn smp_scaling(shards: usize, total_syscalls: u64, seed: u64) -> ScalingPoint {
        use camo_smp::{FleetDriver, TrafficPlan};
        // The PR-3 traffic plan, served by the fleet engine as a single
        // lmbench tenant (the deprecated ShardedDriver's exact semantics).
        let plan = TrafficPlan::new(shards, total_syscalls, seed).to_fleet();
        let par = FleetDriver::drive(&plan).expect("parallel traffic runs");
        let seq = FleetDriver::drive_sequential(&plan).expect("sequential traffic runs");
        ScalingPoint {
            shards,
            syscalls: par.syscalls,
            instructions: par.instructions,
            cycles: par.cycles,
            parallel_wall_secs: par.wall_secs,
            parallel_steps_per_sec: par.steps_per_sec(),
            capacity_steps_per_sec: seq.capacity_steps_per_sec(),
            simulation_identical: par.simulation_identical(&seq),
        }
    }
}

/// The multi-tenant fleet benchmark (`perfcheck --fleet`, `BENCH_4.json`).
///
/// One standard tenant mix — lmbench traffic, a fork/exec churn storm,
/// module load/unload churn, and a context-switch-heavy tenant — served
/// across shards by [`camo_smp::FleetDriver`], measured in both execution
/// modes and cross-checked bit for bit. The documented contract for every
/// emitted field lives in `BENCHMARKS.md`.
pub mod fleet {
    use camo_smp::{FleetDriver, FleetPlan, FleetReport};
    use camo_workloads::TenantSpec;

    /// The standard four-tenant mix (`--smoke` shrinks it to two tenants
    /// for CI runners: the lmbench baseline plus the switch-heavy mix).
    pub fn standard_tenants(smoke: bool) -> Vec<TenantSpec> {
        if smoke {
            vec![
                TenantSpec::lmbench("web", 1_600),
                TenantSpec::tenant_mix("batch", 120),
            ]
        } else {
            vec![
                TenantSpec::lmbench("web", 8_000),
                TenantSpec::process_churn("build-farm", 240),
                TenantSpec::module_churn("driver-ci", 160),
                TenantSpec::tenant_mix("batch", 400),
            ]
        }
    }

    /// One fleet measurement: the same plan in both execution modes.
    #[derive(Debug)]
    pub struct FleetMeasurement {
        /// The plan that was run.
        pub plan: FleetPlan,
        /// The thread-pool run (wall scaling on this host).
        pub parallel: FleetReport,
        /// The back-to-back run (isolated per-shard capacity).
        pub sequential: FleetReport,
        /// Whether both modes agreed bit for bit on every simulated
        /// quantity — totals, per-tenant stats, latency histograms.
        pub identical: bool,
    }

    /// Runs `tenants` across `shards` machines of `cpus_per_shard` cores,
    /// both parallel and sequential, and cross-checks the simulated
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn measure(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
    ) -> FleetMeasurement {
        measure_with_engines(shards, cpus_per_shard, seed, tenants, true, true)
    }

    /// [`measure`] with an explicit block-engine setting and the trace
    /// tier pinned **off** in both states — the `perfcheck --blocks`
    /// fleet A/B runs it once per arm, isolating tier 1 exactly as
    /// BENCH_5 always has.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn measure_with_blocks(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
        block_engine: bool,
    ) -> FleetMeasurement {
        measure_with_engines(shards, cpus_per_shard, seed, tenants, block_engine, false)
    }

    /// [`measure`] with both translation-engine tiers explicit — the
    /// `perfcheck --traces` fleet A/B runs it with blocks pinned on and
    /// the trace tier toggled.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn measure_with_engines(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
        block_engine: bool,
        trace_engine: bool,
    ) -> FleetMeasurement {
        let mut plan = FleetPlan::new(shards, seed, tenants);
        plan.cpus_per_shard = cpus_per_shard;
        plan.block_engine = block_engine;
        plan.trace_engine = trace_engine;
        let parallel = FleetDriver::drive(&plan).expect("parallel fleet runs");
        let sequential = FleetDriver::drive_sequential(&plan).expect("sequential fleet runs");
        let identical = parallel.simulation_identical(&sequential);
        FleetMeasurement {
            plan,
            parallel,
            sequential,
            identical,
        }
    }
}

/// The block-translation-engine A/B (`perfcheck --blocks`, `BENCH_5.json`).
///
/// Same quantities as [`perf`] — host wall time per simulated step — but
/// the toggled axis is the basic-block translation engine rather than the
/// PR-2 caches. Both arms run with the fast-path caches **on**: the block
/// engine's job is to beat the already-cached step loop, not the per-byte
/// seed path.
pub mod blocks {
    use super::fleet::{measure_with_blocks, FleetMeasurement};
    use super::perf::PerfSample;
    use camo_smp::FleetReport;
    use camo_workloads::TenantSpec;

    /// One wall-clock measurement with the block engine on or off, plus
    /// the engine's own cache counters.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct BlockSample {
        /// The throughput sample (`caches` records the *block engine*
        /// setting here; the fast-path caches are always on).
        pub sample: PerfSample,
        /// Block-cache hits (0 with the engine off).
        pub block_hits: u64,
        /// Block-cache misses (0 with the engine off).
        pub block_misses: u64,
        /// Block invalidations (0 with the engine off).
        pub block_invalidations: u64,
    }

    /// The Figure-2 call loop (Camouflage scheme), fast-path caches on,
    /// block engine toggled — the same harness as [`super::perf::hot_loop`],
    /// toggling the other knob.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (a harness bug).
    pub fn hot_loop(iters: u64, blocks: bool) -> BlockSample {
        // Trace tier pinned off in both arms: BENCH_5 measures tier 1
        // alone, and stays a regression guard that tier-1 behaviour did
        // not shift under the new tier.
        let (sample, stats) = super::perf::fig2_sample(iters, true, blocks, false, blocks);
        BlockSample {
            sample,
            block_hits: stats.block_hits,
            block_misses: stats.block_misses,
            block_invalidations: stats.block_invalidations,
        }
    }

    /// The fleet mix measured with the engine on and off (each arm runs
    /// parallel *and* sequential, so the existing
    /// `simulation_identical` gate applies per arm).
    #[derive(Debug)]
    pub struct FleetAb {
        /// Engine-on measurement.
        pub on: FleetMeasurement,
        /// Engine-off measurement.
        pub off: FleetMeasurement,
    }

    impl FleetAb {
        /// Whether the engine-on and engine-off fleets agreed on every
        /// architectural quantity: totals, per-tenant counters
        /// ([`camo_cpu::CpuStats::arch_eq`] for the stats), and the
        /// per-tenant simulated-cycle latency histograms.
        pub fn arch_identical(&self) -> bool {
            arch_identical(&self.on.parallel, &self.off.parallel)
        }

        /// Engine-on capacity over engine-off capacity (isolated-shard
        /// rates from the sequential runs — host-contention free).
        pub fn speedup(&self) -> f64 {
            self.on.sequential.capacity_steps_per_sec()
                / self.off.sequential.capacity_steps_per_sec().max(1e-9)
        }
    }

    /// Whether two fleet reports are architecturally identical —
    /// everything the simulation defines except the cache-observability
    /// counters (which legitimately differ across engines).
    pub fn arch_identical(a: &FleetReport, b: &FleetReport) -> bool {
        a.syscalls == b.syscalls
            && a.instructions == b.instructions
            && a.cycles == b.cycles
            && a.stats.arch_eq(&b.stats)
            && a.tenants.len() == b.tenants.len()
            && a.tenants.iter().zip(&b.tenants).all(|(x, y)| {
                x.name == y.name
                    && x.totals.ops == y.totals.ops
                    && x.totals.syscalls == y.totals.syscalls
                    && x.totals.instructions == y.totals.instructions
                    && x.totals.cycles == y.totals.cycles
                    && x.totals.stats.arch_eq(&y.totals.stats)
                    && x.totals.latency == y.totals.latency
            })
    }

    /// Runs the fleet mix once per engine arm.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn fleet_ab(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
    ) -> FleetAb {
        // Engine off first, so the on-arm cannot benefit from a warmer
        // host (same ordering rationale as the BENCH_2 harness).
        let off = measure_with_blocks(shards, cpus_per_shard, seed, tenants.clone(), false);
        let on = measure_with_blocks(shards, cpus_per_shard, seed, tenants, true);
        FleetAb { on, off }
    }
}

/// The trace-tier A/B (`perfcheck --traces`, `BENCH_7.json`).
///
/// Both arms run with the fast-path caches **and** the block engine on:
/// the trace tier's job is to beat the already-blocked engine (BENCH_5's
/// on-arm), the way BENCH_5's job was to beat the already-cached step
/// loop. The toggled axis is [`camo_cpu::Cpu::set_trace_engine`] /
/// [`camo_smp::FleetPlan::trace_engine`].
pub mod traces {
    use super::fleet::measure_with_engines;
    use super::perf::PerfSample;
    use camo_workloads::TenantSpec;

    // The verdict helpers are shared with the BENCH_5 harness: the gates
    // (architectural identity, parallel≡sequential) are the same, only
    // the toggled knob differs.
    pub use super::blocks::FleetAb;

    /// One wall-clock measurement with the trace tier on or off, plus the
    /// tier's own cache counters.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct TraceSample {
        /// The throughput sample (`caches` records the *trace engine*
        /// setting here; fast-path caches and block engine are always on).
        pub sample: PerfSample,
        /// Trace-cache hits (0 with the tier off).
        pub trace_hits: u64,
        /// Traces built (0 with the tier off).
        pub trace_misses: u64,
        /// Trace invalidations.
        pub trace_invalidations: u64,
        /// Chain continuations inside engine calls (block- or trace-exit
        /// edges followed without returning to the run loop).
        pub chain_follows: u64,
        /// Tier-1 block-cache hits — with the tier on, hot work moves out
        /// of these into `trace_hits`.
        pub block_hits: u64,
    }

    /// The Figure-2 call loop (Camouflage scheme), fast-path caches and
    /// block engine on, trace tier toggled — the same harness as
    /// [`super::blocks::hot_loop`], toggling the next knob up.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (a harness bug).
    pub fn hot_loop(iters: u64, traces: bool) -> TraceSample {
        let (sample, stats) = super::perf::fig2_sample(iters, true, true, traces, traces);
        TraceSample {
            sample,
            trace_hits: stats.trace_hits,
            trace_misses: stats.trace_misses,
            trace_invalidations: stats.trace_invalidations,
            chain_follows: stats.chain_follows,
            block_hits: stats.block_hits,
        }
    }

    /// Runs the fleet mix once per trace-tier arm (block engine pinned on
    /// in both).
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (benign traffic must not fault).
    pub fn fleet_ab(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
    ) -> FleetAb {
        // Tier off first, same warm-host ordering rationale as BENCH_5.
        let off = measure_with_engines(shards, cpus_per_shard, seed, tenants.clone(), true, false);
        let on = measure_with_engines(shards, cpus_per_shard, seed, tenants, true, true);
        FleetAb { on, off }
    }
}

/// The adversarial traffic plane (`perfcheck --fuzz`, `BENCH_6.json`).
///
/// Seeded fuzz tenants mount the [`camo_workloads::HostileOp`] attacks —
/// forged and replayed signed stack pointers, forged `f_ops`/work-callback
/// pointers, module-signing violations, direct physical writes to
/// translated code — *under load*, interleaved with benign tenants on the
/// same machines. Three property families are gated:
///
/// 1. **Attribution**: every hostile op produced exactly its declared
///    expected outcome (the right [`camo_cpu::pac::KeyClass`] failure on
///    the right sacrificial task, a module rejection, or coherent tamper
///    visibility) and nothing else.
/// 2. **Blast radius**: no benign tenant saw a §5.4 failure-policy event
///    in any of its op windows (false-positive rate 0), and each benign
///    tenant's simulated totals — ops, syscalls, instructions, cycles,
///    latency histogram, architectural counters — are bit-identical to an
///    isolated-baseline run of the same tenant alone on an identically
///    seeded fleet.
/// 3. **Engine invariance**: the whole adversarial plan produces
///    architecturally identical results with the translation engine on
///    and off (the on-arm runs both tiers — blocks *and* traces, the
///    production default), including the per-op hostile ledgers.
///
/// The §5.4 measurements the paper motivates — false-positive rate and
/// time-to-kill (simulated cycles from attack trigger to task kill) — are
/// reported alongside the gates.
pub mod fuzz {
    use super::blocks::arch_identical;
    use super::fleet::FleetMeasurement;
    use camo_smp::{FleetDriver, FleetPlan, FleetReport, TenantReport};
    use camo_workloads::{HostileOp, HostileTotals, TenantSpec};

    /// The benign side of the adversarial plan. Placed *first* in the
    /// plan so these tenants' long-lived tasks are spawned (and
    /// scheduler-placed) before any fuzz tenant exists — the precondition
    /// for the isolated-baseline identity gate.
    pub fn benign_tenants(smoke: bool) -> Vec<TenantSpec> {
        if smoke {
            vec![
                TenantSpec::lmbench("web", 800),
                TenantSpec::tenant_mix("batch", 60),
            ]
        } else {
            vec![
                TenantSpec::lmbench("web", 4_000),
                TenantSpec::tenant_mix("batch", 240),
            ]
        }
    }

    /// The fuzz tenants, always appended *after* the benign tenants.
    pub fn fuzz_tenants(smoke: bool) -> Vec<TenantSpec> {
        let ops = if smoke { 60 } else { 320 };
        vec![
            TenantSpec::fuzz("fuzz-0", ops),
            TenantSpec::fuzz("fuzz-1", ops),
        ]
    }

    /// Builds and runs one adversarial plan (both execution modes). The
    /// §5.4 panic threshold is lifted: the gate, not the panic, judges
    /// every attack — a fuzz campaign necessarily exceeds any sane
    /// production threshold.
    fn run_plan(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        tenants: Vec<TenantSpec>,
        block_engine: bool,
    ) -> FleetMeasurement {
        let mut plan = FleetPlan::new(shards, seed, tenants);
        plan.cpus_per_shard = cpus_per_shard;
        plan.block_engine = block_engine;
        plan.pac_panic_threshold = Some(u32::MAX);
        let parallel = FleetDriver::drive(&plan).expect("parallel adversarial fleet runs");
        let sequential =
            FleetDriver::drive_sequential(&plan).expect("sequential adversarial fleet runs");
        let identical = parallel.simulation_identical(&sequential);
        FleetMeasurement {
            plan,
            parallel,
            sequential,
            identical,
        }
    }

    /// One benign tenant's isolation verdict: does its service in the
    /// adversarial plan match, bit for bit, its service alone on an
    /// identically seeded fleet?
    #[derive(Debug)]
    pub struct IsolationCheck {
        /// Tenant name.
        pub name: String,
        /// Architectural identity of the mixed-run and isolated-run
        /// tenant reports.
        pub identical: bool,
    }

    /// Arch-level tenant-report identity: every simulated quantity except
    /// the cache-observability counters (same exclusion rule as
    /// [`super::blocks::arch_identical`]).
    fn tenant_arch_identical(a: &TenantReport, b: &TenantReport) -> bool {
        a.name == b.name
            && a.totals.ops == b.totals.ops
            && a.totals.syscalls == b.totals.syscalls
            && a.totals.instructions == b.totals.instructions
            && a.totals.cycles == b.totals.cycles
            && a.totals.stats.arch_eq(&b.totals.stats)
            && a.totals.latency == b.totals.latency
            && a.totals.hostile == b.totals.hostile
    }

    /// One engine arm: the adversarial plan plus the per-benign-tenant
    /// isolated baselines.
    #[derive(Debug)]
    pub struct FuzzArm {
        /// The mixed (benign + fuzz) plan, both execution modes.
        pub mixed: FleetMeasurement,
        /// Isolation verdict per benign tenant.
        pub isolation: Vec<IsolationCheck>,
    }

    impl FuzzArm {
        /// The merged adversarial ledger of every fuzz tenant.
        pub fn ledger(&self) -> HostileTotals {
            let mut total = HostileTotals::default();
            for t in &self.mixed.parallel.tenants {
                total.merge(&t.totals.hostile);
            }
            total
        }

        /// Gate 1: every hostile op matched its declaration (and at least
        /// one was mounted).
        pub fn all_hostile_matched(&self) -> bool {
            let ledger = self.ledger();
            ledger.attempted > 0 && ledger.matched == ledger.attempted
        }

        /// Gate 2a: zero §5.4 failure-policy events in benign windows,
        /// across every tenant (fuzz tenants' benign windows included).
        pub fn zero_false_positives(&self) -> bool {
            self.ledger().benign_pac_events == 0
        }

        /// Gate 2b: every benign tenant bit-identical to its isolated
        /// baseline.
        pub fn benign_isolated(&self) -> bool {
            !self.isolation.is_empty() && self.isolation.iter().all(|c| c.identical)
        }

        /// Per-op attribution table in [`HostileOp::ALL`] order:
        /// `(name, attempted, matched)`.
        pub fn per_op(&self) -> Vec<(&'static str, u64, u64)> {
            let ledger = self.ledger();
            HostileOp::ALL
                .iter()
                .map(|op| {
                    let recs = ledger.records.iter().filter(|r| r.op == *op);
                    let attempted = recs.clone().count() as u64;
                    let matched = recs.filter(|r| r.matched).count() as u64;
                    (op.name(), attempted, matched)
                })
                .collect()
        }
    }

    /// Runs one arm: the mixed adversarial plan, then each benign tenant
    /// alone on an identically seeded fleet, comparing the tenant's
    /// report architecturally.
    ///
    /// # Panics
    ///
    /// Panics if a shard fails (the executor propagates only
    /// infrastructure errors; attack outcomes are recorded, not thrown).
    pub fn measure_arm(
        shards: usize,
        cpus_per_shard: usize,
        seed: u64,
        smoke: bool,
        block_engine: bool,
    ) -> FuzzArm {
        let benign = benign_tenants(smoke);
        let mut tenants = benign.clone();
        tenants.extend(fuzz_tenants(smoke));
        let mixed = run_plan(shards, cpus_per_shard, seed, tenants, block_engine);
        let isolation = benign
            .into_iter()
            .map(|spec| {
                let name = spec.name.clone();
                let alone = run_plan(shards, cpus_per_shard, seed, vec![spec], block_engine);
                let in_mixed = mixed
                    .parallel
                    .tenants
                    .iter()
                    .find(|t| t.name == name)
                    .expect("benign tenant served in the mixed plan");
                let in_isolation = alone
                    .parallel
                    .tenants
                    .iter()
                    .find(|t| t.name == name)
                    .expect("benign tenant served in isolation");
                IsolationCheck {
                    identical: alone.identical && tenant_arch_identical(in_mixed, in_isolation),
                    name,
                }
            })
            .collect();
        FuzzArm { mixed, isolation }
    }

    /// The full BENCH_6 measurement: both block-engine arms.
    #[derive(Debug)]
    pub struct FuzzAb {
        /// Block engine on.
        pub on: FuzzArm,
        /// Block engine off.
        pub off: FuzzArm,
    }

    impl FuzzAb {
        /// Gate 3: the two arms agree on every architectural quantity,
        /// including the per-op hostile ledgers.
        pub fn arch_identical(&self) -> bool {
            arms_arch_identical(&self.on.mixed.parallel, &self.off.mixed.parallel)
        }

        /// All gates at once — the `perfcheck --fuzz` exit criterion.
        pub fn passes(&self) -> bool {
            [&self.on, &self.off].iter().all(|arm| {
                arm.mixed.identical
                    && arm.all_hostile_matched()
                    && arm.zero_false_positives()
                    && arm.benign_isolated()
            }) && self.arch_identical()
        }
    }

    /// Cross-arm identity: [`arch_identical`] plus per-tenant hostile
    /// ledgers (records, time-to-kill, counts) — the block engine must
    /// not change a single attack outcome.
    pub fn arms_arch_identical(a: &FleetReport, b: &FleetReport) -> bool {
        arch_identical(a, b)
            && a.tenants
                .iter()
                .zip(&b.tenants)
                .all(|(x, y)| x.totals.hostile == y.totals.hostile)
    }

    /// Runs both arms (engine off first, mirroring the other A/Bs).
    ///
    /// # Panics
    ///
    /// Panics if a shard fails.
    pub fn measure(shards: usize, cpus_per_shard: usize, seed: u64, smoke: bool) -> FuzzAb {
        let off = measure_arm(shards, cpus_per_shard, seed, smoke, false);
        let on = measure_arm(shards, cpus_per_shard, seed, smoke, true);
        FuzzAb { on, off }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_codegen::CfiScheme;

    #[test]
    fn fig2_ordering_matches_paper() {
        // Figure 2: Clang's SP-only < Camouflage < PARTS; all above the
        // uninstrumented baseline.
        let costs = fig2::all(50);
        let get = |s: CfiScheme| {
            costs
                .iter()
                .find(|c| c.scheme == s)
                .unwrap()
                .cycles_per_call
        };
        let none = get(CfiScheme::None);
        let sp = get(CfiScheme::SpOnly);
        let camo = get(CfiScheme::Camouflage);
        let parts = get(CfiScheme::Parts);
        assert!(none < sp, "{none} < {sp}");
        assert!(sp < camo, "{sp} < {camo}");
        assert!(camo < parts, "{camo} < {parts}");
    }

    #[test]
    fn fleet_measurement_is_simulation_identical() {
        use camo_workloads::TenantSpec;
        let m = fleet::measure(
            2,
            2,
            0xBE4C4,
            vec![
                TenantSpec::lmbench("web", 64),
                TenantSpec::tenant_mix("batch", 8),
            ],
        );
        assert!(m.identical, "fleet execution mode leaked into simulation");
        assert_eq!(m.parallel.syscalls, m.sequential.syscalls);
        assert!(m
            .parallel
            .tenants
            .iter()
            .all(|t| t.totals.latency.p99() > 0));
    }

    #[test]
    fn fuzz_gate_is_clean_on_a_small_fleet() {
        let ab = fuzz::measure(2, 2, 0xF022, true);
        assert!(ab.passes(), "the smoke adversarial plan must gate clean");
        let ledger = ab.on.ledger();
        assert!(ledger.attempted > 0, "fuzz tenants mounted attacks");
        assert_eq!(ledger.matched, ledger.attempted);
        assert_eq!(ledger.benign_pac_events, 0);
        assert_eq!(ledger.false_positive_rate(), 0.0);
        assert!(
            ledger.time_to_kill.count() > 0 && ledger.time_to_kill.p50() > 0,
            "killing attacks fed the time-to-kill distribution"
        );
        // The per-op table accounts for every record, and both arms tell
        // the same story.
        let per_op: u64 = ab.on.per_op().iter().map(|(_, a, _)| a).sum();
        assert_eq!(per_op, ledger.attempted);
        assert_eq!(ab.on.ledger(), ab.off.ledger());
    }

    #[test]
    fn key_switch_is_about_nine_cycles_per_key() {
        let cost = key_switch::measure(5);
        assert!(
            cost.avg_per_key > 6.0 && cost.avg_per_key < 14.0,
            "≈9 cycles/key (§6.1.1), got {:.2}",
            cost.avg_per_key
        );
    }
}
