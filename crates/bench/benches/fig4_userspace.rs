//! Figure 4: user-space macro workloads (JPEG resize, package build,
//! network download) under the three protection levels.

use camo_core::{Machine, ProtectionLevel};
use camo_lmbench::{run_workload, workload_config, workloads};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_userspace");
    group.sample_size(10);
    let defs = workloads();
    for level in ProtectionLevel::ALL {
        let mut machine = Machine::with_config(workload_config(level)).expect("boot");
        for w in &defs {
            group.bench_function(format!("{}/{level}", w.name), |b| {
                b.iter(|| black_box(run_workload(&mut machine, w).expect("workload")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
