//! Figure 3: lmbench-style syscall latencies under the three protection
//! levels.
//!
//! Criterion times the simulation of complete syscall round trips; the
//! paper's relative latencies come from the simulated cycle counts
//! (`reproduce --exp fig3`).

use camo_core::{Machine, ProtectionLevel};
use camo_lmbench::workload_config;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_lmbench");
    group.sample_size(20);
    for level in ProtectionLevel::ALL {
        let mut machine = Machine::with_config(workload_config(level)).expect("boot");
        // getpid — the null-call latency the entry/exit overhead dominates.
        group.bench_function(format!("getpid/{level}"), |b| {
            b.iter(|| black_box(machine.kernel_mut().syscall(172, 0).expect("syscall")));
        });
        let mut machine = Machine::with_config(workload_config(level)).expect("boot");
        // select — ten ops-table dispatches make the DFI cost visible.
        group.bench_function(format!("select/{level}"), |b| {
            b.iter(|| black_box(machine.kernel_mut().syscall(72, 3).expect("syscall")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
