//! Ablations of the design choices DESIGN.md calls out:
//!
//! * backward-edge scheme on a real syscall path (not just the Figure 2
//!   microbenchmark);
//! * the §5.5 backward-compatible build vs the native one;
//! * the 4-cycle PA-analogue charge vs free PAuth (cost-model ablation).

use camo_codegen::CfiScheme;
use camo_core::{Machine, ProtectionLevel};
use camo_isa::CostModel;
use camo_kernel::KernelConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn syscall_cycles(cfg: KernelConfig) -> f64 {
    let mut machine = Machine::with_config(cfg).expect("boot");
    let kernel = machine.kernel_mut();
    let _ = kernel.syscall(172, 0).expect("warm-up");
    let tid = kernel.current_task().tid;
    let out = kernel.run_user(tid, "stub", 20, 172, 0).expect("run");
    out.cycles as f64 / 20.0
}

fn bench(c: &mut Criterion) {
    println!("Ablation (simulated getpid cycles/op):");
    for scheme in [CfiScheme::SpOnly, CfiScheme::Parts, CfiScheme::Camouflage] {
        let mut cfg = KernelConfig::default();
        cfg.scheme_override = Some(scheme);
        println!(
            "  scheme {:<12} {:>8.1}",
            scheme.to_string(),
            syscall_cycles(cfg)
        );
    }
    let mut compat = KernelConfig::default();
    compat.compat_v80 = true;
    println!("  compat-v8.0 build  {:>8.1}", syscall_cycles(compat));
    println!(
        "  baseline (none)    {:>8.1}",
        syscall_cycles(KernelConfig::with_protection(ProtectionLevel::None))
    );
    // Cost-model ablation: what if PAuth were free (0 cycles instead of
    // the 4-cycle PA-analogue)?
    let mut machine = Machine::protected().expect("boot");
    machine
        .kernel_mut()
        .cpu_mut()
        .set_cost_model(CostModel::free_pauth());
    let kernel = machine.kernel_mut();
    let _ = kernel.syscall(172, 0).expect("warm-up");
    let tid = kernel.current_task().tid;
    let out = kernel.run_user(tid, "stub", 20, 172, 0).expect("run");
    println!("  full, free PAuth   {:>8.1}", out.cycles as f64 / 20.0);

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("syscall/camouflage", |b| {
        let mut machine = Machine::protected().expect("boot");
        b.iter(|| black_box(machine.kernel_mut().syscall(172, 0).expect("syscall")));
    });
    group.bench_function("syscall/compat-v80", |b| {
        let mut cfg = KernelConfig::default();
        cfg.compat_v80 = true;
        let mut machine = Machine::with_config(cfg).expect("boot");
        b.iter(|| black_box(machine.kernel_mut().syscall(172, 0).expect("syscall")));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
