//! §6.1.1: PAuth key-switch cost on kernel entry/exit.

use camo_bench::key_switch;
use camo_core::Machine;
use camo_kernel::layout::KEYSETTER_VA;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cost = key_switch::measure(20);
    println!(
        "§6.1.1 (simulated): install {:.2} cyc/key, restore {:.2} cyc/key, avg {:.2} cyc/key \
         (paper: 9)",
        cost.install_per_key, cost.restore_per_key, cost.avg_per_key
    );

    let mut machine = Machine::protected().expect("boot");
    let restore_va = machine.kernel().symbol("restore_user_keys");
    let mut group = c.benchmark_group("key_switch");
    group.bench_function("install_kernel_keys_xom", |b| {
        b.iter(|| {
            black_box(
                machine
                    .kernel_mut()
                    .kexec(KEYSETTER_VA, &[])
                    .expect("setter"),
            )
        });
    });
    group.bench_function("restore_user_keys", |b| {
        b.iter(|| {
            black_box(
                machine
                    .kernel_mut()
                    .kexec(restore_va, &[])
                    .expect("restore"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
