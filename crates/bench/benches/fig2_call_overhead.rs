//! Figure 2: function-call overhead of the three PAuth modifier schemes.
//!
//! The Criterion timings measure simulator wall-time; the paper's numbers
//! are the *simulated* cycles printed once at startup (also available via
//! `reproduce --exp fig2`).

use camo_bench::fig2;
use camo_codegen::CfiScheme;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("Figure 2 (simulated cycles per call):");
    for cost in fig2::all(200) {
        println!(
            "  {:<12} {:>8.2} cycles {:>8.2} ns",
            cost.scheme.to_string(),
            cost.cycles_per_call,
            cost.ns_per_call
        );
    }
    let mut group = c.benchmark_group("fig2_call_overhead");
    for scheme in [
        CfiScheme::None,
        CfiScheme::SpOnly,
        CfiScheme::Camouflage,
        CfiScheme::Parts,
    ] {
        group.bench_function(scheme.to_string(), |b| {
            b.iter(|| black_box(fig2::measure(scheme, 20)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
