//! Throughput of the QARMA-64 PAC primitive itself.

use camo_qarma::{compute_mac, Qarma, QarmaKey, Sigma};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let key = QarmaKey::new(0x84be_85ce_9804_e94b, 0xec28_02d4_e0a4_88e9);
    let mut group = c.benchmark_group("qarma_primitive");
    for sigma in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
        let cipher = Qarma::new(key, sigma, 5);
        group.bench_function(format!("encrypt/{sigma}"), |b| {
            b.iter(|| {
                black_box(cipher.encrypt(black_box(0xfb62_3599_da6e_8127), 0x477d_469d_ec0b_8762))
            });
        });
    }
    // Warm vs cold schedule: `compute_mac` re-derives the key schedule
    // (w¹, round keys, inverse S-box) on every call — the seed behaviour —
    // while `Qarma::mac` on a resident instance reuses it, which is what
    // the CPU's PAC unit does per key.
    group.bench_function("mac/cold_schedule", |b| {
        b.iter(|| black_box(compute_mac(black_box(0xffff_0000_1234_5678), 42, key)));
    });
    let warm = Qarma::new(key, Sigma::Sigma1, 5);
    group.bench_function("mac/warm_schedule", |b| {
        b.iter(|| black_box(warm.mac(black_box(0xffff_0000_1234_5678), 42)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
