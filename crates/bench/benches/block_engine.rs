//! Step-loop vs block-loop wall time on the Figure-2 hot loop.
//!
//! The Criterion timings measure simulator throughput only — the
//! simulated cycle counts are bit-identical by the block engine's
//! contract (asserted at startup below, and gated by
//! `perfcheck --blocks`).

use camo_bench::blocks;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const ITERS: u64 = 5_000;

fn bench(c: &mut Criterion) {
    let off = blocks::hot_loop(ITERS, false);
    let on = blocks::hot_loop(ITERS, true);
    assert_eq!(
        (on.sample.cycles, on.sample.instructions),
        (off.sample.cycles, off.sample.instructions),
        "block engine must not change simulated counts"
    );
    println!(
        "fig2 hot loop: {} simulated insns; block cache {} hits / {} misses",
        on.sample.instructions, on.block_hits, on.block_misses
    );

    let mut group = c.benchmark_group("block_engine");
    group.bench_function("step_loop", |b| {
        b.iter(|| black_box(blocks::hot_loop(ITERS, false)))
    });
    group.bench_function("block_loop", |b| {
        b.iter(|| black_box(blocks::hot_loop(ITERS, true)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
