//! Step-loop vs block-loop vs trace-loop wall time on the Figure-2 hot
//! loop.
//!
//! The Criterion timings measure simulator throughput only — the
//! simulated cycle counts are bit-identical across all three engines by
//! the translation engines' contract (asserted at startup below, and
//! gated by `perfcheck --blocks` / `perfcheck --traces`).

use camo_bench::{blocks, traces};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const ITERS: u64 = 5_000;

fn bench(c: &mut Criterion) {
    let off = blocks::hot_loop(ITERS, false);
    let on = blocks::hot_loop(ITERS, true);
    let traced = traces::hot_loop(ITERS, true);
    assert_eq!(
        (on.sample.cycles, on.sample.instructions),
        (off.sample.cycles, off.sample.instructions),
        "block engine must not change simulated counts"
    );
    assert_eq!(
        (traced.sample.cycles, traced.sample.instructions),
        (off.sample.cycles, off.sample.instructions),
        "trace tier must not change simulated counts"
    );
    println!(
        "fig2 hot loop: {} simulated insns; block cache {} hits / {} misses",
        on.sample.instructions, on.block_hits, on.block_misses
    );
    println!(
        "trace tier: {} hits / {} misses",
        traced.trace_hits, traced.trace_misses
    );

    let mut group = c.benchmark_group("block_engine");
    group.bench_function("step_loop", |b| {
        b.iter(|| black_box(blocks::hot_loop(ITERS, false)))
    });
    group.bench_function("block_loop", |b| {
        b.iter(|| black_box(blocks::hot_loop(ITERS, true)))
    });
    group.bench_function("trace_loop", |b| {
        b.iter(|| black_box(traces::hot_loop(ITERS, true)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
