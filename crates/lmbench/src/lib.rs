//! lmbench-style workloads for Figures 3 and 4.
//!
//! The paper evaluates syscall-level overhead with lmbench micro-benchmarks
//! (Figure 3) and end-to-end overhead with three user-space workloads
//! (Figure 4): a JPEG resize (predominantly user computation), a Debian
//! package build (balanced) and a network download (mostly kernel).
//!
//! This crate reproduces both: [`figure3`] measures per-syscall latencies
//! under the three protection levels; [`figure4`] runs instruction-mix
//! workloads whose user/kernel balance matches the three scenarios. All
//! measurements are simulated cycles from full syscall round trips.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use camo_core::{Machine, ProtectionLevel};
use camo_kernel::{KernelConfig, KernelError, SYSCALLS};

/// Iterations per micro-benchmark measurement (beyond warm-up).
pub const MICRO_ITERS: u64 = 20;

/// One Figure 3 row: cycles per operation under each protection level.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Benchmark (syscall) name.
    pub name: &'static str,
    /// Baseline cycles/op.
    pub none: f64,
    /// Backward-edge-only cycles/op.
    pub backward: f64,
    /// Full protection cycles/op.
    pub full: f64,
}

impl Fig3Row {
    /// Relative latency of the backward-edge kernel.
    pub fn rel_backward(&self) -> f64 {
        self.backward / self.none
    }

    /// Relative latency of the fully protected kernel.
    pub fn rel_full(&self) -> f64 {
        self.full / self.none
    }
}

/// The `KernelConfig` used by the workload benchmarks at `level`
/// (registers the user computation blocks).
pub fn workload_config(level: ProtectionLevel) -> KernelConfig {
    let mut cfg = KernelConfig::with_protection(level);
    cfg.user_blocks = vec![
        ("stub".to_string(), 2, 1),
        // JPEG resize: large user compute block per syscall.
        ("jpeg".to_string(), 8000, 500),
        // Package build: medium blocks between varied syscalls.
        ("build".to_string(), 3000, 350),
        // Download: small user block, copy-heavy recv syscalls.
        ("net".to_string(), 700, 60),
    ];
    cfg
}

/// Measures one syscall's cycles/op on `machine` (one warm-up call, then
/// [`MICRO_ITERS`] measured iterations).
///
/// # Errors
///
/// Propagates kernel errors (none expected on benign runs).
pub fn measure_syscall(machine: &mut Machine, nr: u64, iters: u64) -> Result<f64, KernelError> {
    let kernel = machine.kernel_mut();
    let tid = kernel.current_task().tid;
    // Warm-up (file allocation in open paths, etc.).
    let _ = kernel.run_user(tid, "stub", 1, nr, 3)?;
    let out = kernel.run_user(tid, "stub", iters, nr, 3)?;
    debug_assert_eq!(out.syscalls, iters);
    Ok(out.cycles as f64 / iters as f64)
}

/// Runs the full lmbench suite at one protection level.
///
/// # Errors
///
/// Propagates boot or run errors.
pub fn lmbench_suite(
    level: ProtectionLevel,
    iters: u64,
) -> Result<Vec<(&'static str, f64)>, KernelError> {
    let mut machine = Machine::with_config(workload_config(level))?;
    let mut rows = Vec::new();
    for spec in SYSCALLS {
        rows.push((spec.name, measure_syscall(&mut machine, spec.nr, iters)?));
    }
    Ok(rows)
}

/// Reproduces Figure 3: per-syscall latencies under all three levels.
///
/// # Errors
///
/// Propagates boot or run errors.
pub fn figure3(iters: u64) -> Result<Vec<Fig3Row>, KernelError> {
    let none = lmbench_suite(ProtectionLevel::None, iters)?;
    let backward = lmbench_suite(ProtectionLevel::BackwardEdge, iters)?;
    let full = lmbench_suite(ProtectionLevel::Full, iters)?;
    Ok(none
        .into_iter()
        .zip(backward)
        .zip(full)
        .map(|(((name, n), (_, b)), (_, f))| Fig3Row {
            name,
            none: n,
            backward: b,
            full: f,
        })
        .collect())
}

/// One phase of a macro workload: `iterations` × (user block + syscall).
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// User computation block name (must be in [`workload_config`]).
    pub block: &'static str,
    /// Iterations.
    pub iterations: u64,
    /// Syscall number issued after each block.
    pub nr: u64,
    /// First syscall argument.
    pub arg0: u64,
}

/// A Figure 4 macro workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (the Figure 4 x-axis).
    pub name: &'static str,
    /// Phases run back to back.
    pub phases: Vec<Phase>,
}

/// The three Figure 4 workloads.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            // "JPEG picture resize (predominantly user computation)"
            name: "jpeg-resize",
            phases: vec![Phase {
                block: "jpeg",
                iterations: 30,
                nr: 63, // read
                arg0: 3,
            }],
        },
        Workload {
            // "Debian package build (balanced)"
            name: "deb-build",
            phases: vec![
                Phase {
                    block: "build",
                    iterations: 12,
                    nr: 56, // open+close
                    arg0: 3,
                },
                Phase {
                    block: "build",
                    iterations: 30,
                    nr: 63, // read
                    arg0: 3,
                },
                Phase {
                    block: "build",
                    iterations: 18,
                    nr: 64, // write
                    arg0: 3,
                },
                Phase {
                    block: "build",
                    iterations: 12,
                    nr: 79, // stat
                    arg0: 3,
                },
            ],
        },
        Workload {
            // "Network download (mostly kernel)"
            name: "net-download",
            phases: vec![Phase {
                block: "net",
                iterations: 120,
                nr: 207, // recv
                arg0: 3,
            }],
        },
    ]
}

/// Runs a workload to completion, returning total cycles.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run_workload(machine: &mut Machine, workload: &Workload) -> Result<u64, KernelError> {
    let mut total = 0;
    for phase in &workload.phases {
        let kernel = machine.kernel_mut();
        let tid = kernel.current_task().tid;
        let out = kernel.run_user(tid, phase.block, phase.iterations, phase.nr, phase.arg0)?;
        total += out.cycles;
    }
    Ok(total)
}

/// One Figure 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Workload name.
    pub name: &'static str,
    /// Baseline cycles.
    pub none: u64,
    /// Backward-edge cycles.
    pub backward: u64,
    /// Full-protection cycles.
    pub full: u64,
}

impl Fig4Row {
    /// Relative time of the backward-edge kernel.
    pub fn rel_backward(&self) -> f64 {
        self.backward as f64 / self.none as f64
    }

    /// Relative time of the fully protected kernel.
    pub fn rel_full(&self) -> f64 {
        self.full as f64 / self.none as f64
    }
}

/// Reproduces Figure 4: the three workloads under all three levels.
///
/// # Errors
///
/// Propagates boot or run errors.
pub fn figure4() -> Result<Vec<Fig4Row>, KernelError> {
    let mut rows = Vec::new();
    let defs = workloads();
    let mut machines = [
        Machine::with_config(workload_config(ProtectionLevel::None))?,
        Machine::with_config(workload_config(ProtectionLevel::BackwardEdge))?,
        Machine::with_config(workload_config(ProtectionLevel::Full))?,
    ];
    for w in &defs {
        let none = run_workload(&mut machines[0], w)?;
        let backward = run_workload(&mut machines[1], w)?;
        let full = run_workload(&mut machines[2], w)?;
        rows.push(Fig4Row {
            name: w.name,
            none,
            backward,
            full,
        });
    }
    Ok(rows)
}

/// Geometric mean of the full-protection relative times (the paper's
/// headline "< 4%" number).
pub fn geomean_full_overhead(rows: &[Fig4Row]) -> f64 {
    let product: f64 = rows.iter().map(Fig4Row::rel_full).product();
    product.powf(1.0 / rows.len() as f64)
}

/// Converts simulator cycles to nanoseconds at the paper's evaluation
/// clock (Raspberry Pi 3, 1.2 GHz).
pub fn cycles_to_ns(cycles: f64) -> f64 {
    cycles / 1.2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn getpid_latency_shows_double_digit_overhead() {
        let mut base = Machine::with_protection(ProtectionLevel::None).unwrap();
        let mut full = Machine::with_protection(ProtectionLevel::Full).unwrap();
        let b = measure_syscall(&mut base, 172, 10).unwrap();
        let f = measure_syscall(&mut full, 172, 10).unwrap();
        let rel = f / b;
        assert!(
            rel > 1.10,
            "null-call overhead should be double-digit percent, got {rel:.3}"
        );
        assert!(rel < 3.0, "but not absurd: {rel:.3}");
    }

    #[test]
    fn backward_only_costs_less_than_full() {
        let mut none = Machine::with_protection(ProtectionLevel::None).unwrap();
        let mut backward = Machine::with_protection(ProtectionLevel::BackwardEdge).unwrap();
        let mut full = Machine::with_protection(ProtectionLevel::Full).unwrap();
        // `select` has ten ops dispatches: DFI cost shows up clearly.
        let n = measure_syscall(&mut none, 72, 10).unwrap();
        let b = measure_syscall(&mut backward, 72, 10).unwrap();
        let f = measure_syscall(&mut full, 72, 10).unwrap();
        assert!(n < b, "backward adds cost: {n:.0} vs {b:.0}");
        assert!(b < f, "DFI adds more: {b:.0} vs {f:.0}");
    }

    #[test]
    fn jpeg_workload_is_user_dominated() {
        let mut m = Machine::with_config(workload_config(ProtectionLevel::None)).unwrap();
        let w = &workloads()[0];
        let kernel = m.kernel_mut();
        let tid = kernel.current_task().tid;
        let out = kernel
            .run_user(tid, w.phases[0].block, 4, w.phases[0].nr, 3)
            .unwrap();
        // Each iteration burns thousands of user cycles against a few
        // hundred kernel cycles.
        assert!(out.cycles / out.syscalls > 5_000);
    }

    #[test]
    fn figure4_workload_ordering_matches_paper() {
        let rows = figure4().expect("figure 4 runs");
        let by_name: std::collections::HashMap<_, _> =
            rows.iter().map(|r| (r.name, r.rel_full())).collect();
        let jpeg = by_name["jpeg-resize"];
        let build = by_name["deb-build"];
        let net = by_name["net-download"];
        assert!(jpeg < build, "jpeg {jpeg:.3} < build {build:.3}");
        assert!(build < net, "build {build:.3} < net {net:.3}");
        let geo = geomean_full_overhead(&rows);
        assert!(geo < 1.04, "geomean under 4% (paper headline): {geo:.4}");
        assert!(geo > 1.0, "but measurably nonzero: {geo:.4}");
    }

    #[test]
    fn cycles_to_ns_uses_rpi3_clock() {
        assert!((cycles_to_ns(1200.0) - 1000.0).abs() < 1e-9);
    }
}
