//! The hypervisor's boot-time duties (§5.1, threat model §3.1).
//!
//! The paper relies on a proprietary EL2 hypervisor for two properties:
//! execute-only memory for the key setter (stage-2 read permission
//! removal), and MMU lockdown so a compromised kernel cannot remap its way
//! around either XOM or read-only data. This model exposes exactly those
//! two capabilities over the `camo-mem` stage-2 table; after
//! [`Hypervisor::lockdown`] every further permission change is refused.

use camo_mem::{Frame, Memory, S2Attr};

/// Errors from hypervisor configuration calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HypervisorError {
    /// Configuration attempted after lockdown.
    Locked,
}

impl core::fmt::Display for HypervisorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HypervisorError::Locked => write!(f, "hypervisor is locked down"),
        }
    }
}

impl std::error::Error for HypervisorError {}

/// Handle to the EL2 permission authority.
#[derive(Debug, Default, Clone, Copy)]
pub struct Hypervisor;

impl Hypervisor {
    /// Creates the hypervisor authority.
    pub fn new() -> Self {
        Hypervisor
    }

    /// Maps `frame` execute-only: readable by nobody, executable at EL1.
    ///
    /// # Errors
    ///
    /// Fails after [`Hypervisor::lockdown`].
    pub fn protect_xom(&self, mem: &mut Memory, frame: Frame) -> Result<(), HypervisorError> {
        mem.protect_stage2(frame, S2Attr::execute_only())
            .map_err(|_| HypervisorError::Locked)
    }

    /// Seals `frame` read+execute (kernel text / rodata: no writes even if
    /// the kernel remaps it writable at stage 1).
    ///
    /// # Errors
    ///
    /// Fails after [`Hypervisor::lockdown`].
    pub fn seal_read_exec(&self, mem: &mut Memory, frame: Frame) -> Result<(), HypervisorError> {
        mem.protect_stage2(frame, S2Attr::read_exec())
            .map_err(|_| HypervisorError::Locked)
    }

    /// Seals `frame` read-only (no writes, no execution): `.rodata`
    /// including the operations structures of §4.4.
    ///
    /// # Errors
    ///
    /// Fails after [`Hypervisor::lockdown`].
    pub fn seal_read_only(&self, mem: &mut Memory, frame: Frame) -> Result<(), HypervisorError> {
        mem.protect_stage2(
            frame,
            S2Attr {
                read: true,
                write: false,
                exec: false,
            },
        )
        .map_err(|_| HypervisorError::Locked)
    }

    /// Locks stage-2 translation control: the threat-model assumption that
    /// the adversary "cannot modify write-protected memory (including
    /// XOM)".
    pub fn lockdown(&self, mem: &mut Memory) {
        mem.lock_stage2();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xom_then_lockdown_is_irreversible() {
        let mut mem = Memory::new();
        let frame = mem.alloc_frame();
        let hv = Hypervisor::new();
        hv.protect_xom(&mut mem, frame).unwrap();
        hv.lockdown(&mut mem);
        assert_eq!(
            hv.protect_xom(&mut mem, frame),
            Err(HypervisorError::Locked)
        );
        assert_eq!(
            hv.seal_read_exec(&mut mem, frame),
            Err(HypervisorError::Locked)
        );
        assert_eq!(mem.stage2().attr(frame), S2Attr::execute_only());
    }

    #[test]
    fn rodata_seal_denies_write_and_exec() {
        let mut mem = Memory::new();
        let frame = mem.alloc_frame();
        Hypervisor::new().seal_read_only(&mut mem, frame).unwrap();
        let attr = mem.stage2().attr(frame);
        assert!(attr.read && !attr.write && !attr.exec);
    }
}
