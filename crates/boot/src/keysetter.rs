//! Key-setter function generation (§5.1).
//!
//! The setter loads each 128-bit key into general-purpose registers with
//! `MOVZ`/`MOVK` move-immediates — the key bytes live *inside the
//! instructions* — writes them to the key system registers with `MSR`, and
//! zeroes every clobbered GPR before returning so no key material survives
//! in registers. The page it lives on is mapped execute-only by the
//! hypervisor: it cannot be disassembled from the guest.

use crate::keygen::KernelKeys;
use camo_isa::{Insn, PauthKey, Reg};

/// Scratch register the setter stages immediates through.
const SCRATCH: Reg = Reg::X(0);

/// Generator for the XOM key-setter function.
#[derive(Debug, Clone, Copy)]
pub struct KeySetter<'a> {
    keys: &'a KernelKeys,
}

/// Where an installed key setter lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySetterHandle {
    /// Entry point virtual address.
    pub va: u64,
    /// Generated code size in bytes.
    pub size: u64,
}

impl<'a> KeySetter<'a> {
    /// Creates a generator for `keys`.
    pub fn new(keys: &'a KernelKeys) -> Self {
        KeySetter { keys }
    }

    fn emit_load_imm64(insns: &mut Vec<Insn>, rd: Reg, value: u64) {
        insns.push(Insn::Movz {
            rd,
            imm16: (value & 0xFFFF) as u16,
            shift: 0,
        });
        for shift in 1u8..4 {
            let part = ((value >> (16 * shift)) & 0xFFFF) as u16;
            insns.push(Insn::Movk {
                rd,
                imm16: part,
                shift,
            });
        }
    }

    /// Generates the setter body: immediates → `MSR` per key half, then
    /// GPR scrubbing and `RET`.
    ///
    /// Only the three §4.5 active keys are installed; this is what runs on
    /// every kernel entry, so the instruction count is the paper's
    /// key-switch cost.
    pub fn generate(&self) -> Vec<Insn> {
        let mut insns = Vec::new();
        for (key, value) in self.keys.active() {
            let (lo, hi) = key.sysregs();
            Self::emit_load_imm64(&mut insns, SCRATCH, value.w0);
            insns.push(Insn::Msr {
                sr: lo,
                rt: SCRATCH,
            });
            Self::emit_load_imm64(&mut insns, SCRATCH, value.k0);
            insns.push(Insn::Msr {
                sr: hi,
                rt: SCRATCH,
            });
        }
        // Scrub the staging register: no key bits may leave the function.
        insns.push(Insn::Movz {
            rd: SCRATCH,
            imm16: 0,
            shift: 0,
        });
        insns.push(Insn::ret());
        insns
    }

    /// Instruction count of the generated setter.
    pub fn instruction_count(&self) -> usize {
        self.generate().len()
    }
}

/// Which keys a setter body installs, recovered by decoding it — used by
/// tests and by the §4.1 static analysis (the setter is the only code
/// allowed to write key registers).
pub fn installed_keys(insns: &[Insn]) -> Vec<PauthKey> {
    let mut keys = Vec::new();
    for insn in insns {
        if let Insn::Msr { sr, .. } = insn {
            for key in PauthKey::ALL {
                if key.sysregs().0 == *sr && !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_isa::SysReg;

    fn setter_insns() -> Vec<Insn> {
        let keys = KernelKeys::generate(99);
        KeySetter::new(&keys).generate()
    }

    #[test]
    fn installs_the_three_active_keys() {
        let keys = installed_keys(&setter_insns());
        assert_eq!(keys.len(), 3);
        assert!(keys.contains(&PauthKey::IA));
        assert!(keys.contains(&PauthKey::IB));
        assert!(keys.contains(&PauthKey::DB));
    }

    #[test]
    fn key_bits_live_in_immediates() {
        let keys = KernelKeys::generate(99);
        let insns = KeySetter::new(&keys).generate();
        // Reconstruct the first installed value from the MOVZ/MOVK chain
        // and check it equals the IB low half (IB is installed first).
        let mut value = 0u64;
        for insn in &insns {
            match insn {
                Insn::Movz { imm16, shift, .. } => value = u64::from(*imm16) << (16 * shift),
                Insn::Movk { imm16, shift, .. } => {
                    let mask = 0xFFFFu64 << (16 * shift);
                    value = (value & !mask) | (u64::from(*imm16) << (16 * shift));
                }
                Insn::Msr { .. } => break,
                _ => {}
            }
        }
        assert_eq!(value, keys.ib.w0);
    }

    #[test]
    fn never_reads_keys_or_writes_sctlr() {
        // The setter itself must pass the kernel's own static verifier.
        for insn in setter_insns() {
            assert!(!insn.reads_pauth_key(), "{insn}");
            assert!(!insn.writes_sctlr(), "{insn}");
        }
    }

    #[test]
    fn scrubs_scratch_register_before_returning() {
        let insns = setter_insns();
        let n = insns.len();
        assert_eq!(insns[n - 1], Insn::ret());
        assert_eq!(
            insns[n - 2],
            Insn::Movz {
                rd: Reg::X(0),
                imm16: 0,
                shift: 0
            }
        );
    }

    #[test]
    fn msr_count_is_two_per_key() {
        let msr_count = setter_insns()
            .iter()
            .filter(|i| matches!(i, Insn::Msr { .. }))
            .count();
        assert_eq!(msr_count, 6, "three 128-bit keys, two registers each");
    }

    #[test]
    fn writes_only_key_registers() {
        for insn in setter_insns() {
            if let Insn::Msr { sr, .. } = insn {
                assert!(sr.is_pauth_key(), "setter writes non-key register {sr}");
                assert_ne!(sr, SysReg::SctlrEl1);
            }
        }
    }
}
