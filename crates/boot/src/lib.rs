//! Bootloader and hypervisor model: key generation, the XOM key setter,
//! and stage-2 lockdown.
//!
//! The paper's trust chain (§4.1, §5.1, Figure 1):
//!
//! 1. the **bootloader** draws pseudo-random kernel PAuth keys (like the
//!    KASLR seed, from firmware entropy);
//! 2. it bakes the key values into the immediate operands of a generated
//!    *key-setter* function (`MOVZ`/`MOVK` + `MSR`), so the keys exist only
//!    as instruction bytes;
//! 3. the **hypervisor** maps the page holding that function execute-only
//!    (stage-2 read/write stripped) and locks translation control, so the
//!    keys can be *installed* by calling the function but never *read*;
//! 4. at early boot, the §4.6 static-pointer table is walked and every
//!    statically-initialised protected pointer is signed in place.
//!
//! # Example
//!
//! ```
//! use camo_boot::{Bootloader, KERNEL_TEXT_BASE};
//! use camo_mem::Memory;
//!
//! let mut mem = Memory::new();
//! let table = mem.new_table();
//! let boot = Bootloader::new(0xC0FFEE);
//! let setter = boot.install_keysetter(&mut mem, table, 0xffff_0000_00f0_0000);
//! // The page is execute-only: the kernel can call it but not read it.
//! let ctx = mem.kernel_ctx(table);
//! assert!(mem.read_u64(&ctx, setter.va).is_err());
//! assert!(mem.fetch(&ctx, setter.va).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hypervisor;
mod keygen;
mod keysetter;
mod loader;

pub use hypervisor::Hypervisor;
pub use keygen::KernelKeys;
pub use keysetter::{installed_keys, KeySetter, KeySetterHandle};
pub use loader::{BootInfo, Bootloader, KERNEL_TEXT_BASE};
