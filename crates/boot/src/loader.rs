//! Boot orchestration: address space, image loading, XOM installation,
//! early-boot pointer signing.

use crate::hypervisor::Hypervisor;
use crate::keygen::KernelKeys;
use crate::keysetter::{KeySetter, KeySetterHandle};
use camo_codegen::{object_modifier, Image, StaticPointerTable};
use camo_cpu::pac::add_pac;
use camo_isa::encode;
use camo_mem::{Memory, S1Attr, TableId, PAGE_SIZE};

/// Base virtual address of kernel text (start of the TTBR1 half).
pub const KERNEL_TEXT_BASE: u64 = camo_mem::KERNEL_BASE;

/// The boot-information block handed to the kernel (the FDT analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootInfo {
    /// Entropy seed that keyed the boot (KASLR-seed analogue, §5.1).
    pub seed: u64,
    /// Where the XOM key setter was installed.
    pub keysetter: KeySetterHandle,
    /// The kernel's stage-1 table.
    pub kernel_table: TableId,
}

/// The firmware bootloader.
///
/// Owns the generated kernel keys for the duration of boot; after boot the
/// only remaining copy of the key bits is inside the XOM key-setter
/// instructions.
#[derive(Debug)]
pub struct Bootloader {
    seed: u64,
    keys: KernelKeys,
    hypervisor: Hypervisor,
}

impl Bootloader {
    /// Boots with entropy `seed`.
    pub fn new(seed: u64) -> Self {
        Bootloader {
            seed,
            keys: KernelKeys::generate(seed),
            hypervisor: Hypervisor::new(),
        }
    }

    /// The generated kernel keys.
    ///
    /// Only boot-time code may see these: the kernel proper receives key
    /// *installation* capability (the XOM setter), never the values.
    pub fn keys(&self) -> &KernelKeys {
        &self.keys
    }

    /// The boot seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The EL2 authority.
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hypervisor
    }

    /// Generates the key setter, writes it at `va`, and asks the hypervisor
    /// to make the page execute-only.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not page-aligned, the setter spills past one page,
    /// or the hypervisor is already locked (boot-order bug).
    pub fn install_keysetter(&self, mem: &mut Memory, table: TableId, va: u64) -> KeySetterHandle {
        assert!(va % PAGE_SIZE == 0, "key setter page must be aligned");
        let insns = KeySetter::new(&self.keys).generate();
        let size = insns.len() as u64 * 4;
        assert!(size <= PAGE_SIZE, "key setter exceeds one page");
        let frame = mem.map_new(table, va, S1Attr::kernel_text());
        for (i, insn) in insns.iter().enumerate() {
            mem.phys_mut()
                .write_u32(frame.base() + 4 * i as u64, encode(insn))
                .expect("fresh frame is backed");
        }
        self.hypervisor
            .protect_xom(mem, frame)
            .expect("hypervisor must not be locked during boot");
        KeySetterHandle { va, size }
    }

    /// Loads a linked text image at its base VA and seals it read+execute
    /// through the hypervisor (kernel text can never be rewritten, even by
    /// a kernel that remaps it).
    ///
    /// # Panics
    ///
    /// Panics if the image base is not page-aligned or the hypervisor is
    /// locked.
    pub fn load_image(&self, mem: &mut Memory, table: TableId, image: &Image) {
        let base = image.base_va();
        assert!(base % PAGE_SIZE == 0, "image base must be page aligned");
        let bytes = image.to_bytes();
        let pages = bytes.len().div_ceil(PAGE_SIZE as usize);
        for page in 0..pages {
            let va = base + page as u64 * PAGE_SIZE;
            let frame = mem.map_new(table, va, S1Attr::kernel_text());
            let lo = page * PAGE_SIZE as usize;
            let hi = (lo + PAGE_SIZE as usize).min(bytes.len());
            mem.phys_mut()
                .write_bytes(frame.base(), &bytes[lo..hi])
                .expect("fresh frame is backed");
            self.hypervisor
                .seal_read_exec(mem, frame)
                .expect("hypervisor must not be locked during boot");
        }
    }

    /// Walks the §4.6 static-pointer table and signs every entry in place.
    ///
    /// Runs after kernel self-relocation, before any kernel code can
    /// authenticate the pointers. The same routine serves the module loader
    /// at run time.
    ///
    /// # Panics
    ///
    /// Panics if an entry's location is unmapped (a corrupt table is a
    /// build-system bug, not a run-time condition).
    pub fn sign_static_pointers(
        &self,
        mem: &mut Memory,
        table: TableId,
        statics: &StaticPointerTable,
    ) {
        let ctx = mem.kernel_ctx(table);
        for entry in statics.entries() {
            let raw = mem
                .read_u64(&ctx, entry.location)
                .expect("static pointer slot must be mapped");
            let modifier = object_modifier(entry.type_const, entry.object_base());
            let key = self.keys.key(entry.key.to_pauth_key());
            let signed = add_pac(raw, modifier, key, true);
            mem.write_u64(&ctx, entry.location, signed)
                .expect("static pointer slot must be writable");
        }
    }

    /// Ends boot: locks the hypervisor stage-2 table.
    pub fn finalize(&self, mem: &mut Memory) {
        self.hypervisor.lockdown(mem);
    }

    /// The boot-information block for `table` after installing the setter.
    pub fn boot_info(&self, keysetter: KeySetterHandle, kernel_table: TableId) -> BootInfo {
        BootInfo {
            seed: self.seed,
            keysetter,
            kernel_table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_codegen::{CodegenConfig, FunctionBuilder, Program, StaticPointerEntry};
    use camo_cpu::pac::auth_pac;
    use camo_isa::PacKey;
    use camo_mem::AccessType;

    const SETTER_VA: u64 = KERNEL_TEXT_BASE + 0xF0_0000;

    #[test]
    fn keysetter_page_is_execute_only() {
        let mut mem = Memory::new();
        let table = mem.new_table();
        let boot = Bootloader::new(1);
        let handle = boot.install_keysetter(&mut mem, table, SETTER_VA);
        let ctx = mem.kernel_ctx(table);
        assert!(mem.fetch(&ctx, handle.va).is_ok(), "EL1 can execute");
        assert!(mem.read_u64(&ctx, handle.va).is_err(), "nobody can read");
        assert!(
            mem.translate(&ctx, handle.va, AccessType::Write).is_err(),
            "nobody can write"
        );
    }

    #[test]
    fn keysetter_survives_lockdown_attack() {
        let mut mem = Memory::new();
        let table = mem.new_table();
        let boot = Bootloader::new(1);
        let handle = boot.install_keysetter(&mut mem, table, SETTER_VA);
        boot.finalize(&mut mem);
        // Post-boot, even the hypervisor API refuses to lift XOM.
        let ctx = mem.kernel_ctx(table);
        let pa = mem.translate(&ctx, handle.va, AccessType::Execute).unwrap();
        let frame = camo_mem::Frame::containing(pa);
        assert!(boot.hypervisor().seal_read_exec(&mut mem, frame).is_err());
    }

    #[test]
    fn image_text_is_sealed_read_exec() {
        let mut mem = Memory::new();
        let table = mem.new_table();
        let boot = Bootloader::new(2);
        let cfg = CodegenConfig::baseline();
        let mut p = Program::new(cfg);
        p.push(FunctionBuilder::new("f", cfg).build());
        let image = p.link(KERNEL_TEXT_BASE);
        boot.load_image(&mut mem, table, &image);
        let ctx = mem.kernel_ctx(table);
        // Readable (it is ordinary text), executable, but never writable.
        assert!(mem.read_u64(&ctx, KERNEL_TEXT_BASE).is_ok());
        assert!(mem.fetch(&ctx, KERNEL_TEXT_BASE).is_ok());
        assert!(mem
            .translate(&ctx, KERNEL_TEXT_BASE, AccessType::Write)
            .is_err());
        // And the loaded bytes round-trip.
        assert_eq!(
            mem.read_u64(&ctx, KERNEL_TEXT_BASE).unwrap() as u32,
            image.to_words()[0]
        );
    }

    #[test]
    fn static_pointers_get_signed_at_boot() {
        let mut mem = Memory::new();
        let table = mem.new_table();
        let boot = Bootloader::new(3);
        // A "work_struct" at a data page with its func pointer at +0x18.
        let obj = KERNEL_TEXT_BASE + 0x10_0000;
        mem.map_new(table, obj, S1Attr::kernel_data());
        let slot = obj + 0x18;
        let target = KERNEL_TEXT_BASE + 0x4440; // the callback address
        let ctx = mem.kernel_ctx(table);
        mem.write_u64(&ctx, slot, target).unwrap();

        let mut statics = StaticPointerTable::new();
        statics.push(StaticPointerEntry {
            location: slot,
            key: PacKey::IA,
            type_const: 0x77aa,
            field_offset: 0x18,
        });
        boot.sign_static_pointers(&mut mem, table, &statics);

        let signed = mem.read_u64(&ctx, slot).unwrap();
        assert_ne!(signed, target, "slot now holds a signed pointer");
        let modifier = object_modifier(0x77aa, obj);
        let auth = auth_pac(
            signed,
            modifier,
            boot.keys().ia,
            camo_cpu::pac::KeyClass::Instruction,
            true,
        );
        assert_eq!(auth, Ok(target));
    }

    #[test]
    fn boot_info_carries_seed_and_handle() {
        let mut mem = Memory::new();
        let table = mem.new_table();
        let boot = Bootloader::new(0xAB);
        let handle = boot.install_keysetter(&mut mem, table, SETTER_VA);
        let info = boot.boot_info(handle, table);
        assert_eq!(info.seed, 0xAB);
        assert_eq!(info.keysetter, handle);
        assert_eq!(info.kernel_table, table);
    }

    #[test]
    #[should_panic(expected = "page must be aligned")]
    fn misaligned_setter_va_panics() {
        let mut mem = Memory::new();
        let table = mem.new_table();
        let boot = Bootloader::new(1);
        let _ = boot.install_keysetter(&mut mem, table, SETTER_VA + 8);
    }
}
