//! Boot-time pseudo-random key generation.

use camo_isa::PauthKey;
use camo_qarma::QarmaKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The five kernel PAuth keys generated at boot.
///
/// Key assignment follows §4.5: IB backs backward-edge CFI (our compiler
/// signs return addresses with the B instruction key), IA backs
/// forward-edge CFI for lone function pointers, DB backs DFI for data
/// pointers to operations tables. DA and GA are generated for completeness
/// — a real deployment provisions all registers so the remaining keys stay
/// usable for other purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelKeys {
    /// Instruction key A (forward-edge CFI).
    pub ia: QarmaKey,
    /// Instruction key B (backward-edge CFI).
    pub ib: QarmaKey,
    /// Data key A (unused by the paper's scheme, still provisioned).
    pub da: QarmaKey,
    /// Data key B (DFI).
    pub db: QarmaKey,
    /// Generic key.
    pub ga: QarmaKey,
}

impl KernelKeys {
    /// Derives the key set from a boot seed.
    ///
    /// The seed plays the role of the firmware entropy passed via the FDT
    /// (like the KASLR seed, §5.1); the same seed reproduces the same keys,
    /// which the deterministic tests and benchmarks rely on.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut draw = || QarmaKey::new(rng.gen(), rng.gen());
        KernelKeys {
            ia: draw(),
            ib: draw(),
            da: draw(),
            db: draw(),
            ga: draw(),
        }
    }

    /// The key value for an architectural key name.
    pub fn key(&self, key: PauthKey) -> QarmaKey {
        match key {
            PauthKey::IA => self.ia,
            PauthKey::IB => self.ib,
            PauthKey::DA => self.da,
            PauthKey::DB => self.db,
            PauthKey::GA => self.ga,
        }
    }

    /// The three keys the Camouflage design actively uses (§4.5).
    pub fn active(&self) -> [(PauthKey, QarmaKey); 3] {
        [
            (PauthKey::IB, self.ib),
            (PauthKey::IA, self.ia),
            (PauthKey::DB, self.db),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(KernelKeys::generate(7), KernelKeys::generate(7));
        assert_ne!(KernelKeys::generate(7), KernelKeys::generate(8));
    }

    #[test]
    fn keys_are_pairwise_distinct() {
        let keys = KernelKeys::generate(42);
        let all = [keys.ia, keys.ib, keys.da, keys.db, keys.ga];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn active_set_is_three_keys() {
        let keys = KernelKeys::generate(1);
        let active = keys.active();
        assert_eq!(active.len(), 3);
        assert_eq!(active[0].0, PauthKey::IB);
        assert!(active.iter().any(|(k, _)| *k == PauthKey::DB));
    }

    #[test]
    fn lookup_matches_fields() {
        let keys = KernelKeys::generate(3);
        assert_eq!(keys.key(PauthKey::IB), keys.ib);
        assert_eq!(keys.key(PauthKey::GA), keys.ga);
    }
}
