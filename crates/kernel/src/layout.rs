//! Kernel virtual-address-space layout and in-memory structure offsets.
//!
//! Mirrors the aspects of the Linux/AArch64 layout the paper's arguments
//! depend on: 16 KiB kernel task stacks whose bases repeat modulo the
//! 4 KiB page size (§4.2) — ours are placed 64 KiB apart, which is also
//! the exact stride that defeats PARTS' 16-bit SP modifier (§7) — and
//! operations tables living in `.rodata` (§4.4).

use camo_mem::{KERNEL_BASE, PAGE_SIZE};

/// Kernel text base (the linked kernel image).
pub const KERNEL_TEXT_BASE: u64 = KERNEL_BASE;
/// Reserved size for kernel text.
pub const KERNEL_TEXT_SIZE: u64 = 0x10_0000;
/// Exception vector page (`VBAR_EL1`).
pub const VECTORS_VA: u64 = KERNEL_BASE + 0x20_0000;
/// The XOM key-setter page (§5.1).
pub const KEYSETTER_VA: u64 = KERNEL_BASE + 0x21_0000;
/// `.rodata`: operations structures (§4.4).
pub const RODATA_BASE: u64 = KERNEL_BASE + 0x30_0000;
/// Kernel heap: `struct file`, `task_struct`, `work_struct` objects.
pub const KDATA_BASE: u64 = KERNEL_BASE + 0x40_0000;
/// Kernel task stacks: 16 KiB each, 64 KiB stride.
pub const STACKS_BASE: u64 = KERNEL_BASE + 0x80_0000;
/// Loadable module text area.
pub const MODULES_BASE: u64 = KERNEL_BASE + 0x100_0000;
/// Stride between module load slots (128 KiB — also the maximum module
/// image size). `load_module` allocates slots at
/// `MODULES_BASE + slot * MODULE_STRIDE`; `unload_module` inverts it.
pub const MODULE_STRIDE: u64 = 0x2_0000;

/// Task stack size (16 KiB, §4.2).
pub const STACK_SIZE: u64 = 4 * PAGE_SIZE;
/// Stride between consecutive task stacks (64 KiB = 2¹⁶ — the PARTS
/// replay stride from §7).
pub const STACK_STRIDE: u64 = 0x1_0000;

/// User text base.
pub const USER_TEXT_BASE: u64 = 0x0000_0000_0040_0000;
/// User stack top.
pub const USER_STACK_TOP: u64 = 0x0000_7fff_ff00_0000;
/// User scratch/data page.
pub const USER_DATA_BASE: u64 = 0x0000_0000_0080_0000;

/// Size of the saved register area (reduced `pt_regs`): x0..x29 at 0..232,
/// x30 at 240, `sp_el0` at 248, `elr_el1` at 256, `spsr_el1` at 264.
pub const PT_REGS_SIZE: u16 = 272;
/// Offset of saved `x(n)` (n even, pairs) within `pt_regs`.
pub const PT_X0: u16 = 0;
/// Offset of saved x8 (the syscall number register).
pub const PT_X8: u16 = 64;
/// Offset of saved x30.
pub const PT_X30: u16 = 240;
/// Offset of saved `sp_el0`.
pub const PT_SP_EL0: u16 = 248;
/// Offset of saved `elr_el1`.
pub const PT_ELR: u16 = 256;
/// Offset of saved `spsr_el1`.
pub const PT_SPSR: u16 = 264;

/// `task_struct` analogue layout (one page per task at
/// `KDATA_BASE + tid * PAGE_SIZE`).
pub mod task_struct {
    /// Task id.
    pub const TID: u16 = 0x00;
    /// `thread_struct` user PAuth keys: IB, IA, DB — 16 bytes each
    /// (lo, hi), matching the per-thread keys Linux keeps (§2.2).
    pub const USER_KEYS: u16 = 0x10;
    /// Saved (signed) kernel SP of a scheduled-out task (§5.2).
    pub const SAVED_SP: u16 = 0x70;
    /// Callee-saved register area (`cpu_context`): x19..x28, fp, lr.
    pub const CPU_CONTEXT: u16 = 0x80;
}

/// `struct file` analogue layout.
pub mod file_struct {
    /// Flags / mode word.
    pub const FLAGS: u16 = 0x00;
    /// Position.
    pub const POS: u16 = 0x08;
    /// The protected `f_ops` pointer — offset 40 as in Listing 4.
    pub const F_OPS: u16 = 40;
    /// The `f_cred` pointer (§4.5 mentions it as equally protectable).
    pub const F_CRED: u16 = 48;
    /// Object size.
    pub const SIZE: u64 = 64;
}

/// `struct file_operations` analogue layout (member offsets inside the
/// read-only ops tables). `read` sits at offset 16 as in Listing 4.
pub mod file_operations {
    /// `llseek`.
    pub const LLSEEK: u16 = 0;
    /// Padding / owner.
    pub const OWNER: u16 = 8;
    /// `read`.
    pub const READ: u16 = 16;
    /// `write`.
    pub const WRITE: u16 = 24;
    /// `poll`.
    pub const POLL: u16 = 32;
    /// `open`.
    pub const OPEN: u16 = 40;
    /// `release`.
    pub const RELEASE: u16 = 48;
    /// Table size.
    pub const SIZE: u64 = 64;
}

/// `struct work_struct` analogue layout.
pub mod work_struct {
    /// Pending flag.
    pub const FLAGS: u16 = 0x00;
    /// The protected callback pointer (`func`).
    pub const FUNC: u16 = 0x18;
    /// Object size.
    pub const SIZE: u64 = 0x20;
}

/// The 16-bit type constants discriminating protected (type, member)
/// pairs (§4.3). `FILE_F_OPS` is 0xfb45, the value in Listing 4.
pub mod type_consts {
    /// `struct file::f_ops`.
    pub const FILE_F_OPS: u16 = 0xfb45;
    /// `struct file::f_cred`.
    pub const FILE_F_CRED: u16 = 0xfb46;
    /// `struct task_struct::saved_sp`.
    pub const TASK_SAVED_SP: u16 = 0x7a01;
    /// `struct work_struct::func`.
    pub const WORK_FUNC: u16 = 0x3c99;
}

/// `BRK` immediates used as kernel upcalls (simulation boundary to the
/// host-side "rest of the C kernel"; see `camo-cpu`'s `Step::BrkTrap`).
pub mod upcall {
    /// Syscall dispatch: pick the body for saved x8.
    pub const SYSCALL: u16 = 0x100;
    /// Synchronous fault taken at EL1 (possible PAC failure, §5.4).
    pub const EL1_FAULT: u16 = 0x101;
    /// Synchronous non-SVC exception from EL0.
    pub const EL0_FAULT: u16 = 0x102;
    /// IRQ (scheduler tick).
    pub const IRQ: u16 = 0x103;
    /// User program finished.
    pub const USER_DONE: u16 = 0x110;
}

/// The kernel stack top (initial SP) for a task id.
pub fn stack_top(tid: u32) -> u64 {
    STACKS_BASE + u64::from(tid) * STACK_STRIDE + STACK_SIZE
}

/// The `task_struct` VA for a task id.
pub fn task_struct_va(tid: u32) -> u64 {
    KDATA_BASE + u64::from(tid) * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_repeat_mod_4k_and_64k() {
        // §4.2: the low 12 bits of SP repeat across threads; our layout
        // also repeats the low 16 bits, the §7 PARTS-replay scenario.
        let a = stack_top(1);
        let b = stack_top(2);
        assert_eq!(a % 0x1000, b % 0x1000);
        assert_eq!(a % 0x10000, b % 0x10000);
        assert_eq!(b - a, STACK_STRIDE);
    }

    #[test]
    fn stack_size_is_16k() {
        assert_eq!(STACK_SIZE, 16 * 1024);
    }

    #[test]
    fn regions_do_not_overlap() {
        let regions = [
            (KERNEL_TEXT_BASE, KERNEL_TEXT_BASE + KERNEL_TEXT_SIZE),
            (VECTORS_VA, VECTORS_VA + PAGE_SIZE),
            (KEYSETTER_VA, KEYSETTER_VA + PAGE_SIZE),
            (RODATA_BASE, RODATA_BASE + PAGE_SIZE),
            (KDATA_BASE, KDATA_BASE + 0x40_0000),
            (STACKS_BASE, STACKS_BASE + 64 * STACK_STRIDE),
            (MODULES_BASE, MODULES_BASE + 0x10_0000),
        ];
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                assert!(a.1 <= b.0 || b.1 <= a.0, "{a:x?} overlaps {b:x?}");
            }
        }
    }

    #[test]
    fn listing4_constants() {
        // Listing 4 loads f_ops from offset 40 with constant 0xfb45 and
        // calls `read` at offset 16.
        assert_eq!(file_struct::F_OPS, 40);
        assert_eq!(type_consts::FILE_F_OPS, 0xfb45);
        assert_eq!(file_operations::READ, 16);
    }

    #[test]
    fn pt_regs_slots_are_within_size() {
        for off in [PT_X0, PT_X8, PT_X30, PT_SP_EL0, PT_ELR, PT_SPSR] {
            assert!(off < PT_REGS_SIZE);
        }
        assert_eq!(u64::from(PT_REGS_SIZE) % 16, 0, "SP stays 16-aligned");
    }
}
