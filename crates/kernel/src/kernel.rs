//! The kernel: boot, syscall machinery, scheduling, modules, workqueues.

use crate::image::{build_user_program, syscall_by_nr, KernelImage};
use crate::layout::{
    self, file_struct, task_struct, type_consts, upcall, KEYSETTER_VA, PT_X8, RODATA_BASE,
    USER_STACK_TOP, USER_TEXT_BASE, VECTORS_VA,
};
use crate::objects::{FileKind, FileTable, KernelEvent, PacPolicy, Task, Tid};
use crate::sched::Scheduler;
use camo_analysis::verify_image;
use camo_boot::Bootloader;
use camo_codegen::{CodegenConfig, Image, Program, ProtectionLevel, StaticPointerTable};
use camo_cpu::pac::{classify_pac_failure, looks_like_pac_failure};
use camo_cpu::telemetry::{TelemetryConfig, TelemetryRing};
use camo_cpu::{Cpu, CpuError, HwFeatures, IpiKind, Step, CALL_SENTINEL};
use camo_isa::{encode, Reg, SysReg};
use camo_mem::{El, Frame, Memory, S1Attr, TableId, PAGE_SIZE};
use camo_qarma::QarmaKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Kernel build & boot configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Instrumentation level (§6.1's none / backward-edge / full).
    pub protection: ProtectionLevel,
    /// Overrides the backward-edge scheme (default: Camouflage). Used to
    /// boot SP-only or PARTS kernels for the Figure 2 comparison and the
    /// replay-attack matrix.
    pub scheme_override: Option<camo_codegen::CfiScheme>,
    /// §5.5 backward-compatible build (hint-space PAuth forms only).
    pub compat_v80: bool,
    /// Boot entropy (keys, user-key generation).
    pub seed: u64,
    /// §5.4 PAC-failure panic threshold.
    pub pac_panic_threshold: u32,
    /// Whether the simulated core implements ARMv8.3-PAuth.
    pub pauth_hw: bool,
    /// User program blocks `(name, alu, mem)` available to every process.
    pub user_blocks: Vec<(String, usize, usize)>,
    /// Enables the simulator's fast-path caches: the software TLB in the
    /// memory system, the CPU's decoded-instruction cache, and the PAC
    /// unit's warm QARMA key schedules.
    ///
    /// Architecturally invisible — cycle counts, faults and attack
    /// outcomes are bit-identical on or off; only wall-clock simulation
    /// speed changes. Default on; turn off for cache A/B measurements
    /// (`perfcheck` does).
    pub fast_caches: bool,
    /// Enables the basic-block translation engine: the kernel's run loops
    /// drive every core through [`camo_cpu::Cpu::run_block`], executing
    /// cached straight-line blocks with the fetch permission walk hoisted
    /// to block entry and per-block stats batching.
    ///
    /// Architecturally invisible like [`KernelConfig::fast_caches`] —
    /// cycles, instructions, faults, attack verdicts and every
    /// [`camo_cpu::CpuStats::arch_eq`] counter are bit-identical on or
    /// off; only wall-clock speed and the cache-observability counters
    /// change. (The one boundary: the run loops' hang-detection budgets
    /// are checked between engine invocations, so a program within one
    /// block-call of the [`KernelError::Hung`] backstop may overshoot it
    /// slightly with the engine on — see `KCALL_BUDGET`.) Default on;
    /// `perfcheck --blocks` measures the A/B.
    pub block_engine: bool,
    /// Enables the trace tier of the translation engine: hot block chains
    /// are promoted into flattened, guard-checked traces with threaded
    /// (pre-resolved function-pointer) dispatch and per-site PAC memos —
    /// see [`camo_cpu::trace`]. Nested inside the block path, so it only
    /// runs while [`KernelConfig::block_engine`] is also on.
    ///
    /// Same contract as [`KernelConfig::block_engine`]: architecturally
    /// invisible, bit-identical cycles/instructions/faults/attack
    /// verdicts, same budget-overshoot boundary (a looping trace retires
    /// at most the per-call bound tier 1 already had). Default on;
    /// `perfcheck --traces` measures the A/B.
    pub trace_engine: bool,
    /// Number of simulated CPUs. The default (1) is the paper's
    /// uniprocessor evaluation machine and is bit-identical to the
    /// pre-SMP kernel; larger values boot a cluster: every core gets its
    /// own sysreg file and PAuth key registers, runs the XOM key setter
    /// at boot, and owns a runqueue. All cores share one physical memory,
    /// stage-1/stage-2 configuration, and the cluster-wide translation
    /// generation (the TLB-shootdown backbone).
    pub cpus: usize,
    /// Enables the streaming telemetry plane: boot allocates a
    /// [`TelemetryRing`] that executors driving this kernel (e.g.
    /// `TenantRun` in `camo_workloads`) publish periodic stat-delta
    /// windows into, for a consumer (the fleet driver, a dashboard) to
    /// drain into per-tenant time series.
    ///
    /// Architecturally invisible like [`KernelConfig::fast_caches`]: the
    /// plane only *reads* the per-op stat deltas executors already
    /// compute — it never touches simulated state or the boot RNG — so
    /// cycles, instructions, faults and every counter are bit-identical
    /// on or off. Default off; `perfcheck --telemetry` gates the A/B.
    pub telemetry: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            protection: ProtectionLevel::Full,
            scheme_override: None,
            compat_v80: false,
            seed: 0xCAF0_0D5E,
            pac_panic_threshold: 16,
            pauth_hw: true,
            user_blocks: vec![("stub".to_string(), 2, 1)],
            fast_caches: true,
            block_engine: true,
            trace_engine: true,
            cpus: 1,
            telemetry: false,
        }
    }
}

impl KernelConfig {
    /// A configuration at `level` with everything else default.
    pub fn with_protection(level: ProtectionLevel) -> Self {
        KernelConfig {
            protection: level,
            ..KernelConfig::default()
        }
    }

    /// The matching instrumentation configuration.
    pub fn codegen(&self) -> CodegenConfig {
        let mut cfg = CodegenConfig {
            compat_v80: self.compat_v80,
            ..CodegenConfig::for_level(self.protection)
        };
        if self.protection != ProtectionLevel::None {
            if let Some(scheme) = self.scheme_override {
                cfg.scheme = scheme;
            }
        }
        cfg
    }
}

/// Fatal kernel conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// §5.4: the PAC-failure threshold was reached; the system halts.
    PacPanic {
        /// Failures recorded when the panic tripped.
        failures: u32,
    },
    /// The simulated CPU hit an unrecoverable state.
    Cpu(CpuError),
    /// A module failed §4.1 verification.
    ModuleRejected {
        /// Human-readable violation descriptions.
        violations: Vec<String>,
    },
    /// Operation on a dead or unknown task.
    BadTask(Tid),
    /// A run exceeded its step budget.
    Hung,
}

impl core::fmt::Display for KernelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelError::PacPanic { failures } => {
                write!(f, "kernel panic: {failures} PAC authentication failures")
            }
            KernelError::Cpu(e) => write!(f, "cpu error: {e}"),
            KernelError::ModuleRejected { violations } => {
                write!(f, "module rejected: {} violations", violations.len())
            }
            KernelError::BadTask(tid) => write!(f, "no live task {tid}"),
            KernelError::Hung => write!(f, "simulation exceeded its step budget"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<CpuError> for KernelError {
    fn from(e: CpuError) -> Self {
        KernelError::Cpu(e)
    }
}

/// Details of a fault observed during a kernel-internal call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInfo {
    /// Faulting address (`FAR_EL1`).
    pub far: u64,
    /// PC of the faulting instruction (`ELR_EL1`).
    pub elr: u64,
    /// Whether the address carries the PAC-failure signature.
    pub pac_failure: bool,
}

/// Result of executing a kernel function or user program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// x0 at completion (return value).
    pub x0: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// The fault that aborted execution, if any.
    pub fault: Option<FaultInfo>,
    /// Syscalls completed (user runs).
    pub syscalls: u64,
}

/// Hot-path symbol VAs, resolved once at boot.
///
/// The syscall dispatch upcall runs per simulated syscall; resolving its
/// targets through the image's name map (a `HashMap` keyed by `String`,
/// plus a `format!` per lookup) costs more host time than the simulated
/// work of a short syscall, so the run loop uses these instead.
#[derive(Debug, Clone)]
struct HotSymbols {
    ret_to_user: u64,
    syscall_ret_glue: u64,
    restore_user_keys: u64,
    /// `(nr, sys_<name> VA)` for every modeled syscall, in table order.
    sys_bodies: Vec<(u64, u64)>,
    /// `(block name, user_main_<name> VA)` for every user block.
    user_entries: Vec<(String, u64)>,
}

/// A loaded kernel module.
#[derive(Debug, Clone)]
pub struct ModuleHandle {
    /// Load address.
    pub base_va: u64,
    /// The module's linked image.
    pub image: Image,
}

/// The simulated machine: CPU + memory + the kernel proper.
#[derive(Debug)]
pub struct Kernel {
    cfg: KernelConfig,
    codegen_cfg: CodegenConfig,
    /// The cluster's cores. Every core borrows the one shared [`Memory`]
    /// below when it steps; per-core state (sysregs, PAuth key registers,
    /// decoded-instruction cache, PAC unit) lives inside each [`Cpu`].
    cpus: Vec<Cpu>,
    /// Index of the core currently driving execution.
    cur_cpu: usize,
    sched: Scheduler,
    mem: Memory,
    boot: Bootloader,
    kimage: KernelImage,
    kernel_table: TableId,
    user_frames: Vec<(u64, Frame)>,
    tasks: Vec<Task>,
    current: usize,
    files: FileTable,
    policy: PacPolicy,
    events: Vec<KernelEvent>,
    modules: Vec<ModuleHandle>,
    rng: StdRng,
    next_file_slot: u64,
    next_work_slot: u64,
    next_tid: Tid,
    /// Tids released by [`Kernel::exit_task`], reused LIFO by `spawn` so a
    /// fork/exit churn workload cannot exhaust the fixed stack/task-struct
    /// VA regions.
    free_tids: Vec<Tid>,
    /// Monotonic module-slot allocator (slots freed by
    /// [`Kernel::unload_module`] are preferred, LIFO).
    next_module_slot: u64,
    free_module_slots: Vec<u64>,
    hot: HotSymbols,
    /// The observability ring, allocated at boot when
    /// [`KernelConfig::telemetry`] is on. Host-side plumbing only: the
    /// kernel itself never reads or writes it, it just hands the handle
    /// to executors and drainers via [`Kernel::telemetry_ring`].
    telemetry: Option<Arc<TelemetryRing>>,
}

/// Pages backing each of the file and work heaps.
const HEAP_PAGES: u64 = 8;

/// Retired-instruction budget for a single kernel-internal call.
///
/// A hang-detection backstop, denominated in *instructions* so the block
/// engine does not change when it trips: the run loops check it between
/// engine invocations, so with the engine on a run may overshoot by at
/// most one call's worth of instructions (`MAX_CHAIN * MAX_BLOCK_INSNS`)
/// before the check fires — a bound the trace tier preserves, since an
/// internally-looping trace stops its call at that same instruction
/// count (`camo_cpu::trace::TRACE_CALL_INSNS`). A program living that
/// close to the backstop is outside the simulator's contract — benign
/// workloads sit orders of magnitude below it.
const KCALL_BUDGET: u64 = 1_000_000;
/// Retired-instruction budget for a user program run (same backstop
/// semantics as [`KCALL_BUDGET`]).
const RUN_BUDGET: u64 = 200_000_000;

impl Kernel {
    /// Boots a machine with `cfg`: builds and loads the kernel image,
    /// installs the XOM key setter, writes the vector table and rodata ops
    /// tables, seals everything through the hypervisor, installs the kernel
    /// keys by *executing* the setter, and spawns the init task.
    pub fn boot(cfg: KernelConfig) -> Result<Kernel, KernelError> {
        let codegen_cfg = cfg.codegen();
        let mut mem = Memory::new();
        mem.set_caching(cfg.fast_caches);
        let kernel_table = mem.new_table();
        let boot = Bootloader::new(cfg.seed);
        let kimage = KernelImage::build(codegen_cfg);
        boot.load_image(&mut mem, kernel_table, kimage.image());
        let setter = boot.install_keysetter(&mut mem, kernel_table, KEYSETTER_VA);

        // Vector page: branches to the entry stubs.
        let vec_frame = mem.map_new(kernel_table, VECTORS_VA, S1Attr::kernel_text());
        let vectors = [
            (camo_cpu::vector::SYNC_SAME_EL, "el1_sync_entry"),
            (camo_cpu::vector::IRQ_SAME_EL, "irq_entry"),
            (camo_cpu::vector::SYNC_LOWER_EL, "el0_sync_entry"),
            (camo_cpu::vector::IRQ_LOWER_EL, "irq_entry"),
        ];
        for (off, sym) in vectors {
            let target = kimage.symbol(sym);
            let site = VECTORS_VA + off;
            let b = camo_isa::Insn::B {
                offset: i32::try_from(target.wrapping_sub(site) as i64)
                    .expect("vector branch in range"),
            };
            mem.phys_mut()
                .write_u32(vec_frame.base() + off, encode(&b))
                .expect("vector frame backed");
        }
        boot.hypervisor()
            .seal_read_exec(&mut mem, vec_frame)
            .expect("boot order");

        // Read-only operations tables (§4.4): function pointers stored
        // unsigned in memory no one can write.
        let rodata_frame = mem.map_new(kernel_table, RODATA_BASE, S1Attr::kernel_rodata());
        let members: [(u16, &str); 6] = [
            (layout::file_operations::LLSEEK, "dev_llseek"),
            (layout::file_operations::READ, "dev_read"),
            (layout::file_operations::WRITE, "dev_write"),
            (layout::file_operations::POLL, "dev_poll"),
            (layout::file_operations::OPEN, "dev_open"),
            (layout::file_operations::RELEASE, "dev_release"),
        ];
        for kind in FileKind::ALL {
            let table_off = kind.ops_va() - RODATA_BASE;
            for (member, sym) in members {
                mem.phys_mut()
                    .write_u64(
                        rodata_frame.base() + table_off + u64::from(member),
                        kimage.symbol(sym),
                    )
                    .expect("rodata frame backed");
            }
        }
        boot.hypervisor()
            .seal_read_only(&mut mem, rodata_frame)
            .expect("boot order");

        // Kernel heap pages: file objects and work items.
        for page in 0..HEAP_PAGES {
            mem.map_new(
                kernel_table,
                file_heap_base() + page * PAGE_SIZE,
                S1Attr::kernel_data(),
            );
            mem.map_new(
                kernel_table,
                work_heap_base() + page * PAGE_SIZE,
                S1Attr::kernel_data(),
            );
        }

        // User program text (shared frames, mapped per process).
        let blocks: Vec<(&str, usize, usize)> = cfg
            .user_blocks
            .iter()
            .map(|(n, a, m)| (n.as_str(), *a, *m))
            .collect();
        let user_image = build_user_program(&blocks).link(USER_TEXT_BASE);
        let ubytes = user_image.to_bytes();
        let mut user_frames = Vec::new();
        for (page, chunk) in ubytes.chunks(PAGE_SIZE as usize).enumerate() {
            let frame = mem.alloc_frame();
            mem.phys_mut()
                .write_bytes(frame.base(), chunk)
                .expect("fresh frame backed");
            user_frames.push((USER_TEXT_BASE + page as u64 * PAGE_SIZE, frame));
        }

        // Resolve the run loop's hot symbols once (see [`HotSymbols`]).
        let hot = HotSymbols {
            ret_to_user: kimage.symbol("ret_to_user"),
            syscall_ret_glue: kimage.symbol("syscall_ret_glue"),
            restore_user_keys: kimage.symbol("restore_user_keys"),
            sys_bodies: crate::image::SYSCALLS
                .iter()
                .map(|spec| (spec.nr, kimage.symbol(&format!("sys_{}", spec.name))))
                .collect(),
            user_entries: cfg
                .user_blocks
                .iter()
                .map(|(name, _, _)| {
                    let entry = user_image
                        .symbol(&format!("user_main_{name}"))
                        .expect("every user block gets an entry");
                    (name.clone(), entry)
                })
                .collect(),
        };

        assert!(cfg.cpus > 0, "a machine has at least one CPU");
        let mut cpus = Vec::with_capacity(cfg.cpus);
        for id in 0..cfg.cpus {
            let mut cpu = Cpu::with_id(
                HwFeatures {
                    pauth: cfg.pauth_hw,
                },
                id,
            );
            cpu.set_caching(cfg.fast_caches);
            cpu.set_block_engine(cfg.block_engine);
            cpu.set_trace_engine(cfg.trace_engine);
            cpu.state.set_sysreg(SysReg::Ttbr1El1, kernel_table.raw());
            cpu.state.set_sysreg(SysReg::Ttbr0El1, kernel_table.raw());
            cpu.state.set_sysreg(SysReg::VbarEl1, VECTORS_VA);
            cpus.push(cpu);
        }

        let mut kernel = Kernel {
            policy: PacPolicy::new(cfg.pac_panic_threshold),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x5eed_0000_0001),
            codegen_cfg,
            sched: Scheduler::new(cfg.cpus),
            cpus,
            cur_cpu: 0,
            mem,
            boot,
            kimage,
            kernel_table,
            user_frames,
            tasks: Vec::new(),
            current: 0,
            files: FileTable::new(),
            events: Vec::new(),
            modules: Vec::new(),
            next_file_slot: 0,
            next_work_slot: 0,
            next_tid: 0,
            free_tids: Vec::new(),
            next_module_slot: 0,
            free_module_slots: Vec::new(),
            hot,
            telemetry: cfg
                .telemetry
                .then(|| Arc::new(TelemetryRing::new(TelemetryConfig::default()))),
            cfg,
        };

        // Install the kernel keys by running the XOM setter — the §5.1
        // boot-time key installation, executed instruction by instruction,
        // once per core: key registers are per-CPU state, so every core of
        // the cluster executes the setter with its own register file (the
        // secondary-boot path of §6.1.1). This must precede any
        // kernel-code signing (task SPs, f_ops).
        if kernel.protected() {
            for cpu in 0..kernel.cpus.len() {
                kernel.cur_cpu = cpu;
                let out = kernel.kexec(setter.va, &[])?;
                debug_assert!(out.fault.is_none());
            }
            kernel.cur_cpu = 0;
        }

        // Init task (tid 0): gives later kernel calls a stack.
        let init = kernel.spawn("init")?;
        debug_assert_eq!(init, 0);

        kernel.boot.finalize(&mut kernel.mem);
        Ok(kernel)
    }

    fn protected(&self) -> bool {
        self.cfg.protection != ProtectionLevel::None && self.cfg.pauth_hw
    }

    /// The boot configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// The streaming-telemetry ring, when [`KernelConfig::telemetry`] is
    /// on. Producers ([`camo_cpu::telemetry::TelemetryEmitter`]) and the
    /// draining consumer share this handle; the kernel itself never
    /// touches the ring.
    pub fn telemetry_ring(&self) -> Option<Arc<TelemetryRing>> {
        self.telemetry.clone()
    }

    /// The instrumentation configuration the kernel was built with.
    pub fn codegen_config(&self) -> CodegenConfig {
        self.codegen_cfg
    }

    /// The kernel image (symbol lookups, listings).
    pub fn image(&self) -> &KernelImage {
        &self.kimage
    }

    /// Resolves a kernel symbol.
    pub fn symbol(&self, name: &str) -> u64 {
        self.kimage.symbol(name)
    }

    /// The simulated memory system.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access — this is the attacker's arbitrary
    /// read/write primitive from the §3.1 threat model (and the loader's
    /// tool). Stage-2-protected pages still refuse writes.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The CPU currently driving execution.
    pub fn cpu(&self) -> &Cpu {
        &self.cpus[self.cur_cpu]
    }

    /// Mutable access to the current CPU (attack setup, inspection).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpus[self.cur_cpu]
    }

    /// Simultaneous mutable access to the current CPU and memory — what an
    /// external driver needs to single-step the machine itself.
    pub fn cpu_mem_mut(&mut self) -> (&mut Cpu, &mut Memory) {
        (&mut self.cpus[self.cur_cpu], &mut self.mem)
    }

    /// Number of CPUs in this machine.
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// Index of the CPU currently driving execution.
    pub fn current_cpu(&self) -> usize {
        self.cur_cpu
    }

    /// Selects the CPU that subsequent [`Kernel::kexec`]-style calls run
    /// on (the cluster driver's "run this on core N" primitive).
    /// [`Kernel::run_user`] overrides this with the task's home CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn set_current_cpu(&mut self, cpu: usize) {
        assert!(cpu < self.cpus.len(), "no CPU {cpu}");
        self.cur_cpu = cpu;
    }

    /// A specific core of the cluster.
    pub fn cpu_at(&self, cpu: usize) -> &Cpu {
        &self.cpus[cpu]
    }

    /// Mutable access to a specific core.
    pub fn cpu_at_mut(&mut self, cpu: usize) -> &mut Cpu {
        &mut self.cpus[cpu]
    }

    /// All cores, in id order.
    pub fn cpus(&self) -> &[Cpu] {
        &self.cpus
    }

    /// The per-CPU runqueues.
    pub fn sched(&self) -> &Scheduler {
        &self.sched
    }

    /// Posts an IPI from the current CPU to `to_cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `to_cpu` is out of range.
    pub fn send_ipi(&mut self, to_cpu: usize, kind: IpiKind) {
        self.cpus[to_cpu].post_ipi(kind);
    }

    /// Cluster-wide TLB shootdown initiated by the current CPU: performs
    /// the broadcast invalidation on the shared memory system and posts a
    /// [`IpiKind::TlbShootdown`] IPI to every *other* core (the initiator
    /// invalidated locally by doing the flush).
    pub fn tlb_shootdown(&mut self) {
        self.mem.tlb_flush();
        for cpu in 0..self.cpus.len() {
            if cpu != self.cur_cpu {
                self.cpus[cpu].post_ipi(IpiKind::TlbShootdown);
            }
        }
    }

    /// Migrates `tid` to `to_cpu`'s runqueue. The task's `thread_struct`
    /// (and with it the per-thread PAuth key slots) lives in the shared
    /// cluster memory, so the keys follow for free: the next entry to user
    /// mode runs `restore_user_keys` *on the destination core*, loading
    /// this task's keys into that core's key registers. Sends a reschedule
    /// IPI to both cores involved.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadTask`] if `tid` is not a live task.
    ///
    /// # Panics
    ///
    /// Panics if `to_cpu` is out of range.
    pub fn migrate_task(&mut self, tid: Tid, to_cpu: usize) -> Result<(), KernelError> {
        assert!(to_cpu < self.cpus.len(), "no CPU {to_cpu}");
        self.task_index(tid)?;
        if let Some(from) = self.sched.migrate(tid, to_cpu) {
            self.apply_move(tid, from, to_cpu);
        }
        Ok(())
    }

    /// Runs the load balancer: evens out runqueue lengths, updating task
    /// homes and posting reschedule IPIs for every move. Returns the
    /// number of tasks moved.
    pub fn balance(&mut self) -> usize {
        let moves = self.sched.balance();
        for &(tid, from, to) in &moves {
            self.apply_move(tid, from, to);
        }
        moves.len()
    }

    /// Bookkeeping for one runqueue move (the queues themselves were
    /// already updated by the scheduler): re-home the task, log the event,
    /// and post reschedule IPIs to both cores involved.
    fn apply_move(&mut self, tid: Tid, from: usize, to: usize) {
        if let Some(task) = self.tasks.iter_mut().find(|t| t.tid == tid) {
            task.cpu = to;
        }
        self.events
            .push(KernelEvent::TaskMigrated { tid, from, to });
        self.cpus[from].post_ipi(IpiKind::Reschedule);
        self.cpus[to].post_ipi(IpiKind::Reschedule);
    }

    /// Loaded modules.
    pub fn modules(&self) -> &[ModuleHandle] {
        &self.modules
    }

    /// The kernel-half translation table.
    pub fn kernel_table(&self) -> TableId {
        self.kernel_table
    }

    /// Logged events.
    pub fn events(&self) -> &[KernelEvent] {
        &self.events
    }

    /// Moves every logged event into `into` (which is cleared first) and
    /// leaves the kernel's own buffer empty *with its capacity retained*.
    ///
    /// This is the take-and-clear sampling primitive for per-op drivers:
    /// one caller-owned buffer and the kernel's internal one are reused
    /// across ops, so polling events after every tiny operation (the
    /// module-churn tenant logs several per op) allocates only until both
    /// buffers reach steady-state capacity, then never again.
    pub fn take_events(&mut self, into: &mut Vec<KernelEvent>) {
        into.clear();
        into.append(&mut self.events);
    }

    /// PAC failures recorded so far.
    pub fn pac_failures(&self) -> u32 {
        self.policy.failures()
    }

    /// Live task ids.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// The currently scheduled task.
    pub fn current_task(&self) -> &Task {
        &self.tasks[self.current]
    }

    fn task_index(&self, tid: Tid) -> Result<usize, KernelError> {
        self.tasks
            .iter()
            .position(|t| t.tid == tid && t.alive)
            .ok_or(KernelError::BadTask(tid))
    }

    /// Creates a task: kernel stack, `task_struct`, fresh per-thread user
    /// keys (the §2.2 `exec()` behaviour), a user address space with the
    /// shared program text, and a pre-opened `/dev/zero` file at fd ≥ 3.
    ///
    /// Tids released by [`Kernel::exit_task`] are reused (LIFO, like PID
    /// recycling): a recycled tid's kernel stack and `task_struct` pages
    /// are already mapped and every live field is re-initialised below, so
    /// a fork/exit storm runs in bounded address space.
    pub fn spawn(&mut self, name: &str) -> Result<Tid, KernelError> {
        let tid = match self.free_tids.pop() {
            Some(tid) => tid,
            None => {
                let tid = self.next_tid;
                self.next_tid += 1;
                tid
            }
        };

        // Kernel stack (16 KiB at a 64 KiB stride, §4.2). Recycled tids
        // already have these pages mapped; fresh tids get new frames.
        let stack_base = layout::stack_top(tid) - layout::STACK_SIZE;
        for page in 0..(layout::STACK_SIZE / PAGE_SIZE) {
            let va = stack_base + page * PAGE_SIZE;
            if self.mem.table(self.kernel_table).lookup(va).is_none() {
                self.mem
                    .map_new(self.kernel_table, va, S1Attr::kernel_data());
            }
        }
        // task_struct page.
        let ts_va = layout::task_struct_va(tid);
        if self.mem.table(self.kernel_table).lookup(ts_va).is_none() {
            self.mem
                .map_new(self.kernel_table, ts_va, S1Attr::kernel_data());
        }
        let kctx = self.mem.kernel_ctx(self.kernel_table);
        self.mem
            .write_u64(&kctx, ts_va + u64::from(task_struct::TID), u64::from(tid))
            .expect("task page mapped");

        // Per-thread user keys (IB, IA, DB) into thread_struct.
        let user_keys = [
            QarmaKey::new(self.rng.gen(), self.rng.gen()),
            QarmaKey::new(self.rng.gen(), self.rng.gen()),
            QarmaKey::new(self.rng.gen(), self.rng.gen()),
        ];
        for (i, key) in user_keys.iter().enumerate() {
            let off = u64::from(task_struct::USER_KEYS) + 16 * i as u64;
            self.mem
                .write_u64(&kctx, ts_va + off, key.w0)
                .expect("task page mapped");
            self.mem
                .write_u64(&kctx, ts_va + off + 8, key.k0)
                .expect("task page mapped");
        }
        // Seed the switch context: parked LR, so a switch into this task
        // unwinds to the kernel's call driver.
        let cc = ts_va + u64::from(task_struct::CPU_CONTEXT);
        self.mem
            .write_u64(&kctx, cc + 80 + 8, CALL_SENTINEL)
            .expect("task page mapped");

        // User address space: program text (shared frames) + stack.
        let user_table = self.mem.new_table();
        for &(va, frame) in &self.user_frames {
            self.mem.map(user_table, va, frame, S1Attr::user_text());
        }
        for page in 1..=4u64 {
            self.mem.map_new(
                user_table,
                USER_STACK_TOP - page * PAGE_SIZE,
                S1Attr::user_data(),
            );
        }

        // Place the new task on the least-loaded runqueue (always CPU 0
        // on a uniprocessor, preserving the pre-SMP behaviour exactly).
        let cpu = self.sched.place(tid);
        self.tasks.push(Task {
            tid,
            name: name.to_string(),
            user_table,
            alive: true,
            user_keys,
            cpu,
            pac_failures: 0,
        });

        // Seed the signed saved-SP via kernel code (fork does this with
        // PAuth instructions, §5.2).
        let sp0 = layout::stack_top(tid) - 512;
        let init_sp = self.symbol("task_init_sp");
        self.kexec(init_sp, &[ts_va, sp0])?;

        // Pre-open a /dev/zero file so fd-based syscalls have a target.
        let file = self.alloc_file(FileKind::DevZero)?;
        self.files.insert(file);
        Ok(tid)
    }

    /// Allocates and initialises a `struct file`, signing its `f_ops`
    /// through kernel code (`set_file_ops`, §5.3).
    pub fn alloc_file(&mut self, kind: FileKind) -> Result<u64, KernelError> {
        let capacity = HEAP_PAGES * PAGE_SIZE / file_struct::SIZE;
        let va = file_heap_base() + (self.next_file_slot % capacity) * file_struct::SIZE;
        self.next_file_slot += 1;
        let kctx = self.mem.kernel_ctx(self.kernel_table);
        self.mem
            .write_u64(&kctx, va + u64::from(file_struct::FLAGS), 1)
            .expect("file heap mapped");
        self.mem
            .write_u64(&kctx, va + u64::from(file_struct::F_OPS), kind.ops_va())
            .expect("file heap mapped");
        if self.protected() && self.codegen_cfg.protect_pointers {
            let sign = self.symbol("sign_slot_db");
            self.kexec(
                sign,
                &[
                    va,
                    va + u64::from(file_struct::F_OPS),
                    u64::from(type_consts::FILE_F_OPS),
                ],
            )?;
        }
        Ok(va)
    }

    /// The file object behind `fd`.
    pub fn file_of_fd(&self, fd: u64) -> Option<u64> {
        self.files.get(fd)
    }

    /// Allocates a signed `struct file` *and* installs it in the file
    /// table, returning `(fd, file_va)` — the `open()` composite of
    /// [`Kernel::alloc_file`] plus fd bookkeeping.
    ///
    /// # Errors
    ///
    /// Propagates signing failures from [`Kernel::alloc_file`].
    pub fn open_file(&mut self, kind: FileKind) -> Result<(u64, u64), KernelError> {
        let va = self.alloc_file(kind)?;
        let fd = self.files.insert(va);
        Ok((fd, va))
    }

    /// Allocates a `work_struct` and initialises its protected callback
    /// (`INIT_WORK`): raw store, then in-kernel signing (§4.6).
    pub fn init_work(&mut self, func_sym: &str) -> Result<u64, KernelError> {
        let capacity = HEAP_PAGES * PAGE_SIZE / layout::work_struct::SIZE;
        let va = work_heap_base() + (self.next_work_slot % capacity) * layout::work_struct::SIZE;
        self.next_work_slot += 1;
        let func = self.symbol(func_sym);
        let kctx = self.mem.kernel_ctx(self.kernel_table);
        self.mem
            .write_u64(&kctx, va + u64::from(layout::work_struct::FUNC), func)
            .expect("work heap mapped");
        if self.protected() && self.codegen_cfg.protect_pointers {
            let sign = self.symbol("sign_slot_ia");
            self.kexec(
                sign,
                &[
                    va,
                    va + u64::from(layout::work_struct::FUNC),
                    u64::from(type_consts::WORK_FUNC),
                ],
            )?;
        }
        Ok(va)
    }

    /// Runs a queued work item: authenticate its callback and call it
    /// (§4.4 forward-edge CFI).
    pub fn run_work(&mut self, work_va: u64) -> Result<ExecOutcome, KernelError> {
        let f = self.symbol("run_work");
        self.kexec(f, &[work_va])
    }

    /// Context-switches between two live tasks by executing
    /// `cpu_switch_to` (§5.2).
    pub fn context_switch(&mut self, from: Tid, to: Tid) -> Result<ExecOutcome, KernelError> {
        let from_idx = self.task_index(from)?;
        let to_idx = self.task_index(to)?;
        self.cpus[self.cur_cpu].state.el = El::El1;
        self.cpus[self.cur_cpu].state.sp_el1 = layout::stack_top(from) - 512;
        let f = self.symbol("cpu_switch_to");
        let out = self.kexec(
            f,
            &[
                self.tasks[from_idx].tid as u64 * 0 + layout::task_struct_va(from),
                layout::task_struct_va(to),
            ],
        )?;
        if out.fault.is_none() {
            self.current = to_idx;
        }
        Ok(out)
    }

    /// Context-switches a task out of existence: `exit()`. The task's
    /// entry is removed, its runqueue slot freed, and its tid pushed onto
    /// the free pool for reuse by a later [`Kernel::spawn`] (PID
    /// recycling) — which is what keeps a fork/exit churn workload inside
    /// the fixed stack and `task_struct` VA regions. The kernel stack and
    /// `task_struct` pages stay mapped for the recycled tid; the user
    /// address-space table is abandoned (tables are never freed in this
    /// simulator).
    ///
    /// Unlike the §5.4 kill path ([`KernelEvent::TaskKilled`]), a graceful
    /// exit leaves no dead entry behind for forensics — there is nothing
    /// to examine.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadTask`] for init (tid 0), a dead task, or an
    /// unknown tid.
    pub fn exit_task(&mut self, tid: Tid) -> Result<(), KernelError> {
        if tid == 0 {
            return Err(KernelError::BadTask(tid)); // init never exits
        }
        let idx = self.task_index(tid)?;
        self.sched.remove(tid);
        self.tasks.remove(idx);
        match self.current.cmp(&idx) {
            core::cmp::Ordering::Greater => self.current -= 1,
            core::cmp::Ordering::Equal => self.current = 0, // fall back to init
            core::cmp::Ordering::Less => {}
        }
        self.free_tids.push(tid);
        self.events.push(KernelEvent::TaskExited { tid });
        Ok(())
    }

    /// Reaps a task the §5.4 policy killed: removes the dead entry left
    /// behind for forensics and recycles its tid exactly like a graceful
    /// exit. An adversarial workload that provokes kills at a steady rate
    /// needs this to stay inside the fixed stack/`task_struct` VA strides.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadTask`] for init (tid 0), a task that is still
    /// alive (use [`Kernel::exit_task`]), or an unknown tid.
    pub fn reap_task(&mut self, tid: Tid) -> Result<(), KernelError> {
        if tid == 0 {
            return Err(KernelError::BadTask(tid));
        }
        let idx = self
            .tasks
            .iter()
            .position(|t| t.tid == tid && !t.alive)
            .ok_or(KernelError::BadTask(tid))?;
        self.tasks.remove(idx);
        match self.current.cmp(&idx) {
            core::cmp::Ordering::Greater => self.current -= 1,
            core::cmp::Ordering::Equal => self.current = 0, // fall back to init
            core::cmp::Ordering::Less => {}
        }
        self.free_tids.push(tid);
        self.events.push(KernelEvent::TaskReaped { tid });
        Ok(())
    }

    /// Loads a kernel module: §4.1 static verification first, then map,
    /// then §4.6 in-kernel signing of its static pointer table. Load slots
    /// freed by [`Kernel::unload_module`] are reused (LIFO) before fresh
    /// address space is consumed.
    pub fn load_module(
        &mut self,
        program: Program,
        statics: &StaticPointerTable,
    ) -> Result<ModuleHandle, KernelError> {
        let slot = match self.free_module_slots.pop() {
            Some(slot) => slot,
            None => {
                let slot = self.next_module_slot;
                self.next_module_slot += 1;
                slot
            }
        };
        let base = layout::MODULES_BASE + slot * layout::MODULE_STRIDE;
        let image = program.link(base);
        let violations = verify_image(&image.to_words());
        if !violations.is_empty() {
            self.free_module_slots.push(slot); // nothing was mapped
            self.events.push(KernelEvent::ModuleRejected {
                violations: violations.len(),
            });
            return Err(KernelError::ModuleRejected {
                violations: violations.iter().map(|v| v.to_string()).collect(),
            });
        }
        let bytes = image.to_bytes();
        let pages = bytes.chunks(PAGE_SIZE as usize).len();
        for (page, chunk) in bytes.chunks(PAGE_SIZE as usize).enumerate() {
            let frame = self.mem.map_new(
                self.kernel_table,
                base + page as u64 * PAGE_SIZE,
                S1Attr::kernel_text(),
            );
            self.mem
                .phys_mut()
                .write_bytes(frame.base(), chunk)
                .expect("fresh frame backed");
        }
        // Sign the module's statically-initialised pointers in kernel code.
        // On failure the mapping is rolled back and the slot returned, so
        // a hostile statics table cannot leak module address space.
        if self.protected() && self.codegen_cfg.protect_pointers {
            for entry in statics.entries() {
                let sym = match entry.key {
                    camo_isa::PacKey::IA | camo_isa::PacKey::IB => "sign_slot_ia",
                    _ => "sign_slot_db",
                };
                let f = self.symbol(sym);
                if let Err(e) = self.kexec(
                    f,
                    &[
                        entry.object_base(),
                        entry.location,
                        u64::from(entry.type_const),
                    ],
                ) {
                    for page in 0..pages {
                        self.mem
                            .unmap(self.kernel_table, base + page as u64 * PAGE_SIZE);
                    }
                    self.free_module_slots.push(slot);
                    return Err(e);
                }
            }
        }
        let handle = ModuleHandle {
            base_va: base,
            image,
        };
        self.modules.push(handle.clone());
        Ok(handle)
    }

    /// Unloads a module: unmaps every page of its text from the kernel
    /// table (the TLB-generation bump makes any cached translation of the
    /// module unservable from the next fetch on any core — the shootdown
    /// half of `delete_module`) and returns its load slot to the free pool
    /// for reuse by the next [`Kernel::load_module`]. Physical frames are
    /// not recycled, matching the simulator-wide frame discipline.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadTask`] is never returned; an unknown `base_va`
    /// yields [`KernelError::ModuleRejected`] with one pseudo-violation so
    /// callers get a descriptive error without a new variant.
    pub fn unload_module(&mut self, base_va: u64) -> Result<(), KernelError> {
        let Some(idx) = self.modules.iter().position(|m| m.base_va == base_va) else {
            return Err(KernelError::ModuleRejected {
                violations: vec![format!("no module loaded at {base_va:#x}")],
            });
        };
        let handle = self.modules.remove(idx);
        let pages = handle.image.to_bytes().len().div_ceil(PAGE_SIZE as usize);
        for page in 0..pages {
            let unmapped = self
                .mem
                .unmap(self.kernel_table, base_va + page as u64 * PAGE_SIZE);
            debug_assert!(unmapped, "module pages were mapped at load");
        }
        self.free_module_slots
            .push((base_va - layout::MODULES_BASE) / layout::MODULE_STRIDE);
        self.events.push(KernelEvent::ModuleUnloaded { base_va });
        Ok(())
    }

    /// Executes a kernel function at EL1 with the current task's stack,
    /// handling upcalls and faults per kernel policy.
    ///
    /// # Errors
    ///
    /// [`KernelError::PacPanic`] when the §5.4 threshold trips;
    /// [`KernelError::Cpu`]/[`KernelError::Hung`] on simulation failure.
    pub fn kexec(&mut self, fn_va: u64, args: &[u64]) -> Result<ExecOutcome, KernelError> {
        assert!(args.len() <= 8, "at most eight register arguments");
        let cur = self.cur_cpu;
        // Kernel entry on this core: acknowledge pending IPIs. Reschedule
        // needs no action here (the caller already chose what to run) and
        // TlbShootdown's invalidation happened when the initiator flushed
        // the shared memory system — the ack is the protocol's other half
        // (and allocation-free: kexec runs per tiny op under the fleet).
        self.cpus[cur].ack_ipis();
        self.cpus[cur].state.el = El::El1;
        // Kernel context runs under the kernel keys: every real entry to
        // EL1 passes through an exception vector whose prologue executes
        // the XOM key setter (§6.1.1) before any kernel code can sign or
        // authenticate. `kexec` models a call *from* kernel context, so the
        // setter already ran on the way in — install the keys host-side and
        // charge nothing; the entry path that is simulated end-to-end
        // (`el0_sync_entry`) still executes the setter and pays for it.
        if self.protected() {
            for key in [
                camo_isa::PauthKey::IA,
                camo_isa::PauthKey::IB,
                camo_isa::PauthKey::DA,
                camo_isa::PauthKey::DB,
                camo_isa::PauthKey::GA,
            ] {
                self.cpus[cur]
                    .state
                    .set_pauth_key(key, self.boot.keys().key(key));
            }
        }
        if self.cpus[cur].state.sp_el1 == 0 {
            self.cpus[cur].state.sp_el1 = layout::stack_top(self.current_tid()) - 512;
        }
        let tpidr = self
            .tasks
            .get(self.current)
            .map(|t| t.struct_va())
            .unwrap_or(0);
        self.cpus[cur].state.set_sysreg(SysReg::TpidrEl1, tpidr);
        for (i, &a) in args.iter().enumerate() {
            self.cpus[cur].state.gprs[i] = a;
        }
        self.cpus[cur].state.write(Reg::LR, CALL_SENTINEL);
        self.cpus[cur].state.pc = fn_va;
        let c0 = self.cpus[cur].cycles();
        let i0 = self.cpus[cur].stats().instructions;
        // Hang backstop: budget denominated in retired instructions (so
        // the block engine cannot change when it trips), with the call
        // count as a secondary bound against non-advancing steps.
        for _ in 0..KCALL_BUDGET {
            if self.cpus[cur].stats().instructions - i0 >= KCALL_BUDGET {
                break;
            }
            match self.cpus[cur].run_block(&mut self.mem)? {
                Step::SentinelReturn => {
                    return Ok(ExecOutcome {
                        x0: self.cpus[cur].state.gprs[0],
                        cycles: self.cpus[cur].cycles() - c0,
                        instructions: self.cpus[cur].stats().instructions - i0,
                        fault: None,
                        syscalls: 0,
                    })
                }
                Step::BrkTrap { imm } if imm == upcall::EL1_FAULT => {
                    let info = self.note_kernel_fault()?;
                    return Ok(ExecOutcome {
                        x0: self.cpus[cur].state.gprs[0],
                        cycles: self.cpus[cur].cycles() - c0,
                        instructions: self.cpus[cur].stats().instructions - i0,
                        fault: Some(info),
                        syscalls: 0,
                    });
                }
                _ => continue,
            }
        }
        Err(KernelError::Hung)
    }

    fn current_tid(&self) -> Tid {
        self.tasks.get(self.current).map(|t| t.tid).unwrap_or(0)
    }

    /// Applies kernel fault policy to an EL1 fault the caller observed
    /// while driving the CPU itself (the attack framework's entry point
    /// into §5.4 handling).
    ///
    /// # Errors
    ///
    /// [`KernelError::PacPanic`] when the failure threshold trips.
    pub fn observe_el1_fault(&mut self) -> Result<FaultInfo, KernelError> {
        self.note_kernel_fault()
    }

    /// Classifies and logs a kernel-mode fault; trips the §5.4 panic
    /// policy on PAC-failure signatures. The policy counter is cluster
    /// global: failures observed by *any* core accumulate toward the same
    /// threshold (per-task counts are kept alongside for forensics).
    fn note_kernel_fault(&mut self) -> Result<FaultInfo, KernelError> {
        let cpu = self.cur_cpu;
        let far = self.cpus[cpu].state.sysreg(SysReg::FarEl1);
        let elr = self.cpus[cpu].state.sysreg(SysReg::ElrEl1);
        let class = classify_pac_failure(far, true);
        let tid = self.current_tid();
        if let Some(kind) = class {
            self.events.push(KernelEvent::PacFailure {
                far,
                elr,
                tid,
                cpu,
                kind,
            });
            if let Some(task) = self.tasks.iter_mut().find(|t| t.tid == tid) {
                task.pac_failures += 1;
            }
            if self.policy.record_failure() {
                return Err(KernelError::PacPanic {
                    failures: self.policy.failures(),
                });
            }
        } else {
            self.events.push(KernelEvent::KernelFault { far, tid });
        }
        // Default policy: the offending process is killed (§5.4).
        self.events.push(KernelEvent::TaskKilled { tid });
        self.kill_task(tid);
        // The faulting kernel context is never resumed (its task is dead),
        // so the core abandons its EL1 stack — which may hold a poisoned
        // SP if the fault was a failed SP authentication in
        // `cpu_switch_to` — and re-derives it on the next kernel entry.
        self.cpus[cpu].state.sp_el1 = 0;
        Ok(FaultInfo {
            far,
            elr,
            pac_failure: class.is_some(),
        })
    }

    /// Marks `tid` dead and removes it from its runqueue.
    fn kill_task(&mut self, tid: Tid) {
        if let Some(task) = self.tasks.iter_mut().find(|t| t.tid == tid) {
            task.alive = false;
        }
        self.sched.remove(tid);
    }

    /// Runs a user program: `iterations` × (user block + one syscall `nr`
    /// with first argument `arg0`), fully simulated from `ERET`-free user
    /// entry through every kernel entry/exit.
    pub fn run_user(
        &mut self,
        tid: Tid,
        block: &str,
        iterations: u64,
        nr: u64,
        arg0: u64,
    ) -> Result<ExecOutcome, KernelError> {
        let idx = self.task_index(tid)?;
        self.current = idx;
        // Run on the task's home CPU — migration moves the home, and with
        // it where the user keys get restored. Entering the kernel on this
        // core acknowledges its pending IPIs (see kexec).
        let cur = self.tasks[idx].cpu;
        self.cur_cpu = cur;
        self.cpus[cur].ack_ipis();
        let task_va = self.tasks[idx].struct_va();
        let user_table = self.tasks[idx].user_table;
        let stack_top = self.tasks[idx].stack_top();
        self.cpus[cur]
            .state
            .set_sysreg(SysReg::Ttbr0El1, user_table.raw());
        self.cpus[cur].state.set_sysreg(SysReg::TpidrEl1, task_va);
        self.cpus[cur].state.sp_el1 = stack_top;

        // exec(): provision the user keys by running the kernel's restore
        // path (reads thread_struct, writes this core's key registers).
        if self.protected() {
            let f = self.hot.restore_user_keys;
            self.kexec(f, &[])?;
            self.cpus[cur].state.sp_el1 = stack_top;
        }

        let entry = self
            .hot
            .user_entries
            .iter()
            .find(|(name, _)| name == block)
            .map(|&(_, va)| va)
            .unwrap_or_else(|| panic!("unknown user block {block}"));
        self.cpus[cur].state.el = El::El0;
        self.cpus[cur].state.sp_el0 = USER_STACK_TOP - 2 * PAGE_SIZE;
        self.cpus[cur].state.pc = entry;
        self.cpus[cur].state.gprs[0] = iterations;
        self.cpus[cur].state.gprs[1] = nr;
        self.cpus[cur].state.gprs[2] = arg0;

        let c0 = self.cpus[cur].cycles();
        let i0 = self.cpus[cur].stats().instructions;
        let mut syscalls = 0u64;
        // Same hang-backstop shape as kexec: instruction-denominated
        // budget, call count as the secondary bound.
        for _ in 0..RUN_BUDGET {
            if self.cpus[cur].stats().instructions - i0 >= RUN_BUDGET {
                break;
            }
            match self.cpus[cur].run_block(&mut self.mem)? {
                Step::BrkTrap { imm } => match imm {
                    x if x == upcall::SYSCALL => {
                        self.dispatch_syscall()?;
                        syscalls += 1;
                    }
                    x if x == upcall::USER_DONE => {
                        return Ok(ExecOutcome {
                            x0: self.cpus[cur].state.gprs[0],
                            cycles: self.cpus[cur].cycles() - c0,
                            instructions: self.cpus[cur].stats().instructions - i0,
                            fault: None,
                            syscalls,
                        });
                    }
                    x if x == upcall::EL1_FAULT => {
                        let info = self.note_kernel_fault()?;
                        return Ok(ExecOutcome {
                            x0: self.cpus[cur].state.gprs[0],
                            cycles: self.cpus[cur].cycles() - c0,
                            instructions: self.cpus[cur].stats().instructions - i0,
                            fault: Some(info),
                            syscalls,
                        });
                    }
                    x if x == upcall::EL0_FAULT => {
                        let tid = self.current_tid();
                        self.events.push(KernelEvent::TaskKilled { tid });
                        self.kill_task(tid);
                        let far = self.cpus[cur].state.sysreg(SysReg::FarEl1);
                        let elr = self.cpus[cur].state.sysreg(SysReg::ElrEl1);
                        return Ok(ExecOutcome {
                            x0: self.cpus[cur].state.gprs[0],
                            cycles: self.cpus[cur].cycles() - c0,
                            instructions: self.cpus[cur].stats().instructions - i0,
                            fault: Some(FaultInfo {
                                far,
                                elr,
                                pac_failure: looks_like_pac_failure(far, true),
                            }),
                            syscalls,
                        });
                    }
                    x if x == upcall::IRQ => {
                        self.cpus[cur].return_from_exception();
                    }
                    _ => {
                        return Err(KernelError::Cpu(CpuError::TimedOut { steps: 0 }));
                    }
                },
                _ => continue,
            }
        }
        Err(KernelError::Hung)
    }

    /// One complete syscall round-trip from the current task.
    pub fn syscall(&mut self, nr: u64, arg0: u64) -> Result<ExecOutcome, KernelError> {
        let tid = self.current_tid();
        self.run_user(tid, "stub", 1, nr, arg0)
    }

    /// The `SYSCALL` upcall: read the number from `pt_regs`, apply
    /// host-side semantics, and redirect the PC into the syscall body with
    /// the return glue as LR.
    fn dispatch_syscall(&mut self) -> Result<(), KernelError> {
        let cur = self.cur_cpu;
        let sp = self.cpus[cur].state.sp_el1;
        let kctx = self.cpus[cur].translation_ctx();
        let nr = self
            .mem
            .read_u64(&kctx, sp + u64::from(PT_X8))
            .expect("pt_regs mapped");
        let a0 = self.mem.read_u64(&kctx, sp).expect("pt_regs mapped");
        let a1 = self.mem.read_u64(&kctx, sp + 8).expect("pt_regs mapped");
        let a2 = self.mem.read_u64(&kctx, sp + 16).expect("pt_regs mapped");

        let Some(spec) = syscall_by_nr(nr) else {
            // -ENOSYS; straight to the exit path.
            self.mem
                .write_u64(&mut kctx.clone(), sp, (-38i64) as u64)
                .expect("pt_regs mapped");
            self.cpus[cur].state.pc = self.hot.ret_to_user;
            return Ok(());
        };

        // Host-side semantics (the parts of the C kernel outside the
        // measured instruction paths).
        let default_file = self.files.get(3).unwrap_or(0);
        let (body_args, ret): ([u64; 3], u64) = match spec.name {
            "getpid" => ([0, 0, 0], u64::from(self.current_tid())),
            "read" | "write" => {
                let file = self.files.get(a0).unwrap_or(default_file);
                ([file, a1, a2], a2)
            }
            "fstat" | "select" => {
                let file = self.files.get(a0).unwrap_or(default_file);
                ([file, a1, a2], 0)
            }
            "open_close" => {
                let file = self.alloc_file_raw()?;
                let fd = self.files.insert(file);
                ([file, FileKind::DevZero.ops_va(), 0], fd)
            }
            _ => ([default_file, a1, a2], 0),
        };
        self.mem
            .write_u64(&mut kctx.clone(), sp, ret)
            .expect("pt_regs mapped");
        self.cpus[cur].state.gprs[0] = body_args[0];
        self.cpus[cur].state.gprs[1] = body_args[1];
        self.cpus[cur].state.gprs[2] = body_args[2];
        self.cpus[cur]
            .state
            .write(Reg::LR, self.hot.syscall_ret_glue);
        self.cpus[cur].state.pc = self
            .hot
            .sys_bodies
            .iter()
            .find(|&&(n, _)| n == nr)
            .map(|&(_, va)| va)
            .expect("spec came from the same table");
        Ok(())
    }

    /// Allocates a file *without* signing (the open syscall body performs
    /// the `set_file_ops` signing itself; §5.3).
    fn alloc_file_raw(&mut self) -> Result<u64, KernelError> {
        let capacity = HEAP_PAGES * PAGE_SIZE / file_struct::SIZE;
        let va = file_heap_base() + (self.next_file_slot % capacity) * file_struct::SIZE;
        self.next_file_slot += 1;
        let kctx = self.mem.kernel_ctx(self.kernel_table);
        self.mem
            .write_u64(&kctx, va + u64::from(file_struct::FLAGS), 1)
            .expect("file heap mapped");
        Ok(va)
    }
}

/// Base of the file-object heap page.
pub fn file_heap_base() -> u64 {
    layout::KDATA_BASE + 0x10_0000
}

/// Base of the work-item heap page.
pub fn work_heap_base() -> u64 {
    layout::KDATA_BASE + 0x20_0000
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted(level: ProtectionLevel) -> Kernel {
        Kernel::boot(KernelConfig::with_protection(level)).expect("boot")
    }

    #[test]
    fn boots_at_all_protection_levels() {
        for level in ProtectionLevel::ALL {
            let k = booted(level);
            assert_eq!(k.tasks().count(), 1, "{level}: init task");
            assert_eq!(k.pac_failures(), 0, "{level}");
        }
    }

    #[test]
    fn kernel_keys_are_installed_by_running_the_setter() {
        let k = booted(ProtectionLevel::Full);
        // The CPU's IB key registers now hold the boot keys...
        let ib = k.cpu().state.pauth_key(camo_isa::PauthKey::IB);
        assert_ne!(ib, QarmaKey::new(0, 0));
        // ...and they were written by MSRs, not host pokes.
        assert!(k.cpu().stats().key_writes >= 6);
    }

    #[test]
    fn baseline_kernel_never_touches_key_registers() {
        let k = booted(ProtectionLevel::None);
        assert_eq!(k.cpu().stats().key_writes, 0);
    }

    #[test]
    fn getpid_round_trip() {
        let mut k = booted(ProtectionLevel::Full);
        let out = k.syscall(172, 0).expect("syscall");
        assert_eq!(out.x0, 0, "init's tid");
        assert_eq!(out.syscalls, 1);
        assert!(out.fault.is_none());
        assert!(out.cycles > 100, "a syscall costs real cycles");
    }

    #[test]
    fn read_dispatches_through_authenticated_f_ops() {
        let mut k = booted(ProtectionLevel::Full);
        let auth_before = k.cpu().stats().pac_auth_ok;
        let out = k.syscall(63, 3).expect("read");
        assert!(out.fault.is_none());
        // The user stub leaves x2 = arg0, and read returns its length
        // argument (a2), so the syscall result echoes arg0.
        assert_eq!(out.x0, 3);
        assert!(
            k.cpu().stats().pac_auth_ok > auth_before,
            "f_ops was authenticated"
        );
    }

    #[test]
    fn protected_syscall_costs_more_than_baseline() {
        let mut base = booted(ProtectionLevel::None);
        let mut full = booted(ProtectionLevel::Full);
        let b = base.syscall(172, 0).unwrap().cycles;
        let f = full.syscall(172, 0).unwrap().cycles;
        assert!(f > b, "full protection must cost more ({f} vs {b} cycles)");
        // Double-digit percentage on a null syscall (Figure 3's shape).
        assert!(f * 100 > b * 110, "expected >10% overhead, got {f}/{b}");
    }

    #[test]
    fn context_switch_signs_and_verifies_sp() {
        let mut k = booted(ProtectionLevel::Full);
        let a = k.spawn("a").unwrap();
        let b = k.spawn("b").unwrap();
        let auth0 = k.cpu().stats().pac_auth_ok;
        let out = k.context_switch(a, b).expect("switch");
        assert!(out.fault.is_none());
        assert!(k.cpu().stats().pac_auth_ok > auth0, "SP was authenticated");
        assert_eq!(k.current_task().tid, b);
        // And back.
        let out = k.context_switch(b, a).expect("switch back");
        assert!(out.fault.is_none());
        assert_eq!(k.current_task().tid, a);
    }

    #[test]
    fn work_item_round_trip() {
        let mut k = booted(ProtectionLevel::Full);
        let work = k.init_work("dev_poll").expect("init_work");
        let out = k.run_work(work).expect("run_work");
        assert!(out.fault.is_none());
    }

    #[test]
    fn forged_work_pointer_is_caught() {
        let mut k = booted(ProtectionLevel::Full);
        let work = k.init_work("dev_poll").expect("init_work");
        // Attacker overwrites the signed callback with a raw pointer.
        let target = k.symbol("dev_read");
        let kctx = k.mem().kernel_ctx(k.kernel_table());
        let slot = work + u64::from(layout::work_struct::FUNC);
        k.mem_mut().write_u64(&kctx, slot, target).unwrap();
        let out = k.run_work(work).expect("no panic yet");
        let fault = out.fault.expect("authentication must fail");
        assert!(fault.pac_failure, "fault carries the PAC signature");
        assert_eq!(k.pac_failures(), 1);
    }

    #[test]
    fn pac_panic_threshold_halts_the_kernel() {
        let mut cfg = KernelConfig::with_protection(ProtectionLevel::Full);
        cfg.pac_panic_threshold = 3;
        let mut k = Kernel::boot(cfg).expect("boot");
        let target = k.symbol("dev_read");
        for attempt in 0..3 {
            let work = k.init_work("dev_poll").expect("init_work");
            let kctx = k.mem().kernel_ctx(k.kernel_table());
            let slot = work + u64::from(layout::work_struct::FUNC);
            k.mem_mut().write_u64(&kctx, slot, target).unwrap();
            match k.run_work(work) {
                Ok(out) => {
                    assert!(attempt < 2, "third failure must panic");
                    assert!(out.fault.expect("fault").pac_failure);
                }
                Err(KernelError::PacPanic { failures }) => {
                    assert_eq!(attempt, 2);
                    assert_eq!(failures, 3);
                    return;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        panic!("panic threshold never tripped");
    }

    #[test]
    fn module_with_key_read_is_rejected() {
        let mut k = booted(ProtectionLevel::Full);
        let cfg = k.codegen_config();
        let mut p = Program::new(cfg);
        let mut evil = camo_codegen::FunctionBuilder::new("evil_init", cfg);
        evil.ins(camo_isa::Insn::Mrs {
            rt: Reg::x(0),
            sr: SysReg::ApibKeyLoEl1,
        });
        p.push(evil.build());
        let err = k
            .load_module(p, &StaticPointerTable::new())
            .expect_err("must be rejected");
        match err {
            KernelError::ModuleRejected { violations } => {
                assert_eq!(violations.len(), 1);
                assert!(violations[0].contains("apibkeylo_el1"));
            }
            e => panic!("unexpected error {e}"),
        }
        assert!(matches!(
            k.events().last(),
            Some(KernelEvent::ModuleRejected { violations: 1 })
        ));
    }

    #[test]
    fn clean_module_loads_and_runs() {
        let mut k = booted(ProtectionLevel::Full);
        let cfg = k.codegen_config();
        let mut p = Program::new(cfg);
        let mut f = camo_codegen::FunctionBuilder::new("mod_entry", cfg).locals(32);
        f.ins(camo_isa::Insn::AddImm {
            rd: Reg::x(0),
            rn: Reg::x(0),
            imm12: 1,
            shifted: false,
        });
        p.push(f.build());
        let handle = k
            .load_module(p, &StaticPointerTable::new())
            .expect("clean module loads");
        let entry = handle.image.symbol("mod_entry").unwrap();
        let out = k.kexec(entry, &[41]).expect("module code runs");
        assert_eq!(out.x0, 42);
        assert!(out.fault.is_none());
    }

    #[test]
    fn exited_tids_are_recycled() {
        let mut k = booted(ProtectionLevel::Full);
        let a = k.spawn("a").unwrap();
        assert!(k.run_user(a, "stub", 1, 172, 0).unwrap().fault.is_none());
        k.exit_task(a).expect("graceful exit");
        assert!(
            k.tasks().all(|t| t.tid != a),
            "exited task leaves no entry behind"
        );
        assert!(matches!(
            k.run_user(a, "stub", 1, 172, 0),
            Err(KernelError::BadTask(_))
        ));
        // The next fork reuses the tid (bounded stack/task-struct VA), and
        // the recycled task is fully functional with fresh user keys.
        let b = k.spawn("b").unwrap();
        assert_eq!(b, a, "tid recycled LIFO");
        let out = k.run_user(b, "stub", 2, 63, 3).unwrap();
        assert!(out.fault.is_none());
        assert_eq!(out.syscalls, 2);
    }

    #[test]
    fn exit_task_refuses_init_and_the_dead() {
        let mut k = booted(ProtectionLevel::Full);
        assert!(matches!(k.exit_task(0), Err(KernelError::BadTask(0))));
        let a = k.spawn("a").unwrap();
        k.exit_task(a).unwrap();
        assert!(matches!(k.exit_task(a), Err(KernelError::BadTask(_))));
    }

    #[test]
    fn fork_exit_storm_stays_in_bounded_va() {
        // 200 spawn/exit cycles would blow through the 64-entry stack
        // stride region without tid recycling.
        let mut k = booted(ProtectionLevel::Full);
        for round in 0..200 {
            let tid = k.spawn(&format!("churn-{round}")).unwrap();
            assert!(tid < 4, "recycling keeps the tid space dense, got {tid}");
            let out = k.run_user(tid, "stub", 1, 172, 0).unwrap();
            assert_eq!(out.x0, u64::from(tid), "getpid sees the recycled tid");
            k.exit_task(tid).unwrap();
        }
    }

    #[test]
    fn kill_reap_storm_recycles_tids_without_aliasing_live_keys() {
        // An adversarial churn: every round spawns two tasks, one dies
        // under the §5.4 policy (forged saved SP caught on the switch
        // path) and is reaped, the other exits gracefully. Sixty rounds
        // would burn 120 fresh tids — and blow past the 64-entry stack
        // stride region — without recycling through both the exit and the
        // reap paths; and a recycled tid must never resurrect a live
        // task's PAC keys.
        let mut cfg = KernelConfig::default();
        cfg.pac_panic_threshold = u32::MAX; // the storm dwarfs any sane threshold
        let mut k = Kernel::boot(cfg).expect("boot");
        let anchor = k.spawn("anchor").unwrap();
        let anchor_keys = k
            .tasks()
            .find(|t| t.tid == anchor)
            .map(|t| t.user_keys)
            .unwrap();
        let mut drained = Vec::new();
        k.take_events(&mut drained);
        for round in 0..60 {
            let victim = k.spawn(&format!("victim-{round}")).unwrap();
            let target = k.spawn(&format!("target-{round}")).unwrap();
            // Dense tid space: init + anchor + two churn slots.
            assert!(
                victim < 4 && target < 4,
                "round {round}: recycling failed, got tids {victim}/{target}"
            );
            // Both VA strides derive from the tid and stay inside the
            // fixed regions.
            for tid in [victim, target] {
                let top = layout::stack_top(tid);
                assert!(
                    (layout::STACKS_BASE
                        ..layout::STACKS_BASE + 4 * layout::STACK_STRIDE + layout::STACK_SIZE)
                        .contains(&top),
                    "round {round}: stack stride escaped the region"
                );
            }
            // Fresh keys per spawn: no live task pair shares a user key.
            let live: Vec<_> = k
                .tasks()
                .filter(|t| t.alive && t.tid != 0)
                .map(|t| (t.tid, t.user_keys))
                .collect();
            for (i, (ta, ka)) in live.iter().enumerate() {
                for (tb, kb) in &live[i + 1..] {
                    assert!(
                        ka.iter().zip(kb.iter()).all(|(a, b)| a != b),
                        "round {round}: tasks {ta} and {tb} alias a user PAC key"
                    );
                }
            }
            // Forge the target's saved SP; the switch path authenticates
            // it and the §5.4 policy kills the current (victim) task.
            let kctx = k.mem().kernel_ctx(k.kernel_table());
            let slot = layout::task_struct_va(target) + u64::from(task_struct::SAVED_SP);
            k.mem_mut()
                .write_u64(&kctx, slot, layout::stack_top(target) - 512)
                .unwrap();
            let entry = k.run_user(victim, "stub", 1, 172, 0).unwrap();
            assert!(entry.fault.is_none(), "round {round}: benign entry faulted");
            let switch = k.context_switch(victim, target).unwrap();
            assert!(
                switch.fault.is_some_and(|f| f.pac_failure),
                "round {round}: forged SP escaped authentication"
            );
            // The kill leaves a dead entry for forensics; reap recycles it.
            assert!(
                k.tasks().any(|t| t.tid == victim && !t.alive),
                "round {round}: killed task gone before reap"
            );
            k.reap_task(victim).unwrap();
            k.exit_task(target).unwrap();
            k.take_events(&mut drained);
            assert_eq!(
                drained
                    .drain(..)
                    .map(|e| match e {
                        KernelEvent::PacFailure { tid, .. } => ("pac", tid),
                        KernelEvent::TaskKilled { tid } => ("killed", tid),
                        KernelEvent::TaskReaped { tid } => ("reaped", tid),
                        KernelEvent::TaskExited { tid } => ("exited", tid),
                        other => panic!("round {round}: unexpected event {other:?}"),
                    })
                    .collect::<Vec<_>>(),
                vec![
                    ("pac", victim),
                    ("killed", victim),
                    ("reaped", victim),
                    ("exited", target)
                ],
                "round {round}: the storm must produce exactly one kill"
            );
        }
        // The long-lived anchor survived sixty kill/reap rounds with its
        // keys intact and its kernel entry path clean.
        let survivor = k.tasks().find(|t| t.tid == anchor).expect("anchor lives");
        assert!(survivor.alive);
        assert_eq!(survivor.user_keys, anchor_keys, "anchor keys untouched");
        let out = k.run_user(anchor, "stub", 1, 172, 0).unwrap();
        assert!(out.fault.is_none());
        assert_eq!(out.x0, u64::from(anchor), "getpid sees the anchor tid");
    }

    fn tiny_module(k: &Kernel, name: &str) -> Program {
        let cfg = k.codegen_config();
        let mut p = Program::new(cfg);
        let mut f = camo_codegen::FunctionBuilder::new(name, cfg).locals(32);
        f.ins(camo_isa::Insn::AddImm {
            rd: Reg::x(0),
            rn: Reg::x(0),
            imm12: 2,
            shifted: false,
        });
        p.push(f.build());
        p
    }

    #[test]
    fn unloaded_module_slot_is_reused_and_unmapped() {
        let mut k = booted(ProtectionLevel::Full);
        let p = tiny_module(&k, "gen0_init");
        let first = k.load_module(p, &StaticPointerTable::new()).unwrap();
        k.unload_module(first.base_va).expect("unload");
        assert!(k.modules().is_empty());
        assert!(
            k.mem()
                .table(k.kernel_table())
                .lookup(first.base_va)
                .is_none(),
            "module text must be unmapped after unload"
        );
        assert!(matches!(
            k.events().last(),
            Some(KernelEvent::ModuleUnloaded { .. })
        ));
        // The slot comes back: the next load lands at the same base.
        let p = tiny_module(&k, "gen1_init");
        let second = k.load_module(p, &StaticPointerTable::new()).unwrap();
        assert_eq!(second.base_va, first.base_va, "slot recycled");
        let entry = second.image.symbol("gen1_init").unwrap();
        assert_eq!(k.kexec(entry, &[40]).unwrap().x0, 42);
    }

    #[test]
    fn unload_module_kills_cached_blocks_mid_run() {
        // The block engine is on by default: running a module's entry
        // caches its translated blocks. Unloading must make those blocks
        // unreachable — the next fetch of the old VA faults — and a fresh
        // module at the recycled base must execute its *own* code, never
        // the stale translation.
        let mut k = booted(ProtectionLevel::Full);
        assert!(k.config().block_engine);
        assert!(k.config().trace_engine);
        let p = tiny_module(&k, "gen0_init"); // +2 per call
        let first = k.load_module(p, &StaticPointerTable::new()).unwrap();
        let entry = first.image.symbol("gen0_init").unwrap();
        for round in 0..4 {
            assert_eq!(k.kexec(entry, &[round]).unwrap().x0, round + 2);
        }
        k.unload_module(first.base_va).expect("unload");
        // The cached block must not resurrect unloaded text: fetching the
        // old entry VA now takes a translation fault into the kernel.
        let out = k.kexec(entry, &[0]).expect("vectored, not fatal");
        let fault = out.fault.expect("unloaded text must not execute");
        assert!(!fault.pac_failure, "plain translation fault, not PAC");
        // A different module recycles the slot at the same base VA; its
        // entry runs *its* code (+1), not the stale +2 translation.
        let cfg = k.codegen_config();
        let mut p = Program::new(cfg);
        let mut f = camo_codegen::FunctionBuilder::new("gen1_init", cfg).locals(32);
        f.ins(camo_isa::Insn::AddImm {
            rd: Reg::x(0),
            rn: Reg::x(0),
            imm12: 1,
            shifted: false,
        });
        p.push(f.build());
        let second = k.load_module(p, &StaticPointerTable::new()).unwrap();
        assert_eq!(second.base_va, first.base_va, "slot recycled");
        let entry2 = second.image.symbol("gen1_init").unwrap();
        assert_eq!(k.kexec(entry2, &[10]).unwrap().x0, 11);
    }

    #[test]
    fn take_events_reuses_buffers_across_ops() {
        let mut k = booted(ProtectionLevel::Full);
        let mut buf = Vec::new();
        k.take_events(&mut buf);
        let boot_events = buf.len();
        let tid = k.spawn("w").unwrap();
        k.exit_task(tid).unwrap();
        k.take_events(&mut buf);
        assert!(
            buf.iter()
                .any(|e| matches!(e, KernelEvent::TaskExited { .. })),
            "events since the last take are delivered"
        );
        assert!(k.events().is_empty(), "kernel buffer drained");
        let cap = buf.capacity();
        // A second take-and-clear round reuses both allocations.
        let tid = k.spawn("w2").unwrap();
        k.exit_task(tid).unwrap();
        k.take_events(&mut buf);
        assert!(buf.capacity() >= 1 && buf.capacity() <= cap.max(4));
        assert_eq!(buf.len(), 1, "only the new events, not {boot_events}");
    }

    #[test]
    fn unload_of_unknown_base_is_an_error() {
        let mut k = booted(ProtectionLevel::Full);
        assert!(k.unload_module(layout::MODULES_BASE).is_err());
    }

    #[test]
    fn module_churn_stays_in_bounded_va() {
        let mut k = booted(ProtectionLevel::Full);
        let mut last = None;
        for round in 0..32 {
            let p = tiny_module(&k, &format!("churn{round}_init"));
            let h = k.load_module(p, &StaticPointerTable::new()).unwrap();
            if let Some(prev) = last {
                assert_eq!(h.base_va, prev, "load/unload churn reuses one slot");
            }
            last = Some(h.base_va);
            k.unload_module(h.base_va).unwrap();
        }
    }
}
