//! The kernel's simulated text: entry/exit stubs, syscall bodies, the
//! context switch, and helper routines.
//!
//! Everything the paper *measures* is generated here as real instruction
//! sequences and executed on the simulated core: register save/restore on
//! kernel entry, the call into the XOM key setter, instrumented call
//! chains standing in for syscall implementations, Listing 4 operations
//! dispatch, and the §5.2 `cpu_switch_to` with signed stack pointers.

use crate::layout::{
    self, file_operations, file_struct, task_struct, type_consts, upcall, KEYSETTER_VA, PT_ELR,
    PT_REGS_SIZE, PT_SPSR, PT_SP_EL0, PT_X30,
};
use camo_codegen::{
    build_call_chain, CodegenConfig, Function, FunctionBuilder, Image, Program, ProtectedPointer,
};
use camo_isa::{AddrMode, Insn, PacKey, PairMode, Reg, SysReg};

/// One syscall's synthetic shape: its AArch64 number, the call-chain depth
/// standing in for its C implementation, per-function body mix, how many
/// ops-table dispatches it performs, and whether it signs a fresh
/// `f_ops` (open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallSpec {
    /// AArch64 syscall number.
    pub nr: u64,
    /// Symbolic name.
    pub name: &'static str,
    /// Call-chain depth below `sys_<name>`.
    pub depth: usize,
    /// ALU instructions per chain function.
    pub alu: usize,
    /// Load/store pairs per chain function.
    pub mem: usize,
    /// `file_operations` members invoked through the protected `f_ops`
    /// pointer (offset within the ops table, repeated per call).
    pub fops_calls: &'static [u16],
    /// Whether the syscall signs and stores a fresh `f_ops` (§5.3's
    /// `set_file_ops`).
    pub sign_fops: bool,
}

/// The syscalls modeled by the kernel — the lmbench set of Figure 3.
///
/// Depths and body sizes are scaled to reproduce lmbench's *relative*
/// magnitudes on Linux (a null call is an order of magnitude cheaper than
/// open/close; select over 10 fds performs 10 ops-table dispatches).
pub const SYSCALLS: &[SyscallSpec] = &[
    SyscallSpec {
        nr: 172,
        name: "getpid",
        depth: 1,
        alu: 6,
        mem: 1,
        fops_calls: &[],
        sign_fops: false,
    },
    SyscallSpec {
        nr: 63,
        name: "read",
        depth: 3,
        alu: 12,
        mem: 4,
        fops_calls: &[file_operations::READ],
        sign_fops: false,
    },
    SyscallSpec {
        nr: 64,
        name: "write",
        depth: 3,
        alu: 12,
        mem: 4,
        fops_calls: &[file_operations::WRITE],
        sign_fops: false,
    },
    SyscallSpec {
        nr: 80,
        name: "fstat",
        depth: 2,
        alu: 14,
        mem: 5,
        fops_calls: &[],
        sign_fops: false,
    },
    SyscallSpec {
        nr: 79,
        name: "stat",
        depth: 5,
        alu: 18,
        mem: 6,
        fops_calls: &[],
        sign_fops: false,
    },
    SyscallSpec {
        nr: 56,
        name: "open_close",
        depth: 6,
        alu: 24,
        mem: 8,
        fops_calls: &[file_operations::OPEN],
        sign_fops: true,
    },
    SyscallSpec {
        nr: 72,
        name: "select",
        depth: 2,
        alu: 8,
        mem: 3,
        fops_calls: &[
            file_operations::POLL,
            file_operations::POLL,
            file_operations::POLL,
            file_operations::POLL,
            file_operations::POLL,
            file_operations::POLL,
            file_operations::POLL,
            file_operations::POLL,
            file_operations::POLL,
            file_operations::POLL,
        ],
        sign_fops: false,
    },
    SyscallSpec {
        nr: 134,
        name: "sig_install",
        depth: 2,
        alu: 10,
        mem: 3,
        fops_calls: &[],
        sign_fops: false,
    },
    SyscallSpec {
        nr: 139,
        name: "sig_handle",
        depth: 3,
        alu: 12,
        mem: 4,
        fops_calls: &[],
        sign_fops: false,
    },
    SyscallSpec {
        nr: 59,
        name: "pipe",
        depth: 4,
        alu: 14,
        mem: 5,
        fops_calls: &[],
        sign_fops: false,
    },
    // Bulk receive: the copy-heavy data path of a network download —
    // larger per-function bodies (the buffer copy) at the same call
    // structure as read.
    SyscallSpec {
        nr: 207,
        name: "recv",
        depth: 3,
        alu: 80,
        mem: 80,
        fops_calls: &[file_operations::READ],
        sign_fops: false,
    },
];

/// Looks up a syscall spec by number.
pub fn syscall_by_nr(nr: u64) -> Option<&'static SyscallSpec> {
    SYSCALLS.iter().find(|s| s.nr == nr)
}

/// The protected `file::f_ops` descriptor (Listing 4).
pub fn f_ops_pointer() -> ProtectedPointer {
    ProtectedPointer::new(PacKey::DB, type_consts::FILE_F_OPS)
}

/// The protected `work_struct::func` descriptor (§4.4 lone function
/// pointer — forward-edge key).
pub fn work_func_pointer() -> ProtectedPointer {
    ProtectedPointer::new(PacKey::IA, type_consts::WORK_FUNC)
}

/// The protected `task_struct::saved_sp` descriptor (§5.2).
pub fn task_sp_pointer() -> ProtectedPointer {
    ProtectedPointer::new(PacKey::DB, type_consts::TASK_SAVED_SP)
}

fn stp_seq(base: Reg, neg: bool) -> Vec<Insn> {
    // Save (or restore) x0..x29 as pairs + x30, relative to `base`.
    let mut insns = Vec::new();
    for i in 0..15u8 {
        let mode = PairMode::SignedOffset((16 * i16::from(i)) as i16);
        let (rt, rt2) = (Reg::x(2 * i), Reg::x(2 * i + 1));
        insns.push(if neg {
            Insn::Ldp {
                rt,
                rt2,
                rn: base,
                mode,
            }
        } else {
            Insn::Stp {
                rt,
                rt2,
                rn: base,
                mode,
            }
        });
    }
    insns.push(if neg {
        Insn::Ldr {
            rt: Reg::LR,
            rn: base,
            mode: AddrMode::Unsigned(PT_X30),
        }
    } else {
        Insn::Str {
            rt: Reg::LR,
            rn: base,
            mode: AddrMode::Unsigned(PT_X30),
        }
    });
    insns
}

/// `kernel_entry` for synchronous exceptions from EL0 (the `0x400` vector
/// target): save `pt_regs`, classify SVC vs fault, switch to the kernel
/// keys, and upcall for dispatch.
fn build_el0_sync_entry(cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new("el0_sync_entry", cfg).naked();
    b.ins(Insn::SubImm {
        rd: Reg::Sp,
        rn: Reg::Sp,
        imm12: PT_REGS_SIZE,
        shifted: false,
    });
    b.ins_all(stp_seq(Reg::Sp, false));
    for (sr, off) in [
        (SysReg::SpEl0, PT_SP_EL0),
        (SysReg::ElrEl1, PT_ELR),
        (SysReg::SpsrEl1, PT_SPSR),
    ] {
        b.ins(Insn::Mrs { rt: Reg::x(21), sr });
        b.ins(Insn::Str {
            rt: Reg::x(21),
            rn: Reg::Sp,
            mode: AddrMode::Unsigned(off),
        });
    }
    // Classify the exception: ESR.EC == 0x15 (SVC64)?
    b.ins(Insn::Mrs {
        rt: Reg::x(24),
        sr: SysReg::EsrEl1,
    });
    b.ins(Insn::lsr(Reg::x(25), Reg::x(24), 26));
    b.ins(Insn::Movz {
        rd: Reg::x(26),
        imm16: 0x15,
        shift: 0,
    });
    b.ins(Insn::SubReg {
        rd: Reg::x(25),
        rn: Reg::x(25),
        rm: Reg::x(26),
    });
    // cbz x25, +8  → skip the fault upcall.
    b.ins(Insn::Cbz {
        rt: Reg::x(25),
        offset: 8,
    });
    b.ins(Insn::Brk {
        imm: upcall::EL0_FAULT,
    });
    // SVC path: install kernel keys (the XOM setter), then dispatch.
    if cfg.scheme != camo_codegen::CfiScheme::None {
        b.call("__kernel_key_setter");
    }
    b.ins(Insn::Brk {
        imm: upcall::SYSCALL,
    });
    // The dispatcher redirects the PC; never falls through.
    b.ins(Insn::Brk { imm: 0xDEAD });
    b.build()
}

/// `ret_to_user`: restore the user PAuth keys from `thread_struct`
/// (`TPIDR_EL1` points at the current task), restore `pt_regs`, `ERET`.
fn build_ret_to_user(cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new("ret_to_user", cfg).naked();
    if cfg.scheme != camo_codegen::CfiScheme::None {
        b.call("restore_user_keys");
    }
    for (sr, off) in [
        (SysReg::SpsrEl1, PT_SPSR),
        (SysReg::ElrEl1, PT_ELR),
        (SysReg::SpEl0, PT_SP_EL0),
    ] {
        b.ins(Insn::Ldr {
            rt: Reg::x(21),
            rn: Reg::Sp,
            mode: AddrMode::Unsigned(off),
        });
        b.ins(Insn::Msr { sr, rt: Reg::x(21) });
    }
    b.ins_all(stp_seq(Reg::Sp, true));
    b.ins(Insn::AddImm {
        rd: Reg::Sp,
        rn: Reg::Sp,
        imm12: PT_REGS_SIZE,
        shifted: false,
    });
    b.ins(Insn::Eret);
    b.build()
}

/// Restores the three per-thread user keys (IB, IA, DB) from
/// `thread_struct` — the §2.2 context-switch path, 6 `MSR`s + 3 `LDP`s.
fn build_restore_user_keys(cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new("restore_user_keys", cfg).naked();
    b.ins(Insn::Mrs {
        rt: Reg::x(0),
        sr: SysReg::TpidrEl1,
    });
    let keys: [(u16, SysReg, SysReg); 3] = [
        (
            task_struct::USER_KEYS,
            SysReg::ApibKeyLoEl1,
            SysReg::ApibKeyHiEl1,
        ),
        (
            task_struct::USER_KEYS + 16,
            SysReg::ApiaKeyLoEl1,
            SysReg::ApiaKeyHiEl1,
        ),
        (
            task_struct::USER_KEYS + 32,
            SysReg::ApdbKeyLoEl1,
            SysReg::ApdbKeyHiEl1,
        ),
    ];
    for (off, lo, hi) in keys {
        b.ins(Insn::Ldp {
            rt: Reg::x(1),
            rt2: Reg::x(2),
            rn: Reg::x(0),
            mode: PairMode::SignedOffset(off as i16),
        });
        b.ins(Insn::Msr {
            sr: lo,
            rt: Reg::x(1),
        });
        b.ins(Insn::Msr {
            sr: hi,
            rt: Reg::x(2),
        });
    }
    // No key material may linger in GPRs (§5.1).
    for r in [0u8, 1, 2] {
        b.ins(Insn::Movz {
            rd: Reg::x(r),
            imm16: 0,
            shift: 0,
        });
    }
    b.ins(Insn::ret());
    b.build()
}

/// The EL1 synchronous vector target: a kernel-mode fault (data abort on a
/// corrupted pointer, most interestingly a PAC authentication failure).
fn build_el1_sync_entry(cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new("el1_sync_entry", cfg).naked();
    b.ins(Insn::Brk {
        imm: upcall::EL1_FAULT,
    });
    b.ins(Insn::Brk { imm: 0xDEAD });
    b.build()
}

/// IRQ vector targets (same for both ELs in this model): upcall to the
/// host-side tick handler.
fn build_irq_entry(cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new("irq_entry", cfg).naked();
    b.ins(Insn::Brk { imm: upcall::IRQ });
    b.ins(Insn::Brk { imm: 0xDEAD });
    b.build()
}

/// Post-body glue: fall into `ret_to_user` after the syscall body returns.
/// The dispatcher has already parked the semantic return value in
/// `pt_regs->regs[0]`, which the exit path restores into the user's x0.
fn build_syscall_ret_glue(cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new("syscall_ret_glue", cfg).naked();
    b.call("ret_to_user");
    // ret_to_user never returns (ERET); the BL is a branch in effect but
    // keeps the symbol reference simple.
    b.ins(Insn::Brk { imm: 0xDEAD });
    b.build()
}

/// `cpu_switch_to(prev=x0, next=x1)` — §5.2: saves callee-saved registers,
/// signs the outgoing task's SP, authenticates the incoming one.
fn build_cpu_switch_to(cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new("cpu_switch_to", cfg).naked();
    let cc = task_struct::CPU_CONTEXT as i16;
    for i in 0..5u8 {
        b.ins(Insn::Stp {
            rt: Reg::x(19 + 2 * i),
            rt2: Reg::x(20 + 2 * i),
            rn: Reg::x(0),
            mode: PairMode::SignedOffset(cc + 16 * i16::from(i)),
        });
    }
    b.ins(Insn::Stp {
        rt: Reg::FP,
        rt2: Reg::LR,
        rn: Reg::x(0),
        mode: PairMode::SignedOffset(cc + 80),
    });
    // Save (and under protection, sign) the outgoing SP.
    b.ins(Insn::mov_sp(Reg::x(9), Reg::Sp));
    if cfg.scheme != camo_codegen::CfiScheme::None {
        task_sp_pointer().emit_store(
            &mut b,
            Reg::x(9),
            Reg::x(0),
            task_struct::SAVED_SP,
            Reg::x(10),
        );
    } else {
        b.ins(Insn::Str {
            rt: Reg::x(9),
            rn: Reg::x(0),
            mode: AddrMode::Unsigned(task_struct::SAVED_SP),
        });
    }
    // Load (and authenticate) the incoming SP.
    if cfg.scheme != camo_codegen::CfiScheme::None {
        task_sp_pointer().emit_load(
            &mut b,
            Reg::x(9),
            Reg::x(1),
            task_struct::SAVED_SP,
            Reg::x(10),
        );
    } else {
        b.ins(Insn::Ldr {
            rt: Reg::x(9),
            rn: Reg::x(1),
            mode: AddrMode::Unsigned(task_struct::SAVED_SP),
        });
    }
    b.ins(Insn::mov_sp(Reg::Sp, Reg::x(9)));
    // Touch the incoming stack through the just-installed SP: if the
    // authentication above failed, SP now carries the error code in its
    // extension bits and this load faults *inside* the switch — the
    // forged saved SP is detected on use, not left to lie dormant.
    b.ins(Insn::Ldr {
        rt: Reg::x(10),
        rn: Reg::Sp,
        mode: AddrMode::Unsigned(0),
    });
    for i in 0..5u8 {
        b.ins(Insn::Ldp {
            rt: Reg::x(19 + 2 * i),
            rt2: Reg::x(20 + 2 * i),
            rn: Reg::x(1),
            mode: PairMode::SignedOffset(cc + 16 * i16::from(i)),
        });
    }
    b.ins(Insn::Ldp {
        rt: Reg::FP,
        rt2: Reg::LR,
        rn: Reg::x(1),
        mode: PairMode::SignedOffset(cc + 80),
    });
    b.ins(Insn::Msr {
        sr: SysReg::TpidrEl1,
        rt: Reg::x(1),
    });
    b.ins(Insn::ret());
    b.build()
}

/// `task_init_sp(task=x0, sp=x1)`: fork-time seeding of the signed saved
/// SP, run as kernel code so the signing uses the PAuth instructions.
fn build_task_init_sp(cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new("task_init_sp", cfg).naked();
    b.ins(Insn::mov(Reg::x(9), Reg::x(1)));
    if cfg.scheme != camo_codegen::CfiScheme::None {
        task_sp_pointer().emit_store(
            &mut b,
            Reg::x(9),
            Reg::x(0),
            task_struct::SAVED_SP,
            Reg::x(10),
        );
    } else {
        b.ins(Insn::Str {
            rt: Reg::x(9),
            rn: Reg::x(0),
            mode: AddrMode::Unsigned(task_struct::SAVED_SP),
        });
    }
    b.ins(Insn::ret());
    b.build()
}

/// `sign_slot_db(obj=x0, slot=x1, const=x2)` and the IA twin: the §4.6
/// in-kernel signing helpers used by the module loader and `INIT_WORK`.
fn build_sign_slot(name: &str, key: PacKey, cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new(name, cfg).naked();
    b.ins(Insn::Ldr {
        rt: Reg::x(9),
        rn: Reg::x(1),
        mode: AddrMode::Unsigned(0),
    });
    if cfg.protect_pointers {
        if cfg.compat_v80 {
            // §5.5: only the hint-space PACIB1716 exists pre-8.3; route the
            // value through x17 and the modifier through x16.
            b.ins(Insn::mov(Reg::IP1, Reg::x(9)));
            b.ins(Insn::mov(Reg::IP0, Reg::x(2)));
            b.ins(Insn::bfi(Reg::IP0, Reg::x(0), 16, 48));
            b.ins(Insn::Pac1716 {
                key: camo_isa::InsnKey::B,
            });
            b.ins(Insn::mov(Reg::x(9), Reg::IP1));
        } else {
            // modifier = const ‖ low48(obj): mov x10, x2; bfi x10, x0, #16, #48
            b.ins(Insn::mov(Reg::x(10), Reg::x(2)));
            b.ins(Insn::bfi(Reg::x(10), Reg::x(0), 16, 48));
            b.ins(Insn::Pac {
                key,
                rd: Reg::x(9),
                rn: Reg::x(10),
            });
        }
    }
    b.ins(Insn::Str {
        rt: Reg::x(9),
        rn: Reg::x(1),
        mode: AddrMode::Unsigned(0),
    });
    b.ins(Insn::ret());
    b.build()
}

/// `run_work(work=x0)`: authenticate the lone `func` pointer and call it
/// (§4.4 forward-edge CFI on a writable function pointer).
fn build_run_work(cfg: CodegenConfig) -> Function {
    let mut b = FunctionBuilder::new("run_work", cfg).locals(16);
    work_func_pointer().emit_load(
        &mut b,
        Reg::x(8),
        Reg::x(0),
        layout::work_struct::FUNC,
        Reg::x(9),
    );
    b.ins(Insn::Blr { rn: Reg::x(8) });
    b.build()
}

/// Builds `sys_<name>` plus its call chain.
fn build_syscall_fns(program: &mut Program, spec: &SyscallSpec, cfg: CodegenConfig) {
    let chain_prefix = format!("{}_sub", spec.name);
    program.append(build_call_chain(
        &chain_prefix,
        spec.depth.saturating_sub(1),
        spec.alu,
        spec.mem,
        cfg,
    ));

    let mut b = FunctionBuilder::new(format!("sys_{}", spec.name), cfg).locals(64);
    // Preserve the dispatcher-provided object pointers across calls.
    b.ins(Insn::mov(Reg::x(19), Reg::x(0))); // file (or first arg)
    b.ins(Insn::mov(Reg::x(20), Reg::x(1))); // ops table (open) / buf
    camo_codegen_body(&mut b, spec.alu / 2, spec.mem / 2);
    b.call(format!("{chain_prefix}_d0_n0"));
    if spec.sign_fops {
        // set_file_ops(file, ops) — sign the fresh ops pointer (§5.3).
        b.ins(Insn::mov(Reg::x(0), Reg::x(19)));
        b.ins(Insn::mov(Reg::x(1), Reg::x(20)));
        f_ops_pointer().emit_store(&mut b, Reg::x(1), Reg::x(0), file_struct::F_OPS, Reg::x(9));
    }
    for &member in spec.fops_calls {
        // file_ops(fp)->member(fp, ...) — Listing 4.
        b.ins(Insn::mov(Reg::x(0), Reg::x(19)));
        f_ops_pointer().emit_call_through(&mut b, Reg::x(0), file_struct::F_OPS, member);
    }
    program.push(b.build());
}

// Small shim: reuse the synthetic body generator from camo-codegen.
fn camo_codegen_body(b: &mut FunctionBuilder, alu: usize, mem: usize) {
    for i in 0..alu {
        b.ins(Insn::AddImm {
            rd: Reg::x(10),
            rn: Reg::x(10),
            imm12: ((i % 63) + 1) as u16,
            shifted: false,
        });
    }
    for i in 0..mem {
        let off = ((i % 8) * 8) as u16;
        b.ins(Insn::Str {
            rt: Reg::x(10),
            rn: Reg::Sp,
            mode: AddrMode::Unsigned(off),
        });
        b.ins(Insn::Ldr {
            rt: Reg::x(11),
            rn: Reg::Sp,
            mode: AddrMode::Unsigned(off),
        });
    }
}

/// Builds the device driver functions targeted by the ops tables.
fn build_drivers(program: &mut Program, cfg: CodegenConfig) {
    for (name, alu, mem) in [
        ("dev_llseek", 4usize, 1usize),
        ("dev_read", 10, 6),
        ("dev_write", 10, 6),
        ("dev_poll", 4, 1),
        ("dev_open", 6, 2),
        ("dev_release", 4, 1),
    ] {
        let mut b = FunctionBuilder::new(name, cfg).locals(64);
        camo_codegen_body(&mut b, alu, mem);
        program.push(b.build());
    }
}

/// The complete linked kernel.
#[derive(Debug, Clone)]
pub struct KernelImage {
    image: Image,
    cfg: CodegenConfig,
}

impl KernelImage {
    /// Builds and links the kernel text for `cfg`.
    pub fn build(cfg: CodegenConfig) -> Self {
        let mut program = Program::new(cfg);
        program.define_external("__kernel_key_setter", KEYSETTER_VA);
        program.push(build_el0_sync_entry(cfg));
        program.push(build_el1_sync_entry(cfg));
        program.push(build_irq_entry(cfg));
        program.push(build_ret_to_user(cfg));
        program.push(build_restore_user_keys(cfg));
        program.push(build_syscall_ret_glue(cfg));
        program.push(build_cpu_switch_to(cfg));
        program.push(build_task_init_sp(cfg));
        program.push(build_sign_slot("sign_slot_db", PacKey::DB, cfg));
        program.push(build_sign_slot("sign_slot_ia", PacKey::IA, cfg));
        program.push(build_run_work(cfg));
        build_drivers(&mut program, cfg);
        for spec in SYSCALLS {
            build_syscall_fns(&mut program, spec, cfg);
        }
        KernelImage {
            image: program.link(layout::KERNEL_TEXT_BASE),
            cfg,
        }
    }

    /// The linked image.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// The build configuration.
    pub fn config(&self) -> CodegenConfig {
        self.cfg
    }

    /// Resolves a kernel symbol.
    ///
    /// # Panics
    ///
    /// Panics on unknown symbols — the set is fixed at build time.
    pub fn symbol(&self, name: &str) -> u64 {
        self.image
            .symbol(name)
            .unwrap_or_else(|| panic!("unknown kernel symbol {name}"))
    }
}

/// Builds a user program image: for each `(name, alu, mem)` block spec, a
/// `user_main_<name>` entry that runs `x0` iterations of
/// *block-computation, then one `SVC`* (syscall number in `x1`, first
/// argument in `x2`), ending in the `USER_DONE` upcall.
pub fn build_user_program(blocks: &[(&str, usize, usize)]) -> Program {
    let cfg = CodegenConfig::baseline(); // user space is not kernel-instrumented
    let mut program = Program::new(cfg);
    for &(name, alu, mem) in blocks {
        let mut block = FunctionBuilder::new(format!("user_block_{name}"), cfg).locals(64);
        camo_codegen_body(&mut block, alu, mem);
        program.push(block.build());

        let mut b = FunctionBuilder::new(format!("user_main_{name}"), cfg).naked();
        b.ins(Insn::mov(Reg::x(20), Reg::x(0))); // iterations
        b.ins(Insn::mov(Reg::x(21), Reg::x(1))); // syscall nr
        b.ins(Insn::mov(Reg::x(22), Reg::x(2))); // arg0
                                                 // loop:
        b.call(format!("user_block_{name}")); // index 3
        b.ins(Insn::mov(Reg::x(8), Reg::x(21)));
        b.ins(Insn::mov(Reg::x(0), Reg::x(22)));
        b.ins(Insn::Svc { imm: 0 });
        b.ins(Insn::SubImm {
            rd: Reg::x(20),
            rn: Reg::x(20),
            imm12: 1,
            shifted: false,
        });
        // cbnz x20, loop (loop head is instruction index 3; cbnz is 8).
        b.ins(Insn::Cbnz {
            rt: Reg::x(20),
            offset: -5 * 4,
        });
        b.ins(Insn::Brk {
            imm: upcall::USER_DONE,
        });
        program.push(b.build());
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_codegen::CfiScheme;

    #[test]
    fn image_links_with_all_symbols() {
        let k = KernelImage::build(CodegenConfig::camouflage());
        for sym in [
            "el0_sync_entry",
            "el1_sync_entry",
            "irq_entry",
            "ret_to_user",
            "restore_user_keys",
            "syscall_ret_glue",
            "cpu_switch_to",
            "task_init_sp",
            "run_work",
            "dev_read",
            "sys_getpid",
            "sys_read",
            "sys_select",
            "sys_open_close",
        ] {
            assert!(k.image().symbol(sym).is_some(), "{sym}");
        }
    }

    #[test]
    fn baseline_kernel_contains_no_pauth() {
        let k = KernelImage::build(CodegenConfig::baseline());
        assert!(
            k.image().insns().iter().all(|i| !i.is_pauth()),
            "baseline must be uninstrumented"
        );
    }

    #[test]
    fn full_kernel_signs_and_authenticates() {
        let k = KernelImage::build(CodegenConfig::camouflage());
        let pac = k.image().insns().iter().filter(|i| i.is_pauth()).count();
        assert!(pac > 50, "expected plenty of PAuth instructions, got {pac}");
    }

    #[test]
    fn backward_only_kernel_has_no_data_key_ops() {
        let cfg = CodegenConfig {
            scheme: CfiScheme::Camouflage,
            protect_pointers: false,
            compat_v80: false,
        };
        let k = KernelImage::build(cfg);
        assert!(k.image().insns().iter().all(|i| !matches!(
            i,
            Insn::Pac {
                key: PacKey::DB,
                ..
            } | Insn::Aut {
                key: PacKey::DB,
                ..
            }
        )));
    }

    #[test]
    fn entry_calls_key_setter_only_when_protected() {
        let protected = KernelImage::build(CodegenConfig::camouflage());
        let baseline = KernelImage::build(CodegenConfig::baseline());
        let count_bl_to_setter = |img: &KernelImage| {
            let entry = img.symbol("el0_sync_entry");
            img.image()
                .insns()
                .iter()
                .enumerate()
                .filter(|(i, insn)| {
                    if let Insn::Bl { offset } = insn {
                        let va = img.image().base_va() + 4 * *i as u64;
                        va >= entry && va.wrapping_add(*offset as i64 as u64) == KEYSETTER_VA
                    } else {
                        false
                    }
                })
                .count()
        };
        assert_eq!(count_bl_to_setter(&protected), 1);
        assert_eq!(count_bl_to_setter(&baseline), 0);
    }

    #[test]
    fn syscall_table_covers_lmbench_set() {
        assert_eq!(SYSCALLS.len(), 11);
        assert!(syscall_by_nr(172).is_some());
        assert!(syscall_by_nr(63).is_some());
        assert_eq!(syscall_by_nr(9999), None);
        // select performs ten ops dispatches (10 fds).
        assert_eq!(syscall_by_nr(72).unwrap().fops_calls.len(), 10);
    }

    #[test]
    fn user_program_builds_and_links() {
        let p = build_user_program(&[("small", 16, 2), ("big", 200, 40)]);
        let image = p.link(layout::USER_TEXT_BASE);
        assert!(image.symbol("user_main_small").is_some());
        assert!(image.symbol("user_block_big").is_some());
        // User code carries no kernel instrumentation.
        assert!(image.insns().iter().all(|i| !i.is_pauth()));
    }
}
