//! Kernel objects: tasks, the file table, operations tables, and the
//! PAC-failure policy.

use crate::layout::{self, file_operations};
use camo_cpu::pac::KeyClass;
use camo_mem::TableId;
use camo_qarma::QarmaKey;
use std::collections::HashMap;

/// Task identifier.
pub type Tid = u32;

/// Host-side bookkeeping for one kernel task (the parts of `task_struct`
/// that are not security-relevant live here; the signed saved SP, the
/// callee-saved context, and the user keys live in simulated memory).
#[derive(Debug, Clone)]
pub struct Task {
    /// Task id.
    pub tid: Tid,
    /// Human-readable name.
    pub name: String,
    /// The process's user-half translation table.
    pub user_table: TableId,
    /// Whether the task is schedulable (false once killed).
    pub alive: bool,
    /// The per-thread user PAuth keys (also written into the simulated
    /// `thread_struct`): IB, IA, DB.
    pub user_keys: [QarmaKey; 3],
    /// The CPU this task is currently queued on (its runqueue home;
    /// updated by migration).
    pub cpu: usize,
    /// PAC authentication failures observed while this task was current —
    /// per-task forensic accounting (§6.2.3). The §5.4 panic threshold is
    /// tripped by the *cluster-wide* total, not this counter.
    pub pac_failures: u32,
}

impl Task {
    /// The simulated `task_struct` address.
    pub fn struct_va(&self) -> u64 {
        layout::task_struct_va(self.tid)
    }

    /// Top of this task's kernel stack.
    pub fn stack_top(&self) -> u64 {
        layout::stack_top(self.tid)
    }

    /// The `pt_regs` address on this task's kernel stack.
    pub fn ptregs_va(&self) -> u64 {
        self.stack_top() - u64::from(layout::PT_REGS_SIZE)
    }
}

/// The backing "device" behind an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// `/dev/zero`-like source.
    DevZero,
    /// `/dev/null`-like sink.
    DevNull,
    /// An in-memory pipe end.
    Pipe,
}

impl FileKind {
    /// All table kinds, in rodata layout order.
    pub const ALL: [FileKind; 3] = [FileKind::DevZero, FileKind::DevNull, FileKind::Pipe];

    /// The VA of this kind's read-only `file_operations` table.
    pub fn ops_va(self) -> u64 {
        let index = match self {
            FileKind::DevZero => 0,
            FileKind::DevNull => 1,
            FileKind::Pipe => 2,
        };
        layout::RODATA_BASE + index * file_operations::SIZE
    }
}

/// The global descriptor table (simplified: one namespace).
#[derive(Debug, Default)]
pub struct FileTable {
    files: HashMap<u64, u64>,
    next_fd: u64,
}

impl FileTable {
    /// Creates an empty table; fds start at 3 (0-2 reserved).
    pub fn new() -> Self {
        FileTable {
            files: HashMap::new(),
            next_fd: 3,
        }
    }

    /// Registers an open file object, returning its fd.
    pub fn insert(&mut self, file_va: u64) -> u64 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.files.insert(fd, file_va);
        fd
    }

    /// The file object behind `fd`.
    pub fn get(&self, fd: u64) -> Option<u64> {
        self.files.get(&fd).copied()
    }

    /// Closes `fd`.
    pub fn remove(&mut self, fd: u64) -> Option<u64> {
        self.files.remove(&fd)
    }

    /// Number of open files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether no files are open.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// The §5.4 brute-force mitigation policy.
///
/// "Consecutive pointer authentication failures must therefore be limited.
/// … We change the kernel configuration to halt after a limited number of
/// PAuth failures have occurred."
#[derive(Debug, Clone)]
pub struct PacPolicy {
    threshold: u32,
    failures: u32,
}

impl PacPolicy {
    /// Creates a policy that panics after `threshold` failures.
    pub fn new(threshold: u32) -> Self {
        PacPolicy {
            threshold,
            failures: 0,
        }
    }

    /// Records one PAC authentication failure.
    ///
    /// Returns `true` when the halt threshold has been reached.
    pub fn record_failure(&mut self) -> bool {
        self.failures += 1;
        self.failures >= self.threshold
    }

    /// Failures recorded so far.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

/// Events logged by the kernel (every PAC failure is logged so "vulnerable
/// code paths can be fixed", §6.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelEvent {
    /// A PAC authentication failure was detected via its fault signature.
    PacFailure {
        /// Faulting (corrupted) address.
        far: u64,
        /// PC of the faulting use.
        elr: u64,
        /// Task that was running.
        tid: Tid,
        /// CPU that observed the failure (all cores feed the same §5.4
        /// panic threshold).
        cpu: usize,
        /// Which key class produced the failure signature, recovered from
        /// the error code in the faulting address — instruction keys for
        /// forged code pointers, data keys for forged signed fields.
        kind: KeyClass,
    },
    /// A kernel-mode fault that did not look like a PAC failure.
    KernelFault {
        /// Faulting address.
        far: u64,
        /// Task that was running.
        tid: Tid,
    },
    /// A task was killed (`SIGKILL` on kernel fault, §5.4).
    TaskKilled {
        /// The killed task.
        tid: Tid,
    },
    /// A module failed §4.1 verification and was rejected.
    ModuleRejected {
        /// Number of violations found.
        violations: usize,
    },
    /// A task moved to another CPU's runqueue (migration or balancing).
    TaskMigrated {
        /// The migrated task.
        tid: Tid,
        /// Source CPU.
        from: usize,
        /// Destination CPU.
        to: usize,
    },
    /// A task exited gracefully (`exit()`, as opposed to being killed);
    /// its tid returns to the free pool for reuse by a later `fork`.
    TaskExited {
        /// The exiting task.
        tid: Tid,
    },
    /// A module was unloaded: its text unmapped (with the TLB-generation
    /// bump acting as the shootdown) and its load slot freed for reuse.
    ModuleUnloaded {
        /// The unloaded module's base VA.
        base_va: u64,
    },
    /// A dead (killed) task's entry was reaped after forensic inspection;
    /// its tid returns to the free pool like a graceful exit's.
    TaskReaped {
        /// The reaped task.
        tid: Tid,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_numbering_starts_at_three() {
        let mut t = FileTable::new();
        assert_eq!(t.insert(0xffff_0000_0000_1000), 3);
        assert_eq!(t.insert(0xffff_0000_0000_1040), 4);
        assert_eq!(t.get(3), Some(0xffff_0000_0000_1000));
        assert_eq!(t.remove(3), Some(0xffff_0000_0000_1000));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn ops_tables_are_distinct_rodata_slots() {
        let mut seen = std::collections::HashSet::new();
        for kind in FileKind::ALL {
            assert!(kind.ops_va() >= layout::RODATA_BASE);
            assert!(seen.insert(kind.ops_va()));
        }
    }

    #[test]
    fn pac_policy_trips_at_threshold() {
        let mut p = PacPolicy::new(3);
        assert!(!p.record_failure());
        assert!(!p.record_failure());
        assert!(p.record_failure());
        assert_eq!(p.failures(), 3);
    }

    #[test]
    fn task_addresses_follow_layout() {
        let task = Task {
            tid: 2,
            name: "t".into(),
            user_table: TableId::from_raw(0),
            alive: true,
            user_keys: [QarmaKey::default(); 3],
            cpu: 0,
            pac_failures: 0,
        };
        assert_eq!(task.struct_va(), layout::task_struct_va(2));
        assert_eq!(task.stack_top(), layout::stack_top(2));
        assert_eq!(
            task.ptregs_va(),
            task.stack_top() - u64::from(layout::PT_REGS_SIZE)
        );
    }
}
