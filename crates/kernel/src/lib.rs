//! Miniature ARM Linux-like kernel for the Camouflage reproduction.
//!
//! This crate assembles the substrates into a bootable machine exhibiting
//! every kernel pattern the paper's design addresses:
//!
//! * **Key management** (§4.1, §5.1): keys are installed on every kernel
//!   entry by *executing* the XOM key setter; user keys are restored from
//!   `thread_struct` on exit. Neither the host-side kernel logic nor the
//!   simulated kernel can read the key values.
//! * **Syscall machinery**: full simulated round trips — user `SVC`,
//!   vectored entry, `pt_regs` save, key switch, instrumented call chains,
//!   Listing 4 operations dispatch, `pt_regs` restore, `ERET`.
//! * **Backward-edge CFI** (§4.2, §5.2): every generated kernel function
//!   carries the configured prologue/epilogue; `cpu_switch_to` signs and
//!   authenticates the saved stack pointers of scheduled-out tasks.
//! * **Forward-edge CFI + DFI** (§4.4, §4.5): `struct file::f_ops` and
//!   `work_struct::func` are signed at initialisation and authenticated at
//!   every use; ops tables live in hypervisor-sealed rodata.
//! * **Run-time linkage** (§4.6): module static-pointer tables are signed
//!   in place by kernel code at load time, after §4.1 verification.
//! * **Brute-force mitigation** (§5.4): PAC-failure signatures are
//!   counted, logged, kill the offending task, and panic the kernel at the
//!   configured threshold. The failure counter is cluster-global: on a
//!   multi-core machine every core feeds the same threshold.
//! * **SMP** ([`KernelConfig::cpus`]): N cores share one memory system;
//!   each core has its own sysreg file and PAuth key registers, runs the
//!   XOM key setter at boot, and owns a runqueue ([`sched`]). Task
//!   migration carries the `thread_struct` key slots because they live in
//!   shared simulated memory and are restored on the destination core.
//!
//! # Example
//!
//! ```
//! use camo_kernel::{Kernel, KernelConfig};
//!
//! let mut kernel = Kernel::boot(KernelConfig::default())?;
//! let out = kernel.syscall(172, 0)?; // getpid
//! assert_eq!(out.x0, 0);
//! # Ok::<(), camo_kernel::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
mod kernel;
pub mod layout;
mod objects;
pub mod sched;

pub use image::{build_user_program, syscall_by_nr, KernelImage, SyscallSpec, SYSCALLS};
pub use kernel::{
    file_heap_base, work_heap_base, ExecOutcome, FaultInfo, Kernel, KernelConfig, KernelError,
    ModuleHandle,
};
pub use objects::{FileKind, FileTable, KernelEvent, PacPolicy, Task, Tid};
