//! Per-CPU runqueues: task placement, migration, and balancing.
//!
//! The paper's design is inherently per-CPU — each core re-installs the
//! kernel keys on entry and restores the *current task's* user keys on
//! exit, and `thread_struct` key slots follow tasks wherever they are
//! scheduled (§6.1.1). This module supplies the scheduling substrate that
//! makes those statements testable on a simulated multi-core machine:
//! which CPU a task is queued on, how it moves, and how load is balanced.
//!
//! The security-relevant half of migration — the key-slot invariant —
//! needs no code here at all, by design: user keys live in the task's
//! simulated `thread_struct` (shared cluster memory), and every entry to
//! user mode runs `restore_user_keys` *on the CPU doing the entering*. A
//! migrated task therefore gets its own keys on the destination core and
//! the destination core's previous key state is overwritten, whichever
//! cores are involved.

use crate::objects::Tid;
use std::collections::VecDeque;

/// Per-CPU runqueues with deterministic placement and balancing.
#[derive(Debug, Clone)]
pub struct Scheduler {
    queues: Vec<VecDeque<Tid>>,
    migrations: u64,
}

impl Scheduler {
    /// Creates empty runqueues for `cpus` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(cpus: usize) -> Self {
        assert!(cpus > 0, "a cluster has at least one CPU");
        Scheduler {
            queues: vec![VecDeque::new(); cpus],
            migrations: 0,
        }
    }

    /// Number of runqueues (CPUs).
    pub fn cpu_count(&self) -> usize {
        self.queues.len()
    }

    /// Places a new task on the least-loaded CPU (lowest index on ties —
    /// fully deterministic) and returns the chosen CPU.
    pub fn place(&mut self, tid: Tid) -> usize {
        let cpu = (0..self.queues.len())
            .min_by_key(|&i| self.queues[i].len())
            .expect("at least one CPU");
        self.queues[cpu].push_back(tid);
        cpu
    }

    /// The runqueue of `cpu`.
    pub fn queue(&self, cpu: usize) -> &VecDeque<Tid> {
        &self.queues[cpu]
    }

    /// Queue length of `cpu`.
    pub fn len(&self, cpu: usize) -> usize {
        self.queues[cpu].len()
    }

    /// Whether every runqueue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Removes `tid` from whichever runqueue holds it (task exit),
    /// returning the CPU it was queued on.
    pub fn remove(&mut self, tid: Tid) -> Option<usize> {
        for (cpu, q) in self.queues.iter_mut().enumerate() {
            if let Some(pos) = q.iter().position(|&t| t == tid) {
                q.remove(pos);
                return Some(cpu);
            }
        }
        None
    }

    /// Moves `tid` to `to_cpu`'s runqueue, returning the source CPU.
    /// A no-op (returning `None`) if the task is already there or unknown.
    pub fn migrate(&mut self, tid: Tid, to_cpu: usize) -> Option<usize> {
        assert!(to_cpu < self.queues.len(), "no CPU {to_cpu}");
        let from = self.find(tid)?;
        if from == to_cpu {
            return None;
        }
        self.remove(tid);
        self.queues[to_cpu].push_back(tid);
        self.migrations += 1;
        Some(from)
    }

    /// The CPU whose runqueue holds `tid`.
    pub fn find(&self, tid: Tid) -> Option<usize> {
        self.queues.iter().position(|q| q.iter().any(|&t| t == tid))
    }

    /// Round-robin pick: rotates `cpu`'s queue and returns the new head.
    pub fn pick_next(&mut self, cpu: usize) -> Option<Tid> {
        let q = &mut self.queues[cpu];
        if let Some(front) = q.pop_front() {
            q.push_back(front);
        }
        q.front().copied()
    }

    /// Evens out queue lengths: repeatedly moves the tail of the longest
    /// queue to the shortest until they differ by at most one. Returns the
    /// moves performed as `(tid, from, to)`, in order — the caller turns
    /// each into a reschedule IPI.
    pub fn balance(&mut self) -> Vec<(Tid, usize, usize)> {
        let mut moves = Vec::new();
        loop {
            let (mut longest, mut shortest) = (0, 0);
            for i in 0..self.queues.len() {
                if self.queues[i].len() > self.queues[longest].len() {
                    longest = i;
                }
                if self.queues[i].len() < self.queues[shortest].len() {
                    shortest = i;
                }
            }
            if self.queues[longest].len() <= self.queues[shortest].len() + 1 {
                return moves;
            }
            let tid = self.queues[longest].pop_back().expect("longest non-empty");
            self.queues[shortest].push_back(tid);
            self.migrations += 1;
            moves.push((tid, longest, shortest));
        }
    }

    /// Total migrations performed (explicit and balancing).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_least_loaded_lowest_index() {
        let mut s = Scheduler::new(3);
        assert_eq!(s.place(0), 0);
        assert_eq!(s.place(1), 1);
        assert_eq!(s.place(2), 2);
        assert_eq!(s.place(3), 0, "ties break to the lowest index");
        assert_eq!(s.len(0), 2);
    }

    #[test]
    fn single_cpu_always_places_on_zero() {
        let mut s = Scheduler::new(1);
        for tid in 0..8 {
            assert_eq!(s.place(tid), 0);
        }
        assert_eq!(s.len(0), 8);
    }

    #[test]
    fn migrate_moves_between_queues_and_counts() {
        let mut s = Scheduler::new(2);
        s.place(0); // cpu 0
        s.place(1); // cpu 1
        assert_eq!(s.migrate(0, 1), Some(0));
        assert_eq!(s.find(0), Some(1));
        assert_eq!(s.len(0), 0);
        assert_eq!(s.migrations(), 1);
        // Already there: no-op.
        assert_eq!(s.migrate(0, 1), None);
        assert_eq!(s.migrations(), 1);
    }

    #[test]
    fn balance_evens_out_skewed_queues() {
        let mut s = Scheduler::new(4);
        for tid in 0..8 {
            s.place(tid);
        }
        // Skew everything onto CPU 0.
        for tid in 0..8 {
            s.migrate(tid, 0);
        }
        let moves = s.balance();
        assert!(!moves.is_empty());
        for cpu in 0..4 {
            assert_eq!(s.len(cpu), 2, "balanced to 2 per CPU");
        }
        // Deterministic: same input, same moves.
        let mut s2 = Scheduler::new(4);
        for tid in 0..8 {
            s2.place(tid);
        }
        for tid in 0..8 {
            s2.migrate(tid, 0);
        }
        assert_eq!(s2.balance(), moves);
    }

    #[test]
    fn pick_next_round_robins() {
        let mut s = Scheduler::new(1);
        s.place(10);
        s.place(11);
        s.place(12);
        assert_eq!(s.pick_next(0), Some(11));
        assert_eq!(s.pick_next(0), Some(12));
        assert_eq!(s.pick_next(0), Some(10));
        s.remove(11);
        assert_eq!(s.pick_next(0), Some(12));
    }

    #[test]
    fn remove_unknown_is_none() {
        let mut s = Scheduler::new(2);
        assert_eq!(s.remove(9), None);
        assert_eq!(s.find(9), None);
        assert!(s.is_empty());
    }
}
