//! Property tests: QARMA-64 as a tweakable PRP and as a MAC.

use camo_qarma::{compute_mac, Qarma, QarmaKey, Sigma};
use proptest::prelude::*;

fn any_key() -> impl Strategy<Value = QarmaKey> {
    (any::<u64>(), any::<u64>()).prop_map(|(w0, k0)| QarmaKey::new(w0, k0))
}

fn any_sigma() -> impl Strategy<Value = Sigma> {
    prop::sample::select(vec![Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2])
}

proptest! {
    /// Decryption inverts encryption for every key, tweak, and S-box.
    #[test]
    fn decrypt_inverts_encrypt(
        key in any_key(),
        sigma in any_sigma(),
        rounds in 1usize..=7,
        pt in any::<u64>(),
        tweak in any::<u64>(),
    ) {
        let cipher = Qarma::new(key, sigma, rounds);
        prop_assert_eq!(cipher.decrypt(cipher.encrypt(pt, tweak), tweak), pt);
    }

    /// Encryption under a fixed (key, tweak) is injective: two distinct
    /// plaintexts never collide (PRP property, spot-checked).
    #[test]
    fn encryption_is_injective(
        key in any_key(),
        tweak in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assume!(a != b);
        let cipher = Qarma::new(key, Sigma::Sigma1, 5);
        prop_assert_ne!(cipher.encrypt(a, tweak), cipher.encrypt(b, tweak));
    }

    /// The MAC changes when the modifier changes (with overwhelming
    /// probability — a fixed 32-bit collision would fail the test run).
    #[test]
    fn mac_separates_modifiers(
        key in any_key(),
        data in any::<u64>(),
        m1 in any::<u64>(),
        m2 in any::<u64>(),
    ) {
        prop_assume!(m1 != m2);
        // Tolerate genuine 32-bit collisions at the expected ~2^-32 rate by
        // checking a second data point on collision.
        if compute_mac(data, m1, key) == compute_mac(data, m2, key) {
            prop_assert_ne!(
                compute_mac(data.wrapping_add(1), m1, key),
                compute_mac(data.wrapping_add(1), m2, key),
                "double collision: modifiers are not separated"
            );
        }
    }

    /// MAC is a pure function of (data, modifier, key).
    #[test]
    fn mac_is_deterministic(key in any_key(), data in any::<u64>(), modifier in any::<u64>()) {
        prop_assert_eq!(compute_mac(data, modifier, key), compute_mac(data, modifier, key));
    }
}
