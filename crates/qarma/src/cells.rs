//! Nibble-cell state representation shared by the QARMA round functions.
//!
//! QARMA-64 operates on a 4×4 matrix of 4-bit cells. Cell 0 holds the most
//! significant nibble of the 64-bit word, cell 15 the least significant, and
//! the matrix is indexed row-major: cell `4*row + col`.

/// The 4×4 nibble state of QARMA-64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Cells(pub [u8; 16]);

impl Cells {
    /// Unpacks a 64-bit word into 16 nibbles, most significant first.
    pub fn from_u64(x: u64) -> Self {
        let mut cells = [0u8; 16];
        for (i, cell) in cells.iter_mut().enumerate() {
            *cell = ((x >> (4 * (15 - i))) & 0xF) as u8;
        }
        Cells(cells)
    }

    /// Packs the 16 nibbles back into a 64-bit word.
    pub fn to_u64(self) -> u64 {
        self.0
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &c)| acc | (u64::from(c) << (4 * (15 - i))))
    }

    /// Applies a cell permutation: `out[i] = self[perm[i]]`.
    pub fn permute(self, perm: &[usize; 16]) -> Self {
        let mut out = [0u8; 16];
        for (i, &p) in perm.iter().enumerate() {
            out[i] = self.0[p];
        }
        Cells(out)
    }

    /// Applies the inverse of a cell permutation: `out[perm[i]] = self[i]`.
    pub fn permute_inv(self, perm: &[usize; 16]) -> Self {
        let mut out = [0u8; 16];
        for (i, &p) in perm.iter().enumerate() {
            out[p] = self.0[i];
        }
        Cells(out)
    }

    /// Applies a nibble substitution box to every cell.
    pub fn sub_cells(self, sbox: &[u8; 16]) -> Self {
        let mut out = self.0;
        for cell in &mut out {
            *cell = sbox[usize::from(*cell)];
        }
        Cells(out)
    }

    /// Multiplies the state by the involutory circulant matrix `m`.
    ///
    /// Matrix entries are rotation amounts in the ring of 4-bit nibble
    /// rotations; an entry of 0 contributes nothing (the matrix diagonal).
    pub fn mix_columns(self, m: &[u8; 16]) -> Self {
        let mut out = [0u8; 16];
        for row in 0..4 {
            for col in 0..4 {
                let mut acc = 0u8;
                for j in 0..4 {
                    let rot = m[4 * row + j];
                    if rot != 0 {
                        acc ^= rotl4(self.0[4 * j + col], rot);
                    }
                }
                out[4 * row + col] = acc;
            }
        }
        Cells(out)
    }

    /// XORs a 64-bit round tweakey into the state, nibble-wise.
    pub fn add_round_tweakey(self, tk: u64) -> Self {
        let mut out = self.0;
        for (i, cell) in out.iter_mut().enumerate() {
            *cell ^= ((tk >> (4 * (15 - i))) & 0xF) as u8;
        }
        Cells(out)
    }
}

/// Rotates a 4-bit nibble left by `r` bits (`r` in `1..=3`).
fn rotl4(x: u8, r: u8) -> u8 {
    debug_assert!(r >= 1 && r <= 3);
    ((x << r) | (x >> (4 - r))) & 0xF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64() {
        for &x in &[0u64, u64::MAX, 0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210] {
            assert_eq!(Cells::from_u64(x).to_u64(), x);
        }
    }

    #[test]
    fn cell_zero_is_most_significant_nibble() {
        let c = Cells::from_u64(0xA000_0000_0000_0003);
        assert_eq!(c.0[0], 0xA);
        assert_eq!(c.0[15], 0x3);
    }

    #[test]
    fn permute_then_inverse_is_identity() {
        let perm = [0usize, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2];
        let c = Cells::from_u64(0x0123_4567_89ab_cdef);
        assert_eq!(c.permute(&perm).permute_inv(&perm), c);
    }

    #[test]
    fn rotl4_cases() {
        assert_eq!(rotl4(0b0001, 1), 0b0010);
        assert_eq!(rotl4(0b1000, 1), 0b0001);
        assert_eq!(rotl4(0b1001, 2), 0b0110);
        assert_eq!(rotl4(0b1111, 3), 0b1111);
    }

    #[test]
    fn mix_columns_is_involutory() {
        // The QARMA-64 matrix M = circ(0, ρ, ρ², ρ) is an involution.
        let m = [0u8, 1, 2, 1, 1, 0, 1, 2, 2, 1, 0, 1, 1, 2, 1, 0];
        let c = Cells::from_u64(0xdead_beef_cafe_f00d);
        assert_eq!(c.mix_columns(&m).mix_columns(&m), c);
    }

    #[test]
    fn add_round_tweakey_is_self_inverse() {
        let c = Cells::from_u64(0x1111_2222_3333_4444);
        let tk = 0x9999_8888_7777_6666;
        assert_eq!(c.add_round_tweakey(tk).add_round_tweakey(tk), c);
    }
}
