//! QARMA-64 tweakable block cipher.
//!
//! QARMA (Avanzi, *IACR Transactions on Symmetric Cryptology*, 2017) is the
//! reference algorithm behind the ARMv8.3 pointer-authentication (PAuth)
//! extension: the pointer authentication code (PAC) is the truncated output
//! of QARMA keyed with one of the five PAuth keys, taking the pointer as the
//! plaintext block and the *modifier* as the tweak.
//!
//! This crate implements QARMA-64 (64-bit block, 128-bit key, 64-bit tweak)
//! with all three of the paper's S-boxes (σ₀, σ₁, σ₂) and is validated
//! against the published test vectors. It is the cryptographic substrate for
//! the `camo-cpu` PAuth implementation.
//!
//! # Example
//!
//! ```
//! use camo_qarma::{Qarma, QarmaKey, Sigma};
//!
//! let key = QarmaKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
//! let cipher = Qarma::new(key, Sigma::Sigma1, 5);
//! let ct = cipher.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762);
//! assert_eq!(ct, 0x544b0ab95bda7c3a);
//! assert_eq!(cipher.decrypt(ct, 0x477d469dec0b8762), 0xfb623599da6e8127);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod cipher;

pub use cipher::{Qarma, QarmaKey, Sigma, PAC_ROUNDS};

/// Computes a 32-bit truncated MAC over `data` with tweak `modifier`.
///
/// This mirrors the ARM pseudocode `ComputePAC(X, Y, key)`: the full QARMA-64
/// ciphertext is computed and the *top* 32 bits are returned as the MAC from
/// which PAC bits are drawn. The ARM architecture leaves the exact truncation
/// implementation-defined; taking the high half matches the reference
/// behaviour of discarding "extraneous MAC bits" from the low end.
///
/// # Example
///
/// ```
/// use camo_qarma::{compute_mac, QarmaKey};
/// let key = QarmaKey::new(1, 2);
/// let m1 = compute_mac(0xffff_0000_1234_5678, 42, key);
/// let m2 = compute_mac(0xffff_0000_1234_5678, 43, key);
/// assert_ne!(m1, m2, "modifier must affect the MAC");
/// ```
pub fn compute_mac(data: u64, modifier: u64, key: QarmaKey) -> u32 {
    Qarma::new(key, Sigma::Sigma1, PAC_ROUNDS).mac(data, modifier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_is_deterministic() {
        let key = QarmaKey::new(0xdead_beef, 0xfeed_face);
        assert_eq!(compute_mac(1, 2, key), compute_mac(1, 2, key));
    }

    #[test]
    fn mac_depends_on_all_inputs() {
        let key = QarmaKey::new(0xdead_beef, 0xfeed_face);
        let base = compute_mac(1, 2, key);
        assert_ne!(base, compute_mac(3, 2, key));
        assert_ne!(base, compute_mac(1, 4, key));
        assert_ne!(base, compute_mac(1, 2, QarmaKey::new(0xdead_beef, 0)));
        assert_ne!(base, compute_mac(1, 2, QarmaKey::new(0, 0xfeed_face)));
    }
}
