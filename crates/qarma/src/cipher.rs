//! The QARMA-64 cipher core: round functions, tweak schedule, reflector.

use crate::cells::Cells;
use core::fmt;

/// Round count used for PAC computation.
///
/// The QARMA paper recommends r = 5 for QARMA-64 in pointer-authentication
/// use ("QARMA-64-σ₁ with 5 rounds"); the published test vectors also use
/// r = 5.
pub const PAC_ROUNDS: usize = 5;

/// The reflection constant α.
const ALPHA: u64 = 0xC0AC_29B7_C97C_50DD;

/// Round constants c₀..c₇ (digits of π, as in the paper).
const C: [u64; 8] = [
    0x0000_0000_0000_0000,
    0x1319_8A2E_0370_7344,
    0xA409_3822_299F_31D0,
    0x082E_FA98_EC4E_6C89,
    0x4528_21E6_38D0_1377,
    0xBE54_66CF_34E9_0C6C,
    0x3F84_D5B5_B547_0917,
    0x9216_D5D9_8979_FB1B,
];

/// Cell shuffle τ (a MIDORI-style permutation).
const TAU: [usize; 16] = [0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2];

/// Tweak cell permutation h.
const H: [usize; 16] = [6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11];

/// Tweak cells advanced by the LFSR ω on each tweak-schedule step.
const LFSR_CELLS: [usize; 7] = [0, 1, 3, 4, 8, 11, 13];

/// The involutory MixColumns matrix M = Q = circ(0, ρ¹, ρ², ρ¹).
const M: [u8; 16] = [0, 1, 2, 1, 1, 0, 1, 2, 2, 1, 0, 1, 1, 2, 1, 0];

/// σ₀ S-box.
const SIGMA0: [u8; 16] = [0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5];
/// σ₁ S-box (the recommended one, used by the reference PAuth design).
const SIGMA1: [u8; 16] = [10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4];
/// σ₂ S-box.
const SIGMA2: [u8; 16] = [11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10];

/// Selects which of the three QARMA S-boxes the cipher uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sigma {
    /// σ₀ — cheapest, lowest latency.
    Sigma0,
    /// σ₁ — the paper's recommendation and the PAuth reference choice.
    #[default]
    Sigma1,
    /// σ₂ — highest cryptographic margin.
    Sigma2,
}

impl Sigma {
    fn table(self) -> &'static [u8; 16] {
        match self {
            Sigma::Sigma0 => &SIGMA0,
            Sigma::Sigma1 => &SIGMA1,
            Sigma::Sigma2 => &SIGMA2,
        }
    }

    fn inverse_table(self) -> [u8; 16] {
        let mut inv = [0u8; 16];
        for (i, &v) in self.table().iter().enumerate() {
            inv[usize::from(v)] = i as u8;
        }
        inv
    }
}

impl fmt::Display for Sigma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sigma::Sigma0 => write!(f, "sigma0"),
            Sigma::Sigma1 => write!(f, "sigma1"),
            Sigma::Sigma2 => write!(f, "sigma2"),
        }
    }
}

/// A 128-bit QARMA key, split into the whitening half `w0` and core half `k0`.
///
/// This maps one-to-one onto an ARMv8.3 PAuth key, which occupies a pair of
/// 64-bit system registers (e.g. `APIBKeyLo_EL1`/`APIBKeyHi_EL1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct QarmaKey {
    /// Whitening key w⁰.
    pub w0: u64,
    /// Core key k⁰.
    pub k0: u64,
}

impl QarmaKey {
    /// Creates a key from its whitening and core halves.
    ///
    /// # Example
    ///
    /// ```
    /// use camo_qarma::QarmaKey;
    /// let key = QarmaKey::new(0x0123, 0x4567);
    /// assert_eq!(key.w0, 0x0123);
    /// assert_eq!(key.k0, 0x4567);
    /// ```
    pub fn new(w0: u64, k0: u64) -> Self {
        QarmaKey { w0, k0 }
    }

    /// Builds a key from a 128-bit value, low half = `w0`, high half = `k0`.
    pub fn from_u128(v: u128) -> Self {
        QarmaKey {
            w0: v as u64,
            k0: (v >> 64) as u64,
        }
    }

    /// Packs the key into a 128-bit value, low half = `w0`, high half = `k0`.
    #[inline]
    pub fn to_u128(self) -> u128 {
        u128::from(self.w0) | (u128::from(self.k0) << 64)
    }
}

/// A QARMA-64 cipher instance: key, S-box choice, and round count.
///
/// Construction derives the full **key schedule** once — the second
/// whitening key w¹, the per-round core keys k⁰ ⊕ cᵢ (and their ALPHA
/// variants for the backward half), and the inverse S-box. A warm `Qarma`
/// therefore amortizes all key-dependent derivation across calls, which is
/// what the CPU layer's PAC unit exploits by caching one instance per
/// PAuth key instead of re-deriving the schedule on every sign/auth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Qarma {
    key: QarmaKey,
    sigma: Sigma,
    rounds: usize,
    sbox: [u8; 16],
    sbox_inv: [u8; 16],
    /// Precomputed second whitening key w¹ = (w⁰ ≫ 1) ⊕ (w⁰ ≫ 63).
    w1: u64,
    /// Precomputed forward round keys k⁰ ⊕ cᵢ.
    fwd_keys: [u64; 8],
    /// Precomputed backward round keys k⁰ ⊕ cᵢ ⊕ α.
    bwd_keys: [u64; 8],
}

impl Qarma {
    /// Creates a cipher with `rounds` forward (and backward) rounds,
    /// deriving the key schedule eagerly.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is 0 or greater than 8 (no round constants are
    /// defined past c₇).
    pub fn new(key: QarmaKey, sigma: Sigma, rounds: usize) -> Self {
        assert!(
            rounds >= 1 && rounds <= C.len(),
            "QARMA-64 supports 1..=8 rounds, got {rounds}"
        );
        let mut fwd_keys = [0u64; 8];
        let mut bwd_keys = [0u64; 8];
        for i in 0..C.len() {
            fwd_keys[i] = key.k0 ^ C[i];
            bwd_keys[i] = key.k0 ^ C[i] ^ ALPHA;
        }
        Qarma {
            key,
            sigma,
            rounds,
            sbox: *sigma.table(),
            sbox_inv: sigma.inverse_table(),
            w1: derive_w1(key.w0),
            fwd_keys,
            bwd_keys,
        }
    }

    /// The cipher's key.
    pub fn key(&self) -> QarmaKey {
        self.key
    }

    /// The cipher's S-box selection.
    pub fn sigma(&self) -> Sigma {
        self.sigma
    }

    /// The number of forward rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Encrypts one 64-bit block under the 64-bit tweak.
    ///
    /// Uses the round keys precomputed by [`Qarma::new`]; only the
    /// tweak-dependent part of the schedule is derived per call.
    pub fn encrypt(&self, plaintext: u64, tweak: u64) -> u64 {
        let w0 = self.key.w0;
        let w1 = self.w1;
        let k1 = self.key.k0;

        let mut state = plaintext ^ w0;
        let mut t = tweak;

        for i in 0..self.rounds {
            state = self.forward(state, self.fwd_keys[i] ^ t, i != 0);
            t = forward_update_tweak(t);
        }

        state = self.forward(state, w1 ^ t, true);
        state = self.pseudo_reflect(state, k1);
        state = self.backward(state, w0 ^ t, true);

        for i in (0..self.rounds).rev() {
            t = backward_update_tweak(t);
            state = self.backward(state, self.bwd_keys[i] ^ t, i != 0);
        }

        state ^ w1
    }

    /// Computes the 32-bit truncated MAC of `data` under tweak `modifier`
    /// on this (warm) cipher instance.
    ///
    /// Identical to [`crate::compute_mac`] but without re-deriving the key
    /// schedule: the free function builds a fresh cipher per call, this
    /// method reuses the one built at construction.
    pub fn mac(&self, data: u64, modifier: u64) -> u32 {
        (self.encrypt(data, modifier) >> 32) as u32
    }

    /// Decrypts one 64-bit block under the 64-bit tweak.
    ///
    /// Implemented as the exact step-by-step inverse of [`Qarma::encrypt`],
    /// so `decrypt(encrypt(p, t), t) == p` holds by construction.
    pub fn decrypt(&self, ciphertext: u64, tweak: u64) -> u64 {
        let w0 = self.key.w0;
        let w1 = self.w1;
        let k0 = self.key.k0;
        let k1 = k0;

        // Recompute the tweak sequence of the forward pass.
        let mut tweaks = Vec::with_capacity(self.rounds + 1);
        let mut t = tweak;
        for _ in 0..self.rounds {
            tweaks.push(t);
            t = forward_update_tweak(t);
        }
        let t_mid = t; // value used around the reflector

        let mut state = ciphertext ^ w1;

        // Undo the backward half (which re-consumed tweaks in reverse).
        let mut t = t_mid;
        let mut back_keys = Vec::with_capacity(self.rounds);
        for i in (0..self.rounds).rev() {
            t = backward_update_tweak(t);
            back_keys.push((k0 ^ t ^ C[i] ^ ALPHA, i != 0));
        }
        for &(rk, full) in back_keys.iter().rev() {
            state = self.backward_inv(state, rk, full);
        }

        state = self.backward_inv(state, w0 ^ t_mid, true);
        state = self.pseudo_reflect_inv(state, k1);
        state = self.forward_inv(state, w1 ^ t_mid, true);

        for i in (0..self.rounds).rev() {
            state = self.forward_inv(state, k0 ^ tweaks[i] ^ C[i], i != 0);
        }

        state ^ w0
    }

    /// One forward round: AddRoundTweakey, then (τ, M) unless short, then S.
    fn forward(&self, state: u64, round_key: u64, full: bool) -> u64 {
        let mut cells = Cells::from_u64(state ^ round_key);
        if full {
            cells = cells.permute(&TAU).mix_columns(&M);
        }
        cells.sub_cells(&self.sbox).to_u64()
    }

    /// Inverse of [`Qarma::forward`].
    fn forward_inv(&self, state: u64, round_key: u64, full: bool) -> u64 {
        let mut cells = Cells::from_u64(state).sub_cells(&self.sbox_inv);
        if full {
            cells = cells.mix_columns(&M).permute_inv(&TAU);
        }
        cells.to_u64() ^ round_key
    }

    /// One backward round: S⁻¹, then (M, τ⁻¹) unless short, then tweakey.
    fn backward(&self, state: u64, round_key: u64, full: bool) -> u64 {
        let mut cells = Cells::from_u64(state).sub_cells(&self.sbox_inv);
        if full {
            cells = cells.mix_columns(&M).permute_inv(&TAU);
        }
        cells.to_u64() ^ round_key
    }

    /// Inverse of [`Qarma::backward`].
    fn backward_inv(&self, state: u64, round_key: u64, full: bool) -> u64 {
        let mut cells = Cells::from_u64(state ^ round_key);
        if full {
            cells = cells.permute(&TAU).mix_columns(&M);
        }
        cells.sub_cells(&self.sbox).to_u64()
    }

    /// The central reflector: τ, Q, add k¹, τ⁻¹.
    fn pseudo_reflect(&self, state: u64, k1: u64) -> u64 {
        Cells::from_u64(state)
            .permute(&TAU)
            .mix_columns(&M)
            .add_round_tweakey(k1)
            .permute_inv(&TAU)
            .to_u64()
    }

    /// Inverse of the reflector (it is an involution up to key order; the
    /// strict inverse reverses the step order).
    fn pseudo_reflect_inv(&self, state: u64, k1: u64) -> u64 {
        Cells::from_u64(state)
            .permute(&TAU)
            .add_round_tweakey(k1)
            .mix_columns(&M)
            .permute_inv(&TAU)
            .to_u64()
    }
}

/// Derives the second whitening key: w¹ = (w⁰ ≫ 1) ⊕ (w⁰ ≫ 63).
fn derive_w1(w0: u64) -> u64 {
    w0.rotate_right(1) ^ (w0 >> 63)
}

/// Advances one tweak cell through the LFSR ω: (b₃b₂b₁b₀) → (b₀⊕b₁, b₃, b₂, b₁).
fn lfsr(x: u8) -> u8 {
    let b0 = x & 1;
    let b1 = (x >> 1) & 1;
    let b2 = (x >> 2) & 1;
    let b3 = (x >> 3) & 1;
    ((b0 ^ b1) << 3) | (b3 << 2) | (b2 << 1) | b1
}

/// Inverse of [`lfsr`].
fn lfsr_inv(x: u8) -> u8 {
    let o0 = x & 1;
    let o1 = (x >> 1) & 1;
    let o2 = (x >> 2) & 1;
    let o3 = (x >> 3) & 1;
    let b1 = o0;
    let b2 = o1;
    let b3 = o2;
    let b0 = o3 ^ b1;
    (b3 << 3) | (b2 << 2) | (b1 << 1) | b0
}

/// One step of the tweak schedule: permute by h, then ω on the LFSR cells.
fn forward_update_tweak(t: u64) -> u64 {
    let mut cells = Cells::from_u64(t).permute(&H);
    for &i in &LFSR_CELLS {
        cells.0[i] = lfsr(cells.0[i]);
    }
    cells.to_u64()
}

/// Inverse tweak-schedule step: ω⁻¹ on the LFSR cells, then h⁻¹.
fn backward_update_tweak(t: u64) -> u64 {
    let mut cells = Cells::from_u64(t);
    for &i in &LFSR_CELLS {
        cells.0[i] = lfsr_inv(cells.0[i]);
    }
    cells.permute_inv(&H).to_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Published QARMA-64 test vectors (Avanzi 2017, Table 5), r = 5:
    //   P = fb623599da6e8127, T = 477d469dec0b8762,
    //   K = w0 ‖ k0 = 84be85ce9804e94b ‖ ec2802d4e0a488e9
    const P: u64 = 0xfb62_3599_da6e_8127;
    const T: u64 = 0x477d_469d_ec0b_8762;
    const W0: u64 = 0x84be_85ce_9804_e94b;
    const K0: u64 = 0xec28_02d4_e0a4_88e9;

    #[test]
    fn published_vector_sigma0() {
        let c = Qarma::new(QarmaKey::new(W0, K0), Sigma::Sigma0, 5);
        assert_eq!(c.encrypt(P, T), 0x3ee9_9a6c_82af_0c38);
    }

    #[test]
    fn published_vector_sigma1() {
        let c = Qarma::new(QarmaKey::new(W0, K0), Sigma::Sigma1, 5);
        assert_eq!(c.encrypt(P, T), 0x544b_0ab9_5bda_7c3a);
    }

    #[test]
    fn published_vector_sigma2() {
        let c = Qarma::new(QarmaKey::new(W0, K0), Sigma::Sigma2, 5);
        assert_eq!(c.encrypt(P, T), 0xc003_b939_99b3_3765);
    }

    #[test]
    fn decrypt_inverts_encrypt_on_vectors() {
        for sigma in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            let c = Qarma::new(QarmaKey::new(W0, K0), sigma, 5);
            let ct = c.encrypt(P, T);
            assert_eq!(c.decrypt(ct, T), P, "{sigma}");
        }
    }

    #[test]
    fn lfsr_roundtrip_all_nibbles() {
        for x in 0u8..16 {
            assert_eq!(lfsr_inv(lfsr(x)), x);
            assert_eq!(lfsr(lfsr_inv(x)), x);
        }
    }

    #[test]
    fn lfsr_is_maximal_period_on_nonzero() {
        // ω is an LFSR with period 15 over the nonzero nibbles.
        let mut x = 1u8;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            assert!(seen.insert(x));
            x = lfsr(x);
        }
        assert_eq!(x, 1);
        assert_eq!(lfsr(0), 0);
    }

    #[test]
    fn tweak_update_roundtrip() {
        for t in [0u64, 1, u64::MAX, T, 0x0123_4567_89ab_cdef] {
            assert_eq!(backward_update_tweak(forward_update_tweak(t)), t);
        }
    }

    #[test]
    fn rounds_out_of_range_panics() {
        let r = std::panic::catch_unwind(|| Qarma::new(QarmaKey::default(), Sigma::Sigma1, 0));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| Qarma::new(QarmaKey::default(), Sigma::Sigma1, 9));
        assert!(r.is_err());
    }

    #[test]
    fn warm_schedule_matches_cold_derivation() {
        // The precomputed schedule must be architecturally invisible: a
        // single warm instance reused across many (data, tweak) pairs must
        // agree with a cipher constructed cold for each call.
        let warm = Qarma::new(QarmaKey::new(W0, K0), Sigma::Sigma1, 5);
        for i in 0..64u64 {
            let data = P.rotate_left(i as u32) ^ i;
            let tweak = T.wrapping_mul(i | 1);
            let cold = Qarma::new(QarmaKey::new(W0, K0), Sigma::Sigma1, 5);
            assert_eq!(warm.encrypt(data, tweak), cold.encrypt(data, tweak));
            assert_eq!(
                warm.mac(data, tweak),
                (cold.encrypt(data, tweak) >> 32) as u32
            );
        }
    }

    #[test]
    fn key_u128_roundtrip() {
        let k = QarmaKey::new(0x1122_3344_5566_7788, 0x99aa_bbcc_ddee_ff00);
        assert_eq!(QarmaKey::from_u128(k.to_u128()), k);
    }

    #[test]
    fn tweak_affects_ciphertext() {
        let c = Qarma::new(QarmaKey::new(W0, K0), Sigma::Sigma1, 5);
        assert_ne!(c.encrypt(P, T), c.encrypt(P, T ^ 1));
    }

    #[test]
    fn avalanche_single_bit_flip() {
        // Flipping one plaintext bit should flip roughly half the output
        // bits; allow a generous band since this is a smoke test.
        let c = Qarma::new(QarmaKey::new(W0, K0), Sigma::Sigma1, 5);
        let base = c.encrypt(P, T);
        let mut total = 0u32;
        for bit in 0..64 {
            total += (base ^ c.encrypt(P ^ (1u64 << bit), T)).count_ones();
        }
        let avg = f64::from(total) / 64.0;
        assert!(avg > 24.0 && avg < 40.0, "avalanche average {avg}");
    }
}
