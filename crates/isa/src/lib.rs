//! AArch64 instruction-set subset for the Camouflage simulator.
//!
//! This crate models the slice of the A64 instruction set that the
//! Camouflage kernel-CFI design exercises: move-immediates (the XOM
//! key-setter is built from `MOVZ`/`MOVK`), arithmetic, bit-field moves
//! (the Listing 3 modifier construction), loads/stores incl. pair forms
//! (frame records), branches, system-register access (`MSR`/`MRS` of the
//! PAuth key registers and `SCTLR_EL1`), and the complete ARMv8.3 PAuth
//! instruction family (`PAC*`, `AUT*`, `XPAC*`, combined and hint-space
//! forms, including the NOP-compatible `*1716` variants used for backward
//! compatibility).
//!
//! Instructions carry **real A64 encodings**: [`encode`] produces the
//! architectural 32-bit words and [`decode`] parses them back. This matters
//! to the reproduction because both the execute-only-memory argument (key
//! material lives in instruction immediates) and the kernel's static module
//! verification (scanning for `MRS <key register>`) operate on machine code,
//! not on a convenient IR.
//!
//! # Example
//!
//! ```
//! use camo_isa::{encode, decode, Insn, Reg};
//!
//! let insn = Insn::Movz { rd: Reg::x(0), imm16: 0xbeef, shift: 1 };
//! let word = encode(&insn);
//! assert_eq!(decode(word), Some(insn));
//! assert_eq!(insn.to_string(), "movz x0, #0xbeef, lsl #16");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod cost;
mod decode;
mod encode;
mod insn;
mod reg;
pub mod sysreg;

pub use asm::{Assembler, CodeBlock, Label};
pub use cost::{cycles, CostModel, PA_ANALOGUE_CYCLES};
pub use decode::{decode, disassemble};
pub use encode::{encode, encode_all};
pub use insn::{AddrMode, Insn, InsnKey, PacKey, PairMode};
pub use reg::Reg;
pub use sysreg::SysReg;

/// The five architectural PAuth keys of ARMv8.3-A.
///
/// Two instruction keys (IA, IB), two data keys (DA, DB) and one generic key
/// (GA). Camouflage uses three of the five: one instruction key for
/// backward-edge CFI, the other for forward-edge CFI, and one data key for
/// data-flow integrity (§4.5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PauthKey {
    /// Instruction key A.
    IA,
    /// Instruction key B.
    IB,
    /// Data key A.
    DA,
    /// Data key B.
    DB,
    /// Generic key (used by `PACGA` only).
    GA,
}

impl PauthKey {
    /// All five keys, in architectural order.
    pub const ALL: [PauthKey; 5] = [
        PauthKey::IA,
        PauthKey::IB,
        PauthKey::DA,
        PauthKey::DB,
        PauthKey::GA,
    ];

    /// Whether this is an instruction key (IA/IB).
    pub fn is_instruction(self) -> bool {
        matches!(self, PauthKey::IA | PauthKey::IB)
    }

    /// Whether this is a data key (DA/DB).
    pub fn is_data(self) -> bool {
        matches!(self, PauthKey::DA | PauthKey::DB)
    }

    /// The pair of system registers holding this 128-bit key (lo, hi).
    pub fn sysregs(self) -> (SysReg, SysReg) {
        match self {
            PauthKey::IA => (SysReg::ApiaKeyLoEl1, SysReg::ApiaKeyHiEl1),
            PauthKey::IB => (SysReg::ApibKeyLoEl1, SysReg::ApibKeyHiEl1),
            PauthKey::DA => (SysReg::ApdaKeyLoEl1, SysReg::ApdaKeyHiEl1),
            PauthKey::DB => (SysReg::ApdbKeyLoEl1, SysReg::ApdbKeyHiEl1),
            PauthKey::GA => (SysReg::ApgaKeyLoEl1, SysReg::ApgaKeyHiEl1),
        }
    }
}

impl core::fmt::Display for PauthKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PauthKey::IA => "IA",
            PauthKey::IB => "IB",
            PauthKey::DA => "DA",
            PauthKey::DB => "DB",
            PauthKey::GA => "GA",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_classes() {
        assert!(PauthKey::IA.is_instruction());
        assert!(PauthKey::IB.is_instruction());
        assert!(PauthKey::DA.is_data());
        assert!(PauthKey::DB.is_data());
        assert!(!PauthKey::GA.is_instruction());
        assert!(!PauthKey::GA.is_data());
    }

    #[test]
    fn each_key_has_distinct_register_pair() {
        let mut seen = std::collections::HashSet::new();
        for key in PauthKey::ALL {
            let (lo, hi) = key.sysregs();
            assert!(seen.insert(lo));
            assert!(seen.insert(hi));
            assert_ne!(lo, hi);
        }
        assert_eq!(seen.len(), 10, "ten key system registers in total");
    }
}
