//! A64 instruction decoder for the modeled subset.
//!
//! [`decode`] is the exact inverse of [`crate::encode`]: any word produced
//! by the encoder decodes back to the original instruction, and any word
//! that decodes re-encodes to itself (both properties are enforced by
//! property tests). Unmodeled words decode to `None`, which the simulator
//! treats as an undefined-instruction fault.

use crate::insn::{AddrMode, Insn, InsnKey, PacKey, PairMode};
use crate::{Reg, SysReg};

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn field_rd(w: u32) -> u8 {
    (w & 0x1F) as u8
}

fn field_rn(w: u32) -> u8 {
    ((w >> 5) & 0x1F) as u8
}

fn field_rt2(w: u32) -> u8 {
    ((w >> 10) & 0x1F) as u8
}

fn field_rm(w: u32) -> u8 {
    ((w >> 16) & 0x1F) as u8
}

fn decode_movewide(w: u32) -> Option<Insn> {
    let rd = Reg::from_field_zr(field_rd(w));
    let imm16 = ((w >> 5) & 0xFFFF) as u16;
    let shift = ((w >> 21) & 0x3) as u8;
    match w & 0xFF80_0000 {
        0x9280_0000 => Some(Insn::Movn { rd, imm16, shift }),
        0xD280_0000 => Some(Insn::Movz { rd, imm16, shift }),
        0xF280_0000 => Some(Insn::Movk { rd, imm16, shift }),
        _ => None,
    }
}

fn decode_addsub_imm(w: u32) -> Option<Insn> {
    let rd = Reg::from_field_sp(field_rd(w));
    let rn = Reg::from_field_sp(field_rn(w));
    let imm12 = ((w >> 10) & 0xFFF) as u16;
    let shifted = (w >> 22) & 1 == 1;
    match w & 0xFF80_0000 {
        0x9100_0000 => Some(Insn::AddImm {
            rd,
            rn,
            imm12,
            shifted,
        }),
        0xD100_0000 => Some(Insn::SubImm {
            rd,
            rn,
            imm12,
            shifted,
        }),
        _ => None,
    }
}

fn decode_reg_op(w: u32) -> Option<Insn> {
    let rd = Reg::from_field_zr(field_rd(w));
    let rn = Reg::from_field_zr(field_rn(w));
    let rm = Reg::from_field_zr(field_rm(w));
    match w & 0xFFE0_FC00 {
        0x8B00_0000 => Some(Insn::AddReg { rd, rn, rm }),
        0xCB00_0000 => Some(Insn::SubReg { rd, rn, rm }),
        0x8A00_0000 => Some(Insn::AndReg { rd, rn, rm }),
        0xAA00_0000 => Some(Insn::OrrReg { rd, rn, rm }),
        0xCA00_0000 => Some(Insn::EorReg { rd, rn, rm }),
        _ => None,
    }
}

fn decode_bitfield(w: u32) -> Option<Insn> {
    let rd = Reg::from_field_zr(field_rd(w));
    let rn = Reg::from_field_zr(field_rn(w));
    let immr = ((w >> 16) & 0x3F) as u8;
    let imms = ((w >> 10) & 0x3F) as u8;
    match w & 0xFFC0_0000 {
        0xB340_0000 => Some(Insn::Bfm { rd, rn, immr, imms }),
        0xD340_0000 => Some(Insn::Ubfm { rd, rn, immr, imms }),
        _ => None,
    }
}

fn decode_ldst_single(w: u32) -> Option<Insn> {
    let rt = Reg::from_field_zr(field_rd(w));
    let rn = Reg::from_field_sp(field_rn(w));
    match w & 0xFFC0_0000 {
        0xF940_0000 => {
            let imm = (((w >> 10) & 0xFFF) * 8) as u16;
            return Some(Insn::Ldr {
                rt,
                rn,
                mode: AddrMode::Unsigned(imm),
            });
        }
        0xF900_0000 => {
            let imm = (((w >> 10) & 0xFFF) * 8) as u16;
            return Some(Insn::Str {
                rt,
                rn,
                mode: AddrMode::Unsigned(imm),
            });
        }
        _ => {}
    }
    let imm9 = sign_extend((w >> 12) & 0x1FF, 9) as i16;
    match w & 0xFFE0_0C00 {
        0xF840_0400 => Some(Insn::Ldr {
            rt,
            rn,
            mode: AddrMode::Post(imm9),
        }),
        0xF840_0C00 => Some(Insn::Ldr {
            rt,
            rn,
            mode: AddrMode::Pre(imm9),
        }),
        0xF800_0400 => Some(Insn::Str {
            rt,
            rn,
            mode: AddrMode::Post(imm9),
        }),
        0xF800_0C00 => Some(Insn::Str {
            rt,
            rn,
            mode: AddrMode::Pre(imm9),
        }),
        _ => None,
    }
}

fn decode_ldst_pair(w: u32) -> Option<Insn> {
    let rt = Reg::from_field_zr(field_rd(w));
    let rt2 = Reg::from_field_zr(field_rt2(w));
    let rn = Reg::from_field_sp(field_rn(w));
    let imm = (sign_extend((w >> 15) & 0x7F, 7) * 8) as i16;
    let (load, mode) = match w & 0xFFC0_0000 {
        0xA940_0000 => (true, PairMode::SignedOffset(imm)),
        0xA900_0000 => (false, PairMode::SignedOffset(imm)),
        0xA9C0_0000 => (true, PairMode::Pre(imm)),
        0xA980_0000 => (false, PairMode::Pre(imm)),
        0xA8C0_0000 => (true, PairMode::Post(imm)),
        0xA880_0000 => (false, PairMode::Post(imm)),
        _ => return None,
    };
    Some(if load {
        Insn::Ldp { rt, rt2, rn, mode }
    } else {
        Insn::Stp { rt, rt2, rn, mode }
    })
}

fn decode_pauth(w: u32) -> Option<Insn> {
    // XPACI/XPACD (fixed rn = 11111).
    if w & 0xFFFF_FBE0 == 0xDAC1_43E0 {
        let rd = Reg::from_field_zr(field_rd(w));
        return Some(if w & 0x400 == 0 {
            Insn::Xpaci { rd }
        } else {
            Insn::Xpacd { rd }
        });
    }
    if w & 0xFFFF_E000 == 0xDAC1_0000 {
        let rd = Reg::from_field_zr(field_rd(w));
        let rn = Reg::from_field_sp(field_rn(w));
        let key = match (w >> 10) & 0x3 {
            0 => PacKey::IA,
            1 => PacKey::IB,
            2 => PacKey::DA,
            _ => PacKey::DB,
        };
        return Some(if w & 0x1000 == 0 {
            Insn::Pac { key, rd, rn }
        } else {
            Insn::Aut { key, rd, rn }
        });
    }
    if w & 0xFFE0_FC00 == 0x9AC0_3000 {
        return Some(Insn::Pacga {
            rd: Reg::from_field_zr(field_rd(w)),
            rn: Reg::from_field_zr(field_rn(w)),
            rm: Reg::from_field_sp(field_rm(w)),
        });
    }
    match w & 0xFFFF_FC00 {
        0xD73F_0800 | 0xD73F_0C00 | 0xD71F_0800 | 0xD71F_0C00 => {
            let key = if w & 0x400 == 0 {
                InsnKey::A
            } else {
                InsnKey::B
            };
            let rn = Reg::from_field_zr(field_rn(w));
            let rm = Reg::from_field_sp(field_rd(w));
            Some(if w & 0x0020_0000 != 0 {
                Insn::Blra { key, rn, rm }
            } else {
                Insn::Bra { key, rn, rm }
            })
        }
        _ => None,
    }
}

fn decode_system(w: u32) -> Option<Insn> {
    let fields = (
        (2 + ((w >> 19) & 1)) as u8,
        ((w >> 16) & 0x7) as u8,
        ((w >> 12) & 0xF) as u8,
        ((w >> 8) & 0xF) as u8,
        ((w >> 5) & 0x7) as u8,
    );
    let rt = Reg::from_field_zr(field_rd(w));
    match w & 0xFFF0_0000 {
        0xD510_0000 => SysReg::from_fields(fields).map(|sr| Insn::Msr { sr, rt }),
        0xD530_0000 => SysReg::from_fields(fields).map(|sr| Insn::Mrs { rt, sr }),
        _ => None,
    }
}

/// Decodes one 32-bit word, returning `None` for unmodeled encodings.
///
/// # Example
///
/// ```
/// use camo_isa::{decode, Insn};
/// assert_eq!(decode(0xD503201F), Some(Insn::Nop));
/// assert_eq!(decode(0xFFFFFFFF), None);
/// ```
pub fn decode(w: u32) -> Option<Insn> {
    // Exact-match words first (hint space, returns, system).
    match w {
        0xD503_201F => return Some(Insn::Nop),
        0xD69F_03E0 => return Some(Insn::Eret),
        0xD503_233F => return Some(Insn::PacSp { key: InsnKey::A }),
        0xD503_237F => return Some(Insn::PacSp { key: InsnKey::B }),
        0xD503_23BF => return Some(Insn::AutSp { key: InsnKey::A }),
        0xD503_23FF => return Some(Insn::AutSp { key: InsnKey::B }),
        0xD503_211F => return Some(Insn::Pac1716 { key: InsnKey::A }),
        0xD503_215F => return Some(Insn::Pac1716 { key: InsnKey::B }),
        0xD503_213F => return Some(Insn::Aut1716 { key: InsnKey::A }),
        0xD503_217F => return Some(Insn::Aut1716 { key: InsnKey::B }),
        0xD65F_0BFF => return Some(Insn::Reta { key: InsnKey::A }),
        0xD65F_0FFF => return Some(Insn::Reta { key: InsnKey::B }),
        _ => {}
    }

    if w & 0x9F00_0000 == 0x1000_0000 {
        let immlo = (w >> 29) & 0x3;
        let immhi = (w >> 5) & 0x7_FFFF;
        let offset = sign_extend((immhi << 2) | immlo, 21);
        return Some(Insn::Adr {
            rd: Reg::from_field_zr(field_rd(w)),
            offset,
        });
    }
    if w & 0xFC00_0000 == 0x1400_0000 {
        return Some(Insn::B {
            offset: sign_extend(w & 0x03FF_FFFF, 26) * 4,
        });
    }
    if w & 0xFC00_0000 == 0x9400_0000 {
        return Some(Insn::Bl {
            offset: sign_extend(w & 0x03FF_FFFF, 26) * 4,
        });
    }
    if w & 0xFF00_0000 == 0xB400_0000 || w & 0xFF00_0000 == 0xB500_0000 {
        let rt = Reg::from_field_zr(field_rd(w));
        let offset = sign_extend((w >> 5) & 0x7_FFFF, 19) * 4;
        return Some(if w & 0x0100_0000 == 0 {
            Insn::Cbz { rt, offset }
        } else {
            Insn::Cbnz { rt, offset }
        });
    }
    match w & 0xFFFF_FC1F {
        0xD61F_0000 => {
            return Some(Insn::Br {
                rn: Reg::from_field_zr(field_rn(w)),
            })
        }
        0xD63F_0000 => {
            return Some(Insn::Blr {
                rn: Reg::from_field_zr(field_rn(w)),
            })
        }
        0xD65F_0000 => {
            return Some(Insn::Ret {
                rn: Reg::from_field_zr(field_rn(w)),
            })
        }
        _ => {}
    }
    if w & 0xFFE0_001F == 0xD400_0001 {
        return Some(Insn::Svc {
            imm: ((w >> 5) & 0xFFFF) as u16,
        });
    }
    if w & 0xFFE0_001F == 0xD420_0000 {
        return Some(Insn::Brk {
            imm: ((w >> 5) & 0xFFFF) as u16,
        });
    }

    decode_movewide(w)
        .or_else(|| decode_addsub_imm(w))
        .or_else(|| decode_reg_op(w))
        .or_else(|| decode_bitfield(w))
        .or_else(|| decode_ldst_single(w))
        .or_else(|| decode_ldst_pair(w))
        .or_else(|| decode_pauth(w))
        .or_else(|| decode_system(w))
}

/// Disassembles a sequence of little-endian words into assembly text.
///
/// Unmodeled words render as `.inst 0x????????`, mirroring how a real
/// toolchain prints unknown encodings.
pub fn disassemble(words: &[u32]) -> Vec<String> {
    words
        .iter()
        .map(|&w| match decode(w) {
            Some(insn) => insn.to_string(),
            None => format!(".inst {w:#010x}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn decodes_well_known_words() {
        assert_eq!(decode(0xD503_201F), Some(Insn::Nop));
        assert_eq!(decode(0xD65F_03C0), Some(Insn::ret()));
        assert_eq!(
            decode(0xA9BF_7BFD),
            Some(Insn::Stp {
                rt: Reg::FP,
                rt2: Reg::LR,
                rn: Reg::Sp,
                mode: PairMode::Pre(-16),
            })
        );
    }

    #[test]
    fn undefined_words_decode_to_none() {
        assert_eq!(decode(0x0000_0000), None);
        assert_eq!(decode(0xFFFF_FFFF), None);
        // An MRS of an unmodeled register is also undefined here.
        assert_eq!(decode(0xD53F_FFE0), None);
    }

    #[test]
    fn round_trip_representative_sample() {
        let sample = [
            Insn::Movz {
                rd: Reg::x(9),
                imm16: 0xfb45,
                shift: 0,
            },
            Insn::Movk {
                rd: Reg::x(9),
                imm16: 0x1234,
                shift: 3,
            },
            Insn::bfi(Reg::x(9), Reg::x(0), 16, 48),
            Insn::mov_sp(Reg::IP1, Reg::Sp),
            Insn::Adr {
                rd: Reg::IP0,
                offset: -64,
            },
            Insn::Pac {
                key: PacKey::IB,
                rd: Reg::LR,
                rn: Reg::IP0,
            },
            Insn::Aut {
                key: PacKey::DB,
                rd: Reg::x(8),
                rn: Reg::x(9),
            },
            Insn::Ldr {
                rt: Reg::x(8),
                rn: Reg::x(0),
                mode: AddrMode::Unsigned(40),
            },
            Insn::Blr { rn: Reg::x(8) },
            Insn::Blra {
                key: InsnKey::B,
                rn: Reg::x(8),
                rm: Reg::x(9),
            },
            Insn::Bra {
                key: InsnKey::A,
                rn: Reg::x(2),
                rm: Reg::Sp,
            },
            Insn::Msr {
                sr: SysReg::ApibKeyLoEl1,
                rt: Reg::x(1),
            },
            Insn::Mrs {
                rt: Reg::x(1),
                sr: SysReg::SctlrEl1,
            },
            Insn::Pacga {
                rd: Reg::x(0),
                rn: Reg::x(1),
                rm: Reg::x(2),
            },
            Insn::Xpaci { rd: Reg::x(5) },
            Insn::Xpacd { rd: Reg::x(6) },
            Insn::Svc { imm: 93 },
            Insn::Cbnz {
                rt: Reg::x(0),
                offset: -8,
            },
        ];
        for insn in sample {
            let w = encode(&insn);
            assert_eq!(decode(w), Some(insn), "word {w:#010x}");
        }
    }

    #[test]
    fn disassemble_mixed_stream() {
        let words = [0xD503_201F, 0xDEAD_BEEF];
        let text = disassemble(&words);
        assert_eq!(text[0], "nop");
        assert_eq!(text[1], ".inst 0xdeadbeef");
    }
}
