//! A64 instruction encoder.
//!
//! Produces the architectural 32-bit little-endian words for the modeled
//! subset. Immediate ranges are validated with assertions: the assembler is
//! trusted tooling, so a range error is a programming bug, not an input
//! error.

use crate::insn::{AddrMode, Insn, InsnKey, PacKey, PairMode};
use crate::{Reg, SysReg};

fn rd(r: Reg) -> u32 {
    u32::from(r.number())
}

fn rn(r: Reg) -> u32 {
    u32::from(r.number()) << 5
}

fn rt2(r: Reg) -> u32 {
    u32::from(r.number()) << 10
}

fn rm(r: Reg) -> u32 {
    u32::from(r.number()) << 16
}

fn movewide(base: u32, reg: Reg, imm16: u16, shift: u8) -> u32 {
    assert!(shift <= 3, "move-wide shift selector out of range");
    base | (u32::from(shift) << 21) | (u32::from(imm16) << 5) | rd(reg)
}

fn addsub_imm(base: u32, d: Reg, n: Reg, imm12: u16, shifted: bool) -> u32 {
    assert!(imm12 < 4096, "imm12 out of range");
    base | (u32::from(shifted) << 22) | (u32::from(imm12) << 10) | rn(n) | rd(d)
}

fn branch26(base: u32, offset: i32) -> u32 {
    assert!(offset % 4 == 0, "branch offset must be word aligned");
    let imm = offset / 4;
    assert!(
        (-(1 << 25)..(1 << 25)).contains(&imm),
        "branch out of range"
    );
    base | ((imm as u32) & 0x03FF_FFFF)
}

fn branch19(base: u32, reg: Reg, offset: i32) -> u32 {
    assert!(offset % 4 == 0, "branch offset must be word aligned");
    let imm = offset / 4;
    assert!(
        (-(1 << 18)..(1 << 18)).contains(&imm),
        "cb branch out of range"
    );
    base | (((imm as u32) & 0x7_FFFF) << 5) | rd(reg)
}

fn sysreg_op(base: u32, sr: SysReg, reg: Reg) -> u32 {
    let (op0, op1, crn, crm, op2) = sr.fields();
    assert!(op0 == 2 || op0 == 3, "only op0 in 2..=3 is encodable");
    let o0 = u32::from(op0 - 2);
    base | (o0 << 19)
        | (u32::from(op1) << 16)
        | (u32::from(crn) << 12)
        | (u32::from(crm) << 8)
        | (u32::from(op2) << 5)
        | rd(reg)
}

fn pac_aut(base: u32, key: PacKey, d: Reg, n: Reg) -> u32 {
    let sel = match key {
        PacKey::IA => 0,
        PacKey::IB => 1,
        PacKey::DA => 2,
        PacKey::DB => 3,
    };
    base | (sel << 10) | rn(n) | rd(d)
}

fn ldst_single(load: bool, t: Reg, base_reg: Reg, mode: AddrMode) -> u32 {
    match mode {
        AddrMode::Unsigned(imm) => {
            assert!(imm % 8 == 0, "unsigned offset must be 8-byte scaled");
            let imm12 = u32::from(imm) / 8;
            assert!(imm12 < 4096, "unsigned offset out of range");
            let op = if load { 0xF940_0000 } else { 0xF900_0000 };
            op | (imm12 << 10) | rn(base_reg) | rd(t)
        }
        AddrMode::Post(imm) | AddrMode::Pre(imm) => {
            assert!((-256..256).contains(&imm), "imm9 out of range");
            let idx_bits = if matches!(mode, AddrMode::Pre(_)) {
                0xC00
            } else {
                0x400
            };
            let op = if load { 0xF840_0000 } else { 0xF800_0000 };
            op | idx_bits | (((imm as u32) & 0x1FF) << 12) | rn(base_reg) | rd(t)
        }
    }
}

fn ldst_pair(load: bool, t: Reg, t2: Reg, base_reg: Reg, mode: PairMode) -> u32 {
    let (variant, imm) = match mode {
        PairMode::SignedOffset(imm) => (0xA900_0000u32, imm),
        PairMode::Pre(imm) => (0xA980_0000, imm),
        PairMode::Post(imm) => (0xA880_0000, imm),
    };
    assert!(imm % 8 == 0, "pair offset must be 8-byte scaled");
    let imm7 = imm / 8;
    assert!((-64..64).contains(&imm7), "imm7 out of range");
    let load_bit = if load { 1 << 22 } else { 0 };
    variant | load_bit | (((imm7 as u32) & 0x7F) << 15) | rt2(t2) | rn(base_reg) | rd(t)
}

/// Encodes one instruction to its architectural 32-bit word.
///
/// # Panics
///
/// Panics when an immediate operand is outside its encodable range (offset
/// misalignment, out-of-range branch target, ...). See the module
/// documentation for the rationale.
///
/// # Example
///
/// ```
/// use camo_isa::{encode, Insn};
/// assert_eq!(encode(&Insn::Nop), 0xD503201F);
/// assert_eq!(encode(&Insn::ret()), 0xD65F03C0);
/// ```
pub fn encode(insn: &Insn) -> u32 {
    match *insn {
        Insn::Movn {
            rd: d,
            imm16,
            shift,
        } => movewide(0x9280_0000, d, imm16, shift),
        Insn::Movz {
            rd: d,
            imm16,
            shift,
        } => movewide(0xD280_0000, d, imm16, shift),
        Insn::Movk {
            rd: d,
            imm16,
            shift,
        } => movewide(0xF280_0000, d, imm16, shift),
        Insn::AddImm {
            rd: d,
            rn: n,
            imm12,
            shifted,
        } => addsub_imm(0x9100_0000, d, n, imm12, shifted),
        Insn::SubImm {
            rd: d,
            rn: n,
            imm12,
            shifted,
        } => addsub_imm(0xD100_0000, d, n, imm12, shifted),
        Insn::AddReg {
            rd: d,
            rn: n,
            rm: m,
        } => 0x8B00_0000 | rm(m) | rn(n) | rd(d),
        Insn::SubReg {
            rd: d,
            rn: n,
            rm: m,
        } => 0xCB00_0000 | rm(m) | rn(n) | rd(d),
        Insn::AndReg {
            rd: d,
            rn: n,
            rm: m,
        } => 0x8A00_0000 | rm(m) | rn(n) | rd(d),
        Insn::OrrReg {
            rd: d,
            rn: n,
            rm: m,
        } => 0xAA00_0000 | rm(m) | rn(n) | rd(d),
        Insn::EorReg {
            rd: d,
            rn: n,
            rm: m,
        } => 0xCA00_0000 | rm(m) | rn(n) | rd(d),
        Insn::Bfm {
            rd: d,
            rn: n,
            immr,
            imms,
        } => {
            assert!(immr < 64 && imms < 64, "bfm immediates out of range");
            0xB340_0000 | (u32::from(immr) << 16) | (u32::from(imms) << 10) | rn(n) | rd(d)
        }
        Insn::Ubfm {
            rd: d,
            rn: n,
            immr,
            imms,
        } => {
            assert!(immr < 64 && imms < 64, "ubfm immediates out of range");
            0xD340_0000 | (u32::from(immr) << 16) | (u32::from(imms) << 10) | rn(n) | rd(d)
        }
        Insn::Adr { rd: d, offset } => {
            assert!(
                (-(1 << 20)..(1 << 20)).contains(&offset),
                "adr out of range"
            );
            let imm = offset as u32;
            let immlo = imm & 0x3;
            let immhi = (imm >> 2) & 0x7_FFFF;
            0x1000_0000 | (immlo << 29) | (immhi << 5) | rd(d)
        }
        Insn::Ldr { rt, rn: n, mode } => ldst_single(true, rt, n, mode),
        Insn::Str { rt, rn: n, mode } => ldst_single(false, rt, n, mode),
        Insn::Ldp {
            rt,
            rt2: t2,
            rn: n,
            mode,
        } => ldst_pair(true, rt, t2, n, mode),
        Insn::Stp {
            rt,
            rt2: t2,
            rn: n,
            mode,
        } => ldst_pair(false, rt, t2, n, mode),
        Insn::B { offset } => branch26(0x1400_0000, offset),
        Insn::Bl { offset } => branch26(0x9400_0000, offset),
        Insn::Br { rn: n } => 0xD61F_0000 | rn(n),
        Insn::Blr { rn: n } => 0xD63F_0000 | rn(n),
        Insn::Ret { rn: n } => 0xD65F_0000 | rn(n),
        Insn::Cbz { rt, offset } => branch19(0xB400_0000, rt, offset),
        Insn::Cbnz { rt, offset } => branch19(0xB500_0000, rt, offset),
        Insn::Svc { imm } => 0xD400_0001 | (u32::from(imm) << 5),
        Insn::Brk { imm } => 0xD420_0000 | (u32::from(imm) << 5),
        Insn::Eret => 0xD69F_03E0,
        Insn::Nop => 0xD503_201F,
        Insn::Msr { sr, rt } => sysreg_op(0xD510_0000, sr, rt),
        Insn::Mrs { rt, sr } => sysreg_op(0xD530_0000, sr, rt),
        Insn::Pac { key, rd: d, rn: n } => pac_aut(0xDAC1_0000, key, d, n),
        Insn::Aut { key, rd: d, rn: n } => pac_aut(0xDAC1_1000, key, d, n),
        Insn::PacSp { key: InsnKey::A } => 0xD503_233F,
        Insn::PacSp { key: InsnKey::B } => 0xD503_237F,
        Insn::AutSp { key: InsnKey::A } => 0xD503_23BF,
        Insn::AutSp { key: InsnKey::B } => 0xD503_23FF,
        Insn::Pac1716 { key: InsnKey::A } => 0xD503_211F,
        Insn::Pac1716 { key: InsnKey::B } => 0xD503_215F,
        Insn::Aut1716 { key: InsnKey::A } => 0xD503_213F,
        Insn::Aut1716 { key: InsnKey::B } => 0xD503_217F,
        Insn::Xpaci { rd: d } => 0xDAC1_43E0 | rd(d),
        Insn::Xpacd { rd: d } => 0xDAC1_47E0 | rd(d),
        Insn::Pacga {
            rd: d,
            rn: n,
            rm: m,
        } => 0x9AC0_3000 | rm(m) | rn(n) | rd(d),
        Insn::Reta { key: InsnKey::A } => 0xD65F_0BFF,
        Insn::Reta { key: InsnKey::B } => 0xD65F_0FFF,
        Insn::Blra { key, rn: n, rm: m } => {
            let k = if key == InsnKey::B { 0x400 } else { 0 };
            0xD73F_0800 | k | rn(n) | rd(m)
        }
        Insn::Bra { key, rn: n, rm: m } => {
            let k = if key == InsnKey::B { 0x400 } else { 0 };
            0xD71F_0800 | k | rn(n) | rd(m)
        }
    }
}

/// Encodes a sequence of instructions into little-endian bytes.
pub fn encode_all(insns: &[Insn]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(insns.len() * 4);
    for insn in insns {
        bytes.extend_from_slice(&encode(insn).to_le_bytes());
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_words() {
        assert_eq!(encode(&Insn::Nop), 0xD503_201F);
        assert_eq!(encode(&Insn::ret()), 0xD65F_03C0);
        assert_eq!(encode(&Insn::Eret), 0xD69F_03E0);
        assert_eq!(encode(&Insn::PacSp { key: InsnKey::A }), 0xD503_233F);
        assert_eq!(encode(&Insn::AutSp { key: InsnKey::A }), 0xD503_23BF);
        assert_eq!(encode(&Insn::Svc { imm: 0 }), 0xD400_0001);
    }

    #[test]
    fn msr_ttbr0_matches_reference() {
        // `msr ttbr0_el1, x0` assembles to 0xD5182000 with GNU binutils.
        let w = encode(&Insn::Msr {
            sr: SysReg::Ttbr0El1,
            rt: Reg::x(0),
        });
        assert_eq!(w, 0xD518_2000);
        // `mrs x0, ttbr0_el1` is the L=1 twin.
        let r = encode(&Insn::Mrs {
            rt: Reg::x(0),
            sr: SysReg::Ttbr0El1,
        });
        assert_eq!(r, 0xD538_2000);
    }

    #[test]
    fn listing1_frame_record() {
        // stp fp, lr, [sp, #-16]!
        let stp = encode(&Insn::Stp {
            rt: Reg::FP,
            rt2: Reg::LR,
            rn: Reg::Sp,
            mode: PairMode::Pre(-16),
        });
        assert_eq!(stp, 0xA9BF_7BFD);
        // ldp fp, lr, [sp], #16
        let ldp = encode(&Insn::Ldp {
            rt: Reg::FP,
            rt2: Reg::LR,
            rn: Reg::Sp,
            mode: PairMode::Post(16),
        });
        assert_eq!(ldp, 0xA8C1_7BFD);
    }

    #[test]
    fn listing2_pacia_lr_sp() {
        // `pacia lr, sp` — rd = x30, rn = sp(31).
        let w = encode(&Insn::Pac {
            key: PacKey::IA,
            rd: Reg::LR,
            rn: Reg::Sp,
        });
        assert_eq!(w, 0xDAC1_03FE);
        let a = encode(&Insn::Aut {
            key: PacKey::IA,
            rd: Reg::LR,
            rn: Reg::Sp,
        });
        assert_eq!(a, 0xDAC1_13FE);
    }

    #[test]
    fn nop_compatible_1716_forms_are_hints() {
        // All *1716 forms must live in the hint space (0xD503_20xx..0xD503_21xx)
        // so that pre-8.3 cores execute them as NOP (§5.5).
        for insn in [
            Insn::Pac1716 { key: InsnKey::A },
            Insn::Pac1716 { key: InsnKey::B },
            Insn::Aut1716 { key: InsnKey::A },
            Insn::Aut1716 { key: InsnKey::B },
        ] {
            let w = encode(&insn);
            assert_eq!(w & 0xFFFF_F01F, 0xD503_201F & 0xFFFF_F01F, "{insn}");
        }
    }

    #[test]
    fn branch_offsets() {
        assert_eq!(encode(&Insn::B { offset: 8 }), 0x1400_0002);
        assert_eq!(encode(&Insn::B { offset: -4 }), 0x17FF_FFFF);
        assert_eq!(encode(&Insn::Bl { offset: 0 }), 0x9400_0000);
    }

    #[test]
    #[should_panic(expected = "branch offset must be word aligned")]
    fn misaligned_branch_panics() {
        let _ = encode(&Insn::B { offset: 2 });
    }

    #[test]
    #[should_panic(expected = "unsigned offset must be 8-byte scaled")]
    fn misaligned_load_panics() {
        let _ = encode(&Insn::Ldr {
            rt: Reg::x(0),
            rn: Reg::Sp,
            mode: AddrMode::Unsigned(12),
        });
    }

    #[test]
    fn encode_all_is_little_endian() {
        let bytes = encode_all(&[Insn::Nop]);
        assert_eq!(bytes, vec![0x1F, 0x20, 0x03, 0xD5]);
    }
}
