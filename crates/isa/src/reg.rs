//! General-purpose register names.

use core::fmt;

/// An AArch64 general-purpose register operand.
///
/// Register number 31 is context-dependent in A64: it names the stack
/// pointer in address/arithmetic contexts and the zero register elsewhere.
/// This model makes the distinction explicit at the type level; the
/// encoder maps both [`Reg::Sp`] and [`Reg::Xzr`] to 31 and the decoder
/// picks the right one from the instruction context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// General-purpose register `x0`..`x30`.
    X(u8),
    /// The stack pointer (`sp`).
    Sp,
    /// The zero register (`xzr`).
    Xzr,
}

impl Reg {
    /// The link register `x30` (aka `lr`).
    pub const LR: Reg = Reg::X(30);
    /// The frame pointer `x29` (aka `fp`).
    pub const FP: Reg = Reg::X(29);
    /// The first intra-procedure-call scratch register `x16` (aka `ip0`).
    pub const IP0: Reg = Reg::X(16);
    /// The second intra-procedure-call scratch register `x17` (aka `ip1`).
    pub const IP1: Reg = Reg::X(17);

    /// Creates `x<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 30` (use [`Reg::Sp`] or [`Reg::Xzr`] for number 31).
    pub fn x(n: u8) -> Reg {
        assert!(n <= 30, "x{n} is not a general-purpose register");
        Reg::X(n)
    }

    /// The 5-bit encoding of this register.
    pub fn number(self) -> u8 {
        match self {
            Reg::X(n) => n,
            Reg::Sp | Reg::Xzr => 31,
        }
    }

    /// Decodes a 5-bit field in a context where 31 means the stack pointer.
    pub fn from_field_sp(n: u8) -> Reg {
        if n == 31 {
            Reg::Sp
        } else {
            Reg::X(n)
        }
    }

    /// Decodes a 5-bit field in a context where 31 means the zero register.
    pub fn from_field_zr(n: u8) -> Reg {
        if n == 31 {
            Reg::Xzr
        } else {
            Reg::X(n)
        }
    }

    /// Whether this operand is an allocatable general-purpose register.
    pub fn is_gpr(self) -> bool {
        matches!(self, Reg::X(_))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::X(n) => write!(f, "x{n}"),
            Reg::Sp => write!(f, "sp"),
            Reg::Xzr => write!(f, "xzr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases() {
        assert_eq!(Reg::LR, Reg::X(30));
        assert_eq!(Reg::FP, Reg::X(29));
        assert_eq!(Reg::IP0.number(), 16);
        assert_eq!(Reg::IP1.number(), 17);
    }

    #[test]
    fn number_31_is_context_dependent() {
        assert_eq!(Reg::Sp.number(), 31);
        assert_eq!(Reg::Xzr.number(), 31);
        assert_eq!(Reg::from_field_sp(31), Reg::Sp);
        assert_eq!(Reg::from_field_zr(31), Reg::Xzr);
        assert_eq!(Reg::from_field_sp(7), Reg::X(7));
        assert_eq!(Reg::from_field_zr(7), Reg::X(7));
    }

    #[test]
    #[should_panic(expected = "x31 is not a general-purpose register")]
    fn x31_rejected() {
        let _ = Reg::x(31);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::x(0).to_string(), "x0");
        assert_eq!(Reg::Sp.to_string(), "sp");
        assert_eq!(Reg::Xzr.to_string(), "xzr");
    }
}
