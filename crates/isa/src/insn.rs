//! The instruction model.

use crate::{Reg, SysReg};
use core::fmt;

/// Addressing mode for single-register loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// `[Xn, #imm]` — unsigned scaled 12-bit offset (bytes, multiple of 8).
    Unsigned(u16),
    /// `[Xn], #imm` — post-indexed, signed 9-bit byte offset.
    Post(i16),
    /// `[Xn, #imm]!` — pre-indexed, signed 9-bit byte offset.
    Pre(i16),
}

/// Addressing mode for load/store pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairMode {
    /// `[Xn, #imm]` — signed 7-bit offset scaled by 8.
    SignedOffset(i16),
    /// `[Xn], #imm` — post-indexed.
    Post(i16),
    /// `[Xn, #imm]!` — pre-indexed.
    Pre(i16),
}

/// The four address-diversified PAC keys usable with `PAC*`/`AUT*` register
/// forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacKey {
    /// Instruction key A (`PACIA`/`AUTIA`).
    IA,
    /// Instruction key B (`PACIB`/`AUTIB`).
    IB,
    /// Data key A (`PACDA`/`AUTDA`).
    DA,
    /// Data key B (`PACDB`/`AUTDB`).
    DB,
}

impl PacKey {
    /// The corresponding architectural key.
    pub fn to_pauth_key(self) -> crate::PauthKey {
        match self {
            PacKey::IA => crate::PauthKey::IA,
            PacKey::IB => crate::PauthKey::IB,
            PacKey::DA => crate::PauthKey::DA,
            PacKey::DB => crate::PauthKey::DB,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            PacKey::IA => "ia",
            PacKey::IB => "ib",
            PacKey::DA => "da",
            PacKey::DB => "db",
        }
    }
}

/// Instruction-key selector for hint-space and combined PAuth forms
/// (`PACIASP` vs `PACIBSP`, `RETAA` vs `RETAB`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnKey {
    /// Key A.
    A,
    /// Key B.
    B,
}

impl InsnKey {
    /// The corresponding architectural instruction key.
    pub fn to_pauth_key(self) -> crate::PauthKey {
        match self {
            InsnKey::A => crate::PauthKey::IA,
            InsnKey::B => crate::PauthKey::IB,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            InsnKey::A => "a",
            InsnKey::B => "b",
        }
    }
}

/// One A64 instruction from the modeled subset.
///
/// All data-processing operations are the 64-bit (`sf = 1`) forms; the
/// Camouflage code paths never need 32-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    /// `MOVZ Xd, #imm16, LSL #(16*shift)` — move wide with zero.
    Movz {
        /// Destination.
        rd: Reg,
        /// 16-bit immediate.
        imm16: u16,
        /// Shift selector 0..=3 (multiples of 16 bits).
        shift: u8,
    },
    /// `MOVK Xd, #imm16, LSL #(16*shift)` — move wide with keep.
    Movk {
        /// Destination.
        rd: Reg,
        /// 16-bit immediate.
        imm16: u16,
        /// Shift selector 0..=3.
        shift: u8,
    },
    /// `MOVN Xd, #imm16, LSL #(16*shift)` — move wide with NOT.
    Movn {
        /// Destination.
        rd: Reg,
        /// 16-bit immediate.
        imm16: u16,
        /// Shift selector 0..=3.
        shift: u8,
    },
    /// `ADD Xd|SP, Xn|SP, #imm12 {, LSL #12}`.
    AddImm {
        /// Destination (SP allowed).
        rd: Reg,
        /// Source (SP allowed).
        rn: Reg,
        /// 12-bit immediate.
        imm12: u16,
        /// Whether the immediate is shifted left by 12.
        shifted: bool,
    },
    /// `SUB Xd|SP, Xn|SP, #imm12 {, LSL #12}`.
    SubImm {
        /// Destination (SP allowed).
        rd: Reg,
        /// Source (SP allowed).
        rn: Reg,
        /// 12-bit immediate.
        imm12: u16,
        /// Whether the immediate is shifted left by 12.
        shifted: bool,
    },
    /// `ADD Xd, Xn, Xm` (shifted register, shift 0).
    AddReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `SUB Xd, Xn, Xm`.
    SubReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `AND Xd, Xn, Xm`.
    AndReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `ORR Xd, Xn, Xm` (`MOV Xd, Xm` when `rn` is `xzr`).
    OrrReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `EOR Xd, Xn, Xm`.
    EorReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `BFM Xd, Xn, #immr, #imms` — bit-field move (BFI/BFXIL alias base).
    Bfm {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
        /// Rotate amount.
        immr: u8,
        /// Source width control.
        imms: u8,
    },
    /// `UBFM Xd, Xn, #immr, #imms` — unsigned bit-field move (LSL/LSR alias
    /// base).
    Ubfm {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
        /// Rotate amount.
        immr: u8,
        /// Source width control.
        imms: u8,
    },
    /// `ADR Xd, label` — PC-relative address (±1 MiB).
    Adr {
        /// Destination.
        rd: Reg,
        /// Byte offset from this instruction's address.
        offset: i32,
    },
    /// `LDR Xt, ...`.
    Ldr {
        /// Destination.
        rt: Reg,
        /// Base register (SP allowed).
        rn: Reg,
        /// Addressing mode.
        mode: AddrMode,
    },
    /// `STR Xt, ...`.
    Str {
        /// Source.
        rt: Reg,
        /// Base register (SP allowed).
        rn: Reg,
        /// Addressing mode.
        mode: AddrMode,
    },
    /// `LDP Xt, Xt2, ...`.
    Ldp {
        /// First destination.
        rt: Reg,
        /// Second destination.
        rt2: Reg,
        /// Base register (SP allowed).
        rn: Reg,
        /// Addressing mode.
        mode: PairMode,
    },
    /// `STP Xt, Xt2, ...`.
    Stp {
        /// First source.
        rt: Reg,
        /// Second source.
        rt2: Reg,
        /// Base register (SP allowed).
        rn: Reg,
        /// Addressing mode.
        mode: PairMode,
    },
    /// `B label` (±128 MiB).
    B {
        /// Byte offset from this instruction's address.
        offset: i32,
    },
    /// `BL label`.
    Bl {
        /// Byte offset from this instruction's address.
        offset: i32,
    },
    /// `BR Xn`.
    Br {
        /// Target address register.
        rn: Reg,
    },
    /// `BLR Xn`.
    Blr {
        /// Target address register.
        rn: Reg,
    },
    /// `RET {Xn}` (defaults to `x30`).
    Ret {
        /// Return address register.
        rn: Reg,
    },
    /// `CBZ Xt, label` (±1 MiB).
    Cbz {
        /// Tested register.
        rt: Reg,
        /// Byte offset from this instruction's address.
        offset: i32,
    },
    /// `CBNZ Xt, label`.
    Cbnz {
        /// Tested register.
        rt: Reg,
        /// Byte offset from this instruction's address.
        offset: i32,
    },
    /// `SVC #imm` — supervisor call (syscall).
    Svc {
        /// Immediate passed to the exception handler.
        imm: u16,
    },
    /// `BRK #imm` — software breakpoint.
    Brk {
        /// Immediate.
        imm: u16,
    },
    /// `ERET` — exception return.
    Eret,
    /// `NOP`.
    Nop,
    /// `MSR <sysreg>, Xt`.
    Msr {
        /// Written system register.
        sr: SysReg,
        /// Source register.
        rt: Reg,
    },
    /// `MRS Xt, <sysreg>`.
    Mrs {
        /// Destination register.
        rt: Reg,
        /// Read system register.
        sr: SysReg,
    },
    /// `PACIA/PACIB/PACDA/PACDB Xd, Xn|SP` — sign `Xd` with modifier `Xn`.
    Pac {
        /// Key selection.
        key: PacKey,
        /// Pointer register (signed in place).
        rd: Reg,
        /// Modifier register (SP allowed).
        rn: Reg,
    },
    /// `AUTIA/AUTIB/AUTDA/AUTDB Xd, Xn|SP` — authenticate `Xd`.
    Aut {
        /// Key selection.
        key: PacKey,
        /// Pointer register (authenticated in place).
        rd: Reg,
        /// Modifier register (SP allowed).
        rn: Reg,
    },
    /// `PACIASP`/`PACIBSP` — sign LR with SP as modifier (hint space).
    PacSp {
        /// Key selection.
        key: InsnKey,
    },
    /// `AUTIASP`/`AUTIBSP` — authenticate LR with SP as modifier.
    AutSp {
        /// Key selection.
        key: InsnKey,
    },
    /// `PACIA1716`/`PACIB1716` — sign x17 with x16 as modifier.
    ///
    /// Lives in the hint space, so it executes as `NOP` on pre-8.3 cores:
    /// this is the paper's §5.5 backward-compatibility mechanism.
    Pac1716 {
        /// Key selection.
        key: InsnKey,
    },
    /// `AUTIA1716`/`AUTIB1716` — authenticate x17 with x16 as modifier.
    Aut1716 {
        /// Key selection.
        key: InsnKey,
    },
    /// `XPACI Xd` — strip the PAC from an instruction pointer.
    Xpaci {
        /// Pointer register.
        rd: Reg,
    },
    /// `XPACD Xd` — strip the PAC from a data pointer.
    Xpacd {
        /// Pointer register.
        rd: Reg,
    },
    /// `PACGA Xd, Xn, Xm` — generic MAC of `Xn` with modifier `Xm`.
    Pacga {
        /// Destination (receives the MAC in the top 32 bits).
        rd: Reg,
        /// Data register.
        rn: Reg,
        /// Modifier register.
        rm: Reg,
    },
    /// `RETAA`/`RETAB` — authenticate LR (SP modifier) and return.
    Reta {
        /// Key selection.
        key: InsnKey,
    },
    /// `BLRAA`/`BLRAB Xn, Xm` — authenticate and branch with link.
    Blra {
        /// Key selection.
        key: InsnKey,
        /// Target register.
        rn: Reg,
        /// Modifier register (SP allowed).
        rm: Reg,
    },
    /// `BRAA`/`BRAB Xn, Xm` — authenticate and branch.
    Bra {
        /// Key selection.
        key: InsnKey,
        /// Target register.
        rn: Reg,
        /// Modifier register (SP allowed).
        rm: Reg,
    },
}

// The CPU front end caches decoded instructions (one entry per hot
// instruction word), so `Insn` must stay a small `Copy` value: a cache hit
// is a plain memcpy of this many bytes. Growing a variant past 8 payload
// bytes breaks this assertion rather than silently fattening every cached
// entry.
const _: () = assert!(core::mem::size_of::<Insn>() <= 16);

const fn _insn_is_copy<T: Copy>() {}
const _: () = _insn_is_copy::<Insn>();

impl Insn {
    /// `BFI Xd, Xn, #lsb, #width` — bit-field insert (alias of `BFM`).
    ///
    /// This is the Listing 3 workhorse: `bfi ip0, ip1, #32, #32` merges the
    /// low 32 bits of SP into the top half of the function-address modifier.
    ///
    /// # Panics
    ///
    /// Panics unless `lsb < 64`, `1 <= width <= 64 - lsb`.
    pub fn bfi(rd: Reg, rn: Reg, lsb: u8, width: u8) -> Insn {
        assert!(lsb < 64, "bfi lsb out of range");
        assert!(width >= 1 && width <= 64 - lsb, "bfi width out of range");
        Insn::Bfm {
            rd,
            rn,
            immr: (64 - lsb) % 64,
            imms: width - 1,
        }
    }

    /// `LSL Xd, Xn, #shift` (alias of `UBFM`).
    ///
    /// # Panics
    ///
    /// Panics if `shift > 63`.
    pub fn lsl(rd: Reg, rn: Reg, shift: u8) -> Insn {
        assert!(shift <= 63, "lsl shift out of range");
        Insn::Ubfm {
            rd,
            rn,
            immr: (64 - shift) % 64,
            imms: 63 - shift,
        }
    }

    /// `LSR Xd, Xn, #shift` (alias of `UBFM`).
    ///
    /// # Panics
    ///
    /// Panics if `shift > 63`.
    pub fn lsr(rd: Reg, rn: Reg, shift: u8) -> Insn {
        assert!(shift <= 63, "lsr shift out of range");
        Insn::Ubfm {
            rd,
            rn,
            immr: shift,
            imms: 63,
        }
    }

    /// `MOV Xd, Xm` (alias of `ORR Xd, xzr, Xm`).
    pub fn mov(rd: Reg, rm: Reg) -> Insn {
        Insn::OrrReg {
            rd,
            rn: Reg::Xzr,
            rm,
        }
    }

    /// `MOV Xd, SP` / `MOV SP, Xn` (alias of `ADD ..., #0`).
    pub fn mov_sp(rd: Reg, rn: Reg) -> Insn {
        Insn::AddImm {
            rd,
            rn,
            imm12: 0,
            shifted: false,
        }
    }

    /// `RET` with the default `x30` return register.
    pub fn ret() -> Insn {
        Insn::Ret { rn: Reg::LR }
    }

    /// Whether the instruction is a PAuth operation (any form).
    ///
    /// Used by the cost model: the paper's PA-analogue charges these
    /// 4 cycles each (§6.1).
    pub fn is_pauth(&self) -> bool {
        matches!(
            self,
            Insn::Pac { .. }
                | Insn::Aut { .. }
                | Insn::PacSp { .. }
                | Insn::AutSp { .. }
                | Insn::Pac1716 { .. }
                | Insn::Aut1716 { .. }
                | Insn::Xpaci { .. }
                | Insn::Xpacd { .. }
                | Insn::Pacga { .. }
                | Insn::Reta { .. }
                | Insn::Blra { .. }
                | Insn::Bra { .. }
        )
    }

    /// Whether the instruction reads a PAuth key system register.
    ///
    /// The §4.1 static verifier rejects kernel and module images containing
    /// any such instruction.
    pub fn reads_pauth_key(&self) -> bool {
        matches!(self, Insn::Mrs { sr, .. } if sr.is_pauth_key())
    }

    /// Whether the instruction writes `SCTLR_EL1` (and could therefore clear
    /// the PAuth enable bits).
    pub fn writes_sctlr(&self) -> bool {
        matches!(
            self,
            Insn::Msr {
                sr: SysReg::SctlrEl1,
                ..
            }
        )
    }
}

fn fmt_pair_mode(f: &mut fmt::Formatter<'_>, rn: Reg, mode: PairMode) -> fmt::Result {
    match mode {
        PairMode::SignedOffset(0) => write!(f, "[{rn}]"),
        PairMode::SignedOffset(imm) => write!(f, "[{rn}, #{imm}]"),
        PairMode::Post(imm) => write!(f, "[{rn}], #{imm}"),
        PairMode::Pre(imm) => write!(f, "[{rn}, #{imm}]!"),
    }
}

fn fmt_addr_mode(f: &mut fmt::Formatter<'_>, rn: Reg, mode: AddrMode) -> fmt::Result {
    match mode {
        AddrMode::Unsigned(0) => write!(f, "[{rn}]"),
        AddrMode::Unsigned(imm) => write!(f, "[{rn}, #{imm}]"),
        AddrMode::Post(imm) => write!(f, "[{rn}], #{imm}"),
        AddrMode::Pre(imm) => write!(f, "[{rn}, #{imm}]!"),
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Movz { rd, imm16, shift } => {
                if shift == 0 {
                    write!(f, "movz {rd}, #{imm16:#x}")
                } else {
                    write!(f, "movz {rd}, #{imm16:#x}, lsl #{}", 16 * shift)
                }
            }
            Insn::Movk { rd, imm16, shift } => {
                if shift == 0 {
                    write!(f, "movk {rd}, #{imm16:#x}")
                } else {
                    write!(f, "movk {rd}, #{imm16:#x}, lsl #{}", 16 * shift)
                }
            }
            Insn::Movn { rd, imm16, shift } => {
                if shift == 0 {
                    write!(f, "movn {rd}, #{imm16:#x}")
                } else {
                    write!(f, "movn {rd}, #{imm16:#x}, lsl #{}", 16 * shift)
                }
            }
            Insn::AddImm {
                rd,
                rn,
                imm12,
                shifted,
            } => {
                if shifted {
                    write!(f, "add {rd}, {rn}, #{imm12}, lsl #12")
                } else {
                    write!(f, "add {rd}, {rn}, #{imm12}")
                }
            }
            Insn::SubImm {
                rd,
                rn,
                imm12,
                shifted,
            } => {
                if shifted {
                    write!(f, "sub {rd}, {rn}, #{imm12}, lsl #12")
                } else {
                    write!(f, "sub {rd}, {rn}, #{imm12}")
                }
            }
            Insn::AddReg { rd, rn, rm } => write!(f, "add {rd}, {rn}, {rm}"),
            Insn::SubReg { rd, rn, rm } => write!(f, "sub {rd}, {rn}, {rm}"),
            Insn::AndReg { rd, rn, rm } => write!(f, "and {rd}, {rn}, {rm}"),
            Insn::OrrReg { rd, rn, rm } => {
                if rn == Reg::Xzr {
                    write!(f, "mov {rd}, {rm}")
                } else {
                    write!(f, "orr {rd}, {rn}, {rm}")
                }
            }
            Insn::EorReg { rd, rn, rm } => write!(f, "eor {rd}, {rn}, {rm}"),
            Insn::Bfm { rd, rn, immr, imms } => {
                // Render the BFI alias when it applies (imms < immr).
                if imms < immr {
                    let lsb = (64 - immr) % 64;
                    write!(f, "bfi {rd}, {rn}, #{lsb}, #{}", imms + 1)
                } else {
                    write!(f, "bfm {rd}, {rn}, #{immr}, #{imms}")
                }
            }
            Insn::Ubfm { rd, rn, immr, imms } => {
                if imms == 63 {
                    write!(f, "lsr {rd}, {rn}, #{immr}")
                } else if imms + 1 == immr {
                    write!(f, "lsl {rd}, {rn}, #{}", 63 - imms)
                } else {
                    write!(f, "ubfm {rd}, {rn}, #{immr}, #{imms}")
                }
            }
            Insn::Adr { rd, offset } => write!(f, "adr {rd}, {offset:+}"),
            Insn::Ldr { rt, rn, mode } => {
                write!(f, "ldr {rt}, ")?;
                fmt_addr_mode(f, rn, mode)
            }
            Insn::Str { rt, rn, mode } => {
                write!(f, "str {rt}, ")?;
                fmt_addr_mode(f, rn, mode)
            }
            Insn::Ldp { rt, rt2, rn, mode } => {
                write!(f, "ldp {rt}, {rt2}, ")?;
                fmt_pair_mode(f, rn, mode)
            }
            Insn::Stp { rt, rt2, rn, mode } => {
                write!(f, "stp {rt}, {rt2}, ")?;
                fmt_pair_mode(f, rn, mode)
            }
            Insn::B { offset } => write!(f, "b {offset:+}"),
            Insn::Bl { offset } => write!(f, "bl {offset:+}"),
            Insn::Br { rn } => write!(f, "br {rn}"),
            Insn::Blr { rn } => write!(f, "blr {rn}"),
            Insn::Ret { rn } => {
                if rn == Reg::LR {
                    write!(f, "ret")
                } else {
                    write!(f, "ret {rn}")
                }
            }
            Insn::Cbz { rt, offset } => write!(f, "cbz {rt}, {offset:+}"),
            Insn::Cbnz { rt, offset } => write!(f, "cbnz {rt}, {offset:+}"),
            Insn::Svc { imm } => write!(f, "svc #{imm:#x}"),
            Insn::Brk { imm } => write!(f, "brk #{imm:#x}"),
            Insn::Eret => write!(f, "eret"),
            Insn::Nop => write!(f, "nop"),
            Insn::Msr { sr, rt } => write!(f, "msr {sr}, {rt}"),
            Insn::Mrs { rt, sr } => write!(f, "mrs {rt}, {sr}"),
            Insn::Pac { key, rd, rn } => write!(f, "pac{} {rd}, {rn}", key.suffix()),
            Insn::Aut { key, rd, rn } => write!(f, "aut{} {rd}, {rn}", key.suffix()),
            Insn::PacSp { key } => write!(f, "paci{}sp", key.letter()),
            Insn::AutSp { key } => write!(f, "auti{}sp", key.letter()),
            Insn::Pac1716 { key } => write!(f, "paci{}1716", key.letter()),
            Insn::Aut1716 { key } => write!(f, "auti{}1716", key.letter()),
            Insn::Xpaci { rd } => write!(f, "xpaci {rd}"),
            Insn::Xpacd { rd } => write!(f, "xpacd {rd}"),
            Insn::Pacga { rd, rn, rm } => write!(f, "pacga {rd}, {rn}, {rm}"),
            Insn::Reta { key } => write!(f, "reta{}", key.letter()),
            Insn::Blra { key, rn, rm } => write!(f, "blra{} {rn}, {rm}", key.letter()),
            Insn::Bra { key, rn, rm } => write!(f, "bra{} {rn}, {rm}", key.letter()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfi_alias_listing3() {
        // Listing 3: bfi ip0, ip1, #32, #32
        let insn = Insn::bfi(Reg::IP0, Reg::IP1, 32, 32);
        assert_eq!(
            insn,
            Insn::Bfm {
                rd: Reg::IP0,
                rn: Reg::IP1,
                immr: 32,
                imms: 31
            }
        );
        assert_eq!(insn.to_string(), "bfi x16, x17, #32, #32");
    }

    #[test]
    fn lsl_lsr_aliases() {
        assert_eq!(
            Insn::lsl(Reg::x(1), Reg::x(2), 16).to_string(),
            "lsl x1, x2, #16"
        );
        assert_eq!(
            Insn::lsr(Reg::x(1), Reg::x(2), 48).to_string(),
            "lsr x1, x2, #48"
        );
    }

    #[test]
    fn mov_aliases() {
        assert_eq!(Insn::mov(Reg::x(0), Reg::x(1)).to_string(), "mov x0, x1");
        assert_eq!(
            Insn::mov_sp(Reg::IP1, Reg::Sp).to_string(),
            "add x17, sp, #0"
        );
        assert_eq!(Insn::ret().to_string(), "ret");
    }

    #[test]
    fn pauth_classification() {
        assert!(Insn::Pac {
            key: PacKey::IB,
            rd: Reg::LR,
            rn: Reg::Sp
        }
        .is_pauth());
        assert!(Insn::Reta { key: InsnKey::B }.is_pauth());
        assert!(!Insn::Nop.is_pauth());
        assert!(!Insn::ret().is_pauth());
    }

    #[test]
    fn verifier_predicates() {
        let read_key = Insn::Mrs {
            rt: Reg::x(0),
            sr: SysReg::ApibKeyLoEl1,
        };
        assert!(read_key.reads_pauth_key());
        let read_ok = Insn::Mrs {
            rt: Reg::x(0),
            sr: SysReg::ContextidrEl1,
        };
        assert!(!read_ok.reads_pauth_key());
        let write_sctlr = Insn::Msr {
            sr: SysReg::SctlrEl1,
            rt: Reg::x(0),
        };
        assert!(write_sctlr.writes_sctlr());
        let write_key = Insn::Msr {
            sr: SysReg::ApibKeyLoEl1,
            rt: Reg::x(0),
        };
        assert!(
            !write_key.writes_sctlr(),
            "writing keys is the setter's job"
        );
    }

    #[test]
    fn display_pauth_forms() {
        assert_eq!(Insn::PacSp { key: InsnKey::A }.to_string(), "paciasp");
        assert_eq!(Insn::Aut1716 { key: InsnKey::B }.to_string(), "autib1716");
        assert_eq!(
            Insn::Pac {
                key: PacKey::DB,
                rd: Reg::x(8),
                rn: Reg::x(9)
            }
            .to_string(),
            "pacdb x8, x9"
        );
        assert_eq!(Insn::Reta { key: InsnKey::B }.to_string(), "retab");
    }

    #[test]
    fn display_memory_forms() {
        let stp = Insn::Stp {
            rt: Reg::FP,
            rt2: Reg::LR,
            rn: Reg::Sp,
            mode: PairMode::Pre(-16),
        };
        assert_eq!(stp.to_string(), "stp x29, x30, [sp, #-16]!");
        let ldp = Insn::Ldp {
            rt: Reg::FP,
            rt2: Reg::LR,
            rn: Reg::Sp,
            mode: PairMode::Post(16),
        };
        assert_eq!(ldp.to_string(), "ldp x29, x30, [sp], #16");
        let ldr = Insn::Ldr {
            rt: Reg::x(8),
            rn: Reg::x(0),
            mode: AddrMode::Unsigned(40),
        };
        assert_eq!(ldr.to_string(), "ldr x8, [x0, #40]");
    }

    #[test]
    #[should_panic(expected = "bfi width out of range")]
    fn bfi_rejects_overwide_field() {
        let _ = Insn::bfi(Reg::x(0), Reg::x(1), 40, 32);
    }
}
