//! System registers reachable via `MSR`/`MRS` in the simulated machine.

use core::fmt;

/// A system register, identified by its `(op0, op1, CRn, CRm, op2)` tuple.
///
/// The set covers what the Camouflage design touches: the ten PAuth key
/// registers, `SCTLR_EL1` (whose `EnIA`/`EnIB`/`EnDA`/`EnDB` bits gate the
/// keys), translation-table bases, exception plumbing, and
/// `CONTEXTIDR_EL1` (which the paper uses as the side-effect-free `MSR`
/// target of the PA-analogue on pre-8.3 hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(clippy::upper_case_acronyms)]
pub enum SysReg {
    /// `SCTLR_EL1` — system control register (PAuth enable bits live here).
    SctlrEl1,
    /// `TTBR0_EL1` — user-half translation-table base.
    Ttbr0El1,
    /// `TTBR1_EL1` — kernel-half translation-table base.
    Ttbr1El1,
    /// `VBAR_EL1` — exception vector base.
    VbarEl1,
    /// `ESR_EL1` — exception syndrome.
    EsrEl1,
    /// `ELR_EL1` — exception link register.
    ElrEl1,
    /// `SPSR_EL1` — saved program status.
    SpsrEl1,
    /// `FAR_EL1` — fault address.
    FarEl1,
    /// `SP_EL0` — banked user stack pointer, accessible from EL1.
    SpEl0,
    /// `CONTEXTIDR_EL1` — context ID; PA-analogue `MSR` target.
    ContextidrEl1,
    /// `TPIDR_EL1` — EL1 software thread ID (holds `current` in Linux).
    TpidrEl1,
    /// `DAIF` — interrupt mask bits.
    Daif,
    /// `CNTVCT_EL0` — virtual counter (cycle source for benchmarks).
    CntvctEl0,
    /// `APIAKeyLo_EL1` — instruction key A, low half.
    ApiaKeyLoEl1,
    /// `APIAKeyHi_EL1` — instruction key A, high half.
    ApiaKeyHiEl1,
    /// `APIBKeyLo_EL1` — instruction key B, low half.
    ApibKeyLoEl1,
    /// `APIBKeyHi_EL1` — instruction key B, high half.
    ApibKeyHiEl1,
    /// `APDAKeyLo_EL1` — data key A, low half.
    ApdaKeyLoEl1,
    /// `APDAKeyHi_EL1` — data key A, high half.
    ApdaKeyHiEl1,
    /// `APDBKeyLo_EL1` — data key B, low half.
    ApdbKeyLoEl1,
    /// `APDBKeyHi_EL1` — data key B, high half.
    ApdbKeyHiEl1,
    /// `APGAKeyLo_EL1` — generic key, low half.
    ApgaKeyLoEl1,
    /// `APGAKeyHi_EL1` — generic key, high half.
    ApgaKeyHiEl1,
}

impl SysReg {
    /// All modeled system registers.
    pub const ALL: [SysReg; 23] = [
        SysReg::SctlrEl1,
        SysReg::Ttbr0El1,
        SysReg::Ttbr1El1,
        SysReg::VbarEl1,
        SysReg::EsrEl1,
        SysReg::ElrEl1,
        SysReg::SpsrEl1,
        SysReg::FarEl1,
        SysReg::SpEl0,
        SysReg::ContextidrEl1,
        SysReg::TpidrEl1,
        SysReg::Daif,
        SysReg::CntvctEl0,
        SysReg::ApiaKeyLoEl1,
        SysReg::ApiaKeyHiEl1,
        SysReg::ApibKeyLoEl1,
        SysReg::ApibKeyHiEl1,
        SysReg::ApdaKeyLoEl1,
        SysReg::ApdaKeyHiEl1,
        SysReg::ApdbKeyLoEl1,
        SysReg::ApdbKeyHiEl1,
        SysReg::ApgaKeyLoEl1,
        SysReg::ApgaKeyHiEl1,
    ];

    /// Number of modeled system registers (the length of [`SysReg::ALL`]).
    pub const COUNT: usize = SysReg::ALL.len();

    /// Dense index of this register, for array-backed register files.
    ///
    /// The CPU reads `TTBR0/1_EL1` (and friends) on every step to build
    /// its translation context, so system-register storage must be an
    /// array index away, not a tree lookup.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The `(op0, op1, CRn, CRm, op2)` encoding (ARM ARM, D17).
    pub fn fields(self) -> (u8, u8, u8, u8, u8) {
        match self {
            SysReg::SctlrEl1 => (3, 0, 1, 0, 0),
            SysReg::Ttbr0El1 => (3, 0, 2, 0, 0),
            SysReg::Ttbr1El1 => (3, 0, 2, 0, 1),
            SysReg::VbarEl1 => (3, 0, 12, 0, 0),
            SysReg::EsrEl1 => (3, 0, 5, 2, 0),
            SysReg::ElrEl1 => (3, 0, 4, 0, 1),
            SysReg::SpsrEl1 => (3, 0, 4, 0, 0),
            SysReg::FarEl1 => (3, 0, 6, 0, 0),
            SysReg::SpEl0 => (3, 0, 4, 1, 0),
            SysReg::ContextidrEl1 => (3, 0, 13, 0, 1),
            SysReg::TpidrEl1 => (3, 0, 13, 0, 4),
            SysReg::Daif => (3, 3, 4, 2, 1),
            SysReg::CntvctEl0 => (3, 3, 14, 0, 2),
            SysReg::ApiaKeyLoEl1 => (3, 0, 2, 1, 0),
            SysReg::ApiaKeyHiEl1 => (3, 0, 2, 1, 1),
            SysReg::ApibKeyLoEl1 => (3, 0, 2, 1, 2),
            SysReg::ApibKeyHiEl1 => (3, 0, 2, 1, 3),
            SysReg::ApdaKeyLoEl1 => (3, 0, 2, 2, 0),
            SysReg::ApdaKeyHiEl1 => (3, 0, 2, 2, 1),
            SysReg::ApdbKeyLoEl1 => (3, 0, 2, 2, 2),
            SysReg::ApdbKeyHiEl1 => (3, 0, 2, 2, 3),
            SysReg::ApgaKeyLoEl1 => (3, 0, 2, 3, 0),
            SysReg::ApgaKeyHiEl1 => (3, 0, 2, 3, 1),
        }
    }

    /// Decodes a register from its field tuple, if modeled.
    pub fn from_fields(fields: (u8, u8, u8, u8, u8)) -> Option<SysReg> {
        SysReg::ALL.into_iter().find(|sr| sr.fields() == fields)
    }

    /// Whether this register holds half of a PAuth key.
    ///
    /// These are exactly the registers the kernel's static verifier refuses
    /// to see read (`MRS`) anywhere in kernel or module code (§4.1).
    pub fn is_pauth_key(self) -> bool {
        matches!(
            self,
            SysReg::ApiaKeyLoEl1
                | SysReg::ApiaKeyHiEl1
                | SysReg::ApibKeyLoEl1
                | SysReg::ApibKeyHiEl1
                | SysReg::ApdaKeyLoEl1
                | SysReg::ApdaKeyHiEl1
                | SysReg::ApdbKeyLoEl1
                | SysReg::ApdbKeyHiEl1
                | SysReg::ApgaKeyLoEl1
                | SysReg::ApgaKeyHiEl1
        )
    }

    /// The architectural name.
    pub fn name(self) -> &'static str {
        match self {
            SysReg::SctlrEl1 => "sctlr_el1",
            SysReg::Ttbr0El1 => "ttbr0_el1",
            SysReg::Ttbr1El1 => "ttbr1_el1",
            SysReg::VbarEl1 => "vbar_el1",
            SysReg::EsrEl1 => "esr_el1",
            SysReg::ElrEl1 => "elr_el1",
            SysReg::SpsrEl1 => "spsr_el1",
            SysReg::FarEl1 => "far_el1",
            SysReg::SpEl0 => "sp_el0",
            SysReg::ContextidrEl1 => "contextidr_el1",
            SysReg::TpidrEl1 => "tpidr_el1",
            SysReg::Daif => "daif",
            SysReg::CntvctEl0 => "cntvct_el0",
            SysReg::ApiaKeyLoEl1 => "apiakeylo_el1",
            SysReg::ApiaKeyHiEl1 => "apiakeyhi_el1",
            SysReg::ApibKeyLoEl1 => "apibkeylo_el1",
            SysReg::ApibKeyHiEl1 => "apibkeyhi_el1",
            SysReg::ApdaKeyLoEl1 => "apdakeylo_el1",
            SysReg::ApdaKeyHiEl1 => "apdakeyhi_el1",
            SysReg::ApdbKeyLoEl1 => "apdbkeylo_el1",
            SysReg::ApdbKeyHiEl1 => "apdbkeyhi_el1",
            SysReg::ApgaKeyLoEl1 => "apgakeylo_el1",
            SysReg::ApgaKeyHiEl1 => "apgakeyhi_el1",
        }
    }
}

impl fmt::Display for SysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// `SCTLR_EL1` bit positions for the PAuth enable flags.
///
/// Clearing any of these disables the corresponding key class; the static
/// verifier therefore also rejects code that writes `SCTLR_EL1` (§4.1).
pub mod sctlr {
    /// Enable instruction key A (`EnIA`).
    pub const EN_IA: u64 = 1 << 31;
    /// Enable instruction key B (`EnIB`).
    pub const EN_IB: u64 = 1 << 30;
    /// Enable data key A (`EnDA`).
    pub const EN_DA: u64 = 1 << 27;
    /// Enable data key B (`EnDB`).
    pub const EN_DB: u64 = 1 << 13;
    /// All four PAuth enable bits.
    pub const EN_ALL: u64 = EN_IA | EN_IB | EN_DA | EN_DB;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_round_trip() {
        for sr in SysReg::ALL {
            assert_eq!(SysReg::from_fields(sr.fields()), Some(sr), "{sr}");
        }
    }

    #[test]
    fn fields_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for sr in SysReg::ALL {
            assert!(seen.insert(sr.fields()), "duplicate fields for {sr}");
        }
    }

    #[test]
    fn exactly_ten_key_registers() {
        let n = SysReg::ALL.iter().filter(|sr| sr.is_pauth_key()).count();
        assert_eq!(n, 10);
    }

    #[test]
    fn key_registers_share_crn_crm_space() {
        // All PAuth key registers live at op0=3, op1=0, CRn=2, CRm in 1..=3.
        for sr in SysReg::ALL.iter().filter(|sr| sr.is_pauth_key()) {
            let (op0, op1, crn, crm, _) = sr.fields();
            assert_eq!((op0, op1, crn), (3, 0, 2));
            assert!((1..=3).contains(&crm));
        }
    }

    #[test]
    fn sctlr_enable_bits_are_distinct() {
        use sctlr::*;
        assert_eq!(EN_ALL.count_ones(), 4);
        assert_eq!(EN_IA & EN_IB, 0);
        assert_eq!(EN_DA & EN_DB, 0);
    }

    #[test]
    fn unknown_fields_decode_to_none() {
        assert_eq!(SysReg::from_fields((3, 7, 15, 15, 7)), None);
    }
}
