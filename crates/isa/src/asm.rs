//! A small assembler: instruction sequences with labels and fixups.
//!
//! `camo-codegen` and `camo-boot` build all executable code through this
//! interface — function prologues, the XOM key setter, syscall stubs — and
//! hand the resulting [`CodeBlock`]s to the loader, which writes the encoded
//! bytes into simulated memory.

use crate::{encode, Insn, Reg};
use std::collections::HashMap;

/// A forward-referenceable code position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    B,
    Bl,
    Cbz(Reg),
    Cbnz(Reg),
    Adr(Reg),
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    index: usize,
    label: Label,
    kind: FixupKind,
}

/// An append-only assembler with label resolution.
///
/// # Example
///
/// ```
/// use camo_isa::{Assembler, Insn, Reg};
///
/// let mut asm = Assembler::new();
/// let loop_top = asm.new_label();
/// asm.bind(loop_top);
/// asm.push(Insn::SubImm { rd: Reg::x(0), rn: Reg::x(0), imm12: 1, shifted: false });
/// asm.cbnz(Reg::x(0), loop_top);
/// asm.push(Insn::ret());
/// let block = asm.finish(0xffff_0000_0000_0000);
/// assert_eq!(block.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    insns: Vec<Insn>,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice at instruction {}",
            self.insns.len()
        );
        self.labels[label.0] = Some(self.insns.len());
    }

    /// Appends a fully-formed instruction.
    pub fn push(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    /// Appends several instructions.
    pub fn extend(&mut self, insns: impl IntoIterator<Item = Insn>) {
        self.insns.extend(insns);
    }

    /// Current instruction count (next instruction index).
    pub fn position(&self) -> usize {
        self.insns.len()
    }

    fn push_fixup(&mut self, label: Label, kind: FixupKind, placeholder: Insn) {
        self.fixups.push(Fixup {
            index: self.insns.len(),
            label,
            kind,
        });
        self.insns.push(placeholder);
    }

    /// Appends `b label`.
    pub fn b(&mut self, label: Label) {
        self.push_fixup(label, FixupKind::B, Insn::B { offset: 0 });
    }

    /// Appends `bl label`.
    pub fn bl(&mut self, label: Label) {
        self.push_fixup(label, FixupKind::Bl, Insn::Bl { offset: 0 });
    }

    /// Appends `cbz rt, label`.
    pub fn cbz(&mut self, rt: Reg, label: Label) {
        self.push_fixup(label, FixupKind::Cbz(rt), Insn::Cbz { rt, offset: 0 });
    }

    /// Appends `cbnz rt, label`.
    pub fn cbnz(&mut self, rt: Reg, label: Label) {
        self.push_fixup(label, FixupKind::Cbnz(rt), Insn::Cbnz { rt, offset: 0 });
    }

    /// Appends `adr rd, label`.
    pub fn adr(&mut self, rd: Reg, label: Label) {
        self.push_fixup(label, FixupKind::Adr(rd), Insn::Adr { rd, offset: 0 });
    }

    /// Resolves all fixups and produces a code block based at `base_va`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound or a branch target is out
    /// of range for its encoding.
    pub fn finish(mut self, base_va: u64) -> CodeBlock {
        for fixup in &self.fixups {
            let target = self.labels[fixup.label.0]
                .unwrap_or_else(|| panic!("unbound label used at instruction {}", fixup.index));
            let offset = (target as i64 - fixup.index as i64) * 4;
            let offset = i32::try_from(offset).expect("branch distance overflows i32");
            self.insns[fixup.index] = match fixup.kind {
                FixupKind::B => Insn::B { offset },
                FixupKind::Bl => Insn::Bl { offset },
                FixupKind::Cbz(rt) => Insn::Cbz { rt, offset },
                FixupKind::Cbnz(rt) => Insn::Cbnz { rt, offset },
                FixupKind::Adr(rd) => Insn::Adr { rd, offset },
            };
        }
        let label_vas = self
            .labels
            .iter()
            .enumerate()
            .filter_map(|(i, pos)| pos.map(|p| (Label(i), base_va + 4 * p as u64)))
            .collect();
        CodeBlock {
            base_va,
            insns: self.insns,
            label_vas,
        }
    }
}

/// A finished, position-resolved sequence of instructions.
#[derive(Debug, Clone)]
pub struct CodeBlock {
    base_va: u64,
    insns: Vec<Insn>,
    label_vas: HashMap<Label, u64>,
}

impl CodeBlock {
    /// The virtual address of the first instruction.
    pub fn base_va(&self) -> u64 {
        self.base_va
    }

    /// The instructions in program order.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.insns.len() as u64 * 4
    }

    /// The encoded little-endian machine code.
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::encode::encode_all(&self.insns)
    }

    /// The encoded 32-bit words.
    pub fn to_words(&self) -> Vec<u32> {
        self.insns.iter().map(encode).collect()
    }

    /// The virtual address a bound label resolved to.
    pub fn label_va(&self, label: Label) -> Option<u64> {
        self.label_vas.get(&label).copied()
    }

    /// Pretty-prints the block as `va: encoding  mnemonic` lines.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            let va = self.base_va + 4 * i as u64;
            let _ = writeln!(out, "{va:#018x}: {:08x}  {insn}", encode(insn));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn backward_branch_resolves_negative() {
        let mut asm = Assembler::new();
        let top = asm.new_label();
        asm.bind(top);
        asm.push(Insn::Nop);
        asm.b(top);
        let block = asm.finish(0x1000);
        assert_eq!(block.insns()[1], Insn::B { offset: -4 });
    }

    #[test]
    fn forward_branch_resolves_positive() {
        let mut asm = Assembler::new();
        let end = asm.new_label();
        asm.cbz(Reg::x(0), end);
        asm.push(Insn::Nop);
        asm.push(Insn::Nop);
        asm.bind(end);
        asm.push(Insn::ret());
        let block = asm.finish(0);
        assert_eq!(
            block.insns()[0],
            Insn::Cbz {
                rt: Reg::x(0),
                offset: 12
            }
        );
    }

    #[test]
    fn adr_points_at_label_va() {
        let mut asm = Assembler::new();
        let data = asm.new_label();
        asm.adr(Reg::x(0), data);
        asm.push(Insn::ret());
        asm.bind(data);
        asm.push(Insn::Nop);
        let block = asm.finish(0x4000);
        assert_eq!(
            block.insns()[0],
            Insn::Adr {
                rd: Reg::x(0),
                offset: 8
            }
        );
        assert_eq!(block.label_va(data), Some(0x4008));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut asm = Assembler::new();
        let nowhere = asm.new_label();
        asm.b(nowhere);
        let _ = asm.finish(0);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn block_bytes_decode_back() {
        let mut asm = Assembler::new();
        asm.push(Insn::PacSp {
            key: crate::InsnKey::B,
        });
        asm.push(Insn::ret());
        let block = asm.finish(0);
        let words = block.to_words();
        assert_eq!(
            decode(words[0]),
            Some(Insn::PacSp {
                key: crate::InsnKey::B
            })
        );
        assert_eq!(decode(words[1]), Some(Insn::ret()));
        assert_eq!(block.size_bytes(), 8);
    }

    #[test]
    fn listing_contains_va_and_mnemonic() {
        let mut asm = Assembler::new();
        asm.push(Insn::Nop);
        let block = asm.finish(0xffff_0000_0000_1000);
        let listing = block.listing();
        assert!(listing.contains("0xffff000000001000"));
        assert!(listing.contains("nop"));
    }
}
