//! Instruction cycle-cost model.
//!
//! The paper could not measure on real ARMv8.3 silicon (none existed), so it
//! ran on a Raspberry Pi 3 (Cortex-A53) with a *PA-analogue*: every PAuth
//! instruction replaced by a sequence exhibiting the estimated 4-cycle PAuth
//! latency, and key-register writes replaced by side-effect-free
//! `CONTEXTIDR_EL1` writes (§6.1). This cost model reproduces that
//! methodology: a simple in-order core with single-cycle ALU ops and a fixed
//! 4-cycle charge per PAuth operation.
//!
//! With these defaults, installing one kernel key through the XOM setter
//! (8 move-immediates + 2 `MSR`) costs 12 cycles and restoring one user key
//! from `thread_struct` (`LDP` + 2 `MSR`) costs 6; a full syscall switches
//! keys in both directions, averaging ≈9 cycles per key — the paper's
//! §6.1.1 measurement.

use crate::Insn;

/// Estimated PAuth instruction latency used by the paper's PA-analogue.
pub const PA_ANALOGUE_CYCLES: u64 = 4;

/// Per-class cycle costs for the simulated core.
///
/// The defaults approximate a Cortex-A53: in-order, modest exception
/// entry/exit cost, 4-cycle PAuth per the PA-analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU operations (add/sub/logic/bitfield/adr).
    pub alu: u64,
    /// Move-wide immediates (`MOVZ`/`MOVK`/`MOVN`).
    pub move_wide: u64,
    /// Single-register load.
    pub load: u64,
    /// Single-register store.
    pub store: u64,
    /// Load pair.
    pub load_pair: u64,
    /// Store pair.
    pub store_pair: u64,
    /// Direct branch / branch-and-link.
    pub branch: u64,
    /// Indirect branch (`BR`/`BLR`/`RET`).
    pub branch_indirect: u64,
    /// PAuth sign/authenticate/strip (the PA-analogue figure).
    pub pauth: u64,
    /// `SVC` exception entry.
    pub svc: u64,
    /// `ERET` exception return.
    pub eret: u64,
    /// `MSR` system-register write.
    pub msr: u64,
    /// `MRS` system-register read.
    pub mrs: u64,
    /// `NOP` and hint-space instructions executing as NOP.
    pub nop: u64,
    /// `BRK` (never returns; cost of reaching the debug trap).
    pub brk: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            move_wide: 1,
            load: 2,
            store: 1,
            load_pair: 2,
            store_pair: 2,
            branch: 1,
            branch_indirect: 2,
            pauth: PA_ANALOGUE_CYCLES,
            svc: 32,
            eret: 32,
            msr: 2,
            mrs: 2,
            nop: 1,
            brk: 1,
        }
    }
}

impl CostModel {
    /// A model with PAuth instructions costing zero.
    ///
    /// Useful for ablations isolating the cost of key switching from the
    /// cost of sign/authenticate operations.
    pub fn free_pauth() -> Self {
        CostModel {
            pauth: 0,
            ..CostModel::default()
        }
    }

    /// The cycle cost of `insn` under this model.
    pub fn cycles(&self, insn: &Insn) -> u64 {
        match insn {
            Insn::Movz { .. } | Insn::Movk { .. } | Insn::Movn { .. } => self.move_wide,
            Insn::AddImm { .. }
            | Insn::SubImm { .. }
            | Insn::AddReg { .. }
            | Insn::SubReg { .. }
            | Insn::AndReg { .. }
            | Insn::OrrReg { .. }
            | Insn::EorReg { .. }
            | Insn::Bfm { .. }
            | Insn::Ubfm { .. }
            | Insn::Adr { .. } => self.alu,
            Insn::Ldr { .. } => self.load,
            Insn::Str { .. } => self.store,
            Insn::Ldp { .. } => self.load_pair,
            Insn::Stp { .. } => self.store_pair,
            Insn::B { .. } | Insn::Bl { .. } => self.branch,
            Insn::Br { .. } | Insn::Blr { .. } | Insn::Ret { .. } => self.branch_indirect,
            Insn::Cbz { .. } | Insn::Cbnz { .. } => self.branch,
            Insn::Svc { .. } => self.svc,
            Insn::Brk { .. } => self.brk,
            Insn::Eret => self.eret,
            Insn::Nop => self.nop,
            Insn::Msr { .. } => self.msr,
            Insn::Mrs { .. } => self.mrs,
            Insn::Pac { .. }
            | Insn::Aut { .. }
            | Insn::PacSp { .. }
            | Insn::AutSp { .. }
            | Insn::Pac1716 { .. }
            | Insn::Aut1716 { .. }
            | Insn::Xpaci { .. }
            | Insn::Xpacd { .. }
            | Insn::Pacga { .. } => self.pauth,
            // Combined forms pay both the authentication and the branch.
            Insn::Reta { .. } | Insn::Blra { .. } | Insn::Bra { .. } => {
                self.pauth + self.branch_indirect
            }
        }
    }
}

/// The cycle cost of `insn` under the default model.
///
/// # Example
///
/// ```
/// use camo_isa::{cycles, Insn, InsnKey, PA_ANALOGUE_CYCLES};
/// assert_eq!(cycles(&Insn::PacSp { key: InsnKey::B }), PA_ANALOGUE_CYCLES);
/// ```
pub fn cycles(insn: &Insn) -> u64 {
    CostModel::default().cycles(insn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InsnKey, PacKey, Reg};

    #[test]
    fn pauth_costs_four_cycles() {
        let model = CostModel::default();
        let pac = Insn::Pac {
            key: PacKey::IB,
            rd: Reg::LR,
            rn: Reg::IP0,
        };
        assert_eq!(model.cycles(&pac), PA_ANALOGUE_CYCLES);
        assert_eq!(
            model.cycles(&Insn::Aut1716 { key: InsnKey::B }),
            PA_ANALOGUE_CYCLES
        );
    }

    #[test]
    fn combined_forms_cost_more_than_parts() {
        let model = CostModel::default();
        let retab = Insn::Reta { key: InsnKey::B };
        assert_eq!(model.cycles(&retab), model.pauth + model.branch_indirect);
        assert!(model.cycles(&retab) > model.cycles(&Insn::ret()));
    }

    #[test]
    fn free_pauth_ablation() {
        let model = CostModel::free_pauth();
        assert_eq!(model.cycles(&Insn::Xpaci { rd: Reg::x(0) }), 0);
        assert_eq!(model.cycles(&Insn::Nop), 1);
    }

    #[test]
    fn exception_entry_dominates_alu() {
        let model = CostModel::default();
        assert!(model.cycles(&Insn::Svc { imm: 0 }) > 10 * model.alu);
        assert!(model.cycles(&Insn::Eret) > 10 * model.alu);
    }
}
