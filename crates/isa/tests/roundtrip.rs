//! Property tests: the encoder and decoder are exact inverses.

use camo_isa::{decode, encode, AddrMode, Insn, InsnKey, PacKey, PairMode, Reg, SysReg};
use proptest::prelude::*;

fn any_reg_zr() -> impl Strategy<Value = Reg> {
    prop_oneof![(0u8..=30).prop_map(Reg::x), Just(Reg::Xzr)]
}

fn any_reg_sp() -> impl Strategy<Value = Reg> {
    prop_oneof![(0u8..=30).prop_map(Reg::x), Just(Reg::Sp)]
}

fn any_gpr() -> impl Strategy<Value = Reg> {
    (0u8..=30).prop_map(Reg::x)
}

fn any_sysreg() -> impl Strategy<Value = SysReg> {
    prop::sample::select(SysReg::ALL.to_vec())
}

fn any_pac_key() -> impl Strategy<Value = PacKey> {
    prop::sample::select(vec![PacKey::IA, PacKey::IB, PacKey::DA, PacKey::DB])
}

fn any_insn_key() -> impl Strategy<Value = InsnKey> {
    prop::sample::select(vec![InsnKey::A, InsnKey::B])
}

fn any_addr_mode() -> impl Strategy<Value = AddrMode> {
    prop_oneof![
        (0u16..4096).prop_map(|i| AddrMode::Unsigned(i * 8)),
        (-256i16..256).prop_map(AddrMode::Post),
        (-256i16..256).prop_map(AddrMode::Pre),
    ]
}

fn any_pair_mode() -> impl Strategy<Value = PairMode> {
    prop_oneof![
        (-64i16..64).prop_map(|i| PairMode::SignedOffset(i * 8)),
        (-64i16..64).prop_map(|i| PairMode::Post(i * 8)),
        (-64i16..64).prop_map(|i| PairMode::Pre(i * 8)),
    ]
}

fn any_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (any_reg_zr(), any::<u16>(), 0u8..4).prop_map(|(rd, imm16, shift)| Insn::Movz {
            rd,
            imm16,
            shift
        }),
        (any_reg_zr(), any::<u16>(), 0u8..4).prop_map(|(rd, imm16, shift)| Insn::Movk {
            rd,
            imm16,
            shift
        }),
        (any_reg_zr(), any::<u16>(), 0u8..4).prop_map(|(rd, imm16, shift)| Insn::Movn {
            rd,
            imm16,
            shift
        }),
        (any_reg_sp(), any_reg_sp(), 0u16..4096, any::<bool>()).prop_map(
            |(rd, rn, imm12, shifted)| Insn::AddImm {
                rd,
                rn,
                imm12,
                shifted
            }
        ),
        (any_reg_sp(), any_reg_sp(), 0u16..4096, any::<bool>()).prop_map(
            |(rd, rn, imm12, shifted)| Insn::SubImm {
                rd,
                rn,
                imm12,
                shifted
            }
        ),
        (any_reg_zr(), any_reg_zr(), any_reg_zr()).prop_map(|(rd, rn, rm)| Insn::AddReg {
            rd,
            rn,
            rm
        }),
        (any_reg_zr(), any_reg_zr(), any_reg_zr()).prop_map(|(rd, rn, rm)| Insn::SubReg {
            rd,
            rn,
            rm
        }),
        (any_reg_zr(), any_reg_zr(), any_reg_zr()).prop_map(|(rd, rn, rm)| Insn::AndReg {
            rd,
            rn,
            rm
        }),
        (any_reg_zr(), any_reg_zr(), any_reg_zr()).prop_map(|(rd, rn, rm)| Insn::OrrReg {
            rd,
            rn,
            rm
        }),
        (any_reg_zr(), any_reg_zr(), any_reg_zr()).prop_map(|(rd, rn, rm)| Insn::EorReg {
            rd,
            rn,
            rm
        }),
        (any_reg_zr(), any_reg_zr(), 0u8..64, 0u8..64).prop_map(|(rd, rn, immr, imms)| Insn::Bfm {
            rd,
            rn,
            immr,
            imms
        }),
        (any_reg_zr(), any_reg_zr(), 0u8..64, 0u8..64)
            .prop_map(|(rd, rn, immr, imms)| Insn::Ubfm { rd, rn, immr, imms }),
        (any_reg_zr(), -(1i32 << 20)..(1i32 << 20))
            .prop_map(|(rd, offset)| Insn::Adr { rd, offset }),
        (any_reg_zr(), any_reg_sp(), any_addr_mode()).prop_map(|(rt, rn, mode)| Insn::Ldr {
            rt,
            rn,
            mode
        }),
        (any_reg_zr(), any_reg_sp(), any_addr_mode()).prop_map(|(rt, rn, mode)| Insn::Str {
            rt,
            rn,
            mode
        }),
        (any_reg_zr(), any_reg_zr(), any_reg_sp(), any_pair_mode())
            .prop_map(|(rt, rt2, rn, mode)| Insn::Ldp { rt, rt2, rn, mode }),
        (any_reg_zr(), any_reg_zr(), any_reg_sp(), any_pair_mode())
            .prop_map(|(rt, rt2, rn, mode)| Insn::Stp { rt, rt2, rn, mode }),
        (-(1i32 << 25)..(1i32 << 25)).prop_map(|w| Insn::B { offset: w * 4 }),
        (-(1i32 << 25)..(1i32 << 25)).prop_map(|w| Insn::Bl { offset: w * 4 }),
        any_reg_zr().prop_map(|rn| Insn::Br { rn }),
        any_reg_zr().prop_map(|rn| Insn::Blr { rn }),
        any_reg_zr().prop_map(|rn| Insn::Ret { rn }),
        (any_reg_zr(), -(1i32 << 18)..(1i32 << 18))
            .prop_map(|(rt, w)| Insn::Cbz { rt, offset: w * 4 }),
        (any_reg_zr(), -(1i32 << 18)..(1i32 << 18))
            .prop_map(|(rt, w)| Insn::Cbnz { rt, offset: w * 4 }),
        any::<u16>().prop_map(|imm| Insn::Svc { imm }),
        any::<u16>().prop_map(|imm| Insn::Brk { imm }),
        Just(Insn::Eret),
        Just(Insn::Nop),
        (any_sysreg(), any_reg_zr()).prop_map(|(sr, rt)| Insn::Msr { sr, rt }),
        (any_reg_zr(), any_sysreg()).prop_map(|(rt, sr)| Insn::Mrs { rt, sr }),
        (any_pac_key(), any_reg_zr(), any_reg_sp()).prop_map(|(key, rd, rn)| Insn::Pac {
            key,
            rd,
            rn
        }),
        (any_pac_key(), any_reg_zr(), any_reg_sp()).prop_map(|(key, rd, rn)| Insn::Aut {
            key,
            rd,
            rn
        }),
        any_insn_key().prop_map(|key| Insn::PacSp { key }),
        any_insn_key().prop_map(|key| Insn::AutSp { key }),
        any_insn_key().prop_map(|key| Insn::Pac1716 { key }),
        any_insn_key().prop_map(|key| Insn::Aut1716 { key }),
        any_reg_zr().prop_map(|rd| Insn::Xpaci { rd }),
        any_reg_zr().prop_map(|rd| Insn::Xpacd { rd }),
        (any_gpr(), any_gpr(), any_gpr()).prop_map(|(rd, rn, rm)| Insn::Pacga { rd, rn, rm }),
        any_insn_key().prop_map(|key| Insn::Reta { key }),
        (any_insn_key(), any_reg_zr(), any_reg_sp()).prop_map(|(key, rn, rm)| Insn::Blra {
            key,
            rn,
            rm
        }),
        (any_insn_key(), any_reg_zr(), any_reg_sp()).prop_map(|(key, rn, rm)| Insn::Bra {
            key,
            rn,
            rm
        }),
    ]
}

proptest! {
    /// encode → decode is the identity on every representable instruction.
    #[test]
    fn encode_decode_roundtrip(insn in any_insn()) {
        let word = encode(&insn);
        prop_assert_eq!(decode(word), Some(insn), "word {:#010x}", word);
    }

    /// decode → encode is the identity on every word that decodes at all:
    /// the decoder never loses or invents operand bits.
    #[test]
    fn decode_encode_roundtrip(word in any::<u32>()) {
        if let Some(insn) = decode(word) {
            prop_assert_eq!(encode(&insn), word, "{}", insn);
        }
    }

    /// The display form is never empty and never panics.
    #[test]
    fn display_total(insn in any_insn()) {
        prop_assert!(!insn.to_string().is_empty());
    }
}
