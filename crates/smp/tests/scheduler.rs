//! Determinism torture tests for the work-stealing fleet scheduler.
//!
//! The contract under test: the *host* schedule — worker count, steal
//! order, where each slice runs — is invisible to the *simulated*
//! schedule. For any plan (any shard count, tenant mix, priority vector,
//! cycle budgets, mid-run tenant exits), a work-stealing drive at any
//! worker count is bit-identical to the sequential oracle on cycles,
//! architectural counters, and all telemetry counters.
//!
//! Every property here is seeded through the vendored proptest's
//! per-test deterministic RNG (`test_runner::rng_for`), so CI explores
//! the same cases on every machine. Fleet cases boot real machines, so
//! the expensive properties cap their case count (still overridable
//! downward via `PROPTEST_CASES`).

use camo_smp::{FleetDriver, FleetPlan, FleetReport};
use camo_workloads::TenantSpec;
use proptest::prelude::*;
use proptest::strategy::TestRng;

/// `PROPTEST_CASES`, capped: fleet properties boot `shards` machines per
/// drive, so they run fewer cases than a pure in-memory property would.
fn cases(cap: u32) -> u32 {
    proptest::test_runner::cases().min(cap)
}

/// Samples a random fleet plan: 1–16 shards, 1–64 tenants with mixed
/// workloads, weights 1–4, sporadic cycle budgets, telemetry on (so the
/// identity covers every telemetry counter), 1–2 cores per shard.
///
/// Large tenant counts pin `cpus_per_shard` to 1 and cap the number of
/// multi-task mixes so the per-machine task population stays inside the
/// kernel's fixed stack-stride region.
fn sample_plan(rng: &mut TestRng, case: u32) -> FleetPlan {
    let shards = (1usize..=16).sample(rng);
    let cpus = (1usize..=2).sample(rng);
    let max_tenants = if cpus == 2 { 24 } else { 64 };
    let tenant_count = (1usize..=max_tenants).sample(rng);
    let mut tenants = Vec::with_capacity(tenant_count);
    let mut heavy = 0usize; // multi-task mixes admitted so far
    for idx in 0..tenant_count {
        let name = format!("t{idx}");
        let kind = (0u8..=3).sample(rng);
        let mut spec = if heavy < 6 && kind > 0 {
            heavy += 1;
            match kind {
                1 => TenantSpec::process_churn(name, (2u64..=8).sample(rng)),
                2 => TenantSpec::module_churn(name, (2u64..=6).sample(rng)),
                _ => TenantSpec::tenant_mix(name, (2u64..=8).sample(rng)),
            }
        } else {
            TenantSpec::lmbench(name, (4u64..=32).sample(rng))
        };
        spec = spec.with_weight((1u32..=4).sample(rng));
        if idx % 3 == 2 {
            spec = spec.with_cycle_budget((500u64..=5000).sample(rng));
        }
        tenants.push(spec);
    }
    let mut plan = FleetPlan::new(shards, 0x9000 + u64::from(case), tenants);
    plan.cpus_per_shard = cpus;
    plan.telemetry = true;
    plan
}

/// Asserts the full bit-identity the scheduler promises, with pointed
/// messages for the pieces `simulation_identical` folds together.
fn assert_identical(label: &str, a: &FleetReport, b: &FleetReport) {
    assert_eq!(a.cycles, b.cycles, "{label}: cycles diverged");
    assert_eq!(
        a.instructions, b.instructions,
        "{label}: instructions diverged"
    );
    assert_eq!(a.stats, b.stats, "{label}: merged CpuStats diverged");
    for (x, y) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(
            x.series, y.series,
            "{label}: tenant {} telemetry series diverged",
            x.name
        );
        assert_eq!(
            x.sched, y.sched,
            "{label}: tenant {} schedule record diverged",
            x.name
        );
    }
    assert!(
        a.simulation_identical(b),
        "{label}: simulation_identical failed"
    );
}

/// Satellite 1: for random plans across the whole parameter space, the
/// work-stealing drive is bit-identical to the sequential oracle on
/// cycles, arch counters, and every telemetry counter.
#[test]
fn steal_schedule_matches_sequential_oracle() {
    let mut rng = proptest::test_runner::rng_for("steal_schedule_matches_sequential_oracle");
    for case in 0..cases(8) {
        let plan = sample_plan(&mut rng, case);
        let workers = (1usize..=5).sample(&mut rng);
        let oracle = FleetDriver::drive_sequential(&plan).expect("oracle runs");
        let steal = FleetDriver::drive_with_workers(&plan, workers).expect("steal pool runs");
        assert_eq!(steal.exec.workers, workers);
        assert_identical(
            &format!(
                "case {case}: {} shards x {} tenants, {workers} workers",
                plan.shards,
                plan.tenants.len()
            ),
            &steal,
            &oracle,
        );
    }
}

/// A fixed mixed plan with weights, budgets, and an adversarial tenant —
/// the shape the stress and drain properties share.
fn stress_plan(seed: u64) -> FleetPlan {
    let mut plan = FleetPlan::new(
        4,
        seed,
        vec![
            TenantSpec::lmbench("web", 96).with_weight(3),
            TenantSpec::lmbench("api", 64).with_cycle_budget(4_000),
            TenantSpec::process_churn("build-farm", 8),
            TenantSpec::module_churn("driver-ci", 6).with_weight(2),
            TenantSpec::tenant_mix("batch", 10).with_cycle_budget(2_500),
            TenantSpec::fuzz("fuzz-0", 12),
        ],
    );
    plan.cpus_per_shard = 2;
    plan.telemetry = true;
    // The fuzz tenant *expects* PAC failures; raise the §5.4 panic
    // threshold so the run measures the policy instead of halting on it.
    plan.pac_panic_threshold = Some(u32::MAX);
    plan
}

/// Satellite 2: the same plan across 8 runs with perturbed worker counts
/// (1, 2, N, 2N) produces identical reports — host-schedule-dependent
/// nondeterminism the 1:1 model could never exhibit would surface here.
#[test]
fn worker_count_perturbation_is_invisible() {
    let plan = stress_plan(0x57EA1);
    let n = FleetDriver::default_workers(&plan);
    let oracle = FleetDriver::drive_sequential(&plan).expect("oracle runs");
    let counts = [1, 2, n, 2 * n, 1, 2, n, 2 * n];
    for (run, workers) in counts.into_iter().enumerate() {
        let report = FleetDriver::drive_with_workers(&plan, workers).expect("pool runs");
        assert_identical(
            &format!("run {run} with {workers} workers"),
            &report,
            &oracle,
        );
    }
    // The legacy 1:1 mode is just another host schedule.
    let threaded = FleetDriver::drive_threaded(&plan).expect("1:1 runs");
    assert_identical("1:1 threaded baseline", &threaded, &oracle);
}

/// Satellite 3a: a tenant whose quota drains mid-run leaves the rotation
/// and frees its weighted-fair share to the residue — without skewing
/// any other tenant's simulated service. Other tenants' totals are
/// bit-identical to a plan in which the early-exiting tenant never
/// existed (name-seeded streams make this exact).
#[test]
fn drained_tenant_frees_share_without_skewing_others() {
    let survivors = vec![
        TenantSpec::lmbench("web", 96).with_weight(2),
        TenantSpec::tenant_mix("batch", 12),
    ];
    let mut with_spike = survivors.clone();
    // Heavy weight + tiny quota: the spike grabs a large share per sweep
    // and drains within the first few sweeps.
    with_spike.push(TenantSpec::process_churn("spike", 4).with_weight(4));

    let mut base = FleetPlan::new(2, 0xD0A1, survivors);
    base.cpus_per_shard = 2;
    let mut spiked = FleetPlan::new(2, base.seed, with_spike);
    spiked.cpus_per_shard = 2;

    let oracle = FleetDriver::drive_sequential(&spiked).expect("spiked plan runs");
    let steal = FleetDriver::drive_with_workers(&spiked, 3).expect("steal pool runs");
    assert_identical("spiked plan", &steal, &oracle);

    let spike = oracle
        .tenants
        .iter()
        .find(|t| t.name == "spike")
        .expect("spike served");
    let web = oracle.tenants.iter().find(|t| t.name == "web").unwrap();
    assert_eq!(spike.totals.ops, 4, "spike quota hit exactly");
    assert!(
        spike.sched.drained_sweep.is_some(),
        "spike drained mid-run and left the rotation"
    );
    assert!(
        web.sched.sweeps_served > spike.sched.sweeps_served,
        "survivors kept being served after the spike drained"
    );

    // The spike's existence — its service, its drain, the residue
    // reweighting — must not move a single architectural quantity of
    // the surviving tenants.
    let baseline = FleetDriver::drive_sequential(&base).expect("baseline runs");
    for x in &baseline.tenants {
        let y = oracle
            .tenants
            .iter()
            .find(|t| t.name == x.name)
            .expect("survivor served in both plans");
        assert_eq!(x.totals.ops, y.totals.ops, "{} ops", x.name);
        assert_eq!(x.totals.syscalls, y.totals.syscalls, "{} syscalls", x.name);
        assert_eq!(
            x.totals.instructions, y.totals.instructions,
            "{} instructions",
            x.name
        );
        assert_eq!(x.totals.cycles, y.totals.cycles, "{} cycles", x.name);
        assert!(
            x.totals.stats.arch_eq(&y.totals.stats),
            "{}: architectural counters moved when the spike tenant drained",
            x.name
        );
    }
}

/// Satellite 3b: an adversarial tenant whose sacrificial tasks are
/// killed by the §5.4 policy and reclaimed by `Kernel::reap_task` drains
/// exactly like a benign one: every hostile op matches its declared
/// outcome (the matrix-24 discipline), benign tenants are bit-identical
/// to an attack-free baseline, and the whole thing is steal-invariant.
#[test]
fn reaped_hostile_tenant_drains_cleanly() {
    let benign = vec![
        TenantSpec::lmbench("web", 64),
        TenantSpec::tenant_mix("batch", 10).with_weight(2),
    ];
    let mut hostile = benign.clone();
    hostile.push(TenantSpec::fuzz("fuzz-0", 18).with_weight(3));

    let mut base = FleetPlan::new(2, 0xFA22, benign);
    base.cpus_per_shard = 2;
    base.pac_panic_threshold = Some(u32::MAX);
    let mut attacked = FleetPlan::new(2, base.seed, hostile);
    attacked.cpus_per_shard = 2;
    attacked.pac_panic_threshold = Some(u32::MAX);

    let oracle = FleetDriver::drive_sequential(&attacked).expect("attacked plan runs");
    let steal = FleetDriver::drive_with_workers(&attacked, 2).expect("steal pool runs");
    assert_identical("attacked plan", &steal, &oracle);

    let fuzz = oracle
        .tenants
        .iter()
        .find(|t| t.name == "fuzz-0")
        .expect("fuzz tenant served");
    assert!(fuzz.totals.hostile.attempted > 0, "attacks were mounted");
    assert_eq!(
        fuzz.totals.hostile.matched, fuzz.totals.hostile.attempted,
        "every hostile op matched its declared outcome"
    );
    for record in &fuzz.totals.hostile.records {
        assert!(record.matched, "hostile op {:?} misattributed", record.op);
    }
    assert!(
        fuzz.sched.drained_sweep.is_some(),
        "the fuzz tenant drained (its kills were reaped, not leaked)"
    );

    // Benign tenants: bit-identical to the attack-free baseline.
    let baseline = FleetDriver::drive_sequential(&base).expect("baseline runs");
    for x in &baseline.tenants {
        let y = oracle.tenants.iter().find(|t| t.name == x.name).unwrap();
        assert_eq!(x.totals.cycles, y.totals.cycles, "{} cycles", x.name);
        assert_eq!(x.totals.ops, y.totals.ops, "{} ops", x.name);
        assert!(
            x.totals.stats.arch_eq(&y.totals.stats),
            "{}: attacks next door moved architectural counters",
            x.name
        );
        assert_eq!(
            x.totals.hostile.benign_pac_events, 0,
            "{}: false positive under adversarial co-tenancy",
            x.name
        );
    }
}

/// Weighted fair queueing is exact: a weight-w tenant is served w op
/// slots per sweep, so an ops-quota tenant drains at `ceil(quota / w)`.
#[test]
fn weighted_fair_queueing_serves_proportionally() {
    let plan = FleetPlan::new(
        1,
        0x3FA1,
        vec![
            TenantSpec::tenant_mix("heavy", 30).with_weight(3),
            TenantSpec::tenant_mix("light", 30),
        ],
    );
    let report = FleetDriver::drive(&plan).expect("plan runs");
    let heavy = report.tenants.iter().find(|t| t.name == "heavy").unwrap();
    let light = report.tenants.iter().find(|t| t.name == "light").unwrap();
    assert_eq!(heavy.sched.drained_sweep, Some(10), "30 ops at 3 per sweep");
    assert_eq!(light.sched.drained_sweep, Some(30), "30 ops at 1 per sweep");
    assert_eq!(heavy.sched.ops_served, 30);
    assert_eq!(report.shards[0].sweeps, 30, "the shard ran to the slowest");
}

/// Cycle budgets throttle deterministically: a budgeted tenant skips
/// whole sweeps while its simulated-cycle credit is exhausted, still
/// completes its quota, and the throttle schedule is bit-identical
/// across drive modes.
#[test]
fn cycle_budgets_throttle_deterministically() {
    let plan = {
        let mut plan = FleetPlan::new(
            1,
            0xB4D9,
            vec![
                // Ops cost thousands of cycles; a 300-cycle budget forces
                // multi-sweep pay-back between ops.
                TenantSpec::tenant_mix("capped", 8).with_cycle_budget(300),
                TenantSpec::lmbench("web", 48),
            ],
        );
        plan.telemetry = true;
        plan
    };
    let oracle = FleetDriver::drive_sequential(&plan).expect("oracle runs");
    let steal = FleetDriver::drive_with_workers(&plan, 2).expect("pool runs");
    assert_identical("budgeted plan", &steal, &oracle);

    let capped = oracle.tenants.iter().find(|t| t.name == "capped").unwrap();
    assert_eq!(capped.totals.ops, 8, "throttling defers, never starves");
    assert!(
        capped.sched.throttled_sweeps > 0,
        "the budget actually throttled ({} sweeps served, {} throttled)",
        capped.sched.sweeps_served,
        capped.sched.throttled_sweeps
    );
    // Throttle decisions are simulated-cycle-driven, so the schedule
    // record itself is part of the bit-identity (checked above); the
    // shard also ran more sweeps than the unthrottled tenant needed.
    assert!(oracle.shards[0].sweeps > capped.sched.sweeps_served);
}

/// The host-side execution profile reports the pool shape without ever
/// entering the simulated identity.
#[test]
fn exec_profile_reflects_drive_mode() {
    let plan = stress_plan(0xE9EC);
    let seq = FleetDriver::drive_sequential(&plan).expect("sequential runs");
    assert_eq!(seq.exec.workers, 1);
    assert_eq!(seq.exec.steals, 0);
    let pooled = FleetDriver::drive_with_workers(&plan, 3).expect("pool runs");
    assert_eq!(pooled.exec.workers, 3);
    let threaded = FleetDriver::drive_threaded(&plan).expect("1:1 runs");
    assert_eq!(threaded.exec.workers, plan.shards);
    assert_eq!(threaded.exec.steals, 0);
    // Different exec profiles, identical simulation.
    assert_identical("exec profile modes", &pooled, &seq);
    assert_identical("threaded vs sequential", &threaded, &seq);
}
