//! SMP behaviour: key-slot migration, cluster-wide panic threshold, IPIs.

use camo_isa::PauthKey;
use camo_kernel::{layout, KernelConfig, KernelError, KernelEvent};
use camo_smp::Cluster;

#[test]
fn migrated_task_keys_follow_to_the_destination_core() {
    let mut cluster = Cluster::protected(2).expect("boot");
    let (a, cpu_a) = cluster.spawn("a").expect("spawn");
    assert_eq!(cpu_a, 1);

    // Running task A leaves A's user keys in core 1's key registers
    // (restore_user_keys ran there; the user program finished at EL0).
    let a_keys = cluster
        .kernel()
        .tasks()
        .find(|t| t.tid == a)
        .unwrap()
        .user_keys;
    cluster.run_task(a, 1, 172, 0).expect("run on core 1");
    assert_eq!(
        cluster.kernel().cpu_at(1).state.pauth_key(PauthKey::IB),
        a_keys[0],
        "core 1 holds A's IB user key"
    );

    // Migrate A to core 0: the thread_struct keys live in shared memory,
    // so the next entry restores them on core 0.
    cluster.kernel_mut().migrate_task(a, 0).expect("migrate");
    assert!(matches!(
        cluster.kernel().events().last(),
        Some(KernelEvent::TaskMigrated { from: 1, to: 0, .. })
    ));
    let out = cluster.run_task(a, 1, 172, 0).expect("run on core 0");
    assert!(out.fault.is_none(), "migration must not break the task");
    assert_eq!(
        cluster.kernel().cpu_at(0).state.pauth_key(PauthKey::IB),
        a_keys[0],
        "core 0 now holds A's IB user key"
    );
    // And the reschedule IPIs reached both cores.
    assert!(cluster.kernel().cpu_at(0).stats().ipis >= 1);
    assert!(cluster.kernel().cpu_at(1).stats().ipis >= 1);
}

#[test]
fn each_core_runs_its_own_tasks_keys() {
    let mut cluster = Cluster::protected(2).expect("boot");
    let (a, _) = cluster.spawn("a").expect("spawn"); // core 1
    let (b, _) = cluster.spawn("b").expect("spawn"); // core 0
    let keys_of = |cluster: &Cluster, tid| {
        cluster
            .kernel()
            .tasks()
            .find(|t| t.tid == tid)
            .unwrap()
            .user_keys
    };
    let a_keys = keys_of(&cluster, a);
    let b_keys = keys_of(&cluster, b);
    assert_ne!(a_keys, b_keys, "per-thread keys are distinct");
    cluster.run_task(a, 1, 172, 0).expect("a on core 1");
    cluster.run_task(b, 1, 172, 0).expect("b on core 0");
    assert_eq!(
        cluster.kernel().cpu_at(1).state.pauth_key(PauthKey::IB),
        a_keys[0]
    );
    assert_eq!(
        cluster.kernel().cpu_at(0).state.pauth_key(PauthKey::IB),
        b_keys[0]
    );
}

#[test]
fn pac_panic_threshold_is_cluster_wide() {
    // Failures observed alternately on core 0 and core 1 feed one counter:
    // the §5.4 panic trips at the total, no matter which core observed
    // which failure.
    let mut cfg = KernelConfig::default();
    cfg.cpus = 2;
    cfg.pac_panic_threshold = 4;
    let mut cluster = Cluster::boot(cfg).expect("boot");
    let kernel = cluster.kernel_mut();
    let target = kernel.symbol("dev_read");

    let mut panicked_at = None;
    for attempt in 0..4u32 {
        let work = kernel.init_work("dev_poll").expect("init_work");
        let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
        let slot = work + u64::from(layout::work_struct::FUNC);
        kernel.mem_mut().write_u64(&ctx, slot, target).unwrap();
        // Alternate the observing core.
        kernel.set_current_cpu(usize::try_from(attempt % 2).unwrap());
        match kernel.run_work(work) {
            Ok(out) => assert!(out.fault.expect("forgery must fault").pac_failure),
            Err(KernelError::PacPanic { failures }) => {
                panicked_at = Some((attempt, failures));
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(panicked_at, Some((3, 4)), "panic at the cluster-wide total");

    // Both cores observed failures, and the events record which.
    let observers: Vec<usize> = cluster
        .kernel()
        .events()
        .iter()
        .filter_map(|e| match e {
            KernelEvent::PacFailure { cpu, .. } => Some(*cpu),
            _ => None,
        })
        .collect();
    assert_eq!(observers, vec![0, 1, 0, 1]);
}

#[test]
fn per_task_pac_accounting_tracks_the_observed_task() {
    let mut cfg = KernelConfig::default();
    cfg.pac_panic_threshold = 16;
    cfg.cpus = 2;
    let mut cluster = Cluster::boot(cfg).expect("boot");
    let kernel = cluster.kernel_mut();
    let target = kernel.symbol("dev_read");
    for _ in 0..2 {
        let work = kernel.init_work("dev_poll").expect("init_work");
        let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
        let slot = work + u64::from(layout::work_struct::FUNC);
        kernel.mem_mut().write_u64(&ctx, slot, target).unwrap();
        let out = kernel.run_work(work).expect("below threshold");
        assert!(out.fault.unwrap().pac_failure);
    }
    let init = kernel.tasks().find(|t| t.tid == 0).unwrap();
    assert_eq!(init.pac_failures, 2, "per-task forensic counter");
    assert_eq!(kernel.pac_failures(), 2, "global counter agrees");
}

#[test]
fn balance_spreads_a_loaded_cluster() {
    let mut cluster = Cluster::protected(4).expect("boot");
    let kernel = cluster.kernel_mut();
    let mut tids = Vec::new();
    for i in 0..7 {
        tids.push(kernel.spawn(&format!("t{i}")).expect("spawn"));
    }
    // Pile everything onto core 3.
    for &tid in &tids {
        kernel.migrate_task(tid, 3).expect("migrate");
    }
    let moved = kernel.balance();
    assert!(moved > 0);
    let max = (0..4).map(|c| kernel.sched().len(c)).max().unwrap();
    let min = (0..4).map(|c| kernel.sched().len(c)).min().unwrap();
    assert!(max - min <= 1, "balanced: max {max} min {min}");
    // Every task still runs where its runqueue says it lives.
    for &tid in &tids {
        let home = kernel.tasks().find(|t| t.tid == tid).unwrap().cpu;
        assert_eq!(kernel.sched().find(tid), Some(home));
        let out = kernel.run_user(tid, "stub", 1, 172, 0).expect("runs");
        assert!(out.fault.is_none());
    }
}

#[test]
fn shootdown_generation_is_visible_cluster_wide() {
    use camo_mem::{AccessType, S1Attr};
    let mut cluster = Cluster::protected(2).expect("boot");
    let kernel = cluster.kernel_mut();
    let table = kernel.kernel_table();
    let va = camo_mem::KERNEL_BASE + 0x7000_0000;
    kernel.mem_mut().map_new(table, va, S1Attr::kernel_data());
    // Warm a write translation through core 0's context.
    kernel.set_current_cpu(0);
    let ctx0 = kernel.cpu().translation_ctx();
    kernel.mem_mut().write_u64(&ctx0, va, 1).expect("writable");
    // Core 1 downgrades the page and broadcasts the shootdown.
    kernel.set_current_cpu(1);
    assert!(kernel
        .mem_mut()
        .set_attr(table, va, S1Attr::kernel_rodata()));
    kernel.tlb_shootdown();
    // Core 0's very next write must fault: no stale TLB entry survives.
    kernel.set_current_cpu(0);
    assert!(kernel
        .mem()
        .translate(&ctx0, va, AccessType::Write)
        .is_err());
    assert_eq!(cluster.kernel().cpu_at(0).pending_ipis(), 1);
}
