//! Acceptance properties of the streaming stats plane at fleet scale:
//! every tenant gets a time series, the series sums exactly to the
//! tenant's end-of-run totals, the plane is deterministic and mode
//! invisible, and the off arm is bit-identical to the on arm in
//! everything architectural.

use camo_cpu::CpuStats;
use camo_smp::{FleetDriver, FleetPlan, TenantReport};
use camo_workloads::TenantSpec;

fn telemetry_plan(shards: usize, cpus: usize, seed: u64) -> FleetPlan {
    let mut plan = FleetPlan::new(
        shards,
        seed,
        vec![
            TenantSpec::lmbench("web", 96),
            TenantSpec::process_churn("build-farm", 8),
            TenantSpec::module_churn("driver-ci", 6),
            TenantSpec::tenant_mix("batch", 10),
        ],
    );
    plan.cpus_per_shard = cpus;
    plan.telemetry = true;
    plan
}

/// Sum a tenant's series back into (ops, syscalls, cycles, stats).
fn series_sums(tenant: &TenantReport) -> (u64, u64, u64, CpuStats) {
    let mut stats = CpuStats::default();
    let (mut ops, mut syscalls, mut cycles) = (0, 0, 0);
    for w in &tenant.series {
        ops += w.ops;
        syscalls += w.syscalls;
        cycles += w.cycles;
        stats.merge(&w.stats);
    }
    (ops, syscalls, cycles, stats)
}

#[test]
fn every_tenant_series_sums_exactly_to_its_totals() {
    let report = FleetDriver::drive_sequential(&telemetry_plan(2, 2, 0x7E1E)).expect("fleet runs");
    for t in &report.tenants {
        assert!(!t.series.is_empty(), "{}: empty time series", t.name);
        let (ops, syscalls, cycles, stats) = series_sums(t);
        assert_eq!(ops, t.totals.ops, "{}: ops drifted", t.name);
        assert_eq!(syscalls, t.totals.syscalls, "{}: syscalls drifted", t.name);
        assert_eq!(cycles, t.totals.cycles, "{}: cycles drifted", t.name);
        assert_eq!(
            stats, t.totals.stats,
            "{}: window sums must reproduce the end-of-run CpuStats exactly",
            t.name
        );
        // Cross-shard concatenation: seqs restart per shard segment but
        // are dense and ordered within each.
        let mut expected_seq = 0;
        for w in &t.series {
            if w.seq == 0 {
                expected_seq = 0;
            }
            assert_eq!(w.seq, expected_seq, "{}: series seq not dense", t.name);
            expected_seq += 1;
            assert!(w.ops > 0, "{}: empty window published", t.name);
        }
    }
}

#[test]
fn telemetry_is_deterministic_and_mode_invisible() {
    let plan = telemetry_plan(3, 2, 0xF1EE7);
    let par = FleetDriver::drive(&plan).expect("parallel fleet runs");
    let seq = FleetDriver::drive_sequential(&plan).expect("sequential fleet runs");
    // simulation_identical compares tenants by PartialEq, which now
    // includes the series: the drive mode must not move a single window.
    assert!(
        par.simulation_identical(&seq),
        "telemetry leaked execution mode into the report"
    );
    let again = FleetDriver::drive(&plan).expect("fleet runs again");
    assert!(again.simulation_identical(&par), "series not deterministic");
    for (a, b) in par.tenants.iter().zip(&seq.tenants) {
        assert_eq!(a.series, b.series, "{}: series diverged by mode", a.name);
    }
}

#[test]
fn telemetry_off_arm_is_bit_identical_and_silent() {
    let mut plan = telemetry_plan(2, 2, 0xB17);
    let on = FleetDriver::drive_sequential(&plan).expect("telemetry-on fleet runs");
    plan.telemetry = false;
    let off = FleetDriver::drive_sequential(&plan).expect("telemetry-off fleet runs");

    assert_eq!(on.syscalls, off.syscalls);
    assert_eq!(on.instructions, off.instructions);
    assert_eq!(on.cycles, off.cycles);
    assert_eq!(
        on.stats, off.stats,
        "telemetry must not disturb a single counter — not even observability ones"
    );
    for (a, b) in on.tenants.iter().zip(&off.tenants) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.totals, b.totals, "{}: totals diverged", a.name);
        assert!(!a.series.is_empty(), "{}: on arm must emit", a.name);
        assert!(b.series.is_empty(), "{}: off arm must stay silent", a.name);
    }
}
