//! Acceptance property: a 1-CPU [`Cluster`] is bit-identical to the
//! existing [`Machine`] — same cycles, same faults, same attack outcomes —
//! with the fast-path caches on and off.

use camo_core::{Machine, ProtectionLevel};
use camo_kernel::{layout, Kernel, KernelConfig};
use camo_smp::Cluster;

/// Drives `kernel` through a representative workload and returns every
/// architecturally visible observation.
fn drive(kernel: &mut Kernel) -> Vec<(u64, u64, u64, bool)> {
    let mut log = Vec::new();
    // A syscall mix.
    for nr in [172u64, 63, 64, 57, 79, 72] {
        let out = kernel.syscall(nr, 3).expect("benign syscall");
        log.push((out.x0, out.cycles, out.instructions, out.fault.is_some()));
    }
    // Context switches between freshly spawned tasks.
    let a = kernel.spawn("a").expect("spawn");
    let b = kernel.spawn("b").expect("spawn");
    let out = kernel.context_switch(a, b).expect("switch");
    log.push((out.x0, out.cycles, out.instructions, out.fault.is_some()));
    let out = kernel.context_switch(b, a).expect("switch back");
    log.push((out.x0, out.cycles, out.instructions, out.fault.is_some()));
    // An attack: forged work callback must fault identically.
    let work = kernel.init_work("dev_poll").expect("init_work");
    let target = kernel.symbol("dev_read");
    let ctx = kernel.mem().kernel_ctx(kernel.kernel_table());
    kernel
        .mem_mut()
        .write_u64(&ctx, work + u64::from(layout::work_struct::FUNC), target)
        .expect("work heap writable");
    let out = kernel.run_work(work).expect("below threshold");
    log.push((out.x0, out.cycles, out.instructions, out.fault.is_some()));
    log.push((
        u64::from(kernel.pac_failures()),
        kernel.cpu().cycles(),
        kernel.cpu().stats().instructions,
        false,
    ));
    log
}

#[test]
fn one_cpu_cluster_is_bit_identical_to_machine() {
    for fast_caches in [true, false] {
        for level in ProtectionLevel::ALL {
            let mut cfg = KernelConfig::with_protection(level);
            cfg.fast_caches = fast_caches;
            cfg.cpus = 1;

            let mut machine = Machine::with_config(cfg.clone()).expect("machine boots");
            let mut cluster = Cluster::boot(cfg).expect("cluster boots");
            assert_eq!(cluster.cpu_count(), 1);

            let machine_log = drive(machine.kernel_mut());
            let cluster_log = drive(cluster.kernel_mut());
            assert_eq!(
                machine_log, cluster_log,
                "caches={fast_caches} level={level}: cluster must be bit-identical"
            );
        }
    }
}

#[test]
fn machine_is_simply_the_one_cpu_configuration() {
    // Machine and Cluster share the Kernel; the default config boots one
    // CPU, and a Machine built from a >1 CPU config is a cluster too.
    let m = Machine::protected().expect("boot");
    assert_eq!(m.kernel().cpu_count(), 1);
    let mut cfg = KernelConfig::default();
    cfg.cpus = 2;
    let m = Machine::with_config(cfg).expect("boot");
    assert_eq!(m.kernel().cpu_count(), 2);
}
