//! Acceptance properties of the multi-tenant fleet driver: a mixed-tenant
//! plan's parallel and sequential runs are bit-identical in *everything*
//! simulated — totals, per-tenant counters, and latency histograms — and
//! tenant accounting is exact.

use camo_smp::{FleetDriver, FleetPlan};
use camo_workloads::TenantSpec;

fn mixed_plan(shards: usize, cpus: usize, seed: u64) -> FleetPlan {
    let mut plan = FleetPlan::new(
        shards,
        seed,
        vec![
            TenantSpec::lmbench("web", 96),
            TenantSpec::process_churn("build-farm", 8),
            TenantSpec::module_churn("driver-ci", 6),
            TenantSpec::tenant_mix("batch", 10),
        ],
    );
    plan.cpus_per_shard = cpus;
    plan
}

#[test]
fn parallel_and_sequential_fleets_are_bit_identical() {
    let plan = mixed_plan(3, 2, 0xF1EE7);
    let par = FleetDriver::drive(&plan).expect("parallel fleet runs");
    let seq = FleetDriver::drive_sequential(&plan).expect("sequential fleet runs");
    assert!(
        par.simulation_identical(&seq),
        "execution mode leaked into the simulation"
    );
    // Spot-check that the identity covers the interesting structure, not
    // just the top-line sums.
    for (p, s) in par.tenants.iter().zip(&seq.tenants) {
        assert_eq!(
            p.totals.latency, s.totals.latency,
            "tenant {} histogram",
            p.name
        );
        assert_eq!(p.totals.stats, s.totals.stats, "tenant {} stats", p.name);
        assert_eq!(
            (
                p.totals.latency.p50(),
                p.totals.latency.p90(),
                p.totals.latency.p99()
            ),
            (
                s.totals.latency.p50(),
                s.totals.latency.p90(),
                s.totals.latency.p99()
            ),
            "tenant {} percentiles",
            p.name
        );
    }
}

#[test]
fn fleet_runs_are_deterministic_in_the_plan() {
    let plan = mixed_plan(2, 1, 77);
    let a = FleetDriver::drive(&plan).expect("fleet runs");
    let b = FleetDriver::drive(&plan).expect("fleet runs again");
    assert!(a.simulation_identical(&b));
    let other = FleetDriver::drive(&mixed_plan(2, 1, 78)).expect("other seed runs");
    assert_ne!(
        a.cycles, other.cycles,
        "a different seed must reshuffle the op streams"
    );
}

#[test]
fn tenant_accounting_is_exact() {
    let plan = mixed_plan(2, 2, 31);
    let report = FleetDriver::drive_sequential(&plan).expect("fleet runs");

    // Quotas are honored exactly.
    let by_name: std::collections::HashMap<_, _> = report
        .tenants
        .iter()
        .map(|t| (t.name.as_str(), t))
        .collect();
    assert_eq!(
        by_name["web"].totals.syscalls, 96,
        "syscall quota hit exactly"
    );
    assert_eq!(by_name["build-farm"].totals.ops, 8);
    assert_eq!(by_name["driver-ci"].totals.ops, 6);
    assert_eq!(by_name["batch"].totals.ops, 10);

    // Tenant sums equal fleet totals (no work is unattributed or
    // double-counted).
    assert_eq!(
        report.tenants.iter().map(|t| t.totals.cycles).sum::<u64>(),
        report.cycles
    );
    assert_eq!(
        report
            .tenants
            .iter()
            .map(|t| t.totals.instructions)
            .sum::<u64>(),
        report.instructions
    );
    assert_eq!(
        report
            .tenants
            .iter()
            .map(|t| t.totals.syscalls)
            .sum::<u64>(),
        report.syscalls
    );

    // Every tenant has a real latency distribution.
    for t in &report.tenants {
        assert_eq!(
            t.totals.latency.count(),
            t.totals.ops,
            "{}: one sample per op",
            t.name
        );
        assert!(t.totals.latency.p50() > 0, "{}", t.name);
        assert!(
            t.totals.latency.p50() <= t.totals.latency.p90(),
            "{}",
            t.name
        );
        assert!(
            t.totals.latency.p90() <= t.totals.latency.p99(),
            "{}",
            t.name
        );
    }

    // The workload names made it through.
    assert_eq!(by_name["web"].workload, "lmbench-mix");
    assert_eq!(by_name["build-farm"].workload, "fork-exec-churn");
    assert_eq!(by_name["driver-ci"].workload, "module-churn");
    assert_eq!(by_name["batch"].workload, "tenant-switch-mix");
}

#[test]
#[allow(deprecated)]
fn sharded_driver_alias_matches_a_single_tenant_fleet() {
    use camo_smp::{ShardedDriver, TrafficPlan};
    let traffic = TrafficPlan::new(2, 64, 2024);
    let legacy = ShardedDriver::drive_sequential(&traffic).expect("alias runs");
    let fleet = FleetDriver::drive_sequential(&traffic.to_fleet()).expect("fleet runs");
    assert_eq!(legacy.syscalls, fleet.syscalls);
    assert_eq!(legacy.instructions, fleet.instructions);
    assert_eq!(legacy.cycles, fleet.cycles);
    assert_eq!(legacy.stats, fleet.stats);
    for (l, f) in legacy.shards.iter().zip(&fleet.shards) {
        assert_eq!(
            (l.shard, l.seed, l.syscalls, l.cycles),
            (f.shard, f.seed, f.syscalls, f.cycles)
        );
    }
}

#[test]
fn tenant_streams_survive_plan_membership_changes() {
    // Per-tenant op streams are seeded by `tenant_stream_seed(seed,
    // shard, name)` — derived from the tenant's *name*, not its index —
    // so adding a tenant to the end of a plan must not move any existing
    // tenant's stream, and (because spawn order fixes scheduler
    // placement) must not change a single architectural quantity of the
    // tenants it joins. This is the property the BENCH_6
    // isolated-baseline gate stands on.
    let shared = vec![
        TenantSpec::lmbench("web", 96),
        TenantSpec::tenant_mix("batch", 12),
    ];
    let mut small = FleetPlan::new(2, 0x5EED, shared.clone());
    small.cpus_per_shard = 2;
    small.pac_panic_threshold = Some(u32::MAX);
    let mut tenants = shared;
    tenants.push(TenantSpec::fuzz("fuzz-0", 24));
    let mut grown = FleetPlan::new(2, 0x5EED, tenants);
    grown.cpus_per_shard = 2;
    grown.pac_panic_threshold = Some(u32::MAX);

    let a = FleetDriver::drive_sequential(&small).expect("two-tenant plan runs");
    let b = FleetDriver::drive_sequential(&grown).expect("three-tenant plan runs");
    assert_eq!(b.tenants.len(), 3, "the grown plan served the fuzz tenant");
    let hostile: u64 = b.tenants.iter().map(|t| t.totals.hostile.attempted).sum();
    assert!(hostile > 0, "the added tenant mounted attacks");
    for x in &a.tenants {
        let y = b
            .tenants
            .iter()
            .find(|t| t.name == x.name)
            .expect("shared tenant served in both plans");
        assert_eq!(x.totals.ops, y.totals.ops, "{}", x.name);
        assert_eq!(x.totals.syscalls, y.totals.syscalls, "{}", x.name);
        assert_eq!(x.totals.instructions, y.totals.instructions, "{}", x.name);
        assert_eq!(x.totals.cycles, y.totals.cycles, "{}", x.name);
        assert!(
            x.totals.stats.arch_eq(&y.totals.stats),
            "{}: architectural counters moved when a tenant was added",
            x.name
        );
        assert_eq!(x.totals.latency, y.totals.latency, "{}", x.name);
        assert_eq!(
            x.totals.hostile.benign_pac_events, 0,
            "{}: benign tenant saw a failure-policy event",
            x.name
        );
        assert_eq!(y.totals.hostile.benign_pac_events, 0, "{}", x.name);
    }
}

#[test]
fn block_engine_is_architecturally_invisible_to_the_fleet() {
    // The `perfcheck --blocks` contract, asserted at test scale: the same
    // plan with the block engine on and off must agree on every
    // architectural quantity — totals, per-tenant counters, and the
    // per-tenant simulated-cycle latency histograms — while the engine
    // counters prove the on-arm actually translated blocks.
    let tenants = vec![
        TenantSpec::lmbench("web", 96),
        TenantSpec::module_churn("driver-ci", 6),
        TenantSpec::tenant_mix("batch", 12),
    ];
    let mut plan = FleetPlan::new(2, 0xB10C5, tenants);
    plan.cpus_per_shard = 2;
    plan.block_engine = true;
    let on = FleetDriver::drive_sequential(&plan).expect("engine-on fleet runs");
    plan.block_engine = false;
    let off = FleetDriver::drive_sequential(&plan).expect("engine-off fleet runs");

    assert_eq!(on.syscalls, off.syscalls);
    assert_eq!(on.instructions, off.instructions);
    assert_eq!(on.cycles, off.cycles);
    assert!(
        on.stats.arch_eq(&off.stats),
        "architectural counters diverged: {:?} vs {:?}",
        on.stats,
        off.stats
    );
    for (a, b) in on.tenants.iter().zip(&off.tenants) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.totals.ops, b.totals.ops, "{}", a.name);
        assert_eq!(a.totals.syscalls, b.totals.syscalls, "{}", a.name);
        assert_eq!(a.totals.instructions, b.totals.instructions, "{}", a.name);
        assert_eq!(a.totals.cycles, b.totals.cycles, "{}", a.name);
        assert!(a.totals.stats.arch_eq(&b.totals.stats), "{}", a.name);
        assert_eq!(a.totals.latency, b.totals.latency, "{}", a.name);
    }
    assert!(on.stats.block_hits > 0, "the engine served cached blocks");
    // Every tenant's ops ran through the engine. Hits are not guaranteed
    // per tenant — module churn maps fresh frames per load, so its blocks
    // decode anew each op — but engine activity is.
    assert!(
        on.tenants
            .iter()
            .all(|t| t.totals.stats.block_hits + t.totals.stats.block_misses > 0),
        "every tenant's ops ran through the engine"
    );
    assert_eq!(off.stats.block_hits, 0, "the off arm really stepped");

    // And within the on arm, parallel and sequential still agree bit for
    // bit (the BENCH_4 invariant survives the new engine).
    plan.block_engine = true;
    let par = FleetDriver::drive(&plan).expect("parallel engine-on fleet runs");
    assert!(par.simulation_identical(&on));
}

#[test]
fn trace_engine_is_architecturally_invisible_to_the_fleet() {
    // The `perfcheck --traces` contract at test scale: the same plan with
    // the trace tier on and off (block engine on in both arms) must agree
    // on every architectural quantity, while the trace counters prove the
    // on-arm actually promoted and executed traces.
    let tenants = vec![
        TenantSpec::lmbench("web", 96),
        TenantSpec::module_churn("driver-ci", 6),
        TenantSpec::tenant_mix("batch", 12),
    ];
    let mut plan = FleetPlan::new(2, 0xB10C5, tenants);
    plan.cpus_per_shard = 2;
    plan.trace_engine = true;
    let on = FleetDriver::drive_sequential(&plan).expect("trace-on fleet runs");
    plan.trace_engine = false;
    let off = FleetDriver::drive_sequential(&plan).expect("trace-off fleet runs");

    assert_eq!(on.syscalls, off.syscalls);
    assert_eq!(on.instructions, off.instructions);
    assert_eq!(on.cycles, off.cycles);
    assert!(
        on.stats.arch_eq(&off.stats),
        "architectural counters diverged: {:?} vs {:?}",
        on.stats,
        off.stats
    );
    for (a, b) in on.tenants.iter().zip(&off.tenants) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.totals.ops, b.totals.ops, "{}", a.name);
        assert_eq!(a.totals.syscalls, b.totals.syscalls, "{}", a.name);
        assert_eq!(a.totals.instructions, b.totals.instructions, "{}", a.name);
        assert_eq!(a.totals.cycles, b.totals.cycles, "{}", a.name);
        assert!(a.totals.stats.arch_eq(&b.totals.stats), "{}", a.name);
        assert_eq!(a.totals.latency, b.totals.latency, "{}", a.name);
    }
    assert!(on.stats.trace_hits > 0, "the tier actually served traces");
    assert_eq!(off.stats.trace_hits, 0, "the off arm really had it off");
    assert!(
        on.stats.block_hits < off.stats.block_hits,
        "traces absorbed block-cache traffic: {} vs {}",
        on.stats.block_hits,
        off.stats.block_hits
    );

    // Parallel and sequential still agree bit for bit with traces on.
    plan.trace_engine = true;
    let par = FleetDriver::drive(&plan).expect("parallel trace-on fleet runs");
    assert!(par.simulation_identical(&on));
}
