//! Cluster-level cache coherency: random interleavings of translation
//! mutations (`map` / `set_attr` / `protect_stage2`) and accesses across
//! two CPUs must never let a stale TLB entry serve a downgraded
//! permission. This extends the single-core `cache_coherency` suite in
//! `camo_cpu` to the shared-memory cluster: both cores pull translations
//! through the one software TLB, and a mutation performed "on" either core
//! must be visible to the other core's very next access.

use camo_cpu::{Cpu, CpuError, Step};
use camo_isa::{encode, AddrMode, Insn, Reg, SysReg};
use camo_mem::{MemFault, Memory, S1Attr, S2Attr, TableId, KERNEL_BASE, PAGE_SIZE};
use proptest::prelude::*;

/// Number of data pages the random ops play over.
const PAGES: usize = 4;
/// VA of data page `p`.
fn page_va(p: usize) -> u64 {
    KERNEL_BASE + 0x10_0000 + (p as u64) * PAGE_SIZE
}
/// VA of the shared code page (one LDR and one STR, used by both cores).
const CODE_VA: u64 = KERNEL_BASE;
const LDR_VA: u64 = CODE_VA;
const STR_VA: u64 = CODE_VA + 4;

/// The model's view of one page.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PageState {
    Unmapped,
    /// Mapped kernel_data: EL1 read+write.
    Writable,
    /// Mapped kernel_rodata: EL1 read-only (stage-1 write denied).
    ReadOnly,
    /// Stage-2 sealed execute-only: reads and writes both fault.
    Sealed,
}

/// One interleaving step, derived deterministically from a seed.
#[derive(Debug, Clone, Copy)]
enum Op {
    Map(usize),
    Downgrade(usize),
    Upgrade(usize),
    Seal(usize),
    Read(usize, usize),  // (cpu, page)
    Write(usize, usize), // (cpu, page)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn ops_from_seed(seed: u64, len: usize) -> Vec<Op> {
    let mut s = seed;
    (0..len)
        .map(|_| {
            let r = splitmix(&mut s);
            let page = (r >> 8) as usize % PAGES;
            let cpu = (r >> 16) as usize % 2;
            match r % 6 {
                0 => Op::Map(page),
                1 => Op::Downgrade(page),
                2 => Op::Upgrade(page),
                3 => Op::Seal(page),
                4 => Op::Read(cpu, page),
                _ => Op::Write(cpu, page),
            }
        })
        .collect()
}

/// Two cores sharing one memory system, with a common code page holding
/// `LDR x0, [x1]` and `STR x0, [x1]` so accesses run through the real
/// fetch + execute pipeline (TLB and icache engaged).
fn cluster() -> (Vec<Cpu>, Memory, TableId) {
    let mut mem = Memory::new();
    let table = mem.new_table();
    let code = mem.map_new(table, CODE_VA, S1Attr::kernel_text());
    mem.phys_mut()
        .write_u32(
            code.base(),
            encode(&Insn::Ldr {
                rt: Reg::x(0),
                rn: Reg::x(1),
                mode: AddrMode::Unsigned(0),
            }),
        )
        .unwrap();
    mem.phys_mut()
        .write_u32(
            code.base() + 4,
            encode(&Insn::Str {
                rt: Reg::x(0),
                rn: Reg::x(1),
                mode: AddrMode::Unsigned(0),
            }),
        )
        .unwrap();
    let cpus = (0..2)
        .map(|id| {
            let mut cpu = Cpu::with_id(Default::default(), id);
            cpu.state.set_sysreg(SysReg::Ttbr0El1, table.raw());
            cpu.state.set_sysreg(SysReg::Ttbr1El1, table.raw());
            cpu
        })
        .collect();
    (cpus, mem, table)
}

/// Executes one memory-access instruction on `cpu` against `va`,
/// classifying the outcome. No vector base is installed, so a fault
/// surfaces as `CpuError::UnhandledFault` carrying the exact `MemFault`.
fn access(cpu: &mut Cpu, mem: &mut Memory, insn_va: u64, va: u64) -> Result<(), MemFault> {
    cpu.state.pc = insn_va;
    cpu.state.gprs[1] = va;
    match cpu.step(mem) {
        Ok(Step::Executed) => Ok(()),
        Err(CpuError::UnhandledFault { fault, .. }) => Err(fault),
        other => panic!("unexpected step outcome: {other:?}"),
    }
}

proptest! {
    #[test]
    fn no_stale_tlb_entry_ever_serves_a_downgraded_permission(
        seed in any::<u64>(),
        len in 8usize..64,
    ) {
        let (mut cpus, mut mem, table) = cluster();
        let mut model = [PageState::Unmapped; PAGES];
        let mut frames = [None; PAGES];

        for op in ops_from_seed(seed, len) {
            match op {
                Op::Map(p) => {
                    if model[p] == PageState::Unmapped {
                        frames[p] = Some(mem.map_new(table, page_va(p), S1Attr::kernel_data()));
                        model[p] = PageState::Writable;
                    }
                }
                Op::Downgrade(p) => {
                    if matches!(model[p], PageState::Writable) {
                        mem.set_attr(table, page_va(p), S1Attr::kernel_rodata());
                        model[p] = PageState::ReadOnly;
                    }
                }
                Op::Upgrade(p) => {
                    if matches!(model[p], PageState::ReadOnly) {
                        mem.set_attr(table, page_va(p), S1Attr::kernel_data());
                        model[p] = PageState::Writable;
                    }
                }
                Op::Seal(p) => {
                    if matches!(model[p], PageState::Writable | PageState::ReadOnly) {
                        mem.protect_stage2(frames[p].unwrap(), S2Attr::execute_only())
                            .expect("stage 2 unlocked");
                        model[p] = PageState::Sealed;
                    }
                }
                Op::Read(cpu, p) => {
                    let got = access(&mut cpus[cpu], &mut mem, LDR_VA, page_va(p));
                    match model[p] {
                        PageState::Unmapped => prop_assert!(
                            matches!(got, Err(MemFault::Translation { .. })),
                            "cpu {cpu} read of unmapped page {p}: {got:?}"
                        ),
                        // The VMSA quirk: EL1 reads cannot be denied by
                        // stage 1, so read-only pages still read fine.
                        PageState::Writable | PageState::ReadOnly => prop_assert!(
                            got.is_ok(),
                            "cpu {cpu} read of mapped page {p}: {got:?}"
                        ),
                        PageState::Sealed => prop_assert!(
                            matches!(got, Err(MemFault::Stage2 { .. })),
                            "cpu {cpu} read of sealed page {p} must stage-2 fault: {got:?}"
                        ),
                    }
                }
                Op::Write(cpu, p) => {
                    let got = access(&mut cpus[cpu], &mut mem, STR_VA, page_va(p));
                    match model[p] {
                        PageState::Unmapped => prop_assert!(
                            matches!(got, Err(MemFault::Translation { .. })),
                            "cpu {cpu} write of unmapped page {p}: {got:?}"
                        ),
                        PageState::Writable => prop_assert!(
                            got.is_ok(),
                            "cpu {cpu} write of writable page {p}: {got:?}"
                        ),
                        PageState::ReadOnly => prop_assert!(
                            matches!(got, Err(MemFault::Permission { .. })),
                            "cpu {cpu} write of read-only page {p} must fault \
                             (stale TLB would have allowed it): {got:?}"
                        ),
                        PageState::Sealed => prop_assert!(
                            got.is_err(),
                            "cpu {cpu} write of sealed page {p} must fault: {got:?}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn both_cores_see_a_downgrade_immediately_after_warming(
        warm_cpu in 0usize..2,
        other_cpu in 0usize..2,
    ) {
        // The directed version of the property: warm the TLB through one
        // core, downgrade, and check the *other* core (and the warmer)
        // both fault on their next write.
        let (mut cpus, mut mem, table) = cluster();
        mem.map_new(table, page_va(0), S1Attr::kernel_data());
        prop_assert!(access(&mut cpus[warm_cpu], &mut mem, STR_VA, page_va(0)).is_ok());
        prop_assert!(access(&mut cpus[other_cpu], &mut mem, STR_VA, page_va(0)).is_ok());
        mem.set_attr(table, page_va(0), S1Attr::kernel_rodata());
        for cpu in [other_cpu, warm_cpu] {
            let got = access(&mut cpus[cpu], &mut mem, STR_VA, page_va(0));
            prop_assert!(
                matches!(got, Err(MemFault::Permission { .. })),
                "cpu {cpu}: {got:?}"
            );
        }
    }
}
