//! Multi-core Camouflage machines and a host-parallel traffic driver.
//!
//! The paper's key-management design is inherently per-CPU: every core
//! re-installs the kernel keys through the XOM setter on kernel entry and
//! restores the current task's user keys from `thread_struct` on exit, and
//! those `thread_struct` slots follow the task as the scheduler migrates
//! it between cores (§6.1.1). This crate supplies both halves of the SMP
//! story the single-`Machine` reproduction lacked:
//!
//! * **In-machine SMP** — [`Cluster`]: N simulated cores sharing one
//!   physical memory, stage-1/stage-2 configuration, and cluster-wide TLB
//!   generation, with per-core sysreg files and PAuth key registers,
//!   per-CPU runqueues with migration and balancing, and IPIs for
//!   reschedule/TLB-shootdown. A 1-CPU cluster is bit-identical to
//!   [`camo_core::Machine`].
//! * **Host-parallel fleet** — [`FleetDriver`]: M independent machines
//!   (each optionally a cluster) served as resumable shard tasks over a
//!   work-stealing pool of host workers, running an arbitrary mix of
//!   [`camo_workloads::Workload`] tenants on a deterministic
//!   weighted-fair simulated schedule (per-tenant priorities and
//!   simulated-cycle budgets with throttling), every quota partitioned
//!   deterministically by seed, with per-tenant
//!   [`camo_cpu::CpuStats`]/cycle attribution and simulated-cycle latency
//!   percentiles. This is where wall-clock throughput scales — shard
//!   count is decoupled from host thread count, and the simulated totals
//!   are bit-identical across any worker count or drive mode
//!   ([`FleetReport::simulation_identical`]). The PR-3 `ShardedDriver`
//!   survives as a thin deprecated alias running the single-tenant
//!   lmbench mix.
//!
//! # Example
//!
//! ```
//! use camo_smp::Cluster;
//!
//! let mut cluster = Cluster::protected(2)?;
//! let tid = cluster.kernel_mut().spawn("worker")?;
//! cluster.kernel_mut().migrate_task(tid, 1)?;
//! let out = cluster.run_task(tid, 1, 172, 0)?; // getpid on core 1
//! assert!(out.fault.is_none());
//! # Ok::<(), camo_kernel::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod driver;
mod scheduler;

pub use cluster::{Cluster, ClusterStats};
#[allow(deprecated)]
pub use driver::ShardedDriver;
pub use driver::{
    shard_seed, ExecProfile, FleetDriver, FleetPlan, FleetReport, FleetShardReport, ShardReport,
    TenantReport, TrafficPlan, TrafficReport,
};
pub use scheduler::TenantSched;
