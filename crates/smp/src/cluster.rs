//! The in-machine SMP layer: N cores around one kernel and one memory.

use camo_core::ProtectionLevel;
use camo_cpu::{CpuStats, IpiKind};
use camo_kernel::{ExecOutcome, Kernel, KernelConfig, KernelError, Tid};

/// A booted multi-core Camouflage machine.
///
/// The cluster *is* the explicit owner of everything shared: the one
/// [`camo_mem::Memory`] (physical frames, stage-1 tables, the hypervisor's
/// stage-2 overlay, and the cluster-wide translation generation) lives in
/// the wrapped [`Kernel`], and each core borrows it for exactly one
/// instruction at a time. Per-core state — sysregs including the PAuth key
/// registers, the decoded-instruction cache, the PAC unit — lives in each
/// [`camo_cpu::Cpu`]. Determinism follows from the serialized borrow: a
/// cluster run is a single interleaving, reproducible bit for bit.
#[derive(Debug)]
pub struct Cluster {
    kernel: Kernel,
}

/// Per-cluster execution counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStats {
    /// Per-core counters, in CPU id order.
    pub per_cpu: Vec<CpuStats>,
    /// All cores merged. The TLB fields are taken from the *shared*
    /// memory system rather than summed: each core mirrors the shared
    /// totals, so summing the mirrors would multiply-count them.
    pub merged: CpuStats,
    /// Total cycles across all cores.
    pub cycles: u64,
    /// Explicit TLB shootdowns broadcast on the shared memory system.
    pub tlb_shootdowns: u64,
}

impl Cluster {
    /// Boots a cluster from an explicit configuration (`cfg.cpus` cores).
    ///
    /// # Errors
    ///
    /// Propagates any [`KernelError`] raised during boot.
    pub fn boot(cfg: KernelConfig) -> Result<Cluster, KernelError> {
        Ok(Cluster {
            kernel: Kernel::boot(cfg)?,
        })
    }

    /// Boots a fully protected cluster with `cpus` cores.
    ///
    /// # Errors
    ///
    /// Propagates any [`KernelError`] raised during boot.
    pub fn protected(cpus: usize) -> Result<Cluster, KernelError> {
        let mut cfg = KernelConfig::default();
        cfg.cpus = cpus;
        Cluster::boot(cfg)
    }

    /// Boots an unprotected baseline cluster with `cpus` cores.
    ///
    /// # Errors
    ///
    /// Propagates any [`KernelError`] raised during boot.
    pub fn baseline(cpus: usize) -> Result<Cluster, KernelError> {
        let mut cfg = KernelConfig::with_protection(ProtectionLevel::None);
        cfg.cpus = cpus;
        Cluster::boot(cfg)
    }

    /// Number of cores.
    pub fn cpu_count(&self) -> usize {
        self.kernel.cpu_count()
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Consumes the cluster, returning the kernel.
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }

    /// Spawns a task; the scheduler places it on the least-loaded core.
    /// Returns `(tid, cpu)`.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures.
    pub fn spawn(&mut self, name: &str) -> Result<(Tid, usize), KernelError> {
        let tid = self.kernel.spawn(name)?;
        let cpu = self
            .kernel
            .tasks()
            .find(|t| t.tid == tid)
            .map(|t| t.cpu)
            .expect("just spawned");
        Ok((tid, cpu))
    }

    /// Runs `iterations` × (user block + one syscall `nr`) of task `tid`
    /// on its home core.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors, including the §5.4 PAC panic.
    pub fn run_task(
        &mut self,
        tid: Tid,
        iterations: u64,
        nr: u64,
        arg0: u64,
    ) -> Result<ExecOutcome, KernelError> {
        self.kernel.run_user(tid, "stub", iterations, nr, arg0)
    }

    /// Posts an IPI to `cpu`.
    pub fn send_ipi(&mut self, cpu: usize, kind: IpiKind) {
        self.kernel.send_ipi(cpu, kind);
    }

    /// Broadcasts a TLB shootdown from the current core.
    pub fn tlb_shootdown(&mut self) {
        self.kernel.tlb_shootdown();
    }

    /// Merged and per-core execution counters.
    pub fn stats(&self) -> ClusterStats {
        let per_cpu: Vec<CpuStats> = self.kernel.cpus().iter().map(|c| c.stats()).collect();
        let mut merged = CpuStats::default();
        for s in &per_cpu {
            merged.merge(s);
        }
        // The TLB lives in the shared memory system; every core's stats
        // mirror the shared totals, so the merged view must read them once
        // from the source instead of summing mirrors.
        merged.tlb_hits = self.kernel.mem().tlb_hits();
        merged.tlb_misses = self.kernel.mem().tlb_misses();
        ClusterStats {
            merged,
            cycles: self.kernel.cpus().iter().map(|c| c.cycles()).sum(),
            tlb_shootdowns: self.kernel.mem().tlb_shootdowns(),
            per_cpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_boots_with_n_cpus_and_per_cpu_keys() {
        let cluster = Cluster::protected(4).unwrap();
        assert_eq!(cluster.cpu_count(), 4);
        // Every core ran the XOM setter at boot: its own key registers
        // hold the kernel keys, written by MSRs on that core.
        for cpu in cluster.kernel().cpus() {
            let ib = cpu.state.pauth_key(camo_isa::PauthKey::IB);
            assert_ne!(ib, camo_qarma::QarmaKey::new(0, 0), "cpu {}", cpu.id());
            assert!(cpu.stats().key_writes >= 6, "cpu {}", cpu.id());
        }
        // All cores agree on the kernel keys (one boot, one key set).
        let ib0 = cluster
            .kernel()
            .cpu_at(0)
            .state
            .pauth_key(camo_isa::PauthKey::IB);
        for cpu in 1..4 {
            assert_eq!(
                cluster
                    .kernel()
                    .cpu_at(cpu)
                    .state
                    .pauth_key(camo_isa::PauthKey::IB),
                ib0
            );
        }
    }

    #[test]
    fn spawned_tasks_spread_across_cores() {
        let mut cluster = Cluster::protected(2).unwrap();
        // init (tid 0) landed on CPU 0; the next spawns alternate.
        let (_, cpu_a) = cluster.spawn("a").unwrap();
        let (_, cpu_b) = cluster.spawn("b").unwrap();
        assert_eq!(cpu_a, 1, "least-loaded placement");
        assert_eq!(cpu_b, 0);
    }

    #[test]
    fn tasks_run_on_their_home_core() {
        let mut cluster = Cluster::protected(2).unwrap();
        let (tid, cpu) = cluster.spawn("worker").unwrap();
        assert_eq!(cpu, 1);
        let i0 = cluster.kernel().cpu_at(1).stats().instructions;
        let out = cluster.run_task(tid, 1, 172, 0).unwrap();
        assert!(out.fault.is_none());
        assert_eq!(out.x0, u64::from(tid));
        assert!(cluster.kernel().cpu_at(1).stats().instructions > i0);
    }

    #[test]
    fn shootdown_reaches_every_other_core() {
        let mut cluster = Cluster::protected(3).unwrap();
        cluster.kernel_mut().set_current_cpu(1);
        cluster.tlb_shootdown();
        let stats = cluster.stats();
        assert_eq!(stats.tlb_shootdowns, 1);
        assert_eq!(cluster.kernel().cpu_at(0).pending_ipis(), 1);
        assert_eq!(cluster.kernel().cpu_at(1).pending_ipis(), 0, "initiator");
        assert_eq!(cluster.kernel().cpu_at(2).pending_ipis(), 1);
    }

    #[test]
    fn merged_stats_do_not_double_count_the_shared_tlb() {
        let mut cluster = Cluster::protected(2).unwrap();
        let (tid, _) = cluster.spawn("w").unwrap();
        cluster.run_task(tid, 4, 172, 0).unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.merged.tlb_hits, cluster.kernel().mem().tlb_hits());
        assert!(stats.merged.tlb_hits > 0);
        assert_eq!(stats.per_cpu.len(), 2);
        assert_eq!(
            stats.merged.instructions,
            stats.per_cpu.iter().map(|s| s.instructions).sum::<u64>()
        );
    }
}
