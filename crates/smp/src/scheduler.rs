//! The work-stealing host scheduler: resumable shard tasks over a pool
//! of host workers.
//!
//! # Task model
//!
//! A shard run is a resumable task. Its unit of host work — a *slice* —
//! is either the shard's machine boot or one *sweep* of the simulated
//! weighted-fair schedule (every live tenant served up to `weight` ops,
//! budgeted tenants throttled on simulated-cycle credit). A task yields
//! between slices, which is what lets host workers steal it: any worker
//! may run the next slice of any shard, so shard count is decoupled from
//! host thread count — 8 shards make progress on 2 workers, and a
//! 16-core host drains 8 shards without oversubscribing.
//!
//! # Why determinism survives stealing
//!
//! The *simulated* schedule — which tenant's op runs next on a shard's
//! machine, when a budgeted tenant is throttled, when a drained tenant
//! leaves the rotation — is a pure function of the plan: weights, budgets
//! and quotas are plan fields, throttling credit is denominated in
//! simulated cycles, and the op streams are seeded per
//! `(plan seed, shard, tenant name)`. The *host* schedule — which worker
//! runs which slice, and when — only decides where and when those
//! deterministic slices execute. Shards share nothing, a slice never
//! splits an op, and exactly one worker owns a task at a time (tasks move
//! between workers only through the pool's mutex-protected deques, whose
//! lock handoff gives the memory ordering), so `simulation_identical`
//! holds across any steal schedule, worker count, or drive mode — the
//! same contract as `fast_caches`/`block_engine`/`trace_engine`.
//!
//! The telemetry plane rides the same ownership rule: the SPSC ring's
//! producer is whichever worker is executing the shard's ops, and the
//! drain runs on that same worker at the end of the same slice, so the
//! single-producer/single-consumer contract holds even as the task
//! migrates and window-sums ≡ totals survives unconditionally.

use crate::cluster::Cluster;
use crate::driver::{shard_seed, FleetPlan, FleetShardReport, TenantReport};
use camo_cpu::telemetry::{StatWindow, TelemetryRing};
use camo_cpu::CpuStats;
use camo_kernel::{KernelConfig, KernelError};
use camo_workloads::{tenant_stream_seed, Quota, TenantRun};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-tenant facts of the *simulated* schedule on one shard (or summed
/// across shards after merging). Everything here is deterministic in the
/// plan — it participates in `simulation_identical` via
/// [`TenantReport`]'s equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantSched {
    /// Sweeps in which the tenant was served at least one op.
    pub sweeps_served: u64,
    /// Ops served across all sweeps (equals `totals.ops`; kept here so
    /// weighted-fairness is checkable from the schedule record alone).
    pub ops_served: u64,
    /// Whole sweeps skipped because the tenant's simulated-cycle credit
    /// was exhausted ([`camo_workloads::TenantSpec::cycle_budget`]).
    pub throttled_sweeps: u64,
    /// The sweep (1-based) in which the tenant's quota share drained to
    /// zero and it left the rotation, freeing its weighted-fair share to
    /// the remaining tenants. `None` if its share on this shard was
    /// empty from the start (it was never in the rotation).
    pub drained_sweep: Option<u64>,
}

impl TenantSched {
    pub(crate) fn merge(&mut self, other: &TenantSched) {
        self.sweeps_served += other.sweeps_served;
        self.ops_served += other.ops_served;
        self.throttled_sweeps += other.throttled_sweeps;
        // Fleet-wide, report the latest drain point of any shard.
        self.drained_sweep = match (self.drained_sweep, other.drained_sweep) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// One tenant's live scheduling state on one shard.
struct TenantState {
    run: TenantRun,
    /// Remaining quota share (ops or syscalls, per the spec's quota).
    remaining: u64,
    /// Weighted-fair share: op slots per sweep.
    weight: u32,
    /// Simulated-cycle throttle credit; `None` = unbudgeted.
    credit: Option<i128>,
    sched: TenantSched,
}

/// The booted, resumable body of a shard run.
struct ShardRun<'p> {
    plan: &'p FleetPlan,
    shard: usize,
    boot_seed: u64,
    cluster: Cluster,
    ring: Option<Arc<TelemetryRing>>,
    tenants: Vec<TenantState>,
    series: Vec<Vec<StatWindow>>,
    scratch: Vec<StatWindow>,
    /// Completed sweeps (1-based during a sweep).
    sweeps: u64,
    /// Host wall time accumulated across this shard's slices, on
    /// whichever workers ran them.
    wall_secs: f64,
}

impl<'p> ShardRun<'p> {
    /// The boot slice: build workloads, compile their user blocks into
    /// the machine image, boot the cluster, and register every tenant's
    /// tasks and telemetry emitter (in plan order, so the ring's producer
    /// id is the plan tenant index).
    fn boot(plan: &'p FleetPlan, shard: usize) -> Result<ShardRun<'p>, KernelError> {
        let boot_seed = shard_seed(plan.seed, shard);
        let workloads: Vec<_> = plan.tenants.iter().map(|t| t.build()).collect();
        let mut cfg = KernelConfig::with_protection(plan.protection);
        cfg.cpus = plan.cpus_per_shard;
        cfg.seed = boot_seed;
        cfg.fast_caches = plan.fast_caches;
        cfg.block_engine = plan.block_engine;
        cfg.trace_engine = plan.trace_engine;
        if let Some(threshold) = plan.pac_panic_threshold {
            cfg.pac_panic_threshold = threshold;
        }
        for workload in &workloads {
            for (name, alu, mem) in workload.user_blocks() {
                match cfg.user_blocks.iter().find(|(n, _, _)| *n == name) {
                    // Identical redeclarations are fine (two tenants of
                    // the same mix); conflicting sizes under one name
                    // would silently misattribute work, so fail loudly.
                    Some((_, a, m)) => assert_eq!(
                        (*a, *m),
                        (alu, mem),
                        "user block {name:?} declared twice with different sizes"
                    ),
                    None => cfg.user_blocks.push((name, alu, mem)),
                }
            }
        }
        cfg.telemetry = plan.telemetry;
        let mut cluster = Cluster::boot(cfg)?;
        let ring = cluster.kernel_mut().telemetry_ring();
        let mut tenants = Vec::with_capacity(plan.tenants.len());
        for (spec, workload) in plan.tenants.iter().zip(workloads) {
            let run = TenantRun::new(
                spec.name.clone(),
                workload,
                cluster.kernel_mut(),
                tenant_stream_seed(plan.seed, shard, &spec.name),
            )?;
            tenants.push(TenantState {
                run,
                remaining: spec.quota.share(plan.shards, shard),
                weight: spec.weight.max(1),
                // Seed the credit at one sweep's budget so a budgeted
                // tenant is servable in sweep 1.
                credit: spec.cycle_budget.map(i128::from),
                sched: TenantSched::default(),
            });
        }
        let series = vec![Vec::new(); plan.tenants.len()];
        Ok(ShardRun {
            plan,
            shard,
            boot_seed,
            cluster,
            ring,
            tenants,
            series,
            scratch: Vec::new(),
            sweeps: 0,
            wall_secs: 0.0,
        })
    }

    /// Drains the shard's telemetry ring into the per-tenant series.
    /// Runs on whichever worker owns the task — the same worker that
    /// just produced, so the SPSC contract holds.
    fn drain(&mut self) {
        if let Some(ring) = &self.ring {
            ring.drain_into(&mut self.scratch);
            for w in self.scratch.drain(..) {
                // Emitters registered in plan order, so the producer id
                // is the plan tenant index.
                self.series[w.tenant as usize].push(w);
            }
        }
    }

    /// One sweep of the simulated weighted-fair schedule: every live
    /// tenant, in plan order, is served up to `weight` ops; budgeted
    /// tenants accrue one sweep of cycle credit first and are throttled
    /// (skipped whole) or cut short when it runs out. Returns whether any
    /// tenant still has quota after the sweep.
    fn sweep(&mut self) -> Result<bool, KernelError> {
        if !self.tenants.iter().any(|t| t.remaining > 0) {
            return Ok(false);
        }
        self.sweeps += 1;
        let sweep = self.sweeps;
        // Split borrows: tenant states and the cluster are disjoint
        // fields, but a single `&mut self` method call would alias them.
        let cluster = &mut self.cluster;
        let tenants = &mut self.tenants;
        for (idx, t) in tenants.iter_mut().enumerate() {
            if t.remaining == 0 {
                continue;
            }
            let quota = self.plan.tenants[idx].quota;
            if let (Some(credit), Some(budget)) =
                (t.credit.as_mut(), self.plan.tenants[idx].cycle_budget)
            {
                // Accrue one sweep of credit, burst-capped at two
                // sweeps' worth so an idle tenant cannot bank an
                // unbounded burst.
                *credit = (*credit + i128::from(budget)).min(2 * i128::from(budget));
                if *credit <= 0 {
                    // Still paying for past overdraft: throttled.
                    t.sched.throttled_sweeps += 1;
                    continue;
                }
            }
            let mut served = 0u64;
            for _slot in 0..t.weight {
                if t.remaining == 0 {
                    break;
                }
                if matches!(t.credit, Some(c) if c <= 0) {
                    break; // credit exhausted mid-sweep
                }
                let clamp = match quota {
                    Quota::Syscalls(_) => Some(t.remaining),
                    Quota::Ops(_) => None,
                };
                let report = t.run.step(cluster.kernel_mut(), clamp)?;
                t.remaining -= match quota {
                    Quota::Ops(_) => 1,
                    Quota::Syscalls(_) => report.syscalls.max(1).min(t.remaining),
                };
                if let Some(credit) = t.credit.as_mut() {
                    *credit -= i128::from(report.cycles);
                }
                served += 1;
            }
            if served > 0 {
                t.sched.sweeps_served += 1;
                t.sched.ops_served += served;
            }
            if t.remaining == 0 && t.sched.drained_sweep.is_none() {
                // Quota drained mid-run: the tenant leaves the rotation
                // and its weighted-fair share falls to the residue.
                t.sched.drained_sweep = Some(sweep);
            }
        }
        // Sweep-boundary drain keeps the ring far from full in the
        // steady state (coalescing stays the overflow escape hatch).
        self.drain();
        Ok(self.tenants.iter().any(|t| t.remaining > 0))
    }

    /// Final drain + per-tenant telemetry flush, then assemble the shard
    /// report. Consumes the run.
    fn finish(mut self) -> FleetShardReport {
        let start = Instant::now();
        self.drain();
        for (idx, t) in self.tenants.iter_mut().enumerate() {
            self.series[idx].extend(t.run.flush_telemetry());
        }
        let mut stats = CpuStats::default();
        let (mut syscalls, mut instructions, mut cycles) = (0, 0, 0);
        let tenants: Vec<TenantReport> = self
            .tenants
            .into_iter()
            .zip(self.series)
            .map(|(t, series)| {
                let workload = t.run.workload_name().to_string();
                let name = t.run.name().to_string();
                let totals = t.run.into_totals();
                stats.merge(&totals.stats);
                syscalls += totals.syscalls;
                instructions += totals.instructions;
                cycles += totals.cycles;
                TenantReport {
                    name,
                    workload,
                    totals,
                    series,
                    sched: t.sched,
                }
            })
            .collect();
        FleetShardReport {
            shard: self.shard,
            seed: self.boot_seed,
            tenants,
            syscalls,
            instructions,
            cycles,
            stats,
            sweeps: self.sweeps,
            wall_secs: self.wall_secs + start.elapsed().as_secs_f64(),
        }
    }
}

/// What a slice left behind.
pub(crate) enum Slice {
    /// More slices to run — push the task back on a queue.
    Yielded,
    /// The shard's quota is fully served — call [`ShardTask::finish`].
    Done,
}

/// A resumable shard task: boots lazily (the boot is itself a slice, so
/// boots spread across the pool too), then runs one sweep per slice.
pub(crate) struct ShardTask<'p> {
    plan: &'p FleetPlan,
    shard: usize,
    run: Option<Box<ShardRun<'p>>>,
    last_worker: Option<usize>,
}

impl<'p> ShardTask<'p> {
    pub(crate) fn new(plan: &'p FleetPlan, shard: usize) -> ShardTask<'p> {
        ShardTask {
            plan,
            shard,
            run: None,
            last_worker: None,
        }
    }

    pub(crate) fn shard(&self) -> usize {
        self.shard
    }

    /// Records which worker is about to run a slice; returns `true` when
    /// ownership migrated from a different worker (a steal landed).
    pub(crate) fn note_worker(&mut self, worker: usize) -> bool {
        let migrated = matches!(self.last_worker, Some(prev) if prev != worker);
        self.last_worker = Some(worker);
        migrated
    }

    /// Runs one slice (boot, or one sweep) on the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates shard boot or kernel errors; an errored task is
    /// complete (do not resume it).
    pub(crate) fn run_slice(&mut self) -> Result<Slice, KernelError> {
        let start = Instant::now();
        match &mut self.run {
            None => {
                let run = Box::new(ShardRun::boot(self.plan, self.shard)?);
                self.run = Some(run);
                if let Some(run) = &mut self.run {
                    run.wall_secs += start.elapsed().as_secs_f64();
                }
                Ok(Slice::Yielded)
            }
            Some(run) => {
                let live = run.sweep()?;
                run.wall_secs += start.elapsed().as_secs_f64();
                Ok(if live { Slice::Yielded } else { Slice::Done })
            }
        }
    }

    /// Assembles the shard report. Panics if the task never booted or is
    /// resumed after an error.
    pub(crate) fn finish(self) -> FleetShardReport {
        self.run.expect("task ran to completion").finish()
    }
}

/// Runs a task to completion on the calling thread (the sequential
/// oracle and the legacy 1:1 thread-per-shard baseline both use this).
pub(crate) fn run_to_completion(mut task: ShardTask<'_>) -> Result<FleetShardReport, KernelError> {
    loop {
        match task.run_slice()? {
            Slice::Yielded => {}
            Slice::Done => return Ok(task.finish()),
        }
    }
}

/// What the pool did, host-side.
pub(crate) struct PoolOutcome {
    /// Per-shard results in shard order (every shard completes — an
    /// error in one shard does not abort the others).
    pub(crate) shards: Vec<Result<FleetShardReport, KernelError>>,
    /// Tasks popped from another worker's queue.
    pub(crate) steals: u64,
    /// Slices that ran on a different worker than the previous slice of
    /// the same shard.
    pub(crate) migrations: u64,
}

/// Executes every shard of `plan` over `workers` host threads with work
/// stealing: each worker owns a deque, pops its own tasks LIFO, and
/// steals FIFO from the others when idle. Excess workers (more than live
/// tasks) spin down politely; fewer workers than shards just means more
/// slices per worker — both ends are exercised by the worker-count
/// invariance stress tests.
pub(crate) fn run_pool(plan: &FleetPlan, workers: usize) -> PoolOutcome {
    assert!(workers >= 1, "at least one worker");
    let queues: Vec<Mutex<VecDeque<ShardTask<'_>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for shard in 0..plan.shards {
        queues[shard % workers]
            .lock()
            .unwrap()
            .push_back(ShardTask::new(plan, shard));
    }
    let remaining = AtomicUsize::new(plan.shards);
    let steals = AtomicU64::new(0);
    let migrations = AtomicU64::new(0);
    let results: Vec<Mutex<Option<Result<FleetShardReport, KernelError>>>> =
        (0..plan.shards).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let remaining = &remaining;
            let steals = &steals;
            let migrations = &migrations;
            let results = &results;
            scope.spawn(move || {
                let mut idle_spins = 0u32;
                while remaining.load(Ordering::Acquire) > 0 {
                    let task = queues[me].lock().unwrap().pop_back().or_else(|| {
                        (1..workers).find_map(|offset| {
                            let victim = (me + offset) % workers;
                            let stolen = queues[victim].lock().unwrap().pop_front();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        })
                    });
                    let Some(mut task) = task else {
                        // Nothing runnable right now (other workers hold
                        // the live tasks): yield, then back off.
                        idle_spins += 1;
                        if idle_spins > 64 {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        } else {
                            std::thread::yield_now();
                        }
                        continue;
                    };
                    idle_spins = 0;
                    if task.note_worker(me) {
                        migrations.fetch_add(1, Ordering::Relaxed);
                    }
                    match task.run_slice() {
                        Ok(Slice::Yielded) => queues[me].lock().unwrap().push_back(task),
                        Ok(Slice::Done) => {
                            let shard = task.shard();
                            *results[shard].lock().unwrap() = Some(Ok(task.finish()));
                            remaining.fetch_sub(1, Ordering::Release);
                        }
                        Err(e) => {
                            let shard = task.shard();
                            *results[shard].lock().unwrap() = Some(Err(e));
                            remaining.fetch_sub(1, Ordering::Release);
                        }
                    }
                }
            });
        }
    });
    PoolOutcome {
        shards: results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every shard completed"))
            .collect(),
        steals: steals.load(Ordering::Relaxed),
        migrations: migrations.load(Ordering::Relaxed),
    }
}
