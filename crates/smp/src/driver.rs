//! The host-parallel fleet layer: many machines, many host threads, many
//! tenants.
//!
//! A single simulated machine is inherently serial — determinism comes
//! from one interleaving of one instruction stream. Throughput therefore
//! scales by running *independent* machines in parallel: each shard boots
//! its own machine (or cluster) from a seed derived deterministically from
//! the plan seed, serves its deterministic slice of every tenant's
//! workload, and the driver merges the per-shard counters in shard order.
//! Nothing is shared between shards, so the scaling is embarrassingly
//! parallel and the merged simulated totals — including every tenant's
//! latency histogram — are identical for every execution mode.
//!
//! [`FleetDriver`] is the general engine: an arbitrary mix of
//! [`camo_workloads::Workload`] tenants with per-tenant quotas, weights
//! and cycle budgets, interleaved on every shard by a deterministic
//! weighted-fair schedule, with per-tenant
//! [`camo_cpu::CpuStats`]/cycle attribution and simulated-cycle latency
//! percentiles. Since PR 9 shard runs are *resumable tasks* over a
//! work-stealing pool of host workers (see the `scheduler` module):
//! shard count is decoupled from host thread count, and the host
//! schedule — which worker runs which slice — is invisible to the
//! simulation. [`ShardedDriver`] survives as a thin deprecated alias
//! that runs the single-tenant lmbench mix with the PR-3 `TrafficPlan`
//! semantics.

use crate::scheduler::{self, ShardTask, TenantSched};
use camo_core::ProtectionLevel;
use camo_cpu::telemetry::StatWindow;
use camo_cpu::CpuStats;
use camo_kernel::KernelError;
use camo_workloads::{Quota, TenantSpec, TenantTotals};
use std::time::Instant;

/// Derives the boot seed of shard `index` from the plan seed
/// (splitmix64 — deterministic, well-spread, stable across runs).
pub fn shard_seed(base: u64, index: usize) -> u64 {
    camo_workloads::derive_seed(base, index as u64)
}

/// A sharded traffic workload: the lmbench syscall mix, partitioned.
///
/// The PR-3 plan shape, kept for the [`ShardedDriver`] compatibility
/// alias; new code should build a [`FleetPlan`] directly.
#[derive(Debug, Clone)]
pub struct TrafficPlan {
    /// Number of independent machines (host threads).
    pub shards: usize,
    /// Cores per machine (1 = plain `Machine`-equivalent shards).
    pub cpus_per_shard: usize,
    /// Total syscalls across all shards (split as evenly as possible;
    /// the first `total % shards` shards serve one extra).
    pub total_syscalls: u64,
    /// Base seed; shard `i` boots with [`shard_seed`]`(seed, i)`.
    pub seed: u64,
    /// Protection level of every shard machine.
    pub protection: ProtectionLevel,
    /// Fast-path caches on every shard machine.
    pub fast_caches: bool,
    /// Block translation engine on every shard machine.
    pub block_engine: bool,
    /// Trace tier of the translation engine on every shard machine.
    pub trace_engine: bool,
    /// Streaming telemetry plane on every shard machine
    /// ([`camo_kernel::KernelConfig::telemetry`]). Architecturally
    /// invisible; `perfcheck --telemetry` measures the fleet-level A/B.
    pub telemetry: bool,
}

impl TrafficPlan {
    /// A fully protected plan with caches on.
    pub fn new(shards: usize, total_syscalls: u64, seed: u64) -> TrafficPlan {
        TrafficPlan {
            shards,
            cpus_per_shard: 1,
            total_syscalls,
            seed,
            protection: ProtectionLevel::Full,
            fast_caches: true,
            block_engine: true,
            trace_engine: true,
            telemetry: false,
        }
    }

    /// The syscall quota of shard `index`.
    pub fn quota(&self, index: usize) -> u64 {
        Quota::Syscalls(self.total_syscalls).share(self.shards, index)
    }

    /// The equivalent single-tenant [`FleetPlan`].
    pub fn to_fleet(&self) -> FleetPlan {
        FleetPlan {
            shards: self.shards,
            cpus_per_shard: self.cpus_per_shard,
            seed: self.seed,
            protection: self.protection,
            fast_caches: self.fast_caches,
            block_engine: self.block_engine,
            trace_engine: self.trace_engine,
            telemetry: self.telemetry,
            pac_panic_threshold: None,
            workers: None,
            tenants: vec![TenantSpec::lmbench("lmbench", self.total_syscalls)],
        }
    }
}

/// What one shard did.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The seed its machine booted with.
    pub seed: u64,
    /// Syscalls served.
    pub syscalls: u64,
    /// Simulated instructions retired.
    pub instructions: u64,
    /// Simulated cycles consumed (summed over the shard's cores).
    pub cycles: u64,
    /// Merged counters of the shard's cores.
    pub stats: CpuStats,
    /// This shard's own boot + serve duration, measured in whichever
    /// thread ran it. Under a parallel drive this includes host
    /// contention; under a sequential drive the shard ran alone, so
    /// `instructions / wall_secs` is its isolated capacity.
    pub wall_secs: f64,
}

/// The merged outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Total syscalls served.
    pub syscalls: u64,
    /// Total simulated instructions.
    pub instructions: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// All shards' counters merged.
    pub stats: CpuStats,
    /// Host wall-clock seconds for the whole fan-out.
    pub wall_secs: f64,
}

impl TrafficReport {
    /// Aggregate simulated instructions per host second of wall time —
    /// what this particular host delivered. Scales with shard count up to
    /// the host's core count.
    pub fn steps_per_sec(&self) -> f64 {
        self.instructions as f64 / self.wall_secs.max(1e-9)
    }

    /// Aggregate shard capacity: the sum of each shard's own
    /// `instructions / wall_secs` rate. Measured from a sequential run
    /// (shards timed in isolation), this is the pool's aggregate service
    /// rate given one unloaded core per shard; on a host with at least
    /// that many idle cores the parallel wall rate converges to it.
    pub fn capacity_steps_per_sec(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.instructions as f64 / s.wall_secs.max(1e-9))
            .sum()
    }
}

/// A multi-tenant fleet: an arbitrary workload mix across shards.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// Number of independent machines (host threads).
    pub shards: usize,
    /// Cores per shard machine.
    pub cpus_per_shard: usize,
    /// Base seed; shard `i` boots with [`shard_seed`]`(seed, i)` and
    /// the tenant named `n` on shard `i` draws ops from
    /// [`camo_workloads::tenant_stream_seed`]`(seed, i, n)` — name-derived, so adding or
    /// removing one tenant never shifts another tenant's op stream.
    pub seed: u64,
    /// Protection level of every shard machine.
    pub protection: ProtectionLevel,
    /// Fast-path caches on every shard machine.
    pub fast_caches: bool,
    /// Block translation engine on every shard machine
    /// ([`camo_kernel::KernelConfig::block_engine`]). Architecturally
    /// invisible; `perfcheck --blocks` measures the fleet-level A/B.
    pub block_engine: bool,
    /// Trace tier of the translation engine on every shard machine
    /// ([`camo_kernel::KernelConfig::trace_engine`]). Architecturally
    /// invisible; `perfcheck --traces` measures the fleet-level A/B.
    pub trace_engine: bool,
    /// Streaming telemetry plane on every shard machine
    /// ([`camo_kernel::KernelConfig::telemetry`]): tenants publish
    /// periodic stat-delta windows that the driver drains into each
    /// [`TenantReport::series`]. Architecturally invisible — the off arm
    /// is bit-identical; `perfcheck --telemetry` gates the A/B.
    pub telemetry: bool,
    /// Overrides every shard kernel's §5.4 panic threshold
    /// ([`camo_kernel::KernelConfig::pac_panic_threshold`]) when set. An
    /// adversarial plan that *expects* PAC failures raises this above its
    /// expected failure count so the run measures the policy instead of
    /// halting on it.
    pub pac_panic_threshold: Option<u32>,
    /// Host worker threads for [`FleetDriver::drive`]'s work-stealing
    /// pool. `None` (the default) sizes the pool to
    /// `min(available_parallelism, shards)`. Purely host-side: the
    /// worker count never touches the simulated schedule, so
    /// `simulation_identical` holds across any value — the
    /// worker-count-invariance stress tests gate exactly this.
    pub workers: Option<usize>,
    /// The tenants, served by the weighted-fair simulated schedule on
    /// every shard (plain round-robin when all weights are 1); each
    /// tenant's quota is split across shards like [`TrafficPlan`]
    /// syscalls, and its [`TenantSpec::weight`]/
    /// [`TenantSpec::cycle_budget`] shape the per-sweep schedule.
    /// Names must be unique — a tenant's op stream is seeded from its
    /// name.
    pub tenants: Vec<TenantSpec>,
}

impl FleetPlan {
    /// A fully protected single-core-shard plan with caches on.
    pub fn new(shards: usize, seed: u64, tenants: Vec<TenantSpec>) -> FleetPlan {
        FleetPlan {
            shards,
            cpus_per_shard: 1,
            seed,
            protection: ProtectionLevel::Full,
            fast_caches: true,
            block_engine: true,
            trace_engine: true,
            telemetry: false,
            pac_panic_threshold: None,
            workers: None,
            tenants,
        }
    }
}

/// One tenant's merged service (per shard, or fleet-wide after merging).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name (from the [`TenantSpec`]).
    pub name: String,
    /// The workload implementation's name.
    pub workload: String,
    /// The tenant's accumulated service: ops, syscalls,
    /// instructions/cycles, full [`camo_cpu::CpuStats`] deltas, and the
    /// per-op simulated-cycle [`camo_workloads::LatencyHistogram`]
    /// (p50/p90/p99 via its `percentile`).
    pub totals: TenantTotals,
    /// The tenant's telemetry time series: its stat-delta windows in
    /// emission order, drained from the shard rings when
    /// [`FleetPlan::telemetry`] is on (empty otherwise). Fleet-wide
    /// reports concatenate shard series in shard order, mirroring how
    /// `totals` merge; within one shard's segment `seq` is dense and
    /// ordered, and the windows of a segment sum exactly to that shard's
    /// contribution to `totals` (the coalescing ring plus end-of-run
    /// flush lose nothing).
    pub series: Vec<StatWindow>,
    /// The tenant's simulated-schedule record — sweeps served, ops
    /// served, throttled sweeps, drain point. Deterministic in the plan;
    /// it participates in this report's equality, hence in
    /// [`FleetReport::simulation_identical`].
    pub sched: TenantSched,
}

impl TenantReport {
    fn merge(&mut self, other: &TenantReport) {
        debug_assert_eq!(self.name, other.name);
        self.totals.merge(&other.totals);
        self.series.extend(other.series.iter().copied());
        self.sched.merge(&other.sched);
    }
}

/// What one shard of a fleet did.
#[derive(Debug, Clone)]
pub struct FleetShardReport {
    /// Shard index.
    pub shard: usize,
    /// The seed its machine booted with.
    pub seed: u64,
    /// Per-tenant service, in plan tenant order.
    pub tenants: Vec<TenantReport>,
    /// Syscalls served across all tenants.
    pub syscalls: u64,
    /// Simulated instructions across all tenants.
    pub instructions: u64,
    /// Simulated cycles across all tenants.
    pub cycles: u64,
    /// All tenants' counters merged.
    pub stats: CpuStats,
    /// Sweeps of the simulated weighted-fair schedule this shard ran.
    /// Deterministic in the plan (part of `simulation_identical`).
    pub sweeps: u64,
    /// This shard's own boot + serve duration, accumulated across its
    /// slices on whichever workers ran them (see
    /// [`ShardReport::wall_secs`] for the parallel/sequential reading).
    pub wall_secs: f64,
}

/// Host-side execution profile of a fleet run: how the work-stealing
/// pool actually ran the shards. Everything here is host-dependent and
/// excluded from [`FleetReport::simulation_identical`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecProfile {
    /// Host worker threads that served the run (shard count for the
    /// legacy 1:1 [`FleetDriver::drive_threaded`] mode, 1 for
    /// [`FleetDriver::drive_sequential`]).
    pub workers: usize,
    /// Tasks popped from another worker's queue.
    pub steals: u64,
    /// Slices that ran on a different worker than the previous slice of
    /// the same shard (a steal that actually moved live shard state).
    pub migrations: u64,
}

/// The merged outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<FleetShardReport>,
    /// Per-tenant service merged across shards, in plan tenant order.
    pub tenants: Vec<TenantReport>,
    /// Total syscalls served.
    pub syscalls: u64,
    /// Total simulated instructions.
    pub instructions: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Every core of every shard merged.
    pub stats: CpuStats,
    /// Host wall-clock seconds for the whole fan-out.
    pub wall_secs: f64,
    /// How the host pool ran it (workers, steals, migrations) — wall
    /// side only, excluded from [`FleetReport::simulation_identical`].
    pub exec: ExecProfile,
}

impl FleetReport {
    /// Aggregate simulated instructions per host wall second.
    pub fn steps_per_sec(&self) -> f64 {
        self.instructions as f64 / self.wall_secs.max(1e-9)
    }

    /// Aggregate shard capacity (sum of isolated per-shard rates; see
    /// [`TrafficReport::capacity_steps_per_sec`]).
    pub fn capacity_steps_per_sec(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.instructions as f64 / s.wall_secs.max(1e-9))
            .sum()
    }

    /// Whether two runs of the same plan produced bit-identical simulated
    /// totals — the fleet-level invariant `perfcheck --fleet` gates on.
    /// Wall-clock fields are excluded; everything simulated (per-tenant
    /// counters, histograms, merged stats) must agree exactly.
    pub fn simulation_identical(&self, other: &FleetReport) -> bool {
        self.syscalls == other.syscalls
            && self.instructions == other.instructions
            && self.cycles == other.cycles
            && self.stats == other.stats
            && self.tenants == other.tenants
            && self.shards.len() == other.shards.len()
            && self.shards.iter().zip(&other.shards).all(|(a, b)| {
                a.shard == b.shard
                    && a.seed == b.seed
                    && a.syscalls == b.syscalls
                    && a.instructions == b.instructions
                    && a.cycles == b.cycles
                    && a.stats == b.stats
                    && a.sweeps == b.sweeps
                    && a.tenants == b.tenants
            })
    }
}

/// Runs [`FleetPlan`]s over a work-stealing pool of host workers.
///
/// Shard runs are resumable tasks that yield at sweep boundaries (see
/// `scheduler` module docs); workers steal freely, so shard count is
/// decoupled from host thread count. The *simulated* weighted-fair
/// schedule is a pure function of the plan, so every drive mode —
/// stealing at any worker count, legacy 1:1 threads, sequential — is
/// [`FleetReport::simulation_identical`] to every other.
#[derive(Debug)]
pub struct FleetDriver;

impl FleetDriver {
    /// The default pool size for `plan`: one worker per shard, capped at
    /// the host's available parallelism (never oversubscribe, never
    /// spawn workers with no shard to serve).
    pub fn default_workers(plan: &FleetPlan) -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(plan.shards)
            .max(1)
    }

    /// Executes `plan` over the work-stealing pool
    /// ([`FleetPlan::workers`] workers, or [`FleetDriver::default_workers`]
    /// when unset): boots every shard machine, serves each shard's share
    /// of every tenant's quota on the simulated weighted-fair schedule,
    /// and merges the results in shard order. Everything except
    /// `wall_secs` and [`FleetReport::exec`] is deterministic in the
    /// plan.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure (by shard order).
    ///
    /// # Panics
    ///
    /// Panics if the plan has zero shards, zero CPUs per shard, or no
    /// tenants.
    pub fn drive(plan: &FleetPlan) -> Result<FleetReport, KernelError> {
        let workers = plan.workers.unwrap_or_else(|| Self::default_workers(plan));
        Self::drive_with_workers(plan, workers)
    }

    /// Executes `plan` over a work-stealing pool of exactly `workers`
    /// host threads — fewer workers than shards interleave slices, more
    /// workers than shards idle politely; the simulated totals are
    /// bit-identical either way (the worker-count-invariance property
    /// the torture suite gates).
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure (by shard order).
    ///
    /// # Panics
    ///
    /// Panics like [`FleetDriver::drive`], or if `workers` is zero.
    pub fn drive_with_workers(
        plan: &FleetPlan,
        workers: usize,
    ) -> Result<FleetReport, KernelError> {
        Self::check(plan);
        assert!(workers > 0, "at least one worker");
        let start = Instant::now();
        let outcome = scheduler::run_pool(plan, workers);
        let shards = outcome.shards.into_iter().collect::<Result<Vec<_>, _>>()?;
        let exec = ExecProfile {
            workers,
            steals: outcome.steals,
            migrations: outcome.migrations,
        };
        Ok(Self::merge(shards, start.elapsed().as_secs_f64(), exec))
    }

    /// Executes `plan` in the legacy 1:1 mode: one host thread per
    /// shard, each running its shard task to completion. This is the
    /// pre-stealing `FleetDriver` shape, kept as the wall-clock baseline
    /// `perfcheck --fleet-steal` compares the pool against (and as a
    /// degenerate steal-free schedule for the torture suite).
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure (by shard order).
    ///
    /// # Panics
    ///
    /// Panics like [`FleetDriver::drive`].
    pub fn drive_threaded(plan: &FleetPlan) -> Result<FleetReport, KernelError> {
        Self::check(plan);
        let start = Instant::now();
        let mut results: Vec<Option<Result<FleetShardReport, KernelError>>> =
            (0..plan.shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for shard in 0..plan.shards {
                handles.push(
                    scope.spawn(move || scheduler::run_to_completion(ShardTask::new(plan, shard))),
                );
            }
            for (shard, handle) in handles.into_iter().enumerate() {
                results[shard] = Some(handle.join().expect("shard thread panicked"));
            }
        });
        let shards = results
            .into_iter()
            .map(|r| r.expect("every shard joined"))
            .collect::<Result<Vec<_>, _>>()?;
        let exec = ExecProfile {
            workers: plan.shards,
            steals: 0,
            migrations: 0,
        };
        Ok(Self::merge(shards, start.elapsed().as_secs_f64(), exec))
    }

    /// Executes `plan` with every shard run back to back on the calling
    /// thread. The simulated totals are bit-identical to
    /// [`FleetDriver::drive`] (shards share nothing, so the execution
    /// mode is invisible to the simulation); only the wall-clock profile
    /// differs. Each shard's `wall_secs` is its isolated runtime, so
    /// [`FleetReport::capacity_steps_per_sec`] from this mode measures
    /// true per-shard capacity free of host contention.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    ///
    /// # Panics
    ///
    /// Panics like [`FleetDriver::drive`].
    pub fn drive_sequential(plan: &FleetPlan) -> Result<FleetReport, KernelError> {
        Self::check(plan);
        let start = Instant::now();
        let mut shards = Vec::with_capacity(plan.shards);
        for shard in 0..plan.shards {
            shards.push(scheduler::run_to_completion(ShardTask::new(plan, shard))?);
        }
        let exec = ExecProfile {
            workers: 1,
            steals: 0,
            migrations: 0,
        };
        Ok(Self::merge(shards, start.elapsed().as_secs_f64(), exec))
    }

    fn check(plan: &FleetPlan) {
        assert!(plan.shards > 0, "at least one shard");
        assert!(plan.cpus_per_shard > 0, "at least one CPU per shard");
        assert!(!plan.tenants.is_empty(), "at least one tenant");
        for (i, a) in plan.tenants.iter().enumerate() {
            for b in &plan.tenants[i + 1..] {
                assert_ne!(
                    a.name, b.name,
                    "tenant names must be unique (they seed the op streams)"
                );
            }
        }
    }

    fn merge(shards: Vec<FleetShardReport>, wall_secs: f64, exec: ExecProfile) -> FleetReport {
        let mut stats = CpuStats::default();
        let (mut syscalls, mut instructions, mut cycles) = (0, 0, 0);
        let mut tenants: Vec<TenantReport> = shards[0].tenants.clone();
        for report in &shards[1..] {
            for (merged, tenant) in tenants.iter_mut().zip(&report.tenants) {
                merged.merge(tenant);
            }
        }
        for report in &shards {
            stats.merge(&report.stats);
            syscalls += report.syscalls;
            instructions += report.instructions;
            cycles += report.cycles;
        }
        FleetReport {
            shards,
            tenants,
            syscalls,
            instructions,
            cycles,
            stats,
            wall_secs,
            exec,
        }
    }
}

/// Runs [`TrafficPlan`]s across a pool of host threads, one per shard.
///
/// Since PR 4 this is a thin compatibility alias: every drive builds the
/// equivalent single-tenant lmbench [`FleetPlan`] and runs it through
/// [`FleetDriver`], then flattens the per-tenant reports back into the
/// PR-3 [`TrafficReport`] shape.
#[deprecated(
    since = "0.1.0",
    note = "use FleetDriver with a FleetPlan (TrafficPlan::to_fleet gives the lmbench equivalent)"
)]
#[derive(Debug)]
pub struct ShardedDriver;

#[allow(deprecated)]
impl ShardedDriver {
    /// Executes `plan` on the thread pool. See [`FleetDriver::drive`].
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure (by shard order).
    ///
    /// # Panics
    ///
    /// Panics if the plan has zero shards or zero CPUs per shard.
    pub fn drive(plan: &TrafficPlan) -> Result<TrafficReport, KernelError> {
        Ok(Self::flatten(FleetDriver::drive(&plan.to_fleet())?))
    }

    /// Executes `plan` back to back on the calling thread. See
    /// [`FleetDriver::drive_sequential`].
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    pub fn drive_sequential(plan: &TrafficPlan) -> Result<TrafficReport, KernelError> {
        Ok(Self::flatten(FleetDriver::drive_sequential(
            &plan.to_fleet(),
        )?))
    }

    fn flatten(report: FleetReport) -> TrafficReport {
        TrafficReport {
            syscalls: report.syscalls,
            instructions: report.instructions,
            cycles: report.cycles,
            stats: report.stats,
            wall_secs: report.wall_secs,
            shards: report
                .shards
                .into_iter()
                .map(|s| ShardReport {
                    shard: s.shard,
                    seed: s.seed,
                    syscalls: s.syscalls,
                    instructions: s.instructions,
                    cycles: s.cycles,
                    stats: s.stats,
                    wall_secs: s.wall_secs,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn quotas_partition_exactly() {
        let plan = TrafficPlan::new(3, 100, 1);
        let quotas: Vec<u64> = (0..3).map(|i| plan.quota(i)).collect();
        assert_eq!(quotas.iter().sum::<u64>(), 100);
        assert_eq!(quotas, vec![34, 33, 33]);
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..8).map(|i| shard_seed(42, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| shard_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "no seed collisions: {a:?}");
    }

    #[test]
    fn sharded_run_serves_the_whole_quota() {
        let plan = TrafficPlan::new(2, 64, 7);
        let report = ShardedDriver::drive(&plan).unwrap();
        assert_eq!(report.syscalls, 64);
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.shards[0].syscalls, 32);
        assert!(report.instructions > 0);
        assert!(report.cycles > 0);
    }

    #[test]
    fn simulated_totals_are_deterministic_in_the_plan() {
        let plan = TrafficPlan::new(2, 48, 99);
        let a = ShardedDriver::drive(&plan).unwrap();
        let b = ShardedDriver::drive(&plan).unwrap();
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.syscalls, b.syscalls);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.cycles, y.cycles);
        }
    }

    #[test]
    fn parallel_and_sequential_sharding_are_simulation_identical() {
        // The execution mode (thread pool vs back-to-back) must be
        // invisible to the simulation: same shards, same seeds, same
        // simulated totals bit for bit.
        let plan = TrafficPlan::new(3, 60, 1234);
        let par = ShardedDriver::drive(&plan).unwrap();
        let seq = ShardedDriver::drive_sequential(&plan).unwrap();
        assert_eq!(par.instructions, seq.instructions);
        assert_eq!(par.cycles, seq.cycles);
        assert_eq!(par.syscalls, seq.syscalls);
        assert_eq!(par.stats, seq.stats);
        for (x, y) in par.shards.iter().zip(&seq.shards) {
            assert_eq!(
                (x.shard, x.seed, x.cycles, x.instructions, x.syscalls),
                (y.shard, y.seed, y.cycles, y.instructions, y.syscalls)
            );
        }
    }

    #[test]
    fn multi_core_shards_spread_traffic_over_their_cores() {
        let mut plan = TrafficPlan::new(1, 32, 5);
        plan.cpus_per_shard = 2;
        let report = ShardedDriver::drive(&plan).unwrap();
        assert_eq!(report.syscalls, 32);
        assert_eq!(report.shards[0].syscalls, 32);
        // Traffic alternates between the two per-core tasks, so the shard
        // took user-mode exceptions on a 2-core cluster without faulting.
        assert!(report.stats.exceptions > 0);
    }
}
