//! The host-parallel sharding layer: many machines, many host threads.
//!
//! A single simulated machine is inherently serial — determinism comes
//! from one interleaving of one instruction stream. Throughput therefore
//! scales by running *independent* machines in parallel: each shard boots
//! its own machine (or cluster) from a seed derived deterministically from
//! the plan seed, serves its deterministic slice of the syscall workload,
//! and the driver merges the per-shard counters. Nothing is shared between
//! shards, so the scaling is embarrassingly parallel and the merged
//! simulated totals are identical for every shard count.

use crate::cluster::Cluster;
use camo_core::ProtectionLevel;
use camo_cpu::CpuStats;
use camo_kernel::{KernelConfig, KernelError, Tid, SYSCALLS};
use std::time::Instant;

/// Syscalls issued per `run_user` call (one user-mode entry/exit per
/// syscall regardless; batching only amortizes host-side call overhead).
const BATCH: u64 = 16;

/// Derives the boot seed of shard `index` from the plan seed
/// (splitmix64 — deterministic, well-spread, stable across runs).
pub fn shard_seed(base: u64, index: usize) -> u64 {
    let mut z = base ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sharded traffic workload: the lmbench syscall mix, partitioned.
#[derive(Debug, Clone)]
pub struct TrafficPlan {
    /// Number of independent machines (host threads).
    pub shards: usize,
    /// Cores per machine (1 = plain `Machine`-equivalent shards).
    pub cpus_per_shard: usize,
    /// Total syscalls across all shards (split as evenly as possible;
    /// the first `total % shards` shards serve one extra).
    pub total_syscalls: u64,
    /// Base seed; shard `i` boots with [`shard_seed`]`(seed, i)`.
    pub seed: u64,
    /// Protection level of every shard machine.
    pub protection: ProtectionLevel,
    /// Fast-path caches on every shard machine.
    pub fast_caches: bool,
}

impl TrafficPlan {
    /// A fully protected plan with caches on.
    pub fn new(shards: usize, total_syscalls: u64, seed: u64) -> TrafficPlan {
        TrafficPlan {
            shards,
            cpus_per_shard: 1,
            total_syscalls,
            seed,
            protection: ProtectionLevel::Full,
            fast_caches: true,
        }
    }

    /// The syscall quota of shard `index`.
    pub fn quota(&self, index: usize) -> u64 {
        let base = self.total_syscalls / self.shards as u64;
        let extra = self.total_syscalls % self.shards as u64;
        base + u64::from((index as u64) < extra)
    }
}

/// What one shard did.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The seed its machine booted with.
    pub seed: u64,
    /// Syscalls served.
    pub syscalls: u64,
    /// Simulated instructions retired.
    pub instructions: u64,
    /// Simulated cycles consumed (summed over the shard's cores).
    pub cycles: u64,
    /// Merged counters of the shard's cores.
    pub stats: CpuStats,
    /// This shard's own boot + serve duration, measured in whichever
    /// thread ran it. Under [`ShardedDriver::drive`] this includes host
    /// contention; under [`ShardedDriver::drive_sequential`] the shard ran
    /// alone, so `instructions / wall_secs` is its isolated capacity.
    pub wall_secs: f64,
}

/// The merged outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Total syscalls served.
    pub syscalls: u64,
    /// Total simulated instructions.
    pub instructions: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// All shards' counters merged.
    pub stats: CpuStats,
    /// Host wall-clock seconds for the whole fan-out.
    pub wall_secs: f64,
}

impl TrafficReport {
    /// Aggregate simulated instructions per host second of wall time —
    /// what this particular host delivered. Scales with shard count up to
    /// the host's core count.
    pub fn steps_per_sec(&self) -> f64 {
        self.instructions as f64 / self.wall_secs.max(1e-9)
    }

    /// Aggregate shard capacity: the sum of each shard's own
    /// `instructions / wall_secs` rate. Measured from a
    /// [`ShardedDriver::drive_sequential`] run (shards timed in
    /// isolation), this is the pool's aggregate service rate given one
    /// unloaded core per shard; on a host with at least that many idle
    /// cores the parallel wall rate converges to it.
    pub fn capacity_steps_per_sec(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.instructions as f64 / s.wall_secs.max(1e-9))
            .sum()
    }
}

/// Runs [`TrafficPlan`]s across a pool of host threads, one per shard.
#[derive(Debug)]
pub struct ShardedDriver;

impl ShardedDriver {
    /// Executes `plan`: boots every shard machine, serves each shard's
    /// quota of the lmbench syscall mix, and merges the results. Shards
    /// run on their own host threads; reports are merged in shard order,
    /// so everything except `wall_secs` is deterministic in the plan.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure (by shard order).
    ///
    /// # Panics
    ///
    /// Panics if the plan has zero shards or zero CPUs per shard.
    pub fn drive(plan: &TrafficPlan) -> Result<TrafficReport, KernelError> {
        assert!(plan.shards > 0, "at least one shard");
        assert!(plan.cpus_per_shard > 0, "at least one CPU per shard");
        let start = Instant::now();
        let mut results: Vec<Option<Result<ShardReport, KernelError>>> =
            (0..plan.shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for shard in 0..plan.shards {
                handles.push(scope.spawn(move || Self::run_shard(plan, shard)));
            }
            for (shard, handle) in handles.into_iter().enumerate() {
                results[shard] = Some(handle.join().expect("shard thread panicked"));
            }
        });
        let shards = results
            .into_iter()
            .map(|r| r.expect("every shard joined"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::merge(shards, start.elapsed().as_secs_f64()))
    }

    /// Executes `plan` with every shard run back to back on the calling
    /// thread. The simulated totals are bit-identical to
    /// [`ShardedDriver::drive`] (shards share nothing, so the execution
    /// mode is invisible to the simulation); only the wall-clock profile
    /// differs. Each shard's `wall_secs` is its isolated runtime, so
    /// [`TrafficReport::capacity_steps_per_sec`] from this mode measures
    /// true per-shard capacity free of host contention.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    pub fn drive_sequential(plan: &TrafficPlan) -> Result<TrafficReport, KernelError> {
        assert!(plan.shards > 0, "at least one shard");
        assert!(plan.cpus_per_shard > 0, "at least one CPU per shard");
        let start = Instant::now();
        let mut shards = Vec::with_capacity(plan.shards);
        for shard in 0..plan.shards {
            shards.push(Self::run_shard(plan, shard)?);
        }
        Ok(Self::merge(shards, start.elapsed().as_secs_f64()))
    }

    fn merge(shards: Vec<ShardReport>, wall_secs: f64) -> TrafficReport {
        let mut stats = CpuStats::default();
        let (mut syscalls, mut instructions, mut cycles) = (0, 0, 0);
        for report in &shards {
            stats.merge(&report.stats);
            syscalls += report.syscalls;
            instructions += report.instructions;
            cycles += report.cycles;
        }
        TrafficReport {
            shards,
            syscalls,
            instructions,
            cycles,
            stats,
            wall_secs,
        }
    }

    /// One shard: boot, spawn one task per core, serve the quota by
    /// cycling the syscall mix round-robin across the tasks.
    fn run_shard(plan: &TrafficPlan, shard: usize) -> Result<ShardReport, KernelError> {
        let start = Instant::now();
        let seed = shard_seed(plan.seed, shard);
        let mut cfg = KernelConfig::with_protection(plan.protection);
        cfg.cpus = plan.cpus_per_shard;
        cfg.seed = seed;
        cfg.fast_caches = plan.fast_caches;
        let mut cluster = Cluster::boot(cfg)?;

        // init (tid 0) lives on CPU 0; give every other core a task so the
        // whole cluster serves traffic.
        let mut tids: Vec<Tid> = vec![0];
        for cpu in 1..plan.cpus_per_shard {
            let (tid, home) = cluster.spawn(&format!("traffic-{cpu}"))?;
            debug_assert_eq!(home, cpu);
            tids.push(tid);
        }

        let mut remaining = plan.quota(shard);
        let (mut served, mut instructions) = (0u64, 0u64);
        let mut turn = 0usize;
        while remaining > 0 {
            let spec = &SYSCALLS[turn % SYSCALLS.len()];
            let tid = tids[turn % tids.len()];
            let batch = BATCH.min(remaining);
            let out = cluster.run_task(tid, batch, spec.nr, 3)?;
            debug_assert!(out.fault.is_none(), "benign traffic must not fault");
            served += out.syscalls;
            instructions += out.instructions;
            remaining -= batch;
            turn += 1;
        }

        let stats = cluster.stats();
        Ok(ShardReport {
            shard,
            seed,
            syscalls: served,
            instructions,
            cycles: stats.cycles,
            stats: stats.merged,
            wall_secs: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_partition_exactly() {
        let plan = TrafficPlan::new(3, 100, 1);
        let quotas: Vec<u64> = (0..3).map(|i| plan.quota(i)).collect();
        assert_eq!(quotas.iter().sum::<u64>(), 100);
        assert_eq!(quotas, vec![34, 33, 33]);
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..8).map(|i| shard_seed(42, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| shard_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "no seed collisions: {a:?}");
    }

    #[test]
    fn sharded_run_serves_the_whole_quota() {
        let plan = TrafficPlan::new(2, 64, 7);
        let report = ShardedDriver::drive(&plan).unwrap();
        assert_eq!(report.syscalls, 64);
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.shards[0].syscalls, 32);
        assert!(report.instructions > 0);
        assert!(report.cycles > 0);
    }

    #[test]
    fn simulated_totals_are_deterministic_in_the_plan() {
        let plan = TrafficPlan::new(2, 48, 99);
        let a = ShardedDriver::drive(&plan).unwrap();
        let b = ShardedDriver::drive(&plan).unwrap();
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.syscalls, b.syscalls);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.cycles, y.cycles);
        }
    }

    #[test]
    fn parallel_and_sequential_sharding_are_simulation_identical() {
        // The execution mode (thread pool vs back-to-back) must be
        // invisible to the simulation: same shards, same seeds, same
        // simulated totals bit for bit.
        let plan = TrafficPlan::new(3, 60, 1234);
        let par = ShardedDriver::drive(&plan).unwrap();
        let seq = ShardedDriver::drive_sequential(&plan).unwrap();
        assert_eq!(par.instructions, seq.instructions);
        assert_eq!(par.cycles, seq.cycles);
        assert_eq!(par.syscalls, seq.syscalls);
        assert_eq!(par.stats, seq.stats);
        for (x, y) in par.shards.iter().zip(&seq.shards) {
            assert_eq!(
                (x.shard, x.seed, x.cycles, x.instructions, x.syscalls),
                (y.shard, y.seed, y.cycles, y.instructions, y.syscalls)
            );
        }
    }

    #[test]
    fn multi_core_shards_spread_traffic_over_their_cores() {
        let mut plan = TrafficPlan::new(1, 32, 5);
        plan.cpus_per_shard = 2;
        let report = ShardedDriver::drive(&plan).unwrap();
        assert_eq!(report.syscalls, 32);
        assert_eq!(report.shards[0].syscalls, 32);
        // Traffic alternates between the two per-core tasks, so the shard
        // took user-mode exceptions on a 2-core cluster without faulting.
        assert!(report.stats.exceptions > 0);
    }
}
