//! Cache-coherency properties of the fast-path execution engine.
//!
//! The software TLB and the decoded-instruction cache must be
//! *architecturally invisible*: no access may ever succeed through a stale
//! translation or a stale decoded instruction after a permission downgrade
//! (`set_attr`), a hypervisor seal (`protect_stage2`), or a write into a
//! fetched page — the windows a real attacker would race.

use camo_cpu::{Cpu, CpuError, Step};
use camo_isa::{encode, Insn, Reg, SysReg};
use camo_mem::{Frame, MemFault, Memory, S1Attr, S2Attr, TableId, KERNEL_BASE};

/// Loads `insns` at KERNEL_BASE (text) with a data page above, EL1 ready.
fn machine(insns: &[Insn]) -> (Cpu, Memory, Frame) {
    let mut mem = Memory::new();
    let table = mem.new_table();
    let text = mem.map_new(table, KERNEL_BASE, S1Attr::kernel_text());
    mem.map_new(table, KERNEL_BASE + 0x1000, S1Attr::kernel_data());
    for (i, insn) in insns.iter().enumerate() {
        mem.phys_mut()
            .write_u32(text.base() + 4 * i as u64, encode(insn))
            .unwrap();
    }
    let mut cpu = Cpu::default();
    cpu.state.pc = KERNEL_BASE;
    cpu.state.set_sysreg(SysReg::Ttbr0El1, table.raw());
    cpu.state.set_sysreg(SysReg::Ttbr1El1, table.raw());
    cpu.state.sp_el1 = KERNEL_BASE + 0x2000;
    (cpu, mem, text)
}

fn table_of(cpu: &Cpu) -> TableId {
    TableId::from_raw(cpu.state.sysreg(SysReg::Ttbr1El1))
}

#[test]
fn self_modifying_code_decodes_fresh_on_next_fetch() {
    let (mut cpu, mut mem, text) = machine(&[Insn::Movz {
        rd: Reg::x(0),
        imm16: 1,
        shift: 0,
    }]);
    // First execution fills the decoded-instruction cache.
    cpu.step(&mut mem).unwrap();
    assert_eq!(cpu.state.gprs[0], 1);
    assert_eq!(cpu.stats().icache_misses, 1);

    // Overwrite the word *directly in physical memory* (the attacker's
    // primitive — no MMU write permission involved), then re-execute.
    mem.phys_mut()
        .write_u32(
            text.base(),
            encode(&Insn::Movz {
                rd: Reg::x(0),
                imm16: 2,
                shift: 0,
            }),
        )
        .unwrap();
    cpu.state.pc = KERNEL_BASE;
    cpu.step(&mut mem).unwrap();
    assert_eq!(cpu.state.gprs[0], 2, "stale decode would have written 1");
    assert_eq!(cpu.stats().icache_misses, 2, "write forced a re-decode");
}

#[test]
fn set_attr_exec_revocation_faults_next_fetch() {
    let (mut cpu, mut mem, _) = machine(&[Insn::Nop, Insn::Nop]);
    cpu.step(&mut mem).unwrap(); // warm TLB + icache
                                 // Revoke execute on the text page; the very next fetch must fault even
                                 // though the decoded instruction is still resident.
    assert!(mem.set_attr(table_of(&cpu), KERNEL_BASE, S1Attr::kernel_rodata()));
    let err = cpu.step(&mut mem).unwrap_err();
    assert!(
        matches!(
            err,
            CpuError::UnhandledFault {
                fault: MemFault::Permission { .. },
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn stage2_seal_faults_next_fetch_despite_warm_caches() {
    let (mut cpu, mut mem, text) = machine(&[Insn::Nop, Insn::Nop, Insn::Nop]);
    cpu.step(&mut mem).unwrap(); // warm TLB + icache
                                 // Hypervisor strips execute at stage 2 (e.g. sealing a revoked module).
    mem.protect_stage2(
        text,
        S2Attr {
            read: true,
            write: true,
            exec: false,
        },
    )
    .unwrap();
    let err = cpu.step(&mut mem).unwrap_err();
    assert!(
        matches!(
            err,
            CpuError::UnhandledFault {
                fault: MemFault::Stage2 { .. },
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn hot_loop_hits_both_caches() {
    // x0 = 200; loop: sub x0, x0, 1; str x1, [sp]; ldr x1, [sp]; cbnz x0, loop
    let insns = [
        Insn::Movz {
            rd: Reg::x(0),
            imm16: 200,
            shift: 0,
        },
        Insn::SubImm {
            rd: Reg::x(0),
            rn: Reg::x(0),
            imm12: 1,
            shifted: false,
        },
        Insn::Str {
            rt: Reg::x(1),
            rn: Reg::Sp,
            mode: camo_isa::AddrMode::Unsigned(0),
        },
        Insn::Ldr {
            rt: Reg::x(1),
            rn: Reg::Sp,
            mode: camo_isa::AddrMode::Unsigned(0),
        },
        Insn::Cbnz {
            rt: Reg::x(0),
            offset: -12,
        },
    ];
    let (mut cpu, mut mem, _) = machine(&insns);
    cpu.state.sp_el1 = KERNEL_BASE + 0x1000 + 0x800;
    loop {
        cpu.step(&mut mem).unwrap();
        if cpu.state.gprs[0] == 0 && cpu.state.pc > KERNEL_BASE + 16 {
            break;
        }
    }
    let stats = cpu.stats();
    assert!(stats.instructions > 700, "loop actually ran");
    let icache_rate = stats.icache_hits as f64 / (stats.icache_hits + stats.icache_misses) as f64;
    assert!(
        icache_rate > 0.99,
        "5 distinct words, ~800 fetches: {icache_rate}"
    );
    let tlb_rate = stats.tlb_hits as f64 / (stats.tlb_hits + stats.tlb_misses) as f64;
    assert!(tlb_rate > 0.99, "3 hot pages, ~1600 walks: {tlb_rate}");
}

#[test]
fn caches_do_not_change_cycles_or_results() {
    let insns = [
        Insn::Movz {
            rd: Reg::x(0),
            imm16: 50,
            shift: 0,
        },
        Insn::SubImm {
            rd: Reg::x(0),
            rn: Reg::x(0),
            imm12: 1,
            shifted: false,
        },
        Insn::Cbnz {
            rt: Reg::x(0),
            offset: -4,
        },
        Insn::Brk { imm: 1 },
    ];
    let run = |caching: bool| {
        let (mut cpu, mut mem, _) = machine(&insns);
        cpu.set_caching(caching);
        mem.set_caching(caching);
        loop {
            if let Step::BrkTrap { .. } = cpu.step(&mut mem).unwrap() {
                break;
            }
        }
        (cpu.cycles(), cpu.stats().instructions, cpu.state.gprs[0])
    };
    assert_eq!(run(true), run(false), "caches must be invisible");
}
